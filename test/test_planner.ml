(* Planner and pipeline tests: access-path selection on edge-case view
   shapes (single source, no equi-join, empty delta windows), equality
   against a planner-independent nested-loop reference, and the
   no-timestamp sentinel regression (base rows must surface as the origin
   time, never as max_int). *)

open Test_support.Helpers
open Roll_relation
module Time = Roll_delta.Time
module Table = Roll_storage.Table
module C = Roll_core

let qtest = QCheck_alcotest.to_alcotest

(* Naive nested-loop join, deliberately independent of Planner/Exec: the
   reference both the executor and Oracle.join_all are compared against
   now that the oracle itself runs through the shared pipeline. *)
let reference_join view relations =
  let n = C.View.n_sources view in
  let out = Relation.create (C.View.output_schema view) in
  let predicate = C.View.predicate view in
  let bindings = Array.make n [||] in
  let rec enumerate i count =
    if i = n then begin
      if Predicate.holds predicate bindings then
        Relation.add out (C.View.project_bindings view bindings) count
    end
    else
      Relation.iter
        (fun tuple c ->
          bindings.(i) <- tuple;
          enumerate (i + 1) (count * c))
        relations.(i)
  in
  enumerate 0 1;
  out

let current_states s =
  Array.init (C.View.n_sources s.view) (fun i ->
      Table.contents (Database.table s.db (C.View.source_table s.view i)))

let net_of rows schema =
  let r = Relation.create schema in
  List.iter (fun (tuple, count, _) -> Relation.add r tuple count) rows;
  r

let access_of plan k =
  let step = List.nth plan.C.Planner.steps k in
  step.C.Planner.access

(* Both the oracle and the executor (which now share the pipeline) must
   agree with the independent nested-loop reference under random churn. *)
let prop_pipeline_matches_reference =
  QCheck.Test.make ~name:"pipeline matches nested-loop reference" ~count:30
    QCheck.small_int
    (fun seed ->
      let s = if seed mod 2 = 0 then two_table () else three_table () in
      random_txns (Prng.create ~seed) s 40;
      let expected = reference_join s.view (current_states s) in
      let oracle = C.Oracle.join_all s.view (current_states s) in
      let ctx = ctx_of s in
      let rows, _ =
        C.Executor.evaluate ctx (C.Pquery.all_base (C.View.n_sources s.view))
      in
      Relation.equal oracle expected
      && Relation.equal (net_of rows (C.View.output_schema s.view)) expected)

let int_col name = { Schema.name; ty = Value.T_int }

(* Single source, filter only: the plan must be exactly one Scan step. *)
let single_source_scenario () =
  let db = Database.create () in
  let _ =
    Database.create_table db ~name:"f" (Schema.make [ int_col "k"; int_col "v" ])
  in
  let capture = Capture.create db in
  Capture.attach capture ~table:"f";
  let b = C.View.binder db [ ("f", "f") ] in
  let view =
    C.View.create db ~name:"f_small"
      ~sources:[ ("f", "f") ]
      ~predicate:
        [ Predicate.cmp Predicate.Lt (Predicate.Col (b "f" "v")) (Predicate.Const (Value.Int 3)) ]
      ~project:[ b "f" "k"; b "f" "v" ]
  in
  { db; capture; history = History.create db; view }

let test_single_source () =
  let s = single_source_scenario () in
  ignore
    (Database.run s.db (fun txn ->
         for k = 0 to 9 do
           Database.insert txn ~table:"f" (Tuple.ints [ k; k mod 5 ])
         done));
  let ctx = ctx_of s in
  let plan = C.Executor.plan_of ctx (C.Pquery.all_base 1) in
  Alcotest.(check int) "one step" 1 (List.length plan.C.Planner.steps);
  (match access_of plan 0 with
  | C.Planner.Scan -> ()
  | a -> Alcotest.failf "expected scan, got %s" (C.Planner.access_name a));
  let rows, _ = C.Executor.evaluate ctx (C.Pquery.all_base 1) in
  let expected = reference_join s.view (current_states s) in
  Alcotest.check relation "filter applied"
    expected
    (net_of rows (C.View.output_schema s.view));
  Alcotest.check relation "oracle agrees" expected
    (C.Oracle.join_all s.view (current_states s))

(* Theta join only (r.v < s.w, no equi atom): the non-driving step must
   fall back to a nested loop. *)
let theta_scenario () =
  let db = Database.create () in
  let _ =
    Database.create_table db ~name:"r" (Schema.make [ int_col "k"; int_col "v" ])
  in
  let _ =
    Database.create_table db ~name:"s" (Schema.make [ int_col "k"; int_col "w" ])
  in
  let capture = Capture.create db in
  Capture.attach capture ~table:"r";
  Capture.attach capture ~table:"s";
  let b = C.View.binder db [ ("r", "r"); ("s", "s") ] in
  let view =
    C.View.create db ~name:"r_lt_s"
      ~sources:[ ("r", "r"); ("s", "s") ]
      ~predicate:
        [ Predicate.cmp Predicate.Lt (Predicate.Col (b "r" "v")) (Predicate.Col (b "s" "w")) ]
      ~project:[ b "r" "k"; b "s" "k" ]
  in
  { db; capture; history = History.create db; view }

let test_no_equi_join_nested_loop () =
  let s = theta_scenario () in
  random_txns (Prng.create ~seed:411) s 30;
  let ctx = ctx_of s in
  let plan = C.Executor.plan_of ctx (C.Pquery.all_base 2) in
  Alcotest.(check int) "two steps" 2 (List.length plan.C.Planner.steps);
  (match access_of plan 1 with
  | C.Planner.Nested_loop -> ()
  | a -> Alcotest.failf "expected nested-loop, got %s" (C.Planner.access_name a));
  let rows, _ = C.Executor.evaluate ctx (C.Pquery.all_base 2) in
  let expected = reference_join s.view (current_states s) in
  Alcotest.check relation "theta join result"
    expected
    (net_of rows (C.View.output_schema s.view));
  Alcotest.check relation "oracle agrees" expected
    (C.Oracle.join_all s.view (current_states s))

(* With a secondary index on the joined column, the plan must probe it. *)
let test_access_path_prefers_index () =
  let s = two_table () in
  random_txns (Prng.create ~seed:412) s 40;
  let ctx = ctx_of s in
  Capture.advance s.capture;
  let now = Database.now s.db in
  let q =
    C.Pquery.replace (C.Pquery.all_base 2) 1
      (C.Pquery.Win { lo = now - 5; hi = now })
  in
  (match access_of (C.Executor.plan_of ctx q) 1 with
  | C.Planner.Hash_join [ (_, 0) ] -> ()
  | a -> Alcotest.failf "expected hash-join on column 0, got %s" (C.Planner.access_name a));
  Table.create_index (Database.table s.db "r") ~columns:[ 0 ];
  match access_of (C.Executor.plan_of ctx q) 1 with
  | C.Planner.Index_probe (_, [ 0 ]) -> ()
  | a -> Alcotest.failf "expected index-probe on column 0, got %s" (C.Planner.access_name a)

(* An empty delta window plans as the (empty) driving input and evaluates
   to nothing without touching the base side. *)
let test_empty_window () =
  let s = two_table () in
  random_txns (Prng.create ~seed:413) s 30;
  let ctx = ctx_of s in
  Capture.advance s.capture;
  let now = Database.now s.db in
  let q = C.Pquery.replace (C.Pquery.all_base 2) 1 (C.Pquery.Win { lo = now; hi = now }) in
  let plan = C.Executor.plan_of ctx q in
  (match plan.C.Planner.steps with
  | { C.Planner.source = 1; access = C.Planner.Scan; _ } :: _ -> ()
  | _ -> Alcotest.fail "empty window should drive the join");
  let rows, reads = C.Executor.evaluate ctx q in
  Alcotest.(check int) "no rows" 0 (List.length rows);
  (* Lazy hash build: the base table is never read for an empty window. *)
  Alcotest.(check int) "base side untouched" 0 (List.assoc "r" reads)

(* Regression: the internal no-timestamp sentinel (max_int) must never
   surface as an apply timestamp — all-base rows map to Time.origin, under
   both timestamp-combination rules. *)
let test_no_ts_sentinel_never_escapes () =
  List.iter
    (fun rule ->
      let s = two_table () in
      random_txns (Prng.create ~seed:414) s 40;
      let ctx = ctx_of s in
      ctx.C.Ctx.timestamp_rule <- rule;
      let rows, _ = C.Executor.evaluate ctx (C.Pquery.all_base 2) in
      Alcotest.(check bool) "got some rows" true (rows <> []);
      List.iter
        (fun (_, _, ts) ->
          Alcotest.(check int) "all-base row at origin" Time.origin ts)
        rows;
      (* Through execute and into the accumulated view delta too. *)
      ignore (C.Executor.execute ctx ~sign:1 (C.Pquery.all_base 2));
      Roll_delta.Delta.iter
        (fun (r : Roll_delta.Delta.row) ->
          if r.ts = max_int then
            Alcotest.failf "sentinel timestamp escaped into the view delta")
        ctx.C.Ctx.out)
    [ `Min; `Max ]

(* Forward queries (delta drives, base completes) must stamp rows with the
   delta's timestamps, which are real commit times, never the sentinel. *)
let test_forward_ts_are_commit_times () =
  let s = two_table () in
  random_txns (Prng.create ~seed:415) s 40;
  let ctx = ctx_of s in
  Capture.advance s.capture;
  let now = Database.now s.db in
  let q = C.Pquery.replace (C.Pquery.all_base 2) 0 (C.Pquery.Win { lo = 0; hi = now }) in
  let rows, _ = C.Executor.evaluate ctx q in
  Alcotest.(check bool) "got some rows" true (rows <> []);
  List.iter
    (fun (_, _, ts) ->
      if ts <= 0 || ts > now then
        Alcotest.failf "timestamp %d outside (0,%d]" ts now)
    rows

let suite =
  [
    qtest prop_pipeline_matches_reference;
    Alcotest.test_case "single-source plan" `Quick test_single_source;
    Alcotest.test_case "no equi-join falls back to nested loop" `Quick
      test_no_equi_join_nested_loop;
    Alcotest.test_case "access path prefers index" `Quick
      test_access_path_prefers_index;
    Alcotest.test_case "empty window" `Quick test_empty_window;
    Alcotest.test_case "no_ts sentinel never escapes" `Quick
      test_no_ts_sentinel_never_escapes;
    Alcotest.test_case "forward timestamps are commit times" `Quick
      test_forward_ts_are_commit_times;
  ]
