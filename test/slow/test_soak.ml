(* Soak tests: long randomized end-to-end runs exercising every process
   (updates, capture lag, propagation, apply, GC, checkpoint/restart) with
   failure injection, checked against the oracle at every refresh. *)

open Test_support.Helpers
module Time = Roll_delta.Time
module Wal_codec = Roll_storage.Wal_codec
module C = Roll_core

(* A long adversarial schedule on the 3-way view: random bursts of updates,
   manual capture that lags behind and catches up in chunks, propagation in
   unpredictable dribbles, applies to random reachable targets, periodic
   GC. *)
let test_adversarial_schedule () =
  let s = three_table () in
  let rng = Prng.create ~seed:160 in
  random_txns rng s 15;
  let ctx = ctx_of s in
  (* Manual capture: the driver advances it, sometimes only partially
     between propagation steps, always fully before a step runs (the
     "propagate waits for capture" protocol). *)
  ctx.C.Ctx.auto_capture <- false;
  ctx.C.Ctx.on_execute <-
    (fun () ->
      if Prng.chance rng 0.5 then random_txns rng s (Prng.int rng 3);
      Roll_capture.Capture.advance s.capture);
  let rolling = C.Rolling.create ctx ~t_initial:Time.origin in
  let apply = C.Apply.create_empty ctx ~t_initial:Time.origin in
  let policy i = [| 2; 5; 9 |].(i) in
  for round = 1 to 60 do
    (* Updates arrive in bursts; capture lags behind. *)
    random_txns rng s (Prng.int rng 6);
    Roll_capture.Capture.advance ~max_records:(Prng.int rng 8) s.capture;
    (* Propagation dribbles. *)
    Roll_capture.Capture.advance s.capture;
    for _ = 1 to Prng.int rng 4 do
      match C.Rolling.step rolling ~policy with `Advanced _ | `Idle -> ()
    done;
    (* Apply to a random reachable point. *)
    let hwm = C.Rolling.hwm rolling in
    if hwm > C.Apply.as_of apply && Prng.chance rng 0.6 then begin
      let target = Prng.int_in rng ~lo:(C.Apply.as_of apply) ~hi:hwm in
      C.Apply.roll_to apply ~hwm target;
      let expected = C.Oracle.view_at s.history s.view target in
      if not (Roll_relation.Relation.equal expected (C.Apply.contents apply)) then
        Alcotest.failf "round %d: view diverged at t=%d" round target
    end;
    (* Occasionally garbage-collect applied delta rows. *)
    if round mod 15 = 0 then ignore (C.Apply.prune_applied apply)
  done

(* Checkpoint/restart mid-soak, twice, with churn around each restart. *)
let test_soak_with_restarts () =
  let wal_path = Filename.temp_file "soak_wal" ".log" in
  let ckpt_path = Filename.temp_file "soak" ".ckpt" in
  Fun.protect
    ~finally:(fun () ->
      Sys.remove wal_path;
      Sys.remove ckpt_path)
    (fun () ->
      let rng = Prng.create ~seed:161 in
      (* Generation 0. *)
      let s = ref (two_table ()) in
      random_txns rng !s 20;
      let ctx = ref (ctx_of !s) in
      let rolling = ref (C.Rolling.create !ctx ~t_initial:Time.origin) in
      let apply = ref (C.Apply.create_empty !ctx ~t_initial:Time.origin) in
      for generation = 1 to 3 do
        (* Work for a while. *)
        random_txns rng !s (10 + Prng.int rng 20);
        let target = Database.now !s.db in
        C.Rolling.run_until !rolling ~target
          ~policy:(C.Rolling.per_relation [| 3; 8 |]);
        let hwm = C.Rolling.hwm !rolling in
        let roll_target = Prng.int_in rng ~lo:(C.Apply.as_of !apply) ~hi:hwm in
        C.Apply.roll_to !apply ~hwm roll_target;
        (* Crash: persist WAL + checkpoint, restart everything. *)
        Wal_codec.save_file (Database.wal !s.db) wal_path;
        C.Checkpoint.save !ctx ~hwm ~apply:!apply ckpt_path;
        let s2 = two_table () in
        Database.restore s2.db (Wal_codec.load_file wal_path);
        Roll_capture.Capture.advance s2.capture;
        let ctx2, apply2, rolling2 =
          C.Checkpoint.resume s2.db s2.capture s2.view ckpt_path
        in
        s := s2;
        ctx := ctx2;
        apply := apply2;
        rolling := rolling2;
        (* Verify immediately after restart. *)
        let expected = C.Oracle.view_at s2.history s2.view (C.Apply.as_of apply2) in
        if not (Roll_relation.Relation.equal expected (C.Apply.contents apply2)) then
          Alcotest.failf "generation %d: state wrong after restart" generation
      done;
      (* Final convergence. *)
      random_txns rng !s 15;
      let target = Database.now !s.db in
      C.Rolling.run_until !rolling ~target ~policy:(C.Rolling.uniform 5);
      C.Apply.roll_to !apply ~hwm:(C.Rolling.hwm !rolling) target;
      Alcotest.check relation "final state across 3 restarts"
        (C.Oracle.view_at !s.history !s.view target)
        (C.Apply.contents !apply))

(* Alternate propagation processes over one delta: Propagate for a while,
   then rolling, then deferred would be invalid (different bookkeeping),
   but Propagate -> Rolling is legal when the rolling frontiers start at
   Propagate's hwm. *)
let test_process_handoff () =
  let s = two_table () in
  let rng = Prng.create ~seed:162 in
  random_txns rng s 25;
  let ctx = ctx_of s in
  let p = C.Propagate.create ctx ~t_initial:Time.origin in
  C.Propagate.run_until p ~target:(Database.now s.db / 2) ~interval:6;
  let handoff = C.Propagate.hwm p in
  random_txns rng s 25;
  let rolling = C.Rolling.create ctx ~t_initial:handoff in
  let target = Database.now s.db in
  C.Rolling.run_until rolling ~target ~policy:(C.Rolling.per_relation [| 4; 11 |]);
  check_ok
    (C.Oracle.check_timed_view_delta s.history s.view ctx.C.Ctx.out
       ~lo:Time.origin ~hi:(C.Rolling.hwm rolling))

let suite =
  [
    Alcotest.test_case "adversarial schedule, 60 rounds" `Slow test_adversarial_schedule;
    Alcotest.test_case "soak with restarts" `Slow test_soak_with_restarts;
    Alcotest.test_case "Propagate -> Rolling handoff" `Quick test_process_handoff;
  ]
