(* Slow suites, run via [dune build @slow] (not part of tier-1
   [dune runtest]): the soak schedules and an extended crash-recovery fuzz
   over seeds disjoint from the tier-1 fault suite's 0..99, with longer
   runs and a denser oracle sample. *)

let test_fault_fuzz_extended () =
  let points =
    Test_support.Fault_harness.run_seeds
      ~sample:(fun b -> b mod 2 = 0)
      ~txns:25 ~first:100 ~count:250 ()
  in
  if List.length points < 8 then
    Alcotest.failf "only %d distinct crash sites exercised: %s"
      (List.length points)
      (String.concat ", " points)

let fault_fuzz_suite =
  [
    Alcotest.test_case "fuzz: 250 extended crash-recovery runs" `Slow
      test_fault_fuzz_extended;
  ]

let () =
  Alcotest.run "rolling_ivm_slow"
    [ ("soak", Test_soak.suite); ("fault_fuzz", fault_fuzz_suite) ]
