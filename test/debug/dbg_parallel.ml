(* Scratch: diff serial vs parallel drain fingerprints for one seed. *)
open Test_support.Helpers
open Roll_relation
module C = Roll_core
module Prng = Roll_util.Prng
module Fault = Roll_util.Fault
module Retry = Roll_util.Retry
module Delta = Roll_delta.Delta

let a_only_view db name =
  let b = C.View.binder db [ ("a", "a") ] in
  C.View.create db ~name ~sources:[ ("a", "a") ]
    ~predicate:
      [ Predicate.cmp Predicate.Ge (Predicate.Col (b "a" "v"))
          (Predicate.Const (Value.Int 2)) ]
    ~project:[ b "a" "k"; b "a" "v" ]

let c_only_view db name =
  let b = C.View.binder db [ ("c", "c") ] in
  C.View.create db ~name ~sources:[ ("c", "c") ]
    ~predicate:
      [ Predicate.cmp Predicate.Ge (Predicate.Col (b "c" "w"))
          (Predicate.Const (Value.Int 1)) ]
    ~project:[ b "c" "l"; b "c" "w" ]

let run_drain ~seed ~domains =
  let s = three_table () in
  let rng = Prng.create ~seed in
  random_txns rng s 10;
  let service = C.Service.create ?domains s.db s.capture in
  let reg algo v = C.Service.register ~durable:true service ~algorithm:algo v in
  let abc = reg (C.Controller.Rolling (C.Rolling.uniform 4)) s.view in
  let a1 = reg (C.Controller.Rolling (C.Rolling.uniform 3)) (a_only_view s.db "a_only") in
  let c1 = reg (C.Controller.Rolling (C.Rolling.uniform 5)) (c_only_view s.db "c_only") in
  random_txns rng s 25;
  if seed mod 3 = 0 then
    (C.Controller.ctx abc).C.Ctx.fault <-
      Fault.transient_at "rolling.post_forward" ~hit:2 ~failures:2;
  if seed mod 7 = 0 then
    (C.Controller.ctx a1).C.Ctx.fault <-
      Fault.transient_at "exec.query" ~hit:1 ~failures:1;
  let result =
    C.Service.try_step_all ~sleep:(fun _ -> ()) service ~budget:10_000
      ~retry:(Retry.policy ~max_attempts:5 ())
  in
  (s, service, [ ("abc", abc); ("a_only", a1); ("c_only", c1) ], result)

let dump tag (s, _, ctls, result) =
  Printf.printf "=== %s (db now %d) ===\n" tag (Roll_storage.Database.now s.db);
  (match result with
  | Error (e : C.Service.step_error) ->
      Printf.printf "FAILED %s at %s\n" e.C.Service.view e.C.Service.point
  | Ok n -> Printf.printf "ok, %d steps\n" n);
  List.iter
    (fun (name, ctl) ->
      let f = C.Controller.frontier ctl in
      let out = (C.Controller.ctx ctl).C.Ctx.out in
      Printf.printf "%s: tfwd=[%s] hwm=%d rows=%d\n" name
        (String.concat ";" (Array.to_list (Array.map string_of_int f.C.Frontier.tfwd)))
        f.C.Frontier.hwm (Delta.length out);
      List.iteri
        (fun i (r : Delta.row) ->
          Printf.printf "  %3d: ts=%d count=%d tuple=%s\n" i r.Delta.ts
            r.Delta.count
            (Format.asprintf "%a" Tuple.pp r.Delta.tuple))
        (Delta.to_list out);
      match C.Frontier.latest (Roll_storage.Database.wal s.db) ~view:name with
      | Some fr ->
          Printf.printf "  marker: tfwd=[%s] hwm=%d as_of=%d\n"
            (String.concat ";"
               (Array.to_list (Array.map string_of_int fr.C.Frontier.tfwd)))
            fr.C.Frontier.hwm fr.C.Frontier.as_of
      | None -> Printf.printf "  marker: none\n")
    ctls

let () =
  let seed = int_of_string Sys.argv.(1) in
  dump "serial" (run_drain ~seed ~domains:None);
  dump "parallel" (run_drain ~seed ~domains:(Some 4))
