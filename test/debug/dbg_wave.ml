(* Scratch: are waves forming on the star workload? *)
module C = Roll_core
module W = Roll_workload
module Predicate = Roll_relation.Predicate

let geti i d = try int_of_string Sys.argv.(i) with _ -> d
let star_config =
  { W.Star.default_config with n_dimensions = 4; dim_size = geti 2 1500;
    fact_initial = geti 3 1500; seed = 31 }

let sub_view star ~name ~dim =
  let db = W.Star.db star in
  let sources = [ (W.Star.fact_table star, "f"); (W.Star.dim_table star dim, "d") ] in
  let bind = C.View.binder db sources in
  C.View.create db ~name ~sources
    ~predicate:[ Predicate.join (bind "f" (Printf.sprintf "d%d_key" dim)) (bind "d" "key") ]
    ~project:[ bind "f" "measure"; bind "d" "attr" ]

let () =
  let domains = int_of_string Sys.argv.(1) in
  let star = W.Star.create star_config in
  W.Star.load_initial star;
  let db = W.Star.db star in
  let service = C.Service.create ~domains ~default_sla:50 db (W.Star.capture star) in
  let ctls =
    List.init 4 (fun dim ->
        let v = sub_view star ~name:(Printf.sprintf "star%d" dim) ~dim in
        let ctl = C.Service.register service
            ~algorithm:(C.Controller.Rolling (C.Rolling.per_relation [| geti 5 8; 64 |])) v in
        W.Star.mixed_txns star ~n:(geti 6 12) ~dim_fraction:0.05;
        ctl)
  in
  W.Star.mixed_txns star ~n:(geti 4 480) ~dim_fraction:0.05;
  let t0 = Unix.gettimeofday () in
  let steps = C.Service.step_all service ~budget:max_int in
  Printf.printf "steps=%d wall=%.3f\n" steps (Unix.gettimeofday () -. t0);
  List.iter (fun ((kind, dom), n) -> Printf.printf "  %s dom%d: %d\n" kind dom n)
    (C.Service.ran_by_domain service);
  List.iter
    (fun (kind, (c : C.Stats.sched_counters)) ->
      Printf.printf "  sched %s: scheduled=%d ran=%d batched=%d deferred=%d\n"
        kind c.C.Stats.scheduled c.C.Stats.ran c.C.Stats.batched c.C.Stats.deferred)
    (C.Stats.sched_kinds (C.Scheduler.stats (C.Service.scheduler service)));
  List.iteri
    (fun i ctl ->
      let st = C.Controller.stats ctl in
      Printf.printf
        "  view%d: queries=%d cdcalls=%d scanned=%d probed=%d emitted=%d exec_wall=%.3f\n"
        i (C.Stats.queries st) (C.Stats.compute_delta_calls st)
        (C.Stats.rows_scanned st) (C.Stats.rows_probed st)
        (C.Stats.rows_emitted st) (C.Stats.exec_wall st))
    ctls;
  C.Service.shutdown service
