(* The unified maintenance scheduler: policy ordering, capture
   backpressure (with and without fault injection), full maintain drains
   and the service's durable pause/crash/recover path. *)

open Test_support.Helpers
module Harness = Test_support.Fault_harness
module Fault = Roll_util.Fault
module C = Roll_core

let sched_counter service kind =
  C.Stats.sched_kind (C.Scheduler.stats (C.Service.scheduler service)) kind

(* Two single-source views over the two_table scenario, so propagation
   stays legal while the scheduler (not the context) drives capture:
   multi-source compensation windows would reach each step's own commit
   time, past any lagging capture hwm. *)
let single_source_scenario ?policy ?capture_batch () =
  let s = two_table () in
  let br = C.View.binder s.db [ ("r", "r") ] in
  let vr =
    C.View.create s.db ~name:"vr" ~sources:[ ("r", "r") ] ~predicate:[]
      ~project:[ br "r" "k"; br "r" "v" ]
  in
  let bs = C.View.binder s.db [ ("s", "s") ] in
  let vs =
    C.View.create s.db ~name:"vs" ~sources:[ ("s", "s") ] ~predicate:[]
      ~project:[ bs "s" "k"; bs "s" "w" ]
  in
  let service = C.Service.create ?policy ?capture_batch s.db s.capture in
  let ctl_r =
    C.Service.register service ~algorithm:(C.Controller.Uniform 2) vr
  in
  let ctl_s =
    C.Service.register service ~algorithm:(C.Controller.Uniform 3) vs
  in
  (* Scheduler-managed capture: steps must not advance the cursor
     themselves, so capture lag is real and backpressure must resolve it. *)
  (C.Controller.ctx ctl_r).C.Ctx.auto_capture <- false;
  (C.Controller.ctx ctl_s).C.Ctx.auto_capture <- false;
  (s, service)

let check_view_contents s service name =
  let ctl = C.Service.controller service name in
  let target = C.Controller.hwm ctl in
  C.Controller.refresh_to ctl target;
  Alcotest.check relation (name ^ " contents vs oracle")
    (C.Oracle.view_at s.history (C.Controller.view ctl) target)
    (C.Controller.contents ctl)

(* Capture backpressure: with the cursor far behind, every propagate window
   reaches past the capture hwm; the drain must defer those steps, boost
   batched capture advances, and still finish fully caught up — lag can
   defer propagation but never deadlock it (and never let a window cursor
   read past the hwm, which would raise Invalid_argument). *)
let test_backpressure () =
  let s, service = single_source_scenario ~capture_batch:4 () in
  random_txns (Prng.create ~seed:501) s 40;
  Alcotest.(check bool) "capture is behind" true
    (Roll_capture.Capture.lag s.capture > 0);
  let steps = C.Service.step_all service ~budget:1000 in
  Alcotest.(check bool) "steps ran" true (steps > 0);
  let propagate = sched_counter service "propagate" in
  let capture = sched_counter service "capture" in
  Alcotest.(check bool) "propagate steps were deferred" true
    (propagate.C.Stats.deferred > 0);
  Alcotest.(check bool) "capture was boosted by backpressure" true
    (capture.C.Stats.backpressured > 0);
  Alcotest.(check bool) "capture advances ran" true (capture.C.Stats.ran > 0);
  List.iter
    (fun (st : C.Service.status) ->
      Alcotest.(check int) (st.name ^ " caught up") 0 st.staleness)
    (C.Service.status service);
  List.iter (check_view_contents s service) (C.Service.names service)

(* The same capture-lag scenario with a transient fault inside capture
   itself: the reliable drain retries the advance (the fault point fires
   before any delta mutation, so re-running is clean) and still converges. *)
let test_backpressure_with_faults () =
  let s, service = single_source_scenario ~capture_batch:4 () in
  random_txns (Prng.create ~seed:502) s 40;
  Roll_capture.Capture.set_fault s.capture
    (Fault.transient_at "capture.record" ~hit:3 ~failures:2);
  (match
     C.Service.try_step_all service ~budget:1000
       ~retry:(Roll_util.Retry.policy ~max_attempts:4 ())
   with
  | Ok steps -> Alcotest.(check bool) "steps ran" true (steps > 0)
  | Error (e : C.Service.step_error) ->
      Alcotest.failf "drain failed permanently: %s at %s" e.view e.point);
  Alcotest.(check bool) "capture retries counted" true
    (C.Stats.retries (C.Scheduler.stats (C.Service.scheduler service)) > 0);
  Alcotest.(check bool) "backpressure fired" true
    ((sched_counter service "capture").C.Stats.backpressured > 0);
  List.iter (check_view_contents s service) (C.Service.names service)

(* A capture advance that keeps failing surfaces as a typed step_error
   under the "(capture)" pseudo-view instead of an exception. *)
let test_capture_permanent_failure () =
  let s, service = single_source_scenario ~capture_batch:4 () in
  random_txns (Prng.create ~seed:503) s 20;
  Roll_capture.Capture.set_fault s.capture
    (Fault.transient_at "capture.record" ~hit:2 ~failures:100);
  match
    C.Service.try_step_all service ~budget:1000
      ~retry:(Roll_util.Retry.policy ~max_attempts:3 ())
  with
  | Ok _ -> Alcotest.fail "expected a permanent capture failure"
  | Error (e : C.Service.step_error) ->
      Alcotest.(check string) "capture pseudo-view" "(capture)" e.view;
      Alcotest.(check string) "fault point" "capture.record" e.point;
      Alcotest.(check int) "attempts exhausted" 3 e.attempts

(* Slack policy is EDF on slack: with equal staleness, the view with the
   tighter SLA is at the front of the queue. *)
let test_slack_ordering () =
  let s, service = single_source_scenario () in
  C.Service.set_sla service "vs" 5;
  C.Service.set_sla service "vr" 500;
  random_txns (Prng.create ~seed:504) s 15;
  Roll_capture.Capture.advance s.capture;
  match C.Service.schedule service with
  | { C.Scheduler.item = C.Scheduler.Propagate_step { view; _ }; slack; _ } :: _
    ->
      Alcotest.(check string) "tightest SLA first" "vs" view;
      Alcotest.(check bool) "its slack is lowest" true (slack < 500)
  | _ -> Alcotest.fail "expected a propagate step at the head of the queue"

(* Round_robin sweeps in registration order regardless of slack. *)
let test_round_robin_ordering () =
  let s, service =
    single_source_scenario ~policy:C.Scheduler.Round_robin ()
  in
  C.Service.set_sla service "vs" 5 (* urgent, but registered second *);
  random_txns (Prng.create ~seed:505) s 15;
  Roll_capture.Capture.advance s.capture;
  (match C.Service.schedule service with
  | { C.Scheduler.item = C.Scheduler.Propagate_step { view; _ }; _ } :: _ ->
      Alcotest.(check string) "registration order first" "vr" view
  | _ -> Alcotest.fail "expected a propagate step at the head of the queue");
  let steps = C.Service.step_all service ~budget:1000 in
  Alcotest.(check bool) "both views progressed" true (steps > 1);
  List.iter
    (fun (st : C.Service.status) ->
      Alcotest.(check int) (st.name ^ " caught up") 0 st.staleness)
    (C.Service.status service)

(* maintain drains the full item vocabulary: propagate, then apply rolls
   the stored views forward, due checkpoints snapshot, due gc prunes. *)
let test_maintain_full_drain () =
  let s = two_table () in
  let service = C.Service.create ~gc_threshold:1 s.db s.capture in
  let ctl =
    C.Service.register ~durable:true service
      ~algorithm:(C.Controller.Rolling (C.Rolling.uniform 4))
      s.view
  in
  let ckpt = Filename.temp_file "schedtest" ".ckpt" in
  Fun.protect ~finally:(fun () -> try Sys.remove ckpt with Sys_error _ -> ())
  @@ fun () ->
  C.Service.set_checkpoint service "rs" ~path:ckpt ~every:1;
  random_txns (Prng.create ~seed:506) s 25;
  (match C.Service.maintain service ~budget:500 with
  | Ok items -> Alcotest.(check bool) "items executed" true (items > 0)
  | Error (e : C.Service.step_error) ->
      Alcotest.failf "maintain failed: %s at %s" e.view e.point);
  Alcotest.(check bool) "apply ran" true
    ((sched_counter service "apply").C.Stats.ran > 0);
  Alcotest.(check bool) "checkpoint ran" true
    ((sched_counter service "checkpoint").C.Stats.ran > 0);
  Alcotest.(check bool) "gc ran" true
    ((sched_counter service "gc").C.Stats.ran > 0);
  Alcotest.(check bool) "checkpoint file written" true (Sys.file_exists ckpt);
  Alcotest.(check bool) "stored view rolled forward" true
    (C.Controller.as_of ctl > 0);
  Alcotest.check relation "contents vs oracle"
    (C.Oracle.view_at s.history s.view (C.Controller.as_of ctl))
    (C.Controller.contents ctl)

(* Pause mid-trajectory, crash, recover from the WAL through
   register_recovered: the revived view resumes from the durable frontier
   with exactly-once apply semantics (contents match the oracle at the
   recorded as_of — a double apply would double multiset counts). *)
let test_pause_crash_recover () =
  let s = two_table () in
  let service = C.Service.create s.db s.capture in
  let algorithm = C.Controller.Rolling (C.Rolling.uniform 3) in
  let ctl = C.Service.register ~durable:true service ~algorithm s.view in
  let rng = Prng.create ~seed:507 in
  random_txns rng s 20;
  (* Partial progress: a few steps and one apply, then pause. *)
  ignore (C.Service.step_all service ~budget:5);
  C.Controller.refresh_to ctl (C.Controller.hwm ctl);
  C.Service.pause service "rs";
  random_txns rng s 10;
  Alcotest.(check int) "paused view takes no steps" 0
    (C.Service.step_all service ~budget:50);
  let durable =
    match C.Frontier.latest (Database.wal s.db) ~view:"rs" with
    | Some f -> f
    | None -> Alcotest.fail "no durable frontier recorded"
  in
  (* Crash: all process state is lost; only base tables + WAL survive. *)
  let s2 = Harness.restart two_table s.db in
  let service2 = C.Service.create s2.db s2.capture in
  let ctl2 = C.Service.register_recovered service2 ~algorithm s2.view in
  Alcotest.(check int) "resumed at durable hwm" durable.C.Frontier.hwm
    (C.Controller.hwm ctl2);
  Alcotest.(check int) "resumed at durable as_of" durable.C.Frontier.as_of
    (C.Controller.as_of ctl2);
  Alcotest.check relation "no double apply after recovery"
    (C.Oracle.view_at s2.history s2.view (C.Controller.as_of ctl2))
    (C.Controller.contents ctl2);
  Alcotest.(check int) "one recovery counted" 1
    (C.Stats.recoveries (C.Controller.stats ctl2));
  (* The revived service picks the view up where the pause left it. *)
  Alcotest.(check bool) "recovered view is not paused" true
    (C.Service.step_all service2 ~budget:1000 > 0);
  C.Service.refresh_all service2;
  Alcotest.check relation "final contents after resume"
    (C.Oracle.view_at s2.history s2.view (C.Controller.as_of ctl2))
    (C.Controller.contents ctl2)

(* Reader boost: a blocked reader (the rolld engine's census) pulls its
   view's propagate steps ahead of a tighter-SLA view with no waiting
   readers — and the drain still catches everyone up, so the boost cannot
   starve the idle view. *)
let test_reader_boost_ordering () =
  let s, service = single_source_scenario () in
  C.Service.set_sla service "vr" 5;
  C.Service.set_sla service "vs" 500;
  random_txns (Prng.create ~seed:508) s 15;
  Roll_capture.Capture.advance s.capture;
  (* Sanity: with no readers, the tight-SLA view leads the queue. *)
  (match C.Service.schedule service with
  | { C.Scheduler.item = C.Scheduler.Propagate_step { view; _ }; readers; _ }
    :: _ ->
      Alcotest.(check string) "tight SLA first without readers" "vr" view;
      Alcotest.(check int) "no readers counted" 0 readers
  | _ -> Alcotest.fail "expected a propagate step at the head of the queue");
  C.Service.set_read_demand service (fun view ->
      if view = "vs" then 2 else 0);
  (match C.Service.schedule service with
  | { C.Scheduler.item = C.Scheduler.Propagate_step { view; _ }; readers; _ }
    :: _ ->
      Alcotest.(check string) "boosted view jumps the queue" "vs" view;
      Alcotest.(check int) "blocked readers counted" 2 readers
  | _ -> Alcotest.fail "expected a propagate step at the head of the queue");
  (* No starvation: the same drain still catches the idle view up. *)
  let steps = C.Service.step_all service ~budget:1000 in
  Alcotest.(check bool) "steps ran" true (steps > 0);
  List.iter
    (fun (st : C.Service.status) ->
      Alcotest.(check int) (st.name ^ " caught up despite the boost") 0
        st.staleness)
    (C.Service.status service);
  List.iter (check_view_contents s service) (C.Service.names service)

(* The boost stays strictly below capture backpressure: boosted propagate
   steps whose windows are under-captured still defer, capture still
   advances first, and the drain still converges — a waiting reader can
   reorder propagation but never force a read past the capture hwm. *)
let test_reader_boost_below_backpressure () =
  let s, service = single_source_scenario ~capture_batch:4 () in
  random_txns (Prng.create ~seed:509) s 40;
  C.Service.set_read_demand service (fun _ -> 1);
  Alcotest.(check bool) "capture is behind" true
    (Roll_capture.Capture.lag s.capture > 0);
  let steps = C.Service.step_all service ~budget:1000 in
  Alcotest.(check bool) "steps ran" true (steps > 0);
  Alcotest.(check bool) "boosted propagate steps still deferred" true
    ((sched_counter service "propagate").C.Stats.deferred > 0);
  Alcotest.(check bool) "capture still boosted ahead of readers" true
    ((sched_counter service "capture").C.Stats.backpressured > 0);
  List.iter
    (fun (st : C.Service.status) ->
      Alcotest.(check int) (st.name ^ " caught up") 0 st.staleness)
    (C.Service.status service);
  List.iter (check_view_contents s service) (C.Service.names service)

let test_sla_and_validation () =
  let _, service = single_source_scenario () in
  Alcotest.(check int) "default sla" 100 (C.Service.sla service "vr");
  C.Service.set_sla service "vr" 7;
  Alcotest.(check int) "sla updated" 7 (C.Service.sla service "vr");
  let st =
    List.find
      (fun (st : C.Service.status) -> st.name = "vr")
      (C.Service.status service)
  in
  Alcotest.(check int) "slack = sla - staleness" (7 - st.staleness) st.slack;
  Alcotest.check_raises "non-positive sla rejected"
    (Invalid_argument "Service.set_sla") (fun () ->
      C.Service.set_sla service "vr" 0);
  Alcotest.(check bool) "bad capture_batch rejected" true
    (try
       ignore
         (C.Scheduler.create ~capture_batch:0 (Database.create ())
            (Roll_capture.Capture.create (Database.create ())));
       false
     with Invalid_argument _ -> true)

let suite =
  [
    Alcotest.test_case "backpressure defers and boosts" `Quick test_backpressure;
    Alcotest.test_case "backpressure under faults" `Quick
      test_backpressure_with_faults;
    Alcotest.test_case "capture permanent failure" `Quick
      test_capture_permanent_failure;
    Alcotest.test_case "slack ordering" `Quick test_slack_ordering;
    Alcotest.test_case "round-robin ordering" `Quick test_round_robin_ordering;
    Alcotest.test_case "reader boost ordering" `Quick
      test_reader_boost_ordering;
    Alcotest.test_case "reader boost below backpressure" `Quick
      test_reader_boost_below_backpressure;
    Alcotest.test_case "maintain full drain" `Quick test_maintain_full_drain;
    Alcotest.test_case "pause, crash, recover" `Quick test_pause_crash_recover;
    Alcotest.test_case "sla and validation" `Quick test_sla_and_validation;
  ]
