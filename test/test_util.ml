(* Unit and property tests for the utility library. *)

module Vec = Roll_util.Vec
module Heap = Roll_util.Heap
module Prng = Roll_util.Prng
module Zipf = Roll_util.Zipf
module Summary = Roll_util.Summary

let qtest = QCheck_alcotest.to_alcotest

(* --- Vec --- *)

let test_vec_basic () =
  let v = Vec.create () in
  Alcotest.(check bool) "empty" true (Vec.is_empty v);
  Vec.push v 1;
  Vec.push v 2;
  Vec.push v 3;
  Alcotest.(check int) "length" 3 (Vec.length v);
  Alcotest.(check int) "get" 2 (Vec.get v 1);
  Vec.set v 1 9;
  Alcotest.(check int) "set" 9 (Vec.get v 1);
  Alcotest.(check (option int)) "last" (Some 3) (Vec.last v);
  Alcotest.(check (option int)) "pop" (Some 3) (Vec.pop v);
  Alcotest.(check int) "after pop" 2 (Vec.length v);
  Vec.clear v;
  Alcotest.(check bool) "cleared" true (Vec.is_empty v)

let test_vec_bounds () =
  let v = Vec.of_list [ 1; 2 ] in
  Alcotest.check_raises "get oob" (Invalid_argument "Vec.get") (fun () ->
      ignore (Vec.get v 2));
  Alcotest.check_raises "get negative" (Invalid_argument "Vec.get") (fun () ->
      ignore (Vec.get v (-1)));
  Alcotest.check_raises "set oob" (Invalid_argument "Vec.set") (fun () ->
      Vec.set v 5 0)

let test_vec_iter_range () =
  let v = Vec.of_list [ 0; 1; 2; 3; 4 ] in
  let seen = ref [] in
  Vec.iter_range (fun x -> seen := x :: !seen) v ~lo:1 ~hi:3;
  Alcotest.(check (list int)) "range" [ 1; 2 ] (List.rev !seen);
  seen := [];
  Vec.iter_range (fun x -> seen := x :: !seen) v ~lo:(-5) ~hi:50;
  Alcotest.(check int) "clamped" 5 (List.length !seen)

let test_vec_growth () =
  let v = Vec.create () in
  for i = 0 to 9999 do
    Vec.push v i
  done;
  Alcotest.(check int) "length" 10000 (Vec.length v);
  Alcotest.(check int) "first" 0 (Vec.get v 0);
  Alcotest.(check int) "last" 9999 (Vec.get v 9999);
  Alcotest.(check int) "fold" (9999 * 10000 / 2) (Vec.fold_left ( + ) 0 v)

let prop_vec_roundtrip =
  QCheck.Test.make ~name:"vec of_list/to_list roundtrip" ~count:200
    QCheck.(list int)
    (fun xs -> Vec.to_list (Vec.of_list xs) = xs)

let prop_vec_lower_bound =
  QCheck.Test.make ~name:"vec lower_bound matches linear scan" ~count:500
    QCheck.(pair (list small_nat) small_nat)
    (fun (xs, k) ->
      let xs = List.sort compare xs in
      let v = Vec.of_list xs in
      let expected =
        let rec scan i = function
          | [] -> i
          | x :: rest -> if x >= k then i else scan (i + 1) rest
        in
        scan 0 xs
      in
      Vec.lower_bound v ~key:(fun x -> x) k = expected)

(* --- Heap --- *)

let test_heap_order () =
  let h = Heap.create () in
  List.iter
    (fun (p, x) -> Heap.add h ~priority:p x)
    [ (3.0, "c"); (1.0, "a"); (2.0, "b"); (0.5, "z") ];
  let drain () =
    let rec loop acc =
      match Heap.pop h with None -> List.rev acc | Some (_, x) -> loop (x :: acc)
    in
    loop []
  in
  Alcotest.(check (list string)) "sorted" [ "z"; "a"; "b"; "c" ] (drain ())

let test_heap_fifo_ties () =
  let h = Heap.create () in
  List.iter (fun x -> Heap.add h ~priority:1.0 x) [ 1; 2; 3; 4; 5 ];
  let rec drain acc =
    match Heap.pop h with None -> List.rev acc | Some (_, x) -> drain (x :: acc)
  in
  Alcotest.(check (list int)) "insertion order on ties" [ 1; 2; 3; 4; 5 ] (drain [])

let test_heap_peek () =
  let h = Heap.create () in
  Alcotest.(check bool) "empty peek" true (Heap.peek h = None);
  Heap.add h ~priority:2.0 "b";
  Heap.add h ~priority:1.0 "a";
  (match Heap.peek h with
  | Some (p, x) ->
      Alcotest.(check (float 0.0)) "peek priority" 1.0 p;
      Alcotest.(check string) "peek value" "a" x
  | None -> Alcotest.fail "expected peek");
  Alcotest.(check int) "peek does not remove" 2 (Heap.length h)

let prop_heap_sorts =
  QCheck.Test.make ~name:"heap drains in priority order" ~count:300
    QCheck.(list (pair (float_range 0.0 100.0) int))
    (fun items ->
      let h = Heap.create () in
      List.iter (fun (p, x) -> Heap.add h ~priority:p x) items;
      let rec drain acc =
        match Heap.pop h with None -> List.rev acc | Some (p, _) -> drain (p :: acc)
      in
      let prios = drain [] in
      List.sort compare prios = prios)

(* --- Prng / Zipf --- *)

let test_prng_deterministic () =
  let a = Prng.create ~seed:5 and b = Prng.create ~seed:5 in
  let xs g = List.init 20 (fun _ -> Prng.int g 1000) in
  Alcotest.(check (list int)) "same seed, same stream" (xs a) (xs b)

let test_prng_ranges () =
  let g = Prng.create ~seed:1 in
  for _ = 1 to 1000 do
    let x = Prng.int_in g ~lo:5 ~hi:9 in
    if x < 5 || x > 9 then Alcotest.fail "int_in out of range"
  done;
  Alcotest.check_raises "bad range" (Invalid_argument "Prng.int_in") (fun () ->
      ignore (Prng.int_in g ~lo:3 ~hi:2))

let test_zipf_skew () =
  let g = Prng.create ~seed:2 in
  let z = Zipf.create ~n:100 ~theta:1.2 in
  let counts = Array.make 100 0 in
  for _ = 1 to 20000 do
    let k = Zipf.sample z g in
    counts.(k) <- counts.(k) + 1
  done;
  Alcotest.(check bool) "rank 0 beats rank 50" true (counts.(0) > counts.(50));
  Alcotest.(check bool) "rank 0 dominates" true
    (counts.(0) > 20000 / 20)

let test_zipf_uniform () =
  let g = Prng.create ~seed:3 in
  let z = Zipf.create ~n:10 ~theta:0.0 in
  let counts = Array.make 10 0 in
  for _ = 1 to 20000 do
    counts.(Zipf.sample z g) <- counts.(Zipf.sample z g) + 1
  done;
  Array.iter
    (fun c ->
      if c < 1000 || c > 3500 then
        Alcotest.failf "theta=0 should be near-uniform, got bucket %d" c)
    counts

(* Degenerate parameters are rejected up front rather than producing a
   NaN-poisoned cdf whose sampler never terminates or always returns 0. *)
let test_zipf_degenerate () =
  let rejected msg f =
    Alcotest.(check bool) msg true
      (try
         ignore (f ());
         false
       with Invalid_argument _ -> true)
  in
  rejected "n = 0" (fun () -> Zipf.create ~n:0 ~theta:1.0);
  rejected "n < 0" (fun () -> Zipf.create ~n:(-3) ~theta:1.0);
  rejected "theta < 0" (fun () -> Zipf.create ~n:10 ~theta:(-0.5));
  rejected "theta nan" (fun () -> Zipf.create ~n:10 ~theta:Float.nan);
  rejected "theta infinite" (fun () -> Zipf.create ~n:10 ~theta:Float.infinity);
  (* The surviving edges still sample within range. *)
  let g = Prng.create ~seed:4 in
  let solo = Zipf.create ~n:1 ~theta:2.0 in
  for _ = 1 to 100 do
    Alcotest.(check int) "n=1 always rank 0" 0 (Zipf.sample solo g)
  done;
  let sharp = Zipf.create ~n:4 ~theta:50.0 in
  for _ = 1 to 100 do
    Alcotest.(check int) "huge theta collapses to rank 0" 0
      (Zipf.sample sharp g)
  done

(* --- Summary --- *)

let test_summary_stats () =
  let s = Summary.create () in
  List.iter (Summary.add s) [ 2.0; 4.0; 4.0; 4.0; 5.0; 5.0; 7.0; 9.0 ];
  Alcotest.(check int) "count" 8 (Summary.count s);
  Alcotest.(check (float 1e-9)) "mean" 5.0 (Summary.mean s);
  Alcotest.(check (float 1e-6)) "stddev (sample)" 2.13809 (Summary.stddev s);
  Alcotest.(check (float 0.0)) "min" 2.0 (Summary.min_value s);
  Alcotest.(check (float 0.0)) "max" 9.0 (Summary.max_value s);
  Alcotest.(check (float 1e-9)) "total" 40.0 (Summary.total s)

let test_summary_empty () =
  let s = Summary.create () in
  Alcotest.(check int) "count" 0 (Summary.count s);
  Alcotest.(check (float 0.0)) "mean" 0.0 (Summary.mean s);
  Alcotest.(check (float 0.0)) "stddev" 0.0 (Summary.stddev s)

let prop_summary_mean =
  QCheck.Test.make ~name:"summary mean matches naive mean" ~count:300
    QCheck.(list_of_size Gen.(1 -- 50) (float_range (-1000.) 1000.))
    (fun xs ->
      let s = Summary.create () in
      List.iter (Summary.add s) xs;
      let naive = List.fold_left ( +. ) 0.0 xs /. float_of_int (List.length xs) in
      abs_float (Summary.mean s -. naive) < 1e-6)

(* --- Tablefmt --- *)

let test_tablefmt_alignment () =
  let out =
    Roll_util.Tablefmt.render ~header:[ "a"; "bb" ]
      [ [ "xxx"; "y" ]; [ "z" ] ]
  in
  let lines = String.split_on_char '\n' out in
  (match lines with
  | header :: rule :: _ ->
      Alcotest.(check int) "header and rule same width" (String.length header)
        (String.length rule)
  | _ -> Alcotest.fail "expected at least two lines");
  Alcotest.(check bool) "contains padded cell" true
    (String.length out > 0)

let suite =
  [
    Alcotest.test_case "vec basics" `Quick test_vec_basic;
    Alcotest.test_case "vec bounds checks" `Quick test_vec_bounds;
    Alcotest.test_case "vec iter_range" `Quick test_vec_iter_range;
    Alcotest.test_case "vec growth to 10k" `Quick test_vec_growth;
    qtest prop_vec_roundtrip;
    qtest prop_vec_lower_bound;
    Alcotest.test_case "heap orders by priority" `Quick test_heap_order;
    Alcotest.test_case "heap breaks ties FIFO" `Quick test_heap_fifo_ties;
    Alcotest.test_case "heap peek" `Quick test_heap_peek;
    qtest prop_heap_sorts;
    Alcotest.test_case "prng determinism" `Quick test_prng_deterministic;
    Alcotest.test_case "prng ranges" `Quick test_prng_ranges;
    Alcotest.test_case "zipf skew" `Quick test_zipf_skew;
    Alcotest.test_case "zipf theta=0 uniform" `Quick test_zipf_uniform;
    Alcotest.test_case "zipf degenerate params rejected" `Quick
      test_zipf_degenerate;
    Alcotest.test_case "summary statistics" `Quick test_summary_stats;
    Alcotest.test_case "summary empty" `Quick test_summary_empty;
    qtest prop_summary_mean;
    Alcotest.test_case "tablefmt alignment" `Quick test_tablefmt_alignment;
  ]

let test_percentiles () =
  let s = Summary.create ~keep_samples:true () in
  for i = 1 to 100 do
    Summary.add s (float_of_int i)
  done;
  Alcotest.(check (float 1e-9)) "p50" 50.0 (Summary.percentile s 0.5);
  Alcotest.(check (float 1e-9)) "p95" 95.0 (Summary.percentile s 0.95);
  Alcotest.(check (float 1e-9)) "p100" 100.0 (Summary.percentile s 1.0);
  let no_samples = Summary.create () in
  Summary.add no_samples 1.0;
  Alcotest.(check bool) "no samples raises" true
    (try
       ignore (Summary.percentile no_samples 0.5);
       false
     with Invalid_argument _ -> true)

let suite = suite @ [ Alcotest.test_case "percentiles" `Quick test_percentiles ]

(* Stats: counters, footprint retention toggle, reset. *)
let test_stats_module () =
  let module Stats = Roll_core.Stats in
  let st = Stats.create () in
  let fp rows =
    { Stats.exec = 1; description = "q"; reads = [ ("r", rows) ]; emitted = 2 }
  in
  Stats.record_query st (fp 10);
  Stats.incr_compute_delta_calls st;
  Alcotest.(check int) "queries" 1 (Stats.queries st);
  Alcotest.(check int) "rows read" 10 (Stats.rows_read st);
  Alcotest.(check int) "rows emitted" 2 (Stats.rows_emitted st);
  Alcotest.(check int) "cd calls" 1 (Stats.compute_delta_calls st);
  Alcotest.(check int) "footprints kept" 1 (List.length (Stats.footprints st));
  Stats.set_keep_footprints st false;
  Stats.record_query st (fp 5);
  Alcotest.(check int) "counters still updated" 15 (Stats.rows_read st);
  Alcotest.(check int) "footprint dropped" 1 (List.length (Stats.footprints st));
  Stats.reset st;
  Alcotest.(check int) "reset" 0 (Stats.queries st);
  Alcotest.(check int) "reset footprints" 0 (List.length (Stats.footprints st))

let suite = suite @ [ Alcotest.test_case "stats module" `Quick test_stats_module ]
