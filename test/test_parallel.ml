(* Multicore maintenance: a service draining through a worker-domain pool
   must maintain bit-identical state to the serial drain — same view-delta
   rows, same frontier vectors, same durable frontier markers, same
   contents vs the oracle — across fault-harness seeds, while the
   domain-safe Stats and Memo structures keep exact totals under
   concurrent hammering. *)

open Test_support.Helpers
open Roll_relation
module C = Roll_core
module Prng = Roll_util.Prng
module Fault = Roll_util.Fault
module Retry = Roll_util.Retry
module Delta = Roll_delta.Delta

(* Pool size for the parallel side: honors ROLL_DOMAINS (the CI matrix
   runs the suite at 1 and 4) and defaults to 4. At ROLL_DOMAINS=1 the
   "parallel" side still exercises the whole wave machinery — frozen-clock
   steps, post-join durability — just with singleton waves. *)
let pool_domains =
  match C.Service.env_domains () with Some n -> n | None -> 4

(* Three views over the chain-join scenario with different source sets and
   intervals, so drains have genuinely disjoint windows to hand out as
   waves (identical windows deliberately serialize). *)
let a_only_view db name =
  let b = C.View.binder db [ ("a", "a") ] in
  C.View.create db ~name ~sources:[ ("a", "a") ]
    ~predicate:
      [
        Predicate.cmp Predicate.Ge
          (Predicate.Col (b "a" "v"))
          (Predicate.Const (Value.Int 2));
      ]
    ~project:[ b "a" "k"; b "a" "v" ]

let c_only_view db name =
  let b = C.View.binder db [ ("c", "c") ] in
  C.View.create db ~name ~sources:[ ("c", "c") ]
    ~predicate:
      [
        Predicate.cmp Predicate.Ge
          (Predicate.Col (b "c" "w"))
          (Predicate.Const (Value.Int 1));
      ]
    ~project:[ b "c" "l"; b "c" "w" ]

(* Build a scenario, register the three views durably, inject per-seed
   transient faults, and drain under the retry policy. The transaction
   stream is a pure function of [seed], so a serial and a parallel run see
   byte-identical input histories. *)
let run_drain ~seed ~domains =
  let s = three_table () in
  let rng = Prng.create ~seed in
  random_txns rng s 10;
  let service = C.Service.create ?domains s.db s.capture in
  let reg algo v = C.Service.register ~durable:true service ~algorithm:algo v in
  let abc = reg (C.Controller.Rolling (C.Rolling.uniform 4)) s.view in
  let a1 =
    reg (C.Controller.Rolling (C.Rolling.uniform 3)) (a_only_view s.db "a_only")
  in
  let c1 =
    reg (C.Controller.Rolling (C.Rolling.uniform 5)) (c_only_view s.db "c_only")
  in
  random_txns rng s 25;
  let data_now = Roll_storage.Database.now s.db in
  (* Deterministic per-work-item faults: hit counters live on each view's
     own context, and a view's steps run in frontier order regardless of
     which domain executes them, so the same window fails in both modes. *)
  if seed mod 3 = 0 then
    (C.Controller.ctx abc).C.Ctx.fault <-
      Fault.transient_at "rolling.post_forward" ~hit:2 ~failures:2;
  if seed mod 7 = 0 then
    (C.Controller.ctx a1).C.Ctx.fault <-
      Fault.transient_at "exec.query" ~hit:1 ~failures:1;
  let result =
    C.Service.try_step_all
      ~sleep:(fun _ -> ())
      service ~budget:10_000
      ~retry:(Retry.policy ~max_attempts:5 ())
  in
  (s, service, [ ("abc", abc); ("a_only", a1); ("c_only", c1) ], data_now,
   result)

(* Everything meaningful the drain left behind, per view: the literal
   view-delta row sequence and the latest durable frontier marker in the
   WAL. The raw in-memory [tfwd] values are deliberately excluded: each
   serial physical query commits a marker transaction to obtain its
   execution time (frozen-mode steps do not), so the two runs' clocks — and
   the trailing quiet-window frontiers chasing them — legitimately end at
   different absolute readings. Instead each run asserts it is fully caught
   up against its own clock. *)
let fingerprint (s, _service, ctls, _data_now, result) =
  match result with
  | Error (e : C.Service.step_error) ->
      `Failed (e.C.Service.view, e.C.Service.point)
  | Ok _ ->
      let now = Roll_storage.Database.now s.db in
      `Drained
        (List.map
           (fun (name, ctl) ->
             let f = C.Controller.frontier ctl in
             Alcotest.(check bool)
               (name ^ " fully caught up against its own clock")
               true
               (f.C.Frontier.hwm = now
               && Array.for_all (fun t -> t = now) f.C.Frontier.tfwd);
             ( name,
               Delta.to_list (C.Controller.ctx ctl).C.Ctx.out,
               C.Frontier.latest (Roll_storage.Database.wal s.db) ~view:name ))
           ctls)

let test_bit_identity () =
  for seed = 0 to 99 do
    let serial = run_drain ~seed ~domains:None in
    let parallel = run_drain ~seed ~domains:(Some pool_domains) in
    Alcotest.(check bool)
      (Printf.sprintf "seed %d: parallel drain bit-identical to serial" seed)
      true
      (fingerprint serial = fingerprint parallel);
    (* Roll both runs' stored views to the last data transaction and check
       contents against each other and the oracle. *)
    let (s_ser, _, ctls_ser, data_now, _) = serial in
    let (_, _, ctls_par, _, _) = parallel in
    List.iter2
      (fun (name, ctl_s) (_, ctl_p) ->
        C.Controller.refresh_to ctl_s data_now;
        C.Controller.refresh_to ctl_p data_now;
        Alcotest.(check relation)
          (Printf.sprintf "seed %d: %s contents identical" seed name)
          (C.Controller.contents ctl_s)
          (C.Controller.contents ctl_p);
        Alcotest.(check relation)
          (Printf.sprintf "seed %d: %s contents vs oracle" seed name)
          (C.Oracle.view_at s_ser.history (C.Controller.view ctl_s) data_now)
          (C.Controller.contents ctl_s))
      ctls_ser ctls_par;
    (* Release the pool's worker domains — 100 leaked pools would blow
       through the runtime's domain limit. *)
    let _, svc_par, _, _, _ = parallel in
    C.Service.shutdown svc_par
  done

(* A permanently failing step surfaces the same typed error from both
   drains: same view, same fault point. *)
let test_permanent_failure_parity () =
  let fail_one ~domains =
    let s = three_table () in
    random_txns (Prng.create ~seed:11) s 20;
    let service = C.Service.create ?domains s.db s.capture in
    let reg algo v = C.Service.register service ~algorithm:algo v in
    let abc = reg (C.Controller.Rolling (C.Rolling.uniform 4)) s.view in
    let _ =
      reg
        (C.Controller.Rolling (C.Rolling.uniform 3))
        (a_only_view s.db "a_only")
    in
    random_txns (Prng.create ~seed:12) s 20;
    (C.Controller.ctx abc).C.Ctx.fault <-
      Fault.transient_at "exec.query" ~hit:1 ~failures:1000;
    let r =
      C.Service.try_step_all
        ~sleep:(fun _ -> ())
        service ~budget:1000
        ~retry:(Retry.policy ~max_attempts:3 ())
    in
    C.Service.shutdown service;
    match r with
    | Ok _ -> Alcotest.fail "expected a permanent failure"
    | Error (e : C.Service.step_error) ->
        (e.C.Service.view, e.C.Service.point, e.C.Service.attempts)
  in
  Alcotest.(check (triple string string int))
    "same failure from serial and parallel drains"
    (fail_one ~domains:None)
    (fail_one ~domains:(Some pool_domains))

(* The pool actually executes on worker domains: with several views over
   disjoint tables, a multi-domain drain must record propagate items on
   domain slots other than 0. *)
let test_ran_by_domain () =
  if pool_domains > 1 then begin
    let _, service, _, _, result = run_drain ~seed:1 ~domains:(Some pool_domains) in
    (match result with
    | Ok steps -> Alcotest.(check bool) "drained some steps" true (steps > 0)
    | Error e -> Alcotest.failf "unexpected failure at %s" e.C.Service.point);
    Alcotest.(check bool) "propagate items ran on worker domains" true
      (List.exists
         (fun ((kind, domain), count) ->
           String.equal kind "propagate" && domain > 0 && count > 0)
         (C.Service.ran_by_domain service));
    Alcotest.(check int) "shard depth array sized to the pool"
      (C.Service.domains service)
      (Array.length (C.Service.shard_depths service));
    C.Service.shutdown service
  end

(* Stats under concurrent hammering from N domains: every counter lands,
   exact totals. *)
let test_stats_hammer () =
  let st = C.Stats.create () in
  let n_dom = 4 and per = 25_000 in
  let doms =
    List.init n_dom (fun _ ->
        Domain.spawn (fun () ->
            for _ = 1 to per do
              C.Stats.incr_retries st;
              C.Stats.incr_memo_hits st;
              C.Stats.add_shared_builds st 2;
              C.Stats.record_exec st ~scanned:1 ~probed:2 ~hash_builds:1
                ~wall:0.001
            done))
  in
  List.iter Domain.join doms;
  let total = n_dom * per in
  Alcotest.(check int) "retries exact" total (C.Stats.retries st);
  Alcotest.(check int) "memo hits exact" total (C.Stats.memo_hits st);
  Alcotest.(check int) "shared builds exact" (2 * total)
    (C.Stats.shared_builds st);
  Alcotest.(check int) "rows scanned exact" total (C.Stats.rows_scanned st);
  Alcotest.(check int) "rows probed exact" (2 * total) (C.Stats.rows_probed st);
  Alcotest.(check int) "hash builds exact" total (C.Stats.hash_builds st)

(* Memo under concurrent fills from N owner slots: every entry lands and
   hits count exactly; an owner-scoped eviction drops exactly that owner's
   entries and leaves the siblings' fills untouched. *)
let test_memo_hammer () =
  let memo = C.Memo.create () in
  let n_dom = 4 and per = 2_000 in
  let key owner i =
    {
      C.Memo.signature = Printf.sprintf "q%d" owner;
      tau = [| i |];
      t_new = i;
      sign = 1;
    }
  in
  let mark0 = C.Memo.mark memo in
  let doms =
    List.init n_dom (fun d ->
        Domain.spawn (fun () ->
            for i = 1 to per do
              C.Memo.add ~owner:d memo (key d i) [||];
              match C.Memo.find memo (key d i) with
              | Some _ -> ()
              | None -> failwith "just-added entry not found"
            done))
  in
  List.iter Domain.join doms;
  let total = n_dom * per in
  Alcotest.(check int) "all entries landed" total (C.Memo.size memo);
  Alcotest.(check int) "hits exact" total (C.Memo.hits memo);
  Alcotest.(check int) "no misses" 0 (C.Memo.misses memo);
  C.Memo.evict_since ~owner:0 memo mark0;
  Alcotest.(check int) "owner 0's entries evicted, siblings kept"
    ((n_dom - 1) * per)
    (C.Memo.size memo);
  Alcotest.(check bool) "evicted entry gone" true
    (C.Memo.find memo (key 0 1) = None);
  Alcotest.(check bool) "sibling entry survives" true
    (C.Memo.find memo (key 1 1) <> None)

let suite =
  [
    Alcotest.test_case "serial vs parallel drains bit-identical (seeds 0-99)"
      `Slow test_bit_identity;
    Alcotest.test_case "permanent failure parity" `Quick
      test_permanent_failure_parity;
    Alcotest.test_case "propagate items run on worker domains" `Quick
      test_ran_by_domain;
    Alcotest.test_case "stats exact totals under 4-domain hammer" `Quick
      test_stats_hammer;
    Alcotest.test_case "memo exact totals and owner-scoped eviction" `Quick
      test_memo_hammer;
  ]
