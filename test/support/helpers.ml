(* Shared scenario builders for the test suites: small schemas with heavy
   key collisions (to exercise joins), duplicate rows (multiset counts) and
   random insert/delete/update streams, plus update injection hooks that
   interleave transactions with propagation queries. *)

open Roll_relation
module Prng = Roll_util.Prng
module Time = Roll_delta.Time
module Delta = Roll_delta.Delta
module Database = Roll_storage.Database
module Table = Roll_storage.Table
module History = Roll_storage.History
module Capture = Roll_capture.Capture
module C = Roll_core

type scenario = {
  db : Database.t;
  capture : Capture.t;
  history : History.t;
  view : C.View.t;
}

let int_col name = { Schema.name; ty = Value.T_int }

(* R(k, v) joined with S(k, w) on k, projecting all data columns. Keys are
   drawn from a small domain (0..7) by [random_txn], so joins collide. *)
let two_table () =
  let db = Database.create () in
  let _ = Database.create_table db ~name:"r" (Schema.make [ int_col "k"; int_col "v" ]) in
  let _ = Database.create_table db ~name:"s" (Schema.make [ int_col "k"; int_col "w" ]) in
  let capture = Capture.create db in
  Capture.attach capture ~table:"r";
  Capture.attach capture ~table:"s";
  let b = C.View.binder db [ ("r", "r"); ("s", "s") ] in
  let view =
    C.View.create db ~name:"rs"
      ~sources:[ ("r", "r"); ("s", "s") ]
      ~predicate:[ Predicate.join (b "r" "k") (b "s" "k") ]
      ~project:[ b "r" "k"; b "r" "v"; b "s" "w" ]
  in
  { db; capture; history = History.create db; view }

(* Chain join: A(k, v) ⋈ B(k, l) ⋈ C(l, w). *)
let three_table () =
  let db = Database.create () in
  let _ = Database.create_table db ~name:"a" (Schema.make [ int_col "k"; int_col "v" ]) in
  let _ = Database.create_table db ~name:"b" (Schema.make [ int_col "k"; int_col "l" ]) in
  let _ = Database.create_table db ~name:"c" (Schema.make [ int_col "l"; int_col "w" ]) in
  let capture = Capture.create db in
  List.iter (fun table -> Capture.attach capture ~table) [ "a"; "b"; "c" ];
  let bind = C.View.binder db [ ("a", "a"); ("b", "b"); ("c", "c") ] in
  let view =
    C.View.create db ~name:"abc"
      ~sources:[ ("a", "a"); ("b", "b"); ("c", "c") ]
      ~predicate:
        [
          Predicate.join (bind "a" "k") (bind "b" "k");
          Predicate.join (bind "b" "l") (bind "c" "l");
        ]
      ~project:[ bind "a" "v"; bind "b" "k"; bind "c" "w" ]
  in
  { db; capture; history = History.create db; view }

(* R(k, v, tag) ⋈ S(k, w) on k, keeping only R rows with tag >= 1 and
   projecting k, v, w. Source 0 is narrowed by both a local filter and the
   projection, so the higher-order registry derives an auxiliary
   π_{k,v}(σ_{tag>=1}(R)) for it; source 1 is read at full width and gets
   none. The value domain puts tag in 0..4, so roughly a fifth of R is
   filtered out — the auxiliary is a strict subset, and fallback vs.
   substitution produce observably different scan shapes. *)
let filtered () =
  let db = Database.create () in
  let _ =
    Database.create_table db ~name:"r"
      (Schema.make [ int_col "k"; int_col "v"; int_col "tag" ])
  in
  let _ =
    Database.create_table db ~name:"s"
      (Schema.make [ int_col "k"; int_col "w" ])
  in
  let capture = Capture.create db in
  Capture.attach capture ~table:"r";
  Capture.attach capture ~table:"s";
  let b = C.View.binder db [ ("r", "r"); ("s", "s") ] in
  let view =
    C.View.create db ~name:"rsf"
      ~sources:[ ("r", "r"); ("s", "s") ]
      ~predicate:
        [
          Predicate.join (b "r" "k") (b "s" "k");
          Predicate.cmp Predicate.Ge
            (Predicate.Col (b "r" "tag"))
            (Predicate.Const (Value.Int 1));
        ]
      ~project:[ b "r" "k"; b "r" "v"; b "s" "w" ]
  in
  { db; capture; history = History.create db; view }

(* Commit one small random transaction against the scenario's base tables:
   inserts (possibly duplicating existing tuples), deletes of existing
   tuples, and updates. Keys are drawn from a small range so joins hit. *)
let random_txn rng s =
  let tables =
    Array.of_list (List.map (fun t -> Table.name t) (Database.tables s.db))
  in
  let table_name = Prng.pick rng tables in
  let table = Database.table s.db table_name in
  (* First column from the small key domain, the rest from the value
     domain — identical draw order to the historical 2-column generator,
     so existing seeds replay unchanged, while wider schemas (the
     auxiliary-view scenarios) also get covered. *)
  let random_tuple () =
    let arity = Schema.arity (Table.schema table) in
    let k = Prng.int rng 8 in
    let rest = ref [] in
    for _ = 2 to arity do
      rest := Prng.int rng 5 :: !rest
    done;
    Tuple.ints (k :: List.rev !rest)
  in
  (* Effective multiplicities: committed state plus this transaction's own
     pending writes, so we never over-delete within one transaction. *)
  let pending = Hashtbl.create 8 in
  let effective tuple =
    Table.count table tuple
    + (match Hashtbl.find_opt pending tuple with Some d -> d | None -> 0)
  in
  let note tuple d =
    Hashtbl.replace pending tuple
      (d + (match Hashtbl.find_opt pending tuple with Some x -> x | None -> 0))
  in
  let deletable () =
    let items =
      List.filter
        (fun (tuple, _) -> effective tuple > 0)
        (Relation.to_list (Table.contents table))
    in
    match items with
    | [] -> None
    | _ -> Some (fst (List.nth items (Prng.int rng (List.length items))))
  in
  ignore
    (Database.run s.db (fun txn ->
         let ops = 1 + Prng.int rng 3 in
         let ins tuple =
           Database.insert txn ~table:table_name tuple;
           note tuple 1
         in
         let del tuple =
           Database.delete txn ~table:table_name tuple;
           note tuple (-1)
         in
         for _ = 1 to ops do
           match Prng.int rng 10 with
           | 0 | 1 | 2 | 3 | 4 -> ins (random_tuple ())
           | 5 | 6 | 7 -> (
               match deletable () with
               | Some tuple -> del tuple
               | None -> ins (random_tuple ()))
           | _ -> (
               match deletable () with
               | Some tuple ->
                   del tuple;
                   ins (random_tuple ())
               | None -> ins (random_tuple ()))
         done))

let random_txns rng s n =
  for _ = 1 to n do
    random_txn rng s
  done

(* Make every propagation query race with fresh updates: before each
   Execute, commit up to [per_execute] update transactions. *)
let inject_updates rng s ctx ~per_execute =
  ctx.C.Ctx.on_execute <-
    (fun () -> random_txns rng s (Prng.int rng (per_execute + 1)))

let ctx_of ?geometry ?t_initial s =
  C.Ctx.create ?geometry ?t_initial s.db s.capture s.view

let check_ok = function
  | Ok () -> ()
  | Error msg -> Alcotest.fail msg

(* Alcotest testables. *)
let relation = Alcotest.testable Relation.pp Relation.equal

let tuple = Alcotest.testable Tuple.pp Tuple.equal

let contains haystack needle =
  let n = String.length needle and h = String.length haystack in
  let rec loop i = i + n <= h && (String.sub haystack i n = needle || loop (i + 1)) in
  loop 0

(* An alias-renamed twin of [view]: same tables, predicate and projection
   under fresh aliases — a distinct view object the canonical signature
   (Pquery.signature) must identify with the original. Column references
   are source/column indexes, so no remapping is needed. *)
let clone_view db view ~name =
  let sources =
    List.init (C.View.n_sources view) (fun i ->
        (C.View.source_table view i, Printf.sprintf "%s_s%d" name i))
  in
  C.View.create_select db ~name ~sources ~predicate:(C.View.predicate view)
    ~select:(C.View.projection view)

(* A source-order-permuted twin of a two-source view: sources swapped and
   every column reference remapped, so canonicalization has real work to
   do (the identity permutation does not line the twins up). *)
let swapped_clone db view ~name =
  if C.View.n_sources view <> 2 then
    invalid_arg "Helpers.swapped_clone: two-source views only";
  let swap (c : Predicate.col) =
    { c with Predicate.source = 1 - c.Predicate.source }
  in
  let rec swap_operand = function
    | Predicate.Col c -> Predicate.Col (swap c)
    | Predicate.Const v -> Predicate.Const v
    | Predicate.Neg a -> Predicate.Neg (swap_operand a)
    | Predicate.Add (a, b) -> Predicate.Add (swap_operand a, swap_operand b)
    | Predicate.Sub (a, b) -> Predicate.Sub (swap_operand a, swap_operand b)
    | Predicate.Mul (a, b) -> Predicate.Mul (swap_operand a, swap_operand b)
    | Predicate.Div (a, b) -> Predicate.Div (swap_operand a, swap_operand b)
  in
  let swap_atom = function
    | Predicate.Join (a, b) -> Predicate.Join (swap a, swap b)
    | Predicate.Cmp (op, a, b) ->
        Predicate.Cmp (op, swap_operand a, swap_operand b)
  in
  let sources =
    [
      (C.View.source_table view 1, name ^ "_s1");
      (C.View.source_table view 0, name ^ "_s0");
    ]
  in
  C.View.create_select db ~name ~sources
    ~predicate:(List.map swap_atom (C.View.predicate view))
    ~select:
      (List.map (fun (n, op) -> (n, swap_operand op)) (C.View.projection view))
