(* Randomized crash-recovery harness shared by the tier-1 fault suite and
   the extended slow fuzz.

   One seeded run has three lives over the same deterministic schedule of
   random updates, propagation steps, point-in-time refreshes and (for some
   seeds) checkpoints:

   - a profiling life under [Fault.observer], enumerating every reachable
     (fault point, visit count) site;
   - a crash life: the same schedule with a [Crash] injected at one
     randomly chosen reachable site, after which the process state (context,
     delta, controller) is discarded, the WAL — the only durable state — is
     restored into a fresh database, and [Controller.recover] restarts
     maintenance;
   - a post-recovery life: the recovered controller is checked against the
     durable frontier and the oracle, then driven further and checked
     again at the end.

   The driver consumes its own PRNG stream, so the profiling and crash
   lives see identical visit sequences up to the injection point. *)

open Helpers
module Fault = Roll_util.Fault
module Wal = Roll_storage.Wal
module Wal_codec = Roll_storage.Wal_codec

let wal_records db =
  let wal = Database.wal db in
  let acc = ref [] in
  Wal.iter_from wal ~pos:0 (fun r -> acc := r :: !acc);
  List.rev !acc

(* Restart from durable state: fresh tables, WAL replayed, fresh capture. *)
let restart make db =
  let s2 = make () in
  Database.restore s2.db (wal_records db);
  s2

let algorithm_of_seed seed ~two_way =
  match seed mod 4 with
  | 0 -> C.Controller.Rolling (C.Rolling.uniform (2 + (seed mod 5)))
  | 1 -> C.Controller.Uniform (3 + (seed mod 4))
  | 2 when two_way ->
      C.Controller.Deferred (C.Rolling_deferred.uniform (2 + (seed mod 4)))
  | _ -> C.Controller.Adaptive (3 + (seed mod 6))

let exact_vectors = function
  | C.Controller.Rolling _ | C.Controller.Adaptive _ -> true
  | C.Controller.Uniform _ | C.Controller.Deferred _ -> false

(* One life: a deterministic interleaving of update transactions,
   propagation steps, refreshes and checkpoints, ending caught up. *)
let drive rng s ctl ~ckpt_path ~txns =
  for _ = 1 to txns do
    match Prng.int rng 6 with
    | 0 | 1 | 2 -> random_txns rng s 1
    | 3 | 4 -> ignore (C.Controller.propagate_step ctl)
    | _ -> (
        match ckpt_path with
        | Some path when Prng.chance rng 0.3 -> C.Controller.checkpoint ctl path
        | _ -> C.Controller.refresh_to ctl (C.Controller.hwm ctl))
  done;
  ignore (C.Controller.refresh_latest ctl)

let durable_frontier seed db view =
  match C.Frontier.latest (Database.wal db) ~view:(C.View.name view) with
  | Some f -> f
  | None -> Alcotest.failf "seed %d: no durable frontier in the WAL" seed

(* Check the recovered controller against the durable frontier and the
   oracle; [sample] bounds the per-time-point delta check for long runs.
   Recovery must land exactly on the last durable frontier: quiet-window
   advances are not recorded (they replay for free), and checkpoints record
   a fresh marker before saving, so the latest marker is always the
   authoritative durable state. *)
let check_recovery seed ~algorithm ~durable s2 ctl2 ~sample =
  let tag msg = Printf.sprintf "seed %d: %s" seed msg in
  Alcotest.(check int) (tag "recovered hwm") durable.C.Frontier.hwm
    (C.Controller.hwm ctl2);
  Alcotest.(check int) (tag "recovered as_of") durable.C.Frontier.as_of
    (C.Controller.as_of ctl2);
  if exact_vectors algorithm then
    Alcotest.(check (array int)) (tag "recovered tfwd vector")
      durable.C.Frontier.tfwd
      (C.Controller.frontier ctl2).C.Frontier.tfwd;
  (match
     C.Oracle.check_timed_view_delta_sampled ~sample s2.history s2.view
       (C.Controller.ctx ctl2).C.Ctx.out
       ~lo:(C.Controller.as_of ctl2)
       ~hi:(C.Controller.hwm ctl2)
   with
  | Ok () -> ()
  | Error msg -> Alcotest.failf "seed %d: recovered delta diverges: %s" seed msg);
  Alcotest.check relation (tag "recovered contents")
    (C.Oracle.view_at s2.history s2.view (C.Controller.as_of ctl2))
    (C.Controller.contents ctl2)

(* The full three-life run for one seed. Returns the crash site exercised,
   for reporting.

   [obs] (default none) is installed on the crash life's controller and on
   the recovery — the trace-integrity property drives this harness with a
   manual-clock Rollscope handle and asserts every recorded trace stays
   balanced and well-nested across the injected crash. The profiling life
   never sees it, so site enumeration is identical either way. *)
let run_seed ?(sample = fun b -> b mod 4 = 0) ?obs:rollscope ~txns seed =
  let two_way = seed land 1 = 0 in
  let make () = if two_way then two_table () else three_table () in
  let algorithm = algorithm_of_seed seed ~two_way in
  let with_ckpt = seed mod 5 = 0 in
  let ckpt_path = Filename.temp_file "faultfuzz" ".ckpt" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove ckpt_path with Sys_error _ -> ())
  @@ fun () ->
  let ckpt = if with_ckpt then Some ckpt_path else None in
  (* Life 1: profile reachable fault sites. *)
  let obs = Fault.observer () in
  let s_obs = make () in
  let ctl_obs =
    C.Controller.create ~durable:true s_obs.db s_obs.capture s_obs.view
      ~algorithm
  in
  (C.Controller.ctx ctl_obs).C.Ctx.fault <- obs;
  Capture.set_fault s_obs.capture obs;
  drive (Prng.create ~seed) s_obs ctl_obs ~ckpt_path:ckpt ~txns;
  let sites = Array.of_list (Fault.sites obs) in
  if Array.length sites = 0 then
    Alcotest.failf "seed %d: no fault sites reached" seed;
  (* Life 2: crash at a random reachable site. *)
  let hrng = Prng.create ~seed:(seed + 100_000) in
  let point, visits = Prng.pick hrng sites in
  let hit = 1 + Prng.int hrng visits in
  (try Sys.remove ckpt_path with Sys_error _ -> ());
  let crash = Fault.create ~rules:[ Fault.Crash_at { point; hit } ] () in
  let s = make () in
  let ctl1 =
    C.Controller.create ~durable:true ?obs:rollscope s.db s.capture s.view
      ~algorithm
  in
  (C.Controller.ctx ctl1).C.Ctx.fault <- crash;
  Capture.set_fault s.capture crash;
  let crashed =
    try
      drive (Prng.create ~seed) s ctl1 ~ckpt_path:ckpt ~txns;
      false
    with Fault.Crash _ -> true
  in
  if not crashed then
    Alcotest.failf "seed %d: crash at %s visit %d never fired" seed point hit;
  let durable = durable_frontier seed s.db s.view in
  (* Life 3: restart from the WAL alone and verify. *)
  let s2 = restart make s.db in
  let ctl2 =
    C.Controller.recover ?checkpoint:ckpt ?obs:rollscope s2.db s2.capture
      s2.view ~algorithm
  in
  check_recovery seed ~algorithm ~durable s2 ctl2 ~sample;
  Alcotest.(check int) (Printf.sprintf "seed %d: one recovery counted" seed) 1
    (C.Stats.recoveries (C.Controller.stats ctl2));
  (* Keep living: more updates and propagation on the recovered state, then
     a final end-to-end oracle check. *)
  drive (Prng.create ~seed:(seed + 1)) s2 ctl2 ~ckpt_path:None ~txns;
  Alcotest.check relation
    (Printf.sprintf "seed %d: final contents (crashed at %s#%d)" seed point hit)
    (C.Oracle.view_at s2.history s2.view (C.Controller.as_of ctl2))
    (C.Controller.contents ctl2);
  (point, hit)

(* ------------------------------------------------------------------ *)
(* Auxiliary-view lives: the same three-life structure over the filtered
   scenario (the one whose view derives an auxiliary), with the auxiliary
   maintained alongside the user controller — probabilistically, so some
   propagation steps substitute a fresh mirror and others fall back to the
   base table — and recovered through [Auxiliary.attach ~recover:true]
   after the crash. Oracle equivalence must hold for the user view AND
   for every auxiliary's recovered contents and rebuilt mirror. *)

let aux_algorithm_of_seed seed =
  match seed mod 3 with
  | 0 -> C.Controller.Rolling (C.Rolling.uniform (2 + (seed mod 5)))
  | 1 -> C.Controller.Uniform (3 + (seed mod 4))
  | _ -> C.Controller.Adaptive (3 + (seed mod 6))

(* One life with auxiliaries: the user-view schedule of [drive], plus a
   2-in-3 chance per turn of freshening the auxiliaries (step + sync), so
   the freshness test sees both outcomes along every run. *)
let drive_aux rng s ctl entries ~txns =
  for _ = 1 to txns do
    (match Prng.int rng 6 with
    | 0 | 1 | 2 -> random_txns rng s 1
    | 3 | 4 -> ignore (C.Controller.propagate_step ctl)
    | _ -> C.Controller.refresh_to ctl (C.Controller.hwm ctl));
    if Prng.int rng 3 > 0 then
      List.iter
        (fun ae ->
          ignore (C.Controller.propagate_step (C.Auxiliary.controller ae));
          C.Auxiliary.sync ae)
        entries
  done;
  ignore (C.Controller.refresh_latest ctl);
  List.iter
    (fun ae ->
      ignore (C.Controller.refresh_latest (C.Auxiliary.controller ae));
      C.Auxiliary.sync ae)
    entries

let check_aux seed ~life s entries =
  List.iter
    (fun ae ->
      let actl = C.Auxiliary.controller ae in
      let tag msg =
        Printf.sprintf "seed %d: %s aux %s %s" seed life (C.Auxiliary.name ae)
          msg
      in
      Alcotest.check relation (tag "contents")
        (C.Oracle.view_at s.history (C.Auxiliary.view ae)
           (C.Controller.as_of actl))
        (C.Controller.contents actl);
      Alcotest.check relation (tag "mirror")
        (C.Oracle.view_at s.history (C.Auxiliary.view ae)
           (C.Auxiliary.mirror_as_of ae))
        (Table.contents (C.Auxiliary.mirror ae)))
    entries

(* Three lives with a crash, as [run_seed], over the auxiliary scenario.
   Returns the crash site plus the substitution hits observed after
   recovery, so callers can assert the fleet as a whole exercised both the
   probe and the fallback paths. *)
let run_seed_aux ?(sample = fun b -> b mod 4 = 0) ~txns seed =
  let algorithm = aux_algorithm_of_seed seed in
  let wire s ~recover =
    let ctl =
      if recover then
        C.Controller.recover s.db s.capture s.view ~algorithm
      else C.Controller.create ~durable:true s.db s.capture s.view ~algorithm
    in
    let reg = C.Auxiliary.create ~interval:(2 + (seed mod 4)) s.db s.capture in
    let entries =
      C.Auxiliary.attach ~durable:true ~recover reg ctl
    in
    if entries = [] then Alcotest.failf "seed %d: no auxiliary derived" seed;
    (ctl, reg, entries)
  in
  let install fault ctl entries =
    (C.Controller.ctx ctl).C.Ctx.fault <- fault;
    List.iter
      (fun ae ->
        (C.Controller.ctx (C.Auxiliary.controller ae)).C.Ctx.fault <- fault)
      entries
  in
  (* Life 1: profile reachable fault sites (user and auxiliary alike). *)
  let obs = Fault.observer () in
  let s_obs = filtered () in
  let ctl_obs, _, entries_obs = wire s_obs ~recover:false in
  install obs ctl_obs entries_obs;
  Capture.set_fault s_obs.capture obs;
  drive_aux (Prng.create ~seed) s_obs ctl_obs entries_obs ~txns;
  let sites = Array.of_list (Fault.sites obs) in
  if Array.length sites = 0 then
    Alcotest.failf "seed %d: no fault sites reached" seed;
  (* Life 2: crash at a random reachable site. *)
  let hrng = Prng.create ~seed:(seed + 200_000) in
  let point, visits = Prng.pick hrng sites in
  let hit = 1 + Prng.int hrng visits in
  let crash = Fault.create ~rules:[ Fault.Crash_at { point; hit } ] () in
  let s = filtered () in
  let ctl1, _, entries1 = wire s ~recover:false in
  install crash ctl1 entries1;
  Capture.set_fault s.capture crash;
  let crashed =
    try
      drive_aux (Prng.create ~seed) s ctl1 entries1 ~txns;
      false
    with Fault.Crash _ -> true
  in
  if not crashed then
    Alcotest.failf "seed %d: crash at %s visit %d never fired" seed point hit;
  let durable = durable_frontier seed s.db s.view in
  (* Life 3: restart from the WAL alone; the user controller and every
     auxiliary recover, and the mirrors are rebuilt from recovered
     contents. *)
  let s2 = restart filtered s.db in
  let ctl2, _, entries2 = wire s2 ~recover:true in
  check_recovery seed ~algorithm ~durable s2 ctl2 ~sample;
  check_aux seed ~life:"recovered" s2 entries2;
  (* Keep living on the recovered state, then the final oracle checks. *)
  drive_aux (Prng.create ~seed:(seed + 1)) s2 ctl2 entries2 ~txns;
  Alcotest.check relation
    (Printf.sprintf "seed %d: final contents (crashed at %s#%d)" seed point
       hit)
    (C.Oracle.view_at s2.history s2.view (C.Controller.as_of ctl2))
    (C.Controller.contents ctl2);
  check_aux seed ~life:"final" s2 entries2;
  (point, hit, C.Stats.aux_hits (C.Controller.stats ctl2))

let run_seeds_aux ?sample ~txns ~first ~count () =
  let exercised = Hashtbl.create 16 in
  let hits = ref 0 in
  for seed = first to first + count - 1 do
    let point, _, h = run_seed_aux ?sample ~txns seed in
    hits := !hits + h;
    Hashtbl.replace exercised point ()
  done;
  if !hits = 0 then
    Alcotest.fail
      "auxiliary fleet: substitution never fired across any seed";
  Hashtbl.fold (fun point () acc -> point :: acc) exercised []
  |> List.sort String.compare

let run_seeds ?sample ~txns ~first ~count () =
  let exercised = Hashtbl.create 16 in
  for seed = first to first + count - 1 do
    let point, _ = run_seed ?sample ~txns seed in
    Hashtbl.replace exercised point ()
  done;
  Hashtbl.fold (fun point () acc -> point :: acc) exercised []
  |> List.sort String.compare

(* ------------------------------------------------------------------ *)
(* Hotset lives: the three-life structure over the filtered scenario
   with heavy-light partitioning attached. The schedule interleaves
   skewed updates (so keys promote), a mid-run skew flip (so they demote
   again), propagation, heavy-partial freshening and explicit migration
   points — so the crash life can land inside [hotset.promote] and
   [hotset.demote] handoff windows as well as anywhere the plain and
   auxiliary fleets reach. After recovery the durable heavy set is
   re-derived from the WAL markers alone and the light ⊎ heavy union
   must still be exactly the partial. *)

let hot_owner = "rsf"

module Relation = Roll_relation.Relation
module Tuple = Roll_relation.Tuple
module Value = Roll_relation.Value

(* π_{k,v}(σ_{tag>=1}(r)) computed straight from the table. *)
let hot_expected_partial db schema =
  let r = Database.table db "r" in
  let out = Relation.of_list schema [] in
  Relation.iter
    (fun tuple count ->
      match Tuple.get tuple 2 with
      | Value.Int tag when tag >= 1 ->
          Relation.add out (Tuple.project tuple [ 0; 1 ]) count
      | _ -> ())
    (Table.contents r);
  out

let hot_install fault ctl reg =
  (C.Controller.ctx ctl).C.Ctx.fault <- fault;
  C.Hotset.set_fault reg fault;
  List.iter
    (fun he ->
      (C.Controller.ctx (C.Hotset.controller he)).C.Ctx.fault <- fault)
    (C.Hotset.for_owner reg ~owner:hot_owner)

(* One life: skewed updates with a mid-run flip, user propagation, heavy
   freshening, and migration points. Every promoted controller inherits
   the life's fault handle right after the rebalance that created it. *)
let drive_hot rng fault s ctl reg ~txns =
  let zipf = Roll_util.Zipf.create ~n:8 ~theta:1.5 in
  let heavies () = C.Hotset.for_owner reg ~owner:hot_owner in
  let freshen_heavy step =
    List.iter
      (fun he ->
        let hctl = C.Hotset.controller he in
        if step then ignore (C.Controller.propagate_step hctl)
        else ignore (C.Controller.refresh_latest hctl);
        C.Hotset.sync he)
      (heavies ())
  in
  let migrate () =
    Capture.advance s.capture;
    freshen_heavy false;
    ignore (C.Hotset.rebalance reg);
    hot_install fault ctl reg
  in
  for turn = 1 to txns do
    (match Prng.int rng 8 with
    | 0 | 1 ->
        (* Skewed inserts into the partitioned relation; the second half
           of the schedule flips the head so earlier heavy keys drain. *)
        for _ = 1 to 6 do
          let k = Roll_util.Zipf.sample zipf rng in
          let k = if 2 * turn > txns then 7 - k else k in
          ignore
            (Database.run s.db (fun txn ->
                 Database.insert txn ~table:"r"
                   (Tuple.ints [ k; Prng.int rng 5; Prng.int rng 5 ])))
        done
    | 2 -> random_txns rng s 1
    | 3 | 4 -> ignore (C.Controller.propagate_step ctl)
    | 5 -> C.Controller.refresh_to ctl (C.Controller.hwm ctl)
    | _ -> migrate ());
    if Prng.int rng 3 > 0 then freshen_heavy true
  done;
  ignore (C.Controller.refresh_latest ctl);
  migrate ();
  freshen_heavy false

(* The light ⊎ heavy union must be exactly the partial once every part is
   freshened — no tuple lost or double-counted by any migration or
   recovery on the way here. *)
let check_hot seed ~life s ctl reg =
  Capture.advance s.capture;
  C.Hotset.pump reg;
  List.iter
    (fun he ->
      ignore (C.Controller.refresh_latest (C.Hotset.controller he));
      C.Hotset.sync he)
    (C.Hotset.for_owner reg ~owner:hot_owner);
  let tag msg = Printf.sprintf "seed %d: %s hotset %s" seed life msg in
  match (C.Controller.ctx ctl).C.Ctx.hot with
  | None -> Alcotest.failf "seed %d: %s: no substitution closure" seed life
  | Some lookup -> (
      match lookup ~peek:true 0 with
      | None ->
          (* No heavy keys right now: the partition is all-light and the
             executor plans against the base table. *)
          Alcotest.(check int) (tag "all-light census") 0
            (C.Hotset.heavy_count reg ~owner:hot_owner)
      | Some h ->
          let schema = Table.schema (List.hd h.C.Ctx.parts) in
          let union =
            List.fold_left
              (fun acc part -> Relation.union acc (Table.contents part))
              (Relation.of_list schema [])
              h.C.Ctx.parts
          in
          Alcotest.check relation
            (tag "light ⊎ heavy = partial")
            (hot_expected_partial s.db schema)
            union)

let run_seed_hotset ?(sample = fun b -> b mod 4 = 0) ~txns seed =
  let algorithm = aux_algorithm_of_seed seed in
  let wire s ~recover =
    let ctl =
      if recover then C.Controller.recover s.db s.capture s.view ~algorithm
      else C.Controller.create ~durable:true s.db s.capture s.view ~algorithm
    in
    let reg =
      C.Hotset.create
        ~interval:(2 + (seed mod 4))
        ~capacity:8 ~max_heavy:3 ~enter:0.2 ~exit_:0.1 s.db s.capture
    in
    let recovered = C.Hotset.attach ~durable:true ~recover reg ctl in
    (ctl, reg, recovered)
  in
  (* Life 1: profile reachable fault sites (user, heavy partials,
     migration windows, capture). *)
  let obs = Fault.observer () in
  let s_obs = filtered () in
  let ctl_obs, reg_obs, _ = wire s_obs ~recover:false in
  hot_install obs ctl_obs reg_obs;
  Capture.set_fault s_obs.capture obs;
  drive_hot (Prng.create ~seed) obs s_obs ctl_obs reg_obs ~txns;
  let sites = Array.of_list (Fault.sites obs) in
  if Array.length sites = 0 then
    Alcotest.failf "seed %d: no fault sites reached" seed;
  (* Life 2: crash at a random reachable site. *)
  let hrng = Prng.create ~seed:(seed + 300_000) in
  let point, visits = Prng.pick hrng sites in
  let hit = 1 + Prng.int hrng visits in
  let crash = Fault.create ~rules:[ Fault.Crash_at { point; hit } ] () in
  let s = filtered () in
  let ctl1, reg1, _ = wire s ~recover:false in
  hot_install crash ctl1 reg1;
  Capture.set_fault s.capture crash;
  let crashed =
    try
      drive_hot (Prng.create ~seed) crash s ctl1 reg1 ~txns;
      false
    with Fault.Crash _ -> true
  in
  if not crashed then
    Alcotest.failf "seed %d: crash at %s visit %d never fired" seed point hit;
  let durable = durable_frontier seed s.db s.view in
  (* Life 3: restart from the WAL alone. The heavy set re-derives from
     the promote/retire markers; mirrors are rebuilt derived state. *)
  let s2 = restart filtered s.db in
  let ctl2, reg2, _ = wire s2 ~recover:true in
  check_recovery seed ~algorithm ~durable s2 ctl2 ~sample;
  check_hot seed ~life:"recovered" s2 ctl2 reg2;
  (* Keep living on the recovered state, then the final checks. *)
  drive_hot (Prng.create ~seed:(seed + 1)) Fault.none s2 ctl2 reg2 ~txns;
  Alcotest.check relation
    (Printf.sprintf "seed %d: final contents (crashed at %s#%d)" seed point
       hit)
    (C.Oracle.view_at s2.history s2.view (C.Controller.as_of ctl2))
    (C.Controller.contents ctl2);
  check_hot seed ~life:"final" s2 ctl2 reg2;
  (point, hit, C.Stats.hot_hits (C.Controller.stats ctl2))

let run_seeds_hotset ?sample ~txns ~first ~count () =
  let exercised = Hashtbl.create 16 in
  let hits = ref 0 in
  for seed = first to first + count - 1 do
    let point, _, h = run_seed_hotset ?sample ~txns seed in
    hits := !hits + h;
    Hashtbl.replace exercised point ()
  done;
  if !hits = 0 then
    Alcotest.fail "hotset fleet: heavy-light substitution never fired";
  Hashtbl.fold (fun point () acc -> point :: acc) exercised []
  |> List.sort String.compare
