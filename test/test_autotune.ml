(* Adaptive interval policy: hot relations get small intervals, quiet ones
   large; the policy plugs into rolling propagation and stays correct. *)

open Test_support.Helpers
module Time = Roll_delta.Time
module C = Roll_core
module Star = Roll_workload.Star

let star_with_ctx () =
  let star = Star.create { Star.default_config with fact_initial = 200 } in
  Star.load_initial star;
  Star.mixed_txns star ~n:150 ~dim_fraction:0.03;
  let ctx =
    C.Ctx.create ~t_initial:Time.origin (Star.db star) (Star.capture star)
      (Star.view star)
  in
  (star, ctx)

let test_intervals_reflect_density () =
  let _, ctx = star_with_ctx () in
  let tuner = C.Autotune.create ~target_rows:50 ctx in
  let fact = C.Autotune.interval_for tuner 0 in
  let dim = C.Autotune.interval_for tuner 1 in
  Alcotest.(check bool)
    (Printf.sprintf "fact interval (%d) < dimension interval (%d)" fact dim)
    true (fact < dim);
  Alcotest.(check bool) "fact density higher" true
    (C.Autotune.density tuner 0 > C.Autotune.density tuner 1)

let test_target_scales_interval () =
  let _, ctx = star_with_ctx () in
  let small = C.Autotune.create ~target_rows:10 ctx in
  let large = C.Autotune.create ~target_rows:500 ctx in
  Alcotest.(check bool) "bigger budget, wider interval" true
    (C.Autotune.interval_for large 0 > C.Autotune.interval_for small 0)

let test_bounds_respected () =
  let _, ctx = star_with_ctx () in
  let tuner = C.Autotune.create ~min_interval:7 ~max_interval:9 ~target_rows:50 ctx in
  for i = 0 to 2 do
    let v = C.Autotune.interval_for tuner i in
    if v < 7 || v > 9 then Alcotest.failf "interval %d out of bounds" v
  done

(* Regression: a cold-start tuner (nothing captured yet) must not hand out
   max_interval — the relation's rate is unknown and a maximal first window
   on a hot relation would dwarf the row budget. It steps at min_interval
   until it has observed something. *)
let test_cold_start_means_min () =
  let s = two_table () in
  let ctx = ctx_of s in
  let tuner =
    C.Autotune.create ~min_interval:3 ~max_interval:123 ~target_rows:10 ctx
  in
  Alcotest.(check int) "cold start: min interval" 3
    (C.Autotune.interval_for tuner 0);
  let default_min = C.Autotune.create ~max_interval:123 ~target_rows:10 ctx in
  Alcotest.(check int) "default min interval is 1" 1
    (C.Autotune.interval_for default_min 0)

(* Once a span has been observed, a relation with no captured changes in it
   really is quiet and gets the maximal stride. *)
let test_quiet_relation_means_max () =
  let s = two_table () in
  (* Change only r; s stays quiet over a nonzero observed span. *)
  for i = 0 to 4 do
    ignore
      (Database.run s.db (fun txn ->
           Database.insert txn ~table:"r" (Roll_relation.Tuple.ints [ i; i ])))
  done;
  let ctx = ctx_of s in
  let tuner = C.Autotune.create ~max_interval:123 ~target_rows:10 ctx in
  Alcotest.(check int) "quiet relation: max interval" 123
    (C.Autotune.interval_for tuner 1);
  Alcotest.(check bool) "busy relation: bounded interval" true
    (C.Autotune.interval_for tuner 0 < 123)

let test_validation () =
  let s = two_table () in
  let ctx = ctx_of s in
  Alcotest.(check bool) "bad target" true
    (try
       ignore (C.Autotune.create ~target_rows:0 ctx);
       false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "bad bounds" true
    (try
       ignore (C.Autotune.create ~min_interval:5 ~max_interval:4 ~target_rows:1 ctx);
       false
     with Invalid_argument _ -> true)

let test_adaptive_rolling_correct () =
  let star, ctx = star_with_ctx () in
  let tuner = C.Autotune.create ~target_rows:40 ctx in
  let r = C.Rolling.create ctx ~t_initial:Time.origin in
  let target = Database.now (Star.db star) in
  C.Rolling.run_until r ~target ~policy:(C.Autotune.policy tuner);
  check_ok
    (C.Oracle.check_timed_view_delta_sampled
       ~sample:(fun t -> t mod 40 = 0)
       (Star.history star) (Star.view star) ctx.C.Ctx.out ~lo:Time.origin
       ~hi:(C.Rolling.hwm r))

(* The budget actually bounds forward-query window sizes. *)
let test_window_sizes_near_target () =
  let star, ctx = star_with_ctx () in
  let tuner = C.Autotune.create ~target_rows:30 ctx in
  let r = C.Rolling.create ctx ~t_initial:Time.origin in
  let target = Database.now (Star.db star) in
  C.Rolling.run_until r ~target ~policy:(C.Autotune.policy tuner);
  (* Forward windows are the delta resources of single-window queries. *)
  List.iter
    (fun (fp : C.Stats.footprint) ->
      let delta_rows =
        List.fold_left
          (fun acc (resource, n) ->
            if String.length resource > 0 && resource.[0] <> '\xce' then acc
            else acc + n)
          0 fp.C.Stats.reads
      in
      (* Allow slack: density drifts while the workload runs. *)
      if delta_rows > 30 * 20 then
        Alcotest.failf "window of %d rows blows the budget" delta_rows)
    (C.Stats.footprints ctx.C.Ctx.stats)

let suite =
  [
    Alcotest.test_case "intervals reflect density" `Quick test_intervals_reflect_density;
    Alcotest.test_case "target scales interval" `Quick test_target_scales_interval;
    Alcotest.test_case "bounds respected" `Quick test_bounds_respected;
    Alcotest.test_case "cold start means min" `Quick test_cold_start_means_min;
    Alcotest.test_case "quiet relation means max" `Quick test_quiet_relation_means_max;
    Alcotest.test_case "validation" `Quick test_validation;
    Alcotest.test_case "adaptive rolling is correct" `Quick test_adaptive_rolling_correct;
    Alcotest.test_case "window sizes near target" `Quick test_window_sizes_near_target;
  ]
