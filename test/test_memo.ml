(* Shared-maintenance tests: canonical query signatures (alias and
   source-order invariance), the drain-scoped delta memo, sibling views
   replaying each other's work, memoized empty windows, and the
   retry-rollback/memo-eviction interaction. *)

open Test_support.Helpers
open Roll_relation
module Fault = Roll_util.Fault
module Retry = Roll_util.Retry

let sig_of view q = C.Pquery.signature view ~rule:`Min q

let test_signature_alias_invariant () =
  let s = two_table () in
  let twin = clone_view s.db s.view ~name:"rs_twin" in
  let q = C.Pquery.all_base 2 in
  Alcotest.(check string) "all-base signatures equal" (sig_of s.view q)
    (sig_of twin q);
  let qw = C.Pquery.replace q 0 (C.Pquery.Win { lo = 3; hi = 9 }) in
  Alcotest.(check string) "windowed signatures equal" (sig_of s.view qw)
    (sig_of twin qw);
  let qw1 = C.Pquery.replace q 1 (C.Pquery.Win { lo = 3; hi = 9 }) in
  Alcotest.(check bool) "window over r is not window over s" false
    (String.equal (sig_of s.view qw) (sig_of s.view qw1))

let test_signature_permutation_invariant () =
  let s = two_table () in
  let swapped = swapped_clone s.db s.view ~name:"rs_swapped" in
  (* The window over table r sits at position 0 in the original and at
     position 1 in the swapped twin; canonicalization lines them up. *)
  let win = C.Pquery.Win { lo = 2; hi = 7 } in
  let q_orig = C.Pquery.replace (C.Pquery.all_base 2) 0 win in
  let q_swap = C.Pquery.replace (C.Pquery.all_base 2) 1 win in
  Alcotest.(check string) "canonical modulo source order"
    (sig_of s.view q_orig) (sig_of swapped q_swap);
  Alcotest.(check string) "all-base canonical modulo source order"
    (sig_of s.view (C.Pquery.all_base 2))
    (sig_of swapped (C.Pquery.all_base 2))

let test_signature_distinguishes () =
  let s = two_table () in
  let sources = [ ("r", "r"); ("s", "s") ] in
  let b = C.View.binder s.db sources in
  let filtered =
    C.View.create s.db ~name:"rs_filtered" ~sources
      ~predicate:
        [
          Predicate.join (b "r" "k") (b "s" "k");
          Predicate.cmp Predicate.Le
            (Predicate.Col (b "r" "v"))
            (Predicate.Const (Value.Int 3));
        ]
      ~project:[ b "r" "k"; b "r" "v"; b "s" "w" ]
  in
  let q = C.Pquery.all_base 2 in
  Alcotest.(check bool) "extra filter changes the signature" false
    (String.equal (sig_of s.view q) (sig_of filtered q));
  Alcotest.(check bool) "window bounds are part of the identity" false
    (String.equal
       (sig_of s.view (C.Pquery.replace q 0 (C.Pquery.Win { lo = 1; hi = 2 })))
       (sig_of s.view (C.Pquery.replace q 0 (C.Pquery.Win { lo = 1; hi = 3 }))))

let row k count ts = { Delta.tuple = Tuple.ints [ k ]; count; ts }

let test_memo_ops () =
  let m = C.Memo.create () in
  let key sign t_new =
    { C.Memo.signature = "q"; tau = [| 0; 4 |]; t_new; sign }
  in
  Alcotest.(check bool) "miss on empty" true (C.Memo.find m (key 1 7) = None);
  C.Memo.add m (key 1 7) [| row 1 1 5 |];
  (match C.Memo.find m (key 1 7) with
  | Some [| r |] -> Alcotest.(check int) "stored row" 5 r.Delta.ts
  | _ -> Alcotest.fail "expected the stored entry");
  Alcotest.(check bool) "sign is part of the key" true
    (C.Memo.find m (key (-1) 7) = None);
  Alcotest.(check bool) "t_new is part of the key" true
    (C.Memo.find m (key 1 8) = None);
  Alcotest.(check int) "hits" 1 (C.Memo.hits m);
  Alcotest.(check int) "misses" 3 (C.Memo.misses m);
  let mark = C.Memo.mark m in
  C.Memo.add m (key 1 8) [| row 2 1 6 |];
  C.Memo.add m (key (-1) 9) [||];
  Alcotest.(check int) "size before evict" 3 (C.Memo.size m);
  C.Memo.evict_since m mark;
  Alcotest.(check int) "size after evict" 1 (C.Memo.size m);
  Alcotest.(check bool) "entry after the mark evicted" true
    (C.Memo.find m (key 1 8) = None);
  Alcotest.(check bool) "entry before the mark survives" true
    (C.Memo.find m (key 1 7) <> None);
  C.Memo.clear m;
  Alcotest.(check int) "cleared" 0 (C.Memo.size m);
  let d = C.Memo.create ~enabled:false () in
  C.Memo.add d (key 1 7) [| row 1 1 5 |];
  Alcotest.(check bool) "disabled memo finds nothing" true
    (C.Memo.find d (key 1 7) = None);
  Alcotest.(check int) "disabled memo stores nothing" 0 (C.Memo.size d)

(* Two contexts over alias-renamed twins share one enabled memo: the
   second view_delta replays the first one's rows without executing a
   single query, and both deltas pass the timed oracle check. *)
let test_sibling_sharing () =
  let s = two_table () in
  let twin = clone_view s.db s.view ~name:"rs_share" in
  let rng = Prng.create ~seed:11 in
  random_txns rng s 25;
  let ctx_a = ctx_of s in
  let ctx_b = C.Ctx.create s.db s.capture twin in
  let memo = C.Memo.create () in
  ctx_a.C.Ctx.memo <- memo;
  ctx_b.C.Ctx.memo <- memo;
  let hi = Database.now s.db in
  C.Compute_delta.view_delta ctx_a ~lo:0 ~hi;
  C.Compute_delta.view_delta ctx_b ~lo:0 ~hi;
  Alcotest.(check bool) "twin replayed from the memo" true
    (C.Stats.memo_hits ctx_b.C.Ctx.stats > 0);
  Alcotest.(check int) "twin executed no queries" 0
    (C.Stats.queries ctx_b.C.Ctx.stats);
  Alcotest.(check relation) "identical net effects"
    (Delta.net_effect ctx_a.C.Ctx.out ~lo:0 ~hi)
    (Delta.net_effect ctx_b.C.Ctx.out ~lo:0 ~hi);
  check_ok
    (C.Oracle.check_timed_view_delta s.history s.view ctx_a.C.Ctx.out ~lo:0 ~hi);
  check_ok
    (C.Oracle.check_timed_view_delta s.history twin ctx_b.C.Ctx.out ~lo:0 ~hi)

(* With the empty-window short-circuit off, provably empty windows still
   run queries — and their (empty) results memoize and replay like any
   other entry. Churn touches only r, so every window over s is empty. *)
let test_memoized_empty_windows () =
  let s = two_table () in
  let twin = clone_view s.db s.view ~name:"rs_empty" in
  let rng = Prng.create ~seed:3 in
  for _ = 1 to 15 do
    ignore
      (Database.run s.db (fun txn ->
           Database.insert txn ~table:"r"
             (Tuple.ints [ Prng.int rng 8; Prng.int rng 5 ])))
  done;
  let ctx_a = ctx_of s in
  let ctx_b = C.Ctx.create s.db s.capture twin in
  let memo = C.Memo.create () in
  ctx_a.C.Ctx.memo <- memo;
  ctx_b.C.Ctx.memo <- memo;
  ctx_a.C.Ctx.skip_empty_windows <- false;
  ctx_b.C.Ctx.skip_empty_windows <- false;
  let hi = Database.now s.db in
  C.Compute_delta.view_delta ctx_a ~lo:0 ~hi;
  C.Compute_delta.view_delta ctx_b ~lo:0 ~hi;
  Alcotest.(check bool) "twin replayed (including empty computations)" true
    (C.Stats.memo_hits ctx_b.C.Ctx.stats > 0);
  Alcotest.(check int) "twin executed no queries" 0
    (C.Stats.queries ctx_b.C.Ctx.stats);
  check_ok
    (C.Oracle.check_timed_view_delta s.history s.view ctx_a.C.Ctx.out ~lo:0 ~hi);
  check_ok
    (C.Oracle.check_timed_view_delta s.history twin ctx_b.C.Ctx.out ~lo:0 ~hi)

(* Regression: a step that fails after computing (and memoizing) its delta
   must not serve its own aborted rows on the retry. The rollback evicts
   the failed step's memo entries alongside the Delta.truncate, so the
   re-run recomputes — memo hits stay at zero — and the final contents
   match the oracle. *)
let test_retry_evicts_aborted_entries () =
  let s = two_table () in
  let service = C.Service.create ~sharing:true s.db s.capture in
  let ctl =
    C.Service.register service
      ~algorithm:(C.Controller.Rolling (C.Rolling.uniform 4))
      s.view
  in
  let rng = Prng.create ~seed:7 in
  random_txns rng s 20;
  (* Fail the second advancing step once, after its forward query and
     compensation have run (and memoized) but before the frontier moves. *)
  (C.Controller.ctx ctl).C.Ctx.fault <-
    Fault.transient_at "rolling.pre_advance" ~hit:2 ~failures:1;
  (match
     C.Service.try_step_all service ~budget:100
       ~retry:(Retry.policy ~max_attempts:3 ())
   with
  | Ok _ -> ()
  | Error (e : C.Service.step_error) ->
      Alcotest.failf "permanent failure at %s after %d attempts" e.point
        e.attempts);
  let stats = C.Controller.stats ctl in
  Alcotest.(check bool) "the step was retried" true (C.Stats.retries stats > 0);
  Alcotest.(check int) "the retry recomputed instead of replaying" 0
    (C.Stats.memo_hits stats);
  ignore (C.Controller.refresh_latest ctl);
  Alcotest.(check relation) "contents match the oracle"
    (C.Oracle.view_at s.history s.view (C.Controller.as_of ctl))
    (C.Controller.contents ctl)

(* A sharing service keeps sibling twins bit-identical to the oracle while
   actually sharing work (memo hits recorded during batched drains). *)
let test_service_sharing_end_to_end () =
  let s = two_table () in
  let siblings =
    [ s.view; clone_view s.db s.view ~name:"rs_b"; clone_view s.db s.view ~name:"rs_c" ]
  in
  let service = C.Service.create ~sharing:true s.db s.capture in
  let ctls =
    List.map
      (fun v ->
        C.Service.register service
          ~algorithm:(C.Controller.Rolling (C.Rolling.uniform 3))
          v)
      siblings
  in
  let rng = Prng.create ~seed:42 in
  for _ = 1 to 5 do
    random_txns rng s 8;
    ignore (C.Service.step_all service ~budget:40)
  done;
  C.Service.refresh_all service;
  let hits =
    List.fold_left
      (fun acc ctl -> acc + C.Stats.memo_hits (C.Controller.stats ctl))
      0 ctls
  in
  Alcotest.(check bool) "siblings shared work" true (hits > 0);
  List.iter2
    (fun v ctl ->
      Alcotest.(check relation)
        (C.View.name v ^ " matches the oracle")
        (C.Oracle.view_at s.history v (C.Controller.as_of ctl))
        (C.Controller.contents ctl))
    siblings ctls;
  let batched = (C.Stats.sched_kind (C.Scheduler.stats (C.Service.scheduler service)) "propagate").C.Stats.batched in
  Alcotest.(check bool) "drains batched same-window steps" true (batched > 0)

let suite =
  [
    Alcotest.test_case "signature: alias invariance" `Quick
      test_signature_alias_invariant;
    Alcotest.test_case "signature: source-order invariance" `Quick
      test_signature_permutation_invariant;
    Alcotest.test_case "signature: distinguishes shapes" `Quick
      test_signature_distinguishes;
    Alcotest.test_case "memo operations" `Quick test_memo_ops;
    Alcotest.test_case "sibling contexts share one memo" `Quick
      test_sibling_sharing;
    Alcotest.test_case "memoized empty windows" `Quick
      test_memoized_empty_windows;
    Alcotest.test_case "retry evicts the aborted step's entries" `Quick
      test_retry_evicts_aborted_entries;
    Alcotest.test_case "sharing service end to end" `Quick
      test_service_sharing_end_to_end;
  ]
