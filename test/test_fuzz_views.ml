(* Theorem fuzzing over random view shapes: self-joins, partial join
   graphs, filters and computed projections, all under racing updates. *)

open Test_support.Helpers
module Fuzz = Test_support.Fuzz
module Time = Roll_delta.Time
module C = Roll_core

let qtest = QCheck_alcotest.to_alcotest

let prop_compute_delta_fuzzed =
  QCheck.Test.make ~name:"theorem 4.1 over random views" ~count:40
    QCheck.small_int
    (fun seed ->
      let rng = Prng.create ~seed in
      let s = Fuzz.random_scenario rng in
      random_txns rng s (10 + Prng.int rng 25);
      let ctx = ctx_of s in
      inject_updates (Prng.create ~seed:(seed + 31)) s ctx
        ~per_execute:(Prng.int rng 3);
      let hi = Database.now s.db in
      C.Compute_delta.view_delta ctx ~lo:0 ~hi;
      match
        C.Oracle.check_timed_view_delta_sampled
          ~sample:(fun t -> t mod 5 = 0)
          s.history s.view ctx.C.Ctx.out ~lo:0 ~hi
      with
      | Ok () -> true
      | Error msg -> QCheck.Test.fail_report msg)

let prop_rolling_fuzzed =
  QCheck.Test.make ~name:"theorem 4.3 over random views" ~count:40
    QCheck.small_int
    (fun seed ->
      let rng = Prng.create ~seed in
      let s = Fuzz.random_scenario rng in
      random_txns rng s (10 + Prng.int rng 25);
      let ctx = ctx_of ~geometry:true ~t_initial:Time.origin s in
      inject_updates (Prng.create ~seed:(seed + 77)) s ctx
        ~per_execute:(Prng.int rng 3);
      let r = C.Rolling.create ctx ~t_initial:Time.origin in
      let n = C.View.n_sources s.view in
      let intervals = Array.init n (fun _ -> Prng.int_in rng ~lo:1 ~hi:9) in
      for _ = 1 to 10 do
        match C.Rolling.step r ~policy:(C.Rolling.per_relation intervals) with
        | `Advanced _ | `Idle -> ()
      done;
      let hwm = C.Rolling.hwm r in
      (match C.Geometry.check (Option.get ctx.C.Ctx.geometry) ~hwm with
      | Ok () -> ()
      | Error msg -> QCheck.Test.fail_report ("geometry: " ^ msg));
      match
        C.Oracle.check_timed_view_delta_sampled
          ~sample:(fun t -> t mod 5 = 0)
          s.history s.view ctx.C.Ctx.out ~lo:Time.origin ~hi:hwm
      with
      | Ok () -> true
      | Error msg -> QCheck.Test.fail_report msg)

let prop_deferred_fuzzed_two_way =
  QCheck.Test.make ~name:"deferred Fig. 10 over random 2-way views" ~count:30
    QCheck.small_int
    (fun seed ->
      let rng = Prng.create ~seed in
      (* Draw scenarios until one has at most two sources. *)
      let rec draw () =
        let s = Fuzz.random_scenario rng in
        if C.View.n_sources s.view <= 2 then s else draw ()
      in
      let s = draw () in
      random_txns rng s (10 + Prng.int rng 20);
      let ctx = ctx_of s in
      inject_updates (Prng.create ~seed:(seed + 13)) s ctx ~per_execute:2;
      let r = C.Rolling_deferred.create ctx ~t_initial:Time.origin in
      let n = C.View.n_sources s.view in
      let intervals = Array.init n (fun _ -> Prng.int_in rng ~lo:1 ~hi:9) in
      for _ = 1 to 10 do
        match
          C.Rolling_deferred.step r ~policy:(C.Rolling_deferred.per_relation intervals)
        with
        | `Advanced _ | `Idle -> ()
      done;
      match
        C.Oracle.check_timed_view_delta_sampled
          ~sample:(fun t -> t mod 4 = 0)
          s.history s.view ctx.C.Ctx.out ~lo:Time.origin
          ~hi:(C.Rolling_deferred.hwm r)
      with
      | Ok () -> true
      | Error msg -> QCheck.Test.fail_report msg)

(* Multi-view sharing over random shapes: three alias-renamed siblings of a
   fuzzed view maintained by one sharing service must end bit-identical to
   an independently-maintained run over an identically-seeded scenario, and
   to the oracle. Every third seed additionally discards the process after
   the shared run, restarts from the WAL alone ([register_recovered] under a
   fresh sharing service) and re-checks. *)
let prop_multi_view_sharing =
  QCheck.Test.make ~name:"multi-view sharing matches independent and oracle"
    ~count:20 QCheck.small_int
    (fun seed ->
      let make () = Fuzz.random_scenario (Prng.create ~seed) in
      let siblings_of s =
        [
          s.view;
          clone_view s.db s.view ~name:"fuzzed_b";
          clone_view s.db s.view ~name:"fuzzed_c";
        ]
      in
      let algorithm () =
        C.Controller.Rolling (C.Rolling.uniform (2 + (seed mod 5)))
      in
      let run ~sharing =
        let s = make () in
        let siblings = siblings_of s in
        let service = C.Service.create ~sharing s.db s.capture in
        let ctls =
          List.map
            (fun v ->
              C.Service.register service ~durable:true ~algorithm:(algorithm ())
                v)
            siblings
        in
        let drive = Prng.create ~seed:(seed + 101) in
        for _ = 1 to 4 do
          random_txns drive s (2 + Prng.int drive 6);
          ignore (C.Service.step_all service ~budget:25)
        done;
        C.Service.refresh_all service;
        (s, siblings, ctls)
      in
      let s_sh, siblings_sh, ctls_sh = run ~sharing:true in
      let _, _, ctls_ind = run ~sharing:false in
      List.iter2
        (fun ctl_s ctl_i ->
          if
            not
              (Roll_relation.Relation.equal
                 (C.Controller.contents ctl_s)
                 (C.Controller.contents ctl_i))
          then
            QCheck.Test.fail_report
              "shared and independent contents differ")
        ctls_sh ctls_ind;
      List.iter2
        (fun v ctl ->
          if
            not
              (Roll_relation.Relation.equal
                 (C.Oracle.view_at s_sh.history v (C.Controller.as_of ctl))
                 (C.Controller.contents ctl))
          then QCheck.Test.fail_report (C.View.name v ^ " diverged from oracle"))
        siblings_sh ctls_sh;
      if seed mod 3 = 0 then begin
        (* Process loss: only the WAL survives. Recover all three siblings
           under a fresh sharing service and check them again. *)
        let s2 = Test_support.Fault_harness.restart make s_sh.db in
        let siblings2 = siblings_of s2 in
        let service2 = C.Service.create ~sharing:true s2.db s2.capture in
        let ctls2 =
          List.map
            (fun v ->
              C.Service.register_recovered service2 ~algorithm:(algorithm ()) v)
            siblings2
        in
        C.Service.refresh_all service2;
        List.iter2
          (fun v ctl ->
            if
              not
                (Roll_relation.Relation.equal
                   (C.Oracle.view_at s2.history v (C.Controller.as_of ctl))
                   (C.Controller.contents ctl))
            then
              QCheck.Test.fail_report
                (C.View.name v ^ " diverged from oracle after recovery"))
          siblings2 ctls2;
        List.iter2
          (fun ctl_s ctl2 ->
            if
              not
                (Roll_relation.Relation.equal
                   (C.Controller.contents ctl_s)
                   (C.Controller.contents ctl2))
            then
              QCheck.Test.fail_report
                "recovered contents differ from pre-restart contents")
          ctls_sh ctls2
      end;
      true)

let suite =
  [
    qtest prop_compute_delta_fuzzed;
    qtest prop_rolling_fuzzed;
    qtest prop_deferred_fuzzed_two_way;
    qtest prop_multi_view_sharing;
  ]
