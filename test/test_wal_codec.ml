(* WAL persistence: save/load round trips, full database restore, resumed
   maintenance after restore, and corruption detection. *)

open Test_support.Helpers
open Roll_relation
module Wal = Roll_storage.Wal
module Wal_codec = Roll_storage.Wal_codec
module C = Roll_core

let with_temp_file f =
  let path = Filename.temp_file "rollwal" ".log" in
  Fun.protect ~finally:(fun () -> Sys.remove path) (fun () -> f path)

let records_equal (a : Wal.record) (b : Wal.record) =
  a.csn = b.csn && a.txn_id = b.txn_id && a.wall = b.wall && a.marker = b.marker
  && List.length a.changes = List.length b.changes
  && List.for_all2
       (fun (x : Wal.change) (y : Wal.change) ->
         x.table = y.table && x.count = y.count && Tuple.equal x.tuple y.tuple)
       a.changes b.changes

let test_roundtrip () =
  let s = two_table () in
  random_txns (Prng.create ~seed:130) s 30;
  ignore (Database.commit_marker s.db ~tag:"checkpoint \"quoted\"\nline");
  with_temp_file (fun path ->
      Wal_codec.save_file (Database.wal s.db) path;
      let records = Wal_codec.load_file path in
      Alcotest.(check int) "record count" (Wal.length (Database.wal s.db))
        (List.length records);
      List.iteri
        (fun i record ->
          if not (records_equal (Wal.get (Database.wal s.db) i) record) then
            Alcotest.failf "record %d differs after round trip" i)
        records)

let test_value_edge_cases () =
  let db = Database.create () in
  let schema =
    Schema.make
      [
        { Schema.name = "a"; ty = Value.T_string };
        { Schema.name = "b"; ty = Value.T_float };
        { Schema.name = "c"; ty = Value.T_bool };
      ]
  in
  let _ = Database.create_table db ~name:"t" schema in
  let tricky =
    Tuple.make [ Value.Str "with 'quotes'\n\ttabs and \\"; Value.Float 0.1; Value.Bool false ]
  in
  let nulls = Tuple.make [ Value.Null; Value.Null; Value.Null ] in
  ignore
    (Database.run db (fun txn ->
         Database.insert txn ~table:"t" tricky;
         Database.insert txn ~table:"t" nulls));
  with_temp_file (fun path ->
      Wal_codec.save_file (Database.wal db) path;
      let records = Wal_codec.load_file path in
      match records with
      | [ r ] -> (
          match r.Wal.changes with
          | [ c1; c2 ] ->
              Alcotest.check tuple "tricky string/float" tricky c1.Wal.tuple;
              Alcotest.check tuple "nulls" nulls c2.Wal.tuple
          | _ -> Alcotest.fail "expected two changes")
      | _ -> Alcotest.fail "expected one record")

let test_restore_reproduces_database () =
  let s = two_table () in
  random_txns (Prng.create ~seed:131) s 40;
  with_temp_file (fun path ->
      Wal_codec.save_file (Database.wal s.db) path;
      let records = Wal_codec.load_file path in
      (* Fresh database, same table definitions. *)
      let s2 = two_table () in
      Database.restore s2.db records;
      Alcotest.(check int) "now restored" (Database.now s.db) (Database.now s2.db);
      Alcotest.(check (float 0.0)) "wall restored" (Database.wall_now s.db)
        (Database.wall_now s2.db);
      List.iter
        (fun name ->
          Alcotest.check relation
            ("table " ^ name)
            (Roll_storage.Table.contents (Database.table s.db name))
            (Roll_storage.Table.contents (Database.table s2.db name)))
        [ "r"; "s" ])

let test_maintenance_resumes_after_restore () =
  (* Save a history, restore it elsewhere, then run maintenance over the
     whole (restored + new) history. *)
  let s = two_table () in
  random_txns (Prng.create ~seed:132) s 25;
  with_temp_file (fun path ->
      Wal_codec.save_file (Database.wal s.db) path;
      let s2 = two_table () in
      Database.restore s2.db (Wal_codec.load_file path);
      (* New life: more transactions after the restore. *)
      random_txns (Prng.create ~seed:133) s2 25;
      let ctx = ctx_of s2 in
      let r = C.Rolling.create ctx ~t_initial:0 in
      let target = Database.now s2.db in
      C.Rolling.run_until r ~target ~policy:(C.Rolling.uniform 7);
      check_ok
        (C.Oracle.check_timed_view_delta s2.history s2.view ctx.C.Ctx.out ~lo:0
           ~hi:target))

let test_restore_guards () =
  let s = two_table () in
  random_txns (Prng.create ~seed:134) s 5;
  with_temp_file (fun path ->
      Wal_codec.save_file (Database.wal s.db) path;
      let records = Wal_codec.load_file path in
      (* Non-empty target. *)
      let s2 = two_table () in
      random_txns (Prng.create ~seed:135) s2 1;
      Alcotest.(check bool) "non-fresh target rejected" true
        (try
           Database.restore s2.db records;
           false
         with Invalid_argument _ -> true);
      (* Missing table. *)
      let db3 = Database.create () in
      Alcotest.(check bool) "unknown table rejected" true
        (try
           Database.restore db3 records;
           false
         with Invalid_argument _ -> true))

let test_corruption_detected () =
  let check_corrupt content =
    let path = Filename.temp_file "rollwal" ".log" in
    Fun.protect
      ~finally:(fun () -> Sys.remove path)
      (fun () ->
        let out = open_out path in
        output_string out content;
        close_out out;
        try
          ignore (Wal_codec.load_file path);
          false
        with Wal_codec.Corrupt _ -> true)
  in
  Alcotest.(check bool) "bad header" true (check_corrupt "NOTAWAL\n");
  Alcotest.(check bool) "empty file" true (check_corrupt "");
  Alcotest.(check bool) "truncated record" true
    (check_corrupt "ROLLWAL 1\nR 1 1 0x1p0\n");
  Alcotest.(check bool) "garbage line" true
    (check_corrupt "ROLLWAL 1\nR 1 1 0x1p0\nX nonsense\nE\n");
  Alcotest.(check bool) "bad value" true
    (check_corrupt "ROLLWAL 1\nR 1 1 0x1p0\nC \"t\" 1 1\nV wat\nE\n")

let test_empty_wal () =
  let db = Database.create () in
  with_temp_file (fun path ->
      Wal_codec.save_file (Database.wal db) path;
      Alcotest.(check int) "no records" 0 (List.length (Wal_codec.load_file path)))

(* Partial-write handling: a file truncated at *every* byte position either
   recovers a clean record prefix with the torn tail reported, or (when the
   cut lands exactly on a record boundary) is simply a valid shorter log.
   The strict loader must agree: it succeeds exactly when nothing is torn. *)
let test_truncation_sweep () =
  let s = two_table () in
  random_txns (Prng.create ~seed:140) s 12;
  ignore (Database.commit_marker s.db ~tag:"sweep marker \"quoted\"");
  with_temp_file (fun path ->
      Wal_codec.save_file (Database.wal s.db) path;
      let full = Wal_codec.load_file path in
      let content = In_channel.with_open_bin path In_channel.input_all in
      let total = String.length content in
      with_temp_file (fun cut_path ->
          for cut = 0 to total - 1 do
            Out_channel.with_open_bin cut_path (fun out ->
                Out_channel.output_string out (String.sub content 0 cut));
            let recovery =
              try Wal_codec.recover_file cut_path
              with Wal_codec.Corrupt reason ->
                Alcotest.failf "cut at byte %d raised Corrupt: %s" cut reason
            in
            let n = List.length recovery.Wal_codec.records in
            if n > List.length full then
              Alcotest.failf "cut at byte %d yielded %d records" cut n;
            List.iteri
              (fun i r ->
                if not (records_equal (List.nth full i) r) then
                  Alcotest.failf "cut at byte %d: record %d differs" cut i)
              recovery.Wal_codec.records;
            let strict_ok =
              try
                ignore (Wal_codec.load_file cut_path);
                true
              with Wal_codec.Corrupt _ -> false
            in
            match recovery.Wal_codec.torn with
            | None ->
                if not strict_ok then
                  Alcotest.failf
                    "cut at byte %d: clean recovery but strict load failed" cut
            | Some _ ->
                if strict_ok then
                  Alcotest.failf
                    "cut at byte %d: torn tail but strict load accepted it" cut
          done))

(* A crash injected during save leaves exactly the records written before
   the failure point, and the recovered prefix restores into a fresh
   database. *)
let test_torn_save_recovered () =
  let s = two_table () in
  random_txns (Prng.create ~seed:141) s 10;
  let wal = Database.wal s.db in
  Alcotest.(check bool) "enough records" true (Wal.length wal >= 6);
  with_temp_file (fun path ->
      (* Die while writing the 6th record's terminator: torn tail. *)
      let fault = Roll_util.Fault.crash_at "wal.terminator" ~hit:6 in
      (try
         Wal_codec.save_file ~fault wal path;
         Alcotest.fail "expected crash during save"
       with Roll_util.Fault.Crash _ -> ());
      let recovery = Wal_codec.recover_file path in
      Alcotest.(check int) "durable prefix" 5
        (List.length recovery.Wal_codec.records);
      Alcotest.(check bool) "torn tail reported" true
        (recovery.Wal_codec.torn <> None);
      let s2 = two_table () in
      Database.restore s2.db recovery.Wal_codec.records;
      Alcotest.(check int) "now = last durable csn"
        (Wal.get wal 4).Wal.csn (Database.now s2.db));
  with_temp_file (fun path ->
      (* Die just before starting the 6th record: the file ends cleanly at a
         record boundary, so nothing is torn. *)
      let fault = Roll_util.Fault.crash_at "wal.record" ~hit:6 in
      (try
         Wal_codec.save_file ~fault wal path;
         Alcotest.fail "expected crash during save"
       with Roll_util.Fault.Crash _ -> ());
      let recovery = Wal_codec.recover_file path in
      Alcotest.(check int) "clean prefix" 5
        (List.length recovery.Wal_codec.records);
      Alcotest.(check bool) "no torn tail" true
        (recovery.Wal_codec.torn = None))

(* Corruption *followed by* complete records is not a torn tail: recovery
   must refuse rather than silently drop committed history. *)
let test_midlog_corruption_still_raises () =
  let s = two_table () in
  random_txns (Prng.create ~seed:142) s 8;
  with_temp_file (fun path ->
      Wal_codec.save_file (Database.wal s.db) path;
      let lines =
        In_channel.with_open_bin path In_channel.input_all
        |> String.split_on_char '\n'
      in
      (* Garble the second record's header line; every later record still
         carries its "E" terminator. *)
      let garbled =
        List.mapi (fun i line -> if i = 4 then "X garbage" else line) lines
      in
      Out_channel.with_open_bin path (fun out ->
          Out_channel.output_string out (String.concat "\n" garbled));
      Alcotest.(check bool) "recover raises on mid-log corruption" true
        (try
           ignore (Wal_codec.recover_file path);
           false
         with Wal_codec.Corrupt _ -> true))

let suite =
  [
    Alcotest.test_case "save/load round trip" `Quick test_roundtrip;
    Alcotest.test_case "value edge cases" `Quick test_value_edge_cases;
    Alcotest.test_case "restore reproduces database" `Quick test_restore_reproduces_database;
    Alcotest.test_case "maintenance resumes after restore" `Quick
      test_maintenance_resumes_after_restore;
    Alcotest.test_case "restore guards" `Quick test_restore_guards;
    Alcotest.test_case "corruption detected" `Quick test_corruption_detected;
    Alcotest.test_case "empty wal" `Quick test_empty_wal;
    Alcotest.test_case "recovery under byte-level truncation" `Quick
      test_truncation_sweep;
    Alcotest.test_case "torn save recovered" `Quick test_torn_save_recovered;
    Alcotest.test_case "mid-log corruption still raises" `Quick
      test_midlog_corruption_still_raises;
  ]
