(* Crash-recovery: fault-point instrumentation, WAL-backed frontier
   recovery round trips, torn-checkpoint fallback, and the randomized
   oracle-equivalence harness (Test_support.Fault_harness). *)

open Test_support.Helpers
module Harness = Test_support.Fault_harness
module Fault = Roll_util.Fault
module Wal_codec = Roll_storage.Wal_codec

let with_temp_file f =
  let path = Filename.temp_file "rollfault" ".ckpt" in
  Fun.protect ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ()) (fun () -> f path)

let rolling_algo = C.Controller.Rolling (C.Rolling.uniform 6)

let durable_frontier s =
  Harness.durable_frontier 0 s.db s.view

let recover_fresh ?checkpoint s ~algorithm =
  let s2 = Harness.restart two_table s.db in
  (s2, C.Controller.recover ?checkpoint s2.db s2.capture s2.view ~algorithm)

let check_matches_durable msg durable ctl2 ~vectors =
  Alcotest.(check int) (msg ^ ": hwm") durable.C.Frontier.hwm (C.Controller.hwm ctl2);
  Alcotest.(check int) (msg ^ ": as_of") durable.C.Frontier.as_of (C.Controller.as_of ctl2);
  if vectors then
    Alcotest.(check (array int)) (msg ^ ": tfwd") durable.C.Frontier.tfwd
      (C.Controller.frontier ctl2).C.Frontier.tfwd

let finish_and_check s2 ctl2 =
  ignore (C.Controller.refresh_latest ctl2);
  Alcotest.check relation "final contents match oracle"
    (C.Oracle.view_at s2.history s2.view (C.Controller.as_of ctl2))
    (C.Controller.contents ctl2)

(* Kill the process between propagation (delta rows derived from the WAL)
   and apply: the durable frontier still carries the old apply position,
   and recovery restores exactly it. *)
let test_crash_between_propagate_and_apply () =
  let s = two_table () in
  let rng = Prng.create ~seed:200 in
  random_txns rng s 10;
  let ctl =
    C.Controller.create ~durable:true s.db s.capture s.view ~algorithm:rolling_algo
  in
  random_txns rng s 20;
  C.Controller.propagate_until ctl (Database.now s.db);
  (C.Controller.ctx ctl).C.Ctx.fault <- Fault.crash_at "apply.roll" ~hit:1;
  (try
     ignore (C.Controller.refresh_latest ctl);
     Alcotest.fail "expected crash before apply"
   with Fault.Crash ("apply.roll", 1) -> ());
  let durable = durable_frontier s in
  Alcotest.(check bool) "apply never became durable" true
    (durable.C.Frontier.as_of < durable.C.Frontier.hwm);
  let s2, ctl2 = recover_fresh s ~algorithm:rolling_algo in
  check_matches_durable "recovered" durable ctl2 ~vectors:true;
  finish_and_check s2 ctl2

(* Kill the process between a forward query and its compensation: the
   half-done step was never recorded, so recovery lands on the frontier of
   the last complete step, and re-runs the step's work without
   double-counting the crashed attempt's emissions (they died with the
   process). *)
let test_crash_between_forward_and_compensation () =
  let s = two_table () in
  let rng = Prng.create ~seed:201 in
  random_txns rng s 25;
  let ctl =
    C.Controller.create ~durable:true s.db s.capture s.view ~algorithm:rolling_algo
  in
  random_txns rng s 15;
  (C.Controller.ctx ctl).C.Ctx.fault <- Fault.crash_at "rolling.post_forward" ~hit:3;
  let before_crash = ref (C.Controller.frontier ctl) in
  (try
     while C.Controller.propagate_step ctl do
       before_crash := C.Controller.frontier ctl
     done;
     Alcotest.fail "expected crash mid-step"
   with Fault.Crash ("rolling.post_forward", 3) -> ());
  let durable = durable_frontier s in
  Alcotest.(check (array int)) "durable frontier is the last completed step's"
    !before_crash.C.Frontier.tfwd durable.C.Frontier.tfwd;
  let s2, ctl2 = recover_fresh s ~algorithm:rolling_algo in
  check_matches_durable "recovered" durable ctl2 ~vectors:true;
  check_ok
    (C.Oracle.check_timed_view_delta s2.history s2.view
       (C.Controller.ctx ctl2).C.Ctx.out
       ~lo:(C.Controller.as_of ctl2) ~hi:(C.Controller.hwm ctl2));
  finish_and_check s2 ctl2

(* A clean checkpoint short-circuits recovery: resume from the snapshot,
   then replay only the trajectory recorded after it. *)
let test_recover_from_checkpoint () =
  let s = two_table () in
  let rng = Prng.create ~seed:202 in
  random_txns rng s 20;
  let ctl =
    C.Controller.create ~durable:true s.db s.capture s.view ~algorithm:rolling_algo
  in
  random_txns rng s 12;
  C.Controller.propagate_until ctl (Database.now s.db);
  ignore (C.Controller.refresh_latest ctl);
  with_temp_file (fun path ->
      C.Controller.checkpoint ctl path;
      (* Keep going after the snapshot, then die mid-step. *)
      random_txns rng s 12;
      (C.Controller.ctx ctl).C.Ctx.fault <-
        Fault.crash_at "rolling.post_forward" ~hit:2;
      (try
         while C.Controller.propagate_step ctl do () done;
         Alcotest.fail "expected crash"
       with Fault.Crash _ -> ());
      let durable = durable_frontier s in
      let s2, ctl2 = recover_fresh ~checkpoint:path s ~algorithm:rolling_algo in
      check_matches_durable "recovered via checkpoint" durable ctl2 ~vectors:true;
      finish_and_check s2 ctl2)

(* A crash mid-checkpoint leaves a torn file; resume refuses it (even when
   the cut lands exactly on a row boundary, thanks to the trailer) and
   recovery falls back to WAL-only replay. *)
let test_torn_checkpoint_falls_back () =
  let s = two_table () in
  let rng = Prng.create ~seed:203 in
  random_txns rng s 25;
  let ctl =
    C.Controller.create ~durable:true s.db s.capture s.view ~algorithm:rolling_algo
  in
  random_txns rng s 15;
  C.Controller.propagate_until ctl (Database.now s.db);
  ignore (C.Controller.refresh_latest ctl);
  with_temp_file (fun path ->
      (* The crash fires before writing the 4th row: the file ends cleanly
         at a row boundary but without the trailer. *)
      (C.Controller.ctx ctl).C.Ctx.fault <- Fault.crash_at "ckpt.row" ~hit:4;
      (try
         C.Controller.checkpoint ctl path;
         Alcotest.fail "expected crash mid-checkpoint"
       with Fault.Crash ("ckpt.row", 4) -> ());
      let durable = durable_frontier s in
      (* The torn snapshot is rejected outright... *)
      let s_probe = Harness.restart two_table s.db in
      Alcotest.(check bool) "torn checkpoint rejected" true
        (try
           ignore (C.Checkpoint.resume s_probe.db s_probe.capture s_probe.view path);
           false
         with Wal_codec.Corrupt _ -> true);
      (* ...and recover falls back to the WAL. *)
      let s2, ctl2 = recover_fresh ~checkpoint:path s ~algorithm:rolling_algo in
      check_matches_durable "recovered after fallback" durable ctl2 ~vectors:true;
      finish_and_check s2 ctl2)

(* Two crashes in a row: recovery is itself crash-safe state, because it
   re-records a fresh frontier marker. *)
let test_double_crash () =
  let s = two_table () in
  let rng = Prng.create ~seed:204 in
  random_txns rng s 20;
  let ctl =
    C.Controller.create ~durable:true s.db s.capture s.view ~algorithm:rolling_algo
  in
  random_txns rng s 10;
  (C.Controller.ctx ctl).C.Ctx.fault <- Fault.crash_at "rolling.pre_advance" ~hit:2;
  (try
     while C.Controller.propagate_step ctl do () done;
     Alcotest.fail "expected first crash"
   with Fault.Crash _ -> ());
  let s2, ctl2 = recover_fresh s ~algorithm:rolling_algo in
  random_txns (Prng.create ~seed:205) s2 10;
  (C.Controller.ctx ctl2).C.Ctx.fault <- Fault.crash_at "exec.emit" ~hit:3;
  (try
     while C.Controller.propagate_step ctl2 do () done;
     Alcotest.fail "expected second crash"
   with Fault.Crash _ -> ());
  let durable = Harness.durable_frontier 0 s2.db s2.view in
  let s3, ctl3 = recover_fresh s2 ~algorithm:rolling_algo in
  check_matches_durable "second recovery" durable ctl3 ~vectors:true;
  finish_and_check s3 ctl3

(* Recovery of the uniform and deferred algorithms restarts at the durable
   high-water mark. *)
let test_recover_uniform_and_deferred () =
  List.iter
    (fun algorithm ->
      let s = two_table () in
      let rng = Prng.create ~seed:206 in
      random_txns rng s 18;
      let ctl =
        C.Controller.create ~durable:true s.db s.capture s.view ~algorithm
      in
      random_txns rng s 12;
      (C.Controller.ctx ctl).C.Ctx.fault <- Fault.crash_at "exec.query" ~hit:5;
      (try
         while C.Controller.propagate_step ctl do () done;
         Alcotest.fail "expected crash"
       with Fault.Crash _ -> ());
      let durable = durable_frontier s in
      let s2, ctl2 = recover_fresh s ~algorithm in
      check_matches_durable "recovered" durable ctl2 ~vectors:false;
      finish_and_check s2 ctl2)
    [
      C.Controller.Uniform 4;
      C.Controller.Deferred (C.Rolling_deferred.uniform 5);
    ]

(* Recovering with no durable state at all is an error, not a silent
   cold start. *)
let test_recover_requires_durable_state () =
  let s = two_table () in
  random_txns (Prng.create ~seed:207) s 10;
  (* Maintenance ran, but never durably. *)
  let ctl = C.Controller.create s.db s.capture s.view ~algorithm:rolling_algo in
  ignore (C.Controller.refresh_latest ctl);
  let s2 = Harness.restart two_table s.db in
  Alcotest.(check bool) "refused" true
    (try
       ignore (C.Controller.recover s2.db s2.capture s2.view ~algorithm:rolling_algo);
       false
     with Invalid_argument _ -> true)

(* The randomized harness: 100 seeded runs, each crashing at a randomly
   chosen reachable fault site and verifying oracle equivalence after
   recovery. Fixed seeds; see HACKING.md. *)
let test_fuzz_100_seeds () =
  let points = Harness.run_seeds ~txns:10 ~first:0 ~count:100 () in
  (* The harness must actually exercise a spread of crash sites, not keep
     hitting one. *)
  if List.length points < 5 then
    Alcotest.failf "only %d distinct crash sites exercised: %s"
      (List.length points)
      (String.concat ", " points)

(* The same harness over views with auxiliaries: 100 seeded runs on the
   filtered scenario, each crashing at a random reachable site — in the
   user controller, an auxiliary's controller, or capture — and verifying
   that the user view, every auxiliary's contents and every rebuilt mirror
   stay oracle-equivalent after recovery. Also asserts the fleet as a
   whole exercised mirror substitution (not just fallback). *)
let test_fuzz_100_seeds_aux () =
  let points = Harness.run_seeds_aux ~txns:10 ~first:0 ~count:100 () in
  if List.length points < 5 then
    Alcotest.failf "only %d distinct crash sites exercised: %s"
      (List.length points)
      (String.concat ", " points)

let suite =
  [
    Alcotest.test_case "crash between propagate and apply" `Quick
      test_crash_between_propagate_and_apply;
    Alcotest.test_case "crash between forward query and compensation" `Quick
      test_crash_between_forward_and_compensation;
    Alcotest.test_case "recover from checkpoint" `Quick test_recover_from_checkpoint;
    Alcotest.test_case "torn checkpoint falls back to WAL" `Quick
      test_torn_checkpoint_falls_back;
    Alcotest.test_case "double crash" `Quick test_double_crash;
    Alcotest.test_case "recover uniform and deferred" `Quick
      test_recover_uniform_and_deferred;
    Alcotest.test_case "recover requires durable state" `Quick
      test_recover_requires_durable_state;
    Alcotest.test_case "fuzz: 100 seeded crash-recovery runs" `Quick
      test_fuzz_100_seeds;
    Alcotest.test_case "fuzz: 100 seeded aux crash-recovery runs" `Quick
      test_fuzz_100_seeds_aux;
  ]
