(* Crash-recovery: fault-point instrumentation, WAL-backed frontier
   recovery round trips, torn-checkpoint fallback, and the randomized
   oracle-equivalence harness (Test_support.Fault_harness). *)

open Test_support.Helpers
module Harness = Test_support.Fault_harness
module Fault = Roll_util.Fault
module Wal_codec = Roll_storage.Wal_codec

let with_temp_file f =
  let path = Filename.temp_file "rollfault" ".ckpt" in
  Fun.protect ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ()) (fun () -> f path)

let rolling_algo = C.Controller.Rolling (C.Rolling.uniform 6)

let durable_frontier s =
  Harness.durable_frontier 0 s.db s.view

let recover_fresh ?checkpoint s ~algorithm =
  let s2 = Harness.restart two_table s.db in
  (s2, C.Controller.recover ?checkpoint s2.db s2.capture s2.view ~algorithm)

let check_matches_durable msg durable ctl2 ~vectors =
  Alcotest.(check int) (msg ^ ": hwm") durable.C.Frontier.hwm (C.Controller.hwm ctl2);
  Alcotest.(check int) (msg ^ ": as_of") durable.C.Frontier.as_of (C.Controller.as_of ctl2);
  if vectors then
    Alcotest.(check (array int)) (msg ^ ": tfwd") durable.C.Frontier.tfwd
      (C.Controller.frontier ctl2).C.Frontier.tfwd

let finish_and_check s2 ctl2 =
  ignore (C.Controller.refresh_latest ctl2);
  Alcotest.check relation "final contents match oracle"
    (C.Oracle.view_at s2.history s2.view (C.Controller.as_of ctl2))
    (C.Controller.contents ctl2)

(* Kill the process between propagation (delta rows derived from the WAL)
   and apply: the durable frontier still carries the old apply position,
   and recovery restores exactly it. *)
let test_crash_between_propagate_and_apply () =
  let s = two_table () in
  let rng = Prng.create ~seed:200 in
  random_txns rng s 10;
  let ctl =
    C.Controller.create ~durable:true s.db s.capture s.view ~algorithm:rolling_algo
  in
  random_txns rng s 20;
  C.Controller.propagate_until ctl (Database.now s.db);
  (C.Controller.ctx ctl).C.Ctx.fault <- Fault.crash_at "apply.roll" ~hit:1;
  (try
     ignore (C.Controller.refresh_latest ctl);
     Alcotest.fail "expected crash before apply"
   with Fault.Crash ("apply.roll", 1) -> ());
  let durable = durable_frontier s in
  Alcotest.(check bool) "apply never became durable" true
    (durable.C.Frontier.as_of < durable.C.Frontier.hwm);
  let s2, ctl2 = recover_fresh s ~algorithm:rolling_algo in
  check_matches_durable "recovered" durable ctl2 ~vectors:true;
  finish_and_check s2 ctl2

(* Kill the process between a forward query and its compensation: the
   half-done step was never recorded, so recovery lands on the frontier of
   the last complete step, and re-runs the step's work without
   double-counting the crashed attempt's emissions (they died with the
   process). *)
let test_crash_between_forward_and_compensation () =
  let s = two_table () in
  let rng = Prng.create ~seed:201 in
  random_txns rng s 25;
  let ctl =
    C.Controller.create ~durable:true s.db s.capture s.view ~algorithm:rolling_algo
  in
  random_txns rng s 15;
  (C.Controller.ctx ctl).C.Ctx.fault <- Fault.crash_at "rolling.post_forward" ~hit:3;
  let before_crash = ref (C.Controller.frontier ctl) in
  (try
     while C.Controller.propagate_step ctl do
       before_crash := C.Controller.frontier ctl
     done;
     Alcotest.fail "expected crash mid-step"
   with Fault.Crash ("rolling.post_forward", 3) -> ());
  let durable = durable_frontier s in
  Alcotest.(check (array int)) "durable frontier is the last completed step's"
    !before_crash.C.Frontier.tfwd durable.C.Frontier.tfwd;
  let s2, ctl2 = recover_fresh s ~algorithm:rolling_algo in
  check_matches_durable "recovered" durable ctl2 ~vectors:true;
  check_ok
    (C.Oracle.check_timed_view_delta s2.history s2.view
       (C.Controller.ctx ctl2).C.Ctx.out
       ~lo:(C.Controller.as_of ctl2) ~hi:(C.Controller.hwm ctl2));
  finish_and_check s2 ctl2

(* A clean checkpoint short-circuits recovery: resume from the snapshot,
   then replay only the trajectory recorded after it. *)
let test_recover_from_checkpoint () =
  let s = two_table () in
  let rng = Prng.create ~seed:202 in
  random_txns rng s 20;
  let ctl =
    C.Controller.create ~durable:true s.db s.capture s.view ~algorithm:rolling_algo
  in
  random_txns rng s 12;
  C.Controller.propagate_until ctl (Database.now s.db);
  ignore (C.Controller.refresh_latest ctl);
  with_temp_file (fun path ->
      C.Controller.checkpoint ctl path;
      (* Keep going after the snapshot, then die mid-step. *)
      random_txns rng s 12;
      (C.Controller.ctx ctl).C.Ctx.fault <-
        Fault.crash_at "rolling.post_forward" ~hit:2;
      (try
         while C.Controller.propagate_step ctl do () done;
         Alcotest.fail "expected crash"
       with Fault.Crash _ -> ());
      let durable = durable_frontier s in
      let s2, ctl2 = recover_fresh ~checkpoint:path s ~algorithm:rolling_algo in
      check_matches_durable "recovered via checkpoint" durable ctl2 ~vectors:true;
      finish_and_check s2 ctl2)

(* A crash mid-checkpoint leaves a torn file; resume refuses it (even when
   the cut lands exactly on a row boundary, thanks to the trailer) and
   recovery falls back to WAL-only replay. *)
let test_torn_checkpoint_falls_back () =
  let s = two_table () in
  let rng = Prng.create ~seed:203 in
  random_txns rng s 25;
  let ctl =
    C.Controller.create ~durable:true s.db s.capture s.view ~algorithm:rolling_algo
  in
  random_txns rng s 15;
  C.Controller.propagate_until ctl (Database.now s.db);
  ignore (C.Controller.refresh_latest ctl);
  with_temp_file (fun path ->
      (* The crash fires before writing the 4th row: the file ends cleanly
         at a row boundary but without the trailer. *)
      (C.Controller.ctx ctl).C.Ctx.fault <- Fault.crash_at "ckpt.row" ~hit:4;
      (try
         C.Controller.checkpoint ctl path;
         Alcotest.fail "expected crash mid-checkpoint"
       with Fault.Crash ("ckpt.row", 4) -> ());
      let durable = durable_frontier s in
      (* The torn snapshot is rejected outright... *)
      let s_probe = Harness.restart two_table s.db in
      Alcotest.(check bool) "torn checkpoint rejected" true
        (try
           ignore (C.Checkpoint.resume s_probe.db s_probe.capture s_probe.view path);
           false
         with Wal_codec.Corrupt _ -> true);
      (* ...and recover falls back to the WAL. *)
      let s2, ctl2 = recover_fresh ~checkpoint:path s ~algorithm:rolling_algo in
      check_matches_durable "recovered after fallback" durable ctl2 ~vectors:true;
      finish_and_check s2 ctl2)

(* Two crashes in a row: recovery is itself crash-safe state, because it
   re-records a fresh frontier marker. *)
let test_double_crash () =
  let s = two_table () in
  let rng = Prng.create ~seed:204 in
  random_txns rng s 20;
  let ctl =
    C.Controller.create ~durable:true s.db s.capture s.view ~algorithm:rolling_algo
  in
  random_txns rng s 10;
  (C.Controller.ctx ctl).C.Ctx.fault <- Fault.crash_at "rolling.pre_advance" ~hit:2;
  (try
     while C.Controller.propagate_step ctl do () done;
     Alcotest.fail "expected first crash"
   with Fault.Crash _ -> ());
  let s2, ctl2 = recover_fresh s ~algorithm:rolling_algo in
  random_txns (Prng.create ~seed:205) s2 10;
  (C.Controller.ctx ctl2).C.Ctx.fault <- Fault.crash_at "exec.emit" ~hit:3;
  (try
     while C.Controller.propagate_step ctl2 do () done;
     Alcotest.fail "expected second crash"
   with Fault.Crash _ -> ());
  let durable = Harness.durable_frontier 0 s2.db s2.view in
  let s3, ctl3 = recover_fresh s2 ~algorithm:rolling_algo in
  check_matches_durable "second recovery" durable ctl3 ~vectors:true;
  finish_and_check s3 ctl3

(* Recovery of the uniform and deferred algorithms restarts at the durable
   high-water mark. *)
let test_recover_uniform_and_deferred () =
  List.iter
    (fun algorithm ->
      let s = two_table () in
      let rng = Prng.create ~seed:206 in
      random_txns rng s 18;
      let ctl =
        C.Controller.create ~durable:true s.db s.capture s.view ~algorithm
      in
      random_txns rng s 12;
      (C.Controller.ctx ctl).C.Ctx.fault <- Fault.crash_at "exec.query" ~hit:5;
      (try
         while C.Controller.propagate_step ctl do () done;
         Alcotest.fail "expected crash"
       with Fault.Crash _ -> ());
      let durable = durable_frontier s in
      let s2, ctl2 = recover_fresh s ~algorithm in
      check_matches_durable "recovered" durable ctl2 ~vectors:false;
      finish_and_check s2 ctl2)
    [
      C.Controller.Uniform 4;
      C.Controller.Deferred (C.Rolling_deferred.uniform 5);
    ]

(* Recovering with no durable state at all is an error, not a silent
   cold start. *)
let test_recover_requires_durable_state () =
  let s = two_table () in
  random_txns (Prng.create ~seed:207) s 10;
  (* Maintenance ran, but never durably. *)
  let ctl = C.Controller.create s.db s.capture s.view ~algorithm:rolling_algo in
  ignore (C.Controller.refresh_latest ctl);
  let s2 = Harness.restart two_table s.db in
  Alcotest.(check bool) "refused" true
    (try
       ignore (C.Controller.recover s2.db s2.capture s2.view ~algorithm:rolling_algo);
       false
     with Invalid_argument _ -> true)

(* The randomized harness: 100 seeded runs, each crashing at a randomly
   chosen reachable fault site and verifying oracle equivalence after
   recovery. Fixed seeds; see HACKING.md. *)
let test_fuzz_100_seeds () =
  let points = Harness.run_seeds ~txns:10 ~first:0 ~count:100 () in
  (* The harness must actually exercise a spread of crash sites, not keep
     hitting one. *)
  if List.length points < 5 then
    Alcotest.failf "only %d distinct crash sites exercised: %s"
      (List.length points)
      (String.concat ", " points)

(* The same harness over views with auxiliaries: 100 seeded runs on the
   filtered scenario, each crashing at a random reachable site — in the
   user controller, an auxiliary's controller, or capture — and verifying
   that the user view, every auxiliary's contents and every rebuilt mirror
   stay oracle-equivalent after recovery. Also asserts the fleet as a
   whole exercised mirror substitution (not just fallback). *)
let test_fuzz_100_seeds_aux () =
  let points = Harness.run_seeds_aux ~txns:10 ~first:0 ~count:100 () in
  if List.length points < 5 then
    Alcotest.failf "only %d distinct crash sites exercised: %s"
      (List.length points)
      (String.concat ", " points)

(* Mid-migration crash coverage for the hotset handoff windows. The two
   fault points sit on opposite sides of their durable markers: a promote
   crash lands {e after} the promote marker (the key must recover heavy,
   with the light residual rebuilt minus the key), a demote crash lands
   {e before} the retire marker (the key must recover still heavy, and
   the in-memory fold into the light residual must die with the process —
   no row lost or double-counted either way). The randomized hotset fuzz
   below reaches these windows too, but only on the seeds whose uniform
   site draw lands there; these two are deterministic. *)

let hot_registry s =
  C.Hotset.create ~interval:4 ~capacity:8 ~max_heavy:3 ~enter:0.2 ~exit_:0.10
    s.db s.capture

let skewed_inserts rng zipf s n ~key =
  for _ = 1 to n do
    let k = match key with Some k -> k () | None -> Roll_util.Zipf.sample zipf rng in
    ignore
      (Database.run s.db (fun txn ->
           Database.insert txn ~table:"r"
             (Roll_relation.Tuple.ints [ k; Prng.int rng 5; Prng.int rng 5 ])))
  done

let test_crash_mid_promote () =
  let s = filtered () in
  let rng = Prng.create ~seed:208 in
  let zipf = Roll_util.Zipf.create ~n:8 ~theta:1.4 in
  random_txns rng s 10;
  let ctl =
    C.Controller.create ~durable:true s.db s.capture s.view
      ~algorithm:rolling_algo
  in
  let reg = hot_registry s in
  ignore (C.Hotset.attach ~durable:true reg ctl);
  skewed_inserts rng zipf s 120 ~key:None;
  Capture.advance s.capture;
  C.Hotset.set_fault reg (Fault.crash_at "hotset.promote" ~hit:1);
  (try
     ignore (C.Hotset.rebalance reg);
     Alcotest.fail "expected crash mid-promotion"
   with Fault.Crash ("hotset.promote", 1) -> ());
  (* Exactly one promote marker became durable before the crash; the
     in-memory half of the handoff died with the process. *)
  let s2 = Harness.restart filtered s.db in
  let ctl2 =
    C.Controller.recover s2.db s2.capture s2.view ~algorithm:rolling_algo
  in
  let reg2 = hot_registry s2 in
  let recovered = C.Hotset.attach ~durable:true ~recover:true reg2 ctl2 in
  Alcotest.(check int) "exactly the marked key recovers heavy" 1
    (List.length recovered);
  Harness.check_hot 208 ~life:"promote-crash recovered" s2 ctl2 reg2;
  finish_and_check s2 ctl2

let test_crash_mid_demote () =
  let s = filtered () in
  let rng = Prng.create ~seed:209 in
  let zipf = Roll_util.Zipf.create ~n:8 ~theta:1.4 in
  random_txns rng s 10;
  let ctl =
    C.Controller.create ~durable:true s.db s.capture s.view
      ~algorithm:rolling_algo
  in
  let reg = hot_registry s in
  ignore (C.Hotset.attach ~durable:true reg ctl);
  skewed_inserts rng zipf s 120 ~key:None;
  Capture.advance s.capture;
  let promoted, _ = C.Hotset.rebalance reg in
  Alcotest.(check bool) "skew promoted the head" true (promoted <> []);
  let old_heavy = List.map C.Hotset.key promoted in
  (* Flood the tail so every head key's share collapses below exit, then
     crash inside the first demotion — after its fold into the light
     residual, before its retire marker. *)
  skewed_inserts rng zipf s 2000 ~key:(Some (fun () -> 4 + Prng.int rng 4));
  Capture.advance s.capture;
  List.iter
    (fun he ->
      ignore (C.Controller.refresh_latest (C.Hotset.controller he));
      C.Hotset.sync he)
    (C.Hotset.for_owner reg ~owner:"rsf");
  C.Hotset.set_fault reg (Fault.crash_at "hotset.demote" ~hit:1);
  (try
     ignore (C.Hotset.rebalance reg);
     Alcotest.fail "expected crash mid-demotion"
   with Fault.Crash ("hotset.demote", 1) -> ());
  (* No retire marker committed: every pre-flood heavy key recovers still
     heavy, and the crashed fold must not double-count its rows. *)
  let s2 = Harness.restart filtered s.db in
  let ctl2 =
    C.Controller.recover s2.db s2.capture s2.view ~algorithm:rolling_algo
  in
  let reg2 = hot_registry s2 in
  let recovered = C.Hotset.attach ~durable:true ~recover:true reg2 ctl2 in
  let recovered_keys = List.map C.Hotset.key recovered in
  List.iter
    (fun k ->
      Alcotest.(check bool)
        (Printf.sprintf "crashed demotion left key %d durably heavy" k)
        true
        (List.mem k recovered_keys))
    old_heavy;
  Harness.check_hot 209 ~life:"demote-crash recovered" s2 ctl2 reg2;
  (* The interrupted migration completes cleanly on the recovered state:
     the re-seeded sketch still reads the head below exit. *)
  Capture.advance s2.capture;
  List.iter
    (fun he ->
      ignore (C.Controller.refresh_latest (C.Hotset.controller he));
      C.Hotset.sync he)
    (C.Hotset.for_owner reg2 ~owner:"rsf");
  let _, demoted = C.Hotset.rebalance reg2 in
  Alcotest.(check bool) "interrupted demotion completes after recovery" true
    (demoted <> []);
  Harness.check_hot 209 ~life:"demote completed" s2 ctl2 reg2;
  finish_and_check s2 ctl2

(* The same harness over views with a hotset attached: 100 seeded runs on
   the filtered scenario with zipf-skewed updates (head flipped mid-run so
   both promotions and demotions happen), crashing at a random reachable
   site — including inside the [hotset.promote] and [hotset.demote]
   migration windows — and verifying after recovery that the user view is
   oracle-equivalent and that the light ⊎ heavy union is exactly the
   partitioned partial (no tuple lost or double-counted across the
   crashed handoff). *)
let test_fuzz_100_seeds_hotset () =
  let points = Harness.run_seeds_hotset ~txns:10 ~first:0 ~count:100 () in
  if List.length points < 5 then
    Alcotest.failf "only %d distinct crash sites exercised: %s"
      (List.length points)
      (String.concat ", " points)

let suite =
  [
    Alcotest.test_case "crash between propagate and apply" `Quick
      test_crash_between_propagate_and_apply;
    Alcotest.test_case "crash between forward query and compensation" `Quick
      test_crash_between_forward_and_compensation;
    Alcotest.test_case "recover from checkpoint" `Quick test_recover_from_checkpoint;
    Alcotest.test_case "torn checkpoint falls back to WAL" `Quick
      test_torn_checkpoint_falls_back;
    Alcotest.test_case "double crash" `Quick test_double_crash;
    Alcotest.test_case "recover uniform and deferred" `Quick
      test_recover_uniform_and_deferred;
    Alcotest.test_case "recover requires durable state" `Quick
      test_recover_requires_durable_state;
    Alcotest.test_case "fuzz: 100 seeded crash-recovery runs" `Quick
      test_fuzz_100_seeds;
    Alcotest.test_case "fuzz: 100 seeded aux crash-recovery runs" `Quick
      test_fuzz_100_seeds_aux;
    Alcotest.test_case "crash mid-promotion handoff" `Quick
      test_crash_mid_promote;
    Alcotest.test_case "crash mid-demotion handoff" `Quick
      test_crash_mid_demote;
    Alcotest.test_case "fuzz: 100 seeded hotset crash-recovery runs" `Quick
      test_fuzz_100_seeds_hotset;
  ]
