(* rolld, the point-in-time read server: protocol codec round-trips and
   golden lines, engine admission rules (too_new / gc_horizon /
   unknown_view / overloaded / shutting_down), the snapshot-consistency
   property — every admitted [READ view AT t] is row-identical to the
   oracle's evaluation at [t] — fuzzed across fault seeds and domain
   counts, and a live socket session through Server/Client. *)

open Test_support.Helpers
module C = Roll_core
module S = Roll_serve
module P = Roll_serve.Protocol
module Json = Roll_serve.Json
module Prng = Roll_util.Prng
module Fault = Roll_util.Fault
module Retry = Roll_util.Retry
module Database = Roll_storage.Database
module Relation = Roll_relation.Relation
module Value = Roll_relation.Value
module Tuple = Roll_relation.Tuple

(* Same CI matrix convention as test_parallel: honor ROLL_DOMAINS,
   default to a 4-domain pool for the parallel side. *)
let pool_domains =
  match C.Service.env_domains () with Some n -> n | None -> 4

(* Protocol: request lines *)

let test_request_round_trip () =
  List.iter
    (fun r ->
      Alcotest.(check bool)
        (Printf.sprintf "parse (encode %S)" (P.encode_request r))
        true
        (P.parse_request (P.encode_request r) = Ok r))
    [
      P.Read_at { view = "star"; time = 42 };
      P.Read_at { view = "rs"; time = 0 };
      P.Read_fresh "star";
      P.Status;
      P.Quit;
      P.Shutdown;
    ];
  Alcotest.(check string) "READ AT golden" "READ star AT 42"
    (P.encode_request (P.Read_at { view = "star"; time = 42 }));
  Alcotest.(check string) "READ FRESH golden" "READ star FRESH"
    (P.encode_request (P.Read_fresh "star"));
  (* Tolerant of the whitespace a human with nc produces. *)
  Alcotest.(check bool) "extra whitespace accepted" true
    (P.parse_request "  READ   star   FRESH  " = Ok (P.Read_fresh "star"))

let test_request_parse_errors () =
  List.iter
    (fun line ->
      match P.parse_request line with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "expected a parse error for %S" line)
    [ ""; "   "; "FROB"; "READ star"; "READ star AT"; "READ star AT xyz";
      "READ star AT 1 2"; "read star FRESH" ]

(* Protocol: response codec. Polymorphic [compare] treats nan as equal to
   itself, which is exactly the equality a round-trip check wants. *)

let check_response_round_trip r =
  let line = P.encode_response r in
  Alcotest.(check bool)
    (Printf.sprintf "decode (encode %s...)"
       (String.sub line 0 (min 40 (String.length line))))
    true
    (compare (P.decode_response line) (Ok r) = 0)

let test_response_round_trip () =
  let every_value_kind =
    Tuple.make
      [
        Value.Int 7;
        Value.Str "a\"b\\c\nd";
        Value.Null;
        Value.Bool true;
        Value.Float 2.0;
        (* integral float must stay Float *)
        Value.Float 0.1;
        Value.Float Float.nan;
        Value.Float Float.infinity;
        Value.Float Float.neg_infinity;
      ]
  in
  List.iter check_response_round_trip
    [
      P.Rows
        {
          view = "rs";
          at = 17;
          hwm = 20;
          wait = 0.0;
          rows = [ (every_value_kind, 3); (Tuple.ints [ 1; 2 ], 1) ];
        };
      P.Rows { view = "empty"; at = 0; hwm = 0; wait = 0.125; rows = [] };
      P.Status_report
        (Json.Obj
           [ ("now", Json.Int 9); ("views", Json.List [ Json.Str "rs" ]) ]);
      P.Rejected (P.Too_new { requested = 9; now = 5 });
      P.Rejected (P.Gc_horizon { requested = 2; horizon = 6 });
      P.Rejected (P.Unknown_view "nope");
      P.Rejected (P.Overloaded { pending = 1024; limit = 1024 });
      P.Rejected (P.Malformed "unknown verb \"FROB\"");
      P.Rejected P.Shutting_down;
      P.Bye;
    ]

(* Golden lines: scripts (the CI smoke session among them) are written
   against these exact bytes, not the server source. *)
let test_response_golden () =
  Alcotest.(check string) "bye golden" {|{"ok":true,"kind":"bye"}|}
    (P.encode_response P.Bye);
  Alcotest.(check string) "too_new golden"
    {|{"ok":false,"error":"too_new","message":"time 9 is beyond current time 5","requested":9,"now":5}|}
    (P.encode_response (P.Rejected (P.Too_new { requested = 9; now = 5 })));
  Alcotest.(check string) "rows golden"
    {|{"ok":true,"kind":"rows","view":"rs","at":3,"hwm":4,"wait":0.5,"rows":[[2,[1,7]]]}|}
    (P.encode_response
       (P.Rows
          {
            view = "rs";
            at = 3;
            hwm = 4;
            wait = 0.5;
            rows = [ (Tuple.ints [ 1; 7 ], 2) ];
          }))

let test_decode_errors () =
  List.iter
    (fun line ->
      match P.decode_response line with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "expected a decode error for %S" line)
    [
      "not json";
      "{}";
      {|{"ok":true}|};
      {|{"ok":true,"kind":"frob"}|};
      {|{"ok":false,"error":"frob","message":"m"}|};
      {|{"ok":true,"kind":"rows","view":"v"}|};
      {|{"ok":false,"error":"too_new","message":"m"}|};
    ]

(* Engine admission (inline, no sockets: submit + pump on one thread). *)

let serve_scenario ?gc_threshold ?queue_limit () =
  let s = two_table () in
  let service = C.Service.create ?gc_threshold s.db s.capture in
  let ctl =
    C.Service.register service
      ~algorithm:(C.Controller.Rolling (C.Rolling.uniform 3))
      s.view
  in
  let engine = S.Engine.create ?queue_limit s.db service in
  (s, service, ctl, engine)

let drain service =
  match C.Service.maintain service ~budget:10_000 with
  | Ok _ -> ()
  | Error (e : C.Service.step_error) ->
      Alcotest.failf "maintain failed: %s at %s" e.view e.point

let expect_reject ticket expected =
  match S.Engine.poll ticket with
  | Some (P.Rejected r) when compare r expected = 0 -> ()
  | other ->
      Alcotest.failf "expected %s, got %s" (P.reject_code expected)
        (match other with
        | None -> "a still-pending ticket"
        | Some (P.Rejected r) -> P.reject_code r
        | Some _ -> "a non-reject response")

let oracle_rows s time = Relation.to_list (C.Oracle.view_at s.history s.view time)

let still_pending ticket = S.Engine.poll ticket = None

let test_admission () =
  let s, service, ctl, engine = serve_scenario () in
  random_txns (Prng.create ~seed:601) s 25;
  let now = Database.now s.db in
  (* Beyond current time: typed too_new with both bounds. *)
  let t1 = S.Engine.submit engine (P.Read_at { view = "rs"; time = now + 5 }) in
  (* Unknown view. *)
  let t2 = S.Engine.submit engine (P.Read_at { view = "nope"; time = 1 }) in
  (* Admitted but not yet covered: hwm < t <= now queues. *)
  let t3 = S.Engine.submit engine (P.Read_at { view = "rs"; time = now }) in
  Alcotest.(check int) "three tickets pending" 3 (S.Engine.pending engine);
  ignore (S.Engine.pump engine);
  expect_reject t1 (P.Too_new { requested = now + 5; now });
  expect_reject t2 (P.Unknown_view "nope");
  Alcotest.(check bool) "admitted read still waiting" true (still_pending t3);
  (* The blocked reader is visible to the scheduler as read demand. *)
  Alcotest.(check int) "demand census sees the blocked reader" 1
    (S.Engine.demand engine "rs");
  Alcotest.(check bool) "schedule reports readers on the view" true
    (List.exists
       (fun (sc : C.Scheduler.scored) ->
         match sc.C.Scheduler.item with
         | C.Scheduler.Propagate_step { view = "rs"; _ } ->
             sc.C.Scheduler.readers = 1
         | _ -> false)
       (C.Service.schedule service));
  (* Propagation catches up; the queued read resolves to oracle rows. *)
  drain service;
  ignore (S.Engine.pump engine);
  (match S.Engine.poll t3 with
  | Some (P.Rows { at; hwm; rows; wait; view }) ->
      Alcotest.(check string) "served view" "rs" view;
      Alcotest.(check int) "served at the requested time" now at;
      Alcotest.(check bool) "hwm covers the serve" true (hwm >= now);
      Alcotest.(check bool) "wait is non-negative" true (wait >= 0.0);
      Alcotest.(check bool) "rows match the oracle" true
        (rows = oracle_rows s now)
  | _ -> Alcotest.fail "queued read did not resolve to rows");
  Alcotest.(check int) "nothing left pending" 0 (S.Engine.pending engine);
  Alcotest.(check int) "one read served" 1 (S.Engine.reads_served engine);
  Alcotest.(check int) "two reads rejected" 2 (S.Engine.reads_rejected engine);
  (* The serve and the typed rejects land in the view's Stats and in
     status_json for rollctl status --json. *)
  Alcotest.(check int) "stats reads_served" 1
    (C.Stats.reads_served (C.Controller.stats ctl));
  Alcotest.(check bool) "stats reads_rejected counted" true
    (C.Stats.reads_rejected (C.Controller.stats ctl) > 0);
  Alcotest.(check bool) "status_json surfaces read counters" true
    (contains (C.Service.status_json service) "\"reads_served\":1")

let test_fresh_serves_at_hwm () =
  let s, service, ctl, engine = serve_scenario () in
  random_txns (Prng.create ~seed:602) s 20;
  (* Partial drain: hwm strictly between 0 and now. *)
  ignore (C.Service.step_all service ~budget:3);
  let hwm = C.Controller.hwm ctl in
  let ticket = S.Engine.submit engine (P.Read_fresh "rs") in
  ignore (S.Engine.pump engine);
  match S.Engine.poll ticket with
  | Some (P.Rows { at; rows; _ }) ->
      Alcotest.(check int) "FRESH serves at the hwm" hwm at;
      Alcotest.(check bool) "rows match the oracle at the hwm" true
        (rows = oracle_rows s hwm)
  | _ -> Alcotest.fail "FRESH read did not resolve immediately"

(* A burst of reads at one (view, t) materializes the snapshot once; the
   memo dies when the gc horizon passes its time. *)
let test_snapshot_memo () =
  let s, service, ctl, engine = serve_scenario ~gc_threshold:1 () in
  random_txns (Prng.create ~seed:605) s 20;
  drain service;
  let hwm = C.Controller.hwm ctl in
  let read = P.Read_at { view = "rs"; time = hwm } in
  let t1 = S.Engine.submit engine read in
  let t2 = S.Engine.submit engine read in
  let t3 = S.Engine.submit engine read in
  ignore (S.Engine.pump engine);
  Alcotest.(check int) "second and third reads hit the memo" 2
    (S.Engine.snapshot_memo_hits engine);
  let rows_of t =
    match S.Engine.poll t with
    | Some (P.Rows { rows; _ }) -> rows
    | _ -> Alcotest.fail "memoized read not served"
  in
  Alcotest.(check bool) "memoized rows equal the oracle" true
    (rows_of t1 = oracle_rows s hwm);
  Alcotest.(check bool) "all three reads identical" true
    (rows_of t1 = rows_of t2 && rows_of t2 = rows_of t3);
  (* Push the gc horizon past the memoized time; the entry must be evicted,
     not served stale, and a fresh read must rebuild from the controller. *)
  random_txns (Prng.create ~seed:606) s 40;
  drain service;
  (* Roll the stored view to the new hwm and prune the applied delta so
     the horizon deterministically passes the memoized time. *)
  C.Service.refresh_all service;
  ignore (C.Service.gc_all service);
  let horizon = C.Controller.horizon ctl in
  Alcotest.(check bool) "gc horizon passed the memoized time" true
    (horizon > hwm);
  let hits_before = S.Engine.snapshot_memo_hits engine in
  let t4 =
    S.Engine.submit engine (P.Read_at { view = "rs"; time = C.Controller.hwm ctl })
  in
  ignore (S.Engine.pump engine);
  (match S.Engine.poll t4 with
  | Some (P.Rows { rows; at; _ }) ->
      Alcotest.(check bool) "post-eviction read matches the oracle" true
        (rows = oracle_rows s at)
  | _ -> Alcotest.fail "post-eviction read not served");
  Alcotest.(check int) "the evicted entry did not count as a hit" hits_before
    (S.Engine.snapshot_memo_hits engine);
  C.Service.shutdown service

let test_gc_horizon_reject () =
  let s, service, ctl, engine = serve_scenario ~gc_threshold:1 () in
  random_txns (Prng.create ~seed:603) s 30;
  drain service;
  (* maintain's gc item pruned the applied prefix; the horizon moved. *)
  let horizon = C.Controller.horizon ctl in
  Alcotest.(check bool) "gc advanced the horizon" true (horizon > 0);
  let t1 =
    S.Engine.submit engine (P.Read_at { view = "rs"; time = horizon - 1 })
  in
  (* The horizon itself is still reconstructible: oldest admitted time. *)
  let t2 =
    S.Engine.submit engine (P.Read_at { view = "rs"; time = horizon })
  in
  ignore (S.Engine.pump engine);
  expect_reject t1 (P.Gc_horizon { requested = horizon - 1; horizon });
  match S.Engine.poll t2 with
  | Some (P.Rows { rows; _ }) ->
      Alcotest.(check bool) "horizon snapshot matches the oracle" true
        (rows = oracle_rows s horizon)
  | _ -> Alcotest.fail "read at the horizon should be served"

let test_overload_and_shutdown () =
  let s, service, _ctl, engine = serve_scenario ~queue_limit:2 () in
  random_txns (Prng.create ~seed:604) s 10;
  let now = Database.now s.db in
  let read = P.Read_at { view = "rs"; time = now } in
  let q1 = S.Engine.submit engine read in
  let q2 = S.Engine.submit engine read in
  let shed = S.Engine.submit engine read in
  (* The shed ticket resolved at submit time, before any pump. *)
  expect_reject shed (P.Overloaded { pending = 2; limit = 2 });
  (* Close: queued readers are orphaned with shutting_down... *)
  S.Engine.close engine;
  expect_reject q1 P.Shutting_down;
  expect_reject q2 P.Shutting_down;
  (* ...and new submissions are refused at the door. *)
  expect_reject (S.Engine.submit engine read) P.Shutting_down;
  Alcotest.(check bool) "rejects counted" true
    (S.Engine.reads_rejected engine >= 4);
  drain service (* the service itself is untouched by engine close *)

(* The tentpole property: for a random update stream, a partial drain and
   random admitted targets t <= hwm, READ view AT t returns exactly the
   oracle's rows at t — and a read admitted beyond the hwm resolves to the
   oracle's rows once the drain covers it. Fuzzed across fault seeds with
   transient faults injected into the maintenance path, at 1 domain and at
   the CI pool size: reads must be consistent whichever domain layout the
   drain used. *)
let run_reads ~seed ~domains =
  let s = three_table () in
  let rng = Prng.create ~seed in
  random_txns rng s 8;
  let service = C.Service.create ~domains s.db s.capture in
  let ctl =
    C.Service.register service
      ~algorithm:(C.Controller.Rolling (C.Rolling.uniform (2 + (seed mod 4))))
      s.view
  in
  random_txns rng s 20;
  if seed mod 3 = 0 then
    (C.Controller.ctx ctl).C.Ctx.fault <-
      Fault.transient_at "rolling.post_forward" ~hit:2 ~failures:2;
  if seed mod 7 = 0 then
    (C.Controller.ctx ctl).C.Ctx.fault <-
      Fault.transient_at "exec.query" ~hit:1 ~failures:1;
  let engine = S.Engine.create s.db service in
  let retry = Retry.policy ~max_attempts:5 () in
  let step budget =
    match C.Service.try_step_all ~sleep:(fun _ -> ()) service ~budget ~retry with
    | Ok _ -> ()
    | Error (e : C.Service.step_error) ->
        Alcotest.failf "seed %d: drain failed at %s" seed e.C.Service.point
  in
  (* Partial drain, so the hwm lands mid-stream and both admission paths
     (serve-now and queue) are exercised. *)
  step (2 + (seed mod 6));
  let hwm = C.Controller.hwm ctl in
  let check_rows label time = function
    | Some (P.Rows { at; rows; _ }) ->
        Alcotest.(check int)
          (Printf.sprintf "seed %d: %s served at its target" seed label)
          time at;
        Alcotest.(check bool)
          (Printf.sprintf "seed %d: %s rows = oracle rows at %d" seed label
             time)
          true
          (rows = Relation.to_list (C.Oracle.view_at s.history s.view time))
    | other ->
        Alcotest.failf "seed %d: %s at %d did not resolve to rows (%s)" seed
          label time
          (match other with
          | None -> "still pending"
          | Some (P.Rejected r) -> P.reject_code r
          | Some _ -> "non-rows response")
  in
  (* Admitted targets: horizon <= t <= hwm (the horizon starts at the
     view's materialization time — earlier snapshots never existed). *)
  let horizon = C.Controller.horizon ctl in
  let targets =
    List.init 3 (fun _ -> horizon + Prng.int rng (hwm - horizon + 1))
  in
  let tickets =
    List.map
      (fun time ->
        (time, S.Engine.submit engine (P.Read_at { view = "abc"; time })))
      targets
  in
  ignore (S.Engine.pump engine);
  List.iter
    (fun (time, ticket) ->
      check_rows "covered read" time (S.Engine.poll ticket))
    tickets;
  (* A read beyond the hwm queues, boosts the view, and resolves to the
     oracle once propagation covers it. *)
  let now = Database.now s.db in
  if now > hwm then begin
    let time = hwm + 1 + Prng.int rng (now - hwm) in
    let ticket = S.Engine.submit engine (P.Read_at { view = "abc"; time }) in
    ignore (S.Engine.pump engine);
    Alcotest.(check bool)
      (Printf.sprintf "seed %d: uncovered read queued" seed)
      true
      (S.Engine.poll ticket = None && S.Engine.demand engine "abc" = 1);
    step 10_000;
    ignore (S.Engine.pump engine);
    check_rows "queued read" time (S.Engine.poll ticket)
  end;
  C.Service.shutdown service

let test_reads_match_oracle () =
  for seed = 0 to 99 do
    run_reads ~seed ~domains:1;
    run_reads ~seed ~domains:pool_domains
  done

(* Socket session: a live server with maintenance ticking, a scripted
   client exchange covering every response kind, then a clean SHUTDOWN —
   the same session the CI smoke job scripts via [rolld client]. *)
let test_socket_session () =
  let s = two_table () in
  let service = C.Service.create s.db s.capture in
  let _ctl =
    C.Service.register service
      ~algorithm:(C.Controller.Rolling (C.Rolling.uniform 3))
      s.view
  in
  random_txns (Prng.create ~seed:605) s 15;
  let engine = S.Engine.create s.db service in
  let socket = Filename.temp_file "rolld_test" ".sock" in
  Sys.remove socket;
  let tick () =
    match C.Service.maintain service ~budget:64 with Ok _ | Error _ -> ()
  in
  let server = S.Server.start ~tick ~socket engine in
  let conn = S.Client.connect_retry socket in
  let expect label want got =
    Alcotest.(check bool) label true (compare got (Ok want) = 0)
  in
  (* FRESH always serves; with the tick draining, at a covered hwm. *)
  (match S.Client.request conn (P.Read_fresh "rs") with
  | Ok (P.Rows { view = "rs"; at; hwm; rows; _ }) ->
      Alcotest.(check int) "fresh at = hwm" hwm at;
      Alcotest.(check bool) "fresh rows = oracle at the hwm" true
        (rows = Relation.to_list (C.Oracle.view_at s.history s.view at))
  | _ -> Alcotest.fail "FRESH over the socket did not return rows");
  (* An admitted point-in-time read resolves once the tick covers it. *)
  (match
     S.Client.request conn (P.Read_at { view = "rs"; time = Database.now s.db })
   with
  | Ok (P.Rows _) -> ()
  | _ -> Alcotest.fail "admitted AT read did not resolve over the socket");
  (* Typed rejections travel the wire intact. *)
  (match S.Client.request conn (P.Read_at { view = "rs"; time = 1_000_000 }) with
  | Ok (P.Rejected (P.Too_new _)) -> ()
  | _ -> Alcotest.fail "expected too_new over the socket");
  expect "unknown view over the socket"
    (P.Rejected (P.Unknown_view "nope"))
    (S.Client.request conn (P.Read_fresh "nope"));
  (match S.Client.request_raw conn "FROB" with
  | Ok (P.Rejected (P.Malformed _)) -> ()
  | _ -> Alcotest.fail "expected malformed for a bad request line");
  (* STATUS routes through the engine thread and reports the service. *)
  (match S.Client.request conn P.Status with
  | Ok (P.Status_report report) ->
      Alcotest.(check bool) "status has the clock" true
        (Json.member "now" report <> None);
      Alcotest.(check bool) "status counts serves" true
        (match Json.member "served" report with
        | Some (Json.Int n) -> n >= 2
        | _ -> false)
  | _ -> Alcotest.fail "STATUS over the socket did not return a report");
  expect "quit gets bye" P.Bye (S.Client.request conn P.Quit);
  S.Client.close conn;
  (* A second session shuts the whole server down cleanly. *)
  let conn2 = S.Client.connect_retry socket in
  expect "shutdown gets bye" P.Bye (S.Client.request conn2 P.Shutdown);
  S.Server.wait server;
  Alcotest.(check bool) "server stopped" false (S.Server.running server);
  Alcotest.(check bool) "socket file removed" false (Sys.file_exists socket);
  S.Client.close conn2;
  C.Service.shutdown service

let suite =
  [
    Alcotest.test_case "request round-trip and goldens" `Quick
      test_request_round_trip;
    Alcotest.test_case "request parse errors" `Quick test_request_parse_errors;
    Alcotest.test_case "response round-trip (every kind)" `Quick
      test_response_round_trip;
    Alcotest.test_case "response goldens" `Quick test_response_golden;
    Alcotest.test_case "response decode errors" `Quick test_decode_errors;
    Alcotest.test_case "admission rules" `Quick test_admission;
    Alcotest.test_case "FRESH serves at the hwm" `Quick
      test_fresh_serves_at_hwm;
    Alcotest.test_case "gc horizon rejection" `Quick test_gc_horizon_reject;
    Alcotest.test_case "snapshot memo serves repeats and evicts at the horizon"
      `Quick test_snapshot_memo;
    Alcotest.test_case "overload and shutdown shedding" `Quick
      test_overload_and_shutdown;
    Alcotest.test_case "reads match the oracle (seeds 0-99, 1 and N domains)"
      `Slow test_reads_match_oracle;
    Alcotest.test_case "socket session end to end" `Quick test_socket_session;
  ]
