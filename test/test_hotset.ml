(* Skew-aware heavy-light partitioning: the Partition sketch's bounds and
   hysteresis, group derivation and seeding, migration exactness (the
   light ⊎ heavy union is always exactly the partial), service-driven
   on/off bit-identity, and registry dedupe/orphan retirement. The
   crash/recovery side lives in test_fault.ml (hotset seeds). *)

open Test_support.Helpers
open Roll_relation
module Zipf = Roll_util.Zipf

let rolling n = C.Controller.Rolling (C.Rolling.uniform n)

(* ------------------------------------------------------------------ *)
(* Partition: space-saving estimates and hysteresis                     *)

let test_partition_sketch () =
  let p = C.Partition.create ~capacity:4 () in
  (* Within capacity, estimates are exact and error-free. *)
  C.Partition.observe p 1 ~count:10;
  C.Partition.observe p 2 ~count:5;
  C.Partition.observe p 1 ~count:10;
  Alcotest.(check int) "exact estimate" 20 (C.Partition.estimate p 1);
  Alcotest.(check int) "no error while tracked from birth" 0
    (C.Partition.error p 1);
  Alcotest.(check int) "total mass" 25 (C.Partition.total p);
  (* Deletions and no-ops do not un-skew the stream. *)
  C.Partition.observe p 1 ~count:(-7);
  C.Partition.observe p 1 ~count:0;
  Alcotest.(check int) "non-positive counts ignored" 20
    (C.Partition.estimate p 1);
  (* Overflow evicts the minimum counter; the newcomer inherits its count
     as an error bound, keeping every estimate within total/capacity. *)
  C.Partition.observe p 3 ~count:1;
  C.Partition.observe p 4 ~count:1;
  C.Partition.observe p 5 ~count:2;
  Alcotest.(check int) "occupancy capped" 4 (C.Partition.occupancy p);
  Alcotest.(check bool) "evictee forgotten or inherited" true
    (C.Partition.estimate p 5 >= 2);
  Alcotest.(check bool) "estimate error bounded by total/capacity" true
    (C.Partition.error p 5 <= C.Partition.total p / 4);
  (* Untracked keys read as zero. *)
  Alcotest.(check int) "untracked is zero" 0 (C.Partition.estimate p 99)

let test_partition_hysteresis () =
  (* enter at 30% share, exit below 10%: a key oscillating between the
     two thresholds keeps its current class instead of thrashing. *)
  let p = C.Partition.create ~capacity:8 ~enter:0.3 ~exit_:0.1 () in
  C.Partition.observe p 1 ~count:40;
  C.Partition.observe p 2 ~count:60;
  let promoted, demoted = C.Partition.rebalance p in
  Alcotest.(check (list int)) "both keys promoted" [ 1; 2 ]
    (List.sort Int.compare promoted);
  Alcotest.(check (list int)) "nothing demoted" [] demoted;
  (* Dilute key 1 to a 16% share — between exit and enter: it stays
     heavy. A fresh key at the same share would not be promoted. *)
  C.Partition.observe p 3 ~count:150;
  let promoted, demoted = C.Partition.rebalance p in
  Alcotest.(check (list int)) "diluted heavy key retained" [] demoted;
  Alcotest.(check (list int)) "only the new mass promoted" [ 3 ] promoted;
  Alcotest.(check bool) "key 1 still heavy (hysteresis)" true
    (C.Partition.is_heavy p 1);
  (* Dilute key 1 below the exit threshold: now it leaves. *)
  C.Partition.observe p 3 ~count:250;
  let _, demoted = C.Partition.rebalance p in
  Alcotest.(check (list int)) "diluted below exit demoted" [ 1 ] demoted;
  Alcotest.(check bool) "key 1 light now" false (C.Partition.is_heavy p 1);
  (* force_heavy bypasses enter (recovery path) but not exit. *)
  C.Partition.force_heavy p 1;
  Alcotest.(check bool) "forced heavy" true (C.Partition.is_heavy p 1);
  let _, demoted = C.Partition.rebalance p in
  Alcotest.(check (list int)) "forced key re-demoted by exit rule" [ 1 ]
    demoted;
  (* max_heavy keeps the most frequent members. *)
  let q = C.Partition.create ~capacity:8 ~enter:0.05 ~exit_:0.01 () in
  C.Partition.observe q 1 ~count:50;
  C.Partition.observe q 2 ~count:40;
  C.Partition.observe q 3 ~count:30;
  let promoted, _ = C.Partition.rebalance ~max_heavy:2 q in
  Alcotest.(check (list int)) "max_heavy keeps top keys" [ 1; 2 ]
    (List.sort Int.compare promoted)

(* ------------------------------------------------------------------ *)
(* Derivation and seeding                                               *)

let test_attach_seeds () =
  (* two_table: tie on join atoms → source 0 (r), partitioned on k. *)
  let s = two_table () in
  let rng = Prng.create ~seed:5 in
  random_txns rng s 20;
  let ctl = C.Controller.create s.db s.capture s.view ~algorithm:(rolling 4) in
  let reg = C.Hotset.create ~interval:4 s.db s.capture in
  let recovered = C.Hotset.attach reg ctl in
  Alcotest.(check int) "no heavy keys recovered cold" 0
    (List.length recovered);
  Alcotest.(check (list (pair string int))) "partitioned on r.k"
    [ ("r", 0) ]
    (C.Hotset.partitioned reg ~owner:"rs");
  (* The light residual seeds from the relation's standing contents. *)
  let r = Database.table s.db "r" in
  Alcotest.(check int) "light mirror holds the whole relation"
    (Table.cardinality r)
    (C.Hotset.light_rows reg ~owner:"rs");
  Alcotest.(check bool) "sketch saw the standing mass" true
    (C.Hotset.sketch_keys reg > 0);
  (* three_table: b feeds two join atoms — strictly the most joined. *)
  let s3 = three_table () in
  let ctl3 =
    C.Controller.create s3.db s3.capture s3.view ~algorithm:(rolling 4)
  in
  let reg3 = C.Hotset.create ~interval:4 s3.db s3.capture in
  ignore (C.Hotset.attach reg3 ctl3);
  Alcotest.(check (list (pair string int))) "most-joined source wins"
    [ ("b", 0) ]
    (C.Hotset.partitioned reg3 ~owner:"abc");
  (* Single-source views derive nothing. *)
  let solo =
    C.View.create_select s.db ~name:"solo" ~sources:[ ("r", "r") ]
      ~predicate:[]
      ~select:[ ("k", Predicate.Col (Predicate.col 0 0)) ]
  in
  let ctl_solo =
    C.Controller.create s.db s.capture solo ~algorithm:(rolling 4)
  in
  Alcotest.(check int) "single-source derives nothing" 0
    (List.length (C.Hotset.attach reg ctl_solo));
  Alcotest.(check (list (pair string int))) "no group for solo" []
    (C.Hotset.partitioned reg ~owner:"solo")

(* ------------------------------------------------------------------ *)
(* Migration exactness: light ⊎ heavy is the partial, before and after
   every promotion and demotion.                                        *)

(* The expected partial for the filtered scenario: π_{k,v}(σ_{tag>=1}(r)),
   computed straight from the table contents. *)
let expected_partial db schema =
  let r = Database.table db "r" in
  let out = Relation.of_list schema [] in
  Relation.iter
    (fun tuple count ->
      match Tuple.get tuple 2 with
      | Value.Int tag when tag >= 1 ->
          Relation.add out (Tuple.project tuple [ 0; 1 ]) count
      | _ -> ())
    (Table.contents r);
  out

let union_of_parts ctl =
  match (C.Controller.ctx ctl).C.Ctx.hot with
  | None -> Alcotest.fail "substitution closure not installed"
  | Some lookup -> (
      match lookup ~peek:true 0 with
      | None -> Alcotest.fail "no parts for the partitioned source"
      | Some h ->
          List.fold_left
            (fun acc part -> Relation.union acc (Table.contents part))
            (Relation.of_list
               (Table.schema (List.hd h.C.Ctx.parts))
               [])
            h.C.Ctx.parts)

let skewed_insert rng zipf db =
  ignore
    (Database.run db (fun txn ->
         Database.insert txn ~table:"r"
           (Tuple.ints [ Zipf.sample zipf rng; Prng.int rng 5; Prng.int rng 5 ])))

let test_migration_exactness () =
  let s = filtered () in
  let rng = Prng.create ~seed:17 in
  let zipf = Zipf.create ~n:8 ~theta:1.4 in
  random_txns rng s 15;
  let ctl = C.Controller.create s.db s.capture s.view ~algorithm:(rolling 4) in
  (* A small sketch with a high enter share so only the dominant keys
     promote, leaving a non-trivial light residual. *)
  let reg =
    C.Hotset.create ~interval:4 ~capacity:8 ~max_heavy:3 ~enter:0.2
      ~exit_:0.10 s.db s.capture
  in
  ignore (C.Hotset.attach reg ctl);
  (* Skew the stream hard toward the zipf head, then migrate. *)
  for _ = 1 to 120 do
    skewed_insert rng zipf s.db
  done;
  Capture.advance s.capture;
  let promoted, demoted = C.Hotset.rebalance reg in
  Alcotest.(check bool) "skew promoted at least one key" true
    (List.length promoted > 0);
  Alcotest.(check int) "nothing to demote yet" 0 (List.length demoted);
  Alcotest.(check int) "census agrees"
    (List.length promoted)
    (C.Hotset.heavy_count reg ~owner:"rsf");
  let schema =
    match (C.Controller.ctx ctl).C.Ctx.hot with
    | Some lookup -> (
        match lookup ~peek:true 0 with
        | Some h -> Table.schema (List.hd h.C.Ctx.parts)
        | None -> Alcotest.fail "no parts")
    | None -> Alcotest.fail "no closure"
  in
  Alcotest.check relation "light ⊎ heavy = partial after promotion"
    (expected_partial s.db schema)
    (union_of_parts ctl);
  (* Heavy mirrors hold only their key's rows; the light residual holds
     none of the heavy keys — the partition is disjoint. *)
  List.iter
    (fun he ->
      let k = C.Hotset.key he in
      Relation.iter
        (fun tuple _ ->
          match Tuple.get tuple 0 with
          | Value.Int k' ->
              Alcotest.(check int) "heavy mirror keyed correctly" k k'
          | _ -> Alcotest.fail "non-int key")
        (Table.contents (C.Hotset.mirror he)))
    promoted;
  (* Keep rolling: more skewed change, maintain the heavy partials the
     way the service would, then rebalance again — still exact. *)
  for _ = 1 to 60 do
    skewed_insert rng zipf s.db
  done;
  Capture.advance s.capture;
  List.iter
    (fun he ->
      ignore (C.Controller.refresh_latest (C.Hotset.controller he));
      C.Hotset.sync he)
    (C.Hotset.for_owner reg ~owner:"rsf");
  let _, _ = C.Hotset.rebalance reg in
  List.iter
    (fun he ->
      ignore (C.Controller.refresh_latest (C.Hotset.controller he));
      C.Hotset.sync he)
    (C.Hotset.for_owner reg ~owner:"rsf");
  Alcotest.check relation "still exact after further maintenance"
    (expected_partial s.db schema)
    (union_of_parts ctl);
  Alcotest.(check bool) "parts provably substitutable" true
    (C.Hotset.fresh_for reg ~owner:"rsf");
  (* Now flood the tail keys so the head's share collapses below exit:
     the demotion must fold every heavy row back into the light residual
     exactly once. *)
  let before = C.Hotset.heavy_count reg ~owner:"rsf" in
  for _ = 1 to 2000 do
    ignore
      (Database.run s.db (fun txn ->
           Database.insert txn ~table:"r"
             (Tuple.ints
                [ 4 + Prng.int rng 4; Prng.int rng 5; Prng.int rng 5 ])))
  done;
  Capture.advance s.capture;
  (* Migration needs a provably-fresh point: freshen the heavy partials
     past the flood first (a stale group defers rather than risk an
     inexact handoff — checked below). *)
  let deferred, _ = C.Hotset.rebalance reg in
  Alcotest.(check int) "stale group defers migration" 0
    (List.length deferred);
  List.iter
    (fun he ->
      ignore (C.Controller.refresh_latest (C.Hotset.controller he));
      C.Hotset.sync he)
    (C.Hotset.for_owner reg ~owner:"rsf");
  let promoted2, demoted = C.Hotset.rebalance reg in
  Alcotest.(check bool) "flood demoted a key" true (List.length demoted > 0);
  Alcotest.(check int) "census tracks the migration"
    (before - List.length demoted + List.length promoted2)
    (C.Hotset.heavy_count reg ~owner:"rsf");
  Alcotest.check relation "light ⊎ heavy = partial after demotion"
    (expected_partial s.db schema)
    (union_of_parts ctl)

(* ------------------------------------------------------------------ *)
(* Hotset on vs off over the same seeded skewed stream: bit-identical
   user-view contents at every refresh point, and the heavy path fired. *)

let test_on_off_identical () =
  let drive ~hotset =
    let s = filtered () in
    (* Pin auxiliaries off: the executor substitutes a fresh auxiliary
       mirror ahead of the hot partition, so under ROLL_AUX=1 the aux
       path would intercept every Base term and the hot-hits assertion
       below would be vacuous. *)
    let svc =
      C.Service.create ~hotset ~auxiliary:false ~default_sla:500 s.db s.capture
    in
    let ctl = C.Service.register svc ~algorithm:(rolling 3) s.view in
    let rng = Prng.create ~seed:23 in
    let zipf = Zipf.create ~n:8 ~theta:1.5 in
    let snaps = ref [] in
    for _ = 1 to 12 do
      random_txns rng s 2;
      for _ = 1 to 12 do
        skewed_insert rng zipf s.db
      done;
      (* Two drains per round: the first catches capture up, the second
         starts at a quiet point where the registry can migrate keys. The
         budget leaves room for the heavy partials' own steps — the hot
         band freshens them ahead of the user view, so the user steps
         probe fresh parts. *)
      ignore (C.Service.step_all svc ~budget:50);
      ignore (C.Service.step_all svc ~budget:50);
      C.Service.refresh_all svc;
      snaps := C.Controller.contents ctl :: !snaps
    done;
    ignore (C.Controller.refresh_latest ctl);
    let final = C.Controller.contents ctl in
    Alcotest.check relation "matches oracle"
      (C.Oracle.view_at s.history s.view (C.Controller.as_of ctl))
      final;
    (C.Controller.stats ctl, List.rev (final :: !snaps))
  in
  let stats_on, on = drive ~hotset:true in
  let _, off = drive ~hotset:false in
  Alcotest.(check int) "same number of snapshots" (List.length off)
    (List.length on);
  List.iteri
    (fun i (a, b) ->
      Alcotest.check relation
        (Printf.sprintf "snapshot %d identical hotset on vs off" i)
        b a)
    (List.combine on off);
  Alcotest.(check bool) "heavy-light substitution actually fired" true
    (C.Stats.hot_hits stats_on > 0)

(* ------------------------------------------------------------------ *)
(* Service integration: dedupe across siblings, guarded unregister,
   orphan retirement                                                    *)

let test_service_dedupe_and_orphans () =
  let s = filtered () in
  let rng = Prng.create ~seed:31 in
  let zipf = Zipf.create ~n:8 ~theta:1.5 in
  let svc = C.Service.create ~hotset:true ~default_sla:500 s.db s.capture in
  let reg =
    match C.Service.hotset svc with
    | Some r -> r
    | None -> Alcotest.fail "hotset registry missing"
  in
  ignore (C.Service.register svc ~algorithm:(rolling 3) s.view);
  (* A sibling with the same partial shape shares the group. *)
  let twin = clone_view s.db s.view ~name:"rsf2" in
  ignore (C.Service.register svc ~algorithm:(rolling 3) twin);
  Alcotest.(check (list (pair string int))) "twin shares the group"
    (C.Hotset.partitioned reg ~owner:"rsf")
    (C.Hotset.partitioned reg ~owner:"rsf2");
  (* Drive skewed change through drains until keys promote. *)
  for _ = 1 to 6 do
    for _ = 1 to 20 do
      skewed_insert rng zipf s.db
    done;
    ignore (C.Service.step_all svc ~budget:12);
    ignore (C.Service.step_all svc ~budget:12);
    C.Service.refresh_all svc
  done;
  Alcotest.(check bool) "keys promoted under service drains" true
    (C.Hotset.heavy_count reg ~owner:"rsf" > 0);
  let heavy_names = List.map C.Hotset.name (C.Hotset.entries reg) in
  List.iter
    (fun n ->
      Alcotest.(check bool)
        (Printf.sprintf "%s registered for maintenance" n)
        true
        (List.mem n (C.Service.names svc)))
    heavy_names;
  (* Status surfaces heavy-partial rows and the owner's census. *)
  let st =
    List.find
      (fun (x : C.Service.status) -> String.equal x.C.Service.name "rsf")
      (C.Service.status svc)
  in
  Alcotest.(check int) "status heavy census"
    (C.Hotset.heavy_count reg ~owner:"rsf")
    st.C.Service.heavy_keys;
  Alcotest.(check int) "status light census"
    (C.Hotset.light_rows reg ~owner:"rsf")
    st.C.Service.light_rows;
  (* Heavy partials cannot be unregistered directly. *)
  (match heavy_names with
  | n :: _ ->
      Alcotest.check_raises "unregister heavy partial rejected"
        (Invalid_argument
           ("Service.unregister: " ^ n
          ^ " is a heavy-key partial; it is retired when its last owner goes"))
        (fun () -> C.Service.unregister svc n)
  | [] -> ());
  (* Releasing one owner keeps the shared group; the last retires it and
     its entries. *)
  C.Service.unregister svc "rsf";
  Alcotest.(check bool) "group survives one release" true
    (C.Hotset.heavy_count reg ~owner:"rsf2" > 0);
  C.Service.unregister svc "rsf2";
  Alcotest.(check int) "orphan group retired" 0
    (List.length (C.Hotset.entries reg));
  Alcotest.(check (list string)) "no entries left" [] (C.Service.names svc)

let suite =
  [
    Alcotest.test_case "partition sketch bounds" `Quick test_partition_sketch;
    Alcotest.test_case "partition hysteresis and caps" `Quick
      test_partition_hysteresis;
    Alcotest.test_case "attach derives and seeds" `Quick test_attach_seeds;
    Alcotest.test_case "migration exactness" `Quick test_migration_exactness;
    Alcotest.test_case "hotset on vs off bit-identical" `Quick
      test_on_off_identical;
    Alcotest.test_case "service dedupe, status and orphans" `Quick
      test_service_dedupe_and_orphans;
  ]
