(* Retry/backoff policy: deterministic schedules under a fake clock, bounded
   attempts, transaction rollback on retry, and permanent failures surfacing
   through the service as typed errors. *)

open Test_support.Helpers
module Fault = Roll_util.Fault
module Retry = Roll_util.Retry

let test_delay_schedule () =
  let p = Retry.policy ~max_attempts:4 ~base_delay:0.01 ~multiplier:2.0 ~max_delay:1.0 () in
  Alcotest.(check (float 1e-9)) "attempt 1" 0.01 (Retry.delay p ~attempt:1);
  Alcotest.(check (float 1e-9)) "attempt 2" 0.02 (Retry.delay p ~attempt:2);
  Alcotest.(check (float 1e-9)) "attempt 3" 0.04 (Retry.delay p ~attempt:3);
  Alcotest.(check (list (float 1e-9))) "schedule" [ 0.01; 0.02; 0.04 ]
    (Retry.schedule p);
  (* The exponential is capped. *)
  let capped = Retry.policy ~max_attempts:10 ~base_delay:0.5 ~multiplier:3.0 ~max_delay:2.0 () in
  Alcotest.(check (float 1e-9)) "capped" 2.0 (Retry.delay capped ~attempt:7)

let test_success_after_transient () =
  let fault = Fault.transient_at "p" ~hit:1 ~failures:2 in
  let slept = ref [] in
  let attempts = ref 0 in
  let result =
    Retry.run
      (Retry.policy ~max_attempts:4 ~base_delay:0.01 ~multiplier:2.0 ~max_delay:1.0 ())
      ~sleep:(fun d -> slept := d :: !slept)
      (fun () ->
        incr attempts;
        Fault.hit fault "p";
        !attempts)
  in
  Alcotest.(check (result int reject)) "succeeds on third attempt" (Ok 3) result;
  (* Backoff under the fake clock is exactly the policy's schedule prefix. *)
  Alcotest.(check (list (float 1e-9))) "slept" [ 0.01; 0.02 ] (List.rev !slept)

let test_bounded_attempts () =
  let fault = Fault.transient_at "p" ~hit:1 ~failures:100 in
  let slept = ref 0 in
  let attempts = ref 0 in
  let result =
    Retry.run
      (Retry.policy ~max_attempts:3 ())
      ~sleep:(fun _ -> incr slept)
      (fun () ->
        incr attempts;
        Fault.hit fault "p")
  in
  (match result with
  | Ok () -> Alcotest.fail "expected permanent failure"
  | Error (f : Retry.failure) ->
      Alcotest.(check string) "failure point" "p" f.Retry.point;
      Alcotest.(check int) "attempts recorded" 3 f.Retry.attempts);
  Alcotest.(check int) "exactly max_attempts runs" 3 !attempts;
  Alcotest.(check int) "slept between attempts only" 2 !slept

let test_other_exceptions_propagate () =
  Alcotest.(check bool) "Failure passes through untouched" true
    (try
       ignore (Retry.run Retry.default ~sleep:(fun _ -> ()) (fun () -> failwith "boom"));
       false
     with Failure _ -> true);
  let fault = Fault.crash_at "p" ~hit:1 in
  Alcotest.(check bool) "Crash is never retried" true
    (try
       ignore
         (Retry.run Retry.default ~sleep:(fun _ -> ()) (fun () -> Fault.hit fault "p"));
       false
     with Fault.Crash ("p", 1) -> true)

(* A transient failure after the forward query has already emitted rows must
   not double-count them: the reliable step rolls the view delta back to the
   pre-step mark before re-running, and the final delta still matches the
   oracle. *)
let test_retry_rolls_back_partial_step () =
  let s = two_table () in
  let rng = Prng.create ~seed:150 in
  random_txns rng s 30;
  let service = C.Service.create s.db s.capture in
  let ctl =
    C.Service.register service ~algorithm:(C.Controller.Rolling (C.Rolling.uniform 7)) s.view
  in
  (* Registration materializes at the current time, so commit more work for
     the propagator to roll through. *)
  random_txns rng s 30;
  (* Fail the step twice *after* forward rows were emitted. *)
  (C.Controller.ctx ctl).C.Ctx.fault <-
    Fault.create
      ~rules:[ Fault.Transient_at { point = "rolling.post_forward"; first = 2; failures = 2 } ]
      ();
  let retry = Retry.policy ~max_attempts:4 () in
  (match C.Service.try_step_all ~sleep:(fun _ -> ()) service ~budget:1000 ~retry with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "unexpected permanent failure at %s" e.C.Service.point);
  let stats = C.Controller.stats ctl in
  Alcotest.(check int) "two retries" 2 (C.Stats.retries stats);
  Alcotest.(check int) "one recovery" 1 (C.Stats.recoveries stats);
  Alcotest.(check int) "no aborts" 0 (C.Stats.aborts stats);
  let target = C.Controller.hwm ctl in
  check_ok
    (C.Oracle.check_timed_view_delta s.history s.view
       (C.Controller.ctx ctl).C.Ctx.out
       ~lo:(C.Controller.as_of ctl) ~hi:target)

let test_permanent_failure_through_service () =
  let s = two_table () in
  random_txns (Prng.create ~seed:151) s 20;
  let service = C.Service.create s.db s.capture in
  let ctl =
    C.Service.register service ~algorithm:(C.Controller.Uniform 5) s.view
  in
  random_txns (Prng.create ~seed:152) s 20;
  let before = Roll_delta.Delta.length (C.Controller.ctx ctl).C.Ctx.out in
  (C.Controller.ctx ctl).C.Ctx.fault <-
    Fault.create
      ~rules:[ Fault.Transient_at { point = "exec.query"; first = 1; failures = 1000 } ]
      ();
  (match
     C.Service.try_step_all ~sleep:(fun _ -> ()) service ~budget:10
       ~retry:(Retry.policy ~max_attempts:3 ())
   with
  | Ok _ -> Alcotest.fail "expected a permanent failure"
  | Error (e : C.Service.step_error) ->
      Alcotest.(check string) "failing view" "rs" e.C.Service.view;
      Alcotest.(check string) "failing point" "exec.query" e.C.Service.point;
      Alcotest.(check int) "attempts" 3 e.C.Service.attempts);
  Alcotest.(check int) "aborted step left no partial rows" before
    (Roll_delta.Delta.length (C.Controller.ctx ctl).C.Ctx.out);
  let st = List.hd (C.Service.status service) in
  Alcotest.(check int) "status retries" 2 st.C.Service.retries;
  Alcotest.(check int) "status aborts" 1 st.C.Service.aborts;
  Alcotest.(check int) "status recoveries" 0 st.C.Service.recoveries

let suite =
  [
    Alcotest.test_case "delay and schedule" `Quick test_delay_schedule;
    Alcotest.test_case "success after transient failures" `Quick
      test_success_after_transient;
    Alcotest.test_case "bounded attempts" `Quick test_bounded_attempts;
    Alcotest.test_case "other exceptions propagate" `Quick
      test_other_exceptions_propagate;
    Alcotest.test_case "retry rolls back partial step" `Quick
      test_retry_rolls_back_partial_step;
    Alcotest.test_case "permanent failure surfaces typed" `Quick
      test_permanent_failure_through_service;
  ]
