(* Rollscope: clock injection, the span recorder, the metric registry and
   the exporters — plus two integration properties: every trace the
   crash-recovery fault harness produces is balanced and well-nested
   (seeds 0..99, crashed steps surfacing as error spans), and a fully
   observed service drain records the whole capture → propagate → apply →
   checkpoint taxonomy with the advertised metrics. *)

open Test_support.Helpers
module Harness = Test_support.Fault_harness
module Clock = Roll_obs.Clock
module Trace = Roll_obs.Trace
module Metrics = Roll_obs.Metrics
module Export = Roll_obs.Export
module Obs = Roll_obs.Obs
module W = Roll_workload

let raises_invalid f =
  match f () with
  | _ -> false
  | exception Invalid_argument _ -> true

(* ------------------------------------------------------------------ *)
(* Clock                                                               *)

let test_manual_clock () =
  let c = Clock.manual ~start:10. ~tick:0.5 () in
  Alcotest.(check bool) "manual" true (Clock.is_manual c);
  Alcotest.(check (float 0.)) "first read" 10. (Clock.now c);
  Alcotest.(check (float 0.)) "ticked" 10.5 (Clock.now c);
  Clock.advance c 4.;
  Alcotest.(check (float 0.)) "advanced" 15. (Clock.now c);
  let frozen = Clock.manual ~start:1. () in
  Alcotest.(check (float 0.)) "frozen 1" 1. (Clock.now frozen);
  Alcotest.(check (float 0.)) "frozen 2" 1. (Clock.now frozen);
  Alcotest.(check bool) "negative tick refused" true
    (raises_invalid (fun () -> Clock.manual ~tick:(-1.) ()))

let test_real_clock () =
  let c = Clock.real () in
  Alcotest.(check bool) "not manual" false (Clock.is_manual c);
  let a = Clock.now c in
  let b = Clock.now c in
  Alcotest.(check bool) "monotone-ish" true (b >= a);
  Alcotest.(check bool) "advance refused" true
    (raises_invalid (fun () -> Clock.advance c 1.))

(* ------------------------------------------------------------------ *)
(* Trace recorder                                                      *)

let make_trace ?capacity () =
  Trace.create ?capacity ~clock:(Clock.manual ~start:1. ~tick:0.5 ()) ()

let test_span_nesting () =
  let tr = make_trace () in
  Trace.with_span tr
    ~attrs:[ ("view", Trace.Str "rs") ]
    "propagate.step"
    (fun () ->
      Trace.with_span tr "exec.query" (fun () ->
          Trace.add_attr tr "rows" (Trace.Int 3)));
  Alcotest.(check int) "balanced" 0 (Trace.open_count tr);
  match Trace.spans tr with
  | [ outer; inner ] ->
      Alcotest.(check string) "outer name" "propagate.step" outer.Trace.name;
      Alcotest.(check int) "outer root" 0 outer.Trace.parent;
      Alcotest.(check int) "outer depth" 0 outer.Trace.depth;
      Alcotest.(check (float 0.)) "outer start" 1. outer.Trace.start;
      Alcotest.(check (float 0.)) "outer stop" 2.5 outer.Trace.stop;
      Alcotest.(check string) "inner name" "exec.query" inner.Trace.name;
      Alcotest.(check int) "inner parent" outer.Trace.id inner.Trace.parent;
      Alcotest.(check int) "inner depth" 1 inner.Trace.depth;
      Alcotest.(check (float 0.)) "inner start" 1.5 inner.Trace.start;
      Alcotest.(check (float 0.)) "inner stop" 2. inner.Trace.stop;
      Alcotest.(check bool) "inner attr landed" true
        (List.mem_assoc "rows" inner.Trace.attrs);
      Alcotest.(check bool) "outer ok" true (outer.Trace.status = Trace.Ok)
  | spans -> Alcotest.failf "expected 2 spans, got %d" (List.length spans)

exception Boom

let test_exception_closes_with_error () =
  let tr = make_trace () in
  (try
     Trace.with_span tr "sched.item" (fun () ->
         Trace.with_span tr "propagate.step" (fun () -> raise Boom))
   with Boom -> ());
  Alcotest.(check int) "balanced after unwind" 0 (Trace.open_count tr);
  let errored =
    List.for_all
      (fun (s : Trace.span) ->
        match s.Trace.status with Trace.Error _ -> true | Trace.Ok -> false)
      (Trace.spans tr)
  in
  Alcotest.(check bool) "both spans errored" true errored;
  Alcotest.(check int) "both recorded" 2 (Trace.recorded tr)

let test_set_error_sticks () =
  let tr = make_trace () in
  Trace.with_span tr "apply.roll" (fun () -> Trace.set_error tr "late rows");
  match Trace.spans tr with
  | [ s ] ->
      Alcotest.(check bool) "status stuck" true
        (s.Trace.status = Trace.Error "late rows")
  | _ -> Alcotest.fail "expected one span"

let test_record_complete () =
  let tr = make_trace () in
  Trace.with_span tr "exec.query" (fun () ->
      Trace.record_complete tr ~start:1.6 ~stop:1.9
        ~attrs:[ ("resource", Trace.Str "fact") ]
        "exec.operator");
  (match Trace.spans tr with
  | [ parent; op ] ->
      Alcotest.(check string) "synth name" "exec.operator" op.Trace.name;
      Alcotest.(check int) "parented under open span" parent.Trace.id
        op.Trace.parent;
      Alcotest.(check (float 0.)) "kept start" 1.6 op.Trace.start;
      Alcotest.(check (float 0.)) "kept stop" 1.9 op.Trace.stop
  | spans -> Alcotest.failf "expected 2 spans, got %d" (List.length spans));
  Alcotest.(check bool) "stop < start refused" true
    (raises_invalid (fun () ->
         Trace.record_complete tr ~start:2. ~stop:1. "exec.operator"))

let test_abort_open () =
  let tr = make_trace () in
  (* Model a hard process death: open spans by hand via an exception-free
     path, then abort. with_span cannot leave spans open, so nest and
     abort from inside. *)
  Trace.with_span tr "service.drain" (fun () ->
      Trace.abort_open tr ~reason:"killed");
  Alcotest.(check int) "nothing open" 0 (Trace.open_count tr);
  let aborted =
    List.exists
      (fun (s : Trace.span) -> s.Trace.status = Trace.Error "killed")
      (Trace.spans tr)
  in
  Alcotest.(check bool) "aborted span recorded" true aborted

let test_ring_overwrite () =
  let tr = make_trace ~capacity:4 () in
  for i = 1 to 6 do
    Trace.with_span tr (Printf.sprintf "s%d" i) (fun () -> ())
  done;
  Alcotest.(check int) "recorded counts all" 6 (Trace.recorded tr);
  Alcotest.(check int) "dropped the overflow" 2 (Trace.dropped tr);
  let names = List.map (fun (s : Trace.span) -> s.Trace.name) (Trace.spans tr) in
  Alcotest.(check (list string)) "oldest overwritten" [ "s3"; "s4"; "s5"; "s6" ]
    names

let test_noop_trace () =
  let tr = Trace.noop () in
  Alcotest.(check bool) "disabled" false (Trace.enabled tr);
  let r = Trace.with_span tr "anything" (fun () -> 42) in
  Alcotest.(check int) "transparent" 42 r;
  Alcotest.(check int) "nothing recorded" 0 (Trace.recorded tr)

(* ------------------------------------------------------------------ *)
(* Metrics registry                                                    *)

let test_metrics_basics () =
  let m = Metrics.create () in
  let c = Metrics.counter m ~labels:[ ("view", "rs") ] "roll_demo_total" in
  Metrics.inc c;
  Metrics.add c 2.;
  (* Get-or-create: same (name, labels) is the same instrument. *)
  let c' = Metrics.counter m ~labels:[ ("view", "rs") ] "roll_demo_total" in
  Metrics.inc c';
  Alcotest.(check (float 0.)) "accumulated" 4. (Metrics.value c);
  Alcotest.(check bool) "negative add refused" true
    (raises_invalid (fun () -> Metrics.add c (-1.)));
  Alcotest.(check bool) "kind clash refused" true
    (raises_invalid (fun () -> ignore (Metrics.gauge m "roll_demo_total")));
  let g = Metrics.gauge m "roll_demo_gauge" in
  Metrics.set g 4.5;
  Alcotest.(check (option (float 0.))) "find counter" (Some 4.)
    (Metrics.find_value m ~labels:[ ("view", "rs") ] "roll_demo_total");
  Alcotest.(check (option (float 0.))) "find gauge" (Some 4.5)
    (Metrics.find_value m "roll_demo_gauge");
  Alcotest.(check (option (float 0.))) "missing series" None
    (Metrics.find_value m ~labels:[ ("view", "other") ] "roll_demo_total");
  let h = Metrics.histogram m ~buckets:[| 0.1; 1. |] "roll_demo_seconds" in
  List.iter (Metrics.observe h) [ 0.05; 0.5; 5. ];
  Alcotest.(check int) "hist count" 3 (Metrics.hist_count h);
  Metrics.reset m;
  Alcotest.(check (float 0.)) "counter reset" 0. (Metrics.value c);
  Alcotest.(check int) "hist reset" 0 (Metrics.hist_count h)

let test_collectors_merge () =
  let m = Metrics.create () in
  let a = ref 1. and b = ref 2. in
  Metrics.register_collector m ~kind:Metrics.Gauge "roll_pool" (fun () ->
      [ ([ ("view", "a") ], !a) ]);
  Metrics.register_collector m ~kind:Metrics.Gauge "roll_pool" (fun () ->
      [ ([ ("view", "b") ], !b) ]);
  let family =
    List.find
      (fun (sf : Metrics.sample_family) -> sf.Metrics.sf_name = "roll_pool")
      (Metrics.snapshot m)
  in
  Alcotest.(check int) "merged series" 2 (List.length family.Metrics.points);
  (* Read-through: a later snapshot sees the live value, no caching. *)
  a := 10.;
  Alcotest.(check (option (float 0.))) "live read-through" (Some 10.)
    (Metrics.find_value m ~labels:[ ("view", "a") ] "roll_pool");
  Alcotest.(check bool) "histogram collector refused" true
    (raises_invalid (fun () ->
         Metrics.register_collector m ~kind:Metrics.Histogram "roll_h"
           (fun () -> [])))

let test_snapshot_sorted () =
  let m = Metrics.create () in
  ignore (Metrics.counter m "roll_z_total");
  ignore (Metrics.counter m "roll_a_total");
  ignore (Metrics.counter m ~labels:[ ("view", "z") ] "roll_m_total");
  ignore (Metrics.counter m ~labels:[ ("view", "a") ] "roll_m_total");
  let names =
    List.map (fun (sf : Metrics.sample_family) -> sf.Metrics.sf_name)
      (Metrics.snapshot m)
  in
  Alcotest.(check (list string)) "families sorted"
    [ "roll_a_total"; "roll_m_total"; "roll_z_total" ]
    names;
  let family =
    List.find
      (fun (sf : Metrics.sample_family) -> sf.Metrics.sf_name = "roll_m_total")
      (Metrics.snapshot m)
  in
  let labels =
    List.map (fun (p : Metrics.point) -> p.Metrics.p_labels) family.Metrics.points
  in
  Alcotest.(check bool) "points sorted by labels" true
    (labels = [ [ ("view", "a") ]; [ ("view", "z") ] ])

(* ------------------------------------------------------------------ *)
(* Exporter goldens (deterministic manual clock)                       *)

let golden_trace () =
  let tr = make_trace () in
  Trace.with_span tr
    ~attrs:[ ("view", Trace.Str "rs") ]
    "propagate.step"
    (fun () ->
      Trace.with_span tr "exec.query" (fun () ->
          Trace.add_attr tr "rows" (Trace.Int 3)));
  tr

let test_chrome_trace_golden () =
  let expected =
    "{\"traceEvents\": [\n\
    \  {\"name\": \"process_name\", \"ph\": \"M\", \"pid\": 1, \"args\": \
     {\"name\": \"test\"}},\n\
    \  {\"name\": \"propagate.step\", \"cat\": \"propagate\", \"ph\": \"X\", \
     \"ts\": 1000000, \"dur\": 1500000, \"pid\": 1, \"tid\": 1, \"args\": \
     {\"view\": \"rs\", \"status\": \"ok\"}},\n\
    \  {\"name\": \"exec.query\", \"cat\": \"exec\", \"ph\": \"X\", \"ts\": \
     1500000, \"dur\": 500000, \"pid\": 1, \"tid\": 1, \"args\": {\"rows\": \
     3, \"status\": \"ok\"}}\n\
     ], \"displayTimeUnit\": \"ms\"}\n"
  in
  Alcotest.(check string) "chrome trace" expected
    (Export.chrome_trace ~process:"test" (golden_trace ()))

let test_spans_jsonl_golden () =
  let expected =
    "{\"id\": 1, \"parent\": 0, \"depth\": 0, \"name\": \"propagate.step\", \
     \"start\": 1, \"stop\": 2.5, \"view\": \"rs\", \"status\": \"ok\"}\n\
     {\"id\": 2, \"parent\": 1, \"depth\": 1, \"name\": \"exec.query\", \
     \"start\": 1.5, \"stop\": 2, \"rows\": 3, \"status\": \"ok\"}\n"
  in
  Alcotest.(check string) "spans jsonl" expected
    (Export.spans_jsonl (golden_trace ()))

let test_prometheus_golden () =
  let m = Metrics.create () in
  let c = Metrics.counter m ~help:"demo counter" ~labels:[ ("view", "rs") ] "roll_demo_total" in
  Metrics.inc c;
  Metrics.add c 2.;
  let g = Metrics.gauge m "roll_demo_gauge" in
  Metrics.set g 4.5;
  let h = Metrics.histogram m ~buckets:[| 0.1; 1. |] "roll_demo_seconds" in
  List.iter (Metrics.observe h) [ 0.05; 0.5; 5. ];
  Metrics.register_collector m ~kind:Metrics.Gauge "roll_demo_collected"
    (fun () -> [ ([ ("k", "a") ], 7.) ]);
  let expected =
    "# TYPE roll_demo_collected gauge\n\
     roll_demo_collected{k=\"a\"} 7\n\
     # TYPE roll_demo_gauge gauge\n\
     roll_demo_gauge 4.5\n\
     # TYPE roll_demo_seconds histogram\n\
     roll_demo_seconds_bucket{le=\"0.1\"} 1\n\
     roll_demo_seconds_bucket{le=\"1\"} 2\n\
     roll_demo_seconds_bucket{le=\"+Inf\"} 3\n\
     roll_demo_seconds_sum 5.55\n\
     roll_demo_seconds_count 3\n\
     # HELP roll_demo_total demo counter\n\
     # TYPE roll_demo_total counter\n\
     roll_demo_total{view=\"rs\"} 3\n"
  in
  Alcotest.(check string) "prometheus" expected (Export.prometheus m)

(* ------------------------------------------------------------------ *)
(* Trace-integrity property                                            *)

(* Every recorded trace must be balanced (no dangling open spans) and
   well-nested: a child's interval lies inside its parent's. [eps] absorbs
   float-sum rounding in the synthesized operator spans. *)
let check_well_nested ~tag trace =
  if Trace.open_count trace <> 0 then
    Alcotest.failf "%s: %d spans left open" tag (Trace.open_count trace);
  let spans = Trace.spans trace in
  let by_id = Hashtbl.create 256 in
  List.iter (fun (s : Trace.span) -> Hashtbl.replace by_id s.Trace.id s) spans;
  let eps = 1e-9 in
  List.iter
    (fun (s : Trace.span) ->
      if s.Trace.stop +. eps < s.Trace.start then
        Alcotest.failf "%s: span %d (%s) stops before it starts" tag s.Trace.id
          s.Trace.name;
      if s.Trace.parent <> 0 then
        match Hashtbl.find_opt by_id s.Trace.parent with
        | None ->
            (* Parent lost to ring overwrite; containment unknowable. *)
            ()
        | Some p ->
            if
              s.Trace.start +. eps < p.Trace.start
              || s.Trace.stop > p.Trace.stop +. eps
            then
              Alcotest.failf
                "%s: span %d (%s) [%g, %g] escapes parent %d (%s) [%g, %g]"
                tag s.Trace.id s.Trace.name s.Trace.start s.Trace.stop
                p.Trace.id p.Trace.name p.Trace.start p.Trace.stop)
    spans;
  by_id

let has_error_span trace =
  List.exists
    (fun (s : Trace.span) ->
      match s.Trace.status with Trace.Error _ -> true | Trace.Ok -> false)
    (Trace.spans trace)

(* The crash-recovery harness under a manual-clock Rollscope handle:
   seeds 0..99, each run crashing at a random reachable fault site and
   then recovering. The trace must stay balanced and well-nested across
   the crash, and crashes that fire inside instrumented work must surface
   as error-status spans — never dangling open ones. *)
let test_trace_integrity_under_crash () =
  let error_runs = ref 0 in
  for seed = 0 to 99 do
    let obs = Obs.create ~clock:(Clock.manual ~tick:1e-6 ()) () in
    ignore (Harness.run_seed ~obs ~txns:10 seed);
    let trace = Obs.trace obs in
    let tag = Printf.sprintf "seed %d" seed in
    if Trace.recorded trace = 0 then Alcotest.failf "%s: empty trace" tag;
    ignore (check_well_nested ~tag trace);
    if has_error_span trace then incr error_runs
  done;
  (* The harness crashes every seed; most sites live inside spans, so a
     healthy instrumentation shows plenty of error spans across 100 runs. *)
  if !error_runs = 0 then
    Alcotest.fail "no crashed run surfaced an error-status span"

(* ------------------------------------------------------------------ *)
(* End-to-end observed service drain                                   *)

let test_observed_service_drain () =
  let obs = Obs.create ~clock:(Clock.manual ~tick:1e-6 ()) () in
  let star = W.Star.create W.Star.default_config in
  W.Star.load_initial star;
  let db = W.Star.db star in
  let service = C.Service.create ~obs db (W.Star.capture star) in
  let view = W.Star.view star in
  let _ =
    C.Service.register ~durable:true service
      ~algorithm:(C.Controller.Rolling (C.Rolling.per_relation [| 10; 80; 80 |]))
      view
  in
  let ckpt = Filename.temp_file "rollobs" ".ckpt" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove ckpt with Sys_error _ -> ())
  @@ fun () ->
  C.Service.set_checkpoint service (C.View.name view) ~path:ckpt ~every:1;
  W.Star.mixed_txns star ~n:120 ~dim_fraction:0.05;
  (match C.Service.maintain service ~budget:200 with
  | Ok items -> Alcotest.(check bool) "drain did work" true (items > 0)
  | Error (e : C.Service.step_error) ->
      Alcotest.failf "drain failed at %s" e.point);
  let trace = Obs.trace obs in
  let by_id = check_well_nested ~tag:"service drain" trace in
  (* The acceptance taxonomy: one drain's trace covers capture, propagate
     (with per-ComputeDelta-node and per-operator children), apply and
     checkpoint. *)
  List.iter
    (fun name ->
      if Trace.find trace ~name = [] then
        Alcotest.failf "no %S span in the drain trace" name)
    [
      "service.drain"; "sched.item"; "propagate.step"; "compute_delta.node";
      "exec.query"; "exec.operator"; "capture.advance"; "apply.roll";
      "checkpoint.write";
    ];
  (* Every ComputeDelta node recorded during the drain descends from a
     propagation step. *)
  let rec has_ancestor (s : Trace.span) name =
    match Hashtbl.find_opt by_id s.Trace.parent with
    | None -> false
    | Some p -> p.Trace.name = name || has_ancestor p name
  in
  List.iter
    (fun (s : Trace.span) ->
      if not (has_ancestor s "propagate.step") then
        Alcotest.failf "compute_delta.node %d outside any propagate.step"
          s.Trace.id)
    (Trace.find trace ~name:"compute_delta.node");
  (* The advertised metrics: step-latency histograms per item kind and the
     per-view memo hit ratio, exposable as Prometheus text. *)
  let m = Obs.metrics obs in
  let latency =
    List.find_opt
      (fun (sf : Metrics.sample_family) ->
        sf.Metrics.sf_name = "roll_item_latency_seconds")
      (Metrics.snapshot m)
  in
  (match latency with
  | None -> Alcotest.fail "no roll_item_latency_seconds family"
  | Some sf ->
      Alcotest.(check bool) "histogram kind" true
        (sf.Metrics.sf_kind = Metrics.Histogram);
      let kinds =
        List.filter_map
          (fun (p : Metrics.point) -> List.assoc_opt "kind" p.Metrics.p_labels)
          sf.Metrics.points
      in
      Alcotest.(check bool) "propagate latency series" true
        (List.mem "propagate" kinds));
  (match
     Metrics.find_value m
       ~labels:[ ("view", C.View.name view) ]
       "roll_memo_hit_ratio"
   with
  | Some _ -> ()
  | None -> Alcotest.fail "no per-view roll_memo_hit_ratio gauge");
  let prom = Export.prometheus m in
  Alcotest.(check bool) "prometheus text mentions latency" true
    (contains prom "roll_item_latency_seconds_bucket");
  let chrome = Export.chrome_trace trace in
  Alcotest.(check bool) "chrome export mentions propagate" true
    (contains chrome "\"propagate.step\"")

let suite =
  [
    Alcotest.test_case "manual clock" `Quick test_manual_clock;
    Alcotest.test_case "real clock" `Quick test_real_clock;
    Alcotest.test_case "span nesting" `Quick test_span_nesting;
    Alcotest.test_case "exception closes with error" `Quick
      test_exception_closes_with_error;
    Alcotest.test_case "set_error sticks" `Quick test_set_error_sticks;
    Alcotest.test_case "record_complete" `Quick test_record_complete;
    Alcotest.test_case "abort_open" `Quick test_abort_open;
    Alcotest.test_case "ring overwrite" `Quick test_ring_overwrite;
    Alcotest.test_case "noop trace" `Quick test_noop_trace;
    Alcotest.test_case "metrics basics" `Quick test_metrics_basics;
    Alcotest.test_case "collectors merge" `Quick test_collectors_merge;
    Alcotest.test_case "snapshot sorted" `Quick test_snapshot_sorted;
    Alcotest.test_case "chrome trace golden" `Quick test_chrome_trace_golden;
    Alcotest.test_case "spans jsonl golden" `Quick test_spans_jsonl_golden;
    Alcotest.test_case "prometheus golden" `Quick test_prometheus_golden;
    Alcotest.test_case "trace integrity under 100 crash seeds" `Quick
      test_trace_integrity_under_crash;
    Alcotest.test_case "observed service drain" `Quick
      test_observed_service_drain;
  ]
