(* Higher-order delta processing: auxiliary-view derivation, substitution
   with freshness fallback, signature dedupe across sibling views, mirror
   sync/gc, and orphan retirement. The crash/recovery side lives in
   test_fault.ml (aux seeds) — here everything runs in one process. *)

open Test_support.Helpers
open Roll_relation

let rolling n = C.Controller.Rolling (C.Rolling.uniform n)

(* ------------------------------------------------------------------ *)
(* Derivation                                                          *)

let test_derive () =
  (* filtered: source 0 is narrowed by σ(tag>=1) and π{k,v} → one aux. *)
  let s = filtered () in
  (match C.Auxiliary.derive s.view with
  | [ d ] ->
      Alcotest.(check int) "substituted source" 0 d.C.Auxiliary.source;
      Alcotest.(check string) "base table" "r" d.C.Auxiliary.base;
      Alcotest.(check (array int)) "retained columns" [| 0; 1 |]
        d.C.Auxiliary.cols;
      Alcotest.(check int) "local atoms" 1 (List.length d.C.Auxiliary.local)
  | ds ->
      Alcotest.failf "expected exactly one derivation, got %d" (List.length ds));
  (* Full-width, unfiltered partials are refused: every source of the
     two-table and chain scenarios is read whole. *)
  let s2 = two_table () in
  Alcotest.(check int) "two_table derives none" 0
    (List.length (C.Auxiliary.derive s2.view));
  let s3 = three_table () in
  Alcotest.(check int) "three_table derives none" 0
    (List.length (C.Auxiliary.derive s3.view));
  (* Single-source views have no Base terms to substitute. *)
  let solo =
    C.View.create_select s.db ~name:"solo" ~sources:[ ("r", "r") ]
      ~predicate:[]
      ~select:[ ("k", Predicate.Col (Predicate.col 0 0)) ]
  in
  Alcotest.(check int) "single-source derives none" 0
    (List.length (C.Auxiliary.derive solo))

(* ------------------------------------------------------------------ *)
(* Substitution: stale auxiliaries fall back, fresh ones are probed,
   and the maintained contents never depend on which path ran.          *)

let test_fallback_when_stale () =
  let s = filtered () in
  let rng = Prng.create ~seed:42 in
  random_txns rng s 30;
  let ctl =
    C.Controller.create s.db s.capture s.view ~algorithm:(rolling 4)
  in
  let reg = C.Auxiliary.create ~interval:4 s.db s.capture in
  let entries = C.Auxiliary.attach reg ctl in
  Alcotest.(check int) "one auxiliary attached" 1 (List.length entries);
  let ae = List.hd entries in
  let stats = C.Controller.stats ctl in
  Alcotest.(check int) "no probes yet" 0
    (C.Stats.aux_hits stats + C.Stats.aux_misses stats);
  (* Dirty the base while nobody maintains the auxiliary: every Base-term
     read of r during propagation must fall back to the base table. *)
  random_txns rng s 25;
  C.Controller.refresh_latest ctl |> ignore;
  Alcotest.(check bool) "stale mirror missed" true
    (C.Stats.aux_misses stats > 0);
  Alcotest.(check int) "stale mirror never hit" 0 (C.Stats.aux_hits stats);
  Alcotest.check relation "contents correct via fallback"
    (C.Oracle.view_at s.history s.view (C.Controller.as_of ctl))
    (C.Controller.contents ctl);
  (* Freshen the auxiliary, then change only the other base table: the
     user view's forward queries for s read r as a Base term, and with r
     quiet since the sync those probes hit the mirror. (Changing r too
     would immediately re-stale the mirror — that path is covered above.) *)
  let actl = C.Auxiliary.controller ae in
  ignore (C.Controller.refresh_latest actl);
  C.Auxiliary.sync ae;
  Alcotest.(check bool) "mirror caught up" true (C.Auxiliary.fresh reg ae);
  let misses_before = C.Stats.aux_misses stats in
  for _ = 1 to 10 do
    ignore
      (Database.run s.db (fun txn ->
           Database.insert txn ~table:"s"
             (Tuple.ints [ Prng.int rng 8; Prng.int rng 5 ])))
  done;
  ignore (C.Controller.refresh_latest ctl);
  Alcotest.(check bool) "fresh mirror hit" true (C.Stats.aux_hits stats > 0);
  Alcotest.(check int) "fresh mirror did not miss" misses_before
    (C.Stats.aux_misses stats);
  Alcotest.check relation "contents correct via substitution"
    (C.Oracle.view_at s.history s.view (C.Controller.as_of ctl))
    (C.Controller.contents ctl);
  (* The mirror itself equals the auxiliary view at its sync point. *)
  Alcotest.check relation "mirror matches oracle"
    (C.Oracle.view_at s.history (C.Auxiliary.view ae)
       (C.Auxiliary.mirror_as_of ae))
    (Table.contents (C.Auxiliary.mirror ae))

(* Auxiliaries on vs off over the same seeded update stream: bit-identical
   user-view contents at every refresh point. *)
let test_on_off_identical () =
  let drive ~auxiliary =
    let s = filtered () in
    let svc = C.Service.create ~auxiliary ~default_sla:10 s.db s.capture in
    let ctl = C.Service.register svc ~algorithm:(rolling 3) s.view in
    let rng = Prng.create ~seed:7 in
    let snaps = ref [] in
    for _ = 1 to 12 do
      random_txns rng s 4;
      ignore (C.Service.step_all svc ~budget:8);
      C.Service.refresh_all svc;
      snaps := C.Controller.contents ctl :: !snaps
    done;
    ignore (C.Controller.refresh_latest ctl);
    let final = C.Controller.contents ctl in
    Alcotest.check relation "matches oracle"
      (C.Oracle.view_at s.history s.view (C.Controller.as_of ctl))
      final;
    (C.Controller.stats ctl, List.rev (final :: !snaps))
  in
  let stats_on, on = drive ~auxiliary:true in
  let _, off = drive ~auxiliary:false in
  Alcotest.(check int) "same number of snapshots" (List.length off)
    (List.length on);
  List.iteri
    (fun i (a, b) ->
      Alcotest.check relation
        (Printf.sprintf "snapshot %d identical aux on vs off" i)
        b a)
    (List.combine on off);
  (* The drives above exercised substitution for real: the service's aux
     band freshens the auxiliary before user steps, so probes hit. *)
  Alcotest.(check bool) "substitution actually fired" true
    (C.Stats.aux_hits stats_on > 0)

(* ------------------------------------------------------------------ *)
(* Service integration: registration, dedupe, status, orphan GC        *)

let test_service_dedupe_and_gc () =
  let s = filtered () in
  let svc = C.Service.create ~auxiliary:true s.db s.capture in
  let reg =
    match C.Service.auxiliary svc with
    | Some r -> r
    | None -> Alcotest.fail "auxiliary registry missing"
  in
  ignore (C.Service.register svc ~algorithm:(rolling 3) s.view);
  let aux_names =
    List.filter
      (fun n -> String.length n >= 4 && String.sub n 0 4 = "aux_")
      (C.Service.names svc)
  in
  Alcotest.(check int) "one auxiliary entry registered" 1
    (List.length aux_names);
  let aux_name = List.hd aux_names in
  (* A sibling view with the same shape (fresh aliases) shares the same
     auxiliary instead of double-materializing. *)
  let twin = clone_view s.db s.view ~name:"rsf2" in
  ignore (C.Service.register svc ~algorithm:(rolling 3) twin);
  Alcotest.(check int) "still one auxiliary after the twin" 1
    (List.length (C.Auxiliary.entries reg));
  let ae = List.hd (C.Auxiliary.entries reg) in
  Alcotest.(check (list string)) "both views own it" [ "rsf"; "rsf2" ]
    (List.sort String.compare (C.Auxiliary.owners ae));
  (* Status surfaces the auxiliary row and the owners' probe counters. *)
  let st =
    List.find (fun (x : C.Service.status) -> x.C.Service.aux) (C.Service.status svc)
  in
  Alcotest.(check string) "status aux row" aux_name st.C.Service.name;
  (* Releasing one owner keeps the shared auxiliary alive; releasing the
     last retires it from the registry and the service. *)
  C.Service.unregister svc "rsf";
  Alcotest.(check int) "shared auxiliary survives one release" 1
    (List.length (C.Auxiliary.entries reg));
  Alcotest.(check bool) "entry still scheduled" true
    (List.mem aux_name (C.Service.names svc));
  C.Service.unregister svc "rsf2";
  Alcotest.(check int) "orphan retired from registry" 0
    (List.length (C.Auxiliary.entries reg));
  Alcotest.(check bool) "orphan retired from service" false
    (List.mem aux_name (C.Service.names svc));
  Alcotest.(check (list string)) "no entries left" [] (C.Service.names svc)

let test_mirror_gc () =
  let s = filtered () in
  let rng = Prng.create ~seed:11 in
  random_txns rng s 20;
  let reg = C.Auxiliary.create ~interval:3 s.db s.capture in
  let ctl =
    C.Controller.create s.db s.capture s.view ~algorithm:(rolling 3)
  in
  let ae = List.hd (C.Auxiliary.attach reg ctl) in
  let actl = C.Auxiliary.controller ae in
  random_txns rng s 20;
  ignore (C.Controller.refresh_latest actl);
  (* gc syncs the mirror before pruning the delta window it reads from —
     the mirror must not lose the suffix the prune reclaims. *)
  let pruned = C.Auxiliary.gc ae in
  Alcotest.(check bool) "gc reclaimed applied rows" true (pruned > 0);
  Alcotest.(check int) "mirror synced to hwm"
    (C.Controller.hwm actl)
    (C.Auxiliary.mirror_as_of ae);
  Alcotest.check relation "mirror survives gc"
    (C.Oracle.view_at s.history (C.Auxiliary.view ae)
       (C.Auxiliary.mirror_as_of ae))
    (Table.contents (C.Auxiliary.mirror ae))

let suite =
  [
    Alcotest.test_case "derivation rules" `Quick test_derive;
    Alcotest.test_case "fallback when stale, probe when fresh" `Quick
      test_fallback_when_stale;
    Alcotest.test_case "aux on vs off bit-identical" `Quick
      test_on_off_identical;
    Alcotest.test_case "service dedupe, status and orphan gc" `Quick
      test_service_dedupe_and_gc;
    Alcotest.test_case "mirror survives auxiliary gc" `Quick test_mirror_gc;
  ]
