(* Discrete-event lock simulator tests: serialization of conflicting
   transactions, concurrency of compatible ones, fairness, and the
   contention-scenario builders. *)

module Des = Roll_sim.Des
module Contention = Roll_sim.Contention
module Prng = Roll_util.Prng
module Summary = Roll_util.Summary

let txn ?(label = "t") ~arrival ~duration locks = { Des.label; arrival; duration; locks }

let x resource = { Des.resource; mode = Des.Exclusive }

let s resource = { Des.resource; mode = Des.Shared }

let stats_for result label =
  match List.assoc_opt label result.Des.classes with
  | Some st -> st
  | None -> Alcotest.failf "no class %s" label

let test_exclusive_serializes () =
  let result =
    Des.run
      [
        txn ~label:"a" ~arrival:0.0 ~duration:10.0 [ x "r" ];
        txn ~label:"b" ~arrival:1.0 ~duration:10.0 [ x "r" ];
      ]
  in
  Alcotest.(check (float 1e-9)) "makespan serial" 20.0 result.Des.makespan;
  let b = stats_for result "b" in
  Alcotest.(check (float 1e-9)) "b waited" 9.0 (Summary.mean b.Des.wait);
  Alcotest.(check (float 1e-9)) "b response" 19.0 (Summary.mean b.Des.response)

let test_shared_run_concurrently () =
  let result =
    Des.run
      [
        txn ~label:"a" ~arrival:0.0 ~duration:10.0 [ s "r" ];
        txn ~label:"b" ~arrival:1.0 ~duration:10.0 [ s "r" ];
      ]
  in
  Alcotest.(check (float 1e-9)) "overlapping" 11.0 result.Des.makespan;
  Alcotest.(check (float 1e-9)) "no wait" 0.0
    (Summary.mean (stats_for result "b").Des.wait)

let test_shared_blocks_exclusive () =
  let result =
    Des.run
      [
        txn ~label:"reader" ~arrival:0.0 ~duration:10.0 [ s "r" ];
        txn ~label:"writer" ~arrival:1.0 ~duration:2.0 [ x "r" ];
      ]
  in
  Alcotest.(check (float 1e-9)) "writer waits for reader" 9.0
    (Summary.mean (stats_for result "writer").Des.wait)

let test_disjoint_resources_parallel () =
  let result =
    Des.run
      [
        txn ~label:"a" ~arrival:0.0 ~duration:5.0 [ x "r1" ];
        txn ~label:"b" ~arrival:0.0 ~duration:5.0 [ x "r2" ];
      ]
  in
  Alcotest.(check (float 1e-9)) "parallel" 5.0 result.Des.makespan

let test_multi_lock_atomic_acquisition () =
  (* c needs both r1 and r2; a holds r1, b holds r2 with staggered ends.
     c starts only when both are free. *)
  let result =
    Des.run
      [
        txn ~label:"a" ~arrival:0.0 ~duration:4.0 [ x "r1" ];
        txn ~label:"b" ~arrival:0.0 ~duration:8.0 [ x "r2" ];
        txn ~label:"c" ~arrival:1.0 ~duration:1.0 [ x "r1"; x "r2" ];
      ]
  in
  Alcotest.(check (float 1e-9)) "c waits for the slower holder" 7.0
    (Summary.mean (stats_for result "c").Des.wait)

let test_no_overtaking_conflicting_waiter () =
  (* w1 (X) waits behind a reader; a later reader r2 conflicts with w1 and
     must not overtake it indefinitely. *)
  let result =
    Des.run
      [
        txn ~label:"r1" ~arrival:0.0 ~duration:10.0 [ s "v" ];
        txn ~label:"w" ~arrival:1.0 ~duration:1.0 [ x "v" ];
        txn ~label:"r2" ~arrival:2.0 ~duration:1.0 [ s "v" ];
      ]
  in
  (* r2 must run after w (no starvation of the writer): w at 10..11, r2 at 11..12 *)
  Alcotest.(check (float 1e-9)) "writer not starved" 9.0
    (Summary.mean (stats_for result "w").Des.wait);
  Alcotest.(check (float 1e-9)) "r2 behind writer" 9.0
    (Summary.mean (stats_for result "r2").Des.wait)

let test_nonconflicting_overtakes () =
  (* A transaction on an unrelated resource may start even while others
     wait. *)
  let result =
    Des.run
      [
        txn ~label:"hold" ~arrival:0.0 ~duration:10.0 [ x "r" ];
        txn ~label:"blocked" ~arrival:1.0 ~duration:1.0 [ x "r" ];
        txn ~label:"free" ~arrival:2.0 ~duration:1.0 [ x "elsewhere" ];
      ]
  in
  Alcotest.(check (float 1e-9)) "free runs immediately" 0.0
    (Summary.mean (stats_for result "free").Des.wait)

let test_empty_run () =
  let result = Des.run [] in
  Alcotest.(check (float 0.0)) "empty makespan" 0.0 result.Des.makespan;
  Alcotest.(check int) "no classes" 0 (List.length result.Des.classes)

(* --- Contention builders --- *)

let test_propagation_txns_built_from_footprints () =
  let footprints =
    [
      { Roll_core.Stats.exec = 1; description = "q1"; reads = [ ("r", 100) ]; emitted = 10 };
      { Roll_core.Stats.exec = 2; description = "q2"; reads = [ ("s", 50) ]; emitted = 0 };
    ]
  in
  let txns =
    Contention.propagation_txns Contention.default_costs footprints ~start:5.0
      ~spacing:2.0
  in
  Alcotest.(check int) "one txn per footprint" 2 (List.length txns);
  (match txns with
  | [ t1; t2 ] ->
      Alcotest.(check (float 1e-9)) "arrivals spaced" 5.0 t1.Des.arrival;
      Alcotest.(check (float 1e-9)) "arrivals spaced" 7.0 t2.Des.arrival;
      Alcotest.(check bool) "bigger footprint, longer txn" true
        (t1.Des.duration > t2.Des.duration);
      Alcotest.(check bool) "locks view delta exclusively" true
        (List.exists
           (fun (l : Des.request) -> l.resource = "delta:view" && l.mode = Des.Exclusive)
           t1.Des.locks)
  | _ -> assert false);
  let mono =
    Contention.monolithic_refresh Contention.default_costs footprints ~start:0.0
      ~tables:[ "r"; "s" ]
  in
  let total = List.fold_left (fun acc t -> acc +. t.Des.duration) 0.0 txns in
  Alcotest.(check bool) "monolith as long as the sum (minus per-txn base)" true
    (mono.Des.duration > total -. (2.0 *. Contention.default_costs.Contention.base_cost) -. 1e-9)

let test_poisson_streams () =
  let rng = Prng.create ~seed:7 in
  let updates =
    Contention.update_stream rng ~tables:[ "r"; "s" ] ~rate:10.0 ~until:100.0
      ~mean_duration:0.01
  in
  Alcotest.(check bool) "roughly rate*until arrivals" true
    (List.length updates > 700 && List.length updates < 1300);
  List.iter
    (fun (t : Des.txn_spec) ->
      if t.arrival < 0.0 || t.arrival >= 100.0 then Alcotest.fail "arrival out of range";
      if t.duration <= 0.0 then Alcotest.fail "non-positive duration")
    updates;
  let readers =
    Contention.reader_stream rng ~resource:"view" ~rate:5.0 ~until:50.0
      ~mean_duration:0.1
  in
  List.iter
    (fun (t : Des.txn_spec) ->
      match t.locks with
      | [ { Des.resource = "view"; mode = Des.Shared } ] -> ()
      | _ -> Alcotest.fail "reader locks")
    readers

(* The headline contention shape: one monolithic refresh blocks updaters for
   a long time; the same work as many small transactions interleaves. *)
let test_small_txns_reduce_update_waits () =
  let footprints =
    List.init 50 (fun i ->
        { Roll_core.Stats.exec = i; description = "q"; reads = [ ("r", 2000) ]; emitted = 100 })
  in
  let model = Contention.default_costs in
  let updates rng_seed =
    Contention.update_stream (Prng.create ~seed:rng_seed) ~tables:[ "r" ]
      ~rate:20.0 ~until:15.0 ~mean_duration:0.005
  in
  let monolithic =
    Des.run
      (Contention.monolithic_refresh model footprints ~start:1.0 ~tables:[ "r" ]
      :: updates 1)
  in
  let rolling =
    Des.run
      (Contention.propagation_txns model footprints ~start:1.0 ~spacing:0.25
      @ updates 1)
  in
  let wait r = Summary.max_value (stats_for r "update").Des.wait in
  Alcotest.(check bool)
    (Printf.sprintf "monolithic max wait (%.3f) > rolling (%.3f)"
       (wait monolithic) (wait rolling))
    true
    (wait monolithic > wait rolling)

let suite =
  [
    Alcotest.test_case "exclusive serializes" `Quick test_exclusive_serializes;
    Alcotest.test_case "shared runs concurrently" `Quick test_shared_run_concurrently;
    Alcotest.test_case "shared blocks exclusive" `Quick test_shared_blocks_exclusive;
    Alcotest.test_case "disjoint resources parallel" `Quick test_disjoint_resources_parallel;
    Alcotest.test_case "multi-lock atomic acquisition" `Quick
      test_multi_lock_atomic_acquisition;
    Alcotest.test_case "writer not starved" `Quick test_no_overtaking_conflicting_waiter;
    Alcotest.test_case "non-conflicting overtakes" `Quick test_nonconflicting_overtakes;
    Alcotest.test_case "empty run" `Quick test_empty_run;
    Alcotest.test_case "footprint-driven txns" `Quick
      test_propagation_txns_built_from_footprints;
    Alcotest.test_case "poisson streams" `Quick test_poisson_streams;
    Alcotest.test_case "small txns reduce waits" `Quick
      test_small_txns_reduce_update_waits;
  ]

(* Who-blocks-whom under parallel waves: items with disjoint windows over
   distinct views share no exclusive resource, so the model predicts zero
   mutual blocking — a wave's makespan is its slowest item, not the sum. *)
let wave_fp table : Roll_core.Stats.footprint =
  {
    exec = 0;
    description = "wave step";
    reads = [ (table, 100); ("delta:" ^ table, 10) ];
    emitted = 5;
  }

let test_wave_items_never_block_each_other () =
  let items = [ ("v_a", wave_fp "a"); ("v_b", wave_fp "b"); ("v_c", wave_fp "c") ] in
  let txns = Contention.wave_txns Contention.default_costs items ~start:0.0 in
  let result = Des.run ~validate:true txns in
  List.iter
    (fun (view, _) ->
      Alcotest.(check (float 1e-9))
        (view ^ " never waits") 0.0
        (Summary.mean (stats_for result ("wave:" ^ view)).Des.wait))
    items;
  let item_duration = (List.hd txns).Des.duration in
  Alcotest.(check (float 1e-9)) "makespan is one item, not three"
    item_duration result.Des.makespan

(* The single-writer apply is the only maintenance transaction that can
   block a wave item — and it blocks exactly the item maintaining the same
   view (apply reads that view's delta while the step writes it). An
   updater blocks exactly the items reading the table it writes. *)
let test_wave_single_writer_and_updater_block () =
  let items = [ ("v_a", wave_fp "a"); ("v_b", wave_fp "b"); ("v_c", wave_fp "c") ] in
  let wave = Contention.wave_txns Contention.default_costs items ~start:0.01 in
  let apply =
    txn ~label:"apply" ~arrival:0.0 ~duration:0.05
      [ x "v_a"; s "delta:v_a" ]
  in
  let updater =
    txn ~label:"update" ~arrival:0.0 ~duration:0.02 [ x "b"; x "delta:b" ]
  in
  let result = Des.run ~validate:true (apply :: updater :: wave) in
  let wait view = Summary.mean (stats_for result ("wave:" ^ view)).Des.wait in
  Alcotest.(check (float 1e-9)) "same-view item waits out the apply" 0.04
    (wait "v_a");
  Alcotest.(check (float 1e-9)) "same-table item waits out the updater" 0.01
    (wait "v_b");
  Alcotest.(check (float 1e-9)) "disjoint item never waits" 0.0 (wait "v_c")

(* The simulator validates itself: conflicting intervals never overlap,
   even on large random workloads. *)
let test_validated_random_workload () =
  let rng = Prng.create ~seed:9 in
  let txns =
    Contention.update_stream rng ~tables:[ "a"; "b"; "c" ] ~rate:60.0
      ~until:20.0 ~mean_duration:0.02
    @ Contention.reader_stream rng ~resource:"a" ~rate:30.0 ~until:20.0
        ~mean_duration:0.05
  in
  let result = Des.run ~validate:true txns in
  Alcotest.(check bool) "ran to completion" true (result.Des.makespan > 0.0);
  (* Percentiles are available on validated runs. *)
  match List.assoc_opt "update" result.Des.classes with
  | Some st ->
      let p95 = Summary.percentile st.Des.wait 0.95 in
      Alcotest.(check bool) "p95 >= mean-ish sanity" true
        (p95 >= 0.0 && p95 >= Summary.mean st.Des.wait -. 1e-9)
  | None -> Alcotest.fail "no update class"

(* Readsim, the rolld serving-path fluid model: below drain capacity the
   hwm lag is bounded and reads barely wait; past capacity the lag grows
   and recent-target reads wait for the drain — the BENCH_serve knee. *)
let test_readsim_knee () =
  let module R = Roll_sim.Readsim in
  let base = { R.default_config with R.duration = 20.0; clients = 500 } in
  (* capacity = drain_rate * step_commits = 250 commits/s *)
  let below = R.run { base with R.update_rate = 100.0 } in
  let above = R.run { base with R.update_rate = 600.0 } in
  Alcotest.(check bool) "below capacity: not saturated" false below.R.saturated;
  Alcotest.(check bool) "above capacity: saturated" true above.R.saturated;
  Alcotest.(check bool) "reads happened in both regimes" true
    (below.R.reads > 0 && above.R.reads > 0);
  Alcotest.(check bool) "bounded lag below capacity" true
    (below.R.lag_mean < 10.0);
  Alcotest.(check bool) "lag grows past capacity" true
    (above.R.lag_mean > 10.0 *. below.R.lag_mean);
  Alcotest.(check bool) "waits jump at the knee" true
    (above.R.wait_p95 > 10.0 *. Float.max below.R.wait_p95 0.001);
  Alcotest.(check bool) "staleness grows past capacity" true
    (above.R.staleness_p95 > below.R.staleness_p95);
  Alcotest.(check bool) "queued readers only when behind" true
    (above.R.queued > below.R.queued)

let test_readsim_validation () =
  let module R = Roll_sim.Readsim in
  Alcotest.check_raises "non-positive dt rejected"
    (Invalid_argument "Readsim.run: non-positive duration or dt") (fun () ->
      ignore (R.run { R.default_config with R.dt = 0.0 }))

let suite =
  suite
  @ [
      Alcotest.test_case "wave items never block each other" `Quick
        test_wave_items_never_block_each_other;
      Alcotest.test_case "single-writer apply and updaters block waves" `Quick
        test_wave_single_writer_and_updater_block;
      Alcotest.test_case "self-validation on random workload" `Quick
        test_validated_random_workload;
      Alcotest.test_case "readsim: the serving knee" `Quick test_readsim_knee;
      Alcotest.test_case "readsim: config validation" `Quick
        test_readsim_validation;
    ]
