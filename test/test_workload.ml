(* Workload-generator tests: the star and chain generators must produce
   internally consistent databases (live sets match tables, views stay
   maintainable, deltas capture everything). *)

open Roll_relation
module Time = Roll_delta.Time
module Database = Roll_storage.Database
module Table = Roll_storage.Table
module C = Roll_core
module Star = Roll_workload.Star
module Chain = Roll_workload.Chain
module Live_set = Roll_workload.Live_set
module Prng = Roll_util.Prng

let test_live_set () =
  let ls = Live_set.create () in
  let rng = Prng.create ~seed:1 in
  Alcotest.(check bool) "empty" true (Live_set.is_empty ls);
  Alcotest.(check bool) "take empty" true (Live_set.take ls rng = None);
  Live_set.add ls (Tuple.ints [ 1 ]);
  Live_set.add ls (Tuple.ints [ 1 ]);
  Live_set.add ls (Tuple.ints [ 2 ]);
  Alcotest.(check int) "multiset size" 3 (Live_set.size ls);
  let taken = List.init 3 (fun _ -> Option.get (Live_set.take ls rng)) in
  Alcotest.(check int) "drained" 0 (Live_set.size ls);
  let ones = List.length (List.filter (fun t -> Tuple.equal t (Tuple.ints [ 1 ])) taken) in
  Alcotest.(check int) "both copies came out" 2 ones

let test_star_initial_load () =
  let star = Star.create { Star.default_config with fact_initial = 250; dim_size = 40 } in
  Star.load_initial star;
  let db = Star.db star in
  Alcotest.(check int) "fact rows" 250
    (Table.cardinality (Database.table db (Star.fact_table star)));
  Alcotest.(check int) "dim rows" 40
    (Table.cardinality (Database.table db (Star.dim_table star 0)));
  (* Batched load: several commits, not one. *)
  Alcotest.(check bool) "several commits" true (Database.now db > 2)

let test_star_churn_consistency () =
  let star = Star.create { Star.default_config with fact_initial = 100 } in
  Star.load_initial star;
  Star.mixed_txns star ~n:200 ~dim_fraction:0.1;
  let db = Star.db star in
  (* Every fact row references an existing dimension key. *)
  let dim0 = Table.contents (Database.table db (Star.dim_table star 0)) in
  let fact = Table.contents (Database.table db (Star.fact_table star)) in
  Relation.iter
    (fun tuple _ ->
      let key = Tuple.get tuple 0 in
      let found = ref false in
      Relation.iter (fun d _ -> if Value.equal (Tuple.get d 0) key then found := true) dim0;
      if not !found then Alcotest.fail "dangling dimension key")
    fact;
  (* Capture has seen every commit once advanced. *)
  Roll_capture.Capture.advance (Star.capture star);
  Alcotest.(check int) "capture caught up" 0 (Roll_capture.Capture.lag (Star.capture star))

let test_star_view_maintainable () =
  let star = Star.create { Star.default_config with fact_initial = 120; dim_size = 30 } in
  Star.load_initial star;
  Star.mixed_txns star ~n:80 ~dim_fraction:0.1;
  let controller =
    C.Controller.create (Star.db star) (Star.capture star) (Star.view star)
      ~algorithm:(C.Controller.Rolling (C.Rolling.per_relation [| 8; 60; 60 |]))
  in
  Star.mixed_txns star ~n:80 ~dim_fraction:0.1;
  let t = C.Controller.refresh_latest controller in
  let expected = C.Oracle.view_at (Star.history star) (Star.view star) t in
  Alcotest.(check bool) "star view = oracle" true
    (Relation.equal expected (C.Controller.contents controller));
  Alcotest.(check bool) "view is non-trivial" true
    (Relation.distinct_count expected > 10)

let test_star_dimension_updates_reach_view () =
  let star =
    Star.create { Star.default_config with fact_initial = 50; n_dimensions = 1 }
  in
  Star.load_initial star;
  let controller =
    C.Controller.create (Star.db star) (Star.capture star) (Star.view star)
      ~algorithm:(C.Controller.Uniform 10)
  in
  let before = Relation.copy (C.Controller.contents controller) in
  Star.dim_txn star;
  ignore (C.Controller.refresh_latest controller);
  (* A dimension attribute changed: with 50 zipf-keyed facts over 100 keys,
     the updated key is usually referenced; at minimum the view must still
     match the oracle. *)
  let t = C.Controller.as_of controller in
  Alcotest.(check bool) "view = oracle after dim update" true
    (Relation.equal
       (C.Oracle.view_at (Star.history star) (Star.view star) t)
       (C.Controller.contents controller));
  ignore before

let test_chain_workload () =
  let chain = Chain.create { Chain.default_config with initial_orders = 80 } in
  Chain.load_initial chain;
  Chain.run chain ~n:60;
  let controller =
    C.Controller.create (Chain.db chain) (Chain.capture chain) (Chain.view chain)
      ~algorithm:(C.Controller.Rolling (C.Rolling.per_relation [| 50; 5; 5 |]))
  in
  Chain.run chain ~n:60;
  let t = C.Controller.refresh_latest controller in
  let expected = C.Oracle.view_at (Chain.history chain) (Chain.view chain) t in
  Alcotest.(check bool) "chain view = oracle" true
    (Relation.equal expected (C.Controller.contents controller));
  (* The view filter (total > min_total) must actually filter. *)
  Relation.iter
    (fun tuple _ ->
      match Tuple.get tuple 2 with
      | Value.Int total ->
          if total <= Chain.default_config.Chain.min_total then
            Alcotest.fail "filter violated"
      | _ -> Alcotest.fail "bad total column")
    expected

let test_chain_cancellation_removes_lines () =
  let chain = Chain.create { Chain.default_config with initial_orders = 10 } in
  Chain.load_initial chain;
  let db = Chain.db chain in
  let orders0 = Table.cardinality (Database.table db "orders") in
  Chain.run chain ~n:100;
  let orders1 = Table.cardinality (Database.table db "orders") in
  Alcotest.(check bool) "order count evolves" true (orders0 <> orders1);
  (* No dangling line items: every lineitem okey exists in orders. *)
  let orders = Table.contents (Database.table db "orders") in
  let lines = Table.contents (Database.table db "lineitem") in
  Relation.iter
    (fun line _ ->
      let okey = Tuple.get line 0 in
      let found = ref false in
      Relation.iter
        (fun o _ -> if Value.equal (Tuple.get o 0) okey then found := true)
        orders;
      if not !found then Alcotest.fail "dangling line item")
    lines

(* The skew knob is honest: the empirical rank-frequency curve of
   [Zipf.sample] is log-log linear with slope ≈ -theta, so a workload
   configured with [zipf_theta] actually exercises that degree of skew.
   Least-squares fit over the ten most popular ranks (large counts, so
   sampling noise stays well inside the tolerance at 50k draws). *)
let test_zipf_rank_frequency_slope () =
  let module Zipf = Roll_util.Zipf in
  let fitted_slope theta =
    let n = 50 and draws = 50_000 and ranks = 10 in
    let rng = Prng.create ~seed:42 in
    let z = Zipf.create ~n ~theta in
    let counts = Array.make n 0 in
    for _ = 1 to draws do
      let k = Zipf.sample z rng in
      counts.(k) <- counts.(k) + 1
    done;
    (* Popularity must decrease with rank before we fit anything. *)
    for k = 0 to ranks - 2 do
      if counts.(k) < counts.(k + 1) - (draws / 100) then
        Alcotest.failf "theta %g: rank %d (%d) below rank %d (%d)" theta k
          counts.(k) (k + 1)
          counts.(k + 1)
    done;
    let xs = Array.init ranks (fun k -> log (float_of_int (k + 1))) in
    let ys = Array.init ranks (fun k -> log (float_of_int counts.(k))) in
    let mean a = Array.fold_left ( +. ) 0.0 a /. float_of_int ranks in
    let mx = mean xs and my = mean ys in
    let num = ref 0.0 and den = ref 0.0 in
    for k = 0 to ranks - 1 do
      num := !num +. ((xs.(k) -. mx) *. (ys.(k) -. my));
      den := !den +. ((xs.(k) -. mx) *. (xs.(k) -. mx))
    done;
    !num /. !den
  in
  List.iter
    (fun theta ->
      let slope = fitted_slope theta in
      if Float.abs (slope +. theta) > 0.15 then
        Alcotest.failf "theta %g: fitted rank-frequency slope %g" theta slope)
    [ 0.5; 1.0; 1.5 ]

let suite =
  [
    Alcotest.test_case "live set" `Quick test_live_set;
    Alcotest.test_case "star initial load" `Quick test_star_initial_load;
    Alcotest.test_case "star churn consistency" `Quick test_star_churn_consistency;
    Alcotest.test_case "star view maintainable" `Quick test_star_view_maintainable;
    Alcotest.test_case "star dimension updates reach view" `Quick
      test_star_dimension_updates_reach_view;
    Alcotest.test_case "chain workload" `Quick test_chain_workload;
    Alcotest.test_case "chain cancellations" `Quick test_chain_cancellation_removes_lines;
    Alcotest.test_case "zipf rank-frequency slope tracks theta" `Quick
      test_zipf_rank_frequency_slope;
  ]
