(* The paged store, bottom-up: pager pages and meta snapshots, block-cache
   residency and write-back, the page-addressed B-tree against a model,
   segmented WAL rotation/torn tails/reclaim, and finally whole-database
   crash recovery at every storage fault point plus the service-level
   segment GC. Everything runs against explicit temp files/dirs, so the
   suite is independent of ROLL_STORE. *)

open Test_support.Helpers
module Fault = Roll_util.Fault
module Relation = Roll_relation.Relation
module Tuple = Roll_relation.Tuple
module Schema = Roll_relation.Schema
module Predicate = Roll_relation.Predicate
module Pager = Roll_storage.Pager
module Block_cache = Roll_storage.Block_cache
module Paged_btree = Roll_storage.Paged_btree
module Wal_store = Roll_storage.Wal_store
module Store = Roll_storage.Store
module Wal = Roll_storage.Wal

let tmp_path suffix =
  let path = Filename.temp_file "rolltest" suffix in
  Sys.remove path;
  path

let rec remove_tree path =
  match Sys.is_directory path with
  | true ->
      Array.iter
        (fun name -> remove_tree (Filename.concat path name))
        (Sys.readdir path);
      Sys.rmdir path
  | false -> Sys.remove path
  | exception Sys_error _ -> ()

let with_dir f =
  let dir = tmp_path ".db" in
  Fun.protect ~finally:(fun () -> remove_tree dir) (fun () -> f dir)

let with_file f =
  let path = tmp_path ".pages" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () -> f path)

let corrupt_byte path ~off =
  let fd = Unix.openfile path [ Unix.O_RDWR ] 0 in
  ignore (Unix.lseek fd off Unix.SEEK_SET);
  ignore (Unix.write fd (Bytes.of_string "?") 0 1);
  Unix.close fd

(* --- pager --- *)

let test_pager_round_trip () =
  with_file @@ fun path ->
  let p = Pager.create ~page_size:512 path in
  let a = Pager.alloc p and b = Pager.alloc p in
  Pager.write p a (Bytes.of_string "alpha");
  Pager.write p b (Bytes.of_string (String.make 400 'b'));
  Pager.barrier p ~data_csn:7 ~catalog:"cat v1";
  Pager.close p;
  let p2 = Pager.create ~page_size:512 path in
  Alcotest.(check int) "data_csn survives" 7 (Pager.data_csn p2);
  Alcotest.(check string) "catalog survives" "cat v1" (Pager.catalog p2);
  Alcotest.(check string) "page a survives" "alpha"
    (Bytes.to_string (Pager.read p2 a));
  Alcotest.(check string) "page b survives" (String.make 400 'b')
    (Bytes.to_string (Pager.read p2 b));
  (* A freed durable page waits on [pending_free] until the next barrier
     commits a snapshot that no longer references it. *)
  Pager.free p2 a;
  Alcotest.(check int) "pending free counted" 1 (Pager.free_count p2);
  let c = Pager.alloc p2 in
  Alcotest.(check bool) "alloc extends rather than reuse pending" true (c <> a);
  Pager.barrier p2 ~data_csn:8 ~catalog:"cat v2";
  let d = Pager.alloc p2 in
  Alcotest.(check int) "freed page reused after the barrier" a d;
  (* A fresh page never made durable recycles immediately. *)
  Pager.free p2 d;
  Alcotest.(check int) "fresh page recycles without a barrier" d
    (Pager.alloc p2);
  Pager.close p2

let test_pager_corruption_and_meta_fallback () =
  with_file @@ fun path ->
  let p = Pager.create ~page_size:512 path in
  let a = Pager.alloc p in
  Pager.write p a (Bytes.of_string "payload");
  Pager.barrier p ~data_csn:1 ~catalog:"epoch one";
  (* epoch 2 lands in the alternate meta slot (slot 0). *)
  Pager.barrier p ~data_csn:2 ~catalog:"epoch two";
  Pager.close p;
  (* Flip one payload byte of page [a]: the CRC must catch it. *)
  corrupt_byte path ~off:((a * 512) + 8);
  let p2 = Pager.create ~page_size:512 path in
  Alcotest.check_raises "corrupt page detected"
    (Pager.Corrupt (Printf.sprintf "page %d: CRC mismatch" a)) (fun () ->
      ignore (Pager.read p2 a));
  Pager.close p2;
  (* Tear the newer meta slot (epoch 2 lives in page 0): reopen falls
     back to epoch one — crash-during-meta-flip semantics. *)
  corrupt_byte path ~off:8;
  let p3 = Pager.create ~page_size:512 path in
  Alcotest.(check string) "older snapshot wins over a torn meta" "epoch one"
    (Pager.catalog p3);
  Alcotest.(check int) "and its csn" 1 (Pager.data_csn p3);
  Pager.close p3

(* --- block cache --- *)

let test_block_cache () =
  with_file @@ fun path ->
  let p = Pager.create ~page_size:512 path in
  let cache = Block_cache.create ~capacity:4 p in
  let pages =
    List.init 10 (fun i ->
        let id = Pager.alloc p in
        Block_cache.write cache id
          (Bytes.of_string (Printf.sprintf "page-%d" i));
        (id, Printf.sprintf "page-%d" i))
  in
  Alcotest.(check bool) "residency capped" true
    (Block_cache.resident cache <= 4);
  Alcotest.(check bool) "evictions happened" true
    (Block_cache.evictions cache > 0);
  Alcotest.(check bool) "dirty evictions wrote back" true
    (Block_cache.writebacks cache > 0);
  (* Every page is readable through the cache, evicted or not. *)
  List.iter
    (fun (id, expect) ->
      Alcotest.(check string) "cached read" expect
        (Bytes.to_string (Block_cache.read cache id)))
    pages;
  Block_cache.flush cache;
  Alcotest.(check int) "flush leaves nothing dirty" 0
    (Block_cache.dirty_count cache);
  Pager.barrier p ~data_csn:1 ~catalog:"";
  Pager.close p;
  (* Everything is readable straight off the pager after the barrier. *)
  let p2 = Pager.create ~page_size:512 path in
  List.iter
    (fun (id, expect) ->
      Alcotest.(check string) "durable read" expect
        (Bytes.to_string (Pager.read p2 id)))
    pages;
  Pager.close p2;
  (* The CLOCK policy also bounds residency and serves the same bytes. *)
  let p3 = Pager.create ~page_size:512 path in
  let clock = Block_cache.create ~policy:Block_cache.Clock ~capacity:3 p3 in
  List.iter
    (fun (id, expect) ->
      Alcotest.(check string) "clock read" expect
        (Bytes.to_string (Block_cache.read clock id)))
    (pages @ List.rev pages);
  Alcotest.(check bool) "clock residency capped" true
    (Block_cache.resident clock <= 3);
  Alcotest.(check bool) "clock saw hits" true (Block_cache.hits clock > 0);
  Pager.close p3

(* --- paged B-tree vs. a model --- *)

let tuple_of i = Tuple.ints [ i mod 23; i ]

let test_paged_btree_model () =
  with_file @@ fun path ->
  let pager = Pager.create ~page_size:512 path in
  (* A tiny cache, so splits constantly spill through eviction. *)
  let cache = Block_cache.create ~capacity:8 pager in
  let ctx = Paged_btree.make_ctx pager cache in
  let tree = Paged_btree.create ctx in
  let model : (Tuple.t, int) Hashtbl.t = Hashtbl.create 64 in
  let model_count key =
    match Hashtbl.find_opt model key with Some n -> n | None -> 0
  in
  let rng = Prng.create ~seed:42 in
  for step = 1 to 2_000 do
    let key = tuple_of (Prng.int rng 400) in
    let current = model_count key in
    let delta =
      if current > 0 && Prng.chance rng 0.4 then -(1 + Prng.int rng current)
      else 1 + Prng.int rng 3
    in
    let prev = Paged_btree.add tree key delta in
    Alcotest.(check int) "add returns the previous count" current prev;
    let next = current + delta in
    if next = 0 then Hashtbl.remove model key
    else Hashtbl.replace model key next;
    if step mod 500 = 0 then Paged_btree.check_invariants tree
  done;
  let expected =
    Hashtbl.fold (fun k n acc -> (k, n) :: acc) model []
    |> List.sort (fun (a, _) (b, _) -> Tuple.compare a b)
  in
  let actual = List.of_seq (Paged_btree.seq tree) in
  Alcotest.(check int) "same cardinality" (List.length expected)
    (List.length actual);
  List.iter2
    (fun (ek, en) (k, n) ->
      Alcotest.check tuple "keys in order" ek k;
      Alcotest.(check int) "counts agree" en n)
    expected actual;
  (* seq_from starts at the first key >= the probe. *)
  let mid = tuple_of 200 in
  let expected_mid =
    List.filter (fun (k, _) -> Tuple.compare k mid >= 0) expected
  in
  Alcotest.(check int) "seq_from length" (List.length expected_mid)
    (List.length (List.of_seq (Paged_btree.seq_from tree mid)));
  (* Point lookups. *)
  List.iter
    (fun (k, n) -> Alcotest.(check int) "get" n (Paged_btree.get tree k))
    expected;
  Alcotest.(check int) "absent key" 0 (Paged_btree.get tree (tuple_of 401));
  (* Reachable tree pages plus the free lists account for every data page:
     COW never leaks a page. *)
  let live = List.length (Paged_btree.reachable tree) in
  Alcotest.(check int) "reachable + free covers the file"
    (Pager.n_pages pager - 2)
    (live + Pager.free_count pager);
  Paged_btree.clear tree;
  Alcotest.(check bool) "clear empties" true (Paged_btree.is_empty tree);
  Pager.close pager

(* --- segmented WAL --- *)

let mk_record csn =
  {
    Wal.csn;
    txn_id = csn;
    wall = float_of_int csn;
    changes =
      [ { Wal.table = "r"; tuple = Tuple.ints [ csn; csn * 2 ]; count = 1 } ];
    marker = None;
  }

let csns (recovery : Wal_store.recovery) =
  List.map (fun (r : Wal.record) -> r.Wal.csn) recovery.Wal_store.records

let test_wal_store_rotation_and_recovery () =
  with_dir @@ fun dir ->
  let r = Wal_store.open_dir ~segment_records:4 dir in
  let store = r.Wal_store.store in
  for csn = 1 to 10 do
    Wal_store.append store (mk_record csn)
  done;
  Wal_store.sync store;
  Alcotest.(check int) "10 records, 4 per segment: 3 live" 3
    (Wal_store.live_segments store);
  (* Reopen: ordered replay across segments. *)
  let r2 = Wal_store.open_dir ~segment_records:4 dir in
  Alcotest.(check (list int)) "all records, in order"
    (List.init 10 (fun i -> i + 1))
    (csns r2);
  Alcotest.(check bool) "no torn tail" true (r2.Wal_store.torn = None);
  (* A torn tail in the active segment: record body, no terminator. *)
  let active, _, _ =
    List.hd (List.rev (Wal_store.segments r2.Wal_store.store))
  in
  let oc = open_out_gen [ Open_append ] 0o644 (Filename.concat dir active) in
  output_string oc "R 11 11 0x1.6p+3\nC \"r\" 1 2\n";
  close_out oc;
  let r3 = Wal_store.open_dir ~segment_records:4 dir in
  Alcotest.(check (list int)) "torn record dropped"
    (List.init 10 (fun i -> i + 1))
    (csns r3);
  Alcotest.(check bool) "torn tail reported" true (r3.Wal_store.torn <> None);
  (* A deleted manifest is survivable: the directory scan is authoritative. *)
  Sys.remove (Filename.concat dir "MANIFEST");
  let r4 = Wal_store.open_dir ~segment_records:4 dir in
  Alcotest.(check int) "segments adopted from the scan" 10
    (List.length r4.Wal_store.records);
  (* A hole in the middle is corruption, not a torn tail. *)
  let first_seg, _, _ = List.hd (Wal_store.segments r4.Wal_store.store) in
  Sys.remove (Filename.concat dir first_seg);
  Alcotest.(check bool) "missing middle segment refuses to load" true
    (match Wal_store.open_dir ~segment_records:4 dir with
    | exception Wal_store.Corrupt _ -> true
    | _ -> false)

let test_wal_store_reclaim () =
  with_dir @@ fun dir ->
  let r = Wal_store.open_dir ~segment_records:4 dir in
  let store = r.Wal_store.store in
  for csn = 1 to 10 do
    Wal_store.append store (mk_record csn)
  done;
  (* Only segments entirely below the cut go: [1-4] for upto=7 (segment
     [5-8] still holds csn 8), then [5-8] once upto reaches 8. *)
  Alcotest.(check int) "upto=7 deletes one segment" 1
    (Wal_store.reclaim store ~upto:7);
  Alcotest.(check int) "upto=8 deletes the second" 1
    (Wal_store.reclaim store ~upto:8);
  Alcotest.(check int) "only the active segment lives" 1
    (Wal_store.live_segments store);
  Alcotest.(check (pair int int)) "reclaim ledger" (2, 8)
    (Wal_store.reclaimed store);
  (* Reopen: the ledger survives, replay starts after the cut. *)
  let r2 = Wal_store.open_dir ~segment_records:4 dir in
  Alcotest.(check (list int)) "only the tail remains" [ 9; 10 ] (csns r2);
  Alcotest.(check (pair int int)) "ledger survives reopen" (2, 8)
    (Wal_store.reclaimed r2.Wal_store.store)

(* Both reclaim crash windows: before the manifest commit nothing is
   reclaimed yet and replay is total; after the commit but before the
   unlinks, stale segments overlap the ledger and recovery must skip
   and delete them rather than report a CSN gap. *)
let test_wal_store_reclaim_crash_windows () =
  let filled dir =
    let r = Wal_store.open_dir ~segment_records:4 dir in
    let store = r.Wal_store.store in
    for csn = 1 to 10 do
      Wal_store.append store (mk_record csn)
    done;
    store
  in
  with_dir (fun dir ->
      let store = filled dir in
      (try
         ignore
           (Wal_store.reclaim
              ~fault:(Fault.crash_at "walseg.manifest" ~hit:1)
              store ~upto:8)
       with Fault.Crash _ -> ());
      let r2 = Wal_store.open_dir ~segment_records:4 dir in
      Alcotest.(check (list int)) "crash before manifest commit loses nothing"
        (List.init 10 (fun i -> i + 1))
        (csns r2);
      Alcotest.(check (pair int int)) "ledger untouched" (0, 0)
        (Wal_store.reclaimed r2.Wal_store.store));
  with_dir (fun dir ->
      let store = filled dir in
      (try
         ignore
           (Wal_store.reclaim
              ~fault:(Fault.crash_at "walseg.reclaim" ~hit:1)
              store ~upto:8)
       with Fault.Crash _ -> ());
      let r2 = Wal_store.open_dir ~segment_records:4 dir in
      Alcotest.(check (list int)) "stale segments skipped" [ 9; 10 ] (csns r2);
      Alcotest.(check (pair int int)) "ledger survived the crash" (2, 8)
        (Wal_store.reclaimed r2.Wal_store.store);
      let wal_files =
        Sys.readdir dir |> Array.to_list
        |> List.filter (fun n -> Wal_store.segment_number n <> None)
      in
      Alcotest.(check int) "stale segment files deleted" 1
        (List.length wal_files))

(* --- whole-database crash recovery on the paged store --- *)

let r_schema = Schema.make [ int_col "k"; int_col "v" ]

let disk_db dir =
  let db = Database.create ~mode:Store.Disk ~dir () in
  let _ = Database.create_table db ~name:"r" r_schema in
  db

(* Deterministic little history: txn [i] inserts (i mod 5, i) and every
   third txn also deletes the row from two txns ago. *)
let commit_txn db i =
  Database.run db (fun txn ->
      Database.insert txn ~table:"r" (Tuple.ints [ i mod 5; i ]);
      if i mod 3 = 0 && i > 2 then
        Database.delete txn ~table:"r" (Tuple.ints [ (i - 2) mod 5; i - 2 ]))

let expected_relation upto =
  let r = Relation.create r_schema in
  for i = 1 to upto do
    Relation.add r (Tuple.ints [ i mod 5; i ]) 1;
    if i mod 3 = 0 && i > 2 then
      Relation.add r (Tuple.ints [ (i - 2) mod 5; i - 2 ]) (-1)
  done;
  r

let crash_then_recover ~point ~hit =
  with_dir @@ fun dir ->
  Unix.putenv "ROLL_SEGMENT_RECORDS" "4";
  Fun.protect ~finally:(fun () -> Unix.putenv "ROLL_SEGMENT_RECORDS" "")
  @@ fun () ->
  let db = disk_db dir in
  Database.set_storage_fault db (Fault.crash_at point ~hit);
  let committed = ref 0 in
  let crashed = ref false in
  (try
     for i = 1 to 40 do
       ignore (commit_txn db i);
       committed := i;
       (* Periodic flush barriers move data_csn, so recovery exercises
          both the below-snapshot and above-snapshot replay paths — and
          they are the only reach of the sync/write-back fault points. *)
       if i mod 10 = 0 then Database.sync db
     done
   with Fault.Crash _ -> crashed := true);
  Alcotest.(check bool)
    (Printf.sprintf "%s#%d fired within 40 txns" point hit)
    true !crashed;
  (* The crashed process is abandoned; reopen the directory cold. *)
  let db2 = disk_db dir in
  Alcotest.(check bool) "recovery pending on reopen" true
    (Database.has_pending_recovery db2);
  Database.recover_pending db2;
  (* Durable-first append: the recovered log is exactly the commits that
     returned before the crash. *)
  Alcotest.(check int)
    (Printf.sprintf "crash at %s: durable history = committed prefix" point)
    !committed (Database.now db2);
  Alcotest.check relation
    (Printf.sprintf "crash at %s: recovered contents" point)
    (expected_relation !committed)
    (Table.contents (Database.table db2 "r"));
  (* The recovered database keeps working and stays durable. *)
  for i = !committed + 1 to !committed + 4 do
    ignore (commit_txn db2 i)
  done;
  Database.sync db2;
  let db3 = disk_db dir in
  Database.recover_pending db3;
  Alcotest.check relation "round two: recovered after more commits"
    (expected_relation (!committed + 4))
    (Table.contents (Database.table db3 "r"))

let test_crash_recovery_all_points () =
  (* walseg.record/terminator crash mid-append (the latter leaves a torn
     tail); walseg.rotate and walseg.manifest crash the segment-rotation
     boundary; walseg.sync dies at the WAL fsync; cache.writeback dies
     between dirty-page write-back and the meta flip. *)
  List.iter
    (fun (point, hit) -> crash_then_recover ~point ~hit)
    [
      ("walseg.record", 3);
      ("walseg.terminator", 5);
      ("walseg.rotate", 2);
      ("walseg.manifest", 3);
      ("walseg.sync", 1);
      ("cache.writeback", 1);
    ]

let test_torn_tail_reported () =
  with_dir @@ fun dir ->
  let db = disk_db dir in
  Database.set_storage_fault db (Fault.crash_at "walseg.terminator" ~hit:4);
  (try
     for i = 1 to 10 do
       ignore (commit_txn db i)
     done
   with Fault.Crash _ -> ());
  let db2 = disk_db dir in
  Alcotest.(check bool) "torn tail surfaced to the reopened database" true
    (Database.recovery_torn db2 <> None);
  Database.recover_pending db2;
  Alcotest.check relation "torn record dropped, prefix intact"
    (expected_relation 3)
    (Table.contents (Database.table db2 "r"))

(* A crash inside [reclaim_wal]'s post-manifest window, through the
   whole database stack: the reopened store must tolerate the stale
   segments and replay the surviving history. *)
let test_db_reclaim_crash_recovers () =
  with_dir @@ fun dir ->
  Unix.putenv "ROLL_SEGMENT_RECORDS" "4";
  Fun.protect ~finally:(fun () -> Unix.putenv "ROLL_SEGMENT_RECORDS" "")
  @@ fun () ->
  let db = disk_db dir in
  for i = 1 to 20 do
    ignore (commit_txn db i)
  done;
  Database.sync db;
  Database.set_storage_fault db (Fault.crash_at "walseg.reclaim" ~hit:1);
  let crashed = ref false in
  (try ignore (Database.reclaim_wal db ~upto:10) with Fault.Crash _ -> crashed := true);
  Alcotest.(check bool) "crash fired in the reclaim window" true !crashed;
  let db2 = disk_db dir in
  Database.recover_pending db2;
  Alcotest.(check int) "durable history intact" 20 (Database.now db2);
  Alcotest.check relation "contents intact across the reclaim crash"
    (expected_relation 20)
    (Table.contents (Database.table db2 "r"))

(* --- service-level segment GC --- *)

let disk_scenario dir =
  let db = Database.create ~mode:Store.Disk ~dir () in
  let _ = Database.create_table db ~name:"r" r_schema in
  let _ =
    Database.create_table db ~name:"s"
      (Schema.make [ int_col "k"; int_col "w" ])
  in
  let capture = Capture.create db in
  Capture.attach capture ~table:"r";
  Capture.attach capture ~table:"s";
  let b = C.View.binder db [ ("r", "r"); ("s", "s") ] in
  let view =
    C.View.create db ~name:"rs"
      ~sources:[ ("r", "r"); ("s", "s") ]
      ~predicate:[ Predicate.join (b "r" "k") (b "s" "k") ]
      ~project:[ b "r" "k"; b "r" "v"; b "s" "w" ]
  in
  { db; capture; history = History.create db; view }

let test_service_gc_reclaims_segments () =
  with_dir @@ fun dir ->
  Unix.putenv "ROLL_SEGMENT_RECORDS" "8";
  Fun.protect ~finally:(fun () -> Unix.putenv "ROLL_SEGMENT_RECORDS" "")
  @@ fun () ->
  let s = disk_scenario dir in
  let service = C.Service.create ~gc_threshold:1 s.db s.capture in
  let ctl =
    C.Service.register service
      ~algorithm:(C.Controller.Rolling (C.Rolling.uniform 3))
      s.view
  in
  let rng = Prng.create ~seed:11 in
  random_txns rng s 60;
  (match C.Service.maintain service ~budget:10_000 with
  | Ok _ -> ()
  | Error (e : C.Service.step_error) ->
      Alcotest.failf "maintain failed: %s at %s" e.view e.point);
  let before = Database.live_segments s.db in
  Alcotest.(check bool) "many live segments before gc" true (before > 2);
  (* Segment reclaim is clamped to the durable data snapshot, so nothing
     can go before a flush barrier lands. *)
  Alcotest.(check int) "no reclaim before a sync" 0
    (C.Service.reclaim_wal service);
  Database.sync s.db;
  (* Roll the stored view forward so the applied delta is prunable, then
     gc: the horizon advances and the WAL prefix becomes reclaimable. *)
  C.Service.refresh_all service;
  ignore (C.Service.gc_all service);
  Alcotest.(check bool) "gc deleted wal segments" true
    (Database.live_segments s.db < before);
  Alcotest.(check bool) "wal base advanced" true (Database.wal_base s.db > 0);
  Alcotest.(check bool) "reclaim visible in storage_json" true
    (contains (Database.storage_json s.db) "\"reclaimed_segments\"");
  (* History now replays from the reclaimed base state: the oracle must
     still agree with the controller, and must refuse reclaimed times. *)
  random_txns rng s 30;
  (match C.Service.maintain service ~budget:10_000 with
  | Ok _ -> ()
  | Error (e : C.Service.step_error) ->
      Alcotest.failf "maintain failed: %s at %s" e.view e.point);
  C.Controller.refresh_to ctl (C.Controller.hwm ctl);
  Alcotest.check relation "post-reclaim contents match the oracle"
    (C.Oracle.view_at s.history s.view (C.Controller.as_of ctl))
    (C.Controller.contents ctl);
  let base = Database.wal_base s.db in
  Alcotest.(check bool) "history refuses reclaimed times" true
    (match History.state_at s.history ~table:"r" (base - 1) with
    | exception Invalid_argument _ -> true
    | _ -> false);
  C.Service.shutdown service

let suite =
  [
    Alcotest.test_case "pager pages round-trip and recycle" `Quick
      test_pager_round_trip;
    Alcotest.test_case "pager detects corruption, falls back across metas"
      `Quick test_pager_corruption_and_meta_fallback;
    Alcotest.test_case "block cache bounds residency and writes back" `Quick
      test_block_cache;
    Alcotest.test_case "paged btree matches a model under eviction" `Quick
      test_paged_btree_model;
    Alcotest.test_case "wal segments rotate, recover, tolerate torn tails"
      `Quick test_wal_store_rotation_and_recovery;
    Alcotest.test_case "wal segment reclaim and ledger" `Quick
      test_wal_store_reclaim;
    Alcotest.test_case "wal reclaim crash windows recover" `Quick
      test_wal_store_reclaim_crash_windows;
    Alcotest.test_case "database survives a crash mid-reclaim" `Quick
      test_db_reclaim_crash_recovers;
    Alcotest.test_case "disk crash recovery at every storage fault point"
      `Quick test_crash_recovery_all_points;
    Alcotest.test_case "torn tail reported and dropped" `Quick
      test_torn_tail_reported;
    Alcotest.test_case "service gc reclaims wal segments" `Quick
      test_service_gc_reclaims_segments;
  ]
