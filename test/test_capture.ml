(* Capture (DPropR analogue) tests: cursor semantics, lag, delta
   population, relevance filtering, and the unit-of-work table. *)

open Roll_relation
module Time = Roll_delta.Time
module Delta = Roll_delta.Delta
module Database = Roll_storage.Database
module Capture = Roll_capture.Capture
module Uow = Roll_capture.Uow

let schema = Schema.make [ { Schema.name = "k"; ty = Value.T_int } ]

let t1 = Tuple.ints [ 1 ]

let setup () =
  let db = Database.create () in
  let _ = Database.create_table db ~name:"r" schema in
  let _ = Database.create_table db ~name:"other" schema in
  let capture = Capture.create db in
  Capture.attach capture ~table:"r";
  (db, capture)

let test_capture_populates_delta () =
  let db, capture = setup () in
  ignore (Database.run db (fun txn -> Database.insert txn ~table:"r" t1));
  ignore (Database.run db (fun txn -> Database.delete txn ~table:"r" t1));
  Capture.advance capture;
  let d = Capture.delta capture ~table:"r" in
  Alcotest.(check int) "two rows" 2 (Delta.length d);
  let rows = Delta.to_list d in
  Alcotest.(check (list (pair int int)))
    "counts and timestamps"
    [ (1, 1); (-1, 2) ]
    (List.map (fun (r : Delta.row) -> (r.count, r.ts)) rows)

let test_capture_lag_and_partial_advance () =
  let db, capture = setup () in
  for _ = 1 to 5 do
    ignore (Database.run db (fun txn -> Database.insert txn ~table:"r" t1))
  done;
  Alcotest.(check int) "lag before" 5 (Capture.lag capture);
  Capture.advance ~max_records:2 capture;
  Alcotest.(check int) "partial hwm" 2 (Capture.hwm capture);
  Alcotest.(check int) "lag after partial" 3 (Capture.lag capture);
  Alcotest.(check int) "delta has 2" 2 (Delta.length (Capture.delta capture ~table:"r"));
  Capture.advance capture;
  Alcotest.(check int) "caught up" 0 (Capture.lag capture);
  Alcotest.(check int) "hwm = now" (Database.now db) (Capture.hwm capture)

let test_capture_ignores_unattached () =
  let db, capture = setup () in
  ignore (Database.run db (fun txn -> Database.insert txn ~table:"other" t1));
  Capture.advance capture;
  Alcotest.(check int) "nothing captured for r" 0
    (Delta.length (Capture.delta capture ~table:"r"));
  Alcotest.(check bool) "no delta table for other" true
    (try
       ignore (Capture.delta capture ~table:"other");
       false
     with Not_found -> true);
  (* hwm still advances past irrelevant records *)
  Alcotest.(check int) "hwm past irrelevant" 1 (Capture.hwm capture)

let test_attach_guard () =
  let db = Database.create () in
  let _ = Database.create_table db ~name:"r" schema in
  let _ = Database.create_table db ~name:"other" schema in
  ignore (Database.run db (fun txn -> Database.insert txn ~table:"r" t1));
  (* A fresh capture (cursor at zero) may attach over existing history: it
     will replay the log from the start. *)
  let fresh = Capture.create db in
  Capture.attach fresh ~table:"r";
  Capture.advance fresh;
  Alcotest.(check int) "history replayed on late attach" 1
    (Delta.length (Capture.delta fresh ~table:"r"));
  (* But once the cursor has passed logged changes of a table, attaching it
     would silently drop them — rejected. *)
  let late = Capture.create db in
  Capture.attach late ~table:"other";
  Capture.advance late;
  Alcotest.(check bool) "late attach rejected" true
    (try
       Capture.attach late ~table:"r";
       false
     with Invalid_argument _ -> true)

let test_attach_twice () =
  let _, capture = setup () in
  Alcotest.(check bool) "double attach rejected" true
    (try
       Capture.attach capture ~table:"r";
       false
     with Invalid_argument _ -> true)

let test_attached_list () =
  let db, capture = setup () in
  ignore db;
  Capture.attach capture ~table:"other";
  Alcotest.(check (list string)) "attached" [ "other"; "r" ] (Capture.attached capture)

let test_uow_relevance () =
  let db, capture = setup () in
  ignore (Database.run db (fun txn -> Database.insert txn ~table:"r" t1));
  ignore (Database.run db (fun txn -> Database.insert txn ~table:"other" t1));
  ignore (Database.commit_marker db ~tag:"m");
  Capture.advance capture;
  let uow = Capture.uow capture in
  (* r's change and the marker are relevant; other's change is not. *)
  Alcotest.(check int) "two relevant txns" 2 (Uow.length uow)

let test_uow_wall_mapping () =
  let db = Database.create ~wall_start:0.0 ~wall_tick:10.0 () in
  let _ = Database.create_table db ~name:"r" schema in
  let capture = Capture.create db in
  Capture.attach capture ~table:"r";
  for _ = 1 to 3 do
    ignore (Database.run db (fun txn -> Database.insert txn ~table:"r" t1))
  done;
  Capture.advance capture;
  let uow = Capture.uow capture in
  (* commits at wall 10, 20, 30 with csn 1, 2, 3 *)
  Alcotest.(check (option (float 0.0))) "wall of csn 2" (Some 20.0) (Uow.wall_of_csn uow 2);
  Alcotest.(check (option (float 0.0))) "wall of unknown csn" None (Uow.wall_of_csn uow 99);
  Alcotest.(check int) "csn at wall 25" 2 (Uow.csn_at_wall uow 25.0);
  Alcotest.(check int) "csn at exact wall" 2 (Uow.csn_at_wall uow 20.0);
  Alcotest.(check int) "csn before all" Time.origin (Uow.csn_at_wall uow 5.0);
  Alcotest.(check int) "csn after all" 3 (Uow.csn_at_wall uow 1000.0)

let test_uow_by_txn () =
  let db, capture = setup () in
  let txn = Database.begin_txn db in
  let id = Database.txn_id txn in
  Database.insert txn ~table:"r" t1;
  let csn = Database.commit db txn in
  Capture.advance capture;
  match Uow.by_txn (Capture.uow capture) id with
  | Some entry ->
      Alcotest.(check int) "csn mapped" csn entry.Uow.csn
  | None -> Alcotest.fail "expected uow entry"

let test_uow_order_enforced () =
  let uow = Uow.create () in
  Uow.record uow { Uow.txn_id = 1; csn = 5; wall = 1.0 };
  Alcotest.(check bool) "out of order rejected" true
    (try
       Uow.record uow { Uow.txn_id = 2; csn = 4; wall = 2.0 };
       false
     with Invalid_argument _ -> true)

let test_multi_table_capture () =
  let db = Database.create () in
  let _ = Database.create_table db ~name:"a" schema in
  let _ = Database.create_table db ~name:"b" schema in
  let capture = Capture.create db in
  Capture.attach capture ~table:"a";
  Capture.attach capture ~table:"b";
  ignore
    (Database.run db (fun txn ->
         Database.insert txn ~table:"a" t1;
         Database.insert txn ~table:"b" t1));
  Capture.advance capture;
  Alcotest.(check int) "a delta" 1 (Delta.length (Capture.delta capture ~table:"a"));
  Alcotest.(check int) "b delta" 1 (Delta.length (Capture.delta capture ~table:"b"));
  let ra = List.hd (Delta.to_list (Capture.delta capture ~table:"a")) in
  let rb = List.hd (Delta.to_list (Capture.delta capture ~table:"b")) in
  Alcotest.(check int) "same commit time" ra.Delta.ts rb.Delta.ts

let suite =
  [
    Alcotest.test_case "capture populates deltas" `Quick test_capture_populates_delta;
    Alcotest.test_case "lag and partial advance" `Quick test_capture_lag_and_partial_advance;
    Alcotest.test_case "unattached tables ignored" `Quick test_capture_ignores_unattached;
    Alcotest.test_case "late attach rejected" `Quick test_attach_guard;
    Alcotest.test_case "double attach rejected" `Quick test_attach_twice;
    Alcotest.test_case "attached list" `Quick test_attached_list;
    Alcotest.test_case "uow records relevant txns only" `Quick test_uow_relevance;
    Alcotest.test_case "uow wall-clock mapping" `Quick test_uow_wall_mapping;
    Alcotest.test_case "uow by txn id" `Quick test_uow_by_txn;
    Alcotest.test_case "uow enforces csn order" `Quick test_uow_order_enforced;
    Alcotest.test_case "one txn, two tables, same ts" `Quick test_multi_table_capture;
  ]
