let () =
  Alcotest.run "rolling_ivm"
    [
      ("util", Test_util.suite);
      ("relation", Test_relation.suite);
      ("delta", Test_delta.suite);
      ("storage", Test_storage.suite);
      ("btree", Test_btree.suite);
      ("index", Test_index.suite);
      ("capture", Test_capture.suite);
      ("trigger_capture", Test_trigger_capture.suite);
      ("wal_codec", Test_wal_codec.suite);
      ("checkpoint", Test_checkpoint.suite);
      ("view", Test_view.suite);
      ("executor", Test_executor.suite);
      ("planner", Test_planner.suite);
      ("compute_delta", Test_compute_delta.suite);
      ("propagate", Test_propagate.suite);
      ("rolling", Test_rolling.suite);
      ("apply", Test_apply.suite);
      ("baseline", Test_baseline.suite);
      ("geometry", Test_geometry.suite);
      ("controller", Test_controller.suite);
      ("service", Test_service.suite);
      ("scheduler", Test_scheduler.suite);
      ("autotune", Test_autotune.suite);
      ("aggregate", Test_aggregate.suite);
      ("union", Test_union.suite);
      ("dsl", Test_dsl.suite);
      ("expr", Test_expr.suite);
      ("workload", Test_workload.suite);
      ("tpch", Test_tpch.suite);
      ("sim", Test_sim.suite);
      ("retry", Test_retry.suite);
      ("fault", Test_fault.suite);
      ("smoke", Test_smoke.suite);
      ("fuzz_views", Test_fuzz_views.suite);
    ]
