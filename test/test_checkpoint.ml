(* Checkpoint/resume: the full crash-restart story — save the WAL and the
   maintenance checkpoint, "restart" into fresh objects, keep updating, and
   verify the resumed view is indistinguishable from one that never
   stopped. *)

open Test_support.Helpers
module Time = Roll_delta.Time
module Wal_codec = Roll_storage.Wal_codec
module C = Roll_core

let with_temp_files f =
  let wal_path = Filename.temp_file "ckpt_wal" ".log" in
  let ckpt_path = Filename.temp_file "ckpt" ".ckpt" in
  Fun.protect
    ~finally:(fun () ->
      Sys.remove wal_path;
      Sys.remove ckpt_path)
    (fun () -> f wal_path ckpt_path)

(* Run maintenance for a while and checkpoint mid-flight. *)
let run_and_checkpoint wal_path ckpt_path =
  let s = two_table () in
  random_txns (Prng.create ~seed:150) s 30;
  let ctx = ctx_of s in
  let rolling = C.Rolling.create ctx ~t_initial:Time.origin in
  let apply = C.Apply.create_empty ctx ~t_initial:Time.origin in
  (* Propagate only part of the way, apply even less: both processes are
     mid-flight at the checkpoint. *)
  C.Rolling.run_until rolling ~target:(Database.now s.db / 2)
    ~policy:(C.Rolling.per_relation [| 3; 7 |]);
  let hwm = C.Rolling.hwm rolling in
  C.Apply.roll_to apply ~hwm (hwm / 2);
  Wal_codec.save_file (Database.wal s.db) wal_path;
  C.Checkpoint.save ctx ~hwm ~apply ckpt_path;
  (s, hwm)

let restart wal_path ckpt_path =
  let s2 = two_table () in
  Database.restore s2.db (Wal_codec.load_file wal_path);
  Roll_capture.Capture.advance s2.capture;
  let ctx, apply, rolling = C.Checkpoint.resume s2.db s2.capture s2.view ckpt_path in
  (s2, ctx, apply, rolling)

let test_peek () =
  with_temp_files (fun wal_path ckpt_path ->
      let _, hwm = run_and_checkpoint wal_path ckpt_path in
      let header = C.Checkpoint.peek ckpt_path in
      Alcotest.(check string) "view name" "rs" header.C.Checkpoint.view_name;
      Alcotest.(check int) "hwm" hwm header.C.Checkpoint.hwm;
      Alcotest.(check int) "as_of" (hwm / 2) header.C.Checkpoint.as_of)

let test_resume_state () =
  with_temp_files (fun wal_path ckpt_path ->
      let s, hwm = run_and_checkpoint wal_path ckpt_path in
      let s2, _, apply, rolling = restart wal_path ckpt_path in
      Alcotest.(check int) "as_of restored" (hwm / 2) (C.Apply.as_of apply);
      Alcotest.(check int) "frontiers at hwm" hwm (C.Rolling.hwm rolling);
      (* The restored apply contents match the oracle at as_of. *)
      Alcotest.check relation "contents restored"
        (C.Oracle.view_at s.history s.view (hwm / 2))
        (C.Apply.contents apply);
      ignore s2)

let test_resume_continues_correctly () =
  with_temp_files (fun wal_path ckpt_path ->
      let _, _ = run_and_checkpoint wal_path ckpt_path in
      let s2, ctx, apply, rolling = restart wal_path ckpt_path in
      (* Life goes on after the restart. *)
      random_txns (Prng.create ~seed:151) s2 25;
      let target = Database.now s2.db in
      C.Rolling.run_until rolling ~target ~policy:(C.Rolling.per_relation [| 4; 9 |]);
      C.Apply.roll_to apply ~hwm:(C.Rolling.hwm rolling) target;
      Alcotest.check relation "resumed view = oracle"
        (C.Oracle.view_at s2.history s2.view target)
        (C.Apply.contents apply);
      (* Point-in-time still works across the restart boundary. *)
      let mid = (C.Checkpoint.peek ckpt_path).C.Checkpoint.hwm in
      C.Apply.roll_back_to apply mid;
      Alcotest.check relation "roll back across restart"
        (C.Oracle.view_at s2.history s2.view mid)
        (C.Apply.contents apply);
      ignore ctx)

let test_resume_guards () =
  with_temp_files (fun wal_path ckpt_path ->
      let _, _ = run_and_checkpoint wal_path ckpt_path in
      let s2 = two_table () in
      Database.restore s2.db (Wal_codec.load_file wal_path);
      (* Wrong view name. *)
      let b = C.View.binder s2.db [ ("r", "r") ] in
      let other =
        C.View.create s2.db ~name:"other" ~sources:[ ("r", "r") ] ~predicate:[]
          ~project:[ b "r" "k" ]
      in
      Alcotest.(check bool) "wrong view rejected" true
        (try
           ignore (C.Checkpoint.resume s2.db s2.capture other ckpt_path);
           false
         with Invalid_argument _ -> true))

let test_save_guard () =
  let s = two_table () in
  random_txns (Prng.create ~seed:152) s 10;
  let ctx = ctx_of s in
  let rolling = C.Rolling.create ctx ~t_initial:Time.origin in
  let apply = C.Apply.create_empty ctx ~t_initial:Time.origin in
  let target = Database.now s.db in
  C.Rolling.run_until rolling ~target ~policy:(C.Rolling.uniform 5);
  C.Apply.roll_to apply ~hwm:(C.Rolling.hwm rolling) target;
  Alcotest.(check bool) "apply ahead of claimed hwm rejected" true
    (try
       C.Checkpoint.save ctx ~hwm:(target / 2) ~apply "/tmp/never_written.ckpt";
       false
     with Invalid_argument _ -> true)

let test_corrupt_checkpoint () =
  let path = Filename.temp_file "ckpt" ".bad" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let out = open_out path in
      output_string out "NOT A CHECKPOINT\n";
      close_out out;
      Alcotest.(check bool) "corrupt detected" true
        (try
           ignore (C.Checkpoint.peek path);
           false
         with Roll_storage.Wal_codec.Corrupt _ -> true))

let suite =
  [
    Alcotest.test_case "peek header" `Quick test_peek;
    Alcotest.test_case "resume restores state" `Quick test_resume_state;
    Alcotest.test_case "resume continues correctly" `Quick test_resume_continues_correctly;
    Alcotest.test_case "resume guards" `Quick test_resume_guards;
    Alcotest.test_case "save guard" `Quick test_save_guard;
    Alcotest.test_case "corrupt checkpoint" `Quick test_corrupt_checkpoint;
  ]
