(* Delta-table tests: window selection (σ_{a,b}), out-of-order appends,
   pruning, and the split/combine lemmas (Lemmas 4.1 and 4.2). *)

open Roll_relation
module Time = Roll_delta.Time
module Delta = Roll_delta.Delta
module H = Test_support.Helpers

let qtest = QCheck_alcotest.to_alcotest

let schema = Schema.make [ { Schema.name = "k"; ty = Value.T_int } ]

let delta_of rows =
  let d = Delta.create schema in
  List.iter (fun (k, count, ts) -> Delta.append d (Tuple.ints [ k ]) ~count ~ts) rows;
  d

let test_window_basic () =
  let d = delta_of [ (1, 1, 1); (2, 1, 2); (3, 1, 3); (4, 1, 4) ] in
  let w = Delta.window d ~lo:1 ~hi:3 in
  Alcotest.(check int) "half-open window" 2 (List.length w);
  Alcotest.(check int) "first is ts=2" 2 (List.hd w).Delta.ts;
  Alcotest.(check int) "empty window" 0 (Delta.window_count d ~lo:3 ~hi:3);
  Alcotest.(check int) "full window" 4 (Delta.window_count d ~lo:0 ~hi:99)

let test_window_out_of_order_appends () =
  (* View deltas receive compensation rows with old timestamps after newer
     rows have been appended; windows must still come out sorted. *)
  let d = delta_of [ (1, 1, 5); (2, 1, 2); (3, 1, 9); (4, 1, 2) ] in
  let ts_list = List.map (fun (r : Delta.row) -> r.ts) (Delta.window d ~lo:0 ~hi:10) in
  Alcotest.(check (list int)) "sorted with stable ties" [ 2; 2; 5; 9 ] ts_list;
  (* The two ts=2 rows must appear in arrival order. *)
  let ks =
    List.filter_map
      (fun (r : Delta.row) ->
        if r.ts = 2 then
          match Tuple.get r.tuple 0 with Value.Int k -> Some k | _ -> None
        else None)
      (Delta.window d ~lo:0 ~hi:10)
  in
  Alcotest.(check (list int)) "stable ties" [ 2; 4 ] ks

let test_zero_count_dropped () =
  let d = delta_of [ (1, 0, 1) ] in
  Alcotest.(check int) "zero-count rows dropped" 0 (Delta.length d)

let test_min_max_ts () =
  let d = delta_of [ (1, 1, 7); (2, 1, 3) ] in
  Alcotest.(check (option int)) "min" (Some 3) (Delta.min_ts d);
  Alcotest.(check (option int)) "max" (Some 7) (Delta.max_ts d);
  let e = Delta.create schema in
  Alcotest.(check (option int)) "empty min" None (Delta.min_ts e)

let test_net_effect () =
  let d = delta_of [ (1, 1, 1); (1, -1, 2); (2, 3, 2) ] in
  let net = Delta.net_effect d ~lo:0 ~hi:10 in
  Alcotest.(check int) "cancelled" 0 (Relation.count net (Tuple.ints [ 1 ]));
  Alcotest.(check int) "kept" 3 (Relation.count net (Tuple.ints [ 2 ]));
  let net1 = Delta.net_effect d ~lo:0 ~hi:1 in
  Alcotest.(check int) "window cut keeps insert" 1 (Relation.count net1 (Tuple.ints [ 1 ]))

let test_prune () =
  let d = delta_of [ (1, 1, 1); (2, 1, 5); (3, 1, 9) ] in
  Alcotest.(check int) "pruned" 2 (Delta.prune d ~upto:5);
  Alcotest.(check int) "remaining" 1 (Delta.length d);
  Alcotest.(check int) "window after prune" 1 (Delta.window_count d ~lo:0 ~hi:10);
  Alcotest.(check int) "prune nothing" 0 (Delta.prune d ~upto:5)

let test_append_conformance () =
  let d = Delta.create schema in
  Alcotest.(check bool) "bad tuple raises" true
    (try
       Delta.append d (Tuple.ints [ 1; 2 ]) ~count:1 ~ts:1;
       false
     with Invalid_argument _ -> true)

let test_copy_independent () =
  let d = delta_of [ (1, 1, 1) ] in
  let d' = Delta.copy d in
  Delta.append d' (Tuple.ints [ 2 ]) ~count:1 ~ts:2;
  Alcotest.(check int) "copy grew" 2 (Delta.length d');
  Alcotest.(check int) "original unchanged" 1 (Delta.length d)

let rows_gen =
  QCheck.Gen.(
    list_size (0 -- 30)
      (triple (int_range 0 4) (int_range (-2) 2) (int_range 1 20)))

let rows_arb =
  QCheck.make
    ~print:(fun rows ->
      String.concat ";"
        (List.map (fun (k, c, t) -> Printf.sprintf "(%d,%+d,@%d)" k c t) rows))
    rows_gen

(* Lemma 4.1: splitting a timed delta at t_x gives timed deltas of the
   sub-intervals; equivalently prefix windows compose. *)
let prop_window_split =
  QCheck.Test.make ~name:"lemma 4.1: sigma(0,x) + sigma(x,hi) = sigma(0,hi)"
    ~count:300
    QCheck.(pair rows_arb (int_range 0 20))
    (fun (rows, x) ->
      let d = delta_of rows in
      let a = Delta.net_effect d ~lo:0 ~hi:x in
      let b = Delta.net_effect d ~lo:x ~hi:20 in
      let whole = Delta.net_effect d ~lo:0 ~hi:20 in
      Relation.equal whole (Relation.union a b))

(* Lemma 4.2: concatenating deltas over adjacent intervals is a delta over
   the combined interval. *)
let prop_window_combine =
  QCheck.Test.make ~name:"lemma 4.2: adjacent deltas combine" ~count:300
    QCheck.(pair rows_arb rows_arb)
    (fun (rows_a, rows_b) ->
      (* rows_a stamped in (0,10], rows_b in (10,20] *)
      let clamp lo hi (k, c, t) = (k, c, lo + 1 + (t mod (hi - lo))) in
      let d = delta_of (List.map (clamp 0 10) rows_a @ List.map (clamp 10 20) rows_b) in
      let da = delta_of (List.map (clamp 0 10) rows_a) in
      let db = delta_of (List.map (clamp 10 20) rows_b) in
      Relation.equal
        (Delta.net_effect d ~lo:0 ~hi:20)
        (Relation.union
           (Delta.net_effect da ~lo:0 ~hi:10)
           (Delta.net_effect db ~lo:10 ~hi:20)))

let prop_apply_window_rolls =
  QCheck.Test.make ~name:"apply_window rolls a relation forward" ~count:300
    rows_arb
    (fun rows ->
      (* Build only non-negative running multiplicities to make a valid
         history: drop deletes that would go negative. *)
      let d = Delta.create schema in
      let counts = Hashtbl.create 8 in
      List.iter
        (fun (k, c, _) ->
          let cur = try Hashtbl.find counts k with Not_found -> 0 in
          let c = if cur + c < 0 then abs c else c in
          Hashtbl.replace counts k (cur + c))
        rows;
      (* re-stamp sequentially so the delta is a real history *)
      Hashtbl.reset counts;
      List.iteri
        (fun i (k, c, _) ->
          let cur = try Hashtbl.find counts k with Not_found -> 0 in
          let c = if cur + c < 0 then abs c else c in
          Hashtbl.replace counts k (cur + c);
          Delta.append d (Tuple.ints [ k ]) ~count:c ~ts:(i + 1))
        rows;
      let state = Relation.create schema in
      Delta.apply_window d ~lo:0 ~hi:(List.length rows) state;
      Relation.equal state (Delta.net_effect d ~lo:0 ~hi:(List.length rows)))

let suite =
  [
    Alcotest.test_case "window selection" `Quick test_window_basic;
    Alcotest.test_case "out-of-order appends" `Quick test_window_out_of_order_appends;
    Alcotest.test_case "zero-count appends dropped" `Quick test_zero_count_dropped;
    Alcotest.test_case "min/max timestamps" `Quick test_min_max_ts;
    Alcotest.test_case "net effect" `Quick test_net_effect;
    Alcotest.test_case "prune applied rows" `Quick test_prune;
    Alcotest.test_case "append conformance" `Quick test_append_conformance;
    Alcotest.test_case "copy independence" `Quick test_copy_independent;
    qtest prop_window_split;
    qtest prop_window_combine;
    qtest prop_apply_window_rolls;
  ]

let test_compact () =
  let d =
    delta_of [ (1, 1, 5); (2, 1, 3); (1, -1, 5); (2, 2, 3); (3, 1, 5) ]
  in
  let before = Relation.to_list (Delta.net_effect d ~lo:0 ~hi:10) in
  let mid = Relation.to_list (Delta.net_effect d ~lo:0 ~hi:4) in
  let removed = Delta.compact d in
  (* (1,+1,@5) and (1,-1,@5) vanish; the two key-2 rows merge. *)
  Alcotest.(check int) "rows removed" 3 removed;
  Alcotest.(check int) "rows left" 2 (Delta.length d);
  Alcotest.(check (list (pair (Alcotest.testable Tuple.pp Tuple.equal) int)))
    "full window preserved" before
    (Relation.to_list (Delta.net_effect d ~lo:0 ~hi:10));
  Alcotest.(check (list (pair (Alcotest.testable Tuple.pp Tuple.equal) int)))
    "partial window preserved" mid
    (Relation.to_list (Delta.net_effect d ~lo:0 ~hi:4))

let prop_compact_preserves_windows =
  QCheck.Test.make ~name:"compact preserves every window" ~count:200 rows_arb
    (fun rows ->
      let d = delta_of rows in
      let d' = Delta.copy d in
      ignore (Delta.compact d');
      let ok = ref true in
      for a = 0 to 20 do
        for b = a to 20 do
          if
            not
              (Relation.equal
                 (Delta.net_effect d ~lo:a ~hi:b)
                 (Delta.net_effect d' ~lo:a ~hi:b))
          then ok := false
        done
      done;
      !ok)

(* A shared window cursor outlives the drain that built it: rewinding after
   concurrent appends must restart over the delta's rebuilt index, seeing
   rows that landed (inside the window, out of timestamp order) after the
   first drain. *)
let test_window_cursor_rewind_after_append () =
  let d = delta_of [ (1, 1, 5); (2, 1, 2) ] in
  let c = Delta.window_cursor d ~lo:0 ~hi:10 in
  let ts_seen () = List.map (fun (r : Cursor.row) -> r.ts) (Cursor.to_list c) in
  Alcotest.(check (list int)) "first drain, timestamp order" [ 2; 5 ] (ts_seen ());
  Delta.append d (Tuple.ints [ 3 ]) ~count:1 ~ts:3;
  Delta.append d (Tuple.ints [ 4 ]) ~count:1 ~ts:12;
  Cursor.rewind c;
  Alcotest.(check (list int))
    "rewind picks up the in-window append, still excludes ts>hi" [ 2; 3; 5 ]
    (ts_seen ());
  Cursor.rewind c;
  Alcotest.(check (list int)) "rewind is repeatable" [ 2; 3; 5 ] (ts_seen ())

let suite =
  suite
  @ [
      Alcotest.test_case "compact" `Quick test_compact;
      qtest prop_compact_preserves_windows;
      Alcotest.test_case "window cursor rewind after appends" `Quick
        test_window_cursor_rewind_after_append;
    ]
