(* rolld — point-in-time read server over a live maintenance service.

     rolld serve --socket rolld.sock --rate 100 --duration 30
     rolld client --socket rolld.sock "READ star FRESH" "STATUS" "SHUTDOWN"

   `serve` runs the star workload under continuous capture + maintenance
   (optionally on a worker-domain pool) and serves the protocol of
   lib/serve/protocol.ml over a Unix socket. `client` scripts a session:
   each positional argument is sent as one request line and the decoded
   response is printed. *)

open Cmdliner
module C = Roll_core
module S = Roll_serve
module W = Roll_workload
module Database = Roll_storage.Database

let setup_logs verbose =
  Logs.set_reporter (Logs_fmt.reporter ());
  Logs.set_level (Some (if verbose then Logs.Debug else Logs.Warning))

let verbose_term =
  let flag =
    Arg.(value & flag & info [ "verbose"; "v" ] ~doc:"enable debug logging")
  in
  Term.(const setup_logs $ flag)

(* --- serve --- *)

let serve_cmd socket rate duration domains budget gc_threshold quiet =
  let domains =
    match domains with Some n -> Some n | None -> C.Service.env_domains ()
  in
  let star = W.Star.create W.Star.default_config in
  W.Star.load_initial star;
  let db = W.Star.db star in
  let service = C.Service.create ?domains db (W.Star.capture star) in
  C.Service.set_gc_threshold service gc_threshold;
  let _ =
    C.Service.register service
      ~algorithm:(C.Controller.Rolling (C.Rolling.per_relation [| 5; 40; 40 |]))
      (W.Star.view star)
  in
  let engine = S.Engine.create db service in
  let started = Unix.gettimeofday () in
  let carried = ref 0.0 in
  let last = ref started in
  let server_ref = ref None in
  (* The tick runs on the engine thread: apply rate-driven updates, drain
     maintenance, then (in Server's loop) pump queued readers. *)
  let tick () =
    let now = Unix.gettimeofday () in
    let due = !carried +. (rate *. (now -. !last)) in
    let txns = int_of_float due in
    carried := due -. float_of_int txns;
    last := now;
    if txns > 0 then
      W.Star.mixed_txns star ~n:(min txns 1000) ~dim_fraction:0.05;
    (match
       C.Service.maintain service ~budget
         ~retry:(Roll_util.Retry.policy ~max_attempts:5 ())
     with
    | Ok _ -> ()
    | Error (e : C.Service.step_error) ->
        Logs.err (fun m ->
            m "permanent step failure: view %s at %s" e.view e.point));
    if duration > 0.0 && now -. started >= duration then
      Option.iter S.Server.request_shutdown !server_ref
  in
  let server = S.Server.start ~tick ~socket engine in
  server_ref := Some server;
  if not quiet then
    Printf.printf "rolld: serving view \"star\" on %s (domains=%d, rate=%g/s)\n%!"
      socket (C.Service.domains service) rate;
  S.Server.wait server;
  C.Service.shutdown service;
  if not quiet then
    Printf.printf "rolld: clean shutdown — served %d reads, rejected %d\n%!"
      (S.Engine.reads_served engine)
      (S.Engine.reads_rejected engine)

let serve_term =
  let socket =
    Arg.(
      value
      & opt string "rolld.sock"
      & info [ "socket"; "s" ] ~docv:"PATH" ~doc:"Unix socket path")
  in
  let rate =
    Arg.(
      value & opt float 100.0
      & info [ "rate"; "r" ] ~doc:"update transactions per second")
  in
  let duration =
    Arg.(
      value & opt float 0.0
      & info [ "duration"; "d" ]
          ~doc:"exit after this many seconds (default: run until SHUTDOWN)")
  in
  let domains =
    Arg.(
      value
      & opt (some int) None
      & info [ "domains" ] ~docv:"N"
          ~doc:"worker-domain pool size (default: ROLL_DOMAINS, else serial)")
  in
  let budget =
    Arg.(
      value & opt int 64
      & info [ "budget"; "b" ] ~doc:"maintenance work items per tick")
  in
  let gc_threshold =
    Arg.(
      value & opt int 20_000
      & info [ "gc-threshold" ]
          ~doc:"applied delta rows per view before gc is offered")
  in
  let quiet = Arg.(value & flag & info [ "quiet"; "q" ] ~doc:"no banner") in
  Term.(
    const (fun () s r d dm b g q -> serve_cmd s r d dm b g q)
    $ verbose_term $ socket $ rate $ duration $ domains $ budget $ gc_threshold
    $ quiet)

(* --- client --- *)

let client_cmd socket lines =
  let conn = S.Client.connect_retry socket in
  let failures = ref 0 in
  List.iter
    (fun line ->
      match S.Client.request_raw conn line with
      | Ok response -> print_endline (S.Protocol.encode_response response)
      | Error msg ->
          incr failures;
          Printf.eprintf "rolld client: %s: %s\n" line msg)
    lines;
  S.Client.close conn;
  if !failures > 0 then exit 1

let client_term =
  let socket =
    Arg.(
      value
      & opt string "rolld.sock"
      & info [ "socket"; "s" ] ~docv:"PATH" ~doc:"Unix socket path")
  in
  let lines =
    Arg.(
      non_empty & pos_all string []
      & info [] ~docv:"REQUEST"
          ~doc:"request lines, e.g. 'READ star AT 12' or 'STATUS'")
  in
  Term.(const (fun () s l -> client_cmd s l) $ verbose_term $ socket $ lines)

let () =
  let info name doc = Cmd.info name ~doc in
  let cmds =
    [
      Cmd.v
        (info "serve"
           "serve point-in-time reads of the star view while capture and \
            maintenance run continuously")
        serve_term;
      Cmd.v
        (info "client" "script a session against a running rolld server")
        client_term;
    ]
  in
  let group =
    Cmd.group
      (Cmd.info "rolld" ~version:"1.0.0"
         ~doc:"point-in-time read server for rolling-IVM views")
      cmds
  in
  exit (Cmd.eval group)
