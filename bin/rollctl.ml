(* rollctl — command-line driver for the rolling-IVM engine.

     rollctl run --workload star --algorithm rolling --txns 500
     rollctl coverage --txns 80 --fact-interval 5 --dim-interval 15
     rollctl parse "SELECT o.okey ... "
*)

open Cmdliner
module Time = Roll_delta.Time

let setup_logs verbose =
  Logs.set_reporter (Logs_fmt.reporter ());
  Logs.set_level (Some (if verbose then Logs.Debug else Logs.Warning))

let verbose_term =
  let flag =
    Arg.(value & flag & info [ "verbose"; "v" ] ~doc:"enable debug logging")
  in
  Term.(const setup_logs $ flag)
module Database = Roll_storage.Database
module Tablefmt = Roll_util.Tablefmt
module Summary = Roll_util.Summary
module C = Roll_core
module W = Roll_workload

(* --- run --- *)

type workload_kind = Star | Chain

let run_cmd workload algorithm txns interval verify =
  let db, capture, view, history, churn =
    match workload with
    | Star ->
        let star = W.Star.create W.Star.default_config in
        W.Star.load_initial star;
        ( W.Star.db star, W.Star.capture star, W.Star.view star,
          W.Star.history star,
          fun n -> W.Star.mixed_txns star ~n ~dim_fraction:0.05 )
    | Chain ->
        let chain = W.Chain.create W.Chain.default_config in
        W.Chain.load_initial chain;
        ( W.Chain.db chain, W.Chain.capture chain, W.Chain.view chain,
          W.Chain.history chain,
          fun n -> W.Chain.run chain ~n )
  in
  let n = C.View.n_sources view in
  let algo =
    match algorithm with
    | "uniform" -> C.Controller.Uniform interval
    | "rolling" ->
        C.Controller.Rolling
          (C.Rolling.per_relation
             (Array.init n (fun i -> if i = 0 then interval else interval * 10)))
    | "deferred" -> C.Controller.Deferred (C.Rolling_deferred.uniform interval)
    | "adaptive" -> C.Controller.Adaptive (interval * 5)
    | other -> failwith ("unknown algorithm: " ^ other)
  in
  let controller = C.Controller.create db capture view ~algorithm:algo in
  let rounds = 5 in
  for _ = 1 to rounds do
    churn (txns / rounds);
    ignore (C.Controller.refresh_latest controller)
  done;
  let stats = C.Controller.stats controller in
  Tablefmt.print ~title:"maintenance summary"
    ~header:[ "metric"; "value" ]
    [
      [ "view"; C.View.name view ];
      [ "commits"; string_of_int (Database.now db) ];
      [ "view rows";
        string_of_int (Roll_relation.Relation.distinct_count (C.Controller.contents controller)) ];
      [ "as of"; string_of_int (C.Controller.as_of controller) ];
      [ "propagation queries"; string_of_int (C.Stats.queries stats) ];
      [ "rows read"; string_of_int (C.Stats.rows_read stats) ];
      [ "rows emitted"; string_of_int (C.Stats.rows_emitted stats) ];
    ];
  if verify then begin
    let t = C.Controller.as_of controller in
    let expected = C.Oracle.view_at history view t in
    if Roll_relation.Relation.equal expected (C.Controller.contents controller) then
      print_endline "verification vs oracle: ok"
    else begin
      print_endline "verification vs oracle: FAILED";
      exit 1
    end
  end

let workload_conv =
  Arg.conv
    ( (fun s ->
        match s with
        | "star" -> Ok Star
        | "chain" -> Ok Chain
        | _ -> Error (`Msg "expected star or chain")),
      fun ppf w -> Format.pp_print_string ppf (match w with Star -> "star" | Chain -> "chain") )

let run_term =
  let workload =
    Arg.(value & opt workload_conv Star & info [ "workload"; "w" ] ~doc:"star or chain")
  in
  let algorithm =
    Arg.(value & opt string "rolling" & info [ "algorithm"; "a" ] ~doc:"rolling, uniform, deferred or adaptive")
  in
  let txns = Arg.(value & opt int 500 & info [ "txns"; "n" ] ~doc:"update transactions") in
  let interval = Arg.(value & opt int 10 & info [ "interval"; "i" ] ~doc:"base propagation interval") in
  let verify = Arg.(value & flag & info [ "verify" ] ~doc:"check the final state against the oracle") in
  Term.(const (fun () w a n i v -> run_cmd w a n i v) $ verbose_term $ workload $ algorithm $ txns $ interval $ verify)

(* --- coverage --- *)

let coverage_cmd txns i0 i1 width =
  let w = W.Nway.create (W.Nway.config ~n:2 ~initial_rows:20 ~seed:5 ()) in
  W.Nway.load_initial w;
  W.Nway.churn w ~n:txns;
  let ctx =
    C.Ctx.create ~geometry:true ~t_initial:0 (W.Nway.db w) (W.Nway.capture w)
      (W.Nway.view w)
  in
  let r = C.Rolling.create ctx ~t_initial:0 in
  let target = Database.now (W.Nway.db w) in
  C.Rolling.run_until r ~target ~policy:(C.Rolling.per_relation [| i0; i1 |]);
  let g = Option.get ctx.C.Ctx.geometry in
  Printf.printf "rolling propagation of %d commits, intervals R1=%d R2=%d:\n\n"
    target i0 i1;
  print_string (C.Geometry.render_2d g ~width ~upto:(Database.now (W.Nway.db w)));
  (match C.Geometry.check g ~hwm:(C.Rolling.hwm r) with
  | Ok () -> Printf.printf "\ncoverage up to hwm=%d: exact\n" (C.Rolling.hwm r)
  | Error msg ->
      Printf.printf "\ncoverage check FAILED: %s\n" msg;
      exit 1)

let coverage_term =
  let txns = Arg.(value & opt int 80 & info [ "txns"; "n" ] ~doc:"update transactions") in
  let i0 = Arg.(value & opt int 5 & info [ "r1-interval" ] ~doc:"R1 interval") in
  let i1 = Arg.(value & opt int 15 & info [ "r2-interval" ] ~doc:"R2 interval") in
  let width = Arg.(value & opt int 40 & info [ "width" ] ~doc:"render width") in
  Term.(const (fun () a b c d -> coverage_cmd a b c d) $ verbose_term $ txns $ i0 $ i1 $ width)

(* --- status (multi-view service demo) --- *)

(* [--domains N] on status/schedule: explicit flag wins, then the
   ROLL_DOMAINS environment variable, else serial. *)
let resolve_domains = function
  | Some n -> Some n
  | None -> C.Service.env_domains ()

let domains_term =
  Arg.(
    value
    & opt (some int) None
    & info [ "domains" ]
        ~doc:
          "drain through a pool of $(docv) worker domains (default: \
           ROLL_DOMAINS, else serial)"
        ~docv:"N")

let print_domain_tables service =
  let depths = C.Service.shard_depths ~full:true service in
  Tablefmt.print
    ~title:
      (Printf.sprintf "shard queue depth (domains=%d)"
         (C.Service.domains service))
    ~header:[ "shard"; "pending items" ]
    (List.mapi
       (fun i d -> [ string_of_int i; string_of_int d ])
       (Array.to_list depths));
  match C.Service.ran_by_domain service with
  | [] -> ()
  | ran ->
      Tablefmt.print ~title:"items executed per domain"
        ~header:[ "kind"; "domain"; "items" ]
        (List.map
           (fun ((kind, dom), count) ->
             [ kind; string_of_int dom; string_of_int count ])
           ran)

let status_cmd txns json domains =
  let domains = resolve_domains domains in
  let star = W.Star.create W.Star.default_config in
  W.Star.load_initial star;
  let db = W.Star.db star in
  let service = C.Service.create ?domains db (W.Star.capture star) in
  let star_ctl =
    C.Service.register ~durable:true service
      ~algorithm:(C.Controller.Rolling (C.Rolling.per_relation [| 10; 80; 80 |]))
      (W.Star.view star)
  in
  let b = C.View.binder db [ ("fact", "f") ] in
  let fact_only =
    C.View.create db ~name:"fact_copy" ~sources:[ ("fact", "f") ] ~predicate:[]
      ~project:[ b "f" "measure" ]
  in
  let _ =
    C.Service.register service ~algorithm:(C.Controller.Uniform 20) fact_only
  in
  (* A second rolling view over a dimension table: its delta windows live
     on a different table than the star view's fact windows, so a pooled
     drain can hand both out as one wave. *)
  let d0 = W.Star.dim_table star 0 in
  let bd = C.View.binder db [ (d0, "d") ] in
  let dim_watch =
    C.View.create db ~name:"dim_watch" ~sources:[ (d0, "d") ] ~predicate:[]
      ~project:[ bd "d" "attr" ]
  in
  let _ =
    C.Service.register service
      ~algorithm:(C.Controller.Rolling (C.Rolling.uniform 15))
      dim_watch
  in
  (* A filtered join: the fact source is narrowed by a local predicate and
     the projection, so with auxiliaries enabled (ROLL_AUX=1 or
     [Service.create ~auxiliary:true]) the service derives and maintains
     π(σ(fact)) as an auxiliary — its row appears below with state
     "auxiliary", and the owner's probe counters and freshness lag land in
     the "aux h/m" and "aux lag" columns. With the hotset enabled
     (ROLL_HOTSET=1 or [Service.create ~hotset:true]) the service instead
     also partitions each view's most-joined relation by key frequency:
     heavy keys' partials appear below with state "heavy-partial", and the
     owner's union-read counters and partition census land in the
     "hot h/m" and "heavy/light" columns. *)
  let fact = W.Star.fact_table star in
  let open Roll_relation in
  let bh = C.View.binder db [ (fact, "f"); (d0, "d") ] in
  let hot_fact =
    C.View.create db ~name:"hot_fact"
      ~sources:[ (fact, "f"); (d0, "d") ]
      ~predicate:
        [
          Predicate.join (bh "f" "d0_key") (bh "d" "key");
          Predicate.cmp Predicate.Ge
            (Predicate.Col (bh "f" "measure"))
            (Predicate.Const (Value.Int 48));
        ]
      ~project:[ bh "f" "d0_key"; bh "f" "measure"; bh "d" "attr" ]
  in
  let _ =
    C.Service.register service
      ~algorithm:(C.Controller.Rolling (C.Rolling.uniform 12))
      hot_fact
  in
  W.Star.mixed_txns star ~n:txns ~dim_fraction:0.05;
  C.Service.pause service "fact_copy";
  (* Demonstrate reliable stepping: the star view's third propagation query
     fails twice with a transient error before succeeding on retry. *)
  (C.Controller.ctx star_ctl).C.Ctx.fault <-
    Roll_util.Fault.transient_at "exec.query" ~hit:3 ~failures:2;
  (match
     C.Service.try_step_all service ~budget:50
       ~retry:(Roll_util.Retry.policy ~max_attempts:4 ())
   with
  | Ok _ -> ()
  | Error (e : C.Service.step_error) ->
      Printf.printf "permanent failure: view %s at %s after %d attempts\n"
        e.view e.point e.attempts);
  (* A second drain so hotset promotions land: the registry migrates keys
     at the start of the drain after the one that caught capture up. *)
  ignore (C.Service.step_all service ~budget:50);
  let print_status header =
    if json then ()
    else
      Tablefmt.print ~title:header
      ~header:
        [
          "view"; "as of"; "hwm"; "staleness"; "sla"; "slack"; "delta rows";
          "retry/abort/recover"; "memo h/m"; "aux h/m"; "aux lag"; "hot h/m";
          "heavy/light"; "shared"; "state";
        ]
      (List.map
         (fun (st : C.Service.status) ->
           [
             st.name;
             string_of_int st.as_of;
             string_of_int st.hwm;
             string_of_int st.staleness;
             string_of_int st.sla;
             string_of_int st.slack;
             string_of_int st.delta_rows;
             Printf.sprintf "%d/%d/%d" st.retries st.aborts st.recoveries;
             Printf.sprintf "%d/%d" st.memo_hits st.memo_misses;
             Printf.sprintf "%d/%d" st.aux_hits st.aux_misses;
             string_of_int st.aux_lag;
             Printf.sprintf "%d/%d" st.hot_hits st.hot_misses;
             Printf.sprintf "%d/%d" st.heavy_keys st.light_rows;
             string_of_int st.shared_builds;
             (if st.aux then "auxiliary"
              else if st.hot then "heavy-partial"
              else if st.paused then "paused"
              else "running");
           ])
         (C.Service.status service))
  in
  print_status "after 50 budgeted steps (fact_copy paused)";
  C.Service.resume service "fact_copy";
  C.Service.refresh_all service;
  ignore (C.Service.gc_all service);
  print_status "after resume + refresh_all + gc";
  if json then
    Printf.printf "{\"status\": %s, \"shards\": %s, \"storage\": %s}\n"
      (String.trim (C.Service.status_json service))
      (String.trim (C.Service.shards_json ~full:true service))
      (String.trim (Roll_storage.Database.storage_json db))
  else begin
    print_domain_tables service;
    Printf.printf "storage: %s\n" (Roll_storage.Database.storage_json db)
  end;
  C.Service.shutdown service

let status_term =
  let txns = Arg.(value & opt int 200 & info [ "txns"; "n" ] ~doc:"update transactions") in
  let json =
    Arg.(value & flag & info [ "json" ] ~doc:"print the final control-table status as JSON")
  in
  Term.(
    const (fun () n j d -> status_cmd n j d)
    $ verbose_term $ txns $ json $ domains_term)

(* --- schedule (work-queue inspection) --- *)

let schedule_cmd txns policy budget json domains =
  let domains = resolve_domains domains in
  let star = W.Star.create W.Star.default_config in
  W.Star.load_initial star;
  let db = W.Star.db star in
  let policy =
    match policy with
    | "slack" -> C.Scheduler.Slack
    | "round-robin" -> C.Scheduler.Round_robin
    | other -> failwith ("unknown policy: " ^ other)
  in
  let service =
    C.Service.create ?domains ~policy ~default_sla:40 db (W.Star.capture star)
  in
  let _ =
    C.Service.register service
      ~algorithm:(C.Controller.Rolling (C.Rolling.per_relation [| 10; 80; 80 |]))
      (W.Star.view star)
  in
  let b = C.View.binder db [ ("fact", "f") ] in
  let fact_only =
    C.View.create db ~name:"fact_copy" ~sources:[ ("fact", "f") ] ~predicate:[]
      ~project:[ b "f" "measure" ]
  in
  let _ =
    C.Service.register service ~algorithm:(C.Controller.Uniform 20) fact_only
  in
  C.Service.set_sla service "fact_copy" 120;
  (* Rolling view on a dimension table: wave partner for the star view's
     fact-window steps under a pooled drain (see status_cmd). *)
  let d0 = W.Star.dim_table star 0 in
  let bd = C.View.binder db [ (d0, "d") ] in
  let dim_watch =
    C.View.create db ~name:"dim_watch" ~sources:[ (d0, "d") ] ~predicate:[]
      ~project:[ bd "d" "attr" ]
  in
  let _ =
    C.Service.register service
      ~algorithm:(C.Controller.Rolling (C.Rolling.uniform 15))
      dim_watch
  in
  W.Star.mixed_txns star ~n:txns ~dim_fraction:0.05;
  if json then begin
    (* Pure queue inspection: print the work queue a full drain would
       consume (plus its per-shard depths), best item first, and leave the
       service untouched. *)
    Printf.printf "{\"queue\": %s, \"shards\": %s}\n"
      (String.trim (C.Service.schedule_json ~full:true service))
      (String.trim (C.Service.shards_json ~full:true service));
    C.Service.shutdown service;
    exit 0
  end;
  let print_queue header =
    Tablefmt.print ~title:header
      ~header:[ "item"; "score"; "staleness"; "slack"; "est rows"; "est cost"; "state" ]
      (List.map
         (fun (s : C.Scheduler.scored) ->
           [
             Format.asprintf "%a" C.Scheduler.pp_item s.C.Scheduler.item;
             Printf.sprintf "%.2f" s.C.Scheduler.score;
             string_of_int s.C.Scheduler.staleness;
             string_of_int s.C.Scheduler.slack;
             string_of_int s.C.Scheduler.est_rows;
             Printf.sprintf "%.0f" s.C.Scheduler.est_cost;
             (if s.C.Scheduler.deferred then "deferred" else "runnable");
           ])
         (C.Service.schedule ~full:true service))
  in
  print_queue
    (Printf.sprintf "work queue before drain (policy=%s)"
       (match policy with C.Scheduler.Slack -> "slack" | C.Scheduler.Round_robin -> "round-robin"));
  (match C.Service.maintain service ~budget with
  | Ok items -> Printf.printf "maintain: executed %d work items\n" items
  | Error (e : C.Service.step_error) ->
      Printf.printf "permanent failure: view %s at %s\n" e.view e.point);
  print_queue "work queue after drain";
  let stats = C.Scheduler.stats (C.Service.scheduler service) in
  Tablefmt.print ~title:"scheduler counters"
    ~header:
      [
        "kind"; "scheduled"; "ran"; "deferred"; "backpressured"; "batched";
        "wall ms";
      ]
    (List.map
       (fun (kind, (c : C.Stats.sched_counters)) ->
         [
           kind;
           string_of_int c.C.Stats.scheduled;
           string_of_int c.C.Stats.ran;
           string_of_int c.C.Stats.deferred;
           string_of_int c.C.Stats.backpressured;
           string_of_int c.C.Stats.batched;
           Printf.sprintf "%.2f" (c.C.Stats.wall *. 1000.0);
         ])
       (C.Stats.sched_kinds stats));
  print_domain_tables service;
  C.Service.shutdown service

let schedule_term =
  let txns = Arg.(value & opt int 200 & info [ "txns"; "n" ] ~doc:"update transactions") in
  let policy =
    Arg.(value & opt string "slack" & info [ "policy"; "p" ] ~doc:"slack or round-robin")
  in
  let budget = Arg.(value & opt int 30 & info [ "budget"; "b" ] ~doc:"work items per drain") in
  let json =
    Arg.(value & flag & info [ "json" ] ~doc:"print the work queue as JSON and exit (no drain)")
  in
  Term.(
    const (fun () n p b j d -> schedule_cmd n p b j d)
    $ verbose_term $ txns $ policy $ budget $ json $ domains_term)

(* --- trace / metrics (Rollscope observability) --- *)

module Obs = Roll_obs.Obs

(* One fully observed star maintenance run: a durable star view plus a
   checkpoint schedule, churned and drained under an enabled Rollscope
   handle, so the trace covers capture → propagate (with per-node
   children) → apply → checkpoint end to end. *)
let observed_star_run ~txns ~budget ~deterministic ~checkpoint =
  let clock =
    if deterministic then Roll_obs.Clock.manual () else Roll_obs.Clock.real ()
  in
  let obs = Obs.create ~clock () in
  let star = W.Star.create W.Star.default_config in
  W.Star.load_initial star;
  let db = W.Star.db star in
  let service = C.Service.create ~obs db (W.Star.capture star) in
  let view = W.Star.view star in
  let _ =
    C.Service.register ~durable:true service
      ~algorithm:(C.Controller.Rolling (C.Rolling.per_relation [| 10; 80; 80 |]))
      view
  in
  if checkpoint then begin
    let path = Filename.temp_file "rollscope" ".ckpt" in
    at_exit (fun () -> try Sys.remove path with Sys_error _ -> ());
    C.Service.set_checkpoint service (C.View.name view) ~path ~every:1
  end;
  W.Star.mixed_txns star ~n:txns ~dim_fraction:0.05;
  let executed =
    match C.Service.maintain service ~budget with
    | Ok items -> items
    | Error (e : C.Service.step_error) ->
        Printf.eprintf "permanent failure: view %s at %s after %d attempts\n"
          e.view e.point e.attempts;
        exit 1
  in
  (obs, executed)

let trace_cmd txns budget out deterministic =
  let obs, executed =
    observed_star_run ~txns ~budget ~deterministic ~checkpoint:true
  in
  let trace = Obs.trace obs in
  let doc = Roll_obs.Export.chrome_trace ~process:"rollctl" trace in
  let oc = open_out out in
  output_string oc doc;
  close_out oc;
  Printf.printf
    "executed %d work items; wrote %d spans (%d dropped) to %s\n\
     load it in chrome://tracing or https://ui.perfetto.dev\n"
    executed
    (Roll_obs.Trace.recorded trace)
    (Roll_obs.Trace.dropped trace)
    out

let trace_term =
  let txns = Arg.(value & opt int 200 & info [ "txns"; "n" ] ~doc:"update transactions") in
  let budget = Arg.(value & opt int 200 & info [ "budget"; "b" ] ~doc:"work items for the drain") in
  let out =
    Arg.(value & opt string "trace.json" & info [ "out"; "o" ] ~docv:"FILE" ~doc:"output file")
  in
  let deterministic =
    Arg.(value & flag & info [ "deterministic" ] ~doc:"use a manual clock (reproducible timestamps)")
  in
  Term.(const (fun () n b o d -> trace_cmd n b o d) $ verbose_term $ txns $ budget $ out $ deterministic)

let metrics_cmd txns budget deterministic =
  let obs, _executed =
    observed_star_run ~txns ~budget ~deterministic ~checkpoint:true
  in
  print_string (Roll_obs.Export.prometheus (Obs.metrics obs))

let metrics_term =
  let txns = Arg.(value & opt int 200 & info [ "txns"; "n" ] ~doc:"update transactions") in
  let budget = Arg.(value & opt int 200 & info [ "budget"; "b" ] ~doc:"work items for the drain") in
  let deterministic =
    Arg.(value & flag & info [ "deterministic" ] ~doc:"use a manual clock (reproducible values)")
  in
  Term.(const (fun () n b d -> metrics_cmd n b d) $ verbose_term $ txns $ budget $ deterministic)

(* --- explain --- *)

let explain_cmd txns =
  let w = W.Nway.create (W.Nway.config ~n:3 ~initial_rows:100 ~seed:3 ()) in
  W.Nway.load_initial w;
  W.Nway.churn w ~n:txns;
  let ctx =
    C.Ctx.create ~t_initial:0 (W.Nway.db w) (W.Nway.capture w) (W.Nway.view w)
  in
  Roll_capture.Capture.advance (W.Nway.capture w);
  let now = Database.now (W.Nway.db w) in
  print_endline "plan for the view's defining query:";
  print_string (C.Executor.explain ctx (C.Pquery.all_base 3));
  print_endline "plan for a forward propagation query (delta window drives the join):";
  let forward =
    C.Pquery.replace (C.Pquery.all_base 3) 1
      (C.Pquery.Win { lo = now - 10; hi = now })
  in
  print_string (C.Executor.explain ctx forward);
  print_endline "";
  print_endline "estimated vs. actual (runs the queries, commits nothing):";
  print_string (C.Executor.explain_analyze ctx (C.Pquery.all_base 3));
  print_string (C.Executor.explain_analyze ctx forward);
  (* The same forward-query shape once an auxiliary is attached and fresh:
     the Base term's source renders with an α prefix — it reads the
     maintained mirror of π(σ(fact)) instead of the base table, and the
     pre-applied local filter is gone from the plan's predicate. *)
  let open Roll_relation in
  let db2 = Database.create () in
  let int_col name = { Schema.name; ty = Value.T_int } in
  let _ =
    Database.create_table db2 ~name:"fact"
      (Schema.make [ int_col "k"; int_col "v"; int_col "tag" ])
  in
  let _ =
    Database.create_table db2 ~name:"dim"
      (Schema.make [ int_col "k"; int_col "w" ])
  in
  let capture = Roll_capture.Capture.create db2 in
  Roll_capture.Capture.attach capture ~table:"fact";
  Roll_capture.Capture.attach capture ~table:"dim";
  let b = C.View.binder db2 [ ("fact", "f"); ("dim", "d") ] in
  let hot =
    C.View.create db2 ~name:"hot"
      ~sources:[ ("fact", "f"); ("dim", "d") ]
      ~predicate:
        [
          Predicate.join (b "f" "k") (b "d" "k");
          Predicate.cmp Predicate.Ge
            (Predicate.Col (b "f" "tag"))
            (Predicate.Const (Value.Int 500));
        ]
      ~project:[ b "f" "k"; b "f" "v"; b "d" "w" ]
  in
  let rng = Roll_util.Prng.create ~seed:9 in
  for _ = 1 to txns do
    ignore
      (Database.run db2 (fun txn ->
           Database.insert txn ~table:"fact"
             (Tuple.ints
                [
                  Roll_util.Prng.int rng 20;
                  Roll_util.Prng.int rng 1000;
                  Roll_util.Prng.int rng 1000;
                ]);
           Database.insert txn ~table:"dim"
             (Tuple.ints
                [ Roll_util.Prng.int rng 20; Roll_util.Prng.int rng 1000 ])))
  done;
  let ctl =
    C.Controller.create db2 capture hot
      ~algorithm:(C.Controller.Rolling (C.Rolling.uniform 8))
  in
  let reg = C.Auxiliary.create db2 capture in
  (match C.Auxiliary.attach reg ctl with
  | [] -> ()
  | ae :: _ ->
      ignore (C.Controller.refresh_latest (C.Auxiliary.controller ae));
      C.Auxiliary.sync ae;
      Roll_capture.Capture.advance capture;
      let now2 = Database.now db2 in
      let fwd2 =
        C.Pquery.replace (C.Pquery.all_base 2) 1
          (C.Pquery.Win { lo = now2 - 5; hi = now2 })
      in
      print_endline "";
      print_endline
        (Printf.sprintf
           "plan for the same forward shape with auxiliary %s fresh (α = \
            mirror probe):"
           (C.Auxiliary.name ae));
      print_string (C.Executor.explain (C.Controller.ctx ctl) fwd2));
  (* The heavy-light split: a full-width unfiltered fact source is exactly
     what the auxiliary registry skips, so a second view with no local
     narrowing goes to the Hotset registry instead. Once keys are promoted
     the Base term renders with an η prefix — the union of the light
     residual and the per-heavy-key partial mirrors replaces the base
     scan. *)
  let wide =
    C.View.create db2 ~name:"wide"
      ~sources:[ ("fact", "f"); ("dim", "d") ]
      ~predicate:[ Predicate.join (b "f" "k") (b "d" "k") ]
      ~project:[ b "f" "k"; b "f" "v"; b "f" "tag"; b "d" "w" ]
  in
  let ctl2 =
    C.Controller.create db2 capture wide
      ~algorithm:(C.Controller.Rolling (C.Rolling.uniform 8))
  in
  let hreg = C.Hotset.create db2 capture in
  ignore (C.Hotset.attach hreg ctl2);
  Roll_capture.Capture.advance capture;
  let promoted, _ = C.Hotset.rebalance hreg in
  List.iter
    (fun he -> ignore (C.Controller.refresh_latest (C.Hotset.controller he)))
    promoted;
  List.iter C.Hotset.sync promoted;
  let now3 = Database.now db2 in
  let fwd3 =
    C.Pquery.replace (C.Pquery.all_base 2) 1
      (C.Pquery.Win { lo = now3 - 5; hi = now3 })
  in
  print_endline "";
  print_endline
    (Printf.sprintf
       "plan for view wide with %d heavy keys split out (η = light residual \
        ∪ heavy partials):"
       (List.length promoted));
  print_string (C.Executor.explain (C.Controller.ctx ctl2) fwd3);
  Printf.printf
    "heavy/light census: %d heavy keys, %d light rows, %d sketch keys\n"
    (C.Hotset.heavy_count hreg ~owner:"wide")
    (C.Hotset.light_rows hreg ~owner:"wide")
    (C.Hotset.sketch_keys hreg)

let explain_term =
  let txns = Arg.(value & opt int 50 & info [ "txns"; "n" ] ~doc:"update transactions") in
  Term.(const (fun () n -> explain_cmd n) $ verbose_term $ txns)

(* --- parse --- *)

let parse_cmd sql =
  (* A demo catalog to resolve names against. *)
  let db = Database.create () in
  let int_col name = { Roll_relation.Schema.name; ty = Roll_relation.Value.T_int } in
  let str_col name = { Roll_relation.Schema.name; ty = Roll_relation.Value.T_string } in
  let _ =
    Database.create_table db ~name:"orders"
      (Roll_relation.Schema.make [ int_col "okey"; int_col "ckey"; int_col "total" ])
  in
  let _ =
    Database.create_table db ~name:"customer"
      (Roll_relation.Schema.make [ int_col "ckey"; str_col "name"; str_col "region" ])
  in
  let _ =
    Database.create_table db ~name:"lineitem"
      (Roll_relation.Schema.make [ int_col "okey"; int_col "qty" ])
  in
  match Roll_dsl.Sql.parse_view db ~name:"cli_view" sql with
  | view ->
      Format.printf "%a@." C.View.pp view;
      Format.printf "output schema: %a@." Roll_relation.Schema.pp
        (C.View.output_schema view)
  | exception Roll_dsl.Sql.Parse_error msg ->
      Printf.eprintf "parse error: %s\n" msg;
      exit 1

let parse_term =
  let sql = Arg.(required & pos 0 (some string) None & info [] ~docv:"SQL") in
  Term.(const (fun () q -> parse_cmd q) $ verbose_term $ sql)

let () =
  let info name doc = Cmd.info name ~doc in
  let cmds =
    [
      Cmd.v (info "run" "run a workload under view maintenance and report statistics") run_term;
      Cmd.v (info "coverage" "render the propagation-plane coverage of a rolling run (Figures 6-9)") coverage_term;
      Cmd.v
        (info "parse"
           "parse a view definition against the demo catalog (orders, customer, lineitem)")
        parse_term;
      Cmd.v (info "status" "run a two-view maintenance service and print its control-table status") status_term;
      Cmd.v
        (info "schedule"
           "show the maintenance scheduler's work queue, scores and counters")
        schedule_term;
      Cmd.v (info "explain" "show executor plans for base and propagation queries") explain_term;
      Cmd.v
        (info "trace"
           "run an observed star maintenance drain and write a Chrome trace-event JSON file")
        trace_term;
      Cmd.v
        (info "metrics"
           "run an observed star maintenance drain and print Prometheus text metrics")
        metrics_term;
    ]
  in
  let group =
    Cmd.group
      (Cmd.info "rollctl" ~version:"1.0.0"
         ~doc:"asynchronous incremental view maintenance (rolling join propagation)")
      cmds
  in
  exit (Cmd.eval group)
