open Roll_relation
module Time = Roll_delta.Time
module Delta = Roll_delta.Delta
module History = Roll_storage.History

let join_all view relations =
  let n = View.n_sources view in
  if Array.length relations <> n then invalid_arg "Oracle.join_all: arity";
  let out = Relation.create (View.output_schema view) in
  let sources =
    Array.mapi
      (fun i r -> Exec.source_of_relation ~name:(View.alias view i) r)
      relations
  in
  let infos = Array.map (fun (s : Exec.source) -> s.Exec.info) sources in
  let plan = Planner.plan (View.predicate view) infos in
  let (_ : Exec.report) =
    Exec.run ~rule:`Min ~sources ~plan
      ~emit:(fun bindings count _ts ->
        Relation.add out (View.project_bindings view bindings) count)
      ()
  in
  out

let view_at history view time =
  let states =
    Array.init (View.n_sources view) (fun i ->
        History.state_at history ~table:(View.source_table view i) time)
  in
  join_all view states

let check_at history view delta ~lo b =
  let expected = view_at history view b in
  let actual = view_at history view lo in
  Delta.apply_window delta ~lo ~hi:b actual;
  if Relation.equal expected actual then Ok ()
  else
    Error
      (Format.asprintf
         "@[<v>timed-delta violation at t=%d:@,expected:@,%a@,got:@,%a@]" b
         Relation.pp expected Relation.pp actual)

let check_timed_view_delta_sampled ~sample history view delta ~lo ~hi =
  let rec loop b =
    if b > hi then Ok ()
    else if b = hi || sample b then
      match check_at history view delta ~lo b with
      | Ok () -> loop (b + 1)
      | Error _ as e -> e
    else loop (b + 1)
  in
  loop (lo + 1)

let check_timed_view_delta history view delta ~lo ~hi =
  check_timed_view_delta_sampled ~sample:(fun _ -> true) history view delta ~lo
    ~hi
