open Roll_relation
module Time = Roll_delta.Time
module Delta = Roll_delta.Delta

module H = Hashtbl.Make (struct
  type t = Tuple.t

  let equal = Tuple.equal
  let hash = Tuple.hash
end)

module ValueMap = Map.Make (struct
  type t = Value.t

  let compare = Value.compare
end)

type spec = {
  group_by : int list;
  sums : int list;
  mins : int list;
  maxs : int list;
}

let simple ~group_by ~sums = { group_by; sums; mins = []; maxs = [] }

(* A value multiset supports exact MIN/MAX maintenance under deletion. *)
type group = {
  mutable count : int;
  sums : int array;
  minsets : int ValueMap.t array;
  maxsets : int ValueMap.t array;
}

type t = {
  spec : spec;
  output_schema : Schema.t;
  delta : Delta.t;
  groups : group H.t;
  mutable as_of : Time.t;
}

let create (ctx : Ctx.t) spec ~t_initial =
  let base_schema = View.output_schema ctx.view in
  let arity = Schema.arity base_schema in
  let check_col what i =
    if i < 0 || i >= arity then
      invalid_arg (Printf.sprintf "Aggregate.create: %s column %d out of range" what i)
  in
  List.iter (check_col "group-by") spec.group_by;
  List.iter (check_col "min") spec.mins;
  List.iter (check_col "max") spec.maxs;
  List.iter
    (fun i ->
      check_col "sum" i;
      if (Schema.column base_schema i).ty <> Value.T_int then
        invalid_arg "Aggregate.create: SUM column must be int")
    spec.sums;
  let named prefix i =
    { Schema.name = prefix ^ "_" ^ (Schema.column base_schema i).name;
      ty = (Schema.column base_schema i).ty }
  in
  let cols =
    List.map (fun i -> Schema.column base_schema i) spec.group_by
    @ [ { Schema.name = "count"; ty = Value.T_int } ]
    @ List.map (fun i -> { (named "sum" i) with ty = Value.T_int }) spec.sums
    @ List.map (named "min") spec.mins
    @ List.map (named "max") spec.maxs
  in
  {
    spec;
    output_schema = Schema.make cols;
    delta = ctx.out;
    groups = H.create 64;
    as_of = t_initial;
  }

let output_schema t = t.output_schema

let as_of t = t.as_of

let multiset_add set value n =
  ValueMap.update value
    (function
      | None -> if n = 0 then None else Some n
      | Some m -> if m + n = 0 then None else Some (m + n))
    set

let group_is_empty g =
  g.count = 0
  && Array.for_all (fun s -> s = 0) g.sums
  && Array.for_all ValueMap.is_empty g.minsets
  && Array.for_all ValueMap.is_empty g.maxsets

let apply_change t tuple count =
  let key = Tuple.project tuple t.spec.group_by in
  let group =
    match H.find_opt t.groups key with
    | Some g -> g
    | None ->
        let g =
          {
            count = 0;
            sums = Array.make (List.length t.spec.sums) 0;
            minsets = Array.make (List.length t.spec.mins) ValueMap.empty;
            maxsets = Array.make (List.length t.spec.maxs) ValueMap.empty;
          }
        in
        H.add t.groups key g;
        g
  in
  group.count <- group.count + count;
  List.iteri
    (fun k col ->
      match Tuple.get tuple col with
      | Value.Int v -> group.sums.(k) <- group.sums.(k) + (count * v)
      | _ -> ())
    t.spec.sums;
  List.iteri
    (fun k col ->
      group.minsets.(k) <- multiset_add group.minsets.(k) (Tuple.get tuple col) count)
    t.spec.mins;
  List.iteri
    (fun k col ->
      group.maxsets.(k) <- multiset_add group.maxsets.(k) (Tuple.get tuple col) count)
    t.spec.maxs;
  if group_is_empty group then H.remove t.groups key

let roll_to t ~hwm target =
  if target < t.as_of then invalid_arg "Aggregate.roll_to: target is behind";
  if target > hwm then invalid_arg "Aggregate.roll_to: target beyond high-water mark";
  Cursor.iter
    (fun (r : Cursor.row) -> apply_change t r.tuple r.count)
    (Delta.window_cursor t.delta ~lo:t.as_of ~hi:target);
  t.as_of <- target

let min_of set = match ValueMap.min_binding_opt set with Some (v, _) -> v | None -> Value.Null

let max_of set = match ValueMap.max_binding_opt set with Some (v, _) -> v | None -> Value.Null

let contents t =
  let r = Relation.create t.output_schema in
  H.iter
    (fun key group ->
      if group.count <> 0 then
        Relation.add r
          (Array.concat
             [
               key;
               [| Value.Int group.count |];
               Array.map (fun s -> Value.Int s) group.sums;
               Array.map min_of group.minsets;
               Array.map max_of group.maxsets;
             ])
          1)
    t.groups;
  r

let group_count t key =
  match H.find_opt t.groups key with Some g -> g.count | None -> 0

let group_sum t key i =
  match H.find_opt t.groups key with Some g -> g.sums.(i) | None -> 0

let group_min t key i =
  match H.find_opt t.groups key with
  | Some g when g.count <> 0 -> Some (min_of g.minsets.(i))
  | _ -> None

let group_max t key i =
  match H.find_opt t.groups key with
  | Some g when g.count <> 0 -> Some (max_of g.maxsets.(i))
  | _ -> None

let average t key i =
  match H.find_opt t.groups key with
  | Some g when g.count <> 0 -> Some (float_of_int g.sums.(i) /. float_of_int g.count)
  | _ -> None
