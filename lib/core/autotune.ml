module Database = Roll_storage.Database
module Capture = Roll_capture.Capture
module Delta = Roll_delta.Delta

type t = {
  ctx : Ctx.t;
  target_rows : int;
  min_interval : int;
  max_interval : int;
}

let create ?(min_interval = 1) ?(max_interval = 10_000) ~target_rows ctx =
  if target_rows <= 0 then invalid_arg "Autotune.create: target_rows";
  if min_interval <= 0 || max_interval < min_interval then
    invalid_arg "Autotune.create: bad interval bounds";
  { ctx; target_rows; min_interval; max_interval }

let density t i =
  let table = View.source_table t.ctx.Ctx.view i in
  let delta = Capture.delta t.ctx.Ctx.capture ~table in
  let span = Capture.hwm t.ctx.Ctx.capture in
  if span <= 0 then 0.0 else float_of_int (Delta.length delta) /. float_of_int span

let interval_for t i =
  if t.ctx.Ctx.auto_capture then Capture.advance t.ctx.Ctx.capture;
  let span = Capture.hwm t.ctx.Ctx.capture in
  if span <= 0 then
    (* Cold start: nothing has been observed yet, so the relation's rate is
       unknown. Step cautiously at the minimum interval rather than taking a
       maximal bite — a hot relation's first window at max_interval could
       dwarf the row budget. *)
    t.min_interval
  else
    let d = density t i in
    if d <= 0.0 then
      (* A genuinely quiet relation: observed for [span] commits with no
         captured changes. Sweep it in maximal strides. *)
      t.max_interval
    else
      let ideal = int_of_float (float_of_int t.target_rows /. d) in
      max t.min_interval (min t.max_interval ideal)

let policy t i = interval_for t i
