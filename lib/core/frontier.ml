module Time = Roll_delta.Time
module Wal = Roll_storage.Wal

type t = {
  view : string;
  tfwd : Time.t array;
  tcomp : Time.t array;
  hwm : Time.t;
  as_of : Time.t;
}

let prefix = "!frontier "

let encode_vector v =
  String.concat "," (Array.to_list (Array.map string_of_int v))

let decode_vector s =
  try Array.of_list (List.map int_of_string (String.split_on_char ',' s))
  with Failure _ -> invalid_arg ("Frontier: bad vector: " ^ s)

let to_tag t =
  Printf.sprintf "%s%S hwm=%d as_of=%d fwd=%s comp=%s" prefix t.view t.hwm
    t.as_of (encode_vector t.tfwd) (encode_vector t.tcomp)

let is_prefix s =
  String.length s >= String.length prefix
  && String.sub s 0 (String.length prefix) = prefix

let of_tag tag =
  if not (is_prefix tag) then None
  else
    try
      Scanf.sscanf tag "!frontier %S hwm=%d as_of=%d fwd=%s comp=%s"
        (fun view hwm as_of fwd comp ->
          Some
            {
              view;
              hwm;
              as_of;
              tfwd = decode_vector fwd;
              tcomp = decode_vector comp;
            })
    with Scanf.Scan_failure _ | Failure _ | End_of_file | Invalid_argument _ ->
      None

let of_record (record : Wal.record) ~view =
  match record.marker with
  | None -> None
  | Some tag -> (
      match of_tag tag with
      | Some f when String.equal f.view view -> Some f
      | Some _ | None -> None)

let latest wal ~view =
  let rec scan i =
    if i < 0 then None
    else
      match of_record (Wal.get wal i) ~view with
      | Some f -> Some f
      | None -> scan (i - 1)
  in
  scan (Wal.length wal - 1)

let history wal ~view =
  let acc = ref [] in
  Wal.iter_from wal ~pos:0 (fun record ->
      match of_record record ~view with
      | Some f -> acc := f :: !acc
      | None -> ());
  List.rev !acc
