open Roll_relation
module Time = Roll_delta.Time
module Delta = Roll_delta.Delta
module Wal_codec = Roll_storage.Wal_codec

exception Corrupt = Wal_codec.Corrupt

let magic = "ROLLCKPT 1"

type t = {
  view_name : string;
  t_initial : Time.t;
  hwm : Time.t;
  as_of : Time.t;
}

(* Rows of a fixed arity: "D <count> <ts>" (delta) or "S <count>" (stored
   contents), each followed by arity "V <value>" lines. *)

let write_tuple out tuple =
  Array.iter
    (fun v ->
      let buf = Buffer.create 16 in
      Buffer.add_string buf "V ";
      Wal_codec.encode_value buf v "\n";
      output_string out (Buffer.contents buf))
    tuple

let save_body (ctx : Ctx.t) ~hwm ~apply path =
  let out = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out out)
    (fun () ->
      let view = ctx.Ctx.view in
      let arity = Schema.arity (View.output_schema view) in
      let t_initial = match Delta.min_ts ctx.Ctx.out with
        | Some ts -> min (ts - 1) (Apply.as_of apply)
        | None -> Apply.as_of apply
      in
      Roll_util.Fault.hit ctx.Ctx.fault "ckpt.header";
      Printf.fprintf out "%s\n" magic;
      Printf.fprintf out "H %S %d %d %d %d\n" (View.name view) t_initial hwm
        (Apply.as_of apply) arity;
      let rows = ref 0 in
      Delta.window_iter ctx.Ctx.out ~lo:min_int ~hi:hwm (fun (row : Delta.row) ->
          Roll_util.Fault.hit ctx.Ctx.fault "ckpt.row";
          incr rows;
          Printf.fprintf out "D %d %d\n" row.count row.ts;
          write_tuple out row.tuple);
      Relation.iter
        (fun tuple count ->
          Roll_util.Fault.hit ctx.Ctx.fault "ckpt.row";
          incr rows;
          Printf.fprintf out "S %d\n" count;
          write_tuple out tuple)
        (Apply.contents apply);
      (* Trailer with the row count: a checkpoint truncated at a row
         boundary would otherwise parse as a complete, silently smaller
         snapshot. *)
      Printf.fprintf out "E %d\n" !rows;
      !rows)

let save (ctx : Ctx.t) ~hwm ~apply path =
  if Apply.as_of apply > hwm then
    invalid_arg "Checkpoint.save: apply is ahead of the high-water mark";
  if Roll_obs.Obs.tracing ctx.Ctx.obs then
    Roll_obs.Trace.with_span
      (Roll_obs.Obs.trace ctx.Ctx.obs)
      ~attrs:
        [
          ("hwm", Roll_obs.Trace.Int hwm);
          ("as_of", Roll_obs.Trace.Int (Apply.as_of apply));
        ]
      "checkpoint.write"
      (fun () ->
        let rows = save_body ctx ~hwm ~apply path in
        Roll_obs.Trace.add_attr
          (Roll_obs.Obs.trace ctx.Ctx.obs)
          "rows" (Roll_obs.Trace.Int rows))
  else ignore (save_body ctx ~hwm ~apply path)

type reader = { input : in_channel; mutable line_no : int }

let next_line reader =
  match input_line reader.input with
  | line ->
      reader.line_no <- reader.line_no + 1;
      Some line
  | exception End_of_file -> None

let corrupt reader msg =
  raise (Corrupt (Printf.sprintf "checkpoint line %d: %s" reader.line_no msg))

let read_header reader =
  (match next_line reader with
  | Some line when line = magic -> ()
  | Some line -> corrupt reader ("bad header: " ^ line)
  | None -> corrupt reader "empty file");
  match next_line reader with
  | Some line -> (
      try
        Scanf.sscanf line "H %S %d %d %d %d" (fun name t_initial hwm as_of arity ->
            ({ view_name = name; t_initial; hwm; as_of }, arity))
      with Scanf.Scan_failure _ | End_of_file -> corrupt reader "bad H line")
  | None -> corrupt reader "missing H line"

let read_tuple reader arity =
  Array.init arity (fun _ ->
      match next_line reader with
      | Some line when String.length line > 2 && String.sub line 0 2 = "V " -> (
          try Wal_codec.decode_value (String.sub line 2 (String.length line - 2))
          with Corrupt msg -> corrupt reader msg)
      | Some line -> corrupt reader ("expected value, got: " ^ line)
      | None -> corrupt reader "truncated tuple")

let peek path =
  let input = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in input)
    (fun () -> fst (read_header { input; line_no = 0 }))

let resume db capture view path =
  let input = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in input)
    (fun () ->
      let reader = { input; line_no = 0 } in
      let header, arity = read_header reader in
      if not (String.equal header.view_name (View.name view)) then
        invalid_arg
          (Printf.sprintf "Checkpoint.resume: checkpoint is for view %s, not %s"
             header.view_name (View.name view));
      if arity <> Schema.arity (View.output_schema view) then
        invalid_arg "Checkpoint.resume: output schema arity mismatch";
      let ctx = Ctx.create ~t_initial:header.t_initial db capture view in
      let contents = Relation.create (View.output_schema view) in
      let rows = ref 0 in
      let rec read_rows () =
        match next_line reader with
        | None -> corrupt reader "missing trailer (torn checkpoint)"
        | Some line when String.length line > 2 && String.sub line 0 2 = "D " ->
            let count, ts =
              try Scanf.sscanf line "D %d %d" (fun c t -> (c, t))
              with Scanf.Scan_failure _ | End_of_file -> corrupt reader "bad D line"
            in
            Delta.append ctx.Ctx.out (read_tuple reader arity) ~count ~ts;
            incr rows;
            read_rows ()
        | Some line when String.length line > 2 && String.sub line 0 2 = "S " ->
            let count =
              try Scanf.sscanf line "S %d" (fun c -> c)
              with Scanf.Scan_failure _ | End_of_file -> corrupt reader "bad S line"
            in
            Relation.add contents (read_tuple reader arity) count;
            incr rows;
            read_rows ()
        | Some line when String.length line >= 2 && String.sub line 0 2 = "E " ->
            let expected =
              try Scanf.sscanf line "E %d" (fun n -> n)
              with Scanf.Scan_failure _ | End_of_file -> corrupt reader "bad trailer"
            in
            if expected <> !rows then
              corrupt reader
                (Printf.sprintf "trailer claims %d rows, read %d" expected !rows);
            if next_line reader <> None then
              corrupt reader "data after trailer"
        | Some line -> corrupt reader ("unexpected line: " ^ line)
      in
      read_rows ();
      let apply = Apply.create_restored ctx ~contents ~as_of:header.as_of in
      let rolling = Rolling.create ctx ~t_initial:header.hwm in
      (ctx, apply, rolling))
