(* Space-saving sketch + hysteresis classifier (see partition.mli).

   The sketch is the classic Metwally/Agrawal/El Abbadi "space-saving"
   structure: at most [capacity] (key, count, error) counters. A tracked
   key's observation bumps its counter exactly; an untracked key entering a
   full sketch evicts the minimum counter and starts at [min + count] with
   [error = min], so estimates only ever overestimate, by at most the
   minimum counter — itself bounded by [total / capacity]. That bound is
   what makes share thresholds at or above [1 / capacity] meaningful. *)

type counter = { mutable count : int; mutable err : int }

type t = {
  capacity : int;
  enter : float;
  exit_ : float;
  counters : (int, counter) Hashtbl.t;
  heavy : (int, unit) Hashtbl.t;
  mutable total : int;
}

let create ?(capacity = 64) ?enter ?exit_ () =
  if capacity <= 0 then invalid_arg "Partition.create: capacity";
  let enter =
    match enter with Some e -> e | None -> 2.0 /. float_of_int capacity
  in
  let exit_ =
    match exit_ with Some e -> e | None -> 1.0 /. float_of_int capacity
  in
  if not (0.0 < exit_ && exit_ <= enter && enter <= 1.0) then
    invalid_arg "Partition.create: need 0 < exit_ <= enter <= 1";
  {
    capacity;
    enter;
    exit_;
    counters = Hashtbl.create capacity;
    heavy = Hashtbl.create 8;
    total = 0;
  }

let capacity t = t.capacity

let total t = t.total

let occupancy t = Hashtbl.length t.counters

let evict_min t =
  let victim = ref None in
  Hashtbl.iter
    (fun k (c : counter) ->
      match !victim with
      | Some (_, m) when m.count <= c.count -> ()
      | _ -> victim := Some (k, c))
    t.counters;
  match !victim with
  | None -> 0
  | Some (k, c) ->
      Hashtbl.remove t.counters k;
      c.count

let observe t key ~count =
  if count > 0 then begin
    t.total <- t.total + count;
    match Hashtbl.find_opt t.counters key with
    | Some c -> c.count <- c.count + count
    | None ->
        if Hashtbl.length t.counters >= t.capacity then begin
          let floor = evict_min t in
          Hashtbl.replace t.counters key
            { count = floor + count; err = floor }
        end
        else Hashtbl.replace t.counters key { count; err = 0 }
  end

let estimate t key =
  match Hashtbl.find_opt t.counters key with Some c -> c.count | None -> 0

let error t key =
  match Hashtbl.find_opt t.counters key with Some c -> c.err | None -> 0

let is_heavy t key = Hashtbl.mem t.heavy key

let force_heavy t key = Hashtbl.replace t.heavy key ()

let by_count_desc t keys =
  List.sort
    (fun a b ->
      match Int.compare (estimate t b) (estimate t a) with
      | 0 -> Int.compare a b
      | c -> c)
    keys

let heavy_keys t =
  by_count_desc t (Hashtbl.fold (fun k () acc -> k :: acc) t.heavy [])

let rebalance ?(max_heavy = max_int) t =
  if max_heavy <= 0 then invalid_arg "Partition.rebalance: max_heavy";
  let share count =
    if t.total = 0 then 0.0 else float_of_int count /. float_of_int t.total
  in
  (* Candidate set under hysteresis: everything tracked at or above the
     enter share, plus current members still at or above the exit share.
     A key whose counter was evicted from the sketch estimates to 0 —
     below any exit threshold — so it leaves the heavy set naturally. *)
  let wanted =
    Hashtbl.fold
      (fun k (c : counter) acc ->
        let s = share c.count in
        if s >= t.enter || (Hashtbl.mem t.heavy k && s >= t.exit_) then
          k :: acc
        else acc)
      t.counters []
  in
  let wanted =
    let ranked = by_count_desc t wanted in
    if List.length ranked <= max_heavy then ranked
    else List.filteri (fun i _ -> i < max_heavy) ranked
  in
  let promoted =
    List.filter (fun k -> not (Hashtbl.mem t.heavy k)) wanted
  in
  let demoted =
    Hashtbl.fold
      (fun k () acc -> if List.mem k wanted then acc else k :: acc)
      t.heavy []
  in
  List.iter (fun k -> Hashtbl.replace t.heavy k ()) promoted;
  List.iter (fun k -> Hashtbl.remove t.heavy k) demoted;
  (promoted, List.sort Int.compare demoted)
