module Time = Roll_delta.Time
module Delta = Roll_delta.Delta
module Database = Roll_storage.Database
module History = Roll_storage.History
module Capture = Roll_capture.Capture
module Uow = Roll_capture.Uow
module Fault = Roll_util.Fault
module Retry = Roll_util.Retry

let log_src = Logs.Src.create "roll.controller" ~doc:"view-maintenance controller"

module Log = (val Logs.src_log log_src)

type algorithm =
  | Uniform of int
  | Rolling of Rolling.policy
  | Deferred of Rolling_deferred.policy
  | Adaptive of int

type process =
  | P_uniform of Propagate.t * int
  | P_rolling of Rolling.t * Rolling.policy
  | P_deferred of Rolling_deferred.t * Rolling_deferred.policy

type t = {
  ctx : Ctx.t;
  apply : Apply.t;
  process : process;
  mutable durable : bool;
  mutable gc_horizon : Time.t;
      (** earliest time a faithful snapshot can still be built: the view's
          materialization time, pushed forward whenever gc prunes applied
          delta rows (reconstructing below the prune point would need the
          rows the prune reclaimed) *)
}

let ctx t = t.ctx

let view t = t.ctx.Ctx.view

let contents t = Apply.contents t.apply

let as_of t = Apply.as_of t.apply

let hwm t =
  match t.process with
  | P_uniform (p, _) -> Propagate.hwm p
  | P_rolling (r, _) -> Rolling.hwm r
  | P_deferred (r, _) -> Rolling_deferred.hwm r

let frontier t =
  let view = View.name t.ctx.Ctx.view in
  let as_of = Apply.as_of t.apply in
  match t.process with
  | P_uniform (p, _) ->
      let h = Propagate.hwm p in
      let n = View.n_sources t.ctx.Ctx.view in
      {
        Frontier.view;
        tfwd = Array.make n h;
        tcomp = Array.make n h;
        hwm = h;
        as_of;
      }
  | P_rolling (r, _) ->
      let tfwd = Rolling.frontiers r in
      {
        Frontier.view;
        tfwd;
        tcomp = Array.copy tfwd;
        hwm = Rolling.hwm r;
        as_of;
      }
  | P_deferred (r, _) ->
      {
        Frontier.view;
        tfwd = Rolling_deferred.frontiers r;
        tcomp = Rolling_deferred.comp_frontiers r;
        hwm = Rolling_deferred.hwm r;
        as_of;
      }

let record_frontier t =
  Fault.hit t.ctx.Ctx.fault "frontier.record";
  ignore
    (Database.commit_marker t.ctx.Ctx.db ~tag:(Frontier.to_tag (frontier t)))

let durable t = t.durable

let set_durable t durable =
  let was = t.durable in
  t.durable <- durable;
  if durable && not was then record_frontier t

let build_join_indexes db view =
  List.iter
    (fun atom ->
      match atom with
      | Roll_relation.Predicate.Join (a, b) ->
          List.iter
            (fun (c : Roll_relation.Predicate.col) ->
              Roll_storage.Table.create_index
                (Database.table db (View.source_table view c.source))
                ~columns:[ c.column ])
            [ a; b ]
      | Roll_relation.Predicate.Cmp _ -> ())
    (View.predicate view)

(* Wiring one observability handle across the whole maintenance stack:
   the context carries it, and the database / capture process report into
   the same registry. *)
let install_obs db capture (ctx : Ctx.t) = function
  | None -> ()
  | Some obs ->
      ctx.Ctx.obs <- obs;
      Database.set_obs db obs;
      Capture.set_obs capture obs

let create ?(geometry = false) ?(auto_index = false) ?(durable = false) ?obs db
    capture view ~algorithm =
  if auto_index then build_join_indexes db view;
  let ctx = Ctx.create db capture view in
  install_obs db capture ctx obs;
  let apply = Apply.create_materialized ctx in
  let t_initial = Apply.as_of apply in
  (* The geometry trace's origin must match the maintenance start time,
     which is only known after materialization. *)
  if geometry then
    ctx.Ctx.geometry <-
      Some (Geometry.create ~n:(View.n_sources view) ~origin:t_initial);
  let process =
    match algorithm with
    | Uniform interval -> P_uniform (Propagate.create ctx ~t_initial, interval)
    | Rolling policy -> P_rolling (Rolling.create ctx ~t_initial, policy)
    | Deferred policy ->
        P_deferred (Rolling_deferred.create ctx ~t_initial, policy)
    | Adaptive target_rows ->
        let tuner = Autotune.create ~target_rows ctx in
        P_rolling (Rolling.create ctx ~t_initial, Autotune.policy tuner)
  in
  let t =
    { ctx; apply; process; durable = false; gc_horizon = Apply.as_of apply }
  in
  if durable then set_durable t true;
  t

let propagate_step_body t =
  let db = t.ctx.Ctx.db in
  let before = Database.now db in
  let advanced =
    match t.process with
    | P_uniform (p, interval) -> (
        match Propagate.step p ~interval with
        | `Advanced _ -> true
        | `Idle -> false)
    | P_rolling (r, policy) -> (
        match Rolling.step r ~policy with `Advanced _ -> true | `Idle -> false)
    | P_deferred (r, policy) -> (
        match Rolling_deferred.step r ~policy with
        | `Advanced _ -> true
        | `Idle -> false)
  in
  (* Quiet-window steps commit nothing, and recording a marker for them
     would advance the clock, leaving the propagator forever chasing its
     own frontier markers. A quiet advance lost to a crash replays
     deterministically (the window is still provably empty on restart), so
     only steps that committed work need to be made durable. *)
  if advanced && t.durable && Database.now db > before then record_frontier t;
  advanced

let propagate_step t =
  if Roll_obs.Obs.tracing t.ctx.Ctx.obs then begin
    let trace = Roll_obs.Obs.trace t.ctx.Ctx.obs in
    Roll_obs.Trace.with_span trace
      ~attrs:[ ("view", Roll_obs.Trace.Str (View.name t.ctx.Ctx.view)) ]
      "propagate.step"
      (fun () ->
        let advanced = propagate_step_body t in
        Roll_obs.Trace.add_attr trace "advanced" (Roll_obs.Trace.Bool advanced);
        advanced)
  end
  else propagate_step_body t

let propagate_until t target =
  if t.durable then begin
    (* Loop through [propagate_step] so every advancing step records its
       frontier; the processes' own [run_until] would bypass recording. *)
    if target > Database.now t.ctx.Ctx.db then
      invalid_arg "Controller.propagate_until: target in the future";
    let continue = ref (hwm t < target) in
    while !continue do
      let advanced = propagate_step t in
      if not (advanced || hwm t >= target) then
        invalid_arg "Controller.propagate_until: unreachable target";
      continue := advanced && hwm t < target
    done
  end
  else
    match t.process with
    | P_uniform (p, interval) -> Propagate.run_until p ~target ~interval
    | P_rolling (r, policy) -> Rolling.run_until r ~target ~policy
    | P_deferred (r, policy) -> Rolling_deferred.run_until r ~target ~policy

let refresh_to t target =
  let before_as_of = Apply.as_of t.apply in
  if target > hwm t then propagate_until t target;
  Apply.roll_to t.apply ~hwm:(hwm t) target;
  (* The apply position is part of the durable control state: recovery
     rolls the restored view forward to the recorded [as_of]. *)
  if t.durable && Apply.as_of t.apply <> before_as_of then record_frontier t;
  Log.info (fun m ->
      m "view %s refreshed to t=%d (hwm=%d)" (View.name t.ctx.Ctx.view) target
        (hwm t))

let refresh_to_wall t wall =
  Capture.advance t.ctx.Ctx.capture;
  let target = Uow.csn_at_wall (Capture.uow t.ctx.Ctx.capture) wall in
  let target = Time.max target (as_of t) in
  refresh_to t target;
  target

let refresh_latest t =
  let target = Database.now t.ctx.Ctx.db in
  refresh_to t target;
  target

let gc t =
  let pruned = Apply.prune_applied t.apply in
  (* Only an actual reclaim moves the horizon: pruning zero rows proves
     the delta held nothing at or before the apply position, so older
     snapshots are still reconstructible. *)
  if pruned > 0 then t.gc_horizon <- Time.max t.gc_horizon (as_of t);
  pruned

let horizon t = t.gc_horizon

(* Point-in-time snapshot of the view as of [time]: the stored contents
   rolled forward (or backward) through the timed view delta. Callers must
   keep [gc_horizon <= time <= hwm] — below the horizon the delta rows
   needed to rewind were reclaimed, above the hwm they do not exist yet. *)
let view_at t time =
  if time < t.gc_horizon then
    invalid_arg
      (Printf.sprintf "Controller.view_at: time %d below gc horizon %d" time
         t.gc_horizon);
  Apply.view_at t.apply ~hwm:(hwm t) time

let stats t = t.ctx.Ctx.stats

(* Window alignment snaps step targets to the propagation-interval grid so
   sibling views maintained with the same intervals produce identical delta
   windows — the precondition for the service's cross-view delta memo to
   hit. Deferred processes keep their literal Figure 10 pacing. *)
let window_alignment t =
  match t.process with
  | P_uniform (p, _) -> Propagate.align p
  | P_rolling (r, _) -> Rolling.align r
  | P_deferred _ -> false

let set_window_alignment t aligned =
  match t.process with
  | P_uniform (p, _) -> Propagate.set_align p aligned
  | P_rolling (r, _) -> Rolling.set_align r aligned
  | P_deferred _ -> ()

(* ------------------------------------------------------------------ *)
(* Step candidates and cost estimation (scheduler interface)           *)

type candidate = {
  relation : int;
  lo : Time.t;
  hi : Time.t;
  est_rows : int;
  est_cost : float;
}

(* Planner-estimated rows touched by the forward query that windows
   [relation] over (lo, hi]: the delta window drives the join, every other
   source is read as a base table. Built from catalog statistics alone so
   it never touches the capture cursors — estimating a window that is not
   fully captured yet must not raise. *)
let estimate_step_cost t ~relation ~lo ~hi =
  let view = t.ctx.Ctx.view in
  let n = View.n_sources view in
  let infos =
    Array.init n (fun j ->
        let table_name = View.source_table view j in
        if j = relation then
          {
            Planner.name = "\xce\x94" ^ table_name;
            card =
              Delta.window_count
                (Capture.delta t.ctx.Ctx.capture ~table:table_name)
                ~lo ~hi;
            is_delta = true;
            indexed = [];
          }
        else
          let table = Database.table t.ctx.Ctx.db table_name in
          (* A fresh auxiliary would replace this base read with a probe of
             its (smaller) mirror; estimate with the mirror's cardinality so
             the scheduler prices steps the way the executor will run them.
             Index positions stay in base coordinates (what the predicate
             references) — close enough for a cost model. *)
          let card =
            match
              match t.ctx.Ctx.aux with
              | Some f -> f ~peek:true j
              | None -> None
            with
            | Some (a : Ctx.aux_source) ->
                Roll_storage.Table.distinct_count a.Ctx.table
            | None -> (
                (* No auxiliary: a fresh heavy-light partition would read
                   the union of its part mirrors instead. *)
                match
                  match t.ctx.Ctx.hot with
                  | Some f -> f ~peek:true j
                  | None -> None
                with
                | Some (h : Ctx.hot_source) ->
                    List.fold_left
                      (fun n p -> n + Roll_storage.Table.distinct_count p)
                      0 h.Ctx.parts
                | None -> Roll_storage.Table.distinct_count table)
          in
          {
            Planner.name = table_name;
            card;
            is_delta = false;
            indexed = Roll_storage.Table.indexed_columns table;
          })
  in
  let plan = Planner.plan (View.predicate view) infos in
  let rows =
    List.fold_left
      (fun acc (s : Planner.step) -> acc +. s.Planner.est_in)
      0. plan.Planner.steps
  in
  (* On a paged store, base-table reads that miss the block cache cost a
     disk fetch; weight the estimate by the observed miss rate so the
     scheduler favours windows whose working set is resident. *)
  rows *. Database.cold_read_factor t.ctx.Ctx.db

let candidate t i ~start ~interval ~now =
  (* Mirror the step functions' own target computation (including grid
     alignment) so schedulers see the exact window the step would run. *)
  let hi = Rolling.window_hi ~align:(window_alignment t) ~start ~interval ~now in
  let table = View.source_table t.ctx.Ctx.view i in
  let est_rows =
    Delta.window_count (Capture.delta t.ctx.Ctx.capture ~table) ~lo:start ~hi
  in
  (* An empty window is a quiet advance: no query runs, no rows move. *)
  let est_cost =
    if est_rows = 0 then 0.
    else estimate_step_cost t ~relation:i ~lo:start ~hi
  in
  { relation = i; lo = start; hi; est_rows; est_cost }

let rolling_candidates t frontiers ~policy ~now =
  let n = Array.length frontiers in
  List.init n Fun.id
  |> List.filter (fun i -> frontiers.(i) < now)
  (* Stable sort on the frontier alone: ties keep the lower relation index
     first, matching the strict-minimum choice the step functions make. *)
  |> List.stable_sort (fun a b -> Time.compare frontiers.(a) frontiers.(b))
  |> List.map (fun i -> candidate t i ~start:frontiers.(i) ~interval:(policy i) ~now)

let step_candidates t =
  let now = Database.now t.ctx.Ctx.db in
  match t.process with
  | P_uniform (p, interval) ->
      let start = Propagate.hwm p in
      if start >= now then []
      else
        (* One uniform step propagates every relation's window at once:
           fold the per-relation candidates into a single item driven by
           the busiest relation. *)
        let n = View.n_sources t.ctx.Ctx.view in
        let per = List.init n (fun i -> candidate t i ~start ~interval ~now) in
        let driving =
          List.fold_left
            (fun best c -> if c.est_rows > best.est_rows then c else best)
            (List.hd per) per
        in
        [
          {
            driving with
            est_rows = List.fold_left (fun a c -> a + c.est_rows) 0 per;
            est_cost = List.fold_left (fun a c -> a +. c.est_cost) 0. per;
          };
        ]
  | P_rolling (r, policy) -> rolling_candidates t (Rolling.frontiers r) ~policy ~now
  | P_deferred (r, policy) ->
      rolling_candidates t (Rolling_deferred.frontiers r) ~policy ~now

(* Checkpointing is a durability event: record the frontier first so the
   WAL's latest marker is always at least as fresh as any snapshot.
   Without this, quiet-window advances (never recorded as markers) could
   be captured by a snapshot and recovery would land beyond the last
   marker. *)
let checkpoint t path =
  if t.durable then record_frontier t;
  (* On a paged store, push the data file to a consistent on-disk snapshot
     (WAL fsync, dirty-page write-back, meta flip) before the text
     snapshot: recovery from [path] then resumes against a store that is
     at least as fresh as the frontier just recorded. *)
  Database.sync t.ctx.Ctx.db;
  Checkpoint.save t.ctx ~hwm:(hwm t) ~apply:t.apply path

(* ------------------------------------------------------------------ *)
(* Reliable stepping                                                   *)

let propagate_step_reliable t ~retry ~sleep =
  let stats = t.ctx.Ctx.stats in
  let mark = Delta.length t.ctx.Ctx.out in
  let memo_mark = Memo.mark t.ctx.Ctx.memo in
  let retried = ref false in
  let rollback () =
    Delta.truncate t.ctx.Ctx.out mark;
    (* Memo entries filled by the aborted attempt hold slices of the rows
       the truncate just dropped; served to a sibling view (or to this
       view's re-run) they would replay a transaction that never committed.
       Maintenance is single-threaded, so everything memoized past the mark
       belongs to the failed step. *)
    Memo.evict_since t.ctx.Ctx.memo memo_mark
  in
  let result =
    Retry.run retry ~sleep
      ~on_retry:(fun ~attempt:_ ~delay:_ ->
        retried := true;
        Stats.incr_retries stats;
        (* Abort the failed attempt's transaction: drop the partial brick
           it emitted, so the re-run starts from a clean view delta. The
           process frontiers are untouched — every injection point in
           [Propagate] and [Rolling] fires before the frontier advances. *)
        rollback ())
      (fun () -> propagate_step t)
  in
  match result with
  | Ok advanced ->
      if !retried then Stats.incr_recoveries stats;
      Ok advanced
  | Error failure ->
      rollback ();
      Stats.incr_aborts stats;
      Log.err (fun m ->
          m "view %s: propagation step aborted at %s (hit %d) after %d attempts"
            (View.name t.ctx.Ctx.view) failure.Retry.point failure.Retry.hit
            failure.Retry.attempts);
      Error failure

(* ------------------------------------------------------------------ *)
(* Window stepping (parallel waves)                                    *)

(* Only rolling processes (including Adaptive, which is a policy over
   P_rolling) decompose into per-relation window steps with explicit
   bounds; Uniform and Deferred keep their own pacing and stay on the
   serial path. *)
let supports_window_step t =
  match t.process with
  | P_rolling _ -> true
  | P_uniform _ | P_deferred _ -> false

let rolling_exn t =
  match t.process with
  | P_rolling (r, _) -> r
  | P_uniform _ | P_deferred _ ->
      invalid_arg "Controller: window steps require a rolling process"

let step_window_body t ~relation ~hi ~frozen =
  let ctx = t.ctx in
  let r = rolling_exn t in
  let queries_before = Stats.queries ctx.Ctx.stats in
  ctx.Ctx.frozen_exec <- Some frozen;
  let advanced =
    Fun.protect
      ~finally:(fun () -> ctx.Ctx.frozen_exec <- None)
      (fun () ->
        match Rolling.step_window r relation ~hi with
        | `Advanced _ -> true
        | `Idle -> false)
  in
  (* Whether the step physically ran a query (vs. a quiet-window advance):
     the frozen-mode analogue of the serial path's "did the database clock
     move" test, which is meaningless here because frozen steps never
     commit markers. *)
  let executed = Stats.queries ctx.Ctx.stats > queries_before in
  (advanced, executed)

let step_window t ~relation ~hi ~frozen =
  if Roll_obs.Obs.tracing t.ctx.Ctx.obs then begin
    let trace = Roll_obs.Obs.trace t.ctx.Ctx.obs in
    Roll_obs.Trace.with_span trace
      ~attrs:[ ("view", Roll_obs.Trace.Str (View.name t.ctx.Ctx.view)) ]
      "propagate.step"
      (fun () ->
        let ((advanced, _) as res) = step_window_body t ~relation ~hi ~frozen in
        Roll_obs.Trace.add_attr trace "advanced" (Roll_obs.Trace.Bool advanced);
        res)
  end
  else step_window_body t ~relation ~hi ~frozen

let step_window_reliable t ~relation ~hi ~frozen ~retry ~sleep =
  let stats = t.ctx.Ctx.stats in
  let mark = Delta.length t.ctx.Ctx.out in
  let memo_mark = Memo.mark t.ctx.Ctx.memo in
  let retried = ref false in
  let rollback () =
    Delta.truncate t.ctx.Ctx.out mark;
    (* Owner-scoped eviction: sibling wave items may be filling the memo
       concurrently, and their entries past the mark are valid — only this
       step's own fills replay rows the truncate just dropped. Fault
       injection fires before the frontier advances, so [tfwd] needs no
       restore here (the post-success undo path is {!undo_window}). *)
    Memo.evict_since ~owner:t.ctx.Ctx.memo_owner t.ctx.Ctx.memo memo_mark
  in
  let result =
    Retry.run retry ~sleep
      ~on_retry:(fun ~attempt:_ ~delay:_ ->
        retried := true;
        Stats.incr_retries stats;
        rollback ())
      (fun () -> step_window t ~relation ~hi ~frozen)
  in
  match result with
  | Ok _ as ok ->
      if !retried then Stats.incr_recoveries stats;
      ok
  | Error failure ->
      rollback ();
      Stats.incr_aborts stats;
      Log.err (fun m ->
          m "view %s: window step aborted at %s (hit %d) after %d attempts"
            (View.name t.ctx.Ctx.view) failure.Retry.point failure.Retry.hit
            failure.Retry.attempts);
      Error failure

(* Post-join bookkeeping for a wave item that succeeded, run on the drain
   domain in wave order: the frozen-mode counterpart of
   [propagate_step_body]'s marker rule. Quiet advances record no marker
   (they replay deterministically on recovery), mirroring the serial
   "clock did not move" test. *)
let note_step_durable t ~advanced ~executed =
  if advanced && t.durable && executed then record_frontier t

(* Roll back a wave item that completed successfully but must be undone
   because an earlier item of the same wave failed: drop its emitted rows,
   evict its memo fills, and restore its frontier. Runs on the drain
   domain after every worker has joined. *)
let undo_window t ~relation ~lo ~out_mark ~memo_mark ~owner =
  Delta.truncate t.ctx.Ctx.out out_mark;
  Memo.evict_since ~owner t.ctx.Ctx.memo memo_mark;
  Rolling.set_tfwd (rolling_exn t) relation lo

(* ------------------------------------------------------------------ *)
(* Recovery                                                            *)

(* Bring a [Rolling] process from its current frontier vector to [target]
   by replaying the recorded trajectory axis by axis. Each recorded vector
   is a monotone staircase refinement of the previous one, and any schedule
   of [step_relation] calls over the same vectors regenerates an exact
   tiling of the same region — the bricks differ from the original run's,
   but their union (and hence the accumulated delta's net effect) is
   identical. *)
let replay_rolling rolling (target : Time.t array) =
  Array.iteri
    (fun i target_i ->
      let cur = Rolling.tfwd rolling i in
      if target_i > cur then
        match Rolling.step_relation rolling i ~interval:(target_i - cur) with
        | `Advanced _ -> ()
        | `Idle ->
            invalid_arg
              "Controller.recover: recorded frontier beyond restored log")
    target

(* Regenerate the view delta from a rolling process positioned at some
   uniform time up to the recorded frontier, following the recorded
   trajectory so per-relation frontiers land exactly where they were. *)
let regenerate rolling ~(trajectory : Frontier.t list) ~(last : Frontier.t)
    ~uniform_target =
  if uniform_target then begin
    (* Uniform and deferred processes restart from a uniform vector at the
       recovered high-water mark; only replay up to hwm on every axis. *)
    let n = Array.length last.Frontier.tfwd in
    replay_rolling rolling (Array.make n last.Frontier.hwm)
  end
  else begin
    List.iter (fun (f : Frontier.t) -> replay_rolling rolling f.Frontier.tfwd)
      trajectory;
    replay_rolling rolling last.Frontier.tfwd
  end

let recover_body ~geometry ~auto_index ?checkpoint ~obs db capture view
    ~algorithm =
  (* Secondary indexes are in-memory state and die with the process. *)
  if auto_index then build_join_indexes db view;
  let name = View.name view in
  Capture.advance capture;
  let wal = Database.wal db in
  let recorded = Frontier.latest wal ~view:name in
  let trajectory = Frontier.history wal ~view:name in
  (* Checkpoint fast path: resume delta rows and stored contents from the
     snapshot, then roll forward. A torn or damaged checkpoint falls back
     to WAL-only recovery rather than failing the restart. *)
  let resumed =
    match checkpoint with
    | None -> None
    | Some path -> (
        match Checkpoint.resume db capture view path with
        | resumed -> Some resumed
        | exception Roll_storage.Wal_codec.Corrupt reason ->
            Log.warn (fun m ->
                m "view %s: checkpoint %s unusable (%s); recovering from WAL"
                  name path reason);
            None
        | exception Sys_error reason ->
            Log.warn (fun m ->
                m "view %s: checkpoint %s unreadable (%s); recovering from WAL"
                  name path reason);
            None)
  in
  let ctx, apply, rolling =
    match resumed with
    | Some (ctx, apply, rolling) -> (ctx, apply, rolling)
    | None -> (
        (* WAL-only recovery: rebuild V_t0 from the restored history at the
           first recorded frontier time, then regenerate the whole delta by
           replaying the trajectory. *)
        match trajectory with
        | [] ->
            invalid_arg
              (Printf.sprintf
                 "Controller.recover: no durable state for view %s (no \
                  checkpoint, no frontier markers)"
                 name)
        | first :: _ ->
            let t0 = first.Frontier.hwm in
            let ctx = Ctx.create ~t_initial:t0 db capture view in
            let contents = Oracle.view_at (History.create db) view t0 in
            let apply = Apply.create_restored ctx ~contents ~as_of:t0 in
            (ctx, apply, Rolling.create ctx ~t_initial:t0))
  in
  install_obs db capture ctx obs;
  if geometry then
    ctx.Ctx.geometry <-
      Some
        (Geometry.create ~n:(View.n_sources view)
           ~origin:(Rolling.hwm rolling));
  let last =
    match recorded with
    | Some f -> f
    | None ->
        (* Checkpoint but no markers: the durable frontier is the
           checkpoint's own uniform position. *)
        let h = Rolling.hwm rolling in
        {
          Frontier.view = name;
          tfwd = Array.make (View.n_sources view) h;
          tcomp = Array.make (View.n_sources view) h;
          hwm = h;
          as_of = Apply.as_of apply;
        }
  in
  let uniform_target =
    match algorithm with
    | Uniform _ | Deferred _ -> true
    | Rolling _ | Adaptive _ -> false
  in
  (* Only replay trajectory suffix beyond the resume point; earlier
     recorded vectors are already inside the resumed coverage. *)
  let beyond =
    List.filter
      (fun (f : Frontier.t) ->
        let tfwd = f.Frontier.tfwd in
        let any = ref false in
        Array.iteri
          (fun i v -> if v > Rolling.tfwd rolling i then any := true)
          tfwd;
        !any)
      trajectory
  in
  regenerate rolling ~trajectory:beyond ~last ~uniform_target;
  let process =
    match algorithm with
    | Uniform interval ->
        P_uniform (Propagate.create ctx ~t_initial:(Rolling.hwm rolling), interval)
    | Rolling policy -> P_rolling (rolling, policy)
    | Deferred policy ->
        P_deferred
          (Rolling_deferred.create ctx ~t_initial:(Rolling.hwm rolling), policy)
    | Adaptive target_rows ->
        let tuner = Autotune.create ~target_rows ctx in
        P_rolling (rolling, Autotune.policy tuner)
  in
  let t =
    { ctx; apply; process; durable = true; gc_horizon = Apply.as_of apply }
  in
  (* Roll the stored view forward to the recorded apply position. *)
  let target_as_of = Time.min last.Frontier.as_of (hwm t) in
  if target_as_of > Apply.as_of t.apply then
    Apply.roll_to t.apply ~hwm:(hwm t) target_as_of;
  Stats.incr_recoveries ctx.Ctx.stats;
  record_frontier t;
  let source =
    if resumed = None then "WAL replay" else "checkpoint + WAL replay"
  in
  if Roll_obs.Obs.tracing ctx.Ctx.obs then
    Roll_obs.Trace.add_attr
      (Roll_obs.Obs.trace ctx.Ctx.obs)
      "source" (Roll_obs.Trace.Str source);
  Log.info (fun m ->
      m "view %s recovered: hwm=%d as_of=%d (%s)" name (hwm t) (as_of t) source);
  t

let recover ?(geometry = false) ?(auto_index = false) ?checkpoint ?obs db
    capture view ~algorithm =
  let go () =
    recover_body ~geometry ~auto_index ?checkpoint ~obs db capture view
      ~algorithm
  in
  match obs with
  | Some o when Roll_obs.Obs.tracing o ->
      Roll_obs.Trace.with_span (Roll_obs.Obs.trace o)
        ~attrs:[ ("view", Roll_obs.Trace.Str (View.name view)) ]
        "recovery" go
  | _ -> go ()
