module Time = Roll_delta.Time
module Delta = Roll_delta.Delta
module Database = Roll_storage.Database
module Capture = Roll_capture.Capture

let log_src = Logs.Src.create "roll.service" ~doc:"multi-view maintenance service"

module Log = (val Logs.src_log log_src)

type entry = {
  name : string;
  controller : Controller.t;
  mutable paused : bool;
  mutable sla : int;
  mutable checkpoint : (string * int) option;  (** path, commits between *)
  mutable last_checkpoint : Time.t;
}

type status = {
  name : string;
  as_of : Time.t;
  hwm : Time.t;
  staleness : int;
  sla : int;
  slack : int;
  delta_rows : int;
  paused : bool;
  retries : int;
  aborts : int;
  recoveries : int;
  memo_hits : int;
  memo_misses : int;
  shared_builds : int;
}

type step_error = { view : string; point : string; hit : int; attempts : int }

type t = {
  db : Database.t;
  capture : Capture.t;
  scheduler : Scheduler.t;
  sharing : bool;
  memo : Memo.t;  (** the shared drain-scoped delta memo (enabled iff sharing) *)
  default_sla : int;
  mutable gc_threshold : int;
  mutable entries : entry list;  (** registration order *)
}

let create ?policy ?cost_weight ?capture_batch ?(sharing = false)
    ?(default_sla = 100) ?(gc_threshold = max_int) db capture =
  if default_sla <= 0 then invalid_arg "Service.create: default_sla";
  {
    db;
    capture;
    scheduler = Scheduler.create ?policy ?cost_weight ?capture_batch db capture;
    sharing;
    memo = Memo.create ~enabled:sharing ();
    default_sla;
    gc_threshold;
    entries = [];
  }

let scheduler t = t.scheduler

let sharing t = t.sharing

let memo t = t.memo

(* Plug the registered view's context into the service-wide memo and align
   its step windows to the interval grid, so sibling views converge on
   identical delta windows (the memo key). Alignment must only be switched
   on after any recovery replay — replay targets recorded frontiers
   exactly and must not snap. *)
let enable_sharing t controller =
  if t.sharing then begin
    (Controller.ctx controller).Ctx.memo <- t.memo;
    Controller.set_window_alignment controller true
  end

let add_entry t name controller =
  t.entries <-
    t.entries
    @ [
        {
          name;
          controller;
          paused = false;
          sla = t.default_sla;
          checkpoint = None;
          last_checkpoint = Database.now t.db;
        };
      ]

let register ?(durable = false) t ~algorithm view =
  let name = View.name view in
  if List.exists (fun (e : entry) -> String.equal e.name name) t.entries then
    invalid_arg ("Service.register: view already registered: " ^ name);
  let controller = Controller.create ~durable t.db t.capture view ~algorithm in
  enable_sharing t controller;
  add_entry t name controller;
  controller

let register_recovered ?checkpoint t ~algorithm view =
  let name = View.name view in
  if List.exists (fun (e : entry) -> String.equal e.name name) t.entries then
    invalid_arg ("Service.register_recovered: view already registered: " ^ name);
  let controller =
    Controller.recover ?checkpoint t.db t.capture view ~algorithm
  in
  (* After recover: the trajectory replay inside [Controller.recover] must
     land frontiers exactly where the markers recorded them, un-snapped. *)
  enable_sharing t controller;
  add_entry t name controller;
  controller

let find t name =
  match List.find_opt (fun (e : entry) -> String.equal e.name name) t.entries with
  | Some e -> e
  | None -> raise Not_found

let controller t name = (find t name).controller

let names t = List.map (fun (e : entry) -> e.name) t.entries

let set_sla t name sla =
  if sla <= 0 then invalid_arg "Service.set_sla";
  (find t name).sla <- sla

let sla t name = (find t name).sla

let set_checkpoint t name ~path ~every =
  if every <= 0 then invalid_arg "Service.set_checkpoint: every";
  let e = find t name in
  e.checkpoint <- Some (path, every);
  e.last_checkpoint <- Database.now t.db

let set_gc_threshold t rows =
  if rows <= 0 then invalid_arg "Service.set_gc_threshold";
  t.gc_threshold <- rows

let status t =
  let now = Database.now t.db in
  List.map
    (fun (e : entry) ->
      let hwm = Controller.hwm e.controller in
      let stats = Controller.stats e.controller in
      let staleness = now - hwm in
      {
        name = e.name;
        as_of = Controller.as_of e.controller;
        hwm;
        staleness;
        sla = e.sla;
        slack = e.sla - staleness;
        delta_rows = Delta.length (Controller.ctx e.controller).Ctx.out;
        paused = e.paused;
        retries = Stats.retries stats;
        aborts = Stats.aborts stats;
        recoveries = Stats.recoveries stats;
        memo_hits = Stats.memo_hits stats;
        memo_misses = Stats.memo_misses stats;
        shared_builds = Stats.shared_builds stats;
      })
    t.entries

let pause t name = (find t name).paused <- true

let resume t name = (find t name).paused <- false

(* ------------------------------------------------------------------ *)
(* Scheduler drain                                                     *)

(* Applied view-delta rows: rows at or before the apply position are the
   only ones gc can reclaim. *)
let applied_rows (e : entry) =
  let out = (Controller.ctx e.controller).Ctx.out in
  Delta.length out
  - Delta.window_count out ~lo:(Controller.as_of e.controller) ~hi:max_int

let sources ?(skip = fun _ -> false) ?(bg_done = fun _ _ -> false) t =
  let now = Database.now t.db in
  List.map
    (fun (e : entry) ->
      {
        Scheduler.name = e.name;
        controller = e.controller;
        paused = e.paused || skip e.name;
        sla = e.sla;
        apply_due = not (bg_done "apply" e.name);
        checkpoint_due =
          (match e.checkpoint with
          | Some (_, every) -> now - e.last_checkpoint >= every
          | None -> false)
          && not (bg_done "checkpoint" e.name);
        gc_due =
          applied_rows e >= t.gc_threshold && not (bg_done "gc" e.name);
      })
    t.entries

let schedule ?full t = Scheduler.plan ?full t.scheduler (sources t)

(* Work-item execution shared by the plain and reliable drains. [step]
   runs one propagation step for a view and [capture_run] one capture
   advance (wrapped in the retry policy on the reliable path); everything
   else is common. Views whose propagate step reports idle are skipped for
   the rest of the drain as a defensive guard — by construction a view with
   candidates always advances. Background items mark themselves done in
   [bg_done] so each runs at most once per view per drain: a durable apply
   or checkpoint commits a frontier marker, which re-stales the view by one
   commit and would otherwise re-offer the item forever. *)
let exec_item t ~skipped ~bg_done ~step ~capture_run (scored : Scheduler.scored)
    =
  let mark_bg kind view = Hashtbl.replace bg_done (kind, view) () in
  match scored.Scheduler.item with
  | Scheduler.Capture_advance -> (
      match capture_run () with Ok () -> Ok false | Error e -> Error e)
  | Scheduler.Propagate_step { view; _ } -> (
      match step (find t view).controller with
      | Ok true -> Ok true
      | Ok false ->
          Log.warn (fun m ->
              m "view %s: scheduled step was idle; skipping for this drain"
                view);
          Hashtbl.replace skipped view ();
          Ok false
      | Error e -> Error e)
  | Scheduler.Apply_refresh view ->
      mark_bg "apply" view;
      let ctl = (find t view).controller in
      Controller.refresh_to ctl (Controller.hwm ctl);
      Ok true
  | Scheduler.Checkpoint view -> (
      mark_bg "checkpoint" view;
      let e = find t view in
      match e.checkpoint with
      | Some (path, _) ->
          Controller.checkpoint e.controller path;
          e.last_checkpoint <- Database.now t.db;
          Ok true
      | None -> Ok false)
  | Scheduler.Gc view ->
      mark_bg "gc" view;
      (* Memoized deltas hold copies, not positions, so pruning cannot
         corrupt them — but a replay could re-emit rows the prune just
         reclaimed. Drop the memo rather than reason about overlap. *)
      if t.sharing then Memo.clear t.memo;
      ignore (Controller.gc (find t view).controller);
      Ok true

let advance_capture t =
  Capture.advance ?max_records:(Scheduler.capture_batch t.scheduler) t.capture

(* Capture advances under the retry policy: the capture fault point fires
   before any delta mutation, so a failed advance left nothing behind and
   can simply be re-run. Capture retries are counted on the scheduler's
   stats (capture has no per-view controller to count them on). *)
let reliable_capture t ~retry ~sleep () =
  let sched_stats = Scheduler.stats t.scheduler in
  match
    Roll_util.Retry.run retry ~sleep
      ~on_retry:(fun ~attempt:_ ~delay:_ -> Stats.incr_retries sched_stats)
      (fun () -> advance_capture t)
  with
  | Ok () -> Ok ()
  | Error (f : Roll_util.Retry.failure) ->
      Stats.incr_aborts sched_stats;
      Error
        {
          view = "(capture)";
          point = f.Roll_util.Retry.point;
          hit = f.Roll_util.Retry.hit;
          attempts = f.Roll_util.Retry.attempts;
        }

let drain_items ?full t ~budget ~step ~capture_run =
  let skipped = Hashtbl.create 4 in
  let bg_done = Hashtbl.create 4 in
  (* The tables are re-read through [sources] on every take. *)
  Scheduler.begin_drain t.scheduler;
  (* The delta memo is drain-scoped: entries from a previous drain would
     still be sound (their windows are immutable), clearing just bounds
     memory to one drain's worth of shared work. *)
  if t.sharing then Memo.clear t.memo;
  let skip name = Hashtbl.mem skipped name in
  let done_bg kind name = Hashtbl.mem bg_done (kind, name) in
  let executed = ref 0 in
  let failure = ref None in
  let continue = ref true in
  while !continue && !failure = None && !executed < budget do
    match
      Scheduler.take_batch ?full t.scheduler (sources ~skip ~bg_done:done_bg t)
    with
    | [] -> continue := false
    | batch ->
        (* Same-window sibling steps run back to back so the trailing ones
           replay the head's memoized delta; budget and failure checks
           still apply per item. *)
        List.iter
          (fun (scored : Scheduler.scored) ->
            if !failure = None && !executed < budget then begin
              let t0 = Unix.gettimeofday () in
              let result =
                exec_item t ~skipped ~bg_done ~step ~capture_run scored
              in
              Scheduler.note_ran t.scheduler scored.Scheduler.item
                ~wall:(Unix.gettimeofday () -. t0);
              match result with
              | Ok counts -> if counts then incr executed
              | Error f -> failure := Some f
            end)
          batch
  done;
  match !failure with Some f -> Error f | None -> Ok !executed

let plain_capture t () =
  advance_capture t;
  Ok ()

let step_all t ~budget =
  match
    drain_items ~full:false t ~budget
      ~step:(fun ctl -> Ok (Controller.propagate_step ctl))
      ~capture_run:(plain_capture t)
  with
  | Ok steps -> steps
  | Error (_ : step_error) -> assert false

let try_step_all ?sleep t ~budget ~retry =
  let sleep =
    match sleep with
    | Some f -> f
    | None -> fun d -> Database.advance_wall t.db d
  in
  let to_error view (f : Roll_util.Retry.failure) =
    {
      view;
      point = f.Roll_util.Retry.point;
      hit = f.Roll_util.Retry.hit;
      attempts = f.Roll_util.Retry.attempts;
    }
  in
  drain_items ~full:false t ~budget
    ~step:(fun ctl ->
      match Controller.propagate_step_reliable ctl ~retry ~sleep with
      | Ok advanced -> Ok advanced
      | Error f -> Error (to_error (View.name (Controller.view ctl)) f))
    ~capture_run:(reliable_capture t ~retry ~sleep)

let maintain ?retry ?sleep t ~budget =
  match retry with
  | None ->
      drain_items ~full:true t ~budget
        ~step:(fun ctl -> Ok (Controller.propagate_step ctl))
        ~capture_run:(plain_capture t)
  | Some retry ->
      let sleep =
        match sleep with
        | Some f -> f
        | None -> fun d -> Database.advance_wall t.db d
      in
      drain_items ~full:true t ~budget
        ~step:(fun ctl ->
          match Controller.propagate_step_reliable ctl ~retry ~sleep with
          | Ok advanced -> Ok advanced
          | Error f ->
              Error
                {
                  view = View.name (Controller.view ctl);
                  point = f.Roll_util.Retry.point;
                  hit = f.Roll_util.Retry.hit;
                  attempts = f.Roll_util.Retry.attempts;
                })
        ~capture_run:(reliable_capture t ~retry ~sleep)

let refresh_all t =
  List.iter
    (fun (e : entry) ->
      if not e.paused then ignore (Controller.refresh_latest e.controller))
    t.entries

let gc_all t =
  List.fold_left (fun acc (e : entry) -> acc + Controller.gc e.controller) 0 t.entries
