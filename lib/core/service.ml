module Time = Roll_delta.Time
module Delta = Roll_delta.Delta
module Database = Roll_storage.Database
module Capture = Roll_capture.Capture

let log_src = Logs.Src.create "roll.service" ~doc:"multi-view maintenance service"

module Log = (val Logs.src_log log_src)

type entry = {
  name : string;
  controller : Controller.t;
  mutable paused : bool;
  mutable sla : int;
  mutable checkpoint : (string * int) option;  (** path, commits between *)
  mutable last_checkpoint : Time.t;
  aux_of : Auxiliary.entry option;
      (** [Some] when this entry maintains an auxiliary view: the registry
          entry whose mirror must be synced after the controller's
          high-water mark advances *)
  hot_of : Hotset.entry option;
      (** [Some] when this entry maintains a heavy key's partial: the
          hotset registry entry whose mirror must be synced after the
          controller's high-water mark advances *)
}

type status = {
  name : string;
  as_of : Time.t;
  hwm : Time.t;
  staleness : int;
  sla : int;
  slack : int;
  delta_rows : int;
  paused : bool;
  retries : int;
  aborts : int;
  recoveries : int;
  memo_hits : int;
  memo_misses : int;
  shared_builds : int;
  aux : bool;  (** this entry is an auxiliary view *)
  aux_hits : int;  (** substitution probes served from fresh auxiliaries *)
  aux_misses : int;  (** probes that fell back to the base table *)
  aux_lag : int;
      (** an auxiliary's mirror lag behind the clock; for a user view, the
          worst lag among its auxiliaries (0 when it has none) *)
  hot : bool;  (** this entry is a heavy key's partial *)
  hot_hits : int;  (** substitution reads served from fresh partitions *)
  hot_misses : int;  (** partition consultations that fell back *)
  heavy_keys : int;  (** currently-heavy keys across the view's partitions *)
  light_rows : int;  (** rows in the view's light residual mirrors *)
  reads_served : int;
  reads_rejected : int;
  read_wait : float;
}

type step_error = { view : string; point : string; hit : int; attempts : int }

type t = {
  db : Database.t;
  capture : Capture.t;
  scheduler : Scheduler.t;
  sharing : bool;
  memo : Memo.t;  (** the shared drain-scoped delta memo (enabled iff sharing) *)
  default_sla : int;
  obs : Roll_obs.Obs.t;
  pool : Roll_util.Dpool.t option;
      (** worker-domain pool; [Some] switches drains to wave execution *)
  mutable gc_threshold : int;
  mutable entries : entry list;  (** registration order *)
  auxiliary : Auxiliary.t option;
      (** higher-order delta registry; [Some] iff auxiliary views are
          enabled for this service *)
  hotset : Hotset.t option;
      (** heavy-light partition registry; [Some] iff skew-aware
          partitioning is enabled for this service *)
}

let env_domains () =
  match Sys.getenv_opt "ROLL_DOMAINS" with
  | None -> None
  | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some n when n >= 1 -> Some n
      | Some _ | None -> None)

(* ROLL_SHARING / ROLL_AUX / ROLL_HOTSET: environment defaults for the
   [sharing], [auxiliary] and [hotset] flags, so the whole test/bench
   matrix can flip any feature on without threading parameters (explicit
   arguments win). *)
let env_flag name =
  match Sys.getenv_opt name with
  | None -> false
  | Some v -> (
      match String.lowercase_ascii (String.trim v) with
      | "" | "0" | "false" | "off" | "no" -> false
      | _ -> true)

let create ?policy ?cost_weight ?capture_batch ?sharing ?auxiliary ?hotset
    ?(default_sla = 100) ?(gc_threshold = max_int) ?obs ?domains db capture =
  let sharing =
    match sharing with Some s -> s | None -> env_flag "ROLL_SHARING"
  in
  let auxiliary =
    match auxiliary with Some a -> a | None -> env_flag "ROLL_AUX"
  in
  let hotset =
    match hotset with Some h -> h | None -> env_flag "ROLL_HOTSET"
  in
  if default_sla <= 0 then invalid_arg "Service.create: default_sla";
  (match domains with
  | Some n when n < 1 -> invalid_arg "Service.create: domains must be >= 1"
  | _ -> ());
  let obs = match obs with Some o -> o | None -> Roll_obs.Obs.disabled () in
  let scheduler = Scheduler.create ?policy ?cost_weight ?capture_batch db capture in
  if Roll_obs.Obs.enabled obs then begin
    Scheduler.set_obs scheduler obs;
    Database.set_obs db obs;
    Capture.set_obs capture obs;
    (* Capture retries/aborts land on the scheduler's stats record. *)
    Stats.register
      ~labels:[ ("scope", "scheduler") ]
      (Scheduler.stats scheduler)
      (Roll_obs.Obs.metrics obs)
  end;
  {
    db;
    capture;
    scheduler;
    sharing;
    memo = Memo.create ~enabled:sharing ();
    default_sla;
    obs;
    pool =
      (match domains with
      | None -> None
      | Some n -> Some (Roll_util.Dpool.create ~domains:n ()));
    gc_threshold;
    entries = [];
    auxiliary = (if auxiliary then Some (Auxiliary.create db capture) else None);
    hotset = (if hotset then Some (Hotset.create db capture) else None);
  }

let scheduler t = t.scheduler

(* Read demand feeds the scheduler's reader boost; the serving layer
   (Roll_serve.Engine) installs its waiting-reader census here. *)
let set_read_demand t f = Scheduler.set_read_demand t.scheduler f

let domains t =
  match t.pool with None -> 1 | Some p -> Roll_util.Dpool.size p

(* Join the worker domains (no-op for a serial service). The pool also
   shuts down on process exit, but callers creating many short-lived
   parallel services (tests, benches) must release each one to stay under
   the runtime's domain limit. *)
let shutdown t =
  match t.pool with None -> () | Some p -> Roll_util.Dpool.shutdown p

(* View-name shard: which domain slot a view's propagate items are homed
   to for queue-depth reporting. Purely observational — waves assign work
   by wave position, not by shard — but stable, so operators can watch a
   view's backlog stay on one shard across drains. *)
let shard_of t name = Hashtbl.hash name mod domains t

let obs t = t.obs

let sharing t = t.sharing

let memo t = t.memo

(* Plug the registered view's context into the service-wide memo and align
   its step windows to the interval grid, so sibling views converge on
   identical delta windows (the memo key). Alignment must only be switched
   on after any recovery replay — replay targets recorded frontiers
   exactly and must not snap. *)
let enable_sharing t controller =
  if t.sharing then begin
    (Controller.ctx controller).Ctx.memo <- t.memo;
    Controller.set_window_alignment controller true
  end

let add_entry ?aux_of ?hot_of t name controller =
  let e =
    {
      name;
      controller;
      paused = false;
      sla = t.default_sla;
      checkpoint = None;
      last_checkpoint = Database.now t.db;
      aux_of;
      hot_of;
    }
  in
  t.entries <- t.entries @ [ e ];
  if Roll_obs.Obs.enabled t.obs then begin
    let m = Roll_obs.Obs.metrics t.obs in
    let labels = [ ("view", name) ] in
    Stats.register ~labels (Controller.stats controller) m;
    (* Operational freshness gauges: one collector per view per name,
       merged into one labeled family at snapshot time. *)
    let gauge ?help gname read =
      Roll_obs.Metrics.register_collector m ?help
        ~kind:Roll_obs.Metrics.Gauge gname (fun () -> [ (labels, read ()) ])
    in
    gauge "roll_view_hwm" ~help:"View-delta high-water mark (CSN)" (fun () ->
        float_of_int (Controller.hwm controller));
    gauge "roll_view_as_of"
      ~help:"Materialization time of the stored view (CSN)" (fun () ->
        float_of_int (Controller.as_of controller));
    gauge "roll_view_staleness" ~help:"Commits behind current time" (fun () ->
        float_of_int (Database.now t.db - Controller.hwm controller));
    gauge "roll_view_slack" ~help:"SLA minus staleness, in commits" (fun () ->
        float_of_int (e.sla - (Database.now t.db - Controller.hwm controller)));
    gauge "roll_view_delta_rows" ~help:"Rows held in the view delta"
      (fun () ->
        float_of_int (Delta.length (Controller.ctx controller).Ctx.out));
    gauge "roll_view_paused" ~help:"1 when propagation is paused" (fun () ->
        if e.paused then 1. else 0.)
  end

let obs_arg t = if Roll_obs.Obs.enabled t.obs then Some t.obs else None

(* Derive and wire the higher-order auxiliaries for a freshly registered
   view. Each auxiliary the registry hands back that is not already a
   service entry (sibling views share entries via signature dedupe)
   becomes an ordinary entry of its own — scheduler items, waves, durable
   frontiers and recovery all come from the same machinery as a user
   view's. Auxiliaries are durable exactly when their owner is: the
   substitution is an optimization, so it must never out-persist the view
   it serves. *)
let attach_auxiliaries t ~recover owner_controller =
  match t.auxiliary with
  | None -> ()
  | Some reg ->
      let durable = Controller.durable owner_controller in
      List.iter
        (fun ae ->
          let aname = Auxiliary.name ae in
          if
            not
              (List.exists
                 (fun (e : entry) -> String.equal e.name aname)
                 t.entries)
          then add_entry ~aux_of:ae t aname (Auxiliary.controller ae))
        (Auxiliary.attach ~durable ~recover ?obs:(obs_arg t) reg
           owner_controller)

(* Same wiring for the heavy-light partition registry: each heavy key's
   partial the registry hands back (shared across sibling owners via the
   partial-signature dedupe) that is not already a service entry becomes an
   ordinary entry, so heavy partials get scheduler items, waves, durable
   frontiers and recovery from the same machinery as user views. *)
let hot_entry_known t he =
  List.exists
    (fun (e : entry) -> String.equal e.name (Hotset.name he))
    t.entries

let attach_hotset t ~recover owner_controller =
  match t.hotset with
  | None -> ()
  | Some reg ->
      let durable = Controller.durable owner_controller in
      List.iter
        (fun he ->
          if not (hot_entry_known t he) then
            add_entry ~hot_of:he t (Hotset.name he) (Hotset.controller he))
        (Hotset.attach ~durable ~recover ?obs:(obs_arg t) reg owner_controller)

let register ?(durable = false) t ~algorithm view =
  let name = View.name view in
  if List.exists (fun (e : entry) -> String.equal e.name name) t.entries then
    invalid_arg ("Service.register: view already registered: " ^ name);
  let controller =
    Controller.create ~durable ?obs:(obs_arg t) t.db t.capture view ~algorithm
  in
  enable_sharing t controller;
  add_entry t name controller;
  attach_auxiliaries t ~recover:false controller;
  attach_hotset t ~recover:false controller;
  controller

let register_recovered ?checkpoint t ~algorithm view =
  let name = View.name view in
  if List.exists (fun (e : entry) -> String.equal e.name name) t.entries then
    invalid_arg ("Service.register_recovered: view already registered: " ^ name);
  let controller =
    Controller.recover ?checkpoint ?obs:(obs_arg t) t.db t.capture view
      ~algorithm
  in
  (* After recover: the trajectory replay inside [Controller.recover] must
     land frontiers exactly where the markers recorded them, un-snapped. *)
  enable_sharing t controller;
  add_entry t name controller;
  attach_auxiliaries t ~recover:true controller;
  attach_hotset t ~recover:true controller;
  controller

let auxiliary t = t.auxiliary

let hotset t = t.hotset

let find t name =
  match List.find_opt (fun (e : entry) -> String.equal e.name name) t.entries with
  | Some e -> e
  | None -> raise Not_found

let controller t name = (find t name).controller

let names t = List.map (fun (e : entry) -> e.name) t.entries

let set_sla t name sla =
  if sla <= 0 then invalid_arg "Service.set_sla";
  (find t name).sla <- sla

let sla t name = (find t name).sla

let set_checkpoint t name ~path ~every =
  if every <= 0 then invalid_arg "Service.set_checkpoint: every";
  let e = find t name in
  e.checkpoint <- Some (path, every);
  e.last_checkpoint <- Database.now t.db

let set_gc_threshold t rows =
  if rows <= 0 then invalid_arg "Service.set_gc_threshold";
  t.gc_threshold <- rows

let aux_lag_of t (e : entry) =
  match t.auxiliary with
  | None -> 0
  | Some reg -> (
      match e.aux_of with
      | Some ae -> Auxiliary.lag reg ae
      | None ->
          (* A user view's freshness exposure: the worst mirror lag among
             the auxiliaries its probes depend on. *)
          List.fold_left
            (fun acc ae -> max acc (Auxiliary.lag reg ae))
            0
            (Auxiliary.for_owner reg ~owner:e.name))

let status t =
  let now = Database.now t.db in
  List.map
    (fun (e : entry) ->
      let hwm = Controller.hwm e.controller in
      let stats = Controller.stats e.controller in
      let staleness = now - hwm in
      {
        name = e.name;
        as_of = Controller.as_of e.controller;
        hwm;
        staleness;
        sla = e.sla;
        slack = e.sla - staleness;
        delta_rows = Delta.length (Controller.ctx e.controller).Ctx.out;
        paused = e.paused;
        retries = Stats.retries stats;
        aborts = Stats.aborts stats;
        recoveries = Stats.recoveries stats;
        memo_hits = Stats.memo_hits stats;
        memo_misses = Stats.memo_misses stats;
        shared_builds = Stats.shared_builds stats;
        aux = Option.is_some e.aux_of;
        aux_hits = Stats.aux_hits stats;
        aux_misses = Stats.aux_misses stats;
        aux_lag = aux_lag_of t e;
        hot = Option.is_some e.hot_of;
        hot_hits = Stats.hot_hits stats;
        hot_misses = Stats.hot_misses stats;
        heavy_keys =
          (match t.hotset with
          | Some reg when e.hot_of = None ->
              Hotset.heavy_count reg ~owner:e.name
          | _ -> 0);
        light_rows =
          (match t.hotset with
          | Some reg when e.hot_of = None -> Hotset.light_rows reg ~owner:e.name
          | _ -> 0);
        reads_served = Stats.reads_served stats;
        reads_rejected = Stats.reads_rejected stats;
        read_wait = Stats.read_wait stats;
      })
    t.entries

let pause t name = (find t name).paused <- true

let resume t name = (find t name).paused <- false

(* Removing a user view releases its claim on its auxiliaries; auxiliaries
   left with no owner at all are orphans — their entries leave the service
   with the registry entry, so no more maintenance items are planned for
   them and their mirrors become unreachable. *)
let unregister t name =
  let e = find t name in
  if Option.is_some e.aux_of then
    invalid_arg
      ("Service.unregister: " ^ name
     ^ " is an auxiliary view; it is retired when its last owner goes");
  if Option.is_some e.hot_of then
    invalid_arg
      ("Service.unregister: " ^ name
     ^ " is a heavy-key partial; it is retired when its last owner goes");
  t.entries <-
    List.filter (fun (x : entry) -> not (String.equal x.name name)) t.entries;
  (match t.auxiliary with
  | None -> ()
  | Some reg ->
      let orphans = Auxiliary.release reg ~owner:name in
      t.entries <-
        List.filter
          (fun (x : entry) ->
            not
              (List.exists
                 (fun ae -> String.equal (Auxiliary.name ae) x.name)
                 orphans))
          t.entries);
  match t.hotset with
  | None -> ()
  | Some reg ->
      let orphans = Hotset.release reg ~owner:name in
      t.entries <-
        List.filter
          (fun (x : entry) ->
            not
              (List.exists
                 (fun he -> String.equal (Hotset.name he) x.name)
                 orphans))
          t.entries

(* ------------------------------------------------------------------ *)
(* Scheduler drain                                                     *)

(* Applied view-delta rows: rows at or before the apply position are the
   only ones gc can reclaim. *)
let applied_rows (e : entry) =
  let out = (Controller.ctx e.controller).Ctx.out in
  Delta.length out
  - Delta.window_count out ~lo:(Controller.as_of e.controller) ~hi:max_int

let sources ?(skip = fun _ -> false) ?(bg_done = fun _ _ -> false) t =
  let now = Database.now t.db in
  List.map
    (fun (e : entry) ->
      {
        Scheduler.name = e.name;
        controller = e.controller;
        paused = e.paused || skip e.name;
        sla = e.sla;
        apply_due = not (bg_done "apply" e.name);
        checkpoint_due =
          (match e.checkpoint with
          | Some (_, every) -> now - e.last_checkpoint >= every
          | None -> false)
          && not (bg_done "checkpoint" e.name);
        gc_due =
          applied_rows e >= t.gc_threshold && not (bg_done "gc" e.name);
        aux = Option.is_some e.aux_of;
        hot = Option.is_some e.hot_of;
      })
    t.entries

let schedule ?full t = Scheduler.plan ?full t.scheduler (sources t)

(* WAL prefix reclaim, piggybacked on view gc: records at or below every
   consumer's horizon are dead — each view replays history from its gc
   horizon at the earliest, and capture has folded everything up to its
   high-water mark into the delta tables. On a paged store this deletes
   whole WAL segments (and Database clamps to the data snapshot); in
   memory it is a no-op. Returns the number of segments deleted. *)
let reclaim_wal t =
  match t.entries with
  | [] -> 0
  | entries ->
      let horizon =
        List.fold_left
          (fun acc (e : entry) -> min acc (Controller.horizon e.controller))
          max_int entries
      in
      let upto = min horizon (Capture.hwm t.capture) in
      if upto <= 0 then 0 else Database.reclaim_wal t.db ~upto

(* Work-item execution shared by the plain and reliable drains. [step]
   runs one propagation step for a view and [capture_run] one capture
   advance (wrapped in the retry policy on the reliable path); everything
   else is common. Views whose propagate step reports idle are skipped for
   the rest of the drain as a defensive guard — by construction a view with
   candidates always advances. Background items mark themselves done in
   [bg_done] so each runs at most once per view per drain: a durable apply
   or checkpoint commits a frontier marker, which re-stales the view by one
   commit and would otherwise re-offer the item forever. *)
(* Mirror maintenance piggybacks on the items that move an auxiliary's
   high-water mark: every new permanently-committed view-delta row folds
   into the probe mirror right after the step that produced it. *)
let sync_aux (e : entry) =
  (match e.aux_of with Some ae -> Auxiliary.sync ae | None -> ());
  match e.hot_of with Some he -> Hotset.sync he | None -> ()

let exec_item t ~skipped ~bg_done ~step ~capture_run (scored : Scheduler.scored)
    =
  let mark_bg kind view = Hashtbl.replace bg_done (kind, view) () in
  match scored.Scheduler.item with
  | Scheduler.Capture_advance -> (
      match capture_run () with Ok () -> Ok false | Error e -> Error e)
  | Scheduler.Propagate_step { view; _ } -> (
      let e = find t view in
      match step e.controller with
      | Ok true ->
          sync_aux e;
          Ok true
      | Ok false ->
          Log.warn (fun m ->
              m "view %s: scheduled step was idle; skipping for this drain"
                view);
          Hashtbl.replace skipped view ();
          Ok false
      | Error e -> Error e)
  | Scheduler.Apply_refresh view ->
      mark_bg "apply" view;
      let e = find t view in
      Controller.refresh_to e.controller (Controller.hwm e.controller);
      sync_aux e;
      Ok true
  | Scheduler.Checkpoint view -> (
      mark_bg "checkpoint" view;
      let e = find t view in
      match e.checkpoint with
      | Some (path, _) ->
          Controller.checkpoint e.controller path;
          e.last_checkpoint <- Database.now t.db;
          Ok true
      | None -> Ok false)
  | Scheduler.Gc view ->
      mark_bg "gc" view;
      (* Memoized deltas hold copies, not positions, so pruning cannot
         corrupt them — but a replay could re-emit rows the prune just
         reclaimed. Drop the memo rather than reason about overlap. *)
      if t.sharing then Memo.clear t.memo;
      let e = find t view in
      (* An auxiliary (or heavy partial) syncs its mirror before pruning:
         the mirror reads the very delta window the prune reclaims. *)
      (match (e.aux_of, e.hot_of) with
      | Some ae, _ -> ignore (Auxiliary.gc ae)
      | None, Some he -> ignore (Hotset.gc he)
      | None, None -> ignore (Controller.gc e.controller));
      ignore (reclaim_wal t);
      Ok true

let advance_capture t =
  Capture.advance ?max_records:(Scheduler.capture_batch t.scheduler) t.capture

(* Capture advances under the retry policy: the capture fault point fires
   before any delta mutation, so a failed advance left nothing behind and
   can simply be re-run. Capture retries are counted on the scheduler's
   stats (capture has no per-view controller to count them on). *)
let reliable_capture t ~retry ~sleep () =
  let sched_stats = Scheduler.stats t.scheduler in
  match
    Roll_util.Retry.run retry ~sleep
      ~on_retry:(fun ~attempt:_ ~delay:_ -> Stats.incr_retries sched_stats)
      (fun () -> advance_capture t)
  with
  | Ok () -> Ok ()
  | Error (f : Roll_util.Retry.failure) ->
      Stats.incr_aborts sched_stats;
      Error
        {
          view = "(capture)";
          point = f.Roll_util.Retry.point;
          hit = f.Roll_util.Retry.hit;
          attempts = f.Roll_util.Retry.attempts;
        }

(* Rows a propagate item appended to its view delta, measured around the
   execution (memo replays count too — they append real rows). *)
let out_length t (item : Scheduler.item) =
  match item with
  | Scheduler.Propagate_step { view; _ } -> (
      match
        List.find_opt (fun (e : entry) -> String.equal e.name view) t.entries
      with
      | Some e -> Delta.length (Controller.ctx e.controller).Ctx.out
      | None -> 0)
  | _ -> 0

(* Drain-start partition upkeep: pump the sketches and light residuals
   forward, then let the registry migrate keys whose class flipped. Each
   promoted key's partial becomes a service entry (scheduler items, waves,
   recovery — ordinary machinery); each demoted key's entry leaves with its
   registry entry. Running this once per drain keeps class churn off the
   per-item hot path and gives migrations the quiet point they need: the
   registry defers migration while capture is pending, so promotions land
   at the start of the drain {e after} the one that caught the log up —
   and that drain then propagates every view past the promote-marker
   commits, so a caught-up service ends its drain caught up. *)
let rebalance_hotset t =
  match t.hotset with
  | None -> ()
  | Some reg ->
      Hotset.pump reg;
      let promoted, demoted = Hotset.rebalance reg in
      List.iter
        (fun he ->
          if not (hot_entry_known t he) then
            add_entry ~hot_of:he t (Hotset.name he) (Hotset.controller he))
        promoted;
      if demoted <> [] then
        t.entries <-
          List.filter
            (fun (x : entry) ->
              not
                (List.exists
                   (fun he -> String.equal (Hotset.name he) x.name)
                   demoted))
            t.entries

let drain_items ?(full = false) t ~budget ~step ~capture_run ~wave_step
    ~apply_sleep =
  let skipped = Hashtbl.create 4 in
  let bg_done = Hashtbl.create 4 in
  (* The tables are re-read through [sources] on every take. *)
  Scheduler.begin_drain t.scheduler;
  rebalance_hotset t;
  (* The delta memo is drain-scoped: entries from a previous drain would
     still be sound (their windows are immutable), clearing just bounds
     memory to one drain's worth of shared work. *)
  if t.sharing then Memo.clear t.memo;
  let skip name = Hashtbl.mem skipped name in
  let done_bg kind name = Hashtbl.mem bg_done (kind, name) in
  let executed = ref 0 in
  let failure = ref None in
  let continue = ref true in
  let enabled = Roll_obs.Obs.enabled t.obs in
  let tracing = Roll_obs.Obs.tracing t.obs in
  (* The obs clock: real time by default, the injected manual clock under
     test — which also makes the scheduler's wall counters deterministic. *)
  let now () = Roll_obs.Obs.now t.obs in
  let exec_one (scored : Scheduler.scored) =
    let kind = Scheduler.kind_name scored.Scheduler.item in
    let emitted_before =
      if enabled then out_length t scored.Scheduler.item else 0
    in
    let run () =
      let t0 = now () in
      let result = exec_item t ~skipped ~bg_done ~step ~capture_run scored in
      let wall = now () -. t0 in
      Scheduler.note_ran t.scheduler scored.Scheduler.item ~wall;
      if enabled then begin
        let m = Roll_obs.Obs.metrics t.obs in
        Roll_obs.Metrics.observe
          (Roll_obs.Metrics.histogram m
             ~help:"Wall-clock seconds per executed work item"
             ~labels:[ ("kind", kind) ]
             "roll_item_latency_seconds")
          wall;
        (match scored.Scheduler.window with
        | Some (_, lo, hi) ->
            Roll_obs.Metrics.observe
              (Roll_obs.Metrics.histogram m
                 ~help:
                   "Delta-window width of executed propagate steps, in commits"
                 "roll_step_window_width")
              (float_of_int (hi - lo))
        | None -> ());
        if String.equal kind "propagate" then
          Roll_obs.Metrics.observe
            (Roll_obs.Metrics.histogram m
               ~help:"View-delta rows emitted per propagate step"
               "roll_step_rows_emitted")
            (float_of_int
               (max 0 (out_length t scored.Scheduler.item - emitted_before)))
      end;
      (match result with
      | Error (f : step_error) ->
          if tracing then
            Roll_obs.Trace.set_error
              (Roll_obs.Obs.trace t.obs)
              (Printf.sprintf "%s failed at %s" f.view f.point)
      | Ok _ -> ());
      result
    in
    if tracing then begin
      let wait = Scheduler.queue_wait t.scheduler scored.Scheduler.item in
      let attrs =
        [
          ("kind", Roll_obs.Trace.Str kind);
          ( "item",
            Roll_obs.Trace.Str
              (Format.asprintf "%a" Scheduler.pp_item scored.Scheduler.item) );
          ("score", Roll_obs.Trace.Float scored.Scheduler.score);
          ("slack", Roll_obs.Trace.Int scored.Scheduler.slack);
          ("est_rows", Roll_obs.Trace.Int scored.Scheduler.est_rows);
        ]
        @
        match wait with
        | Some w -> [ ("queue_wait", Roll_obs.Trace.Float w) ]
        | None -> []
      in
      Roll_obs.Trace.with_span (Roll_obs.Obs.trace t.obs) ~attrs "sched.item"
        run
    end
    else run ()
  in
  (* ---------------- wave execution (worker-domain pool) ------------- *)
  (* One wave: pairwise-disjoint-window propagate steps of distinct views,
     executed concurrently in frozen-clock mode, then committed by this
     (single-writer) domain in wave order. Failure semantics match the
     serial drain: the earliest wave-order failure wins and every later
     item — even a successful one — is undone as if it never ran. *)
  let exec_wave pool (wave : Scheduler.scored list) =
    let module Dpool = Roll_util.Dpool in
    let frozen = Capture.hwm t.capture in
    (* Pre-build every lazy timestamp index a wave item will read: window
       reads rebuild stale indexes in place, which is only safe before the
       workers start sharing the deltas read-only. *)
    List.iter
      (fun (s : Scheduler.scored) ->
        match s.Scheduler.window with
        | Some (table, _, _) -> Delta.freshen (Capture.delta t.capture ~table)
        | None -> ())
      wave;
    let items = Array.of_list wave in
    let n = Array.length items in
    let size = Dpool.size pool in
    let prep =
      Array.mapi
        (fun k (s : Scheduler.scored) ->
          let view, relation =
            match s.Scheduler.item with
            | Scheduler.Propagate_step { view; relation } -> (view, relation)
            | _ -> assert false
          in
          let lo, hi =
            match s.Scheduler.window with
            | Some (_, lo, hi) -> (lo, hi)
            | None -> assert false
          in
          let ctl = (find t view).controller in
          let ctx = Controller.ctx ctl in
          let out_mark = Delta.length ctx.Ctx.out in
          let memo_mark = Memo.mark ctx.Ctx.memo in
          (* The owner tag is the wave position — unique within the wave
             (members are distinct views), so an undo evicts exactly this
             item's memo fills. *)
          ctx.Ctx.memo_owner <- k;
          let saved_obs = ctx.Ctx.obs in
          if tracing then ctx.Ctx.obs <- Roll_obs.Obs.fork saved_obs;
          let wait = Scheduler.queue_wait t.scheduler s.Scheduler.item in
          (s, view, relation, ctl, ctx, lo, hi, out_mark, memo_mark, saved_obs,
           wait))
        items
    in
    let sleeps = Array.make n 0. in
    let walls = Array.make n 0. in
    let jobs =
      Array.map
        (fun (s, _, relation, ctl, ctx, _, hi, _, _, _, wait) (_slot : int) ->
          let obs = ctx.Ctx.obs in
          let run () =
            let t0 = Roll_obs.Obs.now obs in
            let result =
              wave_step ctl ~relation ~hi ~frozen ~sleep:(fun d ->
                  (* Workers must not touch the (single-writer) simulated
                     wall clock; backoff accumulates here and the drain
                     domain applies it deterministically after the join. *)
                  let k = ctx.Ctx.memo_owner in
                  sleeps.(k) <- sleeps.(k) +. d)
            in
            walls.(ctx.Ctx.memo_owner) <- Roll_obs.Obs.now obs -. t0;
            (match result with
            | Error (f : step_error) ->
                if Roll_obs.Obs.tracing obs then
                  Roll_obs.Trace.set_error
                    (Roll_obs.Obs.trace obs)
                    (Printf.sprintf "%s failed at %s" f.view f.point)
            | Ok _ -> ());
            result
          in
          if Roll_obs.Obs.tracing obs then begin
            let attrs =
              [
                ("kind", Roll_obs.Trace.Str "propagate");
                ( "item",
                  Roll_obs.Trace.Str
                    (Format.asprintf "%a" Scheduler.pp_item s.Scheduler.item)
                );
                ("score", Roll_obs.Trace.Float s.Scheduler.score);
                ("slack", Roll_obs.Trace.Int s.Scheduler.slack);
                ("est_rows", Roll_obs.Trace.Int s.Scheduler.est_rows);
              ]
              @
              match wait with
              | Some w -> [ ("queue_wait", Roll_obs.Trace.Float w) ]
              | None -> []
            in
            Roll_obs.Trace.with_span (Roll_obs.Obs.trace obs) ~attrs
              "sched.item" run
          end
          else run ())
        prep
    in
    let results = Dpool.map pool jobs in
    (* Single-writer commit phase, wave order throughout. Restore the
       contexts' observability handles and splice the forked traces back
       first, so commit-phase spans and errors land on the parent. *)
    Array.iter
      (fun (_, _, _, _, ctx, _, _, _, _, saved_obs, _) ->
        if tracing then begin
          let child = ctx.Ctx.obs in
          ctx.Ctx.obs <- saved_obs;
          Roll_obs.Obs.absorb saved_obs child
        end)
      prep;
    let first_err = ref n in
    Array.iteri
      (fun k r ->
        if !first_err = n then
          match r with Ok (Ok _) -> () | Ok (Error _) | Error _ -> first_err := k)
      results;
    let fe = !first_err in
    (* Everything ordered after the first failure is undone — a completed
       item's rows, memo fills and frontier; a failed later item's partial
       emissions (its internal rollback, if any, makes this a no-op). *)
    for k = n - 1 downto fe + 1 do
      let _, _, relation, ctl, _, lo, _, out_mark, memo_mark, _, _ = prep.(k) in
      Controller.undo_window ctl ~relation ~lo ~out_mark ~memo_mark ~owner:k
    done;
    let commit_metrics (s : Scheduler.scored) ~wall ~emitted =
      if enabled then begin
        let m = Roll_obs.Obs.metrics t.obs in
        Roll_obs.Metrics.observe
          (Roll_obs.Metrics.histogram m
             ~help:"Wall-clock seconds per executed work item"
             ~labels:[ ("kind", "propagate") ]
             "roll_item_latency_seconds")
          wall;
        (match s.Scheduler.window with
        | Some (_, lo, hi) ->
            Roll_obs.Metrics.observe
              (Roll_obs.Metrics.histogram m
                 ~help:
                   "Delta-window width of executed propagate steps, in commits"
                 "roll_step_window_width")
              (float_of_int (hi - lo))
        | None -> ());
        Roll_obs.Metrics.observe
          (Roll_obs.Metrics.histogram m
             ~help:"View-delta rows emitted per propagate step"
             "roll_step_rows_emitted")
          (float_of_int (max 0 emitted))
      end
    in
    for k = 0 to min fe (n - 1) do
      let s, view, _, ctl, ctx, _, _, out_mark, _, _, _ = prep.(k) in
      (* Retry backoff accumulated on the worker, applied in wave order so
         the simulated wall clock advances deterministically. *)
      if sleeps.(k) > 0. then apply_sleep sleeps.(k);
      match results.(k) with
      | Ok (Ok (advanced, ran_query)) ->
          Controller.note_step_durable ctl ~advanced ~executed:ran_query;
          (* Committed wave items are final (everything after the first
             failure was already undone above), so an auxiliary member's
             mirror can fold the step's rows in now. *)
          sync_aux (find t view);
          Scheduler.note_ran ~domain:(k mod size) t.scheduler
            s.Scheduler.item ~wall:walls.(k);
          commit_metrics s ~wall:walls.(k)
            ~emitted:(Delta.length ctx.Ctx.out - out_mark);
          if advanced then incr executed
          else begin
            Log.warn (fun m ->
                m "view %s: scheduled step was idle; skipping for this drain"
                  view);
            Hashtbl.replace skipped view ()
          end
      | Ok (Error f) ->
          Scheduler.note_ran ~domain:(k mod size) t.scheduler
            s.Scheduler.item ~wall:walls.(k);
          commit_metrics s ~wall:walls.(k)
            ~emitted:(Delta.length ctx.Ctx.out - out_mark);
          if tracing then
            Roll_obs.Trace.set_error
              (Roll_obs.Obs.trace t.obs)
              (Printf.sprintf "%s failed at %s" f.view f.point);
          failure := Some f
      | Error exn ->
          (* A plain (retry-less) drain propagates step exceptions; the
             partial state it leaves matches the serial path's. *)
          raise exn
    done
  in
  let is_wave_head (s : Scheduler.scored) =
    match (s.Scheduler.item, s.Scheduler.window) with
    | Scheduler.Propagate_step { view; _ }, Some _ ->
        Controller.supports_window_step (find t view).controller
    | _ -> false
  in
  let body () =
    while !continue && !failure = None && !executed < budget do
      let srcs = sources ~skip ~bg_done:done_bg t in
      match t.pool with
      | Some pool -> (
          let cap = min (Roll_util.Dpool.size pool) (budget - !executed) in
          match Scheduler.take_wave ~full t.scheduler srcs ~max:(max 1 cap) with
          | [] -> continue := false
          | wave when List.for_all is_wave_head wave -> exec_wave pool wave
          | [ single ] -> (
              (* Non-propagate head (capture, apply, checkpoint, gc) or a
                 process without window steps: the legacy serial item. *)
              match exec_one single with
              | Ok counts -> if counts then incr executed
              | Error f -> failure := Some f)
          | _ -> assert false (* take_wave only builds waves of wave heads *))
      | None -> (
          match Scheduler.take_batch ~full t.scheduler srcs with
          | [] -> continue := false
          | batch ->
              (* Same-window sibling steps run back to back so the trailing
                 ones replay the head's memoized delta; budget and failure
                 checks still apply per item. *)
              List.iter
                (fun (scored : Scheduler.scored) ->
                  if !failure = None && !executed < budget then
                    match exec_one scored with
                    | Ok counts -> if counts then incr executed
                    | Error f -> failure := Some f)
                batch)
    done;
    match !failure with Some f -> Error f | None -> Ok !executed
  in
  if tracing then begin
    let trace = Roll_obs.Obs.trace t.obs in
    Roll_obs.Trace.with_span trace
      ~attrs:
        [
          ("budget", Roll_obs.Trace.Int budget);
          ("full", Roll_obs.Trace.Bool full);
          ("sharing", Roll_obs.Trace.Bool t.sharing);
        ]
      "service.drain"
      (fun () ->
        let result = body () in
        Roll_obs.Trace.add_attr trace "executed" (Roll_obs.Trace.Int !executed);
        (match result with
        | Error (f : step_error) ->
            Roll_obs.Trace.set_error trace
              (Printf.sprintf "%s failed at %s after %d attempts" f.view
                 f.point f.attempts)
        | Ok _ -> ());
        result)
  end
  else body ()

let plain_capture t () =
  advance_capture t;
  Ok ()

let plain_wave_step ctl ~relation ~hi ~frozen ~sleep:_ =
  Ok (Controller.step_window ctl ~relation ~hi ~frozen)

let step_all t ~budget =
  match
    drain_items ~full:false t ~budget
      ~step:(fun ctl -> Ok (Controller.propagate_step ctl))
      ~capture_run:(plain_capture t) ~wave_step:plain_wave_step
      ~apply_sleep:(fun d -> Database.advance_wall t.db d)
  with
  | Ok steps -> steps
  | Error (_ : step_error) -> assert false

let try_step_all ?sleep t ~budget ~retry =
  let sleep =
    match sleep with
    | Some f -> f
    | None -> fun d -> Database.advance_wall t.db d
  in
  let to_error view (f : Roll_util.Retry.failure) =
    {
      view;
      point = f.Roll_util.Retry.point;
      hit = f.Roll_util.Retry.hit;
      attempts = f.Roll_util.Retry.attempts;
    }
  in
  drain_items ~full:false t ~budget
    ~step:(fun ctl ->
      match Controller.propagate_step_reliable ctl ~retry ~sleep with
      | Ok advanced -> Ok advanced
      | Error f -> Error (to_error (View.name (Controller.view ctl)) f))
    ~capture_run:(reliable_capture t ~retry ~sleep)
    ~wave_step:(fun ctl ~relation ~hi ~frozen ~sleep ->
      match
        Controller.step_window_reliable ctl ~relation ~hi ~frozen ~retry ~sleep
      with
      | Ok r -> Ok r
      | Error f -> Error (to_error (View.name (Controller.view ctl)) f))
    ~apply_sleep:sleep

let maintain ?retry ?sleep t ~budget =
  match retry with
  | None ->
      drain_items ~full:true t ~budget
        ~step:(fun ctl -> Ok (Controller.propagate_step ctl))
        ~capture_run:(plain_capture t) ~wave_step:plain_wave_step
        ~apply_sleep:(fun d -> Database.advance_wall t.db d)
  | Some retry ->
      let sleep =
        match sleep with
        | Some f -> f
        | None -> fun d -> Database.advance_wall t.db d
      in
      let to_error view (f : Roll_util.Retry.failure) =
        {
          view;
          point = f.Roll_util.Retry.point;
          hit = f.Roll_util.Retry.hit;
          attempts = f.Roll_util.Retry.attempts;
        }
      in
      drain_items ~full:true t ~budget
        ~step:(fun ctl ->
          match Controller.propagate_step_reliable ctl ~retry ~sleep with
          | Ok advanced -> Ok advanced
          | Error f -> Error (to_error (View.name (Controller.view ctl)) f))
        ~capture_run:(reliable_capture t ~retry ~sleep)
        ~wave_step:(fun ctl ~relation ~hi ~frozen ~sleep ->
          match
            Controller.step_window_reliable ctl ~relation ~hi ~frozen ~retry
              ~sleep
          with
          | Ok r -> Ok r
          | Error f -> Error (to_error (View.name (Controller.view ctl)) f))
        ~apply_sleep:sleep

let refresh_all t =
  List.iter
    (fun (e : entry) ->
      if not e.paused then begin
        ignore (Controller.refresh_latest e.controller);
        sync_aux e
      end)
    t.entries

let gc_all t =
  let pruned =
    List.fold_left
      (fun acc (e : entry) ->
        acc
        +
        match (e.aux_of, e.hot_of) with
        | Some ae, _ -> Auxiliary.gc ae
        | None, Some he -> Hotset.gc he
        | None, None -> Controller.gc e.controller)
      0 t.entries
  in
  ignore (reclaim_wal t);
  pruned

(* ------------------------------------------------------------------ *)
(* JSON renderings (rollctl --json, CI assertions)                     *)

let status_json t =
  let module E = Roll_obs.Export in
  let buf = Buffer.create 512 in
  Buffer.add_char buf '[';
  List.iteri
    (fun i (s : status) ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf
        (Printf.sprintf
           "{\"view\":%s,\"as_of\":%d,\"hwm\":%d,\"staleness\":%d,\"sla\":%d,\"slack\":%d,\"delta_rows\":%d,\"paused\":%b,\"retries\":%d,\"aborts\":%d,\"recoveries\":%d,\"memo_hits\":%d,\"memo_misses\":%d,\"shared_builds\":%d,\"aux\":%b,\"aux_hits\":%d,\"aux_misses\":%d,\"aux_lag\":%d,\"hot\":%b,\"hot_hits\":%d,\"hot_misses\":%d,\"heavy_keys\":%d,\"light_rows\":%d,\"reads_served\":%d,\"reads_rejected\":%d,\"read_wait\":%s}"
           (E.json_string s.name) s.as_of s.hwm s.staleness s.sla s.slack
           s.delta_rows s.paused s.retries s.aborts s.recoveries s.memo_hits
           s.memo_misses s.shared_builds s.aux s.aux_hits s.aux_misses
           s.aux_lag s.hot s.hot_hits s.hot_misses s.heavy_keys s.light_rows
           s.reads_served s.reads_rejected
           (E.json_float s.read_wait)))
    (status t);
  Buffer.add_char buf ']';
  Buffer.contents buf

(* Per-shard queue depth: planned propagate items hashed by view name onto
   the domain slots; every other kind belongs to the single-writer drain
   domain (slot 0). Sharding is observational — waves assign work by wave
   position — but it shows how the planned queue would spread. *)
let shard_depths ?full t =
  let d = Array.make (domains t) 0 in
  List.iter
    (fun (s : Scheduler.scored) ->
      match s.Scheduler.item with
      | Scheduler.Propagate_step { view; _ } ->
          let i = shard_of t view in
          d.(i) <- d.(i) + 1
      | _ -> d.(0) <- d.(0) + 1)
    (schedule ?full t);
  d

let ran_by_domain t = Scheduler.ran_by_domain t.scheduler

let shards_json ?full t =
  let module E = Roll_obs.Export in
  let buf = Buffer.create 256 in
  Buffer.add_string buf (Printf.sprintf "{\"domains\":%d,\"shards\":[" (domains t));
  Array.iteri
    (fun i depth ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf
        (Printf.sprintf "{\"shard\":%d,\"depth\":%d}" i depth))
    (shard_depths ?full t);
  Buffer.add_string buf "],\"ran\":[";
  List.iteri
    (fun i ((kind, domain), count) ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf
        (Printf.sprintf "{\"kind\":%s,\"domain\":%d,\"count\":%d}"
           (E.json_string kind) domain count))
    (ran_by_domain t);
  Buffer.add_string buf "]}";
  Buffer.contents buf

let schedule_json ?full t =
  let module E = Roll_obs.Export in
  let buf = Buffer.create 512 in
  Buffer.add_char buf '[';
  List.iteri
    (fun i (s : Scheduler.scored) ->
      if i > 0 then Buffer.add_char buf ',';
      let window =
        match s.Scheduler.window with
        | Some (table, lo, hi) ->
            Printf.sprintf "{\"table\":%s,\"lo\":%d,\"hi\":%d}"
              (E.json_string table) lo hi
        | None -> "null"
      in
      Buffer.add_string buf
        (Printf.sprintf
           "{\"item\":%s,\"kind\":%s,\"score\":%s,\"staleness\":%d,\"slack\":%d,\"est_rows\":%d,\"est_cost\":%s,\"deferred\":%b,\"readers\":%d,\"aux\":%b,\"hot\":%b,\"window\":%s}"
           (E.json_string
              (Format.asprintf "%a" Scheduler.pp_item s.Scheduler.item))
           (E.json_string (Scheduler.kind_name s.Scheduler.item))
           (E.json_float s.Scheduler.score)
           s.Scheduler.staleness s.Scheduler.slack s.Scheduler.est_rows
           (E.json_float s.Scheduler.est_cost)
           s.Scheduler.deferred s.Scheduler.readers s.Scheduler.aux
           s.Scheduler.hot window))
    (schedule ?full t);
  Buffer.add_char buf ']';
  Buffer.contents buf
