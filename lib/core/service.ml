module Time = Roll_delta.Time
module Database = Roll_storage.Database
module Capture = Roll_capture.Capture

type entry = { name : string; controller : Controller.t; mutable paused : bool }

type status = {
  name : string;
  as_of : Time.t;
  hwm : Time.t;
  staleness : int;
  delta_rows : int;
  paused : bool;
  retries : int;
  aborts : int;
  recoveries : int;
}

type step_error = { view : string; point : string; hit : int; attempts : int }

type t = {
  db : Database.t;
  capture : Capture.t;
  mutable entries : entry list;  (** registration order *)
}

let create db capture = { db; capture; entries = [] }

let register ?(durable = false) t ~algorithm view =
  let name = View.name view in
  if List.exists (fun (e : entry) -> String.equal e.name name) t.entries then
    invalid_arg ("Service.register: view already registered: " ^ name);
  let controller = Controller.create ~durable t.db t.capture view ~algorithm in
  t.entries <- t.entries @ [ { name; controller; paused = false } ];
  controller

let register_recovered ?checkpoint t ~algorithm view =
  let name = View.name view in
  if List.exists (fun (e : entry) -> String.equal e.name name) t.entries then
    invalid_arg ("Service.register_recovered: view already registered: " ^ name);
  let controller =
    Controller.recover ?checkpoint t.db t.capture view ~algorithm
  in
  t.entries <- t.entries @ [ { name; controller; paused = false } ];
  controller

let find t name =
  match List.find_opt (fun (e : entry) -> String.equal e.name name) t.entries with
  | Some e -> e
  | None -> raise Not_found

let controller t name = (find t name).controller

let names t = List.map (fun (e : entry) -> e.name) t.entries

let status t =
  let now = Database.now t.db in
  List.map
    (fun (e : entry) ->
      let hwm = Controller.hwm e.controller in
      let stats = Controller.stats e.controller in
      {
        name = e.name;
        as_of = Controller.as_of e.controller;
        hwm;
        staleness = now - hwm;
        delta_rows = Roll_delta.Delta.length (Controller.ctx e.controller).Ctx.out;
        paused = e.paused;
        retries = Stats.retries stats;
        aborts = Stats.aborts stats;
        recoveries = Stats.recoveries stats;
      })
    t.entries

let pause t name = (find t name).paused <- true

let resume t name = (find t name).paused <- false

let step_all t ~budget =
  let steps = ref 0 in
  let made_progress = ref true in
  while !steps < budget && !made_progress do
    made_progress := false;
    List.iter
      (fun (e : entry) ->
        if (not e.paused) && !steps < budget then
          if Controller.propagate_step e.controller then begin
            incr steps;
            made_progress := true
          end)
      t.entries
  done;
  !steps

let try_step_all ?sleep t ~budget ~retry =
  let sleep =
    match sleep with
    | Some f -> f
    | None -> fun d -> Database.advance_wall t.db d
  in
  let steps = ref 0 in
  let made_progress = ref true in
  let failure = ref None in
  while !failure = None && !steps < budget && !made_progress do
    made_progress := false;
    List.iter
      (fun (e : entry) ->
        if !failure = None && (not e.paused) && !steps < budget then
          match Controller.propagate_step_reliable e.controller ~retry ~sleep with
          | Ok true ->
              incr steps;
              made_progress := true
          | Ok false -> ()
          | Error (f : Roll_util.Retry.failure) ->
              failure :=
                Some
                  {
                    view = e.name;
                    point = f.Roll_util.Retry.point;
                    hit = f.Roll_util.Retry.hit;
                    attempts = f.Roll_util.Retry.attempts;
                  })
      t.entries
  done;
  match !failure with Some f -> Error f | None -> Ok !steps

let refresh_all t =
  List.iter
    (fun (e : entry) ->
      if not e.paused then ignore (Controller.refresh_latest e.controller))
    t.entries

let gc_all t =
  List.fold_left (fun acc (e : entry) -> acc + Controller.gc e.controller) 0 t.entries
