open Roll_relation
module Time = Roll_delta.Time
module Delta = Roll_delta.Delta
module Database = Roll_storage.Database
module Capture = Roll_capture.Capture

let log_src = Logs.Src.create "roll.executor" ~doc:"propagation-query execution"

module Log = (val Logs.src_log log_src)

(* One pipeline input per query term: base tables are probed or scanned
   lazily through cursors; delta windows stream out of the capture logs. *)
let source_of_term (ctx : Ctx.t) i = function
  | Pquery.Base ->
      let table_name = View.source_table ctx.view i in
      Exec.source_of_table (Database.table ctx.db table_name)
  | Pquery.Win { lo; hi } ->
      if lo > hi then invalid_arg "Executor: empty window bounds reversed";
      if hi > Capture.hwm ctx.capture then
        invalid_arg
          (Printf.sprintf
             "Executor: window (%d,%d] beyond capture high-water mark %d" lo hi
             (Capture.hwm ctx.capture));
      let table = View.source_table ctx.view i in
      Exec.source_of_delta_window
        ~name:("\xce\x94" ^ table)
        (Capture.delta ctx.capture ~table)
        ~lo ~hi

(* ------------------------------------------------------------------ *)
(* Auxiliary-view and heavy-light substitution                         *)

(* A Base term whose source position has a fresh auxiliary view (the
   [ctx.aux] closure, installed by the Auxiliary registry) reads the
   auxiliary's mirror table instead of the base relation. The mirror holds
   the per-relation partial π(σ(R_j)) — single-source atoms pre-applied,
   only the columns the join and the projection need retained — so the
   query is rewritten to match: pre-applied atoms are dropped, every other
   column reference is remapped through the mirror's column map. Because a
   fresh mirror equals the partial applied to the base table's current
   committed state, the rewritten query emits bit-identical rows to the
   original, and stale auxiliaries simply resolve to the base path.

   Where no auxiliary applies, the [ctx.hot] closure (the Hotset registry's
   heavy-light partitioning) is consulted next: a fresh partition reads the
   η-union of its part mirrors — light residual plus the per-heavy-key
   partials, which partition the same π(σ(R_j)) shape — under exactly the
   same column-remap and atom-dropping rewrite. *)
type sub = Aux of Ctx.aux_source | Hot of Ctx.hot_source

let sub_cols = function
  | Aux (a : Ctx.aux_source) -> a.Ctx.cols
  | Hot (h : Ctx.hot_source) -> h.Ctx.cols

type resolved = {
  sources : Exec.source array;
  predicate : Roll_relation.Predicate.t;
  project : Roll_relation.Tuple.t array -> Roll_relation.Tuple.t;
  substituted : int;
      (** how many Base terms read an auxiliary or a partition *)
}

let resolve (ctx : Ctx.t) (q : Pquery.t) =
  let module P = Roll_relation.Predicate in
  if Array.length q <> View.n_sources ctx.view then
    invalid_arg "Executor.evaluate: query arity mismatch";
  let view = ctx.view in
  let subs =
    Array.mapi
      (fun i term ->
        match term with
        | Pquery.Win _ -> None
        | Pquery.Base -> (
            match
              Option.bind ctx.aux (fun lookup -> lookup ~peek:false i)
            with
            | Some a -> Some (Aux a)
            | None ->
                Option.map
                  (fun h -> Hot h)
                  (Option.bind ctx.hot (fun lookup -> lookup ~peek:false i))))
      q
  in
  let sources =
    Array.mapi
      (fun i term ->
        match subs.(i) with
        | Some (Aux a) ->
            Exec.source_of_aux
              ~name:("\xce\xb1" ^ View.source_table view i)
              a.Ctx.table
        | Some (Hot h) ->
            Exec.source_of_union
              ~name:("\xce\xb7" ^ View.source_table view i)
              h.Ctx.parts
        | None -> source_of_term ctx i term)
      q
  in
  if Array.for_all Option.is_none subs then
    {
      sources;
      predicate = View.predicate view;
      project = View.project_bindings view;
      substituted = 0;
    }
  else begin
    let remap_col (c : P.col) =
      match subs.(c.source) with
      | None -> c
      | Some sub ->
          let cols = sub_cols sub in
          let rec find k =
            if k >= Array.length cols then
              invalid_arg
                "Executor: substituted mirror is missing a referenced column"
            else if cols.(k) = c.P.column then { c with P.column = k }
            else find (k + 1)
          in
          find 0
    in
    let rec remap_operand = function
      | P.Col c -> P.Col (remap_col c)
      | P.Const _ as o -> o
      | P.Neg e -> P.Neg (remap_operand e)
      | P.Add (a, b) -> P.Add (remap_operand a, remap_operand b)
      | P.Sub (a, b) -> P.Sub (remap_operand a, remap_operand b)
      | P.Mul (a, b) -> P.Mul (remap_operand a, remap_operand b)
      | P.Div (a, b) -> P.Div (remap_operand a, remap_operand b)
    in
    (* Atoms local to a substituted source were applied when the auxiliary
       was derived; re-applying them is impossible anyway (their pure-filter
       columns are not in the mirror). Everything else survives, remapped. *)
    let keep atom =
      match P.sources_of_atom atom with
      | [ j ] -> Option.is_none subs.(j)
      | _ -> true
    in
    let predicate =
      View.predicate view
      |> List.filter keep
      |> List.map (function
           | P.Join (a, b) -> P.Join (remap_col a, remap_col b)
           | P.Cmp (op, x, y) -> P.Cmp (op, remap_operand x, remap_operand y))
    in
    let ops =
      List.map (fun (_, op) -> remap_operand op) (View.projection view)
    in
    let project bindings =
      Array.of_list (List.map (P.eval_operand bindings) ops)
    in
    {
      sources;
      predicate;
      project;
      substituted =
        Array.fold_left
          (fun n s -> if Option.is_some s then n + 1 else n)
          0 subs;
    }
  end

let plan_parts (ctx : Ctx.t) (q : Pquery.t) =
  let r = resolve ctx q in
  let infos = Array.map (fun (s : Exec.source) -> s.info) r.sources in
  (r, Planner.plan r.predicate infos)

let plan_of ctx q = snd (plan_parts ctx q)

(* Per-input read counts in input order (the footprint shape Stats and the
   contention simulator expect). *)
let reads_of (sources : Exec.source array) (report : Exec.report) =
  let reads = Array.make (Array.length sources) 0 in
  Array.iter
    (fun (st : Exec.step_stat) ->
      reads.(st.source) <- reads.(st.source) + st.rows_in)
    report.steps;
  Array.to_list
    (Array.mapi (fun i r -> (sources.(i).Exec.info.Planner.name, r)) reads)

let record_report (ctx : Ctx.t) (report : Exec.report) =
  ctx.last_report <- Some report;
  let t = Exec.totals report in
  Stats.record_exec ctx.stats ~scanned:t.scanned ~probed:t.probed
    ~hash_builds:t.hash_builds ~wall:t.wall;
  Array.iter
    (fun (st : Exec.step_stat) ->
      let scanned, probed =
        match st.access with
        | Planner.Index_probe _ -> (0, st.rows_in)
        | Planner.Scan | Planner.Hash_join _ | Planner.Nested_loop ->
            (st.rows_in, 0)
      in
      Stats.record_resource ctx.stats st.resource ~scanned ~probed
        ~wall:st.wall)
    report.steps

(* Synthesize one "exec.operator" span per plan step from the finished
   report, parented under whichever span is open (the "exec.query" span on
   the maintenance path). Steps are laid out back to back by exclusive wall
   time from [t0] — a visual decomposition of the drain, not the
   interleaved pull order, which would cost a timestamp pair per row. *)
let record_operator_spans (ctx : Ctx.t) ~t0 (report : Exec.report) =
  let trace = Roll_obs.Obs.trace ctx.obs in
  let at = ref t0 in
  Array.iter
    (fun (st : Exec.step_stat) ->
      let start = !at in
      let stop = start +. Float.max 0. st.wall in
      at := stop;
      Roll_obs.Trace.record_complete trace ~start ~stop
        ~attrs:
          [
            ("resource", Roll_obs.Trace.Str st.resource);
            ("access", Roll_obs.Trace.Str (Planner.access_name st.access));
            ("est_rows", Roll_obs.Trace.Float st.est_rows);
            ("actual_rows", Roll_obs.Trace.Int st.actual_rows);
            ("rows_in", Roll_obs.Trace.Int st.rows_in);
            ("hash_builds", Roll_obs.Trace.Int st.hash_builds);
          ]
        "exec.operator")
    report.steps

let evaluate_parts (ctx : Ctx.t) (q : Pquery.t) =
  let r, plan = plan_parts ctx q in
  let sources = r.sources in
  let out = ref [] in
  (* The build cache shares the memo's enablement and drain lifetime:
     standalone contexts (disabled memo) run the pipeline exactly as
     before sharing existed. *)
  let cache =
    if Memo.enabled ctx.memo then Some (Memo.exec_cache ctx.memo) else None
  in
  let hits_before =
    match cache with Some c -> Exec.cache_hits c | None -> 0
  in
  let now =
    if Roll_obs.Obs.enabled ctx.obs then
      Some (fun () -> Roll_obs.Obs.now ctx.obs)
    else None
  in
  let tracing = Roll_obs.Obs.tracing ctx.obs in
  let t0 = if tracing then Roll_obs.Obs.now ctx.obs else 0. in
  let report =
    Exec.run ?cache ?now ~rule:ctx.Ctx.timestamp_rule ~sources ~plan
      ~emit:(fun bindings count ts ->
        let tuple = r.project bindings in
        (* Base rows carry the no-timestamp sentinel; it is neutral under
           the combination rule but must never escape into a view delta
           (Section 4.2's min-of-contributors convention): a row produced
           purely from base rows is part of the original content and is
           stamped with the origin time. *)
        let ts = if ts = Cursor.no_ts then Time.origin else ts in
        out := (tuple, count, ts) :: !out)
      ()
  in
  record_report ctx report;
  if tracing then record_operator_spans ctx ~t0 report;
  (match cache with
  | Some c -> Stats.add_shared_builds ctx.stats (Exec.cache_hits c - hits_before)
  | None -> ());
  (List.rev !out, sources, report, r.substituted)

let evaluate (ctx : Ctx.t) (q : Pquery.t) =
  let rows, sources, report, _substituted = evaluate_parts ctx q in
  (rows, reads_of sources report)

let explain (ctx : Ctx.t) (q : Pquery.t) =
  let r, plan = plan_parts ctx q in
  let infos = Array.map (fun (s : Exec.source) -> s.info) r.sources in
  Pquery.describe ctx.view q ^ "\n" ^ Planner.describe infos plan

let explain_analyze (ctx : Ctx.t) (q : Pquery.t) =
  let _rows, _sources, report, _substituted = evaluate_parts ctx q in
  let buf = Buffer.create 256 in
  Buffer.add_string buf (Pquery.describe ctx.view q);
  Buffer.add_char buf '\n';
  Array.iter
    (fun (st : Exec.step_stat) ->
      let keys =
        match st.access with
        | Planner.Hash_join pairs ->
            Printf.sprintf " on columns [%s]"
              (String.concat "," (List.map (fun (_, c) -> string_of_int c) pairs))
        | Planner.Index_probe (_, columns) ->
            Printf.sprintf " on columns [%s]"
              (String.concat "," (List.map string_of_int columns))
        | Planner.Scan | Planner.Nested_loop -> ""
      in
      let builds =
        if st.hash_builds > 0 then
          Printf.sprintf ", %d hash build%s" st.hash_builds
            (if st.hash_builds > 1 then "s" else "")
        else ""
      in
      Buffer.add_string buf
        (Printf.sprintf
           "  %s %s%s: est %.0f rows, actual %d rows, read %d%s, %.3f ms\n"
           (Planner.access_name st.access)
           st.resource keys st.est_rows st.actual_rows st.rows_in builds
           (st.wall *. 1000.)))
    report.steps;
  Buffer.add_string buf
    (Printf.sprintf "  => %d rows emitted in %.3f ms\n" report.emitted
       (report.total_wall *. 1000.));
  Buffer.contents buf

let execute_body (ctx : Ctx.t) ~sign (q : Pquery.t) =
  ctx.on_execute ();
  (* Frozen-clock mode: the wave already advanced capture before
     dispatching, and base tables do not change mid-wave, so there is
     nothing new to capture. *)
  if ctx.auto_capture && ctx.frozen_exec = None then
    Capture.advance ctx.capture;
  Roll_util.Fault.hit ctx.fault "exec.query";
  let rows, sources, report, substituted = evaluate_parts ctx q in
  let reads = reads_of sources report in
  let description = Pquery.describe ctx.view q in
  let tag = (if sign < 0 then "-" else "+") ^ description in
  if Roll_obs.Obs.tracing ctx.obs then begin
    let trace = Roll_obs.Obs.trace ctx.obs in
    Roll_obs.Trace.add_attr trace "query" (Roll_obs.Trace.Str tag);
    Roll_obs.Trace.add_attr trace "rows" (Roll_obs.Trace.Int (List.length rows));
    if substituted > 0 then
      Roll_obs.Trace.add_attr trace "aux_sources"
        (Roll_obs.Trace.Int substituted)
  end;
  Roll_util.Fault.hit ctx.fault "exec.emit";
  List.iter
    (fun (tuple, count, ts) ->
      ctx.on_emit ~description:tag tuple (sign * count) ts;
      Delta.append ctx.out tuple ~count:(sign * count) ~ts)
    rows;
  Roll_util.Fault.hit ctx.fault "exec.marker";
  (* In frozen-clock mode the query's execution time is the wave's frozen
     instant: no marker transaction is committed (workers must not touch
     the single-writer database clock), and because base tables are frozen
     for the wave's duration, every window evaluates to the same row set
     it would at any physical execution time. *)
  let t_exec =
    match ctx.frozen_exec with
    | Some t -> t
    | None -> Database.commit_marker ctx.db ~tag
  in
  Log.debug (fun m ->
      m "executed %s at t=%d: %d rows emitted" tag t_exec (List.length rows));
  Stats.record_query ctx.stats
    { Stats.exec = t_exec; description = tag; reads; emitted = List.length rows };
  (match ctx.geometry with
  | None -> ()
  | Some g ->
      let spans =
        Array.map
          (function
            | Pquery.Base -> Geometry.Full_upto t_exec
            | Pquery.Win { lo; hi } -> Geometry.Window (lo, hi))
          q
      in
      Geometry.record ~label:tag g ~sign spans);
  t_exec

let execute (ctx : Ctx.t) ~sign (q : Pquery.t) =
  if Roll_obs.Obs.tracing ctx.obs then
    Roll_obs.Trace.with_span
      (Roll_obs.Obs.trace ctx.obs)
      ~attrs:
        [
          ("view", Roll_obs.Trace.Str (View.name ctx.view));
          ("sign", Roll_obs.Trace.Int sign);
        ]
      "exec.query"
      (fun () -> execute_body ctx ~sign q)
  else execute_body ctx ~sign q

let materialize (ctx : Ctx.t) =
  if ctx.auto_capture then Capture.advance ctx.capture;
  let q = Pquery.all_base (View.n_sources ctx.view) in
  let rows, _reads = evaluate ctx q in
  let relation = Relation.create (View.output_schema ctx.view) in
  List.iter (fun (tuple, count, _) -> Relation.add relation tuple count) rows;
  let t_exec = Database.commit_marker ctx.db ~tag:("materialize " ^ View.name ctx.view) in
  (relation, t_exec)
