(** Checkpointing view-maintenance state.

    In the paper's prototype the view delta and control tables live inside
    the database, so they are durable for free; here the maintenance state
    is process-local, and this module makes it durable. A checkpoint holds,
    for one maintained view: the delta rows at or below the high-water mark
    (σ_{t_initial, hwm}(Δ), which is a complete timed delta — Theorem 4.3),
    the materialized contents with their [as_of] time, and the two times
    themselves. Rows beyond the high-water mark are deliberately {e not}
    saved: every propagation query only emits rows timestamped after the
    high-water mark it started from, so a resumed process that restarts all
    frontiers at the saved hwm regenerates exactly the dropped work, no
    more and no less.

    [resume] rebuilds a ready-to-run (context, apply, rolling) triple over a
    database restored from its own WAL (see {!Roll_storage.Wal_codec}).

    The file ends with a row-count trailer; a checkpoint torn by a crash
    mid-save — even one cut exactly at a row boundary — fails [resume] with
    [Corrupt] instead of silently resuming a smaller snapshot
    ([Controller.recover] then falls back to WAL-only recovery). *)

type t = {
  view_name : string;
  t_initial : Roll_delta.Time.t;  (** where the saved delta starts *)
  hwm : Roll_delta.Time.t;
  as_of : Roll_delta.Time.t;  (** apply position, <= hwm *)
}

val save :
  Ctx.t -> hwm:Roll_delta.Time.t -> apply:Apply.t -> string -> unit
(** [save ctx ~hwm ~apply path] writes the checkpoint file.
    @raise Invalid_argument if [Apply.as_of apply > hwm]. *)

val peek : string -> t
(** Read just the header. @raise Roll_storage.Wal_codec.Corrupt *)

val resume :
  Roll_storage.Database.t ->
  Roll_capture.Capture.t ->
  View.t ->
  string ->
  Ctx.t * Apply.t * Rolling.t
(** [resume db capture view path] loads the checkpoint and reconstructs
    maintenance state: the context's delta holds the saved rows, the apply
    process resumes at the saved [as_of], and the rolling process starts
    every frontier at the saved hwm. The capture process must have the
    view's tables attached and the database should be the restored original
    (same commit history through the checkpointed hwm).
    @raise Roll_storage.Wal_codec.Corrupt on a malformed file
    @raise Invalid_argument if the view name or output schema mismatch. *)
