open Roll_relation
module Time = Roll_delta.Time
module Delta = Roll_delta.Delta

type block = { ctx : Ctx.t; rolling : Rolling.t; policy : Rolling.policy }

type t = {
  blocks : block array;
  store : Relation.t;
  mutable as_of : Time.t;
}

let create db capture ~views ~policies ~t_initial =
  (match views with
  | [] -> invalid_arg "Union_view.create: no blocks"
  | first :: rest ->
      let schema = View.output_schema first in
      List.iter
        (fun v ->
          if not (Schema.equal (View.output_schema v) schema) then
            invalid_arg "Union_view.create: block output schemas differ")
        rest);
  if List.length views <> List.length policies then
    invalid_arg "Union_view.create: one policy per block required";
  let blocks =
    List.map2
      (fun view policy ->
        let ctx = Ctx.create ~t_initial db capture view in
        { ctx; rolling = Rolling.create ctx ~t_initial; policy })
      views policies
    |> Array.of_list
  in
  let schema = View.output_schema (List.hd views) in
  { blocks; store = Relation.create schema; as_of = t_initial }

let n_blocks t = Array.length t.blocks

let block_ctx t i = t.blocks.(i).ctx

let hwm t =
  Array.fold_left
    (fun acc b -> Time.min acc (Rolling.hwm b.rolling))
    max_int t.blocks

let propagate_until t target =
  Array.iter
    (fun b -> Rolling.run_until b.rolling ~target ~policy:b.policy)
    t.blocks

let contents t = t.store

let as_of t = t.as_of

let roll_to t target =
  if target < t.as_of then invalid_arg "Union_view.roll_to: target is behind";
  if target > hwm t then
    invalid_arg "Union_view.roll_to: target beyond high-water mark";
  Array.iter
    (fun b ->
      Cursor.iter
        (fun (r : Cursor.row) -> Relation.add t.store r.tuple r.count)
        (Delta.window_cursor b.ctx.Ctx.out ~lo:t.as_of ~hi:target))
    t.blocks;
  t.as_of <- target
