module Time = Roll_delta.Time
module Database = Roll_storage.Database

type t = { ctx : Ctx.t; n : int; tfwd : Time.t array; mutable align : bool }

type policy = int -> int

let uniform interval _ = interval

let per_relation intervals i = intervals.(i)

let create ctx ~t_initial =
  let n = View.n_sources ctx.Ctx.view in
  { ctx; n; tfwd = Array.make n t_initial; align = false }

let align t = t.align

let set_align t b = t.align <- b

(* Window upper bound for a step from [start]. Aligned windows additionally
   snap to the interval grid: sibling views materialize at different commit
   times, so their frontiers start offset by a few commits and their window
   bounds would never coincide; snapping each relation's first window short
   of the next multiple of [interval] re-synchronizes the frontiers, after
   which structurally identical views request literally identical windows —
   the condition for the delta memo and build cache to hit across views. *)
let window_hi ~align ~start ~interval ~now =
  let hi = Time.min (start + interval) now in
  if align then Time.min hi (((start / interval) + 1) * interval) else hi

let hwm t = Array.fold_left Time.min t.tfwd.(0) t.tfwd

let tfwd t i = t.tfwd.(i)

let frontiers t = Array.copy t.tfwd

let set_tfwd t i v = t.tfwd.(i) <- v

let step_window t i ~hi =
  if hi <= t.tfwd.(i) then `Idle
  else begin
    let start = t.tfwd.(i) in
    if t.ctx.Ctx.auto_capture && t.ctx.Ctx.frozen_exec = None then
      Roll_capture.Capture.advance t.ctx.Ctx.capture;
    if Compute_delta.window_known_empty t.ctx i ~lo:start ~hi
    then begin
      (* Quiet window: the forward query and all of its compensations are
         empty, so the frontier advances for free. The step's net brick is
         still recorded so the geometry trace tiles exactly. *)
      (match t.ctx.Ctx.geometry with
      | None -> ()
      | Some g ->
          let spans =
            Array.init t.n (fun j ->
                if j = i then Geometry.Window (start, hi)
                else Geometry.Full_upto t.tfwd.(j))
          in
          Geometry.record ~label:"(skipped quiet brick)" g ~sign:1 spans);
      t.tfwd.(i) <- hi;
      `Advanced (hwm t)
    end
    else begin
    let fwd =
      Pquery.replace (Pquery.all_base t.n) i (Pquery.Win { lo = start; hi })
    in
    (* The forward query sees every other relation at its own execution
       time; its intended view of relation j is R^j at the current frontier
       tfwd.(j), so the execute-plus-compensate unit [eval_at] repairs the
       whole difference in one call. Net effect of the step: the brick
       (start, hi] x prod_{j<>i} [t0, tfwd.(j)] — and because that net
       effect is execution-time independent, sibling views stepping the
       same window replay it from the memo. *)
    let v = Array.init t.n (fun j -> if j = i then hi else t.tfwd.(j)) in
    Compute_delta.eval_at ~sign:1
      ~on_executed:(fun () ->
        Roll_util.Fault.hit t.ctx.Ctx.fault "rolling.post_forward")
      t.ctx fwd v;
    Roll_util.Fault.hit t.ctx.Ctx.fault "rolling.pre_advance";
    t.tfwd.(i) <- hi;
    `Advanced (hwm t)
    end
  end

let step_relation t i ~interval =
  if interval <= 0 then invalid_arg "Rolling.step_relation: interval must be positive";
  let now = Database.now t.ctx.Ctx.db in
  if t.tfwd.(i) >= now then `Idle
  else step_window t i ~hi:(window_hi ~align:t.align ~start:t.tfwd.(i) ~interval ~now)

let step t ~policy =
  (* Choose the base relation with the smallest forward frontier; with this
     choice hwm advances as evenly as the policy's intervals allow. *)
  let i = ref 0 in
  for j = 1 to t.n - 1 do
    if t.tfwd.(j) < t.tfwd.(!i) then i := j
  done;
  let i = !i in
  match step_relation t i ~interval:(policy i) with
  | `Advanced h -> `Advanced (i, h)
  | `Idle -> `Idle

let run_until t ~target ~policy =
  if target > Database.now t.ctx.Ctx.db then
    invalid_arg "Rolling.run_until: target in the future";
  while hwm t < target do
    match step t ~policy with
    | `Advanced _ -> ()
    | `Idle -> invalid_arg "Rolling.run_until: unreachable target"
  done
