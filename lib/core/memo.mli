(** Drain-scoped delta memo: shared maintenance work across sibling views.

    [ComputeDelta]'s net result for a given (canonical query signature,
    normalized time vector, target time, sign) is a mathematically fixed
    timed delta: windows are fixed row sets and base-table history is
    immutable, so the rows it appends to the view delta do not depend on
    when the queries physically execute. That makes the computation
    memoizable — sibling views whose next steps read the same ΔR window,
    and the compensation recursion's own repeated subqueries, can replay
    the first computation's literal rows instead of re-executing.

    A memo is installed into sibling {!Ctx}s by the {!Service} when sharing
    is on; each drain starts from an empty memo ({!clear}), retry rollbacks
    evict the failed step's entries ({!evict_since}), and the memo also
    owns the drain's {!Exec.cache} so physical work below the row memo
    (hash builds, window materializations) is shared through the same
    lifetime.

    A [t] is domain-safe: the map is sharded internally (per-shard tables
    and mutexes), hit/miss counters are atomic, and every entry is tagged
    with the {e owner} slot that inserted it ({!add}), so a rollback can
    evict exactly the failing step's entries even when the step ran on a
    worker domain while siblings were filling the memo concurrently
    ([evict_since ~owner]). Completed entries are always value-correct
    regardless of executing domain: rows are captured only after the
    computation finishes, and its net result is execution-time
    independent. *)

type t

type key = {
  signature : string;  (** {!Pquery.signature} of the (view, query) pair *)
  tau : int array;
      (** the time vector, with components at window positions normalized
          to 0 (they are never read by the recursion) *)
  t_new : int;  (** target time; [-1] marks an [eval_at]-style entry *)
  sign : int;
}

val create : ?enabled:bool -> unit -> t
(** [enabled] defaults to true. A disabled memo never finds or stores
    entries — {!Ctx.create} installs a private disabled one so standalone
    contexts behave exactly as before sharing existed. *)

val enabled : t -> bool

val set_enabled : t -> bool -> unit

val exec_cache : t -> Exec.cache
(** The physical build cache sharing this memo's drain lifetime. *)

val find : t -> key -> Roll_delta.Delta.row array option
(** Counts a hit or miss; {!hits}/{!misses} read the cumulative totals. *)

val add : ?owner:int -> t -> key -> Roll_delta.Delta.row array -> unit
(** [owner] (default 0) tags the entry with the inserting work-item slot —
    {!Ctx.memo_owner} on the maintenance path — so a parallel rollback can
    scope {!evict_since} to one step's entries. *)

val mark : t -> int
(** Current insertion sequence; pair with {!evict_since} around a step so
    a rollback can drop exactly the entries the step produced. *)

val evict_since : ?owner:int -> t -> int -> unit
(** Drop every entry added after the given {!mark} — the retry-rollback
    companion to [Delta.truncate]: a re-run step must recompute, not
    replay rows the rollback just discarded. With [owner], only that
    slot's entries are dropped (parallel waves roll back one step without
    disturbing sibling steps' concurrent fills); without, everything past
    the mark goes (the serial drain, where all of it belongs to the failed
    step). *)

val clear : t -> unit
(** Drop all entries and clear the build cache (drain-scoped
    invalidation; also used after capture GC and on aborts). Hit/miss
    counters are cumulative and survive clearing. *)

val size : t -> int

val hits : t -> int

val misses : t -> int
