(** Drain-scoped delta memo: shared maintenance work across sibling views.

    [ComputeDelta]'s net result for a given (canonical query signature,
    normalized time vector, target time, sign) is a mathematically fixed
    timed delta: windows are fixed row sets and base-table history is
    immutable, so the rows it appends to the view delta do not depend on
    when the queries physically execute. That makes the computation
    memoizable — sibling views whose next steps read the same ΔR window,
    and the compensation recursion's own repeated subqueries, can replay
    the first computation's literal rows instead of re-executing.

    A memo is installed into sibling {!Ctx}s by the {!Service} when sharing
    is on; each drain starts from an empty memo ({!clear}), retry rollbacks
    evict the failed step's entries ({!evict_since}), and the memo also
    owns the drain's {!Exec.cache} so physical work below the row memo
    (hash builds, window materializations) is shared through the same
    lifetime. *)

type t

type key = {
  signature : string;  (** {!Pquery.signature} of the (view, query) pair *)
  tau : int array;
      (** the time vector, with components at window positions normalized
          to 0 (they are never read by the recursion) *)
  t_new : int;  (** target time; [-1] marks an [eval_at]-style entry *)
  sign : int;
}

val create : ?enabled:bool -> unit -> t
(** [enabled] defaults to true. A disabled memo never finds or stores
    entries — {!Ctx.create} installs a private disabled one so standalone
    contexts behave exactly as before sharing existed. *)

val enabled : t -> bool

val set_enabled : t -> bool -> unit

val exec_cache : t -> Exec.cache
(** The physical build cache sharing this memo's drain lifetime. *)

val find : t -> key -> Roll_delta.Delta.row array option
(** Counts a hit or miss; {!hits}/{!misses} read the cumulative totals. *)

val add : t -> key -> Roll_delta.Delta.row array -> unit

val mark : t -> int
(** Current insertion sequence; pair with {!evict_since} around a step so
    a rollback can drop exactly the entries the step produced. *)

val evict_since : t -> int -> unit
(** Drop every entry added after the given {!mark} — the retry-rollback
    companion to [Delta.truncate]: a re-run step must recompute, not
    replay rows the rollback just discarded. *)

val clear : t -> unit
(** Drop all entries and clear the build cache (drain-scoped
    invalidation; also used after capture GC and on aborts). Hit/miss
    counters are cumulative and survive clearing. *)

val size : t -> int

val hits : t -> int

val misses : t -> int
