(** Multi-view maintenance service: the control tables of Figure 11.

    The prototype's control tables "identify the tables associated with
    each materialized view … and record the current view materialization
    time and the view delta high-water mark". This module is that registry:
    several views maintained over one database and one capture process,
    each with its own propagation algorithm and apply state, plus the
    operational controls a DBA would expect — status, per-view
    pause/resume (either process "can be suspended during periods of high
    system load"), budgeted round-robin propagation, and garbage
    collection. *)

type t

type status = {
  name : string;
  as_of : Roll_delta.Time.t;  (** materialization time of the stored view *)
  hwm : Roll_delta.Time.t;  (** view-delta high-water mark *)
  staleness : int;  (** current time minus hwm, in commits *)
  delta_rows : int;  (** rows currently held in the view delta *)
  paused : bool;
  retries : int;  (** step attempts re-run after transient failures *)
  aborts : int;  (** steps abandoned after exhausting the retry budget *)
  recoveries : int;
      (** transient-failed steps that eventually succeeded, plus controller
          restarts recovered from durable state *)
}

type step_error = {
  view : string;  (** which registered view's step failed permanently *)
  point : string;  (** fault point of the last failing attempt *)
  hit : int;
  attempts : int;
}

val create : Roll_storage.Database.t -> Roll_capture.Capture.t -> t

val register :
  ?durable:bool -> t -> algorithm:Controller.algorithm -> View.t -> Controller.t
(** Materializes and registers a view under its own name. [durable]
    (default false) is passed through to {!Controller.create}.
    @raise Invalid_argument if the name is already registered. *)

val register_recovered :
  ?checkpoint:string ->
  t -> algorithm:Controller.algorithm -> View.t -> Controller.t
(** Registers a view by recovering its durable maintenance state instead of
    re-materializing (see {!Controller.recover}).
    @raise Invalid_argument if the name is already registered or there is
    no durable state for the view. *)

val controller : t -> string -> Controller.t
(** @raise Not_found *)

val names : t -> string list

val status : t -> status list
(** One row per registered view, in registration order. *)

val pause : t -> string -> unit
(** Suspend propagation for one view ([step_all] skips it; explicit
    refreshes through its controller still work). *)

val resume : t -> string -> unit

val step_all : t -> budget:int -> int
(** Run up to [budget] propagation steps, round-robin over non-paused
    views, stopping early when every one is idle. Returns steps executed. *)

val try_step_all :
  ?sleep:(float -> unit) ->
  t ->
  budget:int ->
  retry:Roll_util.Retry.policy ->
  (int, step_error) result
(** {!step_all} with each step run under {!Controller.propagate_step_reliable}:
    transient step failures are retried with backoff (sleeping through
    [sleep], which defaults to advancing the database's simulated wall
    clock), and the first step to exhaust its retry budget stops the
    round-robin and surfaces as a typed [step_error]. [Ok steps] otherwise,
    like {!step_all}. *)

val refresh_all : t -> unit
(** Refresh every non-paused view to the current time. *)

val gc_all : t -> int
(** Prune applied delta rows of every view; returns total rows removed. *)
