(** Multi-view maintenance service: the control tables of Figure 11.

    The prototype's control tables "identify the tables associated with
    each materialized view … and record the current view materialization
    time and the view delta high-water mark". This module is that registry:
    several views maintained over one database and one capture process,
    each with its own propagation algorithm and apply state, plus the
    operational controls a DBA would expect — status, per-view
    pause/resume (either process "can be suspended during periods of high
    system load"), budgeted propagation, and garbage collection.

    Since the scheduler refactor, every budgeted drain ({!step_all},
    {!try_step_all}, {!maintain}) pulls its work items from one
    {!Scheduler} queue scored by staleness against a per-view SLA,
    estimated step cost and capture backpressure. The legacy
    registration-order sweep is preserved as {!Scheduler.Round_robin};
    the default policy is {!Scheduler.Slack}. *)

type t

type status = {
  name : string;
  as_of : Roll_delta.Time.t;  (** materialization time of the stored view *)
  hwm : Roll_delta.Time.t;  (** view-delta high-water mark *)
  staleness : int;  (** current time minus hwm, in commits *)
  sla : int;  (** staleness target, in commits *)
  slack : int;  (** [sla - staleness]; negative means the SLA is violated *)
  delta_rows : int;  (** rows currently held in the view delta *)
  paused : bool;
  retries : int;  (** step attempts re-run after transient failures *)
  aborts : int;  (** steps abandoned after exhausting the retry budget *)
  recoveries : int;
      (** transient-failed steps that eventually succeeded, plus controller
          restarts recovered from durable state *)
  memo_hits : int;
      (** propagation deltas this view served from the shared memo instead
          of executing (always 0 without sharing) *)
  memo_misses : int;  (** deltas this view computed and memoized *)
  shared_builds : int;
      (** hash builds and window materializations this view reused from the
          shared build cache *)
  aux : bool;  (** this entry is an auxiliary view, not a user view *)
  aux_hits : int;
      (** substitution probes this view served from a fresh auxiliary
          mirror instead of scanning the base table (always 0 without
          auxiliaries) *)
  aux_misses : int;
      (** substitution probes that found the auxiliary lagging and fell
          back to the base table *)
  aux_lag : int;
      (** for an auxiliary: how many commits its probe mirror trails the
          database clock; for a user view: the worst lag among the
          auxiliaries its probes depend on (0 when it has none) *)
  hot : bool;  (** this entry is a heavy key's partial, not a user view *)
  hot_hits : int;
      (** base-relation reads this view served from a fresh heavy-light
          partition union (always 0 without the hotset) *)
  hot_misses : int;
      (** partition consultations that found a part lagging and fell back
          to the base table *)
  heavy_keys : int;
      (** for a user view: currently-heavy keys across its partitioned
          relations; 0 for auxiliary and heavy-partial entries *)
  light_rows : int;
      (** for a user view: rows held by its light residual mirrors; 0 for
          auxiliary and heavy-partial entries *)
  reads_served : int;  (** reads served by a [rolld] front end *)
  reads_rejected : int;  (** reads rejected by admission control *)
  read_wait : float;
      (** total seconds admitted readers spent blocked on freshness *)
}

type step_error = {
  view : string;
      (** which registered view's step failed permanently; ["(capture)"]
          when a retried capture advance exhausted its budget *)
  point : string;  (** fault point of the last failing attempt *)
  hit : int;
  attempts : int;
}

val create :
  ?policy:Scheduler.policy ->
  ?cost_weight:float ->
  ?capture_batch:int ->
  ?sharing:bool ->
  ?auxiliary:bool ->
  ?hotset:bool ->
  ?default_sla:int ->
  ?gc_threshold:int ->
  ?obs:Roll_obs.Obs.t ->
  ?domains:int ->
  Roll_storage.Database.t ->
  Roll_capture.Capture.t ->
  t
(** [policy] (default {!Scheduler.Slack}), [cost_weight] and
    [capture_batch] configure the underlying {!Scheduler}. [default_sla]
    (default 100 commits) is the staleness target newly registered views
    start with; override per view with {!set_sla}. [gc_threshold]
    (default: disabled) makes {!maintain} offer a gc item once a view
    holds at least that many applied delta rows.

    [sharing] (default: the [ROLL_SHARING] environment flag, off when
    unset) turns on cross-view shared maintenance:
    every registered view's context is plugged into one drain-scoped
    {!Memo} (identical propagation deltas computed once, replayed for
    siblings; hash builds and delta-window materializations shared through
    the build cache), step windows snap to the propagation-interval grid
    (see {!Controller.set_window_alignment}) so sibling windows coincide,
    and {!Scheduler.Slack} drains batch same-window sibling steps back to
    back ({!Scheduler.take_batch}). Sharing changes which physical queries
    run — never the maintained contents.

    [auxiliary] (default: the [ROLL_AUX] environment flag, off when unset)
    turns on higher-order delta processing: registering a view also
    derives, materializes and registers its per-relation semi-join/
    projection partials as {!Auxiliary} views — ordinary service entries
    maintained through the same capture → propagate → apply → WAL path,
    scheduled one band below user-view SLAs — and installs the
    substitution closure so the view's propagation queries probe a fresh
    auxiliary mirror instead of scanning the base table, falling back
    transparently whenever the mirror lags. Like sharing, auxiliaries
    change which physical reads happen — never the maintained contents.

    [hotset] (default: the [ROLL_HOTSET] environment flag, off when unset)
    turns on skew-aware heavy-light partitioning: registering a view also
    derives a {!Hotset} partition group for its most-joined source
    relation — a frequency sketch fed from the capture stream, one lazy
    light residual mirror, and an eagerly-maintained durable partial per
    heavy key, registered as ordinary service entries and scheduled one
    band below user-view SLAs — and installs the substitution closure so
    the view's propagation queries read the η-union of the fresh parts
    instead of scanning the base relation, falling back transparently
    whenever any part lags. Keys migrate between classes at drain
    boundaries through exact, crash-safe handoffs. Like sharing and
    auxiliaries, the hotset changes which physical reads happen — never
    the maintained contents.

    [obs] (default disabled) is the Rollscope observability handle for the
    whole service: it is installed on the database, the capture process,
    the scheduler and every context the service registers, so one handle
    sees capture → propagate → apply → checkpoint end to end. When
    enabled, drains record ["service.drain"] / ["sched.item"] spans (with
    queue-wait attributes), per-kind item-latency, window-width and
    rows-emitted histograms, and every registered view's {!Stats} surface
    as [view]-labeled registry series alongside per-view freshness gauges.
    [domains] (default 1: the serial drain, byte-for-byte the previous
    behavior) sizes a worker-domain pool for parallel maintenance. With
    [domains = n > 1], drains plan {e waves} of up to [n]
    pairwise-disjoint-window propagation steps ({!Scheduler.take_wave})
    and execute them concurrently in frozen-clock mode
    ({!Controller.step_window}), while capture, apply, checkpoint, gc,
    WAL markers and the retry wall clock stay on the calling (single
    writer) domain. Parallel drains maintain bit-identical view contents
    and frontiers to the serial path — only throughput changes. Requires
    an OCaml 5 runtime.
    @raise Invalid_argument on non-positive [default_sla], [gc_threshold],
    [capture_batch], or [domains < 1]. *)

val env_domains : unit -> int option
(** Parse the [ROLL_DOMAINS] environment variable ([n >= 1]) — the
    conventional way tests and CI select the pool size; [None] when unset
    or unparsable. Callers pass it to [create]'s [?domains]. *)

val domains : t -> int
(** Domain slots drains execute on: 1 for a serial service, the pool size
    ([workers + caller]) otherwise. *)

val shutdown : t -> unit
(** Join the worker-domain pool (no-op for a serial service). Idempotent;
    the pool also shuts down on process exit, but callers creating many
    short-lived parallel services must release each one to stay under the
    runtime's domain limit. Draining a shut-down service is an error. *)

val register :
  ?durable:bool -> t -> algorithm:Controller.algorithm -> View.t -> Controller.t
(** Materializes and registers a view under its own name. [durable]
    (default false) is passed through to {!Controller.create}.
    @raise Invalid_argument if the name is already registered. *)

val register_recovered :
  ?checkpoint:string ->
  t -> algorithm:Controller.algorithm -> View.t -> Controller.t
(** Registers a view by recovering its durable maintenance state instead of
    re-materializing (see {!Controller.recover}).
    @raise Invalid_argument if the name is already registered or there is
    no durable state for the view. *)

val unregister : t -> string -> unit
(** Remove a user view from the service and release its claim on its
    auxiliaries and partition groups; auxiliaries and heavy partials left
    with no owning view are retired with it (their entries leave the
    service, so no further maintenance is planned for them). Durable state
    is left in place — re-registering recovers it.
    @raise Not_found when no such view is registered
    @raise Invalid_argument when [name] is an auxiliary view or a heavy
    partial (those are retired automatically when their last owner goes). *)

val auxiliary : t -> Auxiliary.t option
(** The higher-order delta registry, when the service was created with
    auxiliaries enabled. *)

val hotset : t -> Hotset.t option
(** The heavy-light partition registry, when the service was created with
    the hotset enabled. *)

val controller : t -> string -> Controller.t
(** @raise Not_found *)

val names : t -> string list

val scheduler : t -> Scheduler.t
(** The service's work queue — inspect its policy and {!Scheduler.stats}
    counters. *)

val set_read_demand : t -> (string -> int) -> unit
(** Install the waiting-reader census on the service's scheduler (see
    {!Scheduler.set_read_demand}); the [rolld] serving engine plugs its
    blocked-reader queue in here so drains prioritize views clients are
    waiting on. *)

val obs : t -> Roll_obs.Obs.t
(** The service's observability handle (a disabled one unless [create]
    received [?obs]). *)

val sharing : t -> bool

val memo : t -> Memo.t
(** The service-wide delta memo (disabled, empty and never consulted
    unless the service was created with [~sharing:true]). *)

val set_sla : t -> string -> int -> unit
(** Set one view's staleness target, in commits.
    @raise Not_found
    @raise Invalid_argument on a non-positive target. *)

val sla : t -> string -> int
(** @raise Not_found *)

val set_checkpoint : t -> string -> path:string -> every:int -> unit
(** Make {!maintain} checkpoint the view to [path] whenever at least
    [every] commits have elapsed since its last checkpoint.
    @raise Not_found
    @raise Invalid_argument on non-positive [every]. *)

val set_gc_threshold : t -> int -> unit
(** Applied delta rows per view above which {!maintain} offers a gc item.
    @raise Invalid_argument on a non-positive threshold. *)

val status : t -> status list
(** One row per registered view, in registration order. *)

val status_json : t -> string
(** {!status} as a JSON array (one object per view, registration order) —
    what [rollctl status --json] prints. *)

val schedule_json : ?full:bool -> t -> string
(** {!schedule} as a JSON array, best item first — what
    [rollctl schedule --json] prints. *)

val shard_of : t -> string -> int
(** The domain slot a view name hashes to — the observational shard used
    by {!shard_depths}; actual wave execution assigns items to slots by
    wave position. Always 0 for a serial service. *)

val shard_depths : ?full:bool -> t -> int array
(** Planned queue depth per domain slot: propagate items counted under
    their view's {!shard_of} slot, every other kind under the
    single-writer slot 0. Length {!domains}. *)

val ran_by_domain : t -> ((string * int) * int) list
(** Execution provenance, [((kind, domain slot), items run)] — see
    {!Scheduler.ran_by_domain}. *)

val shards_json : ?full:bool -> t -> string
(** {!shard_depths} and {!ran_by_domain} as one JSON object
    [{"domains":n,"shards":[{"shard","depth"}...],"ran":[{"kind","domain","count"}...]}]
    — what [rollctl status --domains n --json] adds. *)

val schedule : ?full:bool -> t -> Scheduler.scored list
(** Snapshot of the current work queue, best first (see
    {!Scheduler.plan}). [full] defaults to [false]: the queue a
    {!step_all} drain would consume; pass [true] for the {!maintain}
    queue including apply/checkpoint/gc items. *)

val pause : t -> string -> unit
(** Suspend propagation for one view ([step_all] skips it; explicit
    refreshes through its controller still work). *)

val resume : t -> string -> unit

val step_all : t -> budget:int -> int
(** Drain the scheduler, running up to [budget] propagation steps over
    non-paused views and stopping early when every one is idle. Capture
    advances triggered by backpressure are free — they do not count
    against the budget. Returns steps executed. Under
    {!Scheduler.Round_robin} this reproduces the legacy
    registration-order sweep. *)

val try_step_all :
  ?sleep:(float -> unit) ->
  t ->
  budget:int ->
  retry:Roll_util.Retry.policy ->
  (int, step_error) result
(** {!step_all} with each step run under {!Controller.propagate_step_reliable}:
    transient step failures are retried with backoff (sleeping through
    [sleep], which defaults to advancing the database's simulated wall
    clock), and the first step to exhaust its retry budget stops the
    drain and surfaces as a typed [step_error]. [Ok steps] otherwise,
    like {!step_all}. *)

val maintain :
  ?retry:Roll_util.Retry.policy ->
  ?sleep:(float -> unit) ->
  t ->
  budget:int ->
  (int, step_error) result
(** Full maintenance drain: like {!step_all} but the queue also offers
    apply refreshes (roll each stored view forward to its high-water
    mark), due checkpoints (see {!set_checkpoint}) and due gc (see
    {!set_gc_threshold}); each such item counts one unit of [budget].
    With [retry], propagation steps run under the retry policy as in
    {!try_step_all}. Returns items executed. *)

val refresh_all : t -> unit
(** Refresh every non-paused view to the current time. *)

val gc_all : t -> int
(** Prune applied delta rows of every view; returns total rows removed.
    Also reclaims the WAL prefix below every consumer's horizon (see
    {!reclaim_wal}). *)

val reclaim_wal : t -> int
(** Reclaim the WAL prefix at or below the minimum of every view's gc
    horizon and the capture high-water mark. On a paged store this deletes
    whole on-disk WAL segments; in memory it is a no-op. Returns the
    number of segments deleted. Runs automatically after each scheduled
    gc work item and after {!gc_all}. *)
