(* Skew-aware heavy-light partitioning (ROADMAP item 4, DESIGN.md §19).

   Where the auxiliary registry (§18) narrows a relation — and therefore
   skips relations that nothing narrows, like a star schema's fact table —
   this registry partitions one: the view's most-joined source relation is
   split by join-key frequency into a small set of eagerly-maintained
   per-key heavy partials (each an ordinary durable controller, so the
   capture → propagate → apply → WAL/frontier path and crash recovery come
   for free) plus one lazily-pumped light residual mirror holding every
   other key's rows. The executor reads the η-union of the parts in place
   of the base relation whenever every part is provably fresh.

   Class migration is the delicate part: a key's rows must move between
   the light mirror and its heavy partial without loss or double counting.
   Both directions run only at provably-fresh points (no pending capture
   work, every part caught up to the captured delta), where "move" is
   exact: promotion materializes the key's partial from the base relation
   and then deletes the key's rows from the light mirror; demotion folds
   the retiring partial's mirror into the light mirror. Durability is
   asymmetric by design — the only durable truth is the WAL (the heavy
   controllers' frontier markers plus this registry's promote/retire
   markers); every mirror is derived state rebuilt from recovered contents
   on restart, which is what makes a crash in the middle of a migration
   harmless: recovery re-derives the heavy set from the log and rebuilds
   the light residual from the base table minus exactly those keys. *)

open Roll_relation
module Time = Roll_delta.Time
module Delta = Roll_delta.Delta
module Database = Roll_storage.Database
module Table = Roll_storage.Table
module Wal = Roll_storage.Wal
module Capture = Roll_capture.Capture

let log_src = Logs.Src.create "roll.hotset" ~doc:"heavy-light partition registry"

module Log = (val Logs.src_log log_src)

(* ------------------------------------------------------------------ *)
(* Derivation: which relation to partition, on which column            *)

type deriv = {
  source : int;  (** owner source position the partition substitutes *)
  base : string;
  col : int;  (** base column carrying the partition key *)
  local : Predicate.t;  (** single-source atoms, rebased to source 0 *)
  select : (string * Predicate.operand) list;
  cols : int array;  (** mirror column [k] holds base column [cols.(k)] *)
}

let rebase_col (c : Predicate.col) = { c with Predicate.source = 0 }

let rec rebase_operand = function
  | Predicate.Col c -> Predicate.Col (rebase_col c)
  | Predicate.Const _ as o -> o
  | Predicate.Neg e -> Predicate.Neg (rebase_operand e)
  | Predicate.Add (a, b) -> Predicate.Add (rebase_operand a, rebase_operand b)
  | Predicate.Sub (a, b) -> Predicate.Sub (rebase_operand a, rebase_operand b)
  | Predicate.Mul (a, b) -> Predicate.Mul (rebase_operand a, rebase_operand b)
  | Predicate.Div (a, b) -> Predicate.Div (rebase_operand a, rebase_operand b)

let operand_cols_of_source j operand =
  Predicate.fold_operands
    (fun acc op ->
      match op with
      | Predicate.Col c when c.Predicate.source = j -> c.Predicate.column :: acc
      | _ -> acc)
    [] operand

(* Columns of source [j] the rest of the query can see (same rule as the
   auxiliary registry's): join columns, cross-source comparison inputs and
   projection inputs. *)
let needed_cols view j =
  let acc = ref [] in
  let note c = if not (List.mem c !acc) then acc := c :: !acc in
  List.iter
    (fun atom ->
      match Predicate.sources_of_atom atom with
      | [ k ] when k = j -> ()
      | srcs when List.mem j srcs ->
          (match atom with
          | Predicate.Join (a, b) ->
              if a.Predicate.source = j then note a.Predicate.column;
              if b.Predicate.source = j then note b.Predicate.column
          | Predicate.Cmp (_, x, y) ->
              List.iter note (operand_cols_of_source j x);
              List.iter note (operand_cols_of_source j y))
      | _ -> ())
    (View.predicate view);
  List.iter
    (fun (_, operand) -> List.iter note (operand_cols_of_source j operand))
    (View.projection view);
  List.sort_uniq Int.compare !acc

(* The partitioned relation: the source appearing in the most equi-join
   atoms — the fact table of a star join — with ties broken toward the
   lowest source index. The partition key is its lowest-numbered join
   column. A view with no equi-join has no probe structure to exploit. *)
let partition_target view =
  let n = View.n_sources view in
  if n < 2 then None
  else begin
    let joins = Array.make n 0 in
    let join_cols = Array.make n [] in
    List.iter
      (fun atom ->
        match atom with
        | Predicate.Join (a, b) when a.Predicate.source <> b.Predicate.source ->
            List.iter
              (fun (c : Predicate.col) ->
                joins.(c.Predicate.source) <- joins.(c.Predicate.source) + 1;
                if not (List.mem c.Predicate.column join_cols.(c.Predicate.source))
                then
                  join_cols.(c.Predicate.source) <-
                    c.Predicate.column :: join_cols.(c.Predicate.source))
              [ a; b ]
        | Predicate.Join _ | Predicate.Cmp _ -> ())
      (View.predicate view);
    let best = ref (-1) in
    Array.iteri
      (fun j count ->
        if count > 0 && (!best < 0 || count > joins.(!best)) then best := j)
      joins;
    match !best with
    | -1 -> None
    | j -> Some (j, List.fold_left min max_int join_cols.(j))
  end

let derive view =
  match partition_target view with
  | None -> None
  | Some (j, col) ->
      let schema = View.source_schema view j in
      let needed = needed_cols view j in
      if needed = [] then None
      else
        let local =
          List.filter
            (fun atom -> Predicate.sources_of_atom atom = [ j ])
            (View.predicate view)
          |> List.map (function
               | Predicate.Join (a, b) ->
                   Predicate.Join (rebase_col a, rebase_col b)
               | Predicate.Cmp (op, x, y) ->
                   Predicate.Cmp (op, rebase_operand x, rebase_operand y))
        in
        let select =
          List.map
            (fun c ->
              ( (Schema.column schema c).Schema.name,
                Predicate.Col { Predicate.source = 0; column = c } ))
            needed
        in
        Some
          {
            source = j;
            base = View.source_table view j;
            col;
            local;
            select;
            cols = Array.of_list needed;
          }

(* ------------------------------------------------------------------ *)
(* Registry                                                            *)

type entry = {
  key : int;
  hbase : string;
  view : View.t;
  controller : Controller.t;
  mirror : Table.t;
  mutable mirror_as_of : Time.t;
}

type group = {
  gkey : string;  (** canonical identity: partial signature + key column *)
  prefix : string;  (** name prefix for heavy views and the light mirror *)
  source : int;
  base : string;
  col : int;
  colpos : int;  (** position of [col] inside [cols] *)
  local : Predicate.t;
  select : (string * Predicate.operand) list;
  cols : int array;
  sketch : Partition.t;
  light : Table.t;
  mutable light_as_of : Time.t;
      (** the light mirror and the sketch have consumed the base's capture
          delta up to here *)
  mutable heavy : entry list;
  mutable probe_cols : int list;  (** mirror columns indexed for probing *)
  mutable owners : string list;
  mutable durable : bool;
  mutable obs : Roll_obs.Obs.t option;
}

type t = {
  db : Database.t;
  capture : Capture.t;
  interval : int;
  max_heavy : int;
  capacity : int;
  enter : float option;
  exit_ : float option;
  mutable fault : Roll_util.Fault.t;
  mutable groups : group list;
}

let create ?(interval = 8) ?(capacity = 64) ?(max_heavy = 16) ?enter ?exit_
    db capture =
  if interval <= 0 then invalid_arg "Hotset.create: interval";
  if max_heavy <= 0 then invalid_arg "Hotset.create: max_heavy";
  (* Validate the sketch parameters once, eagerly. *)
  ignore (Partition.create ~capacity ?enter ?exit_ ());
  {
    db;
    capture;
    interval;
    max_heavy;
    capacity;
    enter;
    exit_;
    fault = Roll_util.Fault.none;
    groups = [];
  }

let set_fault t fault = t.fault <- fault

let entries t = List.concat_map (fun g -> g.heavy) t.groups

let name (e : entry) = View.name e.view

let key (e : entry) = e.key

let base (e : entry) = e.hbase

let controller (e : entry) = e.controller

let mirror (e : entry) = e.mirror

let mirror_as_of (e : entry) = e.mirror_as_of

let groups_of t ~owner =
  List.filter (fun g -> List.mem owner g.owners) t.groups

let for_owner t ~owner = List.concat_map (fun g -> g.heavy) (groups_of t ~owner)

let find t name_ =
  List.find_opt (fun e -> String.equal (name e) name_) (entries t)

let heavy_count t ~owner =
  List.fold_left (fun acc g -> acc + List.length g.heavy) 0 (groups_of t ~owner)

let sketch_keys t =
  List.fold_left (fun acc g -> acc + Partition.occupancy g.sketch) 0 t.groups

let light_rows t ~owner =
  List.fold_left
    (fun acc g -> acc + Table.cardinality g.light)
    0 (groups_of t ~owner)

let partitioned t ~owner =
  List.map (fun g -> (g.base, g.col)) (groups_of t ~owner)

let lag t (e : entry) = Time.max 0 (Database.now t.db - e.mirror_as_of)

(* Distinct owners over the same (base, col) can still derive distinct
   partial shapes (different retained columns or local filters), so names
   carry the partial-signature hash too — sibling groups must not share
   heavy view names, or their durable WAL markers would conflate. *)
let group_prefix ~base ~col ~gkey =
  Printf.sprintf "hot_%s_c%d_%08x" base col (Hashtbl.hash gkey land 0xFFFFFFFF)

let hot_name prefix key = Printf.sprintf "%s_k%d" prefix key

let promote_tag vname base col key =
  Printf.sprintf "!hotset promote %s %s %d %d" vname base col key

let retire_tag vname = Printf.sprintf "!hotset retire %s" vname

(* ------------------------------------------------------------------ *)
(* Mirror plumbing                                                     *)

(* Fold the partial's applied-but-unmirrored view-delta suffix into its
   probe mirror; same rollback-safety argument as [Auxiliary.sync]: the
   high-water mark only advances on success, so rows a retry truncates are
   never consumed. *)
let sync (e : entry) =
  let target = Controller.hwm e.controller in
  if target > e.mirror_as_of then begin
    Delta.window_iter
      (Controller.ctx e.controller).Ctx.out
      ~lo:e.mirror_as_of ~hi:target
      (fun (row : Delta.row) -> Table.apply_change e.mirror row.tuple row.count);
    e.mirror_as_of <- target
  end

let gc (e : entry) =
  sync e;
  Controller.gc e.controller

let rebuild_mirror (e : entry) =
  Relation.iter
    (fun tuple count -> Table.apply_change e.mirror tuple count)
    (Controller.contents e.controller);
  e.mirror_as_of <- Controller.as_of e.controller;
  sync e

let index_part g table =
  List.iter (fun c -> Table.create_index table ~columns:[ c ]) g.probe_cols

let project_row g tuple = Array.map (fun c -> tuple.(c)) g.cols

let key_of g tuple =
  match tuple.(g.col) with Value.Int k -> Some k | _ -> None

let passes_local g tuple = Predicate.holds g.local [| tuple |]

(* ------------------------------------------------------------------ *)
(* The pump: capture delta -> sketch + light residual                  *)

(* Fold the base's captured delta suffix into the sketch (every key, so
   classification sees the whole stream) and the light mirror (light keys
   only; heavy keys' rows flow through their controllers). Classification
   changes only at [rebalance] boundaries, so within one pumped window the
   class of every key is fixed and no row is routed twice. *)
let pump_group t g =
  let target = Capture.hwm t.capture in
  if target > g.light_as_of then begin
    Delta.window_iter
      (Capture.delta t.capture ~table:g.base)
      ~lo:g.light_as_of ~hi:target
      (fun (row : Delta.row) ->
        let k = key_of g row.tuple in
        (match k with
        | Some k ->
            Partition.observe g.sketch k ~count:(abs row.count)
        | None -> ());
        let heavy =
          match k with
          | Some k -> Partition.is_heavy g.sketch k
          | None -> false
        in
        if (not heavy) && passes_local g row.tuple then
          Table.apply_change g.light (project_row g row.tuple) row.count);
    g.light_as_of <- target
  end

let pump t = List.iter (pump_group t) t.groups

(* Every part of the union provably equals its slice of the partial
   applied to the base table's current committed state: no captured change
   past any part's as-of, and nothing logged-but-uncaptured either. *)
let fresh_group t g =
  let min_as_of =
    List.fold_left
      (fun acc (e : entry) -> Time.min acc e.mirror_as_of)
      g.light_as_of g.heavy
  in
  (match Delta.max_ts (Capture.delta t.capture ~table:g.base) with
  | Some ts -> ts <= min_as_of
  | None -> true)
  && not (Capture.pending_changes t.capture ~table:g.base)

let fresh_for t ~owner =
  match groups_of t ~owner with
  | [] -> false
  | gs -> List.for_all (fresh_group t) gs

(* ------------------------------------------------------------------ *)
(* Migration                                                           *)

let algorithm t = Controller.Rolling (Rolling.uniform t.interval)

let obs_arg g = g.obs

let heavy_view t g k =
  let vname = hot_name g.prefix k in
  let predicate =
    g.local
    @ [
        Predicate.Cmp
          ( Predicate.Eq,
            Predicate.Col { Predicate.source = 0; column = g.col },
            Predicate.Const (Value.Int k) );
      ]
  in
  View.create_select t.db ~name:vname
    ~sources:[ (g.base, g.base) ]
    ~predicate ~select:g.select

let make_entry g ~key ~view ~controller =
  let mirror = Table.create ~name:(View.name view) (View.output_schema view) in
  let e =
    {
      key;
      hbase = g.base;
      view;
      controller;
      mirror;
      mirror_as_of = Controller.as_of controller;
    }
  in
  index_part g mirror;
  rebuild_mirror e;
  g.heavy <- g.heavy @ [ e ];
  e

(* Promotion handoff. Preconditions (checked by [rebalance_group]): the
   light mirror equals its partial at the base's current committed state.
   Materializing the key's partial through a fresh controller reads that
   same committed state — only marker commits intervene — so deleting the
   key's rows from the light mirror afterwards is an exact move. The
   promote marker makes the classification durable; a crash before it
   leaves the key light everywhere, a crash after it (the [hotset.promote]
   fault point) recovers the key heavy with the light residual rebuilt
   minus the key — consistent either way, because mirrors are derived. *)
let promote t g k =
  let view = heavy_view t g k in
  let controller =
    Controller.create ~durable:g.durable ?obs:(obs_arg g) t.db t.capture view
      ~algorithm:(algorithm t)
  in
  ignore
    (Database.commit_marker t.db ~tag:(promote_tag (View.name view) g.base g.col k));
  Roll_util.Fault.hit t.fault "hotset.promote";
  let e = make_entry g ~key:k ~view ~controller in
  (* Delete the key's rows from the light residual: they now live in (and
     are maintained through) the heavy partial. *)
  let doomed = ref [] in
  Relation.iter
    (fun tuple count ->
      if Value.equal tuple.(g.colpos) (Value.Int k) then
        doomed := (tuple, count) :: !doomed)
    (Table.contents g.light);
  List.iter
    (fun (tuple, count) -> Table.apply_change g.light tuple (-count))
    !doomed;
  Log.info (fun m ->
      m "promoted key %d of %s.%d -> %s (%d rows moved)" k g.base g.col
        (View.name view) (List.length !doomed));
  e

(* Demotion handoff: fold the retiring partial's (fresh) mirror into the
   light residual, then commit the durable retire marker. A crash between
   the two (the [hotset.demote] fault point) recovers the key still heavy
   — the fold is in-memory state that dies with the process — so no row is
   ever counted twice. *)
let demote t g (e : entry) =
  Relation.iter
    (fun tuple count -> Table.apply_change g.light tuple count)
    (Table.contents e.mirror);
  Roll_util.Fault.hit t.fault "hotset.demote";
  ignore (Database.commit_marker t.db ~tag:(retire_tag (name e)));
  g.heavy <- List.filter (fun (x : entry) -> x != e) g.heavy;
  Log.info (fun m ->
      m "demoted key %d of %s.%d (retired %s)" e.key g.base g.col (name e));
  e

let rebalance_group t g =
  pump_group t g;
  List.iter sync g.heavy;
  (* Migration is exact only at a provably-fresh point: every part equals
     its slice of the current committed state, so rows move between
     classes by construction rather than by compensation. A lagging part
     defers the whole group's migration to a later drain. *)
  if not (fresh_group t g) then ([], [])
  else begin
    let promoted_keys, demoted_keys =
      Partition.rebalance ~max_heavy:t.max_heavy g.sketch
    in
    let promoted =
      List.filter_map
        (fun k ->
          if List.exists (fun (e : entry) -> e.key = k) g.heavy then None
          else Some (promote t g k))
        promoted_keys
    in
    let demoted =
      List.filter_map
        (fun k ->
          match List.find_opt (fun (e : entry) -> e.key = k) g.heavy with
          | Some e -> Some (demote t g e)
          | None -> None)
        demoted_keys
    in
    (promoted, demoted)
  end

let rebalance t =
  List.fold_left
    (fun (pro, dem) g ->
      let p, d = rebalance_group t g in
      (pro @ p, dem @ d))
    ([], []) t.groups

(* ------------------------------------------------------------------ *)
(* Attach / recovery                                                   *)

let signature_of_partial t (d : deriv) =
  let probe =
    View.create_select t.db ~name:"hot" ~sources:[ (d.base, d.base) ]
      ~predicate:d.local ~select:d.select
  in
  Printf.sprintf "%s#c%d"
    (Pquery.signature probe ~rule:`Min (Pquery.all_base 1))
    d.col

(* The durable heavy set: the last promote/retire event per partial name
   in the WAL wins. WAL-prefix reclaim cannot split a pair — a retire
   marker always postdates its promote marker, so a reclaimed prefix drops
   both or neither. *)
let recovered_keys db ~prefix =
  let wal = Database.wal db in
  let vprefix = prefix ^ "_k" in
  let alive = Hashtbl.create 8 in
  Wal.iter_from wal ~pos:(Wal.first_pos wal) (fun (r : Wal.record) ->
      match r.Wal.marker with
      | None -> ()
      | Some tag -> (
          match String.split_on_char ' ' tag with
          | [ "!hotset"; "promote"; vname; _b; _c; k ]
            when String.starts_with ~prefix:vprefix vname -> (
              match int_of_string_opt k with
              | Some key -> Hashtbl.replace alive vname key
              | None -> ())
          | [ "!hotset"; "retire"; vname ] -> Hashtbl.remove alive vname
          | _ -> ()));
  List.sort Int.compare (Hashtbl.fold (fun _ k acc -> k :: acc) alive [])

(* Seed the sketch and the light residual from the base relation's current
   contents: the sketch sees every key's standing mass (so pre-existing
   skew is classified without waiting for churn), the light mirror gets
   every row whose key is not (recovered-)heavy. [light_as_of] starts at
   the current clock — table contents already reflect every committed
   change, captured or not, so the pump must only consume strictly-later
   windows. *)
let seed_group t g ~heavy_keys =
  let table = Database.table t.db g.base in
  Relation.iter
    (fun tuple count ->
      (match key_of g tuple with
      | Some k -> Partition.observe g.sketch k ~count:(abs count)
      | None -> ());
      let heavy =
        match key_of g tuple with
        | Some k -> List.mem k heavy_keys
        | None -> false
      in
      if (not heavy) && passes_local g tuple then
        Table.apply_change g.light (project_row g tuple) count)
    (Table.contents table);
  g.light_as_of <- Database.now t.db

let make_group t ~durable ?obs ~recover (d : deriv) =
  let gkey = signature_of_partial t d in
  match List.find_opt (fun g -> String.equal g.gkey gkey) t.groups with
  | Some g -> (g, [])
  | None ->
      let colpos =
        let rec find k =
          if k >= Array.length d.cols then
            invalid_arg "Hotset: partition column not retained"
          else if d.cols.(k) = d.col then k
          else find (k + 1)
        in
        find 0
      in
      let prefix = group_prefix ~base:d.base ~col:d.col ~gkey in
      let light_schema =
        View.output_schema
          (View.create_select t.db ~name:(prefix ^ "_light")
             ~sources:[ (d.base, d.base) ]
             ~predicate:d.local ~select:d.select)
      in
      let g =
        {
          gkey;
          prefix;
          source = d.source;
          base = d.base;
          col = d.col;
          colpos;
          local = d.local;
          select = d.select;
          cols = d.cols;
          sketch =
            Partition.create ~capacity:t.capacity ?enter:t.enter
              ?exit_:t.exit_ ();
          light = Table.create ~name:(prefix ^ "_light") light_schema;
          light_as_of = Time.origin;
          heavy = [];
          probe_cols = [];
          owners = [];
          durable;
          obs;
        }
      in
      let heavy_keys =
        if recover then recovered_keys t.db ~prefix else []
      in
      seed_group t g ~heavy_keys;
      let recovered =
        List.map
          (fun k ->
            Partition.force_heavy g.sketch k;
            let view = heavy_view t g k in
            let controller =
              match
                Controller.recover ?obs t.db t.capture view
                  ~algorithm:(algorithm t)
              with
              | ctl -> ctl
              | exception Invalid_argument _ ->
                  (* Promoted, durably, but crashed before its first
                     frontier marker: start it cold from the base table. *)
                  Controller.create ~durable ?obs t.db t.capture view
                    ~algorithm:(algorithm t)
            in
            make_entry g ~key:k ~view ~controller)
          heavy_keys
      in
      t.groups <- t.groups @ [ g ];
      Log.info (fun m ->
          m "partitioning %s on column %d (%d heavy key%s recovered)" d.base
            d.col (List.length recovered)
            (if List.length recovered = 1 then "" else "s"));
      (g, recovered)

(* Secondary indexes on the mirror columns the owner's equi-joins probe —
   light and heavy alike, so the planner can turn the union read into
   per-part index probes. *)
let note_probe_cols g owner_view =
  List.iter
    (fun atom ->
      match atom with
      | Predicate.Join (a, b) ->
          List.iter
            (fun (c : Predicate.col) ->
              if c.Predicate.source = g.source then
                Array.iteri
                  (fun k base_col ->
                    if base_col = c.Predicate.column
                       && not (List.mem k g.probe_cols)
                    then g.probe_cols <- g.probe_cols @ [ k ])
                  g.cols)
            [ a; b ]
      | Predicate.Cmp _ -> ())
    (View.predicate owner_view);
  index_part g g.light;
  List.iter (fun (e : entry) -> index_part g e.mirror) g.heavy

let install_closure t owner_ctx assoc =
  let stats = owner_ctx.Ctx.stats in
  owner_ctx.Ctx.hot <-
    Some
      (fun ~peek j ->
        match List.assoc_opt j assoc with
        | None -> None
        | Some g ->
            if g.heavy = [] then
              (* No heavy keys: the light residual is a verbatim copy of
                 the partial, all cost and no narrowing — leave the plan
                 on the base table (and the counters untouched). *)
              None
            else begin
              let source () =
                {
                  Ctx.parts =
                    g.light :: List.map (fun (e : entry) -> e.mirror) g.heavy;
                  cols = g.cols;
                }
              in
              if peek then Some (source ())
              else begin
                (* Keep the cheap parts honest before testing freshness:
                   pump the light residual forward and fold any applied
                   heavy deltas. Mutating mirrors is single-writer work,
                   so frozen-clock (wave worker) executions skip it — the
                   drain pumped before dispatching the wave. *)
                if owner_ctx.Ctx.frozen_exec = None then begin
                  pump_group t g;
                  List.iter sync g.heavy
                end;
                if fresh_group t g then begin
                  Stats.incr_hot_hits stats;
                  Some (source ())
                end
                else begin
                  Stats.incr_hot_misses stats;
                  None
                end
              end
            end)

let attach ?(durable = false) ?(recover = false) ?obs t owner_controller =
  let owner_view = Controller.view owner_controller in
  let owner = View.name owner_view in
  match derive owner_view with
  | None -> []
  | Some d ->
      let g, recovered = make_group t ~durable ?obs ~recover d in
      if not (List.mem owner g.owners) then g.owners <- g.owners @ [ owner ];
      g.durable <- g.durable || durable;
      (match (g.obs, obs) with None, Some o -> g.obs <- Some o | _ -> ());
      note_probe_cols g owner_view;
      install_closure t (Controller.ctx owner_controller) [ (d.source, g) ];
      if recovered = [] then g.heavy else recovered

let release t ~owner =
  List.iter
    (fun g ->
      g.owners <- List.filter (fun o -> not (String.equal o owner)) g.owners)
    t.groups;
  let orphans, live = List.partition (fun g -> g.owners = []) t.groups in
  t.groups <- live;
  let retired = List.concat_map (fun g -> g.heavy) orphans in
  if retired <> [] then
    Log.info (fun m ->
        m "released %d heavy partial%s with their last owner: %s"
          (List.length retired)
          (if List.length retired = 1 then "" else "s")
          (String.concat ", " (List.map name retired)));
  retired
