(** The [RollingPropagate] process (Figure 10, with corrected
    compensation).

    Rolling propagation refines [Propagate]: each base relation Rⁱ advances
    its own forward-query frontier [tfwd i] with its own propagation
    interval — n independent tuning knobs instead of one. A step performs
    one forward query

    {v R¹ … Rⁱ⁻¹ Rⁱ_(tfwd i, tfwd i + δ] Rⁱ⁺¹ … Rⁿ v}

    executed at some later time t_e, then compensates it with a single
    [ComputeDelta] call from the {e current frontier vector} back to t_e:
    the net effect of the step is exactly the brick

    {v (tfwd i, tfwd i + δ] × ∏_{j≠i} [t₀, tfwd j] v}

    in the propagation plane of Figures 6–9. Bricks laid by successive
    steps partition the plane — each cell of change-combinations is covered
    exactly once, for any number of relations and any step order — so after
    every step, σ_{t_initial, hwm} of the accumulated delta is a timed view
    delta with [hwm = min_i (tfwd i)] (Theorem 4.3).

    This compensation rule is a correction of the paper's printed Figure 10,
    whose [CompTime]-based deferred compensation is exact for two-way joins
    but over-compensates third axes for n ≥ 3 (a past lower-axis query
    bounds third axes by {e its own} execution time, while the printed rule
    compensates them up to the current one). The literal deferred algorithm
    is available for two-way views as {!Rolling_deferred}, where it
    reproduces Figure 9 and its fewer-compensations claim. See DESIGN.md
    §"Fidelity notes". *)

type t

type policy = int -> int
(** [policy i] is the propagation interval to use for relation [i]'s next
    forward query. Must be positive. *)

val uniform : int -> policy

val per_relation : int array -> policy

val create : Ctx.t -> t_initial:Roll_delta.Time.t -> t

val align : t -> bool

val set_align : t -> bool -> unit
(** Window alignment (default off): snap every forward window's upper
    bound to the next multiple of its interval, so sibling views whose
    materialization times differ by a few commits converge onto identical
    window bounds — the precondition for cross-view memo sharing. Off, the
    step windows are exactly the legacy [min (start + interval) now].
    Alignment must stay off while a recovery replay is in progress
    (replay steps target recorded frontiers exactly); {!Service} turns it
    on only after registration/recovery completes. *)

val window_hi :
  align:bool ->
  start:Roll_delta.Time.t ->
  interval:int ->
  now:Roll_delta.Time.t ->
  Roll_delta.Time.t
(** The upper bound [step_relation] would use for a window starting at
    [start] — exported so the controller's step candidates advertise the
    same windows the steps will actually run (the scheduler batches on
    window identity). *)

val hwm : t -> Roll_delta.Time.t
(** [min_i (tfwd i)]: the view delta is complete from [t_initial] through
    this time. *)

val tfwd : t -> int -> Roll_delta.Time.t

val frontiers : t -> Roll_delta.Time.t array
(** A copy of the full forward-frontier vector [tfwd], in source order —
    what the durable controller persists through WAL frontier markers. *)

val step : t -> policy:policy -> [ `Advanced of int * Roll_delta.Time.t | `Idle ]
(** One iteration: pick the relation with the smallest frontier, run its
    forward query, compensate. [`Advanced (i, h)] reports the chosen
    relation and the new high-water mark. [`Idle] when every frontier has
    reached the database's current time. *)

val step_relation : t -> int -> interval:int -> [ `Advanced of Roll_delta.Time.t | `Idle ]
(** Advance a specific relation's frontier by up to [interval]. Any
    schedule of [step_relation] calls maintains correctness; which relation
    to favor is pure policy (e.g. step a star schema's fact table often and
    its dimensions rarely). [`Idle] when that frontier is already at the
    database's current time. *)

val step_window :
  t -> int -> hi:Roll_delta.Time.t -> [ `Advanced of Roll_delta.Time.t | `Idle ]
(** Advance relation [i]'s frontier to an {e explicit} upper bound: the
    forward window is [(tfwd i, hi]]. This is the wave-dispatch entry —
    the scheduler picks the window bounds on the drain domain (so a wave's
    items have pairwise-disjoint windows by construction) and worker
    domains run the step without consulting the database clock. [`Idle]
    when [hi <= tfwd i]. Correctness does not depend on how [hi] was
    chosen, as long as [hi] is at most the capture high-water mark. *)

val set_tfwd : t -> int -> Roll_delta.Time.t -> unit
(** Overwrite one frontier — the rollback path: a failed wave item's
    frontier is restored to its pre-step value. Not for general use; any
    other mutation breaks the brick-partition invariant. *)

val run_until : t -> target:Roll_delta.Time.t -> policy:policy -> unit
(** Step until [hwm >= target].
    @raise Invalid_argument if [target] exceeds the database's current
    time. *)
