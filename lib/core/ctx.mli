(** Maintenance context: everything a propagation process needs.

    Bundles the database, the capture process, the view, the accumulating
    view-delta table, statistics, the optional geometry trace, and the
    [on_execute] hook with which tests and benches inject concurrent update
    transactions between propagation queries — the concurrency that makes
    compensation necessary. *)

type aux_source = {
  table : Roll_storage.Table.t;
      (** the auxiliary's mirror table, probed in place of the base *)
  cols : int array;
      (** column remap: mirror column [k] holds base column [cols.(k)] *)
}
(** A substitutable source: a materialized per-relation partial (projection
    of a selection of one base table) the executor may read instead of the
    base table itself. Produced by the {!Auxiliary} registry's freshness
    closure; consuming it is only sound while the mirror equals the partial
    applied to the base table's current committed state. *)

type hot_source = {
  parts : Roll_storage.Table.t list;
      (** the partition's mirrors — light residual plus one per heavy
          key — whose union is read in place of the base *)
  cols : int array;
      (** column remap: mirror column [k] holds base column [cols.(k)] *)
}
(** A substitutable partitioned source: the {!Hotset} registry's
    heavy-light decomposition of a relation. Light ⊎ heavy is the whole
    partial by construction, so the executor reads the union of the parts
    (η-prefixed in plans) in place of the base table; sound under the
    same freshness contract as {!aux_source}. *)

type t = {
  db : Roll_storage.Database.t;
  capture : Roll_capture.Capture.t;
  view : View.t;
  out : Roll_delta.Delta.t;  (** the view delta being accumulated *)
  stats : Stats.t;
  mutable geometry : Geometry.t option;
  mutable on_execute : unit -> unit;
      (** called immediately before each propagation query's transaction *)
  mutable on_emit :
    description:string -> Roll_relation.Tuple.t -> int -> Roll_delta.Time.t -> unit;
      (** row provenance hook: called for every view-delta row a query
          emits, with the signed count and timestamp; for tracing and
          debugging *)
  mutable auto_capture : bool;
      (** advance capture before every query (default true); switch off to
          drive capture lag by hand *)
  mutable skip_empty_windows : bool;
      (** skip queries whose forward window is provably empty (default
          true); the geometry trace records an equivalent virtual box so
          coverage checking stays exact. Switch off to observe the paper's
          full query structure (e.g. the four queries of Equation 3). *)
  mutable timestamp_rule : [ `Min | `Max ];
      (** how a result row's timestamp is derived from its delta inputs.
          [`Min] is the paper's (correct) rule from Section 3.3; [`Max] is
          kept as an ablation that the benches show to break
          transaction-consistent point-in-time states. *)
  mutable last_report : Exec.report option;
      (** instrumented report of the most recent pipeline run in this
          context (per-step estimated vs. actual cardinalities, reads,
          hash builds, wall time) — what [Executor.explain_analyze] and
          [rollctl explain] read back *)
  mutable fault : Roll_util.Fault.t;
      (** fault-injection handle visited by every maintenance hot path
          (executor queries, compensation, frontier advances, apply,
          checkpoint writes); {!Roll_util.Fault.none} (the default) makes
          the visits free. The capture process carries its own handle
          ([Roll_capture.Capture.set_fault]). *)
  mutable memo : Memo.t;
      (** delta memo + build cache consulted by [ComputeDelta] and the
          executor. Freshly created contexts carry a private {e disabled}
          memo (standalone maintenance is bit-identical to the unshared
          pipeline); {!Service} replaces it with one shared, enabled memo
          per service when sharing is on. *)
  mutable obs : Roll_obs.Obs.t;
      (** Rollscope observability handle: clock, trace recorder, metrics
          registry. Defaults to {!Roll_obs.Obs.disabled}, under which every
          instrumentation point in the maintenance path reduces to one
          branch. {!Service} installs its own handle on registered views. *)
  mutable frozen_exec : Roll_delta.Time.t option;
      (** When [Some t], the step executes in {e frozen-clock} mode: every
          query uses [t] as its virtual execution time instead of
          committing a marker transaction, and capture is not advanced.
          Sound whenever base tables do not change while the flag is set —
          each window then contains the same rows it would at any physical
          execution time (the memo theorem) — which is how a parallel wave
          runs steps on worker domains without touching the single-writer
          database clock. [None] (the default) is the ordinary path. *)
  mutable memo_owner : int;
      (** Work-item slot tag passed to {!Memo.add} for entries this context
          inserts, so a parallel rollback can evict exactly one step's
          entries ({!Memo.evict_since}). 0 (the default) outside waves. *)
  mutable aux : (peek:bool -> int -> aux_source option) option;
      (** Auxiliary-view substitution closure, installed by the
          {!Auxiliary} registry: called with a source position whenever a
          query term reads that source as a base relation. [Some s] means
          "probe [s.table] instead — it is fresh"; [None] means no
          auxiliary exists (or it lags) and the base table is read as
          always. [peek:true] is the cost-estimation variant: it returns
          the mirror whenever one exists, without the freshness test and
          without touching the aux hit/miss counters. [None] overall (the
          default) disables substitution. *)
  mutable hot : (peek:bool -> int -> hot_source option) option;
      (** Heavy-light partition substitution closure, installed by the
          {!Hotset} registry; same contract and [peek] semantics as
          {!aux}, consulted only where {!aux} yields nothing. [Some s]
          means "read the union of [s.parts] instead — every part is
          fresh". [None] overall (the default) disables partitioning. *)
}

val create :
  ?geometry:bool ->
  ?obs:Roll_obs.Obs.t ->
  ?t_initial:Roll_delta.Time.t ->
  Roll_storage.Database.t ->
  Roll_capture.Capture.t ->
  View.t ->
  t
(** The capture process must already have every source table attached.
    [t_initial] (default [Database.now db]) seeds the geometry trace's
    origin. @raise Invalid_argument if a source table is not attached. *)
