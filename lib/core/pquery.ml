type term = Base | Win of { lo : Roll_delta.Time.t; hi : Roll_delta.Time.t }

type t = term array

let all_base n = Array.make n Base

let replace q i term =
  let q' = Array.copy q in
  q'.(i) <- term;
  q'

let has_base q = Array.exists (fun t -> t = Base) q

let n_deltas q =
  Array.fold_left (fun acc t -> match t with Base -> acc | Win _ -> acc + 1) 0 q

let is_forward q = n_deltas q = 1

let equal (a : t) (b : t) = a = b

let hash (q : t) = Hashtbl.hash q

(* ------------------------------------------------------------------ *)
(* Canonical signatures                                                *)

(* All permutations of a list; n is capped by [signature]'s guard. *)
let rec permutations = function
  | [] -> [ [] ]
  | l ->
      List.concat_map
        (fun x ->
          List.map
            (fun p -> x :: p)
            (permutations (List.filter (fun y -> y <> x) l)))
        l

let render_term buf = function
  | Base -> Buffer.add_string buf "B"
  | Win { lo; hi } -> Buffer.add_string buf (Printf.sprintf "W(%d,%d]" lo hi)

(* Render (view, q) with sources reordered by [inv] (canonical position k
   holds original source inv.(k)) and every column reference remapped
   through [perm] (original source i appears at position perm.(i)).
   Aliases and column names are deliberately absent: only table names,
   window bounds, remapped predicate atoms (sorted, join endpoints
   normalized), the projection's remapped operands and the output column
   types participate, so two views that differ only in alias naming or
   source order render identically under the right permutation. *)
let render view ~rule (q : t) perm inv =
  let module P = Roll_relation.Predicate in
  let n = Array.length q in
  let buf = Buffer.create 128 in
  Buffer.add_string buf (match rule with `Min -> "min;" | `Max -> "max;");
  for k = 0 to n - 1 do
    let i = inv.(k) in
    Buffer.add_string buf (View.source_table view i);
    Buffer.add_char buf ':';
    render_term buf q.(i);
    Buffer.add_char buf ';'
  done;
  let remap_col (c : P.col) = { c with P.source = perm.(c.source) } in
  let rec remap_operand = function
    | P.Col c -> P.Col (remap_col c)
    | P.Const _ as o -> o
    | P.Neg e -> P.Neg (remap_operand e)
    | P.Add (a, b) -> P.Add (remap_operand a, remap_operand b)
    | P.Sub (a, b) -> P.Sub (remap_operand a, remap_operand b)
    | P.Mul (a, b) -> P.Mul (remap_operand a, remap_operand b)
    | P.Div (a, b) -> P.Div (remap_operand a, remap_operand b)
  in
  let atom_str atom =
    let atom =
      match atom with
      | P.Join (x, y) ->
          let x = remap_col x and y = remap_col y in
          if (x.P.source, x.P.column) <= (y.P.source, y.P.column) then
            P.Join (x, y)
          else P.Join (y, x)
      | P.Cmp (op, x, y) -> P.Cmp (op, remap_operand x, remap_operand y)
    in
    Format.asprintf "%a" P.pp_atom atom
  in
  let atoms = List.sort String.compare (List.map atom_str (View.predicate view)) in
  List.iter
    (fun s ->
      Buffer.add_string buf s;
      Buffer.add_char buf ';')
    atoms;
  Buffer.add_char buf '|';
  let out = View.output_schema view in
  for c = 0 to Roll_relation.Schema.arity out - 1 do
    Buffer.add_string buf
      (Roll_relation.Value.ty_to_string
         (Roll_relation.Schema.column out c).Roll_relation.Schema.ty);
    Buffer.add_char buf ','
  done;
  Buffer.add_char buf '|';
  List.iter
    (fun (_, operand) ->
      Buffer.add_string buf
        (Format.asprintf "%a" P.pp_operand (remap_operand operand));
      Buffer.add_char buf ';')
    (View.projection view);
  Buffer.contents buf

(* Beyond this many sources the factorial permutation search is not worth
   it; fall back to the identity order (signatures then only match between
   views that list their sources identically). *)
let max_canon_sources = 6

let signature view ~rule (q : t) =
  let n = Array.length q in
  let identity = Array.init n Fun.id in
  if n > max_canon_sources then render view ~rule q identity identity
  else begin
    let best = ref None in
    List.iter
      (fun inv_list ->
        let inv = Array.of_list inv_list in
        let perm = Array.make n 0 in
        Array.iteri (fun k i -> perm.(i) <- k) inv;
        let s = render view ~rule q perm inv in
        match !best with
        | Some b when String.compare b s <= 0 -> ()
        | _ -> best := Some s)
      (permutations (List.init n Fun.id));
    Option.get !best
  end

let describe view q =
  let part i = function
    | Base -> View.alias view i
    | Win { lo; hi } -> Printf.sprintf "d%s(%d,%d]" (View.alias view i) lo hi
  in
  String.concat " . " (Array.to_list (Array.mapi part q))
