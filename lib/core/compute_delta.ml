module Time = Roll_delta.Time
module Database = Roll_storage.Database
module Capture = Roll_capture.Capture
module Delta = Roll_delta.Delta

(* A forward window that is provably empty (fully captured and containing
   no change rows) contributes nothing, and neither does its compensation:
   every query derived from it contains the empty window. Skipping it keeps
   quiet relations free and makes propagation processes able to go idle
   instead of chasing their own marker commits. *)
let window_known_empty (ctx : Ctx.t) i ~lo ~hi =
  ctx.skip_empty_windows
  && hi <= Capture.hwm ctx.capture
  &&
  let table = View.source_table ctx.view i in
  Delta.window_count (Capture.delta ctx.capture ~table) ~lo ~hi = 0

(* The net effect of the skipped forward query plus its compensation is the
   query evaluated at the intended vector time; record it as a virtual box
   so the geometry trace still tiles exactly. *)
let record_virtual_box (ctx : Ctx.t) ~sign (q : Pquery.t) tau_old i t_new =
  match ctx.geometry with
  | None -> ()
  | Some g ->
      let spans =
        Array.mapi
          (fun j term ->
            match term with
            | Pquery.Win { lo; hi } -> Geometry.Window (lo, hi)
            | Pquery.Base ->
                if j = i then Geometry.Window (tau_old.(i), t_new)
                else if j < i then Geometry.Full_upto tau_old.(j)
                else Geometry.Full_upto t_new)
          q
      in
      Geometry.record ~label:"(skipped empty window)" g ~sign spans

let rec run ?(sign = 1) (ctx : Ctx.t) (q : Pquery.t) tau_old t_new =
  if Array.length tau_old <> Array.length q then
    invalid_arg "ComputeDelta: timestamp vector arity mismatch";
  if t_new > Database.now ctx.db then
    invalid_arg "ComputeDelta: target time has not elapsed yet";
  if ctx.auto_capture then Capture.advance ctx.capture;
  Roll_util.Fault.hit ctx.fault "compensate.enter";
  Stats.incr_compute_delta_calls ctx.stats;
  let n = Array.length q in
  for i = 0 to n - 1 do
    match q.(i) with
    | Pquery.Win _ -> ()
    | Pquery.Base ->
        if tau_old.(i) < t_new then begin
          if window_known_empty ctx i ~lo:tau_old.(i) ~hi:t_new then
            record_virtual_box ctx ~sign q tau_old i t_new
          else begin
          let q' = Pquery.replace q i (Pquery.Win { lo = tau_old.(i); hi = t_new }) in
          let t_exec = Executor.execute ctx ~sign q' in
          if Pquery.has_base q' then begin
            (* Per Equation 2's convention, tables left of the delta were
               intended at their old times, tables right of it at t_new; the
               query actually saw everything at t_exec, so compensate the
               difference, negated. *)
            let tau_intended =
              Array.init n (fun j -> if j < i then tau_old.(j) else t_new)
            in
            run ~sign:(-sign) ctx q' tau_intended t_exec
          end
          end
        end
  done

let view_delta (ctx : Ctx.t) ~lo ~hi =
  let n = View.n_sources ctx.view in
  run ctx (Pquery.all_base n) (Time.Vector.const n lo) hi
