module Time = Roll_delta.Time
module Database = Roll_storage.Database
module Capture = Roll_capture.Capture
module Delta = Roll_delta.Delta

(* A forward window that is provably empty (fully captured and containing
   no change rows) contributes nothing, and neither does its compensation:
   every query derived from it contains the empty window. Skipping it keeps
   quiet relations free and makes propagation processes able to go idle
   instead of chasing their own marker commits. *)
let window_known_empty (ctx : Ctx.t) i ~lo ~hi =
  ctx.skip_empty_windows
  && hi <= Capture.hwm ctx.capture
  &&
  let table = View.source_table ctx.view i in
  Delta.window_count (Capture.delta ctx.capture ~table) ~lo ~hi = 0

(* The net effect of the skipped forward query plus its compensation is the
   query evaluated at the intended vector time; record it as a virtual box
   so the geometry trace still tiles exactly. *)
let record_virtual_box (ctx : Ctx.t) ~sign (q : Pquery.t) tau_old i t_new =
  match ctx.geometry with
  | None -> ()
  | Some g ->
      let spans =
        Array.mapi
          (fun j term ->
            match term with
            | Pquery.Win { lo; hi } -> Geometry.Window (lo, hi)
            | Pquery.Base ->
                if j = i then Geometry.Window (tau_old.(i), t_new)
                else if j < i then Geometry.Full_upto tau_old.(j)
                else Geometry.Full_upto t_new)
          q
      in
      Geometry.record ~label:"(skipped empty window)" g ~sign spans

(* ------------------------------------------------------------------ *)
(* Memoization                                                         *)

(* The memo is sound because the net result of a compensated computation is
   a mathematically fixed timed delta: the windows it reads are fixed row
   sets (their [hi] is at or below the capture high-water mark) and
   base-table history is immutable, so the appended rows depend only on the
   canonical query, the time vector at Base positions, the target time and
   the sign — never on the wall-clock moments the queries physically
   execute. Components of the vector at window positions are normalized to
   0: they are never read by the recursion, and callers pass differing
   unused values there. *)
let memo_tau (q : Pquery.t) tau =
  Array.mapi
    (fun i v -> match q.(i) with Pquery.Win _ -> 0 | Pquery.Base -> v)
    tau

let memo_key (ctx : Ctx.t) q tau t_new sign =
  {
    Memo.signature = Pquery.signature ctx.view ~rule:ctx.timestamp_rule q;
    tau = memo_tau q tau;
    t_new;
    sign;
  }

(* A memo hit replays literal rows and records no geometry boxes, so the
   memo stands down whenever a geometry trace is attached (coverage
   checking needs the real brick structure). *)
let memo_active (ctx : Ctx.t) = Memo.enabled ctx.memo && ctx.geometry = None

let replay (ctx : Ctx.t) rows =
  Stats.incr_memo_hits ctx.stats;
  Array.iter
    (fun (r : Delta.row) ->
      ctx.on_emit ~description:"(memo replay)" r.Delta.tuple r.Delta.count
        r.Delta.ts;
      Delta.append_row ctx.out r)
    rows

(* Attribute on the enclosing "compute_delta.node" span, so memoized
   replays are distinguishable in a trace. *)
let note_memo (ctx : Ctx.t) outcome =
  if Roll_obs.Obs.tracing ctx.obs then
    Roll_obs.Trace.add_attr
      (Roll_obs.Obs.trace ctx.obs)
      "memo"
      (Roll_obs.Trace.Str outcome)

let with_memo (ctx : Ctx.t) key f =
  match Memo.find ctx.memo key with
  | Some rows ->
      note_memo ctx "hit";
      replay ctx rows
  | None ->
      note_memo ctx "miss";
      Stats.incr_memo_misses ctx.stats;
      let from = Delta.length ctx.out in
      f ();
      Memo.add ~owner:ctx.memo_owner ctx.memo key
        (Delta.sub ctx.out ~pos:from ~len:(Delta.length ctx.out - from))

(* One span per ComputeDelta node — the memo consult/fill unit. The span's
   depth is the compensation recursion depth; sign distinguishes forward
   work from compensation. *)
let node_span (ctx : Ctx.t) ~sign (q : Pquery.t) f =
  if Roll_obs.Obs.tracing ctx.obs then
    Roll_obs.Trace.with_span
      (Roll_obs.Obs.trace ctx.obs)
      ~attrs:
        [
          ("query", Roll_obs.Trace.Str (Pquery.describe ctx.view q));
          ("sign", Roll_obs.Trace.Int sign);
        ]
      "compute_delta.node" f
  else f ()

(* ------------------------------------------------------------------ *)
(* The recursion                                                       *)

(* [run_body] is the original Figure 4 loop; [run] and [eval_at] wrap it
   with the memo consult/fill. The recursion routes every execute +
   compensate pair through [eval_at], whose net effect — "q' as of the
   intended vector v" — is the deterministic unit worth sharing. *)
let rec run_body ~sign (ctx : Ctx.t) (q : Pquery.t) tau_old t_new =
  if ctx.auto_capture && ctx.frozen_exec = None then
    Capture.advance ctx.capture;
  Roll_util.Fault.hit ctx.fault "compensate.enter";
  Stats.incr_compute_delta_calls ctx.stats;
  let n = Array.length q in
  for i = 0 to n - 1 do
    match q.(i) with
    | Pquery.Win _ -> ()
    | Pquery.Base ->
        if tau_old.(i) < t_new then begin
          if window_known_empty ctx i ~lo:tau_old.(i) ~hi:t_new then
            record_virtual_box ctx ~sign q tau_old i t_new
          else begin
            let q' =
              Pquery.replace q i (Pquery.Win { lo = tau_old.(i); hi = t_new })
            in
            (* Per Equation 2's convention, tables left of the delta were
               intended at their old times, tables right of it at t_new;
               [eval_at] executes now and compensates back to that
               vector. *)
            let v =
              Array.init n (fun j -> if j < i then tau_old.(j) else t_new)
            in
            eval_at ~sign ctx q' v
          end
        end
  done

and eval_at ?(sign = 1) ?on_executed (ctx : Ctx.t) (q : Pquery.t) v =
  if Array.length v <> Array.length q then
    invalid_arg "ComputeDelta.eval_at: timestamp vector arity mismatch";
  if Pquery.n_deltas q = 0 then
    invalid_arg "ComputeDelta.eval_at: query has no window term";
  let go () =
    let t_exec = Executor.execute ctx ~sign q in
    (match on_executed with Some f -> f () | None -> ());
    if Pquery.has_base q then run_body ~sign:(-sign) ctx q v t_exec
  in
  node_span ctx ~sign q (fun () ->
      if memo_active ctx then
        (* t_new = -1 marks eval-at entries; [run] keys use t_new >= 0, so
           the two families can never collide. *)
        with_memo ctx (memo_key ctx q v (-1) sign) go
      else go ())

let run ?(sign = 1) (ctx : Ctx.t) (q : Pquery.t) tau_old t_new =
  if Array.length tau_old <> Array.length q then
    invalid_arg "ComputeDelta: timestamp vector arity mismatch";
  if t_new > Database.now ctx.db then
    invalid_arg "ComputeDelta: target time has not elapsed yet";
  let go () = run_body ~sign ctx q tau_old t_new in
  node_span ctx ~sign q (fun () ->
      if memo_active ctx then
        with_memo ctx (memo_key ctx q tau_old t_new sign) go
      else go ())

let view_delta (ctx : Ctx.t) ~lo ~hi =
  let n = View.n_sources ctx.view in
  run ctx (Pquery.all_base n) (Time.Vector.const n lo) hi
