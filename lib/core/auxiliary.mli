(** Higher-order delta processing: auxiliary views for compensation terms.

    Every Base term of a propagation query reads one source relation R_j
    filtered by its single-source atoms and narrowed to the columns the
    join and the projection touch. That partial, π_needed(σ_local(R_j)),
    is a single-source select-project view whose forward query has no Base
    terms — it needs no compensation of its own, so maintaining it is
    O(change) per step. This registry derives those partials from a
    registered view's shape, materializes each one once through an
    ordinary {!Controller} (so propagation, WAL frontier markers,
    checkpointing and crash recovery all come for free), keeps an indexed
    in-memory {e mirror} of its contents for probing, and installs a
    freshness-checking closure ({!Ctx.aux}) into the owner's context so
    the executor probes the mirror instead of scanning the base table
    whenever that is provably sound — with transparent fallback to the
    base table whenever the auxiliary lags.

    Deduplication: entries are keyed by the canonical {!Pquery.signature}
    of their defining query — the same namespace the delta memo keys on —
    so sibling views needing the same partial share one materialization.

    The mirror is derived state on the same footing as a secondary index:
    it dies with the process and is rebuilt from the recovered auxiliary
    contents on restart. The durable truth is the auxiliary view itself. *)

type deriv = {
  source : int;  (** owner source position the auxiliary substitutes *)
  base : string;  (** the base table it is a partial of *)
  local : Roll_relation.Predicate.t;
      (** single-source atoms, rebased to source 0 *)
  select : (string * Roll_relation.Predicate.operand) list;
      (** retained columns *)
  cols : int array;  (** mirror column [k] holds base column [cols.(k)] *)
}

val derive : View.t -> deriv list
(** The auxiliary views worth materializing for a view: one per source
    that is narrowed by a local filter or a projection. Single-source
    views yield none (nothing to substitute); a source is skipped when no
    column of it survives into the join or output, or when the partial
    would be a verbatim full-width, unfiltered copy of the table. *)

type entry

type t

val create : ?interval:int -> Roll_storage.Database.t -> Roll_capture.Capture.t -> t
(** A registry maintaining auxiliaries against this database and capture
    process. [interval] (default 8) is the rolling-propagation interval of
    each auxiliary's controller. @raise Invalid_argument if
    [interval <= 0]. *)

val attach :
  ?durable:bool ->
  ?recover:bool ->
  ?obs:Roll_obs.Obs.t ->
  t ->
  Controller.t ->
  entry list
(** Derive, find-or-create, and wire the auxiliaries for a view: each
    derived partial is materialized under a deterministic name
    ([aux_<base>_<hash>], stable across restarts so frontier markers
    resolve), its mirror is indexed on the columns the owner's equi-joins
    probe, and the substitution closure is installed on the owner's
    context. With [recover], each auxiliary's controller is restored from
    durable state when markers exist and created fresh otherwise (an
    auxiliary first derived after a crash has no history). Returns the
    entries now owned by (possibly shared with) this view — register
    their controllers for maintenance. *)

val release : t -> owner:string -> entry list
(** Drop [owner] from every entry and remove entries left with no owners
    from the registry. Returns the orphans so the caller can retire their
    maintenance. *)

val sync : entry -> unit
(** Fold the auxiliary's applied-but-unmirrored view-delta suffix (up to
    the controller's high-water mark) into the mirror. Rollback-safe: rows
    a failed step or wave undo truncates are always beyond the last
    successful high-water mark, so the mirror never consumes them. *)

val sync_all : t -> unit

val gc : entry -> int
(** {!sync}, then prune the auxiliary's applied delta rows
    ({!Controller.gc}) — in that order, because the mirror reads the delta
    window the prune reclaims. Returns rows removed. *)

val fresh : t -> entry -> bool
(** Whether the mirror provably equals the partial applied to the base
    table's current committed state: no captured change to the base after
    the mirror's time (O(1): the delta's max timestamp) and no
    logged-but-uncaptured change either (a read-only scan of the WAL
    suffix past the capture cursor). *)

val lag : t -> entry -> Roll_delta.Time.t
(** How far the mirror trails the database clock ([now - mirror_as_of]);
    0 when fully caught up. Marker commits advance the clock, so a
    nonzero lag does not by itself imply staleness — {!fresh} is the
    authoritative test. *)

val entries : t -> entry list

val for_owner : t -> owner:string -> entry list

val find : t -> string -> entry option
(** Look up an entry by its auxiliary view's name. *)

val name : entry -> string

val view : entry -> View.t

val controller : entry -> Controller.t

val mirror : entry -> Roll_storage.Table.t

val owners : entry -> string list

val mirror_as_of : entry -> Roll_delta.Time.t
