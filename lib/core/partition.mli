(** Online heavy/light key classification for skew-aware maintenance.

    A bounded space-saving sketch (Metwally et al.) tracks the most
    frequent join-key values of a relation's change stream in O(capacity)
    space: observing a tracked key bumps its counter; observing an
    untracked key when the sketch is full evicts the minimum counter and
    inherits its count as the new key's error bound. Estimated counts are
    within [total/capacity] of the truth, which is exactly the resolution
    needed to find keys whose {e share} of the stream clears a threshold.

    Classification is by share with hysteresis: a key becomes heavy when
    its estimated share reaches [enter], and a heavy key falls back to
    light only when its share drops below [exit] ([exit < enter]), so keys
    oscillating around one boundary do not thrash between classes. The
    thresholds are fractions of the total observed mass — they autotune as
    the stream grows, with no absolute count to hand-pick. The heavy set
    is only updated by {!rebalance}, so callers migrate state between
    classes at well-defined points. *)

type t

val create : ?capacity:int -> ?enter:float -> ?exit_:float -> unit -> t
(** [capacity] (default 64) bounds tracked keys; [enter] (default
    [2.0 /. capacity]) and [exit_] (default [1.0 /. capacity]) are the
    share thresholds. @raise Invalid_argument if [capacity <= 0] or the
    thresholds do not satisfy [0 < exit_ <= enter <= 1]. *)

val observe : t -> int -> count:int -> unit
(** Count [count] further occurrences of a key ([count <= 0] is ignored:
    deletions and no-ops do not un-skew a stream). *)

val estimate : t -> int -> int
(** Estimated occurrence count; 0 for untracked keys. Overestimates by at
    most the evicted mass the key inherited ({!error}). *)

val error : t -> int -> int
(** The error bound baked into {!estimate} (0 for keys tracked since their
    first observation, and for untracked keys). *)

val total : t -> int
(** Total mass observed, across tracked and evicted keys alike. *)

val occupancy : t -> int
(** Keys currently tracked ([<= capacity]). *)

val capacity : t -> int

val is_heavy : t -> int -> bool
(** Current class of a key, as of the last {!rebalance}. *)

val force_heavy : t -> int -> unit
(** Place a key in the heavy set directly, bypassing the enter threshold.
    Used by crash recovery to restore durable heavy classifications; the
    key is subject to the ordinary exit hysteresis from then on. *)

val heavy_keys : t -> int list
(** The current heavy set, most frequent first. *)

val rebalance : ?max_heavy:int -> t -> int list * int list
(** Recompute the heavy set: tracked keys whose share is at least [enter]
    join it, members whose share falls below [exit] leave it, everything
    in between keeps its current class (hysteresis). [max_heavy] (default
    unlimited) caps the set, keeping the most frequent members. Returns
    [(promoted, demoted)] — the keys that changed class, so the caller
    can migrate their maintenance state. *)
