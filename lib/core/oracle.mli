(** Reference semantics and correctness checking.

    The oracle recomputes view states from the temporal history and checks
    Definition 4.2 (timed delta tables) directly. The property tests for
    Theorems 4.1–4.3 are built on these functions.

    Joins run through the same [Planner]/[Exec] cursor pipeline as the
    propagation executor (over historical relation snapshots instead of
    live tables); the planner-independent nested-loop reference the tests
    compare both against lives in the test suite itself. *)

val join_all :
  View.t -> Roll_relation.Relation.t array -> Roll_relation.Relation.t
(** n-way join of one relation per source under the view's predicate and
    projection, counts multiplying. *)

val view_at :
  Roll_storage.History.t -> View.t -> Roll_delta.Time.t ->
  Roll_relation.Relation.t
(** V_t, recomputed from base-table states at time [t]. *)

val check_timed_view_delta :
  Roll_storage.History.t ->
  View.t ->
  Roll_delta.Delta.t ->
  lo:Roll_delta.Time.t ->
  hi:Roll_delta.Time.t ->
  (unit, string) result
(** Checks that the delta is a timed delta table for the view from [lo] to
    [hi]: for every b in (lo, hi], φ(V_lo + σ_{lo,b}(Δ)) = φ(V_b). Checking
    all prefixes from a fixed [lo] implies the full Definition 4.2 because
    windows over (a, b] are differences of prefix windows. *)

val check_timed_view_delta_sampled :
  sample:(Roll_delta.Time.t -> bool) ->
  Roll_storage.History.t ->
  View.t ->
  Roll_delta.Delta.t ->
  lo:Roll_delta.Time.t ->
  hi:Roll_delta.Time.t ->
  (unit, string) result
(** As above but checking only times selected by [sample] (plus [hi]),
    for long histories. *)
