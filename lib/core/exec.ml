open Roll_relation
module Table = Roll_storage.Table
module Delta = Roll_delta.Delta

type source = {
  info : Planner.source_info;
  scan : unit -> Cursor.t;
  probe : (columns:int list -> Tuple.t -> Cursor.t) option;
  cache_key : string option;
}

let source_of_table table =
  {
    info =
      {
        Planner.name = Table.name table;
        card = Table.distinct_count table;
        is_delta = false;
        indexed = Table.indexed_columns table;
      };
    scan = (fun () -> Table.scan_cursor table);
    probe = Some (fun ~columns key -> Table.probe_cursor table ~columns key);
    (* Keyed by content version: any committed change to the table makes
       earlier cached builds unreachable. *)
    cache_key =
      Some (Printf.sprintf "%s@%d" (Table.name table) (Table.version table));
  }

(* An auxiliary mirror is physically a table — scannable, probe-able
   through its secondary indexes, build-cacheable by content version — but
   plans must show it under its provenance name (the "α" prefix mirrors the
   "Δ" convention for delta windows), and its cache key must stay the
   mirror's own (unique) table name so cached builds never collide with the
   base relation's. *)
let source_of_aux ~name table =
  let s = source_of_table table in
  { s with info = { s.info with Planner.name } }

(* A heavy-light partition reads as the union of its part mirrors (light
   residual + one per heavy key), which partition the substituted partial:
   scans and index probes are disjoint merges, cardinality is the sum, and
   only columns indexed in *every* part are advertised as probe-able. The
   cache key concatenates each part's content-versioned key, so any change
   to any part invalidates cached builds over the union. *)
let source_of_union ~name parts =
  if parts = [] then invalid_arg "Exec.source_of_union: no parts";
  let indexed =
    List.fold_left
      (fun acc t ->
        List.filter (fun cs -> List.mem cs (Table.indexed_columns t)) acc)
      (Table.indexed_columns (List.hd parts))
      (List.tl parts)
  in
  {
    info =
      {
        Planner.name;
        card = List.fold_left (fun n t -> n + Table.distinct_count t) 0 parts;
        is_delta = false;
        indexed;
      };
    scan = (fun () -> Cursor.merge (List.map Table.scan_cursor parts));
    probe =
      Some
        (fun ~columns key ->
          Cursor.merge
            (List.map (fun t -> Table.probe_cursor t ~columns key) parts));
    cache_key =
      Some
        (String.concat "+"
           (List.map
              (fun t ->
                Printf.sprintf "%s@%d" (Table.name t) (Table.version t))
              parts));
  }

let source_of_relation ~name r =
  {
    info =
      {
        Planner.name;
        card = Relation.distinct_count r;
        is_delta = false;
        indexed = [];
      };
    scan = (fun () -> Cursor.of_relation r);
    probe = None;
    cache_key = None;
  }

let source_of_delta_window ~name d ~lo ~hi =
  {
    info =
      {
        Planner.name;
        card = Delta.window_count d ~lo ~hi;
        is_delta = true;
        indexed = [];
      };
    scan = (fun () -> Delta.window_cursor d ~lo ~hi);
    probe = None;
    (* A window whose [hi] is at or below the capture high-water mark (the
       executor rejects any other) is an immutable row set: capture appends
       in timestamp order, so later advances only add rows beyond [hi]. *)
    cache_key = Some (Printf.sprintf "%s(%d,%d]" name lo hi);
  }

type step_stat = {
  source : int;
  resource : string;
  access : Planner.access;
  est_rows : float;
  mutable actual_rows : int;
  mutable rows_in : int;
  mutable hash_builds : int;
  mutable wall : float;
}

type report = {
  steps : step_stat array;
  mutable emitted : int;
  mutable total_wall : float;
}

type totals = {
  scanned : int;
  probed : int;
  emitted : int;
  hash_builds : int;
  wall : float;
}

let totals (report : report) =
  Array.fold_left
    (fun acc st ->
      match st.access with
      | Planner.Index_probe _ -> { acc with probed = acc.probed + st.rows_in }
      | Planner.Scan | Planner.Hash_join _ | Planner.Nested_loop ->
          {
            acc with
            scanned = acc.scanned + st.rows_in;
            hash_builds = acc.hash_builds + st.hash_builds;
          })
    {
      scanned = 0;
      probed = 0;
      emitted = report.emitted;
      hash_builds = 0;
      wall = report.total_wall;
    }
    report.steps

module Key = struct
  type t = Tuple.t

  let equal = Tuple.equal
  let hash = Tuple.hash
end

module KeyTbl = Hashtbl.Make (Key)

let key_of_values values =
  if Array.exists (fun v -> v = Value.Null) values then None else Some values

(* ------------------------------------------------------------------ *)
(* Per-drain build cache                                               *)

(* Shares the two expensive physical artifacts across pipeline runs in one
   drain: hash indexes built over a source at a fixed content version, and
   the materialized rows of a delta window. Both are content-addressed
   through [source.cache_key], so entries never go stale — a changed table
   gets a new version key, and a captured window's rows are immutable —
   but the cache is still cleared per drain to bound memory. *)
type cache = {
  builds : (string, Cursor.row list KeyTbl.t) Hashtbl.t;
  windows : (string, Cursor.row array) Hashtbl.t;
  mutable build_hits : int;
  mutable window_hits : int;
  (* One mutex over both tables: waves run pipelines on worker domains
     against the shared per-drain cache. Artifacts are immutable once
     stored, so only the lookup/insert (and the build that fills a miss,
     which also deduplicates concurrent builds of the same artifact) needs
     the lock — probing a returned hash table is lock-free. *)
  cache_mutex : Mutex.t;
}

let cache_create () =
  {
    builds = Hashtbl.create 16;
    windows = Hashtbl.create 16;
    build_hits = 0;
    window_hits = 0;
    cache_mutex = Mutex.create ();
  }

let cache_locked c f =
  Mutex.lock c.cache_mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock c.cache_mutex) f

let cache_clear c =
  cache_locked c (fun () ->
      Hashtbl.reset c.builds;
      Hashtbl.reset c.windows)

let cache_build_hits c = c.build_hits

let cache_window_hits c = c.window_hits

let cache_hits c = c.build_hits + c.window_hits

(* Scan through the cache: the materialized rows of an already-visited
   delta window are replayed from the cache instead of re-walking the
   delta's timestamp index. Base tables always scan live (their cursors
   are already lazy and their hash builds are cached separately). *)
let cached_scan cache (src : source) () =
  match cache with
  | Some c when src.info.Planner.is_delta -> (
      match src.cache_key with
      | Some key ->
          cache_locked c (fun () ->
              match Hashtbl.find_opt c.windows key with
              | Some rows ->
                  c.window_hits <- c.window_hits + 1;
                  Cursor.of_array rows
              | None ->
                  let acc = ref [] in
                  Cursor.iter (fun r -> acc := r :: !acc) (src.scan ());
                  let rows = Array.of_list (List.rev !acc) in
                  Hashtbl.add c.windows key rows;
                  Cursor.of_array rows)
      | None -> src.scan ())
  | _ -> src.scan ()

(* A partially-joined row: one binding per input, filled in plan order. *)
type partial = { bindings : Tuple.t array; count : int; ts : int }

type op = unit -> partial option

let no_ts = Cursor.no_ts

(* Combine row timestamps under the configured rule; [no_ts] marks base
   rows, which carry no timestamp and are neutral. *)
let combine_ts rule a b =
  match rule with
  | `Min -> min a b
  | `Max -> if a = no_ts then b else if b = no_ts then a else max a b

let default_now () = Unix.gettimeofday ()

(* Inclusive per-step timing: every pull through this step (including time
   spent in children) is charged here; [run] converts to exclusive time by
   subtracting the child's inclusive total afterwards. *)
let instrumented ~now (stat : step_stat) (f : op) : op =
 fun () ->
  let t0 = now () in
  let r = f () in
  stat.wall <- stat.wall +. (now () -. t0);
  (match r with Some _ -> stat.actual_rows <- stat.actual_rows + 1 | None -> ());
  r

let scan_op ~cache ~n ~(stat : step_stat) ~(src : source) ~atoms ~source : op =
  let cur = cached_scan cache src () in
  let rec pull () =
    match Cursor.next cur with
    | None -> None
    | Some r ->
        stat.rows_in <- stat.rows_in + 1;
        let bindings = Array.make n [||] in
        bindings.(source) <- r.tuple;
        if List.for_all (Predicate.eval_atom bindings) atoms then
          Some { bindings; count = r.count; ts = r.ts }
        else pull ()
  in
  pull

(* Shared by the keyed operators: the probe key of a partial under the
   bound-side columns of [pairs], or None if any component is NULL. *)
let probe_key pairs (p : partial) =
  key_of_values
    (Array.of_list
       (List.map
          (fun ((bcol : Predicate.col), _) ->
            Tuple.get p.bindings.(bcol.source) bcol.column)
          pairs))

(* Extend a partial with one matching row, applying residual atoms. *)
let extend ~rule ~source ~atoms (p : partial) (r : Cursor.row) =
  let bindings = Array.copy p.bindings in
  bindings.(source) <- r.tuple;
  if List.for_all (Predicate.eval_atom bindings) atoms then
    Some
      { bindings; count = p.count * r.count; ts = combine_ts rule p.ts r.ts }
  else None

let hash_join_op ~cache ~rule ~(stat : step_stat) ~(src : source) ~pairs ~atoms ~source (child : op)
    : op =
  (* The hash index is built lazily from the scan cursor on first pull —
     a query whose driving input is empty never touches this table. *)
  let build () =
    stat.hash_builds <- stat.hash_builds + 1;
    let tbl = KeyTbl.create 64 in
    Cursor.iter
      (fun (r : Cursor.row) ->
        stat.rows_in <- stat.rows_in + 1;
        let key_values =
          Array.of_list (List.map (fun (_, c) -> Tuple.get r.tuple c) pairs)
        in
        match key_of_values key_values with
        | None -> ()
        | Some key ->
            KeyTbl.replace tbl key
              (r
              :: (match KeyTbl.find_opt tbl key with
                 | Some rows -> rows
                 | None -> [])))
      (cached_scan cache src ());
    tbl
  in
  (* With a cache, a table already built over the same content version and
     key columns is reused outright: no build, no input rows read. *)
  let index =
    lazy
      (match (cache, src.cache_key) with
      | Some c, Some key ->
          let key =
            key ^ "#"
            ^ String.concat ","
                (List.map (fun (_, col) -> string_of_int col) pairs)
          in
          (* The build itself runs outside the lock: it pulls rows through
             [cached_scan], which takes the same mutex (non-reentrant).
             Two domains racing on the same key may both build — the
             artifacts are content-identical, and the double-checked insert
             keeps a single winner so later probes share one table. *)
          let cached =
            cache_locked c (fun () ->
                match Hashtbl.find_opt c.builds key with
                | Some tbl ->
                    c.build_hits <- c.build_hits + 1;
                    Some tbl
                | None -> None)
          in
          (match cached with
          | Some tbl -> tbl
          | None ->
              let tbl = build () in
              cache_locked c (fun () ->
                  match Hashtbl.find_opt c.builds key with
                  | Some winner -> winner
                  | None ->
                      Hashtbl.add c.builds key tbl;
                      tbl))
      | _ -> build ())
  in
  let current = ref None in
  let pending = ref [] in
  let rec pull () =
    match !pending with
    | r :: rest -> (
        pending := rest;
        match extend ~rule ~source ~atoms (Option.get !current) r with
        | Some _ as out -> out
        | None -> pull ())
    | [] -> (
        match child () with
        | None -> None
        | Some p ->
            current := Some p;
            (match probe_key pairs p with
            | None -> ()
            | Some key -> (
                match KeyTbl.find_opt (Lazy.force index) key with
                | Some rows -> pending := rows
                | None -> ()));
            pull ())
  in
  pull

let index_probe_op ~rule ~(stat : step_stat) ~(src : source) ~pairs ~columns ~atoms ~source
    (child : op) : op =
  let probe =
    match src.probe with
    | Some probe -> probe
    | None -> invalid_arg "Exec: index-probe step on a source with no index"
  in
  let current = ref None in
  let matches = ref (Cursor.empty ()) in
  let rec pull () =
    match Cursor.next !matches with
    | Some r -> (
        stat.rows_in <- stat.rows_in + 1;
        match extend ~rule ~source ~atoms (Option.get !current) r with
        | Some _ as out -> out
        | None -> pull ())
    | None -> (
        match child () with
        | None -> None
        | Some p ->
            current := Some p;
            (match probe_key pairs p with
            | None -> matches := Cursor.empty ()
            | Some key -> matches := probe ~columns key);
            pull ())
  in
  pull

let nested_loop_op ~cache ~rule ~(stat : step_stat) ~(src : source) ~atoms ~source (child : op) : op
    =
  (* The inner input is pinned once on first pull and replayed per partial;
     its rows count toward the footprint once, like any other scan. *)
  let rows =
    lazy
      (let acc = ref [] in
       Cursor.iter
         (fun r ->
           stat.rows_in <- stat.rows_in + 1;
           acc := r :: !acc)
         (cached_scan cache src ());
       Array.of_list (List.rev !acc))
  in
  let current = ref None in
  let at = ref 0 in
  let rec pull () =
    let inner = Lazy.force rows in
    if !at < Array.length inner && !current <> None then begin
      let r = inner.(!at) in
      incr at;
      match extend ~rule ~source ~atoms (Option.get !current) r with
      | Some _ as out -> out
      | None -> pull ()
    end
    else
      match child () with
      | None -> None
      | Some p ->
          current := Some p;
          at := 0;
          pull ()
  in
  pull

let run ?cache ?(now = default_now) ~rule ~sources ~(plan : Planner.t) ~emit () =
  let n = Array.length sources in
  let steps = Array.of_list plan.Planner.steps in
  if Array.length steps <> n then invalid_arg "Exec.run: plan arity mismatch";
  let stats =
    Array.map
      (fun (st : Planner.step) ->
        {
          source = st.source;
          resource = sources.(st.source).info.Planner.name;
          access = st.access;
          est_rows = st.est_out;
          actual_rows = 0;
          rows_in = 0;
          hash_builds = 0;
          wall = 0.;
        })
      steps
  in
  let rec build k : op =
    let (st : Planner.step) = steps.(k) in
    let stat = stats.(k) in
    let src = sources.(st.source) in
    let op =
      if k = 0 then
        scan_op ~cache ~n ~stat ~src ~atoms:st.atoms ~source:st.source
      else
        let child = build (k - 1) in
        match st.access with
        | Planner.Scan -> invalid_arg "Exec.run: scan step after the first"
        | Planner.Hash_join pairs ->
            hash_join_op ~cache ~rule ~stat ~src ~pairs ~atoms:st.atoms
              ~source:st.source child
        | Planner.Index_probe (pairs, columns) ->
            index_probe_op ~rule ~stat ~src ~pairs ~columns ~atoms:st.atoms
              ~source:st.source child
        | Planner.Nested_loop ->
            nested_loop_op ~cache ~rule ~stat ~src ~atoms:st.atoms ~source:st.source
              child
    in
    instrumented ~now stat op
  in
  let top = build (n - 1) in
  let report = { steps = stats; emitted = 0; total_wall = 0. } in
  let t0 = now () in
  let rec drain () =
    match top () with
    | None -> ()
    | Some p ->
        report.emitted <- report.emitted + 1;
        emit p.bindings p.count p.ts;
        drain ()
  in
  drain ();
  report.total_wall <- now () -. t0;
  (* Inclusive → exclusive wall time: each step's only consumer is the next
     one, so the child's inclusive total is exactly the nested portion. *)
  for k = n - 1 downto 1 do
    stats.(k).wall <- Float.max 0. (stats.(k).wall -. stats.(k - 1).wall)
  done;
  report
