(** Unified maintenance-task scheduler.

    The paper leaves propagation pacing as hand-tuned knobs: one interval
    per relation (§3.4), chosen "to balance query execution overhead
    against data contention" (§3.3). This module closes that loop. All
    maintenance work — capture advances, propagation steps, apply
    refreshes, checkpoints, garbage collection — is expressed as one
    {!item} vocabulary, and a drain repeatedly picks the best next item
    from a priority queue scored by per-view staleness against an SLA,
    planner-estimated step cost, and capture backpressure.

    {2 Policies}

    - {!Slack} (default): earliest-deadline-first on staleness slack
      ([sla - staleness], in commits), with a small cost penalty
      ([cost_weight * estimated rows touched]) so that among equally
      urgent steps the cheaper one runs first. Apply refreshes score on
      the stored view's own slack, slightly behind propagation.
    - {!Round_robin}: reproduces the legacy [Service.step_all] behavior —
      views take propagate turns in registration order, each view stepping
      at most once more than any other non-idle view per drain.

    {2 Backpressure}

    A propagate step whose forward-query window would reach past the
    capture high-water mark is {e deferred} (running it would read an
    under-captured delta window, which the executor rejects), and the
    pending {!Capture_advance} item is boosted to the front of the queue.
    Each boosted advance strictly reduces the capture lag, so capture lag
    can never deadlock propagation: once the deferred windows are fully
    captured the steps become runnable again. With [capture_batch] set,
    each advance captures at most that many log records, bounding the
    latency any single work item can add to the loop.

    The scheduler only plans and scores; the {!Service} drain executes the
    chosen items (so retry, durability and pause semantics stay where they
    are) and reports back through {!note_ran}. Counters live in a
    {!Stats.t} under per-kind groups (see {!Stats.sched_kind}). *)

type policy = Slack | Round_robin

type item =
  | Capture_advance  (** advance the capture cursor (one batch) *)
  | Propagate_step of { view : string; relation : int }
      (** run the view's next propagation step; [relation]'s delta window
          drives the forward query *)
  | Apply_refresh of string  (** roll the stored view forward to its hwm *)
  | Checkpoint of string  (** snapshot the view's maintenance state *)
  | Gc of string  (** prune applied view-delta rows *)

type scored = {
  item : item;
  score : float;  (** queue priority; lower runs first *)
  staleness : int;
      (** commits behind current time (capture items report their lag) *)
  slack : int;  (** [sla - staleness]; negative means the SLA is violated *)
  est_rows : int;  (** delta rows the item would move *)
  est_cost : float;  (** planner-estimated rows touched *)
  deferred : bool;
      (** capture backpressure: the window is not fully captured yet *)
  window : (string * Roll_delta.Time.t * Roll_delta.Time.t) option;
      (** for propagate items, the [(table, lo, hi)] delta window the
          step's forward query would read — the batching key {!take_batch}
          groups on; [None] for every other kind *)
  readers : int;
      (** clients currently blocked waiting on this view's freshness (see
          {!set_read_demand}); 0 for non-propagate kinds *)
  aux : bool;  (** the item maintains an auxiliary view *)
  hot : bool;  (** the item maintains a heavy-key partial *)
}

type source = {
  name : string;
  controller : Controller.t;
  paused : bool;  (** paused views contribute no items *)
  sla : int;  (** staleness target, in commits *)
  apply_due : bool;
      (** offer an [Apply_refresh] item when the view also has unapplied
          coverage (full drains only). Drains gate this to once per view
          per drain: a durable apply records a frontier marker, which
          re-stales the view by one commit — re-offering immediately would
          ping-pong apply against propagate until the budget is gone. *)
  checkpoint_due : bool;  (** offer a [Checkpoint] item (full drains only) *)
  gc_due : bool;  (** offer a [Gc] item (full drains only) *)
  aux : bool;
      (** an {!Auxiliary} view: its propagate items score one fixed band
          {e below} every user view's slack score while all user views are
          within their SLAs (auxiliaries must freshen first for their
          substitution probes to hit), and one band {e above} the moment
          any unpaused user view is in breach — an optimization never
          outranks a violated SLA. The band sits below the reader boost. *)
  hot : bool;
      (** a {!Hotset} heavy-key partial: scored exactly like [aux] (its
          own band constant, same magnitude) — freshen before in-SLA user
          work so the η-union substitution hits, never ahead of a user
          view in breach. Excluded, like [aux], from the breach test
          itself. *)
}

type t

val create :
  ?policy:policy ->
  ?cost_weight:float ->
  ?capture_batch:int ->
  Roll_storage.Database.t ->
  Roll_capture.Capture.t ->
  t
(** [cost_weight] (default 0.01) converts estimated rows touched into
    slack-commit units: with the default, 100 estimated rows weigh as much
    as one commit of staleness. [capture_batch] bounds the log records one
    [Capture_advance] item captures (default: unbounded — one advance
    catches up fully).
    @raise Invalid_argument if [capture_batch] is not positive. *)

val policy : t -> policy

val set_policy : t -> policy -> unit

val capture_batch : t -> int option

val stats : t -> Stats.t
(** Scheduler counters: per-kind scheduled/ran/deferred/backpressured and
    execution wall time (see {!Stats.sched_kind}). *)

val plan : ?full:bool -> t -> source list -> scored list
(** Score every currently available work item, best (lowest score) first —
    the queue a drain would consume, including deferred items (at the
    back, marked). With [full = false] (default) only propagation and
    capture work is offered — the [step_all] drain; [full = true] also
    offers apply/checkpoint/gc items. Planning is read-only and can be
    called at any time to inspect the queue. *)

val take : ?full:bool -> t -> source list -> scored option
(** Pop the best runnable item (replanning against current state) and
    count scheduled/deferred/backpressured. Deferred propagate items are
    never returned; when any exist and capture lags, the capture item is
    returned with a boosted score instead. [None] when nothing is
    runnable — every view is caught up (or paused) and capture has no
    lag. *)

val take_batch : ?full:bool -> t -> source list -> scored list
(** Like {!take}, but under {!Slack} when the best runnable item is a
    propagate step, every other runnable propagate step whose forward
    query reads the {e same} delta window (equal {!scored.window}) is
    appended behind it, in score order — one batch of sibling steps that,
    executed back to back, serve each other from the drain-scoped delta
    memo and share hash builds. Followers count toward the propagate
    kind's [batched] counter. Under {!Round_robin} (and for every
    non-propagate head) the batch is the singleton {!take} would return;
    [[]] when nothing is runnable. *)

val take_wave : ?full:bool -> t -> source list -> max:int -> scored list
(** Like {!take}, but when the best runnable item is a propagate step of a
    window-steppable (rolling-family) controller, up to [max] runnable
    propagate steps with {e pairwise-disjoint} delta windows are handed
    out together, in score order — one {e wave} the drain may execute
    concurrently on worker domains. Two windows conflict exactly when they
    overlap on the same table; identical windows (aligned siblings)
    deliberately conflict so they keep their serial back-to-back memo
    sharing. At most one item per view is ever offered, so wave members
    are distinct views by construction. Followers count toward the
    propagate kind's [batched] counter. Non-propagate heads,
    non-window-steppable processes and [max = 1] degrade to the singleton
    {!take} would return; [[]] when nothing is runnable.
    @raise Invalid_argument if [max] is not positive. *)

val note_ran : ?domain:int -> t -> item -> wall:float -> unit
(** Record that a taken item was executed, folding [wall] seconds into its
    kind's latency counter and advancing the round-robin turn state.
    [domain] (default 0, the drain domain) records which domain slot
    executed the item — see {!ran_by_domain}. *)

val ran_by_domain : t -> ((string * int) * int) list
(** Execution provenance: [((kind, domain slot), items run)], sorted by
    kind then slot. Serial drains put everything on slot 0. *)

val begin_drain : t -> unit
(** Reset per-drain round-robin turn state (and queue-wait bookkeeping).
    Call at the start of every budgeted drain. *)

val set_read_demand : t -> (string -> int) -> unit
(** Install the read-demand census: [f view] reports how many admitted
    readers are currently blocked waiting for [view]'s high-water mark to
    reach their requested time. A view with waiting readers has its
    runnable propagate steps boosted by a fixed reader band (above every
    slack score, below capture backpressure), so read traffic outranks
    idle slack without reordering the backpressure machinery. Deferred
    steps stay deferred — the boost never runs an under-captured window.
    The boost cannot starve other views: every boosted step strictly
    advances the boosted view's frontier toward the readers' target, so
    demand drains in finitely many steps and scoring reverts to slack
    order. Default census: no demand. *)

val set_obs : t -> Roll_obs.Obs.t -> unit
(** Attach an observability handle. When enabled, {!plan} stamps each item
    with the clock reading at which it was first offered, so {!queue_wait}
    can report how long the drain left it pending. *)

val queue_wait : t -> item -> float option
(** Seconds since [item] was first offered by a {!plan} call of the
    current drain, or [None] when unknown (obs disabled, or the item was
    never planned). Ask {e before} {!note_ran}, which ends the wait. *)

val kind_name : item -> string
(** ["capture"], ["propagate"], ["apply"], ["checkpoint"] or ["gc"] — the
    {!Stats.sched_kind} group the item is counted under. *)

val pp_item : Format.formatter -> item -> unit
