open Roll_storage
open Roll_capture

type aux_source = {
  table : Table.t;  (** the auxiliary's mirror table, probed in place of the base *)
  cols : int array;
      (** column remap: mirror column [k] holds base column [cols.(k)] *)
}

type hot_source = {
  parts : Table.t list;
      (** the partition's mirrors — light residual plus one per heavy
          key — whose union is read in place of the base *)
  cols : int array;
      (** column remap: mirror column [k] holds base column [cols.(k)] *)
}

type t = {
  db : Database.t;
  capture : Capture.t;
  view : View.t;
  out : Roll_delta.Delta.t;
  stats : Stats.t;
  mutable geometry : Geometry.t option;
  mutable on_execute : unit -> unit;
  mutable on_emit :
    description:string -> Roll_relation.Tuple.t -> int -> Roll_delta.Time.t -> unit;
  mutable auto_capture : bool;
  mutable skip_empty_windows : bool;
  mutable timestamp_rule : [ `Min | `Max ];
  mutable last_report : Exec.report option;
  mutable fault : Roll_util.Fault.t;
  mutable memo : Memo.t;
  mutable obs : Roll_obs.Obs.t;
  mutable frozen_exec : Roll_delta.Time.t option;
  mutable memo_owner : int;
  mutable aux : (peek:bool -> int -> aux_source option) option;
  mutable hot : (peek:bool -> int -> hot_source option) option;
}

let create ?(geometry = false) ?obs ?t_initial db capture view =
  let attached = Capture.attached capture in
  for i = 0 to View.n_sources view - 1 do
    let table = View.source_table view i in
    if not (List.mem table attached) then
      invalid_arg ("Ctx.create: table not attached to capture: " ^ table)
  done;
  let origin =
    match t_initial with Some t -> t | None -> Database.now db
  in
  {
    db;
    capture;
    view;
    out = Roll_delta.Delta.create (View.output_schema view);
    stats = Stats.create ();
    geometry =
      (if geometry then
         Some (Geometry.create ~n:(View.n_sources view) ~origin)
       else None);
    on_execute = (fun () -> ());
    on_emit = (fun ~description:_ _ _ _ -> ());
    auto_capture = true;
    skip_empty_windows = true;
    timestamp_rule = `Min;
    last_report = None;
    fault = Roll_util.Fault.none;
    memo = Memo.create ~enabled:false ();
    obs = (match obs with Some o -> o | None -> Roll_obs.Obs.disabled ());
    frozen_exec = None;
    memo_owner = 0;
    aux = None;
    hot = None;
  }
