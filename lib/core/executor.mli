(** Propagation-query execution.

    Evaluates an n-way join between base tables (current committed state)
    and delta-table windows, producing timestamped, counted view-delta rows:
    count = product of input counts, timestamp = minimum of the input delta
    timestamps (Section 2). The heavy lifting lives one layer down:
    [Planner] picks a cost-based join order and access path per input, and
    [Exec] runs the plan as a pull-based cursor pipeline, so propagation
    queries cost O(delta × matching rows) rather than O(product of table
    sizes) and base tables probed through an index are never materialized.

    [execute] is the paper's [Execute]: it runs the query as one
    transaction, appends the (signed) result to the accumulating view delta,
    commits a WAL marker and returns the marker's commit sequence number —
    the query's serialization time.

    When the context carries an auxiliary-view closure ([Ctx.aux]), Base
    terms whose source has a {e fresh} auxiliary are resolved to the
    auxiliary's mirror table instead of the base relation: pre-applied
    single-source atoms are dropped from the predicate and every remaining
    column reference is remapped into mirror coordinates before planning.
    The rewritten query emits bit-identical rows (a fresh mirror {e is} the
    partial applied to current state), so substitution is invisible to the
    memo, the geometry trace and the view delta — only plans, read counts
    and the aux hit/miss counters show it. *)

val evaluate :
  Ctx.t ->
  Pquery.t ->
  (Roll_relation.Tuple.t * int * Roll_delta.Time.t) list * (string * int) list
(** [evaluate ctx q] is [(rows, reads)]: the query result as (projected
    tuple, count, timestamp) plus the per-resource read counts, in input
    order. All-base queries yield rows stamped [Time.origin]. Updates
    [ctx.last_report] and the pipeline counters in [ctx.stats] but commits
    nothing. @raise Invalid_argument if a window extends beyond the capture
    high-water mark. *)

val execute : Ctx.t -> sign:int -> Pquery.t -> Roll_delta.Time.t
(** Runs [ctx.on_execute], advances capture (if [auto_capture]), evaluates,
    appends results (multiplied by [sign]) to [ctx.out], records statistics
    and the geometry box, and returns the execution (serialization) time. *)

val plan_of : Ctx.t -> Pquery.t -> Planner.t
(** The plan the executor would run for this query right now — join order,
    access path and cardinality estimate per step. Reads current sizes but
    executes nothing. Exposed so tests can assert on access-path choices
    without string-matching explain output. *)

val explain : Ctx.t -> Pquery.t -> string
(** Human-readable description of the plan the executor would run for this
    query right now (join order, access paths, input sizes, estimated
    cardinalities). Reads current sizes but executes nothing and commits
    nothing. *)

val explain_analyze : Ctx.t -> Pquery.t -> string
(** Like [explain], but actually runs the query and reports, per step,
    estimated vs. actual cardinalities, rows read, hash builds and wall
    time. Commits nothing and leaves [ctx.out] untouched; it does update
    [ctx.stats] and [ctx.last_report] like any evaluation. *)

val materialize : Ctx.t -> Roll_relation.Relation.t * Roll_delta.Time.t
(** Evaluate the view's defining query (all base terms) against current
    state and return it with its serialization time — used to initialize a
    materialized view mid-stream. *)
