(** [ComputeDelta] — asynchronous propagation by recursive compensation
    (Figure 4).

    [run ctx q tau_old t_new] computes Q_{tau_old → t_new}, the delta of
    query [q] from the vector timestamp [tau_old] to [t_new], appending
    timestamped rows to the context's view delta. For each base term Rⁱ with
    [tau_old.(i) < t_new] it executes the forward query with Rⁱ replaced by
    the window (tau_old.(i), t_new]; because that query runs at some later
    time [t_exec], any base tables it still contains were seen "too late",
    and the error is repaired by recursively computing the negated delta of
    the same query from its intended time vector
    [\[tau_old.(0); …; tau_old.(i-1); t_new; …; t_new\]] to [t_exec].

    Setting [q] to the view's definition, [tau_old = \[a; …; a\]] and
    [t_new = b] yields the view delta V_{a,b} (Theorem 4.1: the result is a
    timed delta table for V from a to b). *)

val window_known_empty :
  Ctx.t -> int -> lo:Roll_delta.Time.t -> hi:Roll_delta.Time.t -> bool
(** True when source [i]'s delta window (lo, hi] is fully captured and
    contains no rows — in which case any query containing it, and all of
    its compensations, are empty and can be skipped. *)

val run :
  ?sign:int ->
  Ctx.t ->
  Pquery.t ->
  Roll_delta.Time.Vector.t ->
  Roll_delta.Time.t ->
  unit
(** @raise Invalid_argument if [t_new] exceeds the database's current time
    (the interval being propagated must already have elapsed — asynchrony,
    not prediction).

    When the context carries an enabled {!Memo} (and no geometry trace),
    the whole computation is consulted/filled there under the query's
    canonical {!Pquery.signature}: a hit replays the memoized rows into
    [ctx.out] without executing anything. *)

val eval_at :
  ?sign:int ->
  ?on_executed:(unit -> unit) ->
  Ctx.t ->
  Pquery.t ->
  Roll_delta.Time.Vector.t ->
  unit
(** [eval_at ctx q v] appends the rows of "[q] evaluated as of the intended
    vector [v]": it executes [q] now (at whatever time the query
    serializes) and immediately compensates the difference back to [v] with
    a negated recursive [run] — the execute-plus-compensate pair every
    propagation step performs, factored out because its net effect is
    independent of the execution time and therefore memoizable as one unit.
    Components of [v] at window positions are ignored. [on_executed] fires
    right after the forward query commits, before compensation — the hook
    [Rolling] uses to keep its fault-injection point in exactly the legacy
    position. On a memo hit nothing executes and [on_executed] does not
    fire.
    @raise Invalid_argument if [q] has no window term or [v] has the wrong
    arity. *)

val view_delta : Ctx.t -> lo:Roll_delta.Time.t -> hi:Roll_delta.Time.t -> unit
(** [view_delta ctx ~lo ~hi] runs [ComputeDelta] for the whole view over
    (lo, hi]. *)
