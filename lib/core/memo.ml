module Delta = Roll_delta.Delta

type key = { signature : string; tau : int array; t_new : int; sign : int }

module Key = struct
  type t = key

  let equal a b =
    a.sign = b.sign && a.t_new = b.t_new
    && String.equal a.signature b.signature
    && a.tau = b.tau

  let hash k = Hashtbl.hash (k.signature, k.tau, k.t_new, k.sign)
end

module Tbl = Hashtbl.Make (Key)

(* An entry remembers the rows the computation appended to the view delta,
   the insertion sequence number and the owner that inserted it, so a retry
   rollback can evict exactly what a failed step produced ([evict_since])
   even when sibling steps on other domains were filling the memo
   concurrently.

   The map is sharded by key hash: each shard has its own table, insertion
   log and mutex, so concurrent find/add from different domains contend
   only when they land on the same shard. The insertion sequence is one
   global atomic — marks taken on the drain domain order entries across
   shards. Complete entries are always value-correct regardless of which
   domain filled them: rows are captured only after the computation
   finishes, and the computation's net result is execution-time
   independent (the memo theorem). *)
type shard = {
  mutex : Mutex.t;
  entries : (Delta.row array * int * int) Tbl.t;  (** rows, seq, owner *)
  mutable log : (int * int * key) list;  (** seq, owner, key; newest first *)
}

let n_shards = 16

type t = {
  mutable enabled : bool;
  shards : shard array;
  seq : int Atomic.t;
  exec_cache : Exec.cache;
  hits : int Atomic.t;
  misses : int Atomic.t;
}

let create ?(enabled = true) () =
  {
    enabled;
    shards =
      Array.init n_shards (fun _ ->
          { mutex = Mutex.create (); entries = Tbl.create 8; log = [] });
    seq = Atomic.make 0;
    exec_cache = Exec.cache_create ();
    hits = Atomic.make 0;
    misses = Atomic.make 0;
  }

let shard t key = t.shards.(Key.hash key land (n_shards - 1))

let enabled t = t.enabled

let set_enabled t b = t.enabled <- b

let exec_cache t = t.exec_cache

let size t =
  Array.fold_left (fun acc sh -> acc + Tbl.length sh.entries) 0 t.shards

let hits t = Atomic.get t.hits

let misses t = Atomic.get t.misses

let locked sh f =
  Mutex.lock sh.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock sh.mutex) f

let find t key =
  if not t.enabled then None
  else
    let sh = shard t key in
    match locked sh (fun () -> Tbl.find_opt sh.entries key) with
    | Some (rows, _, _) ->
        Atomic.incr t.hits;
        Some rows
    | None ->
        Atomic.incr t.misses;
        None

let add ?(owner = 0) t key rows =
  if t.enabled then begin
    let seq = Atomic.fetch_and_add t.seq 1 + 1 in
    let sh = shard t key in
    locked sh (fun () ->
        Tbl.replace sh.entries key (rows, seq, owner);
        sh.log <- (seq, owner, key) :: sh.log)
  end

let mark t = Atomic.get t.seq

(* Drop every entry added after [mark] — restricted to [owner]'s entries
   when given. The serial drain evicts unscoped (everything past the mark
   belongs to the step being rolled back); a parallel wave scopes eviction
   to the failing step's owner slot so sibling steps' concurrent fills
   survive. The build cache stays — its entries are content-addressed and
   unaffected by step aborts. *)
let evict_since ?owner t mark =
  let evicts own = match owner with None -> true | Some o -> o = own in
  Array.iter
    (fun sh ->
      locked sh (fun () ->
          sh.log <-
            List.filter
              (fun (seq, own, key) ->
                if seq > mark && evicts own then begin
                  (match Tbl.find_opt sh.entries key with
                  | Some (_, s, _) when s = seq -> Tbl.remove sh.entries key
                  | _ -> ());
                  false
                end
                else true)
              sh.log))
    t.shards

(* Drain-scoped invalidation: called at every drain start, after capture
   GC, and on fault-injected aborts. Hit/miss counters are cumulative. *)
let clear t =
  Array.iter
    (fun sh ->
      locked sh (fun () ->
          Tbl.reset sh.entries;
          sh.log <- []))
    t.shards;
  Exec.cache_clear t.exec_cache
