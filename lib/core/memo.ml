module Delta = Roll_delta.Delta

type key = { signature : string; tau : int array; t_new : int; sign : int }

module Key = struct
  type t = key

  let equal a b =
    a.sign = b.sign && a.t_new = b.t_new
    && String.equal a.signature b.signature
    && a.tau = b.tau

  let hash k = Hashtbl.hash (k.signature, k.tau, k.t_new, k.sign)
end

module Tbl = Hashtbl.Make (Key)

(* An entry remembers the rows the computation appended to the view delta
   and the insertion sequence number, so a retry rollback can evict
   everything a failed step produced ([evict_since]). *)
type t = {
  mutable enabled : bool;
  entries : (Delta.row array * int) Tbl.t;
  mutable seq : int;
  (* Insertion log, newest first; drives [evict_since]. *)
  mutable log : (int * key) list;
  exec_cache : Exec.cache;
  mutable hits : int;
  mutable misses : int;
}

let create ?(enabled = true) () =
  {
    enabled;
    entries = Tbl.create 64;
    seq = 0;
    log = [];
    exec_cache = Exec.cache_create ();
    hits = 0;
    misses = 0;
  }

let enabled t = t.enabled

let set_enabled t b = t.enabled <- b

let exec_cache t = t.exec_cache

let size t = Tbl.length t.entries

let hits t = t.hits

let misses t = t.misses

let find t key =
  if not t.enabled then None
  else
    match Tbl.find_opt t.entries key with
    | Some (rows, _) ->
        t.hits <- t.hits + 1;
        Some rows
    | None ->
        t.misses <- t.misses + 1;
        None

let add t key rows =
  if t.enabled then begin
    t.seq <- t.seq + 1;
    Tbl.replace t.entries key (rows, t.seq);
    t.log <- (t.seq, key) :: t.log
  end

let mark t = t.seq

(* Drop every entry added after [mark]. Single-threaded maintenance means
   everything past the mark belongs to the step being rolled back: its
   memoized deltas must not survive the retry (the re-run would replay rows
   that [Delta.truncate] just dropped from the view delta). The build cache
   stays — its entries are content-addressed and unaffected by step
   aborts. *)
let evict_since t mark =
  let rec drop = function
    | (seq, key) :: rest when seq > mark ->
        (match Tbl.find_opt t.entries key with
        | Some (_, s) when s = seq -> Tbl.remove t.entries key
        | _ -> ());
        drop rest
    | log -> log
  in
  t.log <- drop t.log

(* Drain-scoped invalidation: called at every drain start, after capture
   GC, and on fault-injected aborts. Hit/miss counters are cumulative. *)
let clear t =
  Tbl.reset t.entries;
  t.log <- [];
  Exec.cache_clear t.exec_cache
