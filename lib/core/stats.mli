(** Execution statistics and per-transaction footprints.

    Counters drive the benches; footprints (which resources a propagation
    transaction read and how many rows) feed the contention simulator, so
    the lock-queueing model runs on measured rather than assumed transaction
    sizes.

    The execution pipeline additionally reports how rows were reached —
    scanned (full scans, hash builds, nested loops) versus probed through a
    secondary index — plus hash builds and wall time, both in aggregate and
    per resource.

    A [t] is domain-safe: scalar counters are atomic and the aggregate
    structures (per-resource profile, footprints, wall-clock accumulators)
    are mutex-protected, so propagation steps running on worker domains
    can record into one record concurrently with exact totals. The
    {!sched_counters} records returned by {!sched_kind} are the one
    exception — they are mutated in place by the single-writer drain loop
    only. *)

type footprint = {
  exec : Roll_delta.Time.t;  (** serialization time of the query *)
  description : string;
  reads : (string * int) list;
      (** resource name ("R" for a base table, "ΔR" for its delta) and rows
          read from it *)
  emitted : int;  (** rows added to the view delta *)
}

type sched_counters = {
  mutable scheduled : int;
      (** times an item of this kind was offered to the work queue *)
  mutable ran : int;  (** times an item of this kind was executed *)
  mutable deferred : int;
      (** propagate items pushed behind capture because their window was not
          yet fully captured *)
  mutable backpressured : int;
      (** capture items boosted to the front of the queue by a deferred
          propagate step *)
  mutable batched : int;
      (** propagate items executed as followers of a same-window batch
          (the head item of each batch counts under [ran] only) *)
  mutable wall : float;  (** total wall-clock seconds executing this kind *)
}

type t

val create : unit -> t

val queries : t -> int

val rows_read : t -> int

val rows_emitted : t -> int

val compute_delta_calls : t -> int

val rows_scanned : t -> int
(** Rows fetched by scan, hash-build and nested-loop steps. *)

val rows_probed : t -> int
(** Rows fetched through secondary-index probes. *)

val hash_builds : t -> int
(** Per-query hash indexes built (each one is a full scan of its input —
    the cost a secondary index avoids). *)

val exec_wall : t -> float
(** Total wall-clock seconds spent draining execution pipelines. *)

val retries : t -> int
(** Propagation-step attempts re-run after a transient failure. *)

val aborts : t -> int
(** Propagation steps abandoned after exhausting their retry budget. *)

val recoveries : t -> int
(** Successful recoveries: transient-failed steps that eventually
    succeeded, plus controller restarts recovered from durable state. *)

val memo_hits : t -> int
(** [ComputeDelta] invocations answered by replaying memoized delta rows
    instead of executing queries. *)

val memo_misses : t -> int
(** Memo consultations that fell through to real execution (only counted
    while an enabled memo is installed). *)

val shared_builds : t -> int
(** Physical artifacts (hash builds, window materializations) this view
    reused from the per-drain build cache instead of rebuilding. *)

val aux_hits : t -> int
(** Base-relation reads of this view's propagation queries that were served
    by probing a fresh auxiliary view instead of the base table. *)

val aux_misses : t -> int
(** Auxiliary consultations that found the auxiliary lagging behind the
    base table and transparently fell back to the base-relation scan. *)

val hot_hits : t -> int
(** Base-relation reads of this view's propagation queries that were
    served by the union of a fresh heavy-light partition's mirrors. *)

val hot_misses : t -> int
(** Partition consultations that found a part lagging behind the base
    table and transparently fell back to the base-relation scan. *)

val reads_served : t -> int
(** Point-in-time and freshest-available reads served for this view. *)

val reads_rejected : t -> int
(** Reads rejected by admission control (too new, below the gc horizon,
    or shed under overload). *)

val read_wait : t -> float
(** Total seconds admitted readers spent blocked waiting for the view's
    high-water mark to reach their requested time. *)

val incr_reads_served : t -> unit

val incr_reads_rejected : t -> unit

val add_read_wait : t -> float -> unit

val incr_memo_hits : t -> unit

val incr_memo_misses : t -> unit

val add_shared_builds : t -> int -> unit

val incr_aux_hits : t -> unit

val incr_aux_misses : t -> unit

val incr_hot_hits : t -> unit

val incr_hot_misses : t -> unit

val incr_retries : t -> unit

val incr_aborts : t -> unit

val incr_recoveries : t -> unit

val incr_compute_delta_calls : t -> unit

val record_query : t -> footprint -> unit

val record_exec :
  t -> scanned:int -> probed:int -> hash_builds:int -> wall:float -> unit
(** Fold one pipeline run's totals (see [Exec.totals]) into the counters. *)

val record_resource :
  t -> string -> scanned:int -> probed:int -> wall:float -> unit
(** Fold one plan step's reads into the per-resource profile. *)

val resource_profile : t -> (string * (int * int * float)) list
(** Per-resource (scanned, probed, wall seconds), sorted by resource name. *)

val sched_kind : t -> string -> sched_counters
(** The maintenance-scheduler counter group for one work-item kind
    ("capture", "propagate", "apply", "checkpoint", "gc"), created on first
    use. The returned record is live: callers mutate it in place. *)

val sched_kinds : t -> (string * sched_counters) list
(** Every scheduler counter group, sorted by kind name. *)

val footprints : t -> footprint list

val set_keep_footprints : t -> bool -> unit
(** Footprint retention is on by default; long benches can switch it off to
    bound memory. Counters are always maintained. *)

val reset : t -> unit

val register :
  ?labels:(string * string) list -> t -> Roll_obs.Metrics.t -> unit
(** Surface every counter of [t] in a Rollscope metric registry as
    read-through collectors ([roll_queries_total],
    [roll_rows_emitted_total], …, [roll_memo_hit_ratio], plus per-resource
    and per-scheduler-kind series). The [t] record remains the single
    store: nothing is maintained twice, and the registry samples live
    values at snapshot time. [labels] (e.g. [[("view", name)]]) are added
    to every series, letting several registrations share one registry.
    Register a given [t] with a given registry at most once. *)

val pp : Format.formatter -> t -> unit
