(** Propagation queries.

    A propagation query for a view has the view's shape with zero or more
    source relations replaced by delta-table windows (Section 2). [Q[i]] is
    either the base table Rⁱ (read at the query's execution time) or the
    window Rⁱ_{lo,hi} of Rⁱ's delta table. *)

type term = Base | Win of { lo : Roll_delta.Time.t; hi : Roll_delta.Time.t }

type t = term array

val all_base : int -> t
(** The view's own definition: n base terms. *)

val replace : t -> int -> term -> t
(** Functional update (the original query is shared by recursive
    compensation, so queries are immutable). *)

val has_base : t -> bool

val n_deltas : t -> int

val is_forward : t -> bool
(** Exactly one delta term (Section 3.2's footnote: a forward query involves
    a single delta table; compensation queries involve more). *)

val describe : View.t -> t -> string
(** E.g. ["R1(a,b] . R2 . R3"] — used for WAL marker tags and traces. *)

val equal : t -> t -> bool
(** Structural equality of the term vectors (same shape, same window
    bounds). *)

val hash : t -> int

val signature : View.t -> rule:[ `Min | `Max ] -> t -> string
(** Canonical identity of the propagation query [q] over [view]: two
    (view, query) pairs share a signature exactly when they compute the
    same delta — same source tables with the same Base/window terms
    (modulo reordering the source list and renaming aliases), same
    predicate atoms (sorted, equi-join endpoints normalized), same
    projection operands and output column types, and the same timestamp
    combination [rule]. The delta memo keys on this, so structurally
    identical subqueries reached from different sibling views — or twice
    within one view's compensation recursion — have one identity.

    Canonicalization tries every source permutation and keeps the
    lexicographically least rendering; views with more than 6 sources fall
    back to their declared source order. *)
