(** Adaptive propagation intervals.

    The paper leaves the propagation interval as a manually tuned parameter
    ("the interval acts as a parameter that can be tuned to balance query
    execution overhead against data contention", §3.3) and gives rolling
    propagation one knob per relation (§3.4). This module turns the knobs
    automatically: it observes each relation's captured change density
    (delta rows per commit) and chooses, per relation, the widest interval
    whose expected forward-query window stays under a target row budget —
    so hot relations get small steps and quiet dimensions get swept in a
    few wide ones, without the operator knowing the rates in advance. *)

type t

val create :
  ?min_interval:int ->
  ?max_interval:int ->
  target_rows:int ->
  Ctx.t ->
  t
(** [target_rows] is the desired number of delta rows per forward query —
    the transaction-size budget that contention tuning is really about.
    Intervals are clamped to [\[min_interval, max_interval\]] (defaults 1
    and 10_000). *)

val interval_for : t -> int -> int
(** [interval_for t i]: the interval to use for relation [i]'s next forward
    query, computed from the change density observed so far. Before anything
    has been captured (cold start) the relation's rate is unknown and the
    fallback is [min_interval] — a cautious first bite, since a maximal one
    could dwarf the row budget on a hot relation. A relation that stayed
    quiet over a nonzero observed span falls back to [max_interval]. *)

val policy : t -> Rolling.policy
(** The adaptive policy, for {!Rolling.step} / {!Controller.create}. *)

val density : t -> int -> float
(** Observed delta rows per commit for relation [i] (diagnostics). *)
