(** Skew-aware heavy-light partitioning of a view's most-joined relation
    (ROADMAP item 4, DESIGN.md §19).

    The auxiliary registry (§18) declines to materialize a partial that
    would be a verbatim full-width copy of its base table — which is
    exactly the shape a star schema's fact table takes, and exactly where
    compensation is most expensive: every dimension-window query rebuilds
    a hash table over the whole fact relation. This registry attacks that
    case by {e partitioning} the relation by join-key frequency instead of
    narrowing it:

    - a bounded {!Partition} sketch tracks per-key frequencies online from
      the capture stream and classifies keys heavy/light with hysteresis;
    - each {b heavy} key gets an eagerly-maintained per-key partial
      [σ_{key=k}(π_needed(σ_local(R)))], materialized through an ordinary
      durable {!Controller} — capture → propagate → apply → WAL frontier
      markers, so crash recovery is the same machinery as a user view's —
      and probed through an indexed in-memory mirror;
    - {b light} keys stay on the lazy path: one residual in-memory mirror,
      folded forward directly from the capture delta in O(change), holds
      every row whose key is not heavy.

    Light ⊎ heavy mirrors is the whole partial by construction, so the
    executor can read the union (η-prefixed in plans) in place of the base
    relation whenever every part is provably fresh — with transparent
    fallback to the base table otherwise ({!Stats} hot hits/misses).

    Migration between classes is an atomic delta-compensated handoff,
    performed only at provably-fresh points: a promotion materializes the
    key's partial durably, then deletes the key's rows from the light
    mirror; a demotion folds the retiring mirror back into the light
    residual, then commits a durable retire marker. The durable promote /
    retire markers ride the WAL, so a restarted registry re-derives the
    heavy set from the log alone; the mirrors are derived state rebuilt
    from recovered contents, exactly like auxiliary mirrors. The fault
    points [hotset.promote] and [hotset.demote] sit inside the two
    handoff windows for crash-fuzz coverage. *)

type entry
(** One heavy key's eagerly-maintained partial. *)

type t

val create :
  ?interval:int ->
  ?capacity:int ->
  ?max_heavy:int ->
  ?enter:float ->
  ?exit_:float ->
  Roll_storage.Database.t ->
  Roll_capture.Capture.t ->
  t
(** A registry maintaining heavy-key partials against this database and
    capture process. [interval] (default 8) is each partial's rolling
    interval; [capacity] (default 64), [enter] and [exit_] parameterize
    the {!Partition} sketch; [max_heavy] (default 16) caps concurrently
    heavy keys per relation. @raise Invalid_argument on non-positive
    [interval] or [max_heavy], or thresholds {!Partition.create} rejects. *)

val set_fault : t -> Roll_util.Fault.t -> unit
(** Install a fault-injection handle on the migration fault points
    ([hotset.promote], [hotset.demote]). *)

val attach :
  ?durable:bool ->
  ?recover:bool ->
  ?obs:Roll_obs.Obs.t ->
  t ->
  Controller.t ->
  entry list
(** Derive the partition group for a view — its most-joined source
    relation, partitioned on that source's first join column — seed the
    sketch and the light mirror from the relation's current contents, and
    install the substitution closure ({!Ctx.hot}) on the owner's context.
    Views with fewer than two sources, or whose candidate source feeds
    neither a join nor the output, derive nothing. Groups are shared
    across sibling views on the same (relation, column, partial shape).
    With [recover], the heavy set is re-derived from the WAL's promote /
    retire markers and each heavy partial's controller is restored from
    its durable state ({!Controller.recover}, falling back to a cold
    start when markers are missing). Returns the heavy entries now owned
    by this view — register their controllers for maintenance. *)

val release : t -> owner:string -> entry list
(** Drop [owner] from every group and retire groups left with no owners.
    Returns the orphaned heavy entries so the caller can retire their
    maintenance. *)

val pump : t -> unit
(** Fold capture-delta suffixes into every group's sketch and light
    mirror (heavy keys' rows are skipped — their controllers maintain
    them). O(new change); a no-op when nothing new was captured. *)

val rebalance : t -> entry list * entry list
(** {!pump}, then reclassify each group's keys and migrate: returns
    [(promoted, demoted)] heavy entries — register the former for
    maintenance, retire the latter. A group that is not provably fresh
    (pending capture work, or a heavy mirror lagging its controller)
    defers migration to a later call rather than risk an inexact
    handoff. *)

val sync : entry -> unit
(** Fold the partial's applied-but-unmirrored view-delta suffix (up to
    its controller's high-water mark) into its probe mirror. *)

val gc : entry -> int
(** {!sync}, then prune the partial's applied delta rows
    ({!Controller.gc}) — in that order. Returns rows removed. *)

val fresh_for : t -> owner:string -> bool
(** Whether every partitioned relation of [owner]'s groups is provably
    substitutable right now (all parts cover the base's captured delta and
    nothing is pending). *)

val entries : t -> entry list

val for_owner : t -> owner:string -> entry list

val find : t -> string -> entry option

val name : entry -> string

val key : entry -> int

val base : entry -> string

val controller : entry -> Controller.t

val mirror : entry -> Roll_storage.Table.t

val mirror_as_of : entry -> Roll_delta.Time.t

val lag : t -> entry -> Roll_delta.Time.t
(** How far the entry's mirror trails the database clock; 0 when caught
    up. As with auxiliaries, {!fresh_for} is the authoritative test. *)

val heavy_count : t -> owner:string -> int
(** Currently-heavy keys across [owner]'s groups. *)

val sketch_keys : t -> int
(** Total sketch occupancy across groups (tracked keys, not heavy ones). *)

val light_rows : t -> owner:string -> int
(** Rows held by the light residual mirrors of [owner]'s groups. *)

val partitioned : t -> owner:string -> (string * int) list
(** The (relation, column) pairs [owner] is partitioned on. *)
