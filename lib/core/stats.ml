module Vec = Roll_util.Vec

type footprint = {
  exec : Roll_delta.Time.t;
  description : string;
  reads : (string * int) list;
  emitted : int;
}

type resource_counters = {
  mutable scanned : int;
  mutable probed : int;
  mutable wall : float;
}

type sched_counters = {
  mutable scheduled : int;
  mutable ran : int;
  mutable deferred : int;
  mutable backpressured : int;
  mutable batched : int;
  mutable wall : float;
}

(* Domain safety: propagation steps run on worker domains, so the scalar
   counters are [Atomic] and the aggregate structures (hashtables, the
   footprint vector, float accumulators — no atomic float add) share one
   mutex. The [sched_counters] records stay plain mutable: the scheduler
   mutates them from the single-writer drain loop only. *)
type t = {
  queries : int Atomic.t;
  rows_read : int Atomic.t;
  rows_emitted : int Atomic.t;
  compute_delta_calls : int Atomic.t;
  rows_scanned : int Atomic.t;
  rows_probed : int Atomic.t;
  hash_builds : int Atomic.t;
  mutable exec_wall : float;
  retries : int Atomic.t;
  aborts : int Atomic.t;
  recoveries : int Atomic.t;
  memo_hits : int Atomic.t;
  memo_misses : int Atomic.t;
  shared_builds : int Atomic.t;
  aux_hits : int Atomic.t;
  aux_misses : int Atomic.t;
  hot_hits : int Atomic.t;
  hot_misses : int Atomic.t;
  reads_served : int Atomic.t;
  reads_rejected : int Atomic.t;
  mutable read_wait : float;
  resources : (string, resource_counters) Hashtbl.t;
  sched : (string, sched_counters) Hashtbl.t;
  mutable keep_footprints : bool;
  footprints : footprint Vec.t;
  m : Mutex.t;
}

let create () =
  {
    queries = Atomic.make 0;
    rows_read = Atomic.make 0;
    rows_emitted = Atomic.make 0;
    compute_delta_calls = Atomic.make 0;
    rows_scanned = Atomic.make 0;
    rows_probed = Atomic.make 0;
    hash_builds = Atomic.make 0;
    exec_wall = 0.;
    retries = Atomic.make 0;
    aborts = Atomic.make 0;
    recoveries = Atomic.make 0;
    memo_hits = Atomic.make 0;
    memo_misses = Atomic.make 0;
    shared_builds = Atomic.make 0;
    aux_hits = Atomic.make 0;
    aux_misses = Atomic.make 0;
    hot_hits = Atomic.make 0;
    hot_misses = Atomic.make 0;
    reads_served = Atomic.make 0;
    reads_rejected = Atomic.make 0;
    read_wait = 0.;
    resources = Hashtbl.create 8;
    sched = Hashtbl.create 8;
    keep_footprints = true;
    footprints = Vec.create ();
    m = Mutex.create ();
  }

let locked t f =
  Mutex.lock t.m;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.m) f

let queries t = Atomic.get t.queries

let rows_read t = Atomic.get t.rows_read

let rows_emitted t = Atomic.get t.rows_emitted

let compute_delta_calls t = Atomic.get t.compute_delta_calls

let rows_scanned t = Atomic.get t.rows_scanned

let rows_probed t = Atomic.get t.rows_probed

let hash_builds t = Atomic.get t.hash_builds

let exec_wall t = t.exec_wall

let retries t = Atomic.get t.retries

let aborts t = Atomic.get t.aborts

let recoveries t = Atomic.get t.recoveries

let memo_hits t = Atomic.get t.memo_hits

let memo_misses t = Atomic.get t.memo_misses

let shared_builds t = Atomic.get t.shared_builds

let aux_hits t = Atomic.get t.aux_hits

let aux_misses t = Atomic.get t.aux_misses

let hot_hits t = Atomic.get t.hot_hits

let hot_misses t = Atomic.get t.hot_misses

let reads_served t = Atomic.get t.reads_served

let reads_rejected t = Atomic.get t.reads_rejected

let read_wait t = t.read_wait

let incr_reads_served t = Atomic.incr t.reads_served

let incr_reads_rejected t = Atomic.incr t.reads_rejected

let incr_memo_hits t = Atomic.incr t.memo_hits

let incr_memo_misses t = Atomic.incr t.memo_misses

let add_shared_builds t n = ignore (Atomic.fetch_and_add t.shared_builds n)

let incr_aux_hits t = Atomic.incr t.aux_hits

let incr_aux_misses t = Atomic.incr t.aux_misses

let incr_hot_hits t = Atomic.incr t.hot_hits

let incr_hot_misses t = Atomic.incr t.hot_misses

let incr_retries t = Atomic.incr t.retries

let incr_aborts t = Atomic.incr t.aborts

let incr_recoveries t = Atomic.incr t.recoveries

let incr_compute_delta_calls t = Atomic.incr t.compute_delta_calls

let record_query t fp =
  Atomic.incr t.queries;
  ignore
    (Atomic.fetch_and_add t.rows_read
       (List.fold_left (fun acc (_, n) -> acc + n) 0 fp.reads));
  ignore (Atomic.fetch_and_add t.rows_emitted fp.emitted);
  if t.keep_footprints then locked t (fun () -> Vec.push t.footprints fp)

let record_exec t ~scanned ~probed ~hash_builds ~wall =
  ignore (Atomic.fetch_and_add t.rows_scanned scanned);
  ignore (Atomic.fetch_and_add t.rows_probed probed);
  ignore (Atomic.fetch_and_add t.hash_builds hash_builds);
  locked t (fun () -> t.exec_wall <- t.exec_wall +. wall)

let add_read_wait t seconds =
  locked t (fun () -> t.read_wait <- t.read_wait +. seconds)

let record_resource t name ~scanned ~probed ~wall =
  locked t (fun () ->
      let rc =
        match Hashtbl.find_opt t.resources name with
        | Some rc -> rc
        | None ->
            let rc = { scanned = 0; probed = 0; wall = 0. } in
            Hashtbl.add t.resources name rc;
            rc
      in
      rc.scanned <- rc.scanned + scanned;
      rc.probed <- rc.probed + probed;
      rc.wall <- rc.wall +. wall)

let sched_kind t kind =
  locked t (fun () ->
      match Hashtbl.find_opt t.sched kind with
      | Some c -> c
      | None ->
          let c =
            {
              scheduled = 0;
              ran = 0;
              deferred = 0;
              backpressured = 0;
              batched = 0;
              wall = 0.;
            }
          in
          Hashtbl.add t.sched kind c;
          c)

let sched_kinds t =
  locked t (fun () ->
      Hashtbl.fold (fun kind c acc -> (kind, c) :: acc) t.sched [])
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let resource_profile t =
  locked t (fun () ->
      Hashtbl.fold
        (fun name rc acc -> (name, (rc.scanned, rc.probed, rc.wall)) :: acc)
        t.resources [])
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let footprints t = locked t (fun () -> Vec.to_list t.footprints)

let set_keep_footprints t b = t.keep_footprints <- b

let reset t =
  Atomic.set t.queries 0;
  Atomic.set t.rows_read 0;
  Atomic.set t.rows_emitted 0;
  Atomic.set t.compute_delta_calls 0;
  Atomic.set t.rows_scanned 0;
  Atomic.set t.rows_probed 0;
  Atomic.set t.hash_builds 0;
  Atomic.set t.retries 0;
  Atomic.set t.aborts 0;
  Atomic.set t.recoveries 0;
  Atomic.set t.memo_hits 0;
  Atomic.set t.memo_misses 0;
  Atomic.set t.shared_builds 0;
  Atomic.set t.aux_hits 0;
  Atomic.set t.aux_misses 0;
  Atomic.set t.hot_hits 0;
  Atomic.set t.hot_misses 0;
  Atomic.set t.reads_served 0;
  Atomic.set t.reads_rejected 0;
  locked t (fun () ->
      t.exec_wall <- 0.;
      t.read_wait <- 0.;
      Hashtbl.reset t.resources;
      Hashtbl.reset t.sched;
      Vec.clear t.footprints)

(* Bridge into the Rollscope metric registry. The [t] record stays the
   single store — collectors read through it at snapshot time, so nothing
   is maintained twice and callers that mutate counter records directly
   (the scheduler) keep working unchanged. *)
let register ?(labels = []) t registry =
  let module M = Roll_obs.Metrics in
  let scalar ~kind ?help name read =
    M.register_collector registry ?help ~kind name (fun () ->
        [ (labels, read ()) ])
  in
  let counter = scalar ~kind:M.Counter in
  let gauge = scalar ~kind:M.Gauge in
  counter "roll_queries_total" ~help:"Propagation queries executed" (fun () ->
      float_of_int (queries t));
  counter "roll_rows_read_total" ~help:"Rows read by propagation queries"
    (fun () -> float_of_int (rows_read t));
  counter "roll_rows_emitted_total" ~help:"Rows emitted into view deltas"
    (fun () -> float_of_int (rows_emitted t));
  counter "roll_compute_delta_calls_total"
    ~help:"ComputeDelta invocations (including memoized replays)" (fun () ->
      float_of_int (compute_delta_calls t));
  counter "roll_rows_scanned_total"
    ~help:"Rows fetched by scans, hash builds and nested loops" (fun () ->
      float_of_int (rows_scanned t));
  counter "roll_rows_probed_total"
    ~help:"Rows fetched through secondary-index probes" (fun () ->
      float_of_int (rows_probed t));
  counter "roll_hash_builds_total" ~help:"Per-query hash indexes built"
    (fun () -> float_of_int (hash_builds t));
  counter "roll_exec_wall_seconds_total"
    ~help:"Wall-clock seconds draining execution pipelines" (fun () ->
      exec_wall t);
  counter "roll_retries_total"
    ~help:"Propagation-step attempts re-run after a transient failure"
    (fun () -> float_of_int (retries t));
  counter "roll_aborts_total"
    ~help:"Propagation steps abandoned after exhausting their retry budget"
    (fun () -> float_of_int (aborts t));
  counter "roll_recoveries_total"
    ~help:"Transient-failed steps recovered plus controller restarts"
    (fun () -> float_of_int (recoveries t));
  counter "roll_memo_hits_total"
    ~help:"ComputeDelta invocations answered from the shared memo" (fun () ->
      float_of_int (memo_hits t));
  counter "roll_memo_misses_total"
    ~help:"Memo consultations that fell through to execution" (fun () ->
      float_of_int (memo_misses t));
  counter "roll_shared_builds_total"
    ~help:"Physical artifacts reused from the per-drain build cache"
    (fun () -> float_of_int (shared_builds t));
  counter "roll_aux_hits_total"
    ~help:"Base-relation reads served by a fresh auxiliary-view probe"
    (fun () -> float_of_int (aux_hits t));
  counter "roll_aux_misses_total"
    ~help:"Auxiliary consultations that fell back to the base relation"
    (fun () -> float_of_int (aux_misses t));
  counter "roll_hot_hits_total"
    ~help:"Base-relation reads served by a fresh heavy-light partition union"
    (fun () -> float_of_int (hot_hits t));
  counter "roll_hot_misses_total"
    ~help:"Partition consultations that fell back to the base relation"
    (fun () -> float_of_int (hot_misses t));
  counter "roll_reads_served_total"
    ~help:"Point-in-time and freshest-available reads served" (fun () ->
      float_of_int (reads_served t));
  counter "roll_reads_rejected_total"
    ~help:"Reads rejected by admission control" (fun () ->
      float_of_int (reads_rejected t));
  counter "roll_read_wait_seconds_total"
    ~help:"Seconds admitted reads spent queued for their target time"
    (fun () -> read_wait t);
  gauge "roll_memo_hit_ratio"
    ~help:"Memo hits over memo consultations (0 when unused)" (fun () ->
      let total = memo_hits t + memo_misses t in
      if total = 0 then 0. else float_of_int (memo_hits t) /. float_of_int total);
  gauge "roll_aux_hit_ratio"
    ~help:"Auxiliary hits over auxiliary consultations (0 when unused)"
    (fun () ->
      let total = aux_hits t + aux_misses t in
      if total = 0 then 0. else float_of_int (aux_hits t) /. float_of_int total);
  gauge "roll_hot_hit_ratio"
    ~help:"Partition hits over partition consultations (0 when unused)"
    (fun () ->
      let total = hot_hits t + hot_misses t in
      if total = 0 then 0. else float_of_int (hot_hits t) /. float_of_int total);
  let per_resource ?help name read =
    M.register_collector registry ?help ~kind:M.Counter name (fun () ->
        resource_profile t
        |> List.map (fun (resource, triple) ->
               (("resource", resource) :: labels, read triple)))
  in
  per_resource "roll_resource_rows_scanned_total"
    ~help:"Rows scanned, by resource" (fun (scanned, _, _) ->
      float_of_int scanned);
  per_resource "roll_resource_rows_probed_total"
    ~help:"Rows probed, by resource" (fun (_, probed, _) ->
      float_of_int probed);
  per_resource "roll_resource_wall_seconds_total"
    ~help:"Wall-clock seconds, by resource" (fun (_, _, wall) -> wall);
  let per_sched ?help name read =
    M.register_collector registry ?help ~kind:M.Counter name (fun () ->
        sched_kinds t
        |> List.map (fun (kind, c) -> (("kind", kind) :: labels, read c)))
  in
  per_sched "roll_sched_scheduled_total"
    ~help:"Work items offered to the maintenance queue, by kind" (fun c ->
      float_of_int c.scheduled);
  per_sched "roll_sched_ran_total" ~help:"Work items executed, by kind"
    (fun c -> float_of_int c.ran);
  per_sched "roll_sched_deferred_total"
    ~help:"Propagate items pushed behind capture, by kind" (fun c ->
      float_of_int c.deferred);
  per_sched "roll_sched_backpressured_total"
    ~help:"Capture items boosted by a deferred propagate step, by kind"
    (fun c -> float_of_int c.backpressured);
  per_sched "roll_sched_batched_total"
    ~help:"Propagate items executed as batch followers, by kind" (fun c ->
      float_of_int c.batched);
  per_sched "roll_sched_wall_seconds_total"
    ~help:"Wall-clock seconds executing work items, by kind" (fun c -> c.wall)

let pp ppf t =
  Format.fprintf ppf
    "queries=%d rows_read=%d (scanned=%d probed=%d) rows_emitted=%d \
     hash_builds=%d compute_delta=%d"
    (queries t) (rows_read t) (rows_scanned t) (rows_probed t)
    (rows_emitted t) (hash_builds t) (compute_delta_calls t);
  if retries t > 0 || aborts t > 0 || recoveries t > 0 then
    Format.fprintf ppf " retries=%d aborts=%d recoveries=%d" (retries t)
      (aborts t) (recoveries t);
  if memo_hits t > 0 || memo_misses t > 0 || shared_builds t > 0 then
    Format.fprintf ppf " memo=%d/%d shared_builds=%d" (memo_hits t)
      (memo_hits t + memo_misses t)
      (shared_builds t);
  if reads_served t > 0 || reads_rejected t > 0 then
    Format.fprintf ppf " reads=%d/%d wait=%.3fs" (reads_served t)
      (reads_served t + reads_rejected t)
      (read_wait t)
