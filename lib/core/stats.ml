module Vec = Roll_util.Vec

type footprint = {
  exec : Roll_delta.Time.t;
  description : string;
  reads : (string * int) list;
  emitted : int;
}

type resource_counters = {
  mutable scanned : int;
  mutable probed : int;
  mutable wall : float;
}

type sched_counters = {
  mutable scheduled : int;
  mutable ran : int;
  mutable deferred : int;
  mutable backpressured : int;
  mutable batched : int;
  mutable wall : float;
}

type t = {
  mutable queries : int;
  mutable rows_read : int;
  mutable rows_emitted : int;
  mutable compute_delta_calls : int;
  mutable rows_scanned : int;
  mutable rows_probed : int;
  mutable hash_builds : int;
  mutable exec_wall : float;
  mutable retries : int;
  mutable aborts : int;
  mutable recoveries : int;
  mutable memo_hits : int;
  mutable memo_misses : int;
  mutable shared_builds : int;
  resources : (string, resource_counters) Hashtbl.t;
  sched : (string, sched_counters) Hashtbl.t;
  mutable keep_footprints : bool;
  footprints : footprint Vec.t;
}

let create () =
  {
    queries = 0;
    rows_read = 0;
    rows_emitted = 0;
    compute_delta_calls = 0;
    rows_scanned = 0;
    rows_probed = 0;
    hash_builds = 0;
    exec_wall = 0.;
    retries = 0;
    aborts = 0;
    recoveries = 0;
    memo_hits = 0;
    memo_misses = 0;
    shared_builds = 0;
    resources = Hashtbl.create 8;
    sched = Hashtbl.create 8;
    keep_footprints = true;
    footprints = Vec.create ();
  }

let queries t = t.queries

let rows_read t = t.rows_read

let rows_emitted t = t.rows_emitted

let compute_delta_calls t = t.compute_delta_calls

let rows_scanned t = t.rows_scanned

let rows_probed t = t.rows_probed

let hash_builds t = t.hash_builds

let exec_wall t = t.exec_wall

let retries t = t.retries

let aborts t = t.aborts

let recoveries t = t.recoveries

let memo_hits t = t.memo_hits

let memo_misses t = t.memo_misses

let shared_builds t = t.shared_builds

let incr_memo_hits t = t.memo_hits <- t.memo_hits + 1

let incr_memo_misses t = t.memo_misses <- t.memo_misses + 1

let add_shared_builds t n = t.shared_builds <- t.shared_builds + n

let incr_retries t = t.retries <- t.retries + 1

let incr_aborts t = t.aborts <- t.aborts + 1

let incr_recoveries t = t.recoveries <- t.recoveries + 1

let incr_compute_delta_calls t = t.compute_delta_calls <- t.compute_delta_calls + 1

let record_query t fp =
  t.queries <- t.queries + 1;
  t.rows_read <- t.rows_read + List.fold_left (fun acc (_, n) -> acc + n) 0 fp.reads;
  t.rows_emitted <- t.rows_emitted + fp.emitted;
  if t.keep_footprints then Vec.push t.footprints fp

let record_exec t ~scanned ~probed ~hash_builds ~wall =
  t.rows_scanned <- t.rows_scanned + scanned;
  t.rows_probed <- t.rows_probed + probed;
  t.hash_builds <- t.hash_builds + hash_builds;
  t.exec_wall <- t.exec_wall +. wall

let record_resource t name ~scanned ~probed ~wall =
  let rc =
    match Hashtbl.find_opt t.resources name with
    | Some rc -> rc
    | None ->
        let rc = { scanned = 0; probed = 0; wall = 0. } in
        Hashtbl.add t.resources name rc;
        rc
  in
  rc.scanned <- rc.scanned + scanned;
  rc.probed <- rc.probed + probed;
  rc.wall <- rc.wall +. wall

let sched_kind t kind =
  match Hashtbl.find_opt t.sched kind with
  | Some c -> c
  | None ->
      let c =
        { scheduled = 0; ran = 0; deferred = 0; backpressured = 0; batched = 0; wall = 0. }
      in
      Hashtbl.add t.sched kind c;
      c

let sched_kinds t =
  Hashtbl.fold (fun kind c acc -> (kind, c) :: acc) t.sched []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let resource_profile t =
  Hashtbl.fold
    (fun name rc acc -> (name, (rc.scanned, rc.probed, rc.wall)) :: acc)
    t.resources []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let footprints t = Vec.to_list t.footprints

let set_keep_footprints t b = t.keep_footprints <- b

let reset t =
  t.queries <- 0;
  t.rows_read <- 0;
  t.rows_emitted <- 0;
  t.compute_delta_calls <- 0;
  t.rows_scanned <- 0;
  t.rows_probed <- 0;
  t.hash_builds <- 0;
  t.exec_wall <- 0.;
  t.retries <- 0;
  t.aborts <- 0;
  t.recoveries <- 0;
  t.memo_hits <- 0;
  t.memo_misses <- 0;
  t.shared_builds <- 0;
  Hashtbl.reset t.resources;
  Hashtbl.reset t.sched;
  Vec.clear t.footprints

let pp ppf t =
  Format.fprintf ppf
    "queries=%d rows_read=%d (scanned=%d probed=%d) rows_emitted=%d \
     hash_builds=%d compute_delta=%d"
    t.queries t.rows_read t.rows_scanned t.rows_probed t.rows_emitted
    t.hash_builds t.compute_delta_calls;
  if t.retries > 0 || t.aborts > 0 || t.recoveries > 0 then
    Format.fprintf ppf " retries=%d aborts=%d recoveries=%d" t.retries
      t.aborts t.recoveries;
  if t.memo_hits > 0 || t.memo_misses > 0 || t.shared_builds > 0 then
    Format.fprintf ppf " memo=%d/%d shared_builds=%d" t.memo_hits
      (t.memo_hits + t.memo_misses) t.shared_builds
