module Vec = Roll_util.Vec

type footprint = {
  exec : Roll_delta.Time.t;
  description : string;
  reads : (string * int) list;
  emitted : int;
}

type resource_counters = {
  mutable scanned : int;
  mutable probed : int;
  mutable wall : float;
}

type sched_counters = {
  mutable scheduled : int;
  mutable ran : int;
  mutable deferred : int;
  mutable backpressured : int;
  mutable batched : int;
  mutable wall : float;
}

type t = {
  mutable queries : int;
  mutable rows_read : int;
  mutable rows_emitted : int;
  mutable compute_delta_calls : int;
  mutable rows_scanned : int;
  mutable rows_probed : int;
  mutable hash_builds : int;
  mutable exec_wall : float;
  mutable retries : int;
  mutable aborts : int;
  mutable recoveries : int;
  mutable memo_hits : int;
  mutable memo_misses : int;
  mutable shared_builds : int;
  resources : (string, resource_counters) Hashtbl.t;
  sched : (string, sched_counters) Hashtbl.t;
  mutable keep_footprints : bool;
  footprints : footprint Vec.t;
}

let create () =
  {
    queries = 0;
    rows_read = 0;
    rows_emitted = 0;
    compute_delta_calls = 0;
    rows_scanned = 0;
    rows_probed = 0;
    hash_builds = 0;
    exec_wall = 0.;
    retries = 0;
    aborts = 0;
    recoveries = 0;
    memo_hits = 0;
    memo_misses = 0;
    shared_builds = 0;
    resources = Hashtbl.create 8;
    sched = Hashtbl.create 8;
    keep_footprints = true;
    footprints = Vec.create ();
  }

let queries t = t.queries

let rows_read t = t.rows_read

let rows_emitted t = t.rows_emitted

let compute_delta_calls t = t.compute_delta_calls

let rows_scanned t = t.rows_scanned

let rows_probed t = t.rows_probed

let hash_builds t = t.hash_builds

let exec_wall t = t.exec_wall

let retries t = t.retries

let aborts t = t.aborts

let recoveries t = t.recoveries

let memo_hits t = t.memo_hits

let memo_misses t = t.memo_misses

let shared_builds t = t.shared_builds

let incr_memo_hits t = t.memo_hits <- t.memo_hits + 1

let incr_memo_misses t = t.memo_misses <- t.memo_misses + 1

let add_shared_builds t n = t.shared_builds <- t.shared_builds + n

let incr_retries t = t.retries <- t.retries + 1

let incr_aborts t = t.aborts <- t.aborts + 1

let incr_recoveries t = t.recoveries <- t.recoveries + 1

let incr_compute_delta_calls t = t.compute_delta_calls <- t.compute_delta_calls + 1

let record_query t fp =
  t.queries <- t.queries + 1;
  t.rows_read <- t.rows_read + List.fold_left (fun acc (_, n) -> acc + n) 0 fp.reads;
  t.rows_emitted <- t.rows_emitted + fp.emitted;
  if t.keep_footprints then Vec.push t.footprints fp

let record_exec t ~scanned ~probed ~hash_builds ~wall =
  t.rows_scanned <- t.rows_scanned + scanned;
  t.rows_probed <- t.rows_probed + probed;
  t.hash_builds <- t.hash_builds + hash_builds;
  t.exec_wall <- t.exec_wall +. wall

let record_resource t name ~scanned ~probed ~wall =
  let rc =
    match Hashtbl.find_opt t.resources name with
    | Some rc -> rc
    | None ->
        let rc = { scanned = 0; probed = 0; wall = 0. } in
        Hashtbl.add t.resources name rc;
        rc
  in
  rc.scanned <- rc.scanned + scanned;
  rc.probed <- rc.probed + probed;
  rc.wall <- rc.wall +. wall

let sched_kind t kind =
  match Hashtbl.find_opt t.sched kind with
  | Some c -> c
  | None ->
      let c =
        { scheduled = 0; ran = 0; deferred = 0; backpressured = 0; batched = 0; wall = 0. }
      in
      Hashtbl.add t.sched kind c;
      c

let sched_kinds t =
  Hashtbl.fold (fun kind c acc -> (kind, c) :: acc) t.sched []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let resource_profile t =
  Hashtbl.fold
    (fun name rc acc -> (name, (rc.scanned, rc.probed, rc.wall)) :: acc)
    t.resources []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let footprints t = Vec.to_list t.footprints

let set_keep_footprints t b = t.keep_footprints <- b

let reset t =
  t.queries <- 0;
  t.rows_read <- 0;
  t.rows_emitted <- 0;
  t.compute_delta_calls <- 0;
  t.rows_scanned <- 0;
  t.rows_probed <- 0;
  t.hash_builds <- 0;
  t.exec_wall <- 0.;
  t.retries <- 0;
  t.aborts <- 0;
  t.recoveries <- 0;
  t.memo_hits <- 0;
  t.memo_misses <- 0;
  t.shared_builds <- 0;
  Hashtbl.reset t.resources;
  Hashtbl.reset t.sched;
  Vec.clear t.footprints

(* Bridge into the Rollscope metric registry. The [t] record stays the
   single store — collectors read through it at snapshot time, so nothing
   is maintained twice and callers that mutate counter records directly
   (the scheduler) keep working unchanged. *)
let register ?(labels = []) t registry =
  let module M = Roll_obs.Metrics in
  let scalar ~kind ?help name read =
    M.register_collector registry ?help ~kind name (fun () ->
        [ (labels, read ()) ])
  in
  let counter = scalar ~kind:M.Counter in
  let gauge = scalar ~kind:M.Gauge in
  counter "roll_queries_total" ~help:"Propagation queries executed" (fun () ->
      float_of_int t.queries);
  counter "roll_rows_read_total" ~help:"Rows read by propagation queries"
    (fun () -> float_of_int t.rows_read);
  counter "roll_rows_emitted_total" ~help:"Rows emitted into view deltas"
    (fun () -> float_of_int t.rows_emitted);
  counter "roll_compute_delta_calls_total"
    ~help:"ComputeDelta invocations (including memoized replays)" (fun () ->
      float_of_int t.compute_delta_calls);
  counter "roll_rows_scanned_total"
    ~help:"Rows fetched by scans, hash builds and nested loops" (fun () ->
      float_of_int t.rows_scanned);
  counter "roll_rows_probed_total"
    ~help:"Rows fetched through secondary-index probes" (fun () ->
      float_of_int t.rows_probed);
  counter "roll_hash_builds_total" ~help:"Per-query hash indexes built"
    (fun () -> float_of_int t.hash_builds);
  counter "roll_exec_wall_seconds_total"
    ~help:"Wall-clock seconds draining execution pipelines" (fun () ->
      t.exec_wall);
  counter "roll_retries_total"
    ~help:"Propagation-step attempts re-run after a transient failure"
    (fun () -> float_of_int t.retries);
  counter "roll_aborts_total"
    ~help:"Propagation steps abandoned after exhausting their retry budget"
    (fun () -> float_of_int t.aborts);
  counter "roll_recoveries_total"
    ~help:"Transient-failed steps recovered plus controller restarts"
    (fun () -> float_of_int t.recoveries);
  counter "roll_memo_hits_total"
    ~help:"ComputeDelta invocations answered from the shared memo" (fun () ->
      float_of_int t.memo_hits);
  counter "roll_memo_misses_total"
    ~help:"Memo consultations that fell through to execution" (fun () ->
      float_of_int t.memo_misses);
  counter "roll_shared_builds_total"
    ~help:"Physical artifacts reused from the per-drain build cache"
    (fun () -> float_of_int t.shared_builds);
  gauge "roll_memo_hit_ratio"
    ~help:"Memo hits over memo consultations (0 when unused)" (fun () ->
      let total = t.memo_hits + t.memo_misses in
      if total = 0 then 0. else float_of_int t.memo_hits /. float_of_int total);
  let per_resource ?help name read =
    M.register_collector registry ?help ~kind:M.Counter name (fun () ->
        resource_profile t
        |> List.map (fun (resource, triple) ->
               (("resource", resource) :: labels, read triple)))
  in
  per_resource "roll_resource_rows_scanned_total"
    ~help:"Rows scanned, by resource" (fun (scanned, _, _) ->
      float_of_int scanned);
  per_resource "roll_resource_rows_probed_total"
    ~help:"Rows probed, by resource" (fun (_, probed, _) ->
      float_of_int probed);
  per_resource "roll_resource_wall_seconds_total"
    ~help:"Wall-clock seconds, by resource" (fun (_, _, wall) -> wall);
  let per_sched ?help name read =
    M.register_collector registry ?help ~kind:M.Counter name (fun () ->
        sched_kinds t
        |> List.map (fun (kind, c) -> (("kind", kind) :: labels, read c)))
  in
  per_sched "roll_sched_scheduled_total"
    ~help:"Work items offered to the maintenance queue, by kind" (fun c ->
      float_of_int c.scheduled);
  per_sched "roll_sched_ran_total" ~help:"Work items executed, by kind"
    (fun c -> float_of_int c.ran);
  per_sched "roll_sched_deferred_total"
    ~help:"Propagate items pushed behind capture, by kind" (fun c ->
      float_of_int c.deferred);
  per_sched "roll_sched_backpressured_total"
    ~help:"Capture items boosted by a deferred propagate step, by kind"
    (fun c -> float_of_int c.backpressured);
  per_sched "roll_sched_batched_total"
    ~help:"Propagate items executed as batch followers, by kind" (fun c ->
      float_of_int c.batched);
  per_sched "roll_sched_wall_seconds_total"
    ~help:"Wall-clock seconds executing work items, by kind" (fun c -> c.wall)

let pp ppf t =
  Format.fprintf ppf
    "queries=%d rows_read=%d (scanned=%d probed=%d) rows_emitted=%d \
     hash_builds=%d compute_delta=%d"
    t.queries t.rows_read t.rows_scanned t.rows_probed t.rows_emitted
    t.hash_builds t.compute_delta_calls;
  if t.retries > 0 || t.aborts > 0 || t.recoveries > 0 then
    Format.fprintf ppf " retries=%d aborts=%d recoveries=%d" t.retries
      t.aborts t.recoveries;
  if t.memo_hits > 0 || t.memo_misses > 0 || t.shared_builds > 0 then
    Format.fprintf ppf " memo=%d/%d shared_builds=%d" t.memo_hits
      (t.memo_hits + t.memo_misses) t.shared_builds
