(** Cost-based planning of propagation queries.

    Given the view predicate and a description of each input (estimated
    cardinality, whether it is a delta window, which secondary indexes
    exist), the planner picks a join order and an access path per step,
    greedily minimizing the estimated intermediate cardinality. Delta
    windows are usually the smallest input and therefore drive the join —
    the property that makes propagation queries cost O(delta × matching
    rows) instead of O(product of table sizes).

    Estimates use textbook (System R-flavoured) selectivities: an equi-join
    atom keeps 1 / max(cardinality of its endpoints), an equality filter
    1/10, an inequality 9/10, a range comparison 1/3. Each step records its
    estimated input and output cardinality so explain output can show
    estimated vs. actual side by side (see {!Exec} and
    [Executor.explain_analyze]). *)

open Roll_relation

type source_info = {
  name : string;  (** resource name; delta windows use the "ΔR" convention *)
  card : int;  (** estimated cardinality (distinct rows / window length) *)
  is_delta : bool;
  indexed : int list list;  (** column sets with a secondary index *)
}

type access =
  | Scan  (** first step: full scan of the driving input *)
  | Hash_join of (Predicate.col * int) list
      (** build a hash index over this input keyed on the given
          (bound-side column, this-side column) pairs, probe with each
          partial *)
  | Index_probe of (Predicate.col * int) list * int list
      (** probe an existing secondary index on the given columns — no
          per-query build, no materialization *)
  | Nested_loop  (** no connecting equi-join atom: scan per partial *)

type step = {
  source : int;  (** input index this step binds *)
  access : access;
  atoms : Predicate.atom list;
      (** residual atoms evaluated at this step (the atoms whose last
          source this step binds, minus any used as equi-join keys) *)
  est_in : float;  (** estimated rows fetched from this input *)
  est_out : float;  (** estimated partial rows after this step *)
}

type t = { steps : step list }

val plan : Predicate.t -> source_info array -> t
(** Join order and access paths. The step list binds every input exactly
    once; the first step is always a [Scan].
    @raise Invalid_argument on an empty source array. *)

val access_name : access -> string
(** ["scan"], ["hash-join"], ["index-probe"] or ["nested-loop"]. *)

val describe : source_info array -> t -> string
(** One line per step, e.g.
    ["  hash-join R2 (1000 rows) on columns [0] (est 5)"]. *)
