(** The streaming execution engine: cursor-based join operators.

    [run] turns a {!Planner.t} into a pull-based operator tree — scan,
    index-probe, hash-join and nested-loop steps composed as cursor
    combinators — and drains it. Inputs are {!source}s: anything that can
    open a {!Roll_relation.Cursor.t} (base tables, delta-log windows, plain
    relations), so the propagation executor, the oracle and the baselines
    all execute through this one pipeline instead of private join loops.

    Nothing is materialized on the forward-query path: the driving input
    streams through the operator chain row by row, hash indexes are built
    directly from a scan cursor (no intermediate row array), and secondary
    index probes fetch only matching copies. The only remaining buffering is
    the nested-loop fallback, which pins its inner input once.

    Every step is instrumented: rows fetched from its input, partial rows
    emitted, hash builds, and wall time exclusive of child steps — the
    numbers [Executor.explain_analyze] reports against the planner's
    estimates. *)

open Roll_relation

type source = {
  info : Planner.source_info;
  scan : unit -> Cursor.t;  (** open a fresh full-scan cursor *)
  probe : (columns:int list -> Tuple.t -> Cursor.t) option;
      (** open an index-probe cursor, when a secondary index exists *)
  cache_key : string option;
      (** content-addressed identity for the per-drain build cache: a base
          table at a content version, or a delta window with fixed bounds.
          [None] (plain relations) opts the source out of sharing. *)
}

val source_of_table : Roll_storage.Table.t -> source
(** Lazy scan/probe over a base table's current committed state. *)

val source_of_aux : name:string -> Roll_storage.Table.t -> source
(** Like {!source_of_table} over an auxiliary mirror, displayed as [name]
    (conventionally "α" + the substituted base table) so plans and explain
    output show the substitution; the cache key stays the mirror's own
    table name, keeping cached builds distinct from the base relation's. *)

val source_of_union : name:string -> Roll_storage.Table.t list -> source
(** The union of a heavy-light partition's part mirrors, displayed as
    [name] (conventionally "η" + the substituted base table). Scans and
    index probes merge the per-part cursors (the parts are disjoint by
    construction), cardinality is the sum of the parts', and only columns
    indexed in every part are advertised for probing. The cache key
    concatenates the parts' content-versioned keys.
    @raise Invalid_argument on an empty part list. *)

val source_of_relation : name:string -> Relation.t -> source
(** Scan over an in-memory relation (the oracle's historical states). *)

val source_of_delta_window :
  name:string ->
  Roll_delta.Delta.t ->
  lo:Roll_delta.Time.t ->
  hi:Roll_delta.Time.t ->
  source
(** Scan over σ_{lo,hi} of a delta log, in timestamp order. *)

(** {1 Instrumentation} *)

type step_stat = {
  source : int;  (** input index (parallel to the plan's step) *)
  resource : string;
  access : Planner.access;
  est_rows : float;  (** planner's estimated rows out of this step *)
  mutable actual_rows : int;  (** partial rows this step emitted *)
  mutable rows_in : int;  (** rows fetched from this step's input *)
  mutable hash_builds : int;
  mutable wall : float;  (** seconds spent in this step, excluding children *)
}

type report = {
  steps : step_stat array;  (** in plan order *)
  mutable emitted : int;  (** rows out of the final step *)
  mutable total_wall : float;  (** seconds for the whole drain *)
}

type totals = {
  scanned : int;  (** rows fetched by scan, hash-build and nested-loop steps *)
  probed : int;  (** rows fetched through secondary-index probes *)
  emitted : int;
  hash_builds : int;
  wall : float;
}

val totals : report -> totals

(** {1 Build cache}

    A per-drain cache of shared physical work: hash indexes built over a
    source at a fixed content version and key-column list, and the
    materialized rows of a delta window. Entries are content-addressed
    through {!source.cache_key} and thus never stale; clearing per drain
    only bounds memory. A cache hit skips the build entirely — the input
    rows are not re-read and no hash build is counted, which is the
    executor-rows saving [bench share] measures. *)

type cache

val cache_create : unit -> cache

val cache_clear : cache -> unit

val cache_build_hits : cache -> int
(** Cumulative hash-index builds skipped (not reset by {!cache_clear}). *)

val cache_window_hits : cache -> int
(** Cumulative delta-window materializations replayed from the cache. *)

val cache_hits : cache -> int
(** [cache_build_hits + cache_window_hits]. *)

(** {1 Running} *)

val run :
  ?cache:cache ->
  ?now:(unit -> float) ->
  rule:[ `Min | `Max ] ->
  sources:source array ->
  plan:Planner.t ->
  emit:(Tuple.t array -> int -> Cursor.ts -> unit) ->
  unit ->
  report
(** Build the operator tree for [plan] and drain it, calling [emit] with
    one binding vector per result row: count = product of input counts,
    timestamp combined under [rule] ({!Roll_relation.Cursor.no_ts} marks
    base rows and is neutral; callers must map a surviving [no_ts] to the
    origin time before the row escapes into a view delta).

    [now] (default [Unix.gettimeofday]) is the clock the per-step and
    whole-drain wall timings read — the executor passes the context's
    Rollscope clock so traces and reports are deterministic under a manual
    clock. *)
