(** The [Propagate] process (Figure 5).

    A continuous, asynchronous propagation loop: each step chooses a
    propagation interval δ and runs [ComputeDelta] for the view over
    (t_cur, t_cur + δ], after which the view-delta high-water mark advances
    to t_cur + δ (Theorem 4.2). The interval is the process's single tuning
    knob: small δ means many small transactions, large δ fewer, larger
    ones. *)

type t

val create : Ctx.t -> t_initial:Roll_delta.Time.t -> t

val align : t -> bool

val set_align : t -> bool -> unit
(** Snap step targets to the interval grid (see {!Rolling.set_align});
    default off, in which case targets are exactly the legacy
    [min (t_cur + interval) now]. *)

val hwm : t -> Roll_delta.Time.t
(** The view-delta high-water mark: the delta is complete from [t_initial]
    through this time. *)

val step : t -> interval:int -> [ `Advanced of Roll_delta.Time.t | `Idle ]
(** Propagate the next interval of up to [interval] time units, clamped to
    the database's current time. [`Idle] when already caught up. *)

val run_until : t -> target:Roll_delta.Time.t -> interval:int -> unit
(** Step repeatedly until [hwm >= target].
    @raise Invalid_argument if [target] is in the future. *)
