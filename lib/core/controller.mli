(** The maintenance controller: the prototype architecture of Figure 11.

    Ties together the database engine, the capture process, the propagate
    driver (either the uniform-interval [Propagate] process or
    [RollingPropagate]) and the apply driver, and keeps the control-table
    state: the view's materialization time and the view-delta high-water
    mark. Provides the user-facing refresh operations, including
    point-in-time refresh by logical time or by wall-clock time.

    {2 Durability and recovery}

    A {e durable} controller persists its control-table state — the
    per-relation frontier vectors, the high-water mark and the apply
    position — as {!Frontier} marker commits in the WAL after every
    advancing propagation step. Because the view delta itself is
    process-local (only base tables and the WAL survive a crash),
    recovery ({!recover}) restores the {e coverage} rather than the rows:
    it replays the recorded frontier trajectory through fresh rolling
    steps. The brick laid by each step is determined entirely by the
    frontier vectors around it — never by the wall-clock moment the query
    runs — so the replay regenerates a delta with exactly the net effect
    of the lost one (the tiling argument of Theorem 4.3). A {!checkpoint}
    snapshot short-circuits the replay prefix. *)

type algorithm =
  | Uniform of int  (** [Propagate] with this interval *)
  | Rolling of Rolling.policy
      (** [RollingPropagate] with per-relation intervals *)
  | Deferred of Rolling_deferred.policy
      (** the literal Figure 10 deferred-compensation process (two-way
          views only) *)
  | Adaptive of int
      (** rolling propagation with {!Autotune}-chosen per-relation
          intervals targeting this many delta rows per forward query *)

type t

val create :
  ?geometry:bool ->
  ?auto_index:bool ->
  ?durable:bool ->
  ?obs:Roll_obs.Obs.t ->
  Roll_storage.Database.t ->
  Roll_capture.Capture.t ->
  View.t ->
  algorithm:algorithm ->
  t
(** Materializes the view from current state and starts maintenance at that
    time. The capture process must have all source tables attached. With
    [auto_index] (default false), a single-column secondary index is created
    on every base-table column the view equi-joins on, so propagation
    queries probe instead of scanning
    (see {!Roll_storage.Table.create_index}). With [durable] (default
    false), the controller records its initial frontier and every advancing
    step's frontier as WAL markers, making the maintenance state
    recoverable with {!recover}. With [obs], the Rollscope handle is
    installed on the context, the database and the capture process, so the
    whole maintenance path traces and meters into it. *)

val recover :
  ?geometry:bool ->
  ?auto_index:bool ->
  ?checkpoint:string ->
  ?obs:Roll_obs.Obs.t ->
  Roll_storage.Database.t ->
  Roll_capture.Capture.t ->
  View.t ->
  algorithm:algorithm ->
  t
(** Restart maintenance of a view from durable state after a crash. The
    database must have been {!Roll_storage.Database.restore}d from its WAL
    and the capture process freshly attached (at cursor zero).

    With [checkpoint], the snapshot's delta rows and stored contents are
    resumed and only the trajectory recorded {e after} the snapshot is
    replayed; a torn or unreadable checkpoint file logs a warning and
    falls back to WAL-only recovery. Without a usable checkpoint, the
    stored view is recomputed at the first recorded frontier time t₀ and
    the full trajectory is replayed from there.

    Under [Rolling]/[Adaptive] the replay lands every per-relation
    frontier exactly where the last marker recorded it; under
    [Uniform]/[Deferred] the process restarts at the recorded high-water
    mark (their coverage below the frontier is uniform by construction).
    The recovered controller is durable, has rolled the stored view
    forward to the recorded apply position, counts one recovery in
    {!stats}, and has recorded a fresh frontier marker.

    With [obs], the whole recovery (resume, replay, roll-forward) is
    recorded as one ["recovery"] span and the handle is installed as in
    {!create}.

    @raise Invalid_argument when there is no durable state at all (no
    usable checkpoint and no frontier markers for the view). *)

val ctx : t -> Ctx.t

val view : t -> View.t

val contents : t -> Roll_relation.Relation.t
(** Current materialized contents. *)

val as_of : t -> Roll_delta.Time.t
(** Materialization time of the stored view. *)

val hwm : t -> Roll_delta.Time.t
(** View-delta high-water mark: latest time the view can be rolled to right
    now. *)

val frontier : t -> Frontier.t
(** The current control-table state as one frontier record (what a durable
    controller persists). *)

val durable : t -> bool

val set_durable : t -> bool -> unit
(** Switching durability on records the current frontier immediately. *)

val record_frontier : t -> unit
(** Commit the current frontier as a WAL marker now (done automatically
    after advancing steps when durable). *)

val checkpoint : t -> string -> unit
(** Snapshot the applied delta prefix and stored contents to a file (see
    {!Checkpoint.save}); [recover ~checkpoint] resumes from it instead of
    replaying the full trajectory. *)

val propagate_step : t -> bool
(** One propagation transaction (plus its compensations). [false] when the
    propagation process is fully caught up. When durable, an advancing
    step that committed work also records its frontier. *)

val propagate_step_reliable :
  t ->
  retry:Roll_util.Retry.policy ->
  sleep:(float -> unit) ->
  (bool, Roll_util.Retry.failure) result
(** {!propagate_step} under a retry policy: a step failing with
    {!Roll_util.Fault.Transient} has its partial emissions rolled back
    (the aborted transaction's writes) and is re-run after backoff,
    counting a retry in {!stats}; eventual success after retries counts a
    recovery. Exhausting the budget rolls back, counts an abort and
    returns the typed failure. Other exceptions (including
    {!Roll_util.Fault.Crash}) propagate. *)

(** {2 Window stepping (parallel waves)}

    A wave runs several propagation steps concurrently, one per worker
    domain, each with an {e explicit} window chosen on the drain domain so
    that the wave's windows are pairwise disjoint. The steps execute in
    frozen-clock mode ({!Ctx.frozen_exec}): no capture advance, no marker
    commits — every database write a step performs goes to its own view
    delta, so concurrent steps never touch shared mutable state except the
    (domain-safe) memo, stats and metrics. Durability bookkeeping happens
    afterwards on the drain domain, in wave order
    ({!note_step_durable}). *)

val supports_window_step : t -> bool
(** Whether this controller's process decomposes into explicit-window
    steps — true exactly for the rolling family ([Rolling]/[Adaptive]);
    [Uniform] and [Deferred] keep their own pacing and stay serial. *)

val step_window :
  t ->
  relation:int ->
  hi:Roll_delta.Time.t ->
  frozen:Roll_delta.Time.t ->
  bool * bool
(** Run one explicit-window step [(tfwd relation, hi]] in frozen-clock
    mode with virtual execution time [frozen] (the capture high-water mark
    at wave start). Returns [(advanced, executed)]: [advanced] is false on
    an idle step, [executed] whether a physical query ran (false for a
    quiet-window advance or a full memo replay). Does {e not} record
    frontier markers — the drain domain calls {!note_step_durable}.
    @raise Invalid_argument unless {!supports_window_step}. *)

val step_window_reliable :
  t ->
  relation:int ->
  hi:Roll_delta.Time.t ->
  frozen:Roll_delta.Time.t ->
  retry:Roll_util.Retry.policy ->
  sleep:(float -> unit) ->
  (bool * bool, Roll_util.Retry.failure) result
(** {!step_window} under a retry policy, the wave analogue of
    {!propagate_step_reliable}. Rollbacks are owner-scoped: only memo
    entries inserted by this context's {!Ctx.memo_owner} slot are evicted,
    so concurrent sibling fills survive. [sleep] runs on the worker — it
    must only accumulate (never touch the database clock); the drain
    domain applies accumulated backoff deterministically after the wave
    joins. *)

val note_step_durable : t -> advanced:bool -> executed:bool -> unit
(** Post-join durability bookkeeping for one successful wave item, called
    on the drain domain in wave order: records a frontier marker iff the
    step advanced, the controller is durable, and a physical query ran
    (quiet advances replay deterministically on recovery — same rule as
    the serial path's "clock moved" test). *)

val undo_window :
  t ->
  relation:int ->
  lo:Roll_delta.Time.t ->
  out_mark:int ->
  memo_mark:int ->
  owner:int ->
  unit
(** Undo a wave item that completed but is ordered {e after} a failed item
    of the same wave: truncate its emitted view-delta rows back to
    [out_mark], evict its owner's memo fills past [memo_mark], and restore
    [tfwd relation] to [lo]. Wave failure semantics match the serial
    drain: the earliest failure wins and nothing after it happened. *)

val propagate_until : t -> Roll_delta.Time.t -> unit
(** Run propagation steps until [hwm] reaches the target (which must have
    elapsed). *)

val refresh_to : t -> Roll_delta.Time.t -> unit
(** Point-in-time refresh: ensure the delta covers the target (propagating
    if needed), then roll the materialized view to exactly that time. *)

val refresh_to_wall : t -> float -> Roll_delta.Time.t
(** Point-in-time refresh to a wall-clock instant: resolves the last
    relevant commit at or before that wall time through the unit-of-work
    table and refreshes to it. Returns the resolved logical time. *)

val refresh_latest : t -> Roll_delta.Time.t
(** Refresh to the database's current time. *)

val gc : t -> int
(** Prune applied view-delta rows; returns rows removed. When rows were
    reclaimed, the {!horizon} advances to the current {!as_of}: times
    below it are no longer reconstructible. *)

val horizon : t -> Roll_delta.Time.t
(** Earliest time {!view_at} can still reconstruct: the materialization
    time as of the last reclaiming {!gc} (the pruned delta prefix is
    gone), or the initial materialization time if gc never reclaimed. *)

val view_at : t -> Roll_delta.Time.t -> Roll_relation.Relation.t
(** Point-in-time snapshot: the view's contents as of exactly [time],
    computed from the stored contents and the view delta without moving
    the controller ([as_of]/[hwm] are unchanged — unlike {!refresh_to}).
    Requires [horizon t <= time <= hwm t].
    @raise Invalid_argument when [time] is below {!horizon} (the server
    maps this to a typed [`Gc_horizon] rejection). *)

val stats : t -> Stats.t

val window_alignment : t -> bool
(** Whether propagation step targets snap to the interval grid (see
    {!set_window_alignment}); always [false] for [Deferred]. *)

val set_window_alignment : t -> bool -> unit
(** With alignment on, step targets snap to multiples of the propagation
    interval (see {!Rolling.window_hi}), so sibling views maintained with
    the same intervals converge on identical delta windows — the
    precondition for the {!Service} sharing memo to hit across views.
    Default off: targets are exactly the legacy [min (start + interval)
    now]. No-op for [Deferred] processes. *)

(** {2 Scheduler interface}

    The maintenance scheduler plans work items from candidate descriptions
    rather than reaching into the propagation processes' frontier state. *)

type candidate = {
  relation : int;  (** source index whose delta window drives the step *)
  lo : Roll_delta.Time.t;
  hi : Roll_delta.Time.t;  (** the window (lo, hi] the step would propagate *)
  est_rows : int;  (** captured delta rows currently inside the window *)
  est_cost : float;
      (** planner-estimated rows the forward query would touch (0 for a
          quiet advance) *)
}

val step_candidates : t -> candidate list
(** The forward steps the propagation process could take next, the
    process's actual next choice first; empty when fully caught up (exactly
    when {!propagate_step} would return [false]). Rolling-family processes
    report one candidate per relation still behind the current time;
    [Uniform] folds its all-relations step into a single candidate driven
    by the busiest relation. The candidate window is computed against the
    current database time, so it may extend past the capture high-water
    mark — schedulers compare [hi] against [Roll_capture.Capture.hwm] to
    detect capture backpressure before running the step. *)

val estimate_step_cost :
  t -> relation:int -> lo:Roll_delta.Time.t -> hi:Roll_delta.Time.t -> float
(** Cost-model estimate (rows touched) of the forward query windowing
    [relation] over (lo, hi], from catalog statistics and the captured
    window row count; never touches capture cursors, so estimating an
    uncaptured window is safe. *)
