module Time = Roll_delta.Time
module Database = Roll_storage.Database

type t = { ctx : Ctx.t; mutable t_cur : Time.t; mutable align : bool }

let create ctx ~t_initial = { ctx; t_cur = t_initial; align = false }

let hwm t = t.t_cur

let align t = t.align

let set_align t b = t.align <- b

let step t ~interval =
  if interval <= 0 then invalid_arg "Propagate.step: interval must be positive";
  let now = Database.now t.ctx.Ctx.db in
  if t.t_cur >= now then `Idle
  else begin
    let target = Rolling.window_hi ~align:t.align ~start:t.t_cur ~interval ~now in
    Compute_delta.view_delta t.ctx ~lo:t.t_cur ~hi:target;
    t.t_cur <- target;
    `Advanced target
  end

let run_until t ~target ~interval =
  if target > Database.now t.ctx.Ctx.db then
    invalid_arg "Propagate.run_until: target in the future";
  while t.t_cur < target do
    match step t ~interval with
    | `Advanced _ -> ()
    | `Idle -> invalid_arg "Propagate.run_until: unreachable target"
  done
