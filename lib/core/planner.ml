open Roll_relation

type source_info = {
  name : string;
  card : int;
  is_delta : bool;
  indexed : int list list;
}

type access =
  | Scan
  | Hash_join of (Predicate.col * int) list
  | Index_probe of (Predicate.col * int) list * int list
  | Nested_loop

type step = {
  source : int;
  access : access;
  atoms : Predicate.atom list;
  est_in : float;
  est_out : float;
}

type t = { steps : step list }

(* Atoms are applied at the step that binds their last source. Atoms that
   reference no source at all (constant comparisons) are never applied —
   view validation rejects them, so none reach the planner. *)
let atoms_for pred ~bound_after ~just_bound =
  List.filter
    (fun atom ->
      let sources = Predicate.sources_of_atom atom in
      List.mem just_bound sources
      && List.for_all (fun s -> bound_after.(s)) sources)
    pred

(* Equi-join atoms usable as hash/index keys for the step binding [s]: one
   side on [s], other side already bound. Sorted by the [s]-side column so
   the key layout matches the canonical index column order. *)
let equi_pairs pred ~bound ~s =
  List.filter_map
    (fun atom ->
      match atom with
      | Predicate.Join (a, b) when a.source = s && b.source <> s && bound.(b.source)
        -> Some (b, a.column)
      | Predicate.Join (a, b) when b.source = s && a.source <> s && bound.(a.source)
        -> Some (a, b.column)
      | _ -> None)
    pred
  |> List.sort (fun (_, c1) (_, c2) -> Int.compare c1 c2)

(* Atoms already used as key pairs must not be re-checked; the remainder
   are within-source filters and theta atoms. *)
let residual_atoms atoms pairs ~s =
  List.filter
    (fun atom ->
      not
        (List.exists
           (fun (bcol, scol) ->
             match atom with
             | Predicate.Join (a, b) ->
                 (a = bcol && b = Predicate.col s scol)
                 || (b = bcol && a = Predicate.col s scol)
             | Predicate.Cmp _ -> false)
           pairs))
    atoms

(* An index is usable when it covers exactly the probed columns and those
   are distinct (duplicated probe columns fall back to hashing). *)
let usable_index info pairs =
  let columns = List.map snd pairs in
  let rec distinct = function
    | [] | [ _ ] -> true
    | a :: (b :: _ as rest) -> a <> b && distinct rest
  in
  if pairs <> [] && distinct columns && List.mem columns info.indexed then
    Some columns
  else None

let cmp_selectivity = function
  | Predicate.Eq -> 0.1
  | Predicate.Ne -> 0.9
  | Predicate.Lt | Predicate.Le | Predicate.Gt | Predicate.Ge -> 1. /. 3.

let atom_selectivity (infos : source_info array) = function
  | Predicate.Join (a, b) ->
      1.
      /. float_of_int
           (max 1 (max infos.(a.source).card infos.(b.source).card))
  | Predicate.Cmp (op, _, _) -> cmp_selectivity op

let selectivity infos atoms =
  List.fold_left (fun acc atom -> acc *. atom_selectivity infos atom) 1.0 atoms

let pair_selectivity (infos : source_info array) ~s pairs =
  List.fold_left
    (fun acc ((bcol : Predicate.col), _) ->
      acc
      /. float_of_int (max 1 (max infos.(bcol.source).card infos.(s).card)))
    1.0 pairs

let plan pred (infos : source_info array) =
  let n = Array.length infos in
  if n = 0 then invalid_arg "Planner.plan: no sources";
  let bound = Array.make n false in
  let remaining = ref (List.init n Fun.id) in
  (* Candidate step for binding [s] given the current bound set and the
     estimated cardinality [est] of the partial stream so far. *)
  let candidate ~first est s =
    let card = float_of_int infos.(s).card in
    bound.(s) <- true;
    let all_atoms = atoms_for pred ~bound_after:bound ~just_bound:s in
    bound.(s) <- false;
    if first then
      { source = s; access = Scan; atoms = all_atoms; est_in = card;
        est_out = card *. selectivity infos all_atoms }
    else
      let pairs = equi_pairs pred ~bound ~s in
      if pairs = [] then
        { source = s; access = Nested_loop; atoms = all_atoms; est_in = card;
          est_out = est *. card *. selectivity infos all_atoms }
      else begin
        let atoms = residual_atoms all_atoms pairs ~s in
        let matched = est *. card *. pair_selectivity infos ~s pairs in
        let est_out = matched *. selectivity infos atoms in
        match usable_index infos.(s) pairs with
        | Some columns ->
            { source = s; access = Index_probe (pairs, columns); atoms;
              est_in = matched; est_out }
        | None ->
            { source = s; access = Hash_join pairs; atoms; est_in = card;
              est_out }
      end
  in
  (* Greedy: the step with the smallest estimated output wins; ties prefer
     connected (keyed) steps, then delta inputs, then smaller inputs, then
     the lower index — the same order the size-greedy planner used, so
     plans are deterministic. *)
  let better (a : step) (b : step) =
    let keyed = function
      | Hash_join _ | Index_probe _ -> 1
      | Scan | Nested_loop -> 0
    in
    if a.est_out <> b.est_out then a.est_out < b.est_out
    else if keyed a.access <> keyed b.access then keyed a.access > keyed b.access
    else if infos.(a.source).is_delta <> infos.(b.source).is_delta then
      infos.(a.source).is_delta
    else if infos.(a.source).card <> infos.(b.source).card then
      infos.(a.source).card < infos.(b.source).card
    else a.source < b.source
  in
  let steps = ref [] in
  let est = ref 1.0 in
  for k = 0 to n - 1 do
    let choice =
      List.fold_left
        (fun best s ->
          let c = candidate ~first:(k = 0) !est s in
          match best with
          | None -> Some c
          | Some b -> if better c b then Some c else best)
        None !remaining
    in
    match choice with
    | Some c ->
        bound.(c.source) <- true;
        remaining := List.filter (fun j -> j <> c.source) !remaining;
        est := c.est_out;
        steps := c :: !steps
    | None -> assert false
  done;
  { steps = List.rev !steps }

let access_name = function
  | Scan -> "scan"
  | Hash_join _ -> "hash-join"
  | Index_probe _ -> "index-probe"
  | Nested_loop -> "nested-loop"

let describe infos t =
  let buf = Buffer.create 128 in
  List.iter
    (fun st ->
      let info = infos.(st.source) in
      let cols columns = String.concat "," (List.map string_of_int columns) in
      let line =
        match st.access with
        | Scan ->
            Printf.sprintf "  scan %s (%d rows, est %.0f)" info.name info.card
              st.est_out
        | Nested_loop ->
            Printf.sprintf "  nested-loop %s (%d rows, est %.0f)" info.name
              info.card st.est_out
        | Hash_join pairs ->
            Printf.sprintf "  hash-join %s (%d rows) on columns [%s] (est %.0f)"
              info.name info.card
              (cols (List.map snd pairs))
              st.est_out
        | Index_probe (_, columns) ->
            Printf.sprintf "  index-probe %s on columns [%s] (est %.0f)"
              info.name (cols columns) st.est_out
      in
      Buffer.add_string buf line;
      Buffer.add_char buf '\n')
    t.steps;
  Buffer.contents buf
