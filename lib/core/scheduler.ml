module Time = Roll_delta.Time
module Delta = Roll_delta.Delta
module Database = Roll_storage.Database
module Capture = Roll_capture.Capture
module Heap = Roll_util.Heap

let log_src = Logs.Src.create "roll.scheduler" ~doc:"maintenance-task scheduler"

module Log = (val Logs.src_log log_src)

type policy = Slack | Round_robin

type item =
  | Capture_advance
  | Propagate_step of { view : string; relation : int }
  | Apply_refresh of string
  | Checkpoint of string
  | Gc of string

type scored = {
  item : item;
  score : float;
  staleness : int;
  slack : int;
  est_rows : int;
  est_cost : float;
  deferred : bool;
  window : (string * Time.t * Time.t) option;
  readers : int;  (** clients waiting on this view's hwm when planned *)
  aux : bool;  (** the item maintains an auxiliary view *)
  hot : bool;  (** the item maintains a heavy-key partial *)
}

type source = {
  name : string;
  controller : Controller.t;
  paused : bool;
  sla : int;
  apply_due : bool;
  checkpoint_due : bool;
  gc_due : bool;
  aux : bool;
  hot : bool;
}

type t = {
  db : Database.t;
  capture : Capture.t;
  mutable policy : policy;
  cost_weight : float;
  capture_batch : int option;
  stats : Stats.t;
  (* Per-drain round-robin state: how many propagate turns each view has
     taken since [begin_drain]. *)
  rounds : (string, int) Hashtbl.t;
  mutable obs : Roll_obs.Obs.t;
  (* Queue-wait bookkeeping: clock reading when each pending item was first
     offered by [plan], keyed by rendered item. Entries die when the item
     runs, so a later re-offering starts a fresh wait. *)
  first_seen : (string, float) Hashtbl.t;
  (* Which domain slot executed how many items of each kind — the
     provenance [rollctl status] reports under parallel drains. Slot 0 is
     the drain domain itself. *)
  by_domain : (string * int, int) Hashtbl.t;
  (* Read demand: how many admitted readers are waiting for this view's
     hwm to reach their target time. Installed by the serving layer
     (Roll_serve.Engine); the default reports no demand anywhere. *)
  mutable read_demand : string -> int;
}

(* Score bands: every runnable item's score stays far below [deferred_band],
   so a deferred propagate step can never outrank runnable work. *)
let background_band = 1.0e6
let gc_band = 1.0e9
let rr_sweep_band = 1.0e4
let deferred_band = 1.0e15

(* Reader boost: a runnable propagate step with waiting readers drops by a
   whole band, outranking any slack score — readers are latency the view is
   accumulating right now, slack is latency it may accumulate later. The
   band sits far above the backpressure boost (-deferred_band), so capture
   still wins when the boosted window is under-captured, and a deferred
   boosted step stays deferred. Starvation-free for the same reason the
   base policy is: every boosted step strictly advances its view's
   frontier toward the readers' target, after which the demand (and the
   boost) disappears and the queue reverts to slack order. *)
let reader_band = 1.0e5

(* Auxiliary band: a runnable propagate step of an auxiliary view normally
   drops below every user-view slack score, so auxiliaries freshen first
   within a drain and the substitution probes they feed actually hit. The
   boost flips sign the moment any unpaused user view is in SLA breach
   (slack < 0): auxiliaries are an optimization, and they must never hold a
   late user view's budget hostage — scored below user-view SLAs, exactly.
   The band sits below the reader boost: a view with blocked readers is
   accumulating latency right now and still outranks aux freshening. *)
let aux_band = 1.0e4

(* Heavy-partial band: a heavy key's per-key partial is scheduled exactly
   like an auxiliary view — freshen before in-SLA user work so the η-union
   substitution actually hits, but never ahead of a user view already in
   breach. Kept as its own constant (same magnitude) so the two knobs can
   diverge without touching call sites. *)
let hot_band = 1.0e4

let create ?(policy = Slack) ?(cost_weight = 0.01) ?capture_batch db capture =
  (match capture_batch with
  | Some n when n <= 0 ->
      invalid_arg "Scheduler.create: capture_batch must be positive"
  | _ -> ());
  {
    db;
    capture;
    policy;
    cost_weight;
    capture_batch;
    stats = Stats.create ();
    rounds = Hashtbl.create 8;
    obs = Roll_obs.Obs.disabled ();
    first_seen = Hashtbl.create 16;
    by_domain = Hashtbl.create 8;
    read_demand = (fun _ -> 0);
  }

let set_read_demand t f = t.read_demand <- f

let set_obs t obs =
  t.obs <- obs;
  Hashtbl.reset t.first_seen

let policy t = t.policy

let set_policy t policy = t.policy <- policy

let stats t = t.stats

let capture_batch t = t.capture_batch

let kind_name = function
  | Capture_advance -> "capture"
  | Propagate_step _ -> "propagate"
  | Apply_refresh _ -> "apply"
  | Checkpoint _ -> "checkpoint"
  | Gc _ -> "gc"

let pp_item ppf = function
  | Capture_advance -> Format.pp_print_string ppf "capture-advance"
  | Propagate_step { view; relation } ->
      Format.fprintf ppf "propagate %s/R%d" view relation
  | Apply_refresh view -> Format.fprintf ppf "apply %s" view
  | Checkpoint view -> Format.fprintf ppf "checkpoint %s" view
  | Gc view -> Format.fprintf ppf "gc %s" view

let item_key item = Format.asprintf "%a" pp_item item

let begin_drain t =
  Hashtbl.reset t.rounds;
  Hashtbl.reset t.first_seen

let queue_wait t item =
  match Hashtbl.find_opt t.first_seen (item_key item) with
  | None -> None
  | Some since -> Some (Float.max 0. (Roll_obs.Obs.now t.obs -. since))

let rounds_of t name =
  match Hashtbl.find_opt t.rounds name with Some n -> n | None -> 0

let note_ran ?(domain = 0) t item ~wall =
  let c = Stats.sched_kind t.stats (kind_name item) in
  c.Stats.ran <- c.Stats.ran + 1;
  c.Stats.wall <- c.Stats.wall +. wall;
  let dk = (kind_name item, domain) in
  Hashtbl.replace t.by_domain dk
    (1 + Option.value ~default:0 (Hashtbl.find_opt t.by_domain dk));
  Hashtbl.remove t.first_seen (item_key item);
  match item with
  | Propagate_step { view; _ } ->
      Hashtbl.replace t.rounds view (rounds_of t view + 1)
  | Capture_advance | Apply_refresh _ | Checkpoint _ | Gc _ -> ()

let ran_by_domain t =
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) t.by_domain []
  |> List.sort (fun ((ka, da), _) ((kb, db), _) ->
         match String.compare ka kb with 0 -> Int.compare da db | c -> c)

(* ------------------------------------------------------------------ *)
(* Planning                                                            *)

(* One propagate item per steppable non-paused view. A step whose window
   reaches past the capture high-water mark is marked deferred: running it
   would make the executor read an under-captured window. *)
let propagate_items t ~now ~capture_hwm sources =
  (* Any user view already past its SLA flips the auxiliary boost: late
     user work runs before aux freshening, fresh-enough user work after. *)
  let user_breach =
    List.exists
      (fun (src : source) ->
        (not src.paused) && (not src.aux) && (not src.hot)
        && now - Controller.hwm src.controller > src.sla)
      sources
  in
  List.concat
    (List.mapi
       (fun reg_index (src : source) ->
         if src.paused then []
         else
           match Controller.step_candidates src.controller with
           | [] -> []
           | c :: _ ->
               let hwm = Controller.hwm src.controller in
               let staleness = now - hwm in
               let slack = src.sla - staleness in
               let deferred = c.Controller.hi > capture_hwm in
               let readers = t.read_demand src.name in
               let score =
                 if deferred then deferred_band +. float_of_int reg_index
                 else
                   let base =
                     match t.policy with
                     | Slack ->
                         float_of_int slack
                         +. (t.cost_weight *. c.Controller.est_cost)
                     | Round_robin ->
                         (float_of_int (rounds_of t src.name) *. rr_sweep_band)
                         +. float_of_int reg_index
                   in
                   if src.aux then
                     if user_breach then base +. aux_band else base -. aux_band
                   else if src.hot then
                     if user_breach then base +. hot_band else base -. hot_band
                   else if readers > 0 then base -. reader_band
                   else base
               in
               let table =
                 View.source_table
                   (Controller.view src.controller)
                   c.Controller.relation
               in
               [
                 {
                   item =
                     Propagate_step
                       { view = src.name; relation = c.Controller.relation };
                   score;
                   staleness;
                   slack;
                   est_rows = c.Controller.est_rows;
                   est_cost = c.Controller.est_cost;
                   deferred;
                   window = Some (table, c.Controller.lo, c.Controller.hi);
                   readers;
                   aux = src.aux;
                   hot = src.hot;
                 };
               ])
       sources)

let capture_item t =
  let lag = Capture.lag t.capture in
  if lag = 0 then []
  else
    let score =
      match t.policy with
      | Slack -> -.float_of_int lag
      | Round_robin ->
          (* The legacy loop advanced capture inside each step; explicit
             capture work runs after the sweep unless backpressure boosts
             it. *)
          background_band
    in
    [
      {
        item = Capture_advance;
        score;
        staleness = lag;
        slack = -lag;
        est_rows = lag;
        est_cost = 0.;
        deferred = false;
        window = None;
        readers = 0;
        aux = false;
        hot = false;
      };
    ]

(* Apply, checkpoint and gc are background freshness work: apply rolls the
   stored view forward to coverage that already exists, the others are
   housekeeping. They are only offered to full drains. *)
let background_items t ~now sources =
  List.concat_map
    (fun (src : source) ->
      if src.paused then []
      else begin
        let ctl = src.controller in
        let hwm = Controller.hwm ctl in
        let as_of = Controller.as_of ctl in
        let apply =
          if (not src.apply_due) || hwm <= as_of then []
          else
            let staleness = now - as_of in
            let slack = src.sla - staleness in
            let rows =
              Delta.window_count (Controller.ctx ctl).Ctx.out ~lo:as_of ~hi:hwm
            in
            let score =
              match t.policy with
              | Slack -> float_of_int slack +. 0.5
              | Round_robin -> background_band +. 1.
            in
            [
              {
                item = Apply_refresh src.name;
                score;
                staleness;
                slack;
                est_rows = rows;
                est_cost = float_of_int rows;
                deferred = false;
                window = None;
                readers = 0;
                aux = src.aux;
                hot = src.hot;
              };
            ]
        in
        let fixed item band =
          {
            item;
            score = band;
            staleness = 0;
            slack = src.sla;
            est_rows = Delta.length (Controller.ctx ctl).Ctx.out;
            est_cost = 0.;
            deferred = false;
            window = None;
            readers = 0;
            aux = src.aux;
            hot = src.hot;
          }
        in
        let checkpoint =
          if src.checkpoint_due then [ fixed (Checkpoint src.name) (background_band +. 2.) ]
          else []
        in
        let gc = if src.gc_due then [ fixed (Gc src.name) gc_band ] else [] in
        apply @ checkpoint @ gc
      end)
    sources

let plan ?(full = false) t sources =
  let now = Database.now t.db in
  let capture_hwm = Capture.hwm t.capture in
  let items =
    propagate_items t ~now ~capture_hwm sources
    @ capture_item t
    @ (if full then background_items t ~now sources else [])
  in
  (* Heap order: lowest score first; insertion order breaks ties, keeping
     registration order deterministic. *)
  let heap = Heap.create () in
  List.iter (fun s -> Heap.add heap ~priority:s.score s) items;
  let rec drain acc =
    match Heap.pop heap with
    | Some (_, s) -> drain (s :: acc)
    | None -> List.rev acc
  in
  let planned = drain [] in
  if Roll_obs.Obs.enabled t.obs then begin
    let now = Roll_obs.Obs.now t.obs in
    List.iter
      (fun s ->
        let key = item_key s.item in
        if not (Hashtbl.mem t.first_seen key) then
          Hashtbl.add t.first_seen key now)
      planned
  end;
  planned

let select ?full t sources =
  let items = plan ?full t sources in
  List.iter
    (fun s ->
      let c = Stats.sched_kind t.stats (kind_name s.item) in
      c.Stats.scheduled <- c.Stats.scheduled + 1)
    items;
  let deferred, runnable = List.partition (fun s -> s.deferred) items in
  List.iter
    (fun s ->
      let c = Stats.sched_kind t.stats (kind_name s.item) in
      c.Stats.deferred <- c.Stats.deferred + 1)
    deferred;
  let head =
    if deferred <> [] && Capture.lag t.capture > 0 then begin
      (* Backpressure: some propagate step is waiting on capture. Boost
         capture to the front of the queue regardless of policy, so capture
         lag can never deadlock propagation — every boosted advance strictly
         reduces the lag until the deferred windows are fully captured. *)
      match List.find_opt (fun s -> s.item = Capture_advance) runnable with
      | Some capture ->
          let c = Stats.sched_kind t.stats "capture" in
          c.Stats.backpressured <- c.Stats.backpressured + 1;
          Log.debug (fun m ->
              m "backpressure: %d propagate step(s) deferred, boosting \
                 capture (lag=%d)"
                (List.length deferred)
                (Capture.lag t.capture));
          Some { capture with score = -.deferred_band }
      | None -> (match runnable with [] -> None | s :: _ -> Some s)
    end
    else match runnable with [] -> None | s :: _ -> Some s
  in
  (head, runnable)

let take ?full t sources = fst (select ?full t sources)

let take_batch ?full t sources =
  let head, runnable = select ?full t sources in
  match head with
  | None -> []
  | Some head -> (
      match (t.policy, head.item, head.window) with
      | Slack, Propagate_step _, Some w ->
          (* Batch every other runnable propagate step that reads the very
             same delta window behind the head: executed back to back they
             hit the drain-scoped delta memo and share hash builds. Windows
             only coincide under grid alignment, and Round_robin keeps the
             legacy one-item drains, so this is policy-visible but changes
             no default ordering. *)
          let followers =
            List.filter
              (fun s ->
                s.item <> head.item
                && (match s.item with
                   | Propagate_step _ -> true
                   | Capture_advance | Apply_refresh _ | Checkpoint _ | Gc _
                     -> false)
                && s.window = Some w)
              runnable
          in
          let c = Stats.sched_kind t.stats "propagate" in
          c.Stats.batched <- c.Stats.batched + List.length followers;
          head :: followers
      | _ -> [ head ])

(* Two windows conflict when they overlap on the same delta table; any
   other pair can run in the same wave. Identical windows (aligned sibling
   views) deliberately conflict: executed back to back on one domain they
   serve each other from the memo, which a concurrent run would forfeit. *)
let windows_disjoint (ta, loa, hia) (tb, lob, hib) =
  (not (String.equal ta tb)) || hia <= lob || hib <= loa

let supports_wave sources (s : scored) =
  match s.item with
  | Propagate_step { view; _ } -> (
      match List.find_opt (fun (src : source) -> src.name = view) sources with
      | Some src -> Controller.supports_window_step src.controller
      | None -> false)
  | Capture_advance | Apply_refresh _ | Checkpoint _ | Gc _ -> false

let take_wave ?full t sources ~max:limit =
  if limit <= 0 then invalid_arg "Scheduler.take_wave: max must be positive";
  let head, runnable = select ?full t sources in
  match head with
  | None -> []
  | Some head -> (
      match head.window with
      | Some w0 when limit > 1 && supports_wave sources head ->
          (* Greedy wave fill in score order: each candidate joins if its
             window is disjoint from every member's. [propagate_items]
             offers at most one item per view, so wave members are distinct
             views by construction — the other half of the no-conflict
             rule (a view's ctx/out/frontiers belong to one domain at a
             time). *)
          let wave = ref [ (head, w0) ] in
          List.iter
            (fun s ->
              if
                List.length !wave < limit
                && s.item <> head.item
                && supports_wave sources s
              then
                match s.window with
                | Some w
                  when List.for_all
                         (fun (_, w') -> windows_disjoint w w')
                         !wave ->
                    wave := !wave @ [ (s, w) ]
                | _ -> ())
            runnable;
          let members = List.map fst !wave in
          let c = Stats.sched_kind t.stats "propagate" in
          c.Stats.batched <- c.Stats.batched + List.length members - 1;
          members
      | _ -> [ head ])
