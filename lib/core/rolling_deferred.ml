module Time = Roll_delta.Time
module Database = Roll_storage.Database

(* An outstanding forward query for relation [i]: window (win_lo, win_hi] on
   axis [i], executed (serialized) at [exec]. Lists are kept in insertion
   order, which is simultaneously window order and execution order. *)
type fwd_query = { win_lo : Time.t; win_hi : Time.t; exec : Time.t }

type t = {
  ctx : Ctx.t;
  n : int;
  tfwd : Time.t array;
  tcomp : Time.t array;
  querylists : fwd_query list ref array;  (** oldest first *)
}

type policy = int -> int

let uniform interval _ = interval

let per_relation intervals i = intervals.(i)

let create ctx ~t_initial =
  let n = View.n_sources ctx.Ctx.view in
  if n > 2 then
    invalid_arg
      "Rolling_deferred.create: the deferred compensation rule of Figure 10 \
       is only exact for views over at most two relations; use Rolling";
  {
    ctx;
    n;
    tfwd = Array.make n t_initial;
    tcomp = Array.make n t_initial;
    querylists = Array.init n (fun _ -> ref []);
  }

let hwm t = Array.fold_left Time.min t.tcomp.(0) t.tcomp

let tfwd t i = t.tfwd.(i)

let tcomp t i = t.tcomp.(i)

let frontiers t = Array.copy t.tfwd

let comp_frontiers t = Array.copy t.tcomp

let outstanding t =
  Array.fold_left (fun acc ql -> acc + List.length !ql) 0 t.querylists

let refresh_tcomp t i =
  t.tcomp.(i) <-
    (match !(t.querylists.(i)) with
    | [] -> t.tfwd.(i)
    | oldest :: _ -> oldest.win_lo)

(* PruneQueryLists: queries whose execution time is at or below the minimum
   frontier no longer overlap any future forward query. *)
let prune_querylists t time =
  for i = 0 to t.n - 1 do
    t.querylists.(i) := List.filter (fun q -> q.exec > time) !(t.querylists.(i));
    refresh_tcomp t i
  done

(* ComInterval: how wide a compensation slab starting at [start] can be
   before the staircase steps — i.e. before the next execution time of any
   outstanding query of a lower-numbered relation. *)
let com_interval t ~i ~start =
  let best = ref max_int in
  for j = 0 to i - 1 do
    List.iter
      (fun q -> if q.exec > start && q.exec < !best then best := q.exec)
      !(t.querylists.(j))
  done;
  if !best = max_int then max_int else !best - start

(* CompTime: how far back along axis [j] a compensation slab starting at
   [start] must reach — to the window start of the oldest outstanding query
   of relation [j] still overlapping (execution time beyond [start]), or to
   relation [j]'s frontier when there is none (covering, eagerly, the
   region its future forward queries will double-count). *)
let comp_time t ~j ~start =
  let rec find = function
    | [] -> t.tfwd.(j)
    | q :: rest -> if q.exec > start then q.win_lo else find rest
  in
  find !(t.querylists.(j))

let step t ~policy =
  let now = Database.now t.ctx.Ctx.db in
  (* Choose the base relation with the smallest forward frontier. *)
  let i = ref 0 in
  for j = 1 to t.n - 1 do
    if t.tfwd.(j) < t.tfwd.(!i) then i := j
  done;
  let i = !i in
  (* Prune before the idle check: once every frontier has passed a query's
     execution time it is fully compensated, and the high-water mark must
     advance even if there is nothing left to do. *)
  prune_querylists t t.tfwd.(i);
  if t.tfwd.(i) >= now then `Idle
  else begin
    let delta =
      let d = policy i in
      if d <= 0 then invalid_arg "Rolling_deferred.step: interval must be positive";
      Time.min d (now - t.tfwd.(i))
    in
    let start = t.tfwd.(i) in
    if t.ctx.Ctx.auto_capture then Roll_capture.Capture.advance t.ctx.Ctx.capture;
    if Compute_delta.window_known_empty t.ctx i ~lo:start ~hi:(start + delta)
    then begin
      (* Quiet window: nothing to execute and nothing to compensate. *)
      t.tfwd.(i) <- start + delta;
      refresh_tcomp t i;
      `Advanced (i, hwm t)
    end
    else begin
    let fwd =
      Pquery.replace (Pquery.all_base t.n) i
        (Pquery.Win { lo = start; hi = start + delta })
    in
    let t_exec = Executor.execute t.ctx ~sign:1 fwd in
    Roll_util.Fault.hit t.ctx.Ctx.fault "deferred.post_forward";
    if i < t.n - 1 then
      t.querylists.(i) :=
        !(t.querylists.(i))
        @ [ { win_lo = start; win_hi = start + delta; exec = t_exec } ];
    if i > 0 then begin
      (* Compensate slab by slab; each slab is rectangular. *)
      let remaining = ref delta in
      while !remaining > 0 do
        let width = Stdlib.min !remaining (com_interval t ~i ~start:t.tfwd.(i)) in
        let tau =
          Array.init t.n (fun j ->
              if j < i then comp_time t ~j ~start:t.tfwd.(i) else t_exec)
        in
        let slab =
          Pquery.replace (Pquery.all_base t.n) i
            (Pquery.Win { lo = t.tfwd.(i); hi = t.tfwd.(i) + width })
        in
        Compute_delta.run ~sign:(-1) t.ctx slab tau t_exec;
        t.tfwd.(i) <- t.tfwd.(i) + width;
        remaining := !remaining - width
      done
    end
    else t.tfwd.(i) <- start + delta;
    Roll_util.Fault.hit t.ctx.Ctx.fault "deferred.pre_advance";
    refresh_tcomp t i;
    `Advanced (i, hwm t)
    end
  end

let run_until t ~target ~policy =
  if target > Database.now t.ctx.Ctx.db then
    invalid_arg "Rolling_deferred.run_until: target in the future";
  while hwm t < target do
    match step t ~policy with
    | `Advanced _ -> ()
    | `Idle ->
        if hwm t < target then
          invalid_arg "Rolling_deferred.run_until: unreachable target"
  done
