(** Durable propagation frontiers: the control-table rows of Figure 11,
    persisted through the WAL.

    In the paper's prototype the control tables live inside the database and
    are durable for free. Here the durable channel is the WAL itself: after
    each advancing propagation step, the controller commits a marker record
    whose tag encodes the per-relation forward-query frontiers ([tfwd]),
    the compensation frontiers ([tcomp], equal to [tfwd] except under the
    deferred algorithm), the view-delta high-water mark and the apply
    position. Because markers are ordinary commits, they ride every WAL
    save/restore unchanged, and a restarted controller reads its last
    durable frontier straight out of the restored log
    ({!latest}) — or the whole trajectory ({!history}) when it wants to
    replay propagation exactly (see [Controller.recover]). *)

type t = {
  view : string;
  tfwd : Roll_delta.Time.t array;  (** forward-query frontier per relation *)
  tcomp : Roll_delta.Time.t array;
      (** compensation frontier per relation; equals [tfwd] outside the
          deferred algorithm *)
  hwm : Roll_delta.Time.t;  (** view-delta high-water mark at record time *)
  as_of : Roll_delta.Time.t;  (** apply position at record time *)
}

val to_tag : t -> string
(** Encode as a WAL marker tag (prefix ["!frontier "]). *)

val of_tag : string -> t option
(** [None] when the tag is not a frontier marker; a malformed frontier
    marker also yields [None] (recovery treats it as absent rather than
    crashing on a damaged control row). *)

val of_record : Roll_storage.Wal.record -> view:string -> t option
(** The frontier carried by one WAL record, if it is a frontier marker for
    [view]. *)

val latest : Roll_storage.Wal.t -> view:string -> t option
(** The most recent durable frontier for [view] (backward scan). *)

val history : Roll_storage.Wal.t -> view:string -> t list
(** Every durable frontier for [view], oldest first — the full recorded
    trajectory. *)
