open Roll_relation
module Time = Roll_delta.Time
module Delta = Roll_delta.Delta

type t = {
  ctx : Ctx.t;  (** for the live fault handle *)
  delta : Delta.t;
  store : Relation.t;
  mutable as_of : Time.t;
}

let create_empty (ctx : Ctx.t) ~t_initial =
  {
    ctx;
    delta = ctx.out;
    store = Relation.create (View.output_schema ctx.view);
    as_of = t_initial;
  }

let create_materialized (ctx : Ctx.t) =
  let store, t_exec = Executor.materialize ctx in
  { ctx; delta = ctx.out; store; as_of = t_exec }

let create_restored (ctx : Ctx.t) ~contents ~as_of =
  if not (Roll_relation.Schema.equal (Relation.schema contents) (View.output_schema ctx.view))
  then invalid_arg "Apply.create_restored: schema mismatch";
  { ctx; delta = ctx.out; store = Relation.copy contents; as_of }

let contents t = t.store

let as_of t = t.as_of

let roll_to t ~hwm target =
  if target < t.as_of then
    invalid_arg "Apply.roll_to: target earlier than the view (use roll_back_to)";
  if target > hwm then
    invalid_arg
      (Printf.sprintf "Apply.roll_to: target %d beyond high-water mark %d"
         target hwm);
  let roll () =
    Roll_util.Fault.hit t.ctx.Ctx.fault "apply.roll";
    Delta.apply_window t.delta ~lo:t.as_of ~hi:target t.store;
    t.as_of <- target
  in
  if Roll_obs.Obs.tracing t.ctx.Ctx.obs then
    Roll_obs.Trace.with_span
      (Roll_obs.Obs.trace t.ctx.Ctx.obs)
      ~attrs:
        [
          ("lo", Roll_obs.Trace.Int t.as_of);
          ("hi", Roll_obs.Trace.Int target);
          ( "rows",
            Roll_obs.Trace.Int
              (Delta.window_count t.delta ~lo:t.as_of ~hi:target) );
        ]
      "apply.roll" roll
  else roll ()

let roll_back_to t target =
  if target > t.as_of then invalid_arg "Apply.roll_back_to: target is ahead";
  Delta.window_iter t.delta ~lo:target ~hi:t.as_of (fun (row : Delta.row) ->
      Relation.add t.store row.tuple (-row.count));
  t.as_of <- target

let view_at t ~hwm time =
  if time > hwm then invalid_arg "Apply.view_at: time beyond high-water mark";
  let snapshot = Relation.copy t.store in
  if time >= t.as_of then Delta.apply_window t.delta ~lo:t.as_of ~hi:time snapshot
  else
    Delta.window_iter t.delta ~lo:time ~hi:t.as_of (fun (row : Delta.row) ->
        Relation.add snapshot row.tuple (-row.count));
  snapshot

let prune_applied t = Delta.prune t.delta ~upto:t.as_of
