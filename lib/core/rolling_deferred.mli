(** The literal [RollingPropagate] of Figure 10: deferred, merged
    compensations.

    This is the paper's printed algorithm, with its query lists,
    [ComInterval], [CompTime] and [PruneQueryLists]: forward queries of
    lower-numbered relations are {e not} compensated when they run; instead,
    each higher-numbered relation's forward query compensates, in one pass,
    its overlap with all outstanding lower-numbered queries — reaching back
    to the start of the oldest still-overlapping query ([CompTime]) and
    splitting at execution-time boundaries where the overlap staircase
    steps ([ComInterval]). R¹'s queries are never compensated at all, so
    the process issues strictly fewer [ComputeDelta] calls than
    {!Propagate} (the claim of Section 3.4, reproduced by the Figure 9–10
    benches).

    The deferred rule is exact for views over at most two relations — the
    case all of the paper's figures illustrate. For n >= 3 it
    over-compensates third axes (see {!Rolling} and DESIGN.md, "Fidelity
    notes"), so [create] rejects wider views; {!Rolling} handles those with
    a corrected, per-step compensation. *)

type t

type policy = int -> int
(** [policy i] is the propagation interval to use for relation [i]'s next
    forward query. Must be positive. *)

val uniform : int -> policy

val per_relation : int array -> policy

val create : Ctx.t -> t_initial:Roll_delta.Time.t -> t

val hwm : t -> Roll_delta.Time.t

val tfwd : t -> int -> Roll_delta.Time.t

val tcomp : t -> int -> Roll_delta.Time.t

val frontiers : t -> Roll_delta.Time.t array
(** Copy of the forward-frontier vector [tfwd]. *)

val comp_frontiers : t -> Roll_delta.Time.t array
(** Copy of the compensation-frontier vector [tcomp]; [hwm] is its
    minimum. *)

val outstanding : t -> int
(** Total queries across all query lists (not yet fully compensated). *)

val step : t -> policy:policy -> [ `Advanced of int * Roll_delta.Time.t | `Idle ]
(** One iteration of the do-forever loop: pick the relation with the
    smallest frontier, prune, forward-query, compensate. [`Advanced (i, h)]
    reports the chosen relation and the new high-water mark. [`Idle] when
    every frontier has reached the database's current time. *)

val run_until : t -> target:Roll_delta.Time.t -> policy:policy -> unit
(** Step until [hwm >= target].
    @raise Invalid_argument if [target] exceeds the database's current
    time. *)
