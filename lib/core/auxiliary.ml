(* Higher-order delta processing (ROADMAP item 3, DESIGN.md section 18):
   materialize the per-relation partials of the recursive ComputeDelta
   terms as first-class auxiliary views.

   Every Base term of a forward or compensation query reads one source
   relation R_j filtered by its single-source atoms and narrowed to the
   columns the join and the projection actually touch. That partial,
   π_needed(σ_local(R_j)), is itself a single-source select-project view —
   one with no compensation of its own (its forward query has no Base
   terms), so maintaining it is O(change) per step. This module derives
   those partials from a registered view's shape, materializes each one
   once (deduplicating across sibling views on the same canonical
   signature namespace the delta memo keys on), keeps an indexed in-memory
   mirror of its contents, and installs a freshness-checking closure into
   the owner's context so the executor probes the mirror instead of
   scanning the base relation whenever that is provably sound.

   The auxiliary's durable truth flows through the ordinary controller
   path — capture, propagate, apply, WAL frontier markers, checkpoint —
   exactly like a user view's, so crash recovery covers it for free. The
   mirror is derived state on the same footing as secondary indexes: it
   dies with the process and is rebuilt from the recovered auxiliary
   contents on restart. *)

open Roll_relation
module Time = Roll_delta.Time
module Delta = Roll_delta.Delta
module Database = Roll_storage.Database
module Table = Roll_storage.Table
module Capture = Roll_capture.Capture

let log_src = Logs.Src.create "roll.auxiliary" ~doc:"auxiliary-view registry"

module Log = (val Logs.src_log log_src)

(* ------------------------------------------------------------------ *)
(* Derivation                                                          *)

type deriv = {
  source : int;  (** owner source position the auxiliary substitutes *)
  base : string;  (** the base table it is a partial of *)
  local : Predicate.t;  (** single-source atoms, rebased to source 0 *)
  select : (string * Predicate.operand) list;  (** retained columns *)
  cols : int array;  (** mirror column [k] holds base column [cols.(k)] *)
}

let rebase_col (c : Predicate.col) = { c with Predicate.source = 0 }

let rec rebase_operand = function
  | Predicate.Col c -> Predicate.Col (rebase_col c)
  | Predicate.Const _ as o -> o
  | Predicate.Neg e -> Predicate.Neg (rebase_operand e)
  | Predicate.Add (a, b) -> Predicate.Add (rebase_operand a, rebase_operand b)
  | Predicate.Sub (a, b) -> Predicate.Sub (rebase_operand a, rebase_operand b)
  | Predicate.Mul (a, b) -> Predicate.Mul (rebase_operand a, rebase_operand b)
  | Predicate.Div (a, b) -> Predicate.Div (rebase_operand a, rebase_operand b)

let operand_cols_of_source j operand =
  Predicate.fold_operands
    (fun acc op ->
      match op with
      | Predicate.Col c when c.Predicate.source = j -> c.Predicate.column :: acc
      | _ -> acc)
    [] operand

(* Which of source [j]'s columns the rest of the query can see: columns
   referenced by atoms that involve any other source, plus columns the
   projection reads. Columns only a single-source atom touches are filter
   inputs the auxiliary consumes when it applies the atom. *)
let needed_cols view j =
  let acc = ref [] in
  let note c = if not (List.mem c !acc) then acc := c :: !acc in
  List.iter
    (fun atom ->
      match Predicate.sources_of_atom atom with
      | [ k ] when k = j -> ()
      | srcs when List.mem j srcs ->
          (match atom with
          | Predicate.Join (a, b) ->
              if a.Predicate.source = j then note a.Predicate.column;
              if b.Predicate.source = j then note b.Predicate.column
          | Predicate.Cmp (_, x, y) ->
              List.iter note (operand_cols_of_source j x);
              List.iter note (operand_cols_of_source j y))
      | _ -> ())
    (View.predicate view);
  List.iter
    (fun (_, operand) -> List.iter note (operand_cols_of_source j operand))
    (View.projection view);
  List.sort_uniq Int.compare !acc

let derive view =
  let n = View.n_sources view in
  (* A single-source view's forward query has no Base terms — there is
     nothing to substitute and its maintenance is already O(change). *)
  if n < 2 then []
  else
    List.filter_map
      (fun j ->
        let schema = View.source_schema view j in
        let local =
          List.filter
            (fun atom -> Predicate.sources_of_atom atom = [ j ])
            (View.predicate view)
        in
        let needed = needed_cols view j in
        (* No retained columns: the source feeds neither the join nor the
           output. No local filter and full width: the "partial" would be a
           verbatim copy of the table, all cost and no narrowing. *)
        if needed = [] then None
        else if local = [] && List.length needed = Schema.arity schema then
          None
        else
          let local =
            List.map
              (function
                | Predicate.Join (a, b) ->
                    Predicate.Join (rebase_col a, rebase_col b)
                | Predicate.Cmp (op, x, y) ->
                    Predicate.Cmp (op, rebase_operand x, rebase_operand y))
              local
          in
          let select =
            List.map
              (fun c ->
                ( (Schema.column schema c).Schema.name,
                  Predicate.Col { Predicate.source = 0; column = c } ))
              needed
          in
          Some
            {
              source = j;
              base = View.source_table view j;
              local;
              select;
              cols = Array.of_list needed;
            })
      (List.init n Fun.id)

(* ------------------------------------------------------------------ *)
(* Registry                                                            *)

type entry = {
  key : string;
      (** canonical [Pquery.signature] of the auxiliary's defining query —
          the same namespace the delta memo keys on, so two sibling views
          needing the same partial share one entry instead of
          double-materializing *)
  base : string;
  view : View.t;
  controller : Controller.t;
  cols : int array;
  mirror : Table.t;
  mutable mirror_as_of : Time.t;
      (** the mirror equals the auxiliary's contents at this time *)
  mutable owners : string list;  (** names of the views probing this entry *)
}

type t = {
  db : Database.t;
  capture : Capture.t;
  interval : int;
  mutable entries : entry list;
}

let create ?(interval = 8) db capture =
  if interval <= 0 then invalid_arg "Auxiliary.create: interval";
  { db; capture; interval; entries = [] }

let entries t = t.entries

let name e = View.name e.view

let view e = e.view

let controller e = e.controller

let mirror e = e.mirror

let owners e = e.owners

let mirror_as_of e = e.mirror_as_of

let for_owner t ~owner =
  List.filter (fun e -> List.mem owner e.owners) t.entries

let find t name_ =
  List.find_opt (fun e -> String.equal (name e) name_) t.entries

(* The auxiliary is substitutable iff the mirror provably equals the
   partial applied to the base table's *current committed state*: no
   captured change to the base strictly after [mirror_as_of] (O(1) via the
   delta's max timestamp) and no logged-but-uncaptured change either (a
   read-only scan of the usually-empty WAL suffix). Marker commits advance
   the clock constantly, so the test must — and does — ignore everything
   that is not a data change to this base table. *)
let fresh t e =
  (match Delta.max_ts (Capture.delta t.capture ~table:e.base) with
  | Some ts -> ts <= e.mirror_as_of
  | None -> true)
  && not (Capture.pending_changes t.capture ~table:e.base)

let lag t e = Time.max 0 (Database.now t.db - e.mirror_as_of)

(* Fold the auxiliary's applied-but-unmirrored delta suffix into the
   mirror. Only rows at or below the controller's high-water mark are
   consumed — the hwm advances solely on successful steps, so rows a retry
   or a wave undo may truncate are never visible here. Callers must sync
   before pruning the auxiliary's delta (see [gc]). *)
let sync e =
  let target = Controller.hwm e.controller in
  if target > e.mirror_as_of then begin
    Delta.window_iter
      (Controller.ctx e.controller).Ctx.out
      ~lo:e.mirror_as_of ~hi:target
      (fun (row : Delta.row) -> Table.apply_change e.mirror row.tuple row.count);
    e.mirror_as_of <- target
  end

let sync_all t = List.iter sync t.entries

(* Prune the auxiliary's applied delta rows — syncing first, because the
   mirror reads the delta window the prune is about to reclaim. *)
let gc e =
  sync e;
  Controller.gc e.controller

let signature_of_aux view =
  Pquery.signature view ~rule:`Min (Pquery.all_base 1)

let aux_name base key =
  Printf.sprintf "aux_%s_%08x" base (Hashtbl.hash key land 0xFFFFFFFF)

(* Build the mirror afresh from the auxiliary's stored contents, then roll
   it to the high-water mark. Used at creation (cheap: the store was just
   materialized) and after crash recovery (the mirror died with the
   process; the recovered store + regenerated delta rebuild it exactly). *)
let rebuild_mirror e =
  let contents = Controller.contents e.controller in
  Relation.iter (fun tuple count -> Table.apply_change e.mirror tuple count)
    contents;
  e.mirror_as_of <- Controller.as_of e.controller;
  sync e

let make_entry t ~durable ~recover ?obs (deriv : deriv) =
  let probe = View.create_select t.db ~name:"aux" ~sources:[ (deriv.base, deriv.base) ]
      ~predicate:deriv.local ~select:deriv.select
  in
  let key = signature_of_aux probe in
  match List.find_opt (fun e -> String.equal e.key key) t.entries with
  | Some e -> e
  | None ->
      let vname = aux_name deriv.base key in
      let aux_view =
        View.create_select t.db ~name:vname
          ~sources:[ (deriv.base, deriv.base) ]
          ~predicate:deriv.local ~select:deriv.select
      in
      let algorithm = Controller.Rolling (Rolling.uniform t.interval) in
      let controller =
        if recover then
          match Controller.recover ?obs t.db t.capture aux_view ~algorithm with
          | ctl -> ctl
          | exception Invalid_argument _ ->
              (* No durable state for this auxiliary (first run, or it was
                 derived after the last crash): start it fresh. *)
              Controller.create ~durable ?obs t.db t.capture aux_view
                ~algorithm
        else Controller.create ~durable ?obs t.db t.capture aux_view ~algorithm
      in
      let mirror = Table.create ~name:vname (View.output_schema aux_view) in
      let e =
        {
          key;
          base = deriv.base;
          view = aux_view;
          controller;
          cols = deriv.cols;
          mirror;
          mirror_as_of = Controller.as_of controller;
          owners = [];
        }
      in
      rebuild_mirror e;
      t.entries <- t.entries @ [ e ];
      Log.info (fun m ->
          m "materialized auxiliary %s = π%s(σ(%s)) as_of=%d" vname
            (String.concat ","
               (List.map string_of_int (Array.to_list deriv.cols)))
            deriv.base e.mirror_as_of);
      e

(* Secondary indexes on the mirror columns the owner's equi-joins probe,
   so the planner turns a substituted base scan into an index probe. *)
let index_mirror e owner_view (deriv : deriv) =
  List.iter
    (fun atom ->
      match atom with
      | Predicate.Join (a, b) ->
          List.iter
            (fun (c : Predicate.col) ->
              if c.Predicate.source = deriv.source then
                Array.iteri
                  (fun k base_col ->
                    if base_col = c.Predicate.column then
                      Table.create_index e.mirror ~columns:[ k ])
                  e.cols)
            [ a; b ]
      | Predicate.Cmp _ -> ())
    (View.predicate owner_view)

let install_closure t owner_ctx assoc =
  let stats = owner_ctx.Ctx.stats in
  owner_ctx.Ctx.aux <-
    Some
      (fun ~peek j ->
        match List.assoc_opt j assoc with
        | None -> None
        | Some e ->
            if peek then Some { Ctx.table = e.mirror; cols = e.cols }
            else if fresh t e then begin
              Stats.incr_aux_hits stats;
              Some { Ctx.table = e.mirror; cols = e.cols }
            end
            else begin
              Stats.incr_aux_misses stats;
              None
            end)

let attach ?(durable = false) ?(recover = false) ?obs t owner_controller =
  let owner_view = Controller.view owner_controller in
  let owner = View.name owner_view in
  let derivs = derive owner_view in
  let assoc =
    List.map
      (fun d ->
        let e = make_entry t ~durable ~recover ?obs d in
        if not (List.mem owner e.owners) then e.owners <- e.owners @ [ owner ];
        index_mirror e owner_view d;
        (d.source, e))
      derivs
  in
  if assoc <> [] then
    install_closure t (Controller.ctx owner_controller) assoc;
  List.map snd assoc

(* Drop [owner] from every entry; entries left with no owners are orphans —
   removed from the registry and returned so the caller can retire their
   maintenance (the mirror and controller become unreachable with them). *)
let release t ~owner =
  List.iter
    (fun e ->
      e.owners <- List.filter (fun o -> not (String.equal o owner)) e.owners)
    t.entries;
  let orphans, live = List.partition (fun e -> e.owners = []) t.entries in
  t.entries <- live;
  if orphans <> [] then
    Log.info (fun m ->
        m "dropped %d orphaned auxiliar%s: %s" (List.length orphans)
          (if List.length orphans = 1 then "y" else "ies")
          (String.concat ", " (List.map name orphans)));
  orphans
