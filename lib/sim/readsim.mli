(** Read/maintenance contention model for the rolld serving path.

    A fluid-limit companion to the [bench serve] load harness: updates
    commit at a constant rate, the maintenance drain covers commits at
    its step capacity (boosted while readers wait, mirroring the
    scheduler's reader band), and a population of clients issues
    freshest-available and point-in-time reads. A point-in-time read
    whose target lies beyond the covered high-water mark queues until the
    drain reaches it — exactly the admission rule of
    [Roll_serve.Engine].

    The model predicts the load harness's shape: while
    [update_rate < drain_rate * step_commits] the lag is bounded and
    waits stay near zero; past that capacity the lag grows linearly and
    recent-target reads wait for the drain to catch up — the knee
    BENCH_serve.json documents. *)

type config = {
  duration : float;  (** simulated seconds *)
  dt : float;  (** integration tick, seconds *)
  update_rate : float;  (** commits per second *)
  drain_rate : float;  (** propagation steps per second *)
  step_commits : float;  (** commits of coverage per step *)
  reader_boost : float;
      (** drain-rate multiplier while readers are blocked (>= 1) *)
  clients : int;
  think_time : float;  (** mean seconds between one client's reads *)
  fresh_fraction : float;  (** reads that ask FRESH instead of AT t *)
  recency : float;
      (** AT targets are drawn uniformly from the last [recency] commits *)
  seed : int;
}

val default_config : config

type result = {
  reads : int;
  queued : int;  (** reads that had to wait for the drain *)
  wait_mean : float;
  wait_p50 : float;
  wait_p95 : float;
  wait_p99 : float;
  wait_max : float;  (** seconds *)
  staleness_p50 : float;
  staleness_p95 : float;  (** commits behind now at serve time *)
  lag_mean : float;  (** mean commits between now and the hwm *)
  saturated : bool;  (** update rate exceeds drain capacity *)
}

val run : config -> result
(** @raise Invalid_argument on non-positive [duration] or [dt]. *)
