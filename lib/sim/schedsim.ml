module C = Roll_core
module W = Roll_workload
module Predicate = Roll_relation.Predicate
module Summary = Roll_util.Summary
module Prng = Roll_util.Prng

type config = {
  rounds : int;
  txns_per_round : int;
  budget : int;
  dim_fraction : float;
  sla : int;
  hot_interval : int;
  cold_interval : int;
  seed : int;
}

let default_config =
  {
    rounds = 25;
    txns_per_round = 30;
    budget = 12;
    dim_fraction = 0.05;
    sla = 40;
    hot_interval = 4;
    cold_interval = 40;
    seed = 23;
  }

type view_metrics = {
  view : string;
  sla : int;
  max_staleness : int;
  mean_staleness : float;
  violations : int;
}

type policy_result = {
  policy : string;
  views : view_metrics list;
  total_steps : int;
  max_staleness : int;
  mean_staleness : float;
  deferred : int;
  backpressured : int;
  makespan : float;
  update_wait_p95 : float;
}

let policy_name = function
  | C.Scheduler.Slack -> "slack"
  | C.Scheduler.Round_robin -> "round_robin"

(* A two-table sub-join of the star schema: fact against one dimension. *)
let sub_view star ~name ~dim =
  let db = W.Star.db star in
  let sources = [ (W.Star.fact_table star, "f"); (W.Star.dim_table star dim, "d") ] in
  let bind = C.View.binder db sources in
  let predicate =
    [ Predicate.join (bind "f" (Printf.sprintf "d%d_key" dim)) (bind "d" "key") ]
  in
  C.View.create db ~name ~sources ~predicate
    ~project:[ bind "f" "measure"; bind "d" "attr" ]

(* Replay the measured propagation footprints against a Poisson updater
   stream through the lock simulator. The propagation spacing compresses
   each policy's whole run into the same simulated horizon, so the policies
   are compared on identical offered load. *)
let des_replay config footprints =
  let costs = Contention.default_costs in
  let n = List.length footprints in
  let horizon = 10.0 in
  let spacing = if n = 0 then horizon else horizon /. float_of_int n in
  let prop = Contention.propagation_txns costs footprints ~start:0.0 ~spacing in
  let tables =
    "fact" :: List.init 2 (fun i -> Printf.sprintf "dim%d" i)
  in
  let rng = Prng.create ~seed:(config.seed + 7) in
  let updates =
    Contention.update_stream rng ~tables ~rate:8.0 ~until:horizon
      ~mean_duration:0.02
  in
  let result = Des.run (prop @ updates) in
  let update_wait =
    match List.assoc_opt "update" result.Des.classes with
    | Some cls when Summary.count cls.Des.wait > 0 ->
        Summary.percentile cls.Des.wait 0.95
    | _ -> 0.0
  in
  (result.Des.makespan, update_wait)

let run_policy config policy =
  let star =
    W.Star.create { W.Star.default_config with seed = config.seed }
  in
  W.Star.load_initial star;
  let service =
    C.Service.create ~policy ~default_sla:config.sla (W.Star.db star)
      (W.Star.capture star)
  in
  let hot = sub_view star ~name:"hot" ~dim:0 in
  let cold = sub_view star ~name:"cold" ~dim:1 in
  let hot_ctl =
    C.Service.register service ~algorithm:(C.Controller.Uniform config.hot_interval) hot
  in
  let cold_ctl =
    C.Service.register service
      ~algorithm:(C.Controller.Uniform config.cold_interval)
      cold
  in
  let samples = Hashtbl.create 4 in
  let sample name ~sla staleness =
    let s, violations =
      match Hashtbl.find_opt samples name with
      | Some sv -> sv
      | None ->
          let sv = (Summary.create (), ref 0) in
          Hashtbl.add samples name sv;
          sv
    in
    Summary.add s (float_of_int staleness);
    if staleness > sla then incr violations
  in
  let total_steps = ref 0 in
  for _ = 1 to config.rounds do
    W.Star.mixed_txns star ~n:config.txns_per_round
      ~dim_fraction:config.dim_fraction;
    total_steps := !total_steps + C.Service.step_all service ~budget:config.budget;
    List.iter
      (fun (st : C.Service.status) ->
        sample st.C.Service.name ~sla:st.C.Service.sla st.C.Service.staleness)
      (C.Service.status service)
  done;
  let views =
    List.map
      (fun name ->
        let s, violations = Hashtbl.find samples name in
        {
          view = name;
          sla = C.Service.sla service name;
          max_staleness = int_of_float (Summary.max_value s);
          mean_staleness = Summary.mean s;
          violations = !violations;
        })
      (C.Service.names service)
  in
  let sched_stats = C.Scheduler.stats (C.Service.scheduler service) in
  let deferred, backpressured =
    List.fold_left
      (fun (d, b) (_, (c : C.Stats.sched_counters)) ->
        (d + c.C.Stats.deferred, b + c.C.Stats.backpressured))
      (0, 0)
      (C.Stats.sched_kinds sched_stats)
  in
  let footprints =
    C.Stats.footprints (C.Controller.stats hot_ctl)
    @ C.Stats.footprints (C.Controller.stats cold_ctl)
  in
  let makespan, update_wait_p95 = des_replay config footprints in
  {
    policy = policy_name policy;
    views;
    total_steps = !total_steps;
    max_staleness =
      List.fold_left
        (fun acc (v : view_metrics) -> max acc v.max_staleness)
        0 views;
    mean_staleness =
      (let n = List.length views in
       if n = 0 then 0.0
       else
         List.fold_left
           (fun acc (v : view_metrics) -> acc +. v.mean_staleness)
           0.0 views
         /. float_of_int n);
    deferred;
    backpressured;
    makespan;
    update_wait_p95;
  }

let run ?(config = default_config) () =
  [ run_policy config C.Scheduler.Slack; run_policy config C.Scheduler.Round_robin ]

let pp_result ppf r =
  Format.fprintf ppf "%-11s steps=%-4d max=%-4d mean=%-6.1f makespan=%.1f p95=%.3f"
    r.policy r.total_steps r.max_staleness r.mean_staleness r.makespan
    r.update_wait_p95;
  List.iter
    (fun v ->
      Format.fprintf ppf "@.  %-5s sla=%d max=%d mean=%.1f violations=%d"
        v.view v.sla v.max_staleness v.mean_staleness v.violations)
    r.views
