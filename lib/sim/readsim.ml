type config = {
  duration : float;
  dt : float;
  update_rate : float;
  drain_rate : float;
  step_commits : float;
  reader_boost : float;
  clients : int;
  think_time : float;
  fresh_fraction : float;
  recency : float;
  seed : int;
}

let default_config =
  {
    duration = 30.0;
    dt = 0.001;
    update_rate = 200.0;
    drain_rate = 50.0;
    step_commits = 5.0;
    reader_boost = 1.5;
    clients = 1000;
    think_time = 1.0;
    fresh_fraction = 0.2;
    recency = 50.0;
    seed = 7;
  }

type result = {
  reads : int;
  queued : int;
  wait_mean : float;
  wait_p50 : float;
  wait_p95 : float;
  wait_p99 : float;
  wait_max : float;
  staleness_p50 : float;
  staleness_p95 : float;
  lag_mean : float;
  saturated : bool;
}

module Summary = Roll_util.Summary
module Prng = Roll_util.Prng

type pending = { target : float; submitted : float }

let run config =
  if config.dt <= 0.0 || config.duration <= 0.0 then
    invalid_arg "Readsim.run: non-positive duration or dt";
  let rng = Prng.create ~seed:config.seed in
  let waits = Summary.create ~keep_samples:true () in
  let staleness = Summary.create ~keep_samples:true () in
  let lag = Summary.create () in
  (* Per-client next read instant, staggered uniformly over one think
     period so the population doesn't fire in lockstep. *)
  let next_read =
    Array.init config.clients (fun _ -> Prng.float rng config.think_time)
  in
  let now_c = ref 0.0 in
  let hwm_c = ref 0.0 in
  let pending = ref [] in
  let queued = ref 0 in
  let reads = ref 0 in
  let capacity = config.drain_rate *. config.step_commits in
  let t = ref 0.0 in
  while !t < config.duration do
    let t0 = !t in
    t := t0 +. config.dt;
    (* Updates commit continuously; the drain covers commits at its step
       capacity, boosted while readers are blocked (the scheduler's
       reader band). *)
    now_c := !now_c +. (config.update_rate *. config.dt);
    let boost = if !pending = [] then 1.0 else config.reader_boost in
    hwm_c :=
      Float.min !now_c (!hwm_c +. (capacity *. boost *. config.dt));
    Summary.add lag (!now_c -. !hwm_c);
    (* Serve queued readers whose target the drain has covered. *)
    let served, still =
      List.partition (fun p -> p.target <= !hwm_c) !pending
    in
    pending := still;
    List.iter
      (fun p ->
        Summary.add waits (!t -. p.submitted);
        Summary.add staleness (!now_c -. p.target))
      served;
    (* Fire due clients. *)
    Array.iteri
      (fun i due ->
        if due <= !t then begin
          next_read.(i) <-
            (!t +. (config.think_time *. (0.5 +. Prng.float rng 1.0)));
          incr reads;
          if Prng.chance rng config.fresh_fraction then begin
            (* FRESH: served at the hwm immediately, no queueing. *)
            Summary.add waits 0.0;
            Summary.add staleness (!now_c -. !hwm_c)
          end
          else begin
            let target =
              Float.max 0.0 (!now_c -. Prng.float rng config.recency)
            in
            if target <= !hwm_c then begin
              Summary.add waits 0.0;
              Summary.add staleness (!now_c -. target)
            end
            else begin
              incr queued;
              pending := { target; submitted = !t } :: !pending
            end
          end
        end)
      next_read
  done;
  (* Shed whatever is still blocked at the end of the run: count its wait
     so saturation shows up in the tail instead of being censored. *)
  List.iter (fun p -> Summary.add waits (config.duration -. p.submitted)) !pending;
  let pct s p = if Summary.count s = 0 then 0.0 else Summary.percentile s p in
  {
    reads = !reads;
    queued = !queued;
    wait_mean = Summary.mean waits;
    wait_p50 = pct waits 0.5;
    wait_p95 = pct waits 0.95;
    wait_p99 = pct waits 0.99;
    wait_max =
      (if Summary.count waits = 0 then 0.0 else Summary.max_value waits);
    staleness_p50 = pct staleness 0.5;
    staleness_p95 = pct staleness 0.95;
    lag_mean = Summary.mean lag;
    saturated = config.update_rate > capacity;
  }
