module Prng = Roll_util.Prng
module Stats = Roll_core.Stats

type cost_model = { base_cost : float; per_row : float }

let default_costs = { base_cost = 0.002; per_row = 0.0001 }

let footprint_rows (fp : Stats.footprint) =
  List.fold_left (fun acc (_, n) -> acc + n) 0 fp.reads + fp.emitted

let duration_of model rows =
  model.base_cost +. (model.per_row *. float_of_int rows)

let locks_of_footprint (fp : Stats.footprint) =
  { Des.resource = "delta:view"; mode = Des.Exclusive }
  :: List.map
       (fun (resource, _) -> { Des.resource; mode = Des.Shared })
       fp.reads

let propagation_txns model footprints ~start ~spacing =
  List.mapi
    (fun i fp ->
      {
        Des.label = "propagate";
        arrival = start +. (float_of_int i *. spacing);
        duration = duration_of model (footprint_rows fp);
        locks = locks_of_footprint fp;
      })
    footprints

let monolithic_refresh model footprints ~start ~tables =
  let rows = List.fold_left (fun acc fp -> acc + footprint_rows fp) 0 footprints in
  {
    Des.label = "refresh";
    arrival = start;
    duration = duration_of model rows;
    locks =
      { Des.resource = "delta:view"; mode = Des.Exclusive }
      :: List.map (fun resource -> { Des.resource; mode = Des.Shared }) tables;
  }

let exponential rng mean = -.mean *. log (1.0 -. Prng.float rng 1.0)

let poisson_stream rng ~rate ~until ~make =
  let acc = ref [] in
  let t = ref 0.0 in
  while !t < until do
    t := !t +. exponential rng (1.0 /. rate);
    if !t < until then acc := make !t :: !acc
  done;
  List.rev !acc

let update_stream rng ~tables ~rate ~until ~mean_duration =
  let tables = Array.of_list tables in
  poisson_stream rng ~rate ~until ~make:(fun arrival ->
      let table = Prng.pick rng tables in
      {
        Des.label = "update";
        arrival;
        duration = exponential rng mean_duration;
        locks =
          [
            { Des.resource = table; mode = Des.Exclusive };
            { Des.resource = "delta:" ^ table; mode = Des.Exclusive };
          ];
      })

let reader_stream rng ~resource ~rate ~until ~mean_duration =
  poisson_stream rng ~rate ~until ~make:(fun arrival ->
      {
        Des.label = "reader";
        arrival;
        duration = exponential rng mean_duration;
        locks = [ { Des.resource; mode = Des.Shared } ];
      })

(* One wave of parallel maintenance: the items dispatch together and each
   writes only its own view delta (frozen-clock steps commit no markers and
   advance no capture), so two wave items share an exclusive resource only
   if the scheduler hands out overlapping windows — which take_wave never
   does. The single-writer apply and updaters are the only writers that can
   block a wave item. *)
let wave_txns model items ~start =
  List.map
    (fun (view, fp) ->
      {
        Des.label = "wave:" ^ view;
        arrival = start;
        duration = duration_of model (footprint_rows fp);
        locks =
          { Des.resource = "delta:" ^ view; mode = Des.Exclusive }
          :: List.map
               (fun (resource, _) -> { Des.resource; mode = Des.Shared })
               fp.Stats.reads;
      })
    items

let apply_txn model ~rows ~start ~view =
  {
    Des.label = "apply";
    arrival = start;
    duration = duration_of model rows;
    locks =
      [
        { Des.resource = view; mode = Des.Exclusive };
        { Des.resource = "delta:view"; mode = Des.Shared };
      ];
  }
