(** Builders that turn measured propagation footprints and synthetic OLTP
    streams into simulator transaction lists.

    The cost model is linear: a transaction that touches r rows runs for
    [base_cost + per_row * r] simulated seconds. Propagation transactions
    take shared locks on every base table and delta they read and an
    exclusive lock on the view-delta table; updaters take an exclusive lock
    on one base table (and its delta, as a trigger-based capture would —
    Section 5 discusses exactly this footprint expansion); readers take a
    shared lock on the materialized view; apply takes exclusive view plus
    shared view-delta. *)

type cost_model = { base_cost : float; per_row : float }

val default_costs : cost_model

val propagation_txns :
  cost_model ->
  Roll_core.Stats.footprint list ->
  start:float ->
  spacing:float ->
  Des.txn_spec list
(** One simulator transaction per measured propagation query, arriving
    [spacing] apart starting at [start], with duration from its row
    footprint. *)

val monolithic_refresh :
  cost_model ->
  Roll_core.Stats.footprint list ->
  start:float ->
  tables:string list ->
  Des.txn_spec
(** The synchronous alternative: all the propagation work fused into one
    transaction holding shared locks on every base table for the whole
    combined duration. *)

val update_stream :
  Roll_util.Prng.t ->
  tables:string list ->
  rate:float ->
  until:float ->
  mean_duration:float ->
  Des.txn_spec list
(** Poisson stream of updaters, each locking one random table (exclusive)
    and its delta. *)

val reader_stream :
  Roll_util.Prng.t ->
  resource:string ->
  rate:float ->
  until:float ->
  mean_duration:float ->
  Des.txn_spec list
(** Poisson stream of view readers (shared lock on [resource]). *)

val wave_txns :
  cost_model ->
  (string * Roll_core.Stats.footprint) list ->
  start:float ->
  Des.txn_spec list
(** One simulator transaction per parallel wave item [(view, footprint)],
    all arriving together at [start] (a wave dispatches its items
    concurrently). Each takes shared locks on the base tables and deltas
    its forward query reads and an {e exclusive} lock on its own view's
    delta ([delta:<view>]) — frozen-clock steps write nothing else. The
    model therefore predicts the wave invariant the scheduler enforces:
    items with pairwise-disjoint windows over distinct views never block
    each other; only the single-writer apply on the same view, or an
    updater on a table the step reads, can make a wave item wait. Labels
    are ["wave:<view>"]. *)

val apply_txn :
  cost_model -> rows:int -> start:float -> view:string -> Des.txn_spec
