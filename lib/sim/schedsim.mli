(** Scheduling-policy evaluation on a skewed star workload.

    Drives the same maintenance scenario once per {!Roll_core.Scheduler}
    policy: two views over one star database — a {e hot} join whose
    propagation interval demands many steps per round and a {e cold} join
    that needs few — maintained by a budgeted {!Roll_core.Service} drain
    while fact-heavy transactions keep committing. The budget is set below
    the combined step demand, so the policies must choose which view falls
    behind; per-round staleness samples record the consequences.

    The measured propagation footprints are then replayed through the
    {!Des} lock-contention simulator against a Poisson updater stream
    (the Section 5 story: propagation's shared base-table locks vs
    updaters' exclusive locks), giving makespan and updater wait times
    under each policy's transaction mix. *)

type config = {
  rounds : int;  (** drain/sample cycles *)
  txns_per_round : int;  (** workload transactions committed per round *)
  budget : int;  (** propagation steps allowed per drain *)
  dim_fraction : float;  (** probability a transaction is a dimension update *)
  sla : int;  (** staleness target for both views, in commits *)
  hot_interval : int;  (** hot view's uniform propagation interval *)
  cold_interval : int;  (** cold view's uniform propagation interval *)
  seed : int;
}

val default_config : config

type view_metrics = {
  view : string;
  sla : int;
  max_staleness : int;
  mean_staleness : float;
  violations : int;  (** samples with staleness above the SLA *)
}

type policy_result = {
  policy : string;  (** ["slack"] or ["round_robin"] *)
  views : view_metrics list;
  total_steps : int;  (** propagation steps executed across all drains *)
  max_staleness : int;  (** worst staleness sample across views *)
  mean_staleness : float;  (** mean over all samples of all views *)
  deferred : int;  (** propagate items deferred by capture backpressure *)
  backpressured : int;  (** capture advances boosted by backpressure *)
  makespan : float;  (** DES replay: time to drain the transaction mix *)
  update_wait_p95 : float;
      (** DES replay: 95th-percentile updater lock-wait *)
}

val run : ?config:config -> unit -> policy_result list
(** Evaluate {!Roll_core.Scheduler.Slack} and
    {!Roll_core.Scheduler.Round_robin} on identically seeded workloads;
    results in that order. *)

val pp_result : Format.formatter -> policy_result -> unit
