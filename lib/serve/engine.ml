(** The serving engine: admission control and the blocked-reader queue.

    rolld keeps the single-writer discipline of the maintenance loop: the
    engine never runs maintenance itself and connection threads never
    touch the database. A connection thread {!submit}s a read and blocks
    in {!await}; the drain loop (the server's engine thread, or a test
    driving the engine inline) calls {!pump} between maintenance drains
    to resolve whatever has become servable. All database access — clock
    reads, snapshot construction, status — happens inside {!pump} on the
    pumping thread, so reads are always served against a quiescent
    engine.

    {2 Admission}

    For [READ view AT t] with current database time [now], view
    high-water mark [hwm] and gc horizon [h]:

    - [t > now]: rejected [too_new] — the time has not been committed, no
      amount of waiting on this server can serve it;
    - [t < h]: rejected [gc_horizon] — the applied delta prefix below [h]
      was pruned, the snapshot is gone forever;
    - [t <= hwm]: served immediately from the view delta
      ({!Roll_core.Controller.view_at}), no maintenance needed;
    - [hwm < t <= now]: {e queued}. The reader blocks until propagation
      rolls the high-water mark past [t]; queued readers are what the
      scheduler's reader boost counts ({!demand} is installed as the
      {!Roll_core.Service.set_read_demand} census).

    [READ view FRESH] serves at the current high-water mark and never
    queues. A full queue sheds new reads with [overloaded] instead of
    growing without bound. *)

module Service = Roll_core.Service
module Controller = Roll_core.Controller
module Stats = Roll_core.Stats
module Database = Roll_storage.Database
module Relation = Roll_relation.Relation
module Obs = Roll_obs.Obs
module Metrics = Roll_obs.Metrics

type ticket = {
  request : Protocol.request;
  submitted : float;  (** wall clock ({!Unix.gettimeofday}) at submit *)
  t_mutex : Mutex.t;
  t_cond : Condition.t;
  mutable result : Protocol.response option;
}

type t = {
  service : Service.t;
  db : Database.t;
  queue_limit : int;
  mutex : Mutex.t;  (** guards [pending], [accepting] and the counters *)
  mutable pending : ticket list;  (** newest first; {!pump} serves oldest first *)
  mutable accepting : bool;
  mutable served : int;
  mutable rejected : int;
  (* Last materialized snapshot per view, keyed by serve time. Reads at a
     fixed (view, t) with [t <= hwm] are deterministic — the applied
     delta below the high-water mark is append-only — so bursts of
     clients asking for the same past time re-serve the rows without
     another {!Controller.view_at} replay. Pump-thread only (like every
     db touch); entries die when the gc horizon passes their time. *)
  snapshots : (string, Roll_delta.Time.t * (Roll_relation.Tuple.t * int) list) Hashtbl.t;
  mutable snapshot_hits : int;
}

let create ?(queue_limit = 1024) db service =
  if queue_limit < 1 then invalid_arg "Engine.create: queue_limit < 1";
  let t =
    {
      service;
      db;
      queue_limit;
      mutex = Mutex.create ();
      pending = [];
      accepting = true;
      served = 0;
      rejected = 0;
      snapshots = Hashtbl.create 8;
      snapshot_hits = 0;
    }
  in
  (* Plug the blocked-reader census into the scheduler so drains
     prioritize views clients are waiting on. *)
  Service.set_read_demand service (fun view ->
      Mutex.protect t.mutex (fun () ->
          List.length
            (List.filter
               (fun ticket ->
                 match ticket.request with
                 | Protocol.Read_at { view = v; _ } -> v = view
                 | _ -> false)
               t.pending)));
  t

let service t = t.service

let db t = t.db

let pending t = Mutex.protect t.mutex (fun () -> List.length t.pending)

let reads_served t = Mutex.protect t.mutex (fun () -> t.served)

let reads_rejected t = Mutex.protect t.mutex (fun () -> t.rejected)

let demand t view =
  Mutex.protect t.mutex (fun () ->
      List.length
        (List.filter
           (fun ticket ->
             match ticket.request with
             | Protocol.Read_at { view = v; _ } -> v = view
             | _ -> false)
           t.pending))

let resolve ticket response =
  Mutex.protect ticket.t_mutex (fun () ->
      ticket.result <- Some response;
      Condition.broadcast ticket.t_cond)

let await ticket =
  Mutex.protect ticket.t_mutex (fun () ->
      let rec wait () =
        match ticket.result with
        | Some r -> r
        | None ->
            Condition.wait ticket.t_cond ticket.t_mutex;
            wait ()
      in
      wait ())

let poll ticket = Mutex.protect ticket.t_mutex (fun () -> ticket.result)

let submit t request =
  (match request with
  | Protocol.Read_at _ | Protocol.Read_fresh _ | Protocol.Status -> ()
  | _ -> invalid_arg "Engine.submit: only READ and STATUS requests are queued");
  let ticket =
    {
      request;
      submitted = Unix.gettimeofday ();
      t_mutex = Mutex.create ();
      t_cond = Condition.create ();
      result = None;
    }
  in
  let reject =
    Mutex.protect t.mutex (fun () ->
        if not t.accepting then (
          t.rejected <- t.rejected + 1;
          Some Protocol.Shutting_down)
        else if List.length t.pending >= t.queue_limit then (
          t.rejected <- t.rejected + 1;
          Some
            (Protocol.Overloaded
               { pending = List.length t.pending; limit = t.queue_limit }))
        else begin
          t.pending <- ticket :: t.pending;
          None
        end)
  in
  (match reject with
  | Some r -> resolve ticket (Protocol.Rejected r)
  | None -> ());
  ticket

(* Serving (pump thread only — the single place that touches the db). *)

let observe_read t ~view ~wait ~staleness =
  let obs = Service.obs t.service in
  if Obs.enabled obs then begin
    let m = Obs.metrics obs in
    Metrics.observe
      (Metrics.histogram m ~labels:[ ("view", view) ]
         ~help:"seconds admitted readers spent blocked on freshness"
         "rolld_read_wait_seconds")
      wait;
    Metrics.observe
      (Metrics.histogram m ~labels:[ ("view", view) ]
         ~help:"commits behind current time at serve"
         "rolld_read_staleness_commits")
      (float_of_int staleness)
  end

let snapshot_rows t ~view ~ctl ~time =
  match Hashtbl.find_opt t.snapshots view with
  | Some (at, rows) when at = time && at >= Controller.horizon ctl ->
      t.snapshot_hits <- t.snapshot_hits + 1;
      rows
  | cached ->
      (* A cached time the horizon has passed is unservable anyway —
         drop it rather than hold pruned history alive. *)
      (match cached with
      | Some (at, _) when at < Controller.horizon ctl ->
          Hashtbl.remove t.snapshots view
      | _ -> ());
      let rows = Relation.to_list (Controller.view_at ctl time) in
      Hashtbl.replace t.snapshots view (time, rows);
      rows

let snapshot_memo_hits t = t.snapshot_hits

let serve t ticket ~view ~ctl ~time =
  let hwm = Controller.hwm ctl in
  let wait = Unix.gettimeofday () -. ticket.submitted in
  let rows = snapshot_rows t ~view ~ctl ~time in
  let stats = Controller.stats ctl in
  Stats.incr_reads_served stats;
  Stats.add_read_wait stats wait;
  observe_read t ~view ~wait ~staleness:(Database.now t.db - time);
  Mutex.protect t.mutex (fun () -> t.served <- t.served + 1);
  resolve ticket (Protocol.Rows { view; at = time; hwm; wait; rows })

let reject t ticket ?stats r =
  (match stats with Some s -> Stats.incr_reads_rejected s | None -> ());
  Mutex.protect t.mutex (fun () -> t.rejected <- t.rejected + 1);
  resolve ticket (Protocol.Rejected r)

let status t =
  let pending, served, rejected =
    Mutex.protect t.mutex (fun () ->
        (List.length t.pending, t.served, t.rejected))
  in
  let views =
    match Json.of_string_opt (Service.status_json t.service) with
    | Some v -> v
    | None -> Json.Null
  in
  Json.Obj
    [
      ("now", Json.Int (Database.now t.db));
      ("domains", Json.Int (Service.domains t.service));
      ("pending", Json.Int pending);
      ("served", Json.Int served);
      ("rejected", Json.Int rejected);
      ("views", views);
    ]

(* Try to resolve one ticket against current state; [false] = keep it
   queued (admitted, waiting for the high-water mark). *)
let step t ticket =
  match ticket.request with
  | Protocol.Status ->
      resolve ticket (Protocol.Status_report (status t));
      true
  | (Protocol.Read_at { view; _ } | Protocol.Read_fresh view) as request -> (
      match Service.controller t.service view with
      | exception Not_found ->
          reject t ticket (Protocol.Unknown_view view);
          true
      | ctl -> (
          match request with
          | Protocol.Read_fresh _ ->
              serve t ticket ~view ~ctl ~time:(Controller.hwm ctl);
              true
          | Protocol.Read_at { time; _ } ->
              let now = Database.now t.db in
              let horizon = Controller.horizon ctl in
              if time > now then begin
                reject t ticket ~stats:(Controller.stats ctl)
                  (Protocol.Too_new { requested = time; now });
                true
              end
              else if time < horizon then begin
                reject t ticket ~stats:(Controller.stats ctl)
                  (Protocol.Gc_horizon { requested = time; horizon });
                true
              end
              else if time <= Controller.hwm ctl then begin
                serve t ticket ~view ~ctl ~time;
                true
              end
              else false
          | _ -> assert false))
  | _ -> assert false

let pump t =
  let batch =
    Mutex.protect t.mutex (fun () ->
        let oldest_first = List.rev t.pending in
        t.pending <- [];
        oldest_first)
  in
  let still_pending, resolved =
    List.fold_left
      (fun (pending, resolved) ticket ->
        if step t ticket then (pending, resolved + 1)
        else (ticket :: pending, resolved))
      ([], 0) batch
  in
  (* Re-queue survivors (they are newest-first again, as [pending] expects). *)
  Mutex.protect t.mutex (fun () -> t.pending <- still_pending @ t.pending);
  resolved

let close t =
  let orphans =
    Mutex.protect t.mutex (fun () ->
        t.accepting <- false;
        let orphans = t.pending in
        t.pending <- [];
        t.rejected <- t.rejected + List.length orphans;
        orphans)
  in
  List.iter
    (fun ticket -> resolve ticket (Protocol.Rejected Protocol.Shutting_down))
    orphans
