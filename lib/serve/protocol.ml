(** The rolld wire protocol: newline-framed requests and JSON responses.

    Requests are single lines of uppercase-verb text, chosen so a human
    with [nc] can drive a server:

    {v
    READ <view> AT <t>     point-in-time read at logical time t
    READ <view> FRESH      freshest-available read (the current hwm)
    STATUS                 service-wide status (one JSON object)
    QUIT                   close this connection
    SHUTDOWN               stop the whole server (clean shutdown)
    v}

    Every response is exactly one line of JSON. Successful reads carry
    the snapshot's rows (sorted, with multiset counts), the time served,
    the view's high-water mark at serve time and the seconds the reader
    spent queued. Rejections are typed, so clients can distinguish
    "come back later" ([too_new]) from "gone forever" ([gc_horizon]).

    The codec is total in both directions — [decode_response
    (encode_response r) = Ok r] — so scripts can be written against the
    golden tests rather than the server source. *)

module Time = Roll_delta.Time
module Value = Roll_relation.Value
module Tuple = Roll_relation.Tuple

type request =
  | Read_at of { view : string; time : Time.t }
  | Read_fresh of string
  | Status
  | Quit
  | Shutdown

type reject =
  | Too_new of { requested : Time.t; now : Time.t }
      (** [t] is beyond current database time: not yet committed, so no
          amount of waiting on this server state can serve it *)
  | Gc_horizon of { requested : Time.t; horizon : Time.t }
      (** [t] predates the view's earliest reconstructible time — the
          applied delta prefix below it was garbage-collected *)
  | Unknown_view of string
  | Overloaded of { pending : int; limit : int }
      (** the admission queue is full; the read was shed *)
  | Malformed of string  (** unparsable request line *)
  | Shutting_down

type response =
  | Rows of {
      view : string;
      at : Time.t;  (** logical time of the served snapshot *)
      hwm : Time.t;  (** the view's high-water mark when served *)
      wait : float;  (** seconds the reader spent queued for freshness *)
      rows : (Tuple.t * int) list;  (** sorted by tuple, multiset counts *)
    }
  | Status_report of Json.t
  | Rejected of reject
  | Bye

(* Request lines *)

let encode_request = function
  | Read_at { view; time } -> Printf.sprintf "READ %s AT %d" view time
  | Read_fresh view -> Printf.sprintf "READ %s FRESH" view
  | Status -> "STATUS"
  | Quit -> "QUIT"
  | Shutdown -> "SHUTDOWN"

let parse_request line =
  let words =
    String.split_on_char ' ' (String.trim line)
    |> List.filter (fun w -> w <> "")
  in
  match words with
  | [ "STATUS" ] -> Ok Status
  | [ "QUIT" ] -> Ok Quit
  | [ "SHUTDOWN" ] -> Ok Shutdown
  | [ "READ"; view; "FRESH" ] -> Ok (Read_fresh view)
  | [ "READ"; view; "AT"; t ] -> (
      match int_of_string_opt t with
      | Some time -> Ok (Read_at { view; time })
      | None -> Error (Printf.sprintf "READ: %S is not a logical time" t))
  | "READ" :: _ -> Error "usage: READ <view> AT <t> | READ <view> FRESH"
  | verb :: _ -> Error (Printf.sprintf "unknown verb %S" verb)
  | [] -> Error "empty request"

(* Values. Export.json_float prints integral floats bare (2.0 -> "2"),
   which would decode as Int and break the round-trip — so the value
   codec forces a decimal point on finite integral floats and tags the
   non-finite ones. *)

let json_of_value = function
  | Value.Null -> Json.Null
  | Value.Bool b -> Json.Bool b
  | Value.Int i -> Json.Int i
  | Value.Float f ->
      if Float.is_finite f then Json.Float f
      else Json.Obj [ ("float", Json.Str (string_of_float f)) ]
  | Value.Str s -> Json.Str s

let value_of_json = function
  | Json.Null -> Ok Value.Null
  | Json.Bool b -> Ok (Value.Bool b)
  | Json.Int i -> Ok (Value.Int i)
  | Json.Float f -> Ok (Value.Float f)
  | Json.Str s -> Ok (Value.Str s)
  | Json.Obj [ ("float", Json.Str s) ] -> (
      match float_of_string_opt s with
      | Some f -> Ok (Value.Float f)
      | None -> Error "bad tagged float")
  | _ -> Error "bad value"

let json_of_row (tuple, count) =
  Json.List
    [
      Json.Int count;
      Json.List (Array.to_list tuple |> List.map json_of_value);
    ]

let row_of_json = function
  | Json.List [ Json.Int count; Json.List vs ] ->
      let rec values acc = function
        | [] -> Ok (List.rev acc)
        | v :: rest -> (
            match value_of_json v with
            | Ok value -> values (value :: acc) rest
            | Error _ as e -> e)
      in
      Result.map (fun vs -> (Tuple.make vs, count)) (values [] vs)
  | _ -> Error "bad row"

(* Responses *)

let reject_code = function
  | Too_new _ -> "too_new"
  | Gc_horizon _ -> "gc_horizon"
  | Unknown_view _ -> "unknown_view"
  | Overloaded _ -> "overloaded"
  | Malformed _ -> "malformed"
  | Shutting_down -> "shutting_down"

let reject_message = function
  | Too_new { requested; now } ->
      Printf.sprintf "time %d is beyond current time %d" requested now
  | Gc_horizon { requested; horizon } ->
      Printf.sprintf "time %d predates the gc horizon %d" requested horizon
  | Unknown_view v -> Printf.sprintf "no view named %S is registered" v
  | Overloaded { pending; limit } ->
      Printf.sprintf "%d reads pending (limit %d)" pending limit
  | Malformed m -> m
  | Shutting_down -> "server is shutting down"

let json_of_reject reject =
  let detail =
    match reject with
    | Too_new { requested; now } ->
        [ ("requested", Json.Int requested); ("now", Json.Int now) ]
    | Gc_horizon { requested; horizon } ->
        [ ("requested", Json.Int requested); ("horizon", Json.Int horizon) ]
    | Unknown_view v -> [ ("view", Json.Str v) ]
    | Overloaded { pending; limit } ->
        [ ("pending", Json.Int pending); ("limit", Json.Int limit) ]
    | Malformed m -> [ ("detail", Json.Str m) ]
    | Shutting_down -> []
  in
  Json.Obj
    ([
       ("ok", Json.Bool false);
       ("error", Json.Str (reject_code reject));
       ("message", Json.Str (reject_message reject));
     ]
    @ detail)

let json_of_response = function
  | Rows { view; at; hwm; wait; rows } ->
      Json.Obj
        [
          ("ok", Json.Bool true);
          ("kind", Json.Str "rows");
          ("view", Json.Str view);
          ("at", Json.Int at);
          ("hwm", Json.Int hwm);
          ("wait", Json.Float wait);
          ("rows", Json.List (List.map json_of_row rows));
        ]
  | Status_report payload ->
      Json.Obj
        [
          ("ok", Json.Bool true);
          ("kind", Json.Str "status");
          ("report", payload);
        ]
  | Rejected reject -> json_of_reject reject
  | Bye -> Json.Obj [ ("ok", Json.Bool true); ("kind", Json.Str "bye") ]

let encode_response r = Json.to_string (json_of_response r)

let response_of_json json =
  let ( let* ) = Result.bind in
  let field name conv =
    match Option.bind (Json.member name json) conv with
    | Some v -> Ok v
    | None -> Error (Printf.sprintf "missing or bad field %S" name)
  in
  match Json.member "ok" json with
  | Some (Json.Bool true) -> (
      let* kind = field "kind" Json.to_str in
      match kind with
      | "bye" -> Ok Bye
      | "status" -> (
          match Json.member "report" json with
          | Some payload -> Ok (Status_report payload)
          | None -> Error "missing field \"report\"")
      | "rows" ->
          let* view = field "view" Json.to_str in
          let* at = field "at" Json.to_int in
          let* hwm = field "hwm" Json.to_int in
          let* wait = field "wait" Json.to_float in
          let* row_list = field "rows" Json.to_list in
          let rec rows acc = function
            | [] -> Ok (List.rev acc)
            | r :: rest ->
                let* row = row_of_json r in
                rows (row :: acc) rest
          in
          let* rows = rows [] row_list in
          Ok (Rows { view; at; hwm; wait; rows })
      | k -> Error (Printf.sprintf "unknown response kind %S" k))
  | Some (Json.Bool false) -> (
      let* code = field "error" Json.to_str in
      let int name = field name Json.to_int in
      let str name = field name Json.to_str in
      let* reject =
        match code with
        | "too_new" ->
            let* requested = int "requested" in
            let* now = int "now" in
            Ok (Too_new { requested; now })
        | "gc_horizon" ->
            let* requested = int "requested" in
            let* horizon = int "horizon" in
            Ok (Gc_horizon { requested; horizon })
        | "unknown_view" ->
            let* view = str "view" in
            Ok (Unknown_view view)
        | "overloaded" ->
            let* pending = int "pending" in
            let* limit = int "limit" in
            Ok (Overloaded { pending; limit })
        | "malformed" ->
            let* detail = str "detail" in
            Ok (Malformed detail)
        | "shutting_down" -> Ok Shutting_down
        | c -> Error (Printf.sprintf "unknown error code %S" c)
      in
      Ok (Rejected reject)
    )
  | _ -> Error "missing field \"ok\""

let decode_response line =
  match Json.of_string_opt line with
  | None -> Error "response is not JSON"
  | Some json -> response_of_json json
