(** A blocking line-protocol client for rolld — what [rolld client], the
    CI smoke session and the socket tests script against. *)

type t = { fd : Unix.file_descr; ic : in_channel; oc : out_channel }

let connect path =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  (try Unix.connect fd (Unix.ADDR_UNIX path)
   with e ->
     (try Unix.close fd with Unix.Unix_error _ -> ());
     raise e);
  {
    fd;
    ic = Unix.in_channel_of_descr fd;
    oc = Unix.out_channel_of_descr fd;
  }

(** Retry [connect] until the server has bound its socket. *)
let connect_retry ?(attempts = 50) ?(delay = 0.1) path =
  let rec go n =
    match connect path with
    | conn -> conn
    | exception (Unix.Unix_error _ as e) ->
        if n <= 1 then raise e
        else begin
          Thread.delay delay;
          go (n - 1)
        end
  in
  go attempts

let send_line t line =
  output_string t.oc line;
  output_char t.oc '\n';
  flush t.oc

let recv_line t = input_line t.ic

(** One request/response exchange. [Error] is a transport or codec
    failure, not a protocol-level rejection (those come back as
    [Ok (Rejected _)]). *)
let request t req =
  send_line t (Protocol.encode_request req);
  match recv_line t with
  | exception End_of_file -> Error "connection closed"
  | line -> Protocol.decode_response line

(** Send a raw line (possibly malformed, for testing the server's typed
    [malformed] rejection) and decode whatever comes back. *)
let request_raw t line =
  send_line t line;
  match recv_line t with
  | exception End_of_file -> Error "connection closed"
  | line -> Protocol.decode_response line

let close t =
  (try close_out_noerr t.oc with _ -> ());
  (try close_in_noerr t.ic with _ -> ());
  try Unix.close t.fd with Unix.Unix_error _ -> ()
