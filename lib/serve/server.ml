(** The rolld socket server: a Unix-domain listener over one {!Engine}.

    Threading model (concurrency, not parallelism — the data plane stays
    single-writer, Redis-style):

    - the {e accept thread} blocks in [accept] and spawns one thread per
      connection;
    - {e connection threads} only parse request lines, {!Engine.submit}
      tickets and block in {!Engine.await} — they never touch the
      database;
    - the {e engine thread} loops [tick (); Engine.pump] — [tick] is the
      caller's hook for applying updates and running maintenance drains,
      so every database access (writes, propagation, snapshot reads)
      happens on this one thread.

    A [SHUTDOWN] request (or {!stop}) drains cleanly: the engine thread
    rejects all queued readers with [shutting_down], the listener closes
    and every open connection is shut down so its thread unblocks. *)

module P = Protocol

type t = {
  engine : Engine.t;
  path : string;
  listen_fd : Unix.file_descr;
  tick : unit -> unit;
  tick_interval : float;
  running : bool Atomic.t;
  shutdown_flag : bool Atomic.t;
  conns_mutex : Mutex.t;
  conns : (int, Unix.file_descr) Hashtbl.t;
  mutable next_conn : int;
  mutable accept_thread : Thread.t option;
  mutable engine_thread : Thread.t option;
}

let send oc response =
  output_string oc (P.encode_response response);
  output_char oc '\n';
  flush oc

let register_conn t fd =
  Mutex.protect t.conns_mutex (fun () ->
      let id = t.next_conn in
      t.next_conn <- id + 1;
      Hashtbl.replace t.conns id fd;
      id)

let unregister_conn t id =
  Mutex.protect t.conns_mutex (fun () -> Hashtbl.remove t.conns id)

let handle_conn t fd =
  let id = register_conn t fd in
  let ic = Unix.in_channel_of_descr fd in
  let oc = Unix.out_channel_of_descr fd in
  let rec loop () =
    match input_line ic with
    | exception (End_of_file | Sys_error _) -> ()
    | line -> (
        match P.parse_request line with
        | Error msg ->
            send oc (P.Rejected (P.Malformed msg));
            loop ()
        | Ok P.Quit -> send oc P.Bye
        | Ok P.Shutdown ->
            send oc P.Bye;
            Atomic.set t.shutdown_flag true
        | Ok request ->
            let ticket = Engine.submit t.engine request in
            send oc (Engine.await ticket);
            loop ())
  in
  (try loop () with Unix.Unix_error _ -> ());
  unregister_conn t id;
  (try close_in_noerr ic with _ -> ());
  try Unix.close fd with Unix.Unix_error _ -> ()

(* Poll with a select timeout rather than blocking in accept: closing the
   listener from the engine thread does not reliably wake a thread already
   blocked in accept(2), so shutdown would hang on the join. *)
let accept_loop t =
  let rec loop () =
    if Atomic.get t.running then begin
      match Unix.select [ t.listen_fd ] [] [] 0.2 with
      | exception Unix.Unix_error _ -> if Atomic.get t.running then loop ()
      | [], _, _ -> loop ()
      | _ :: _, _, _ -> (
          match Unix.accept t.listen_fd with
          | exception Unix.Unix_error _ ->
              if Atomic.get t.running then loop ()
          | fd, _ ->
              ignore (Thread.create (fun () -> handle_conn t fd) ());
              loop ())
    end
  in
  loop ()

let engine_loop t =
  let rec loop () =
    if Atomic.get t.running then begin
      t.tick ();
      ignore (Engine.pump t.engine);
      if Atomic.get t.shutdown_flag then Atomic.set t.running false
      else begin
        if t.tick_interval > 0.0 then Thread.delay t.tick_interval;
        loop ()
      end
    end
  in
  loop ();
  (* Clean shutdown: shed queued readers, close the listener (unblocks
     the accept thread) and every open connection (unblocks its reader
     thread), then remove the socket file. *)
  Engine.close t.engine;
  (try Unix.close t.listen_fd with Unix.Unix_error _ -> ());
  Mutex.protect t.conns_mutex (fun () ->
      Hashtbl.iter
        (fun _ fd ->
          try Unix.shutdown fd Unix.SHUTDOWN_ALL
          with Unix.Unix_error _ -> ())
        t.conns);
  try Unix.unlink t.path with Unix.Unix_error _ -> ()

let start ?(tick = fun () -> ()) ?(tick_interval = 0.001) ~socket engine =
  (try Unix.unlink socket with Unix.Unix_error _ -> ());
  let listen_fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.bind listen_fd (Unix.ADDR_UNIX socket);
  Unix.listen listen_fd 64;
  let t =
    {
      engine;
      path = socket;
      listen_fd;
      tick;
      tick_interval;
      running = Atomic.make true;
      shutdown_flag = Atomic.make false;
      conns_mutex = Mutex.create ();
      conns = Hashtbl.create 16;
      next_conn = 0;
      accept_thread = None;
      engine_thread = None;
    }
  in
  t.accept_thread <- Some (Thread.create (fun () -> accept_loop t) ());
  t.engine_thread <- Some (Thread.create (fun () -> engine_loop t) ());
  t

let path t = t.path

let running t = Atomic.get t.running

let request_shutdown t = Atomic.set t.shutdown_flag true
(** Non-blocking: the engine thread notices on its next iteration. Safe
    to call from any thread, including the engine thread's own [tick]. *)

let wait t =
  Option.iter Thread.join t.engine_thread;
  Option.iter Thread.join t.accept_thread

let stop t =
  request_shutdown t;
  wait t
