(** Minimal JSON values: enough to frame the rolld wire protocol.

    The repo's exporters ({!Roll_obs.Export}) only ever print JSON; the
    serving protocol needs to read it back — clients parse responses, and
    the codec golden tests round-trip every message. This is a small
    self-contained reader/writer for the JSON subset the protocol emits
    (no unicode escapes beyond [\uXXXX] pass-through into UTF-8 is
    attempted; strings are byte sequences with the standard two-character
    escapes). *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

let rec to_buf buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f ->
      (* A codec float must reparse as Float (never Int) and must not
         lose bits, so force a decimal point at round-trip precision.
         Export.json_float is for human-facing metrics and prints
         integral floats bare. Non-finite floats have no JSON number
         form; callers encode them tagged (see Protocol.json_of_value),
         so a stray one degrades to null rather than invalid JSON. *)
      if Float.is_finite f then begin
        let s = Printf.sprintf "%.15g" f in
        let s = if float_of_string s = f then s else Printf.sprintf "%.17g" f in
        let has_point =
          String.exists (fun ch -> ch = '.' || ch = 'e' || ch = 'E') s
        in
        Buffer.add_string buf (if has_point then s else s ^ ".0")
      end
      else Buffer.add_string buf "null"
  | Str s -> Buffer.add_string buf (Roll_obs.Export.json_string s)
  | List xs ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i x ->
          if i > 0 then Buffer.add_char buf ',';
          to_buf buf x)
        xs;
      Buffer.add_char buf ']'
  | Obj fields ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char buf ',';
          Buffer.add_string buf (Roll_obs.Export.json_string k);
          Buffer.add_char buf ':';
          to_buf buf v)
        fields;
      Buffer.add_char buf '}'

let to_string t =
  let buf = Buffer.create 256 in
  to_buf buf t;
  Buffer.contents buf

exception Parse_error of string

type cursor = { s : string; mutable pos : int }

let error c msg =
  raise (Parse_error (Printf.sprintf "%s at byte %d" msg c.pos))

let peek c = if c.pos < String.length c.s then Some c.s.[c.pos] else None

let advance c = c.pos <- c.pos + 1

let rec skip_ws c =
  match peek c with
  | Some (' ' | '\t' | '\n' | '\r') ->
      advance c;
      skip_ws c
  | _ -> ()

let expect c ch =
  match peek c with
  | Some x when x = ch -> advance c
  | _ -> error c (Printf.sprintf "expected '%c'" ch)

let literal c word value =
  let n = String.length word in
  if c.pos + n <= String.length c.s && String.sub c.s c.pos n = word then (
    c.pos <- c.pos + n;
    value)
  else error c (Printf.sprintf "expected %s" word)

let parse_string c =
  expect c '"';
  let buf = Buffer.create 16 in
  let rec loop () =
    match peek c with
    | None -> error c "unterminated string"
    | Some '"' -> advance c
    | Some '\\' -> (
        advance c;
        match peek c with
        | Some ('"' as ch) | Some ('\\' as ch) | Some ('/' as ch) ->
            Buffer.add_char buf ch;
            advance c;
            loop ()
        | Some 'n' ->
            Buffer.add_char buf '\n';
            advance c;
            loop ()
        | Some 't' ->
            Buffer.add_char buf '\t';
            advance c;
            loop ()
        | Some 'r' ->
            Buffer.add_char buf '\r';
            advance c;
            loop ()
        | Some 'b' ->
            Buffer.add_char buf '\b';
            advance c;
            loop ()
        | Some 'f' ->
            Buffer.add_char buf '\012';
            advance c;
            loop ()
        | Some 'u' ->
            advance c;
            if c.pos + 4 > String.length c.s then error c "truncated \\u"
            else begin
              let code =
                try int_of_string ("0x" ^ String.sub c.s c.pos 4)
                with _ -> error c "bad \\u escape"
              in
              c.pos <- c.pos + 4;
              (* UTF-8 encode the code point (BMP only, matching the
                 escapes the printer emits for control characters). *)
              if code < 0x80 then Buffer.add_char buf (Char.chr code)
              else if code < 0x800 then begin
                Buffer.add_char buf (Char.chr (0xC0 lor (code lsr 6)));
                Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
              end
              else begin
                Buffer.add_char buf (Char.chr (0xE0 lor (code lsr 12)));
                Buffer.add_char buf
                  (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
                Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
              end;
              loop ()
            end
        | _ -> error c "bad escape")
    | Some ch ->
        Buffer.add_char buf ch;
        advance c;
        loop ()
  in
  loop ();
  Buffer.contents buf

let parse_number c =
  let start = c.pos in
  let is_float = ref false in
  let rec loop () =
    match peek c with
    | Some ('0' .. '9' | '-' | '+') ->
        advance c;
        loop ()
    | Some ('.' | 'e' | 'E') ->
        is_float := true;
        advance c;
        loop ()
    | _ -> ()
  in
  loop ();
  let text = String.sub c.s start (c.pos - start) in
  if !is_float then
    match float_of_string_opt text with
    | Some f -> Float f
    | None -> error c "bad number"
  else
    match int_of_string_opt text with
    | Some i -> Int i
    | None -> (
        match float_of_string_opt text with
        | Some f -> Float f
        | None -> error c "bad number")

let rec parse_value c =
  skip_ws c;
  match peek c with
  | None -> error c "unexpected end of input"
  | Some 'n' -> literal c "null" Null
  | Some 't' -> literal c "true" (Bool true)
  | Some 'f' -> literal c "false" (Bool false)
  | Some '"' -> Str (parse_string c)
  | Some '[' ->
      advance c;
      skip_ws c;
      if peek c = Some ']' then (
        advance c;
        List [])
      else
        let rec items acc =
          let v = parse_value c in
          skip_ws c;
          match peek c with
          | Some ',' ->
              advance c;
              items (v :: acc)
          | Some ']' ->
              advance c;
              List.rev (v :: acc)
          | _ -> error c "expected ',' or ']'"
        in
        List (items [])
  | Some '{' ->
      advance c;
      skip_ws c;
      if peek c = Some '}' then (
        advance c;
        Obj [])
      else
        let field () =
          skip_ws c;
          let k = parse_string c in
          skip_ws c;
          expect c ':';
          let v = parse_value c in
          (k, v)
        in
        let rec fields acc =
          let kv = field () in
          skip_ws c;
          match peek c with
          | Some ',' ->
              advance c;
              fields (kv :: acc)
          | Some '}' ->
              advance c;
              List.rev (kv :: acc)
          | _ -> error c "expected ',' or '}'"
        in
        Obj (fields [])
  | Some ('-' | '0' .. '9') -> parse_number c
  | Some ch -> error c (Printf.sprintf "unexpected '%c'" ch)

let of_string s =
  let c = { s; pos = 0 } in
  let v = parse_value c in
  skip_ws c;
  if c.pos <> String.length s then error c "trailing garbage";
  v

let of_string_opt s = try Some (of_string s) with Parse_error _ -> None

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | _ -> None

let to_int = function Int i -> Some i | _ -> None

let to_float = function
  | Float f -> Some f
  | Int i -> Some (float_of_int i)
  | _ -> None

let to_str = function Str s -> Some s | _ -> None

let to_list = function List xs -> Some xs | _ -> None
