(** Fault injection: named crash/error points on the maintenance hot paths.

    Every process of the reproduction (capture, propagation, apply,
    checkpointing, WAL persistence) calls {!hit} at its named fault points.
    A disabled instance ({!none}, the default everywhere) makes those calls
    free; an enabled one counts every visit and, depending on its rules,
    raises at a chosen visit — either {!Crash}, modelling the process dying
    mid-step (not handled anywhere; the test harness catches it at the top
    and "restarts" from durable state), or {!Transient}, modelling a failed
    maintenance transaction that the retry machinery ({!Retry},
    [Controller.propagate_step_reliable]) may re-attempt.

    Determinism: [Crash_at]/[Transient_at] rules fire on exact visit
    indices; the random rules draw from a {!Prng} seeded at {!create}. A
    profiling pass with {!observer} enumerates every reachable
    (point, visit-count) pair via {!sites}, so a harness can then
    systematically crash at each one. *)

exception Crash of string * int
(** [(point, hit)]: the process died at the [hit]-th visit of [point]. *)

exception Transient of string * int
(** [(point, hit)]: a retryable step failure at the [hit]-th visit. *)

type rule =
  | Crash_at of { point : string; hit : int }
      (** Crash on exactly the [hit]-th visit (1-based) of [point]. *)
  | Transient_at of { point : string; first : int; failures : int }
      (** Visits [first .. first+failures-1] of [point] raise {!Transient};
          later visits succeed — the shape retry tests need. *)
  | Crash_random of { p : float }  (** Each visit of any point crashes with
          probability [p]. *)
  | Transient_random of { p : float }

type t

val none : t
(** The shared disabled instance: {!hit} is a no-op, nothing is counted. *)

val create : ?seed:int -> rules:rule list -> unit -> t
(** @raise Invalid_argument if random rules are given without [?seed]. *)

val observer : unit -> t
(** Counts visits without ever raising — the profiling pass. *)

val crash_at : string -> hit:int -> t
(** [crash_at point ~hit] = [create ~rules:[Crash_at {point; hit}] ()]. *)

val transient_at : string -> hit:int -> failures:int -> t

val hit : t -> string -> unit
(** Visit a fault point. @raise Crash or @raise Transient per the rules. *)

val count : t -> string -> int
(** Visits of one point so far. *)

val sites : t -> (string * int) list
(** Every point visited with its visit count, sorted by name. *)

val total : t -> int

val injected : t -> int
(** How many faults this instance has raised. *)

val last_injected : t -> (string * int) option

val reset : t -> unit

val pp : Format.formatter -> t -> unit
