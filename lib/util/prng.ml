type t = Random.State.t

let create ~seed = Random.State.make [| seed; 0x5eed; seed lxor 0x9e3779b9 |]

let int t n = Random.State.int t n

let int_in t ~lo ~hi =
  if hi < lo then invalid_arg "Prng.int_in";
  lo + Random.State.int t (hi - lo + 1)

let float t x = Random.State.float t x

let bool t = Random.State.bool t

let chance t p = Random.State.float t 1.0 < p

let pick t arr =
  if Array.length arr = 0 then invalid_arg "Prng.pick";
  arr.(Random.State.int t (Array.length arr))

let shuffle t arr =
  for i = Array.length arr - 1 downto 1 do
    let j = Random.State.int t (i + 1) in
    let x = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- x
  done

let split t = create ~seed:(Random.State.bits t)

(* Derive the seeds first, then build the generators: the derivation order
   is the array order, so stream k is the same whether or not streams
   0..k-1 are ever used. *)
let split_n t n =
  if n < 0 then invalid_arg "Prng.split_n";
  let seeds = Array.init n (fun _ -> Random.State.bits t) in
  Array.map (fun seed -> create ~seed) seeds
