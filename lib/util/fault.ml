exception Crash of string * int

exception Transient of string * int

type rule =
  | Crash_at of { point : string; hit : int }
  | Transient_at of { point : string; first : int; failures : int }
  | Crash_random of { p : float }
  | Transient_random of { p : float }

type t = {
  enabled : bool;
  rules : rule list;
  prng : Prng.t option;
  counts : (string, int ref) Hashtbl.t;
  mutable total : int;
  mutable injected : int;
  mutable last_injected : (string * int) option;
}

let none =
  {
    enabled = false;
    rules = [];
    prng = None;
    counts = Hashtbl.create 1;
    total = 0;
    injected = 0;
    last_injected = None;
  }

let create ?seed ~rules () =
  let needs_prng =
    List.exists
      (function
        | Crash_random _ | Transient_random _ -> true
        | Crash_at _ | Transient_at _ -> false)
      rules
  in
  let prng =
    match (needs_prng, seed) with
    | false, _ -> None
    | true, Some seed -> Some (Prng.create ~seed)
    | true, None -> invalid_arg "Fault.create: random rules require ~seed"
  in
  {
    enabled = true;
    rules;
    prng;
    counts = Hashtbl.create 16;
    total = 0;
    injected = 0;
    last_injected = None;
  }

let observer () = create ~rules:[] ()

let crash_at point ~hit = create ~rules:[ Crash_at { point; hit } ] ()

let transient_at point ~hit ~failures =
  create ~rules:[ Transient_at { point; first = hit; failures } ] ()

let hit t point =
  if t.enabled then begin
    let count =
      match Hashtbl.find_opt t.counts point with
      | Some r ->
          incr r;
          !r
      | None ->
          Hashtbl.add t.counts point (ref 1);
          1
    in
    t.total <- t.total + 1;
    let inject exn =
      t.injected <- t.injected + 1;
      t.last_injected <- Some (point, count);
      raise exn
    in
    List.iter
      (fun rule ->
        match rule with
        | Crash_at r ->
            if String.equal r.point point && r.hit = count then
              inject (Crash (point, count))
        | Transient_at r ->
            if
              String.equal r.point point && count >= r.first
              && count < r.first + r.failures
            then inject (Transient (point, count))
        | Crash_random { p } ->
            if Prng.chance (Option.get t.prng) p then inject (Crash (point, count))
        | Transient_random { p } ->
            if Prng.chance (Option.get t.prng) p then
              inject (Transient (point, count)))
      t.rules
  end

let count t point =
  match Hashtbl.find_opt t.counts point with Some r -> !r | None -> 0

let sites t =
  Hashtbl.fold (fun point r acc -> (point, !r) :: acc) t.counts []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let total t = t.total

let injected t = t.injected

let last_injected t = t.last_injected

let reset t =
  if t.enabled then begin
    Hashtbl.reset t.counts;
    t.total <- 0;
    t.injected <- 0;
    t.last_injected <- None
  end

let pp ppf t =
  if not t.enabled then Format.fprintf ppf "(faults disabled)"
  else begin
    Format.fprintf ppf "@[<v>";
    List.iter
      (fun (point, n) -> Format.fprintf ppf "%s: %d@," point n)
      (sites t);
    Format.fprintf ppf "total=%d injected=%d@]" t.total t.injected
  end
