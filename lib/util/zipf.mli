(** Zipf-distributed sampling over [\[0, n)].

    Used by the workload generators to skew key popularity: a handful of
    dimension keys account for most fact-table references, which is the
    star-schema shape the paper's prose motivates. *)

type t

val create : n:int -> theta:float -> t
(** [create ~n ~theta] prepares a sampler over [\[0, n)] with skew parameter
    [theta] ([theta = 0.] is uniform; larger is more skewed). The cumulative
    distribution is precomputed in O(n).
    @raise Invalid_argument if [n <= 0], or if [theta] is negative or
    non-finite (NaN/infinite weights would otherwise poison the CDF and
    make {!sample} loop on garbage). *)

val sample : t -> Prng.t -> int

val n : t -> int
