(* Fixed worker-domain pool. One mailbox per worker: the caller installs a
   batch closure and signals; the worker runs it and signals completion by
   clearing the mailbox. [map] is a full barrier, so a wave's jobs never
   overlap the caller's sequential sections. *)

let require_ocaml5 () =
  let major =
    match String.split_on_char '.' Sys.ocaml_version with
    | major :: _ -> ( try int_of_string major with Failure _ -> 0)
    | [] -> 0
  in
  if major < 5 then
    failwith
      (Printf.sprintf
         "rolling_ivm: domain-parallel maintenance needs OCaml >= 5.1 \
          (running under %s); rebuild with an OCaml 5 switch or run with \
          domains=1 semantics via the serial entry points"
         Sys.ocaml_version)

type mailbox = {
  mutex : Mutex.t;
  cond : Condition.t;
  mutable job : (unit -> unit) option;
  mutable stop : bool;
}

type t = {
  streams : Prng.t array;
  workers : mailbox array;  (** slots 1..n-1; slot 0 is the caller *)
  handles : unit Domain.t array;
  mutable alive : bool;
}

let worker_loop (box : mailbox) =
  let rec loop () =
    Mutex.lock box.mutex;
    while box.job = None && not box.stop do
      Condition.wait box.cond box.mutex
    done;
    let job = box.job in
    let stop = box.stop && job = None in
    Mutex.unlock box.mutex;
    match job with
    | Some f ->
        (* Batch closures trap their own exceptions into result cells, so
           a worker never dies to a job failure. *)
        f ();
        Mutex.lock box.mutex;
        box.job <- None;
        Condition.broadcast box.cond;
        Mutex.unlock box.mutex;
        loop ()
    | None -> if not stop then loop ()
  in
  loop ()

let create ?(seed = 0) ~domains () =
  require_ocaml5 ();
  if domains <= 0 then invalid_arg "Dpool.create: domains must be positive";
  let root = Prng.create ~seed in
  let streams = Prng.split_n root domains in
  let workers =
    Array.init (domains - 1) (fun _ ->
        {
          mutex = Mutex.create ();
          cond = Condition.create ();
          job = None;
          stop = false;
        })
  in
  let handles =
    Array.map (fun box -> Domain.spawn (fun () -> worker_loop box)) workers
  in
  let t = { streams; workers; handles; alive = true } in
  at_exit (fun () ->
      (* [shutdown] below; referencing it before its definition would need
         recursion, so inline the guard. *)
      if t.alive then begin
        t.alive <- false;
        Array.iter
          (fun box ->
            Mutex.lock box.mutex;
            box.stop <- true;
            Condition.broadcast box.cond;
            Mutex.unlock box.mutex)
          t.workers;
        Array.iter Domain.join t.handles
      end);
  t

let size t = Array.length t.workers + 1

let prng t slot =
  if slot < 0 || slot >= size t then invalid_arg "Dpool.prng: slot out of range";
  t.streams.(slot)

let submit (box : mailbox) f =
  Mutex.lock box.mutex;
  box.job <- Some f;
  Condition.broadcast box.cond;
  Mutex.unlock box.mutex

let await (box : mailbox) =
  Mutex.lock box.mutex;
  while box.job <> None do
    Condition.wait box.cond box.mutex
  done;
  Mutex.unlock box.mutex

let map t jobs =
  if not t.alive then invalid_arg "Dpool.map: pool is shut down";
  let n = size t in
  let count = Array.length jobs in
  let results = Array.make count (Error Exit) in
  let run_slot slot () =
    let k = ref slot in
    while !k < count do
      let i = !k in
      (results.(i) <-
         (match jobs.(i) i with v -> Ok v | exception exn -> Error exn));
      k := !k + n
    done
  in
  (* Dispatch worker slots first, run the caller's share, then join. *)
  let used = min (max 0 (count - 1)) (n - 1) in
  for w = 1 to used do
    submit t.workers.(w - 1) (run_slot w)
  done;
  run_slot 0 ();
  for w = 1 to used do
    await t.workers.(w - 1)
  done;
  results

let shutdown t =
  if t.alive then begin
    t.alive <- false;
    Array.iter
      (fun box ->
        Mutex.lock box.mutex;
        box.stop <- true;
        Condition.broadcast box.cond;
        Mutex.unlock box.mutex)
      t.workers;
    Array.iter Domain.join t.handles
  end
