(** Deterministic pseudo-random helpers.

    Thin wrapper around [Random.State] so that every generator in the
    repository is seeded explicitly; benches and tests are reproducible. *)

type t

val create : seed:int -> t

val int : t -> int -> int
(** [int t n] is uniform in [\[0, n)]. [n] must be positive. *)

val int_in : t -> lo:int -> hi:int -> int
(** [int_in t ~lo ~hi] is uniform in [\[lo, hi\]] (inclusive). *)

val float : t -> float -> float

val bool : t -> bool

val chance : t -> float -> bool
(** [chance t p] is true with probability [p]. *)

val pick : t -> 'a array -> 'a
(** [pick t arr] is a uniformly random element. [arr] must be non-empty. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher-Yates shuffle. *)

val split : t -> t
(** [split t] is a new generator seeded from [t], advancing [t]. *)

val split_n : t -> int -> t array
(** [split_n t n] is [n] independent generators, each seeded
    deterministically from [t] (advancing [t] by [n] draws). The intended
    use is one stream per domain: the streams are fixed by [t]'s state at
    the split point alone, so concurrent consumers stay seed-deterministic
    without sharing a [Random.State] across domains. *)
