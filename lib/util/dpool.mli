(** Fixed pool of worker domains for parallel maintenance waves.

    A pool of size [n] owns [n - 1] long-lived worker domains; the caller
    acts as slot 0. {!map} runs an array of jobs across the pool — job [k]
    on slot [k mod n] — and joins before returning, so the caller knows
    every job has finished (and every worker is idle) when it resumes.
    That barrier is what makes the maintenance wave protocol safe: shared
    state touched by jobs needs no synchronization with the caller outside
    the wave.

    Each slot additionally carries its own deterministic {!Prng} stream,
    derived by {!Prng.split_n} from the pool seed — no [Random.State] is
    ever shared across domains.

    Requires OCaml 5.x at runtime; {!create} fails fast with a clear error
    otherwise (the [dune-project] lower bound enforces this at build
    time). *)

type t

val create : ?seed:int -> domains:int -> unit -> t
(** A pool of [domains] slots ([domains - 1] spawned worker domains; a
    1-domain pool spawns nothing and {!map} degenerates to a sequential
    loop on the caller). [seed] (default 0) roots the per-slot PRNG
    streams.
    @raise Invalid_argument if [domains] is not positive.
    @raise Failure on an OCaml runtime older than 5. *)

val size : t -> int
(** Number of slots, including the caller's slot 0. *)

val prng : t -> int -> Prng.t
(** The slot's private deterministic stream.
    @raise Invalid_argument on an out-of-range slot. *)

val map : t -> (int -> 'a) array -> ('a, exn) result array
(** [map t jobs] runs [jobs.(k) k] on slot [k mod size t] and waits for
    all of them. Jobs assigned to the same slot run sequentially in index
    order; slot-0 jobs run on the caller. A raising job yields [Error]
    in its result cell without disturbing the others.
    @raise Invalid_argument if called while the pool is shut down. *)

val shutdown : t -> unit
(** Join and release the worker domains. Idempotent; the pool also shuts
    itself down [at_exit]. *)
