type t = { cdf : float array }

let create ~n ~theta =
  if n <= 0 then
    invalid_arg (Printf.sprintf "Zipf.create: n must be positive (got %d)" n);
  if not (Float.is_finite theta) || theta < 0.0 then
    invalid_arg
      (Printf.sprintf "Zipf.create: theta must be finite and >= 0 (got %g)"
         theta);
  let weights = Array.init n (fun i -> 1.0 /. (float_of_int (i + 1) ** theta)) in
  let total = Array.fold_left ( +. ) 0.0 weights in
  let cdf = Array.make n 0.0 in
  let acc = ref 0.0 in
  for i = 0 to n - 1 do
    acc := !acc +. (weights.(i) /. total);
    cdf.(i) <- !acc
  done;
  cdf.(n - 1) <- 1.0;
  { cdf }

let sample t rng =
  let u = Prng.float rng 1.0 in
  (* Smallest index whose cumulative probability covers [u]. *)
  let lo = ref 0 and hi = ref (Array.length t.cdf - 1) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if t.cdf.(mid) < u then lo := mid + 1 else hi := mid
  done;
  !lo

let n t = Array.length t.cdf
