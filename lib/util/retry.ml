type policy = {
  max_attempts : int;
  base_delay : float;
  multiplier : float;
  max_delay : float;
}

let default =
  { max_attempts = 4; base_delay = 0.01; multiplier = 2.0; max_delay = 1.0 }

let policy ?(max_attempts = default.max_attempts)
    ?(base_delay = default.base_delay) ?(multiplier = default.multiplier)
    ?(max_delay = default.max_delay) () =
  if max_attempts < 1 then invalid_arg "Retry.policy: max_attempts must be >= 1";
  if base_delay < 0.0 || max_delay < 0.0 || multiplier < 1.0 then
    invalid_arg "Retry.policy: negative delay or multiplier < 1";
  { max_attempts; base_delay; multiplier; max_delay }

let delay p ~attempt =
  if attempt < 1 then invalid_arg "Retry.delay: attempt is 1-based";
  Float.min p.max_delay
    (p.base_delay *. (p.multiplier ** float_of_int (attempt - 1)))

let schedule p = List.init (p.max_attempts - 1) (fun i -> delay p ~attempt:(i + 1))

type failure = { point : string; hit : int; attempts : int }

let run p ~sleep ?(on_retry = fun ~attempt:_ ~delay:_ -> ()) f =
  let rec go attempt =
    match f () with
    | v -> Ok v
    | exception Fault.Transient (point, hit) ->
        if attempt >= p.max_attempts then Error { point; hit; attempts = attempt }
        else begin
          let d = delay p ~attempt in
          on_retry ~attempt ~delay:d;
          sleep d;
          go (attempt + 1)
        end
  in
  go 1
