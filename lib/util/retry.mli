(** Bounded retry with exponential backoff for transient step failures.

    Propagation runs as many small transactions, so any one of them can
    fail transiently (deadlock victim, lock timeout); the right response is
    to retry the step a bounded number of times with growing delays, then
    surface a typed permanent failure. Only {!Fault.Transient} is treated
    as retryable — a {!Fault.Crash} (process death) and real programming
    errors propagate untouched.

    The sleep function is injected so tests can run the schedule under a
    fake clock and the service can advance the simulated wall clock. *)

type policy = {
  max_attempts : int;  (** total attempts including the first (>= 1) *)
  base_delay : float;  (** delay after the first failure, seconds *)
  multiplier : float;  (** delay growth factor per failure (>= 1) *)
  max_delay : float;  (** delay ceiling *)
}

val default : policy
(** 4 attempts, 10 ms doubling, capped at 1 s. *)

val policy :
  ?max_attempts:int ->
  ?base_delay:float ->
  ?multiplier:float ->
  ?max_delay:float ->
  unit ->
  policy
(** @raise Invalid_argument on non-positive attempts, negative delays or a
    multiplier below 1. *)

val delay : policy -> attempt:int -> float
(** Backoff slept after the [attempt]-th failed attempt (1-based):
    [min max_delay (base_delay *. multiplier^(attempt-1))]. *)

val schedule : policy -> float list
(** The full deterministic backoff schedule: delays slept between the
    [max_attempts] attempts ([max_attempts - 1] entries). *)

type failure = {
  point : string;  (** fault point that kept failing *)
  hit : int;  (** its visit index at the last failure *)
  attempts : int;  (** attempts consumed (= [max_attempts]) *)
}

val run :
  policy ->
  sleep:(float -> unit) ->
  ?on_retry:(attempt:int -> delay:float -> unit) ->
  (unit -> 'a) ->
  ('a, failure) result
(** [run p ~sleep f] calls [f] up to [max_attempts] times, sleeping the
    backoff schedule between attempts; [on_retry] fires before each sleep.
    Catches only {!Fault.Transient}; everything else propagates. *)
