(** Multiset relations with signed counts.

    A relation maps tuples to non-zero integer counts. Positive counts are
    multiset multiplicities; negative counts arise in deltas and in the
    negation operator [-R] of the paper (Section 2). The net-effect operator
    φ of Definition 4.1 corresponds to this canonical representation: adding
    a tuple with count 0 leaves the relation unchanged, and counts that
    cancel remove the tuple. *)

type t

val create : Schema.t -> t

val schema : t -> Schema.t

val add : t -> Tuple.t -> int -> unit
(** [add r tuple count] adds [count] (possibly negative) copies of [tuple].
    Entries whose accumulated count reaches zero are removed. Adding zero is
    a no-op. @raise Invalid_argument if the tuple does not conform to the
    schema. *)

val count : t -> Tuple.t -> int
(** 0 when absent. *)

val mem : t -> Tuple.t -> bool

val distinct_count : t -> int
(** Number of distinct tuples present (with non-zero count). *)

val total_count : t -> int
(** Sum of all counts (can be negative for delta-like relations). *)

val is_empty : t -> bool

val iter : (Tuple.t -> int -> unit) -> t -> unit

val fold : (Tuple.t -> int -> 'a -> 'a) -> t -> 'a -> 'a

val to_list : t -> (Tuple.t * int) list
(** Sorted by tuple, for deterministic output. *)

val to_seq : t -> (Tuple.t * int) Seq.t
(** Lazy, unordered. The relation must not be mutated while the sequence is
    being consumed. *)

val of_list : Schema.t -> (Tuple.t * int) list -> t

val copy : t -> t

val equal : t -> t -> bool
(** Net-effect equality: same tuples with same non-zero counts. *)

val union : t -> t -> t
(** Multiset union [R + S] (counts add). Schemas must have equal arity. *)

val negate : t -> t
(** [-R]: flips the sign of every count. *)

val diff : t -> t -> t
(** [R - S = R + (-S)]. *)

val select : (Tuple.t -> bool) -> t -> t

val project : t -> int list -> t
(** Multiset projection: counts of tuples that collapse together add up. *)

val product : pred:(Tuple.t -> Tuple.t -> bool) -> t -> t -> t
(** [product ~pred r s] is the theta-join: concatenated tuples that satisfy
    [pred], with count = product of input counts. Nested-loop evaluation;
    this is the reference evaluator used by oracles, not the planner. *)

val pp : Format.formatter -> t -> unit
