type ts = int

let no_ts = max_int

type row = { tuple : Tuple.t; count : int; ts : ts }

type t = {
  next_fn : unit -> row option;
  rewind_fn : unit -> unit;
  close_fn : unit -> unit;
}

let make ?(close = fun () -> ()) ~rewind next =
  { next_fn = next; rewind_fn = rewind; close_fn = close }

let next c = c.next_fn ()

let rewind c = c.rewind_fn ()

let close c = c.close_fn ()

let of_seq producer =
  let cur = ref (producer ()) in
  {
    next_fn =
      (fun () ->
        match !cur () with
        | Seq.Nil -> None
        | Seq.Cons (r, rest) ->
            cur := rest;
            Some r);
    rewind_fn = (fun () -> cur := producer ());
    close_fn = (fun () -> cur := Seq.empty);
  }

let empty () = of_seq (fun () -> Seq.empty)

let of_list rows = of_seq (fun () -> List.to_seq rows)

let of_array rows = of_seq (fun () -> Array.to_seq rows)

let of_relation ?(ts = no_ts) r =
  of_seq (fun () ->
      Seq.map (fun (tuple, count) -> { tuple; count; ts }) (Relation.to_seq r))

let select pred c =
  let rec pull () =
    match c.next_fn () with
    | None -> None
    | Some r as out -> if pred r then out else pull ()
  in
  { c with next_fn = pull }

let map f c =
  {
    c with
    next_fn = (fun () -> match c.next_fn () with None -> None | Some r -> Some (f r));
  }

let project f c = map (fun r -> { r with tuple = f r.tuple }) c

let project_columns idxs c = project (fun t -> Tuple.project t idxs) c

let merge cursors =
  let remaining = ref cursors in
  let rec pull () =
    match !remaining with
    | [] -> None
    | c :: rest -> (
        match c.next_fn () with
        | Some _ as r -> r
        | None ->
            remaining := rest;
            pull ())
  in
  {
    next_fn = pull;
    rewind_fn =
      (fun () ->
        List.iter (fun c -> c.rewind_fn ()) cursors;
        remaining := cursors);
    close_fn = (fun () -> List.iter (fun c -> c.close_fn ()) cursors);
  }

let counted hook c =
  {
    c with
    next_fn =
      (fun () ->
        match c.next_fn () with
        | None -> None
        | Some _ as r ->
            hook 1;
            r);
  }

let iter f c =
  let rec loop () =
    match c.next_fn () with
    | None -> ()
    | Some r ->
        f r;
        loop ()
  in
  loop ()

let fold f acc c =
  let acc = ref acc in
  iter (fun r -> acc := f !acc r) c;
  !acc

let to_list c = List.rev (fold (fun acc r -> r :: acc) [] c)

let length c = fold (fun n _ -> n + 1) 0 c
