(** Pull-based row cursors.

    A cursor is a resettable stream of counted, timestamped tuples — the
    unit of data flow of the execution pipeline. Base-table scans, secondary
    index probes and delta-log windows all present themselves as cursors, so
    the join operators (see [Roll_core.Exec]) compose over one interface and
    inputs are pulled lazily instead of being materialized into arrays.

    Timestamps are plain [int] commit sequence numbers; rows that carry no
    delta timestamp (base rows) use the {!no_ts} sentinel, which the
    executor's timestamp-combination rule treats as neutral and which must
    never escape into a view delta (it is mapped to the origin time at the
    pipeline boundary). *)

type ts = int

val no_ts : ts
(** Sentinel timestamp of base rows ([max_int]): neutral under the
    min-of-contributors rule. *)

type row = { tuple : Tuple.t; count : int; ts : ts }

type t

val make : ?close:(unit -> unit) -> rewind:(unit -> unit) -> (unit -> row option) -> t
(** [make ~rewind next] wraps a producer. [next] yields rows until it
    returns [None]; [rewind] restarts the stream from the beginning;
    [close] (default no-op) releases resources. *)

val next : t -> row option

val rewind : t -> unit

val close : t -> unit
(** After [close], [next] returns [None] until a [rewind]. *)

val empty : unit -> t

val of_seq : (unit -> row Seq.t) -> t
(** [of_seq producer] pulls from [producer ()]; rewinding re-invokes
    [producer], so the thunk must be replayable. *)

val of_list : row list -> t

val of_array : row array -> t

val of_relation : ?ts:ts -> Relation.t -> t
(** One row per distinct tuple with its multiset count; [ts] defaults to
    {!no_ts}. Lazy: tuples are pulled from the relation on demand. The
    relation must not be mutated while the cursor is live. *)

(** {1 Combinators} *)

val select : (row -> bool) -> t -> t
(** Rows satisfying the filter, preserving order. *)

val project : (Tuple.t -> Tuple.t) -> t -> t
(** Rewrite each row's tuple, keeping count and timestamp. *)

val project_columns : int list -> t -> t
(** Positional projection via {!Tuple.project}. *)

val map : (row -> row) -> t -> t

val merge : t list -> t
(** Sequential merge (concatenation) of several cursors into one stream;
    rewinding rewinds every input. *)

val counted : (int -> unit) -> t -> t
(** [counted hook c] invokes [hook 1] for every row pulled through — the
    instrumentation tap the executor uses for per-resource read counts. *)

(** {1 Draining} *)

val iter : (row -> unit) -> t -> unit
(** Drains from the current position; does not rewind first. *)

val fold : ('a -> row -> 'a) -> 'a -> t -> 'a

val to_list : t -> row list

val length : t -> int
(** Number of rows from the current position to exhaustion (drains the
    cursor). *)
