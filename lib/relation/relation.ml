module H = Hashtbl.Make (struct
  type t = Tuple.t

  let equal = Tuple.equal
  let hash = Tuple.hash
end)

type t = { schema : Schema.t; tbl : int H.t }

let create schema = { schema; tbl = H.create 64 }

let schema t = t.schema

let add t tuple count =
  if count <> 0 then begin
    if not (Tuple.conforms t.schema tuple) then
      invalid_arg
        (Format.asprintf "Relation.add: tuple %a does not conform to %a" Tuple.pp
           tuple Schema.pp t.schema);
    match H.find_opt t.tbl tuple with
    | None -> H.replace t.tbl tuple count
    | Some c ->
        let c' = c + count in
        if c' = 0 then H.remove t.tbl tuple else H.replace t.tbl tuple c'
  end

let count t tuple = match H.find_opt t.tbl tuple with None -> 0 | Some c -> c

let mem t tuple = H.mem t.tbl tuple

let distinct_count t = H.length t.tbl

let total_count t = H.fold (fun _ c acc -> acc + c) t.tbl 0

let is_empty t = H.length t.tbl = 0

let iter f t = H.iter f t.tbl

let fold f t acc = H.fold f t.tbl acc

let to_seq t = H.to_seq t.tbl

let to_list t =
  let items = H.fold (fun tuple c acc -> (tuple, c) :: acc) t.tbl [] in
  List.sort (fun (a, _) (b, _) -> Tuple.compare a b) items

let of_list schema items =
  let t = create schema in
  List.iter (fun (tuple, c) -> add t tuple c) items;
  t

let copy t = { schema = t.schema; tbl = H.copy t.tbl }

let equal a b =
  distinct_count a = distinct_count b
  && H.fold (fun tuple c acc -> acc && count b tuple = c) a.tbl true

let union a b =
  if Schema.arity a.schema <> Schema.arity b.schema then
    invalid_arg "Relation.union: arity mismatch";
  let r = copy a in
  iter (fun tuple c -> add r tuple c) b;
  r

let negate t =
  let r = create t.schema in
  iter (fun tuple c -> add r tuple (-c)) t;
  r

let diff a b = union a (negate b)

let select pred t =
  let r = create t.schema in
  iter (fun tuple c -> if pred tuple then add r tuple c) t;
  r

let project t idxs =
  let r = create (Schema.project t.schema idxs) in
  iter (fun tuple c -> add r (Tuple.project tuple idxs) c) t;
  r

let product ~pred a b =
  let r = create (Schema.concat a.schema b.schema) in
  iter
    (fun ta ca ->
      iter
        (fun tb cb -> if pred ta tb then add r (Tuple.concat ta tb) (ca * cb))
        b)
    a;
  r

let pp ppf t =
  Format.fprintf ppf "@[<v>";
  List.iter
    (fun (tuple, c) -> Format.fprintf ppf "%+d x %a@," c Tuple.pp tuple)
    (to_list t);
  Format.fprintf ppf "@]"
