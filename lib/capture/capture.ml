open Roll_storage
module Delta = Roll_delta.Delta
module Time = Roll_delta.Time

let log_src = Logs.Src.create "roll.capture" ~doc:"log capture (DPropR analogue)"

module Log = (val Logs.src_log log_src)

type t = {
  db : Database.t;
  deltas : (string, Delta.t) Hashtbl.t;
  uow : Uow.t;
  mutable cursor : int;  (** next WAL position to read *)
  mutable hwm : Time.t;
  mutable fault : Roll_util.Fault.t;
  mutable obs : Roll_obs.Obs.t;
}

let create db =
  {
    db;
    deltas = Hashtbl.create 8;
    uow = Uow.create ();
    cursor = 0;
    hwm = Time.origin;
    fault = Roll_util.Fault.none;
    obs = Roll_obs.Obs.disabled ();
  }

let set_fault t fault = t.fault <- fault

let set_obs t obs = t.obs <- obs

let attach t ~table =
  if Hashtbl.mem t.deltas table then
    invalid_arg ("Capture.attach: already attached: " ^ table);
  let tbl = Database.table t.db table in
  (* Refuse to attach if changes to this table are already behind the
     cursor: they would never be captured and the delta would be silently
     wrong. Logged changes the cursor has not reached yet are fine — a
     restarted capture process (cursor at 0) re-reads the whole log, which
     is exactly how crash recovery rebuilds the delta tables. *)
  let wal = Database.wal t.db in
  let missed = ref false in
  (* Positions below [Wal.first_pos] were reclaimed; their effects are in
     the applied base state, which a fresh attach starts from anyway. *)
  for pos = Wal.first_pos wal to t.cursor - 1 do
    if
      List.exists
        (fun (c : Wal.change) -> String.equal c.table table)
        (Wal.get wal pos).changes
    then missed := true
  done;
  if !missed then
    invalid_arg
      ("Capture.attach: cursor already passed logged changes of: " ^ table);
  Hashtbl.add t.deltas table (Delta.create (Table.schema tbl))

let attached t =
  Hashtbl.fold (fun name _ acc -> name :: acc) t.deltas []
  |> List.sort String.compare

let delta t ~table =
  match Hashtbl.find_opt t.deltas table with
  | Some d -> d
  | None -> raise Not_found

let window_cursor t ~table ~lo ~hi =
  if hi > t.hwm then
    invalid_arg
      (Printf.sprintf
         "Capture.window_cursor: window (%d,%d] beyond capture high-water mark %d"
         lo hi t.hwm);
  Delta.window_cursor (delta t ~table) ~lo ~hi

let uow t = t.uow

let capture_record t (record : Wal.record) =
  Roll_util.Fault.hit t.fault "capture.record";
  let relevant = ref (record.marker <> None) in
  List.iter
    (fun (c : Wal.change) ->
      match Hashtbl.find_opt t.deltas c.table with
      | None -> ()
      | Some d ->
          relevant := true;
          Delta.append d c.tuple ~count:c.count ~ts:record.csn)
    record.changes;
  if !relevant then
    Uow.record t.uow
      { Uow.txn_id = record.txn_id; csn = record.csn; wall = record.wall };
  t.hwm <- record.csn

let advance ?max_records t =
  let wal = Database.wal t.db in
  (* A reclaimed prefix can only be below every consumer's horizon, so a
     cursor inside it (fresh capture on a reopened store) skips forward:
     those records' effects are part of the base state, not the delta. *)
  if t.cursor < Wal.first_pos wal then begin
    t.cursor <- Wal.first_pos wal;
    t.hwm <- Time.max t.hwm (Wal.first_pos wal)
  end;
  let stop =
    match max_records with
    | None -> Wal.length wal
    | Some n -> min (Wal.length wal) (t.cursor + n)
  in
  let from = t.cursor in
  let loop () =
    while t.cursor < stop do
      capture_record t (Wal.get wal t.cursor);
      t.cursor <- t.cursor + 1
    done
  in
  (* Count whatever was captured even if a fault crashed the loop midway. *)
  let note () =
    if t.cursor > from then begin
      if Roll_obs.Obs.enabled t.obs then
        Roll_obs.Metrics.add
          (Roll_obs.Metrics.counter
             (Roll_obs.Obs.metrics t.obs)
             ~help:"Log records captured into delta tables"
             "roll_capture_records_total")
          (float_of_int (t.cursor - from));
      Log.debug (fun m ->
          m "captured %d records, hwm=%d lag=%d" (t.cursor - from) t.hwm
            (Wal.length wal - t.cursor))
    end
  in
  Fun.protect ~finally:note (fun () ->
      (* Idle polls (nothing past the cursor) stay span-free so traces of
         long drains are not drowned in empty capture steps. *)
      if stop > from && Roll_obs.Obs.tracing t.obs then
        Roll_obs.Trace.with_span
          (Roll_obs.Obs.trace t.obs)
          ~attrs:[ ("records", Roll_obs.Trace.Int (stop - from)) ]
          "capture.advance" loop
      else loop ())

let hwm t = t.hwm

let lag t = Wal.length (Database.wal t.db) - t.cursor

(* Read-only scan of the uncaptured WAL suffix. Freshness tests (the
   auxiliary-view substitution in the executor) need to know whether the
   table changed *at all* since a point in time; the delta only answers for
   the captured prefix, this answers for the rest. The cursor is usually at
   the log's end (capture advances before every serial query, and waves
   advance it before freezing), so the common case inspects zero records. *)
let pending_changes t ~table =
  let wal = Database.wal t.db in
  let stop = Wal.length wal in
  let rec scan pos =
    pos < stop
    && (List.exists
          (fun (c : Wal.change) -> String.equal c.table table)
          (Wal.get wal pos).changes
       || scan (pos + 1))
  in
  scan (max t.cursor (Wal.first_pos wal))
