(** Log capture: the DPropR analogue.

    A capture process owns a cursor into the database's write-ahead log.
    Advancing the cursor appends change records of {e attached} tables to
    their delta tables (Δ^R) and fills the unit-of-work table. Capture is
    asynchronous: the cursor may lag arbitrarily far behind the log tail,
    and tests inject lag deliberately. Propagation queries may only use
    delta windows that end at or before the capture high-water mark. *)

type t

val create : Roll_storage.Database.t -> t

val attach : t -> table:string -> unit
(** Start capturing changes of [table]. Must be called before the cursor
    passes any change to the table (the paper's deltas cover the view's
    whole propagation interval; attaching late would silently lose changes,
    so [attach] raises if the cursor has already read past committed
    changes to the table). Attaching a fresh capture (cursor at 0) to a
    database that already has history is allowed: advancing replays the
    whole log, which is how a restarted capture process rebuilds its delta
    tables after a crash. *)

val set_fault : t -> Roll_util.Fault.t -> unit
(** Install a fault-injection handle; the capture loop visits
    ["capture.record"] once per log record it captures. *)

val set_obs : t -> Roll_obs.Obs.t -> unit
(** Attach an observability handle. Non-empty {!advance} calls record a
    ["capture.advance"] span and bump [roll_capture_records_total]. *)

val attached : t -> string list

val delta : t -> table:string -> Roll_delta.Delta.t
(** Δ^R for an attached table. @raise Not_found otherwise. *)

val window_cursor :
  t ->
  table:string ->
  lo:Roll_delta.Time.t ->
  hi:Roll_delta.Time.t ->
  Roll_relation.Cursor.t
(** Lazy cursor over σ_{lo,hi}(Δ^R) — the captured-change source the
    execution pipeline pulls forward-query windows from.
    @raise Not_found if the table is not attached.
    @raise Invalid_argument if the window extends beyond the capture
    high-water mark (changes past [hwm t] have not been captured yet, so
    the window would silently under-report). *)

val uow : t -> Uow.t

val advance : ?max_records:int -> t -> unit
(** Read forward from the cursor, capturing at most [max_records] log
    records (all available by default). *)

val hwm : t -> Roll_delta.Time.t
(** Capture high-water mark: every transaction with CSN <= [hwm t] has been
    captured. Equals [Database.now] once capture has fully caught up. *)

val lag : t -> int
(** Number of log records not yet captured. *)

val pending_changes : t -> table:string -> bool
(** Whether any logged-but-uncaptured record (between the cursor and the
    WAL's end) changes [table]. Together with an empty delta window beyond a
    reference time this proves the table's committed state has not moved
    since that time — the freshness test behind auxiliary-view probes.
    Read-only: never advances the cursor or touches the delta tables. *)
