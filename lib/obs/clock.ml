type impl =
  | Real
  | Manual of { mutable now : float; tick : float; m : Mutex.t }

type t = { impl : impl }

let real () = { impl = Real }

let manual ?(start = 0.0) ?(tick = 0.0) () =
  if tick < 0.0 then invalid_arg "Clock.manual: negative tick";
  { impl = Manual { now = start; tick; m = Mutex.create () } }

(* Reading a manual clock advances it by [tick], so the read is a
   mutation; the mutex makes concurrent domain reads each observe a
   distinct monotone value instead of racing. *)
let now t =
  match t.impl with
  | Real -> Unix.gettimeofday ()
  | Manual m ->
      Mutex.lock m.m;
      let v = m.now in
      m.now <- m.now +. m.tick;
      Mutex.unlock m.m;
      v

let advance t dt =
  if dt < 0.0 then invalid_arg "Clock.advance: negative";
  match t.impl with
  | Real -> invalid_arg "Clock.advance: real clock"
  | Manual m ->
      Mutex.lock m.m;
      m.now <- m.now +. dt;
      Mutex.unlock m.m

let is_manual t = match t.impl with Real -> false | Manual _ -> true
