type impl =
  | Real
  | Manual of { mutable now : float; tick : float }

type t = { impl : impl }

let real () = { impl = Real }

let manual ?(start = 0.0) ?(tick = 0.0) () =
  if tick < 0.0 then invalid_arg "Clock.manual: negative tick";
  { impl = Manual { now = start; tick } }

let now t =
  match t.impl with
  | Real -> Unix.gettimeofday ()
  | Manual m ->
      let v = m.now in
      m.now <- m.now +. m.tick;
      v

let advance t dt =
  if dt < 0.0 then invalid_arg "Clock.advance: negative";
  match t.impl with
  | Real -> invalid_arg "Clock.advance: real clock"
  | Manual m -> m.now <- m.now +. dt

let is_manual t = match t.impl with Real -> false | Manual _ -> true
