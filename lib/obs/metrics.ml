type labels = (string * string) list

type kind = Counter | Gauge | Histogram

type hist = {
  bounds : float array;
  counts : int array;  (** length = Array.length bounds + 1 (the +inf bucket) *)
  mutable sum : float;
  mutable count : int;
}

type instrument = I_value of { mutable v : float } | I_hist of hist

(* Every series carries the registry mutex: instruments are handed out as
   detached records, so the update path ([add]/[set]/[observe]) can't reach
   the registry to lock it any other way. One registry-wide mutex rather
   than per-series — updates are cheap and the maintenance path touches a
   handful of series per item, so contention is not a concern, and a single
   lock keeps snapshots consistent across families. *)
type series = { s_labels : labels; inst : instrument; s_m : Mutex.t }

type family = {
  name : string;
  help : string;
  kind : kind;
  f_bounds : float array option;
  tbl : (labels, series) Hashtbl.t;
  mutable order : series list;  (** creation order, reversed *)
  f_m : Mutex.t;
}

type collector = {
  c_name : string;
  c_help : string;
  c_kind : kind;
  read : unit -> (labels * float) list;
}

type t = {
  families : (string, family) Hashtbl.t;
  mutable family_order : string list;  (** reversed *)
  mutable collectors : collector list;  (** reversed *)
  m : Mutex.t;
}

type counter = series

type gauge = series

type histogram = series

let create () =
  {
    families = Hashtbl.create 32;
    family_order = [];
    collectors = [];
    m = Mutex.create ();
  }

let locked m f =
  Mutex.lock m;
  Fun.protect ~finally:(fun () -> Mutex.unlock m) f

let norm_labels labels =
  List.sort (fun (a, _) (b, _) -> String.compare a b) labels

let kind_name = function
  | Counter -> "counter"
  | Gauge -> "gauge"
  | Histogram -> "histogram"

let valid_name name =
  String.length name > 0
  && String.for_all
       (fun c ->
         (c >= 'a' && c <= 'z')
         || (c >= 'A' && c <= 'Z')
         || (c >= '0' && c <= '9')
         || c = '_' || c = ':')
       name
  && not (name.[0] >= '0' && name.[0] <= '9')

let family t ~name ~help ~kind ~bounds =
  if not (valid_name name) then
    invalid_arg ("Metrics: invalid metric name: " ^ name);
  locked t.m (fun () ->
      match Hashtbl.find_opt t.families name with
      | Some f ->
          if f.kind <> kind then
            invalid_arg
              (Printf.sprintf "Metrics: %s already registered as a %s" name
                 (kind_name f.kind));
          f
      | None ->
          let f =
            {
              name;
              help;
              kind;
              f_bounds = bounds;
              tbl = Hashtbl.create 4;
              order = [];
              f_m = t.m;
            }
          in
          Hashtbl.add t.families name f;
          t.family_order <- name :: t.family_order;
          f)

let series (f : family) labels =
  let labels = norm_labels labels in
  locked f.f_m (fun () ->
      match Hashtbl.find_opt f.tbl labels with
      | Some s -> s
      | None ->
          let inst =
            match f.kind with
            | Counter | Gauge -> I_value { v = 0. }
            | Histogram ->
                let bounds =
                  match f.f_bounds with
                  | Some b -> b
                  | None ->
                      invalid_arg "Metrics: histogram family without buckets"
                in
                I_hist
                  {
                    bounds;
                    counts = Array.make (Array.length bounds + 1) 0;
                    sum = 0.;
                    count = 0;
                  }
          in
          let s = { s_labels = labels; inst; s_m = f.f_m } in
          Hashtbl.add f.tbl labels s;
          f.order <- s :: f.order;
          s)

let counter t ?(help = "") ?(labels = []) name =
  series (family t ~name ~help ~kind:Counter ~bounds:None) labels

let gauge t ?(help = "") ?(labels = []) name =
  series (family t ~name ~help ~kind:Gauge ~bounds:None) labels

(* 1-2-5 log-linear ladder: logarithmic decades, linearly subdivided. *)
let log_linear ?(lo = 1e-6) ?(hi = 1e6) () =
  if lo <= 0. || hi <= lo then invalid_arg "Metrics.log_linear: need 0 < lo < hi";
  let acc = ref [] in
  let decade = ref lo in
  (let continue = ref true in
   while !continue do
     List.iter
       (fun m ->
         let v = !decade *. m in
         if v <= hi *. 1.000001 then acc := v :: !acc)
       [ 1.; 2.; 5. ];
     decade := !decade *. 10.;
     if !decade > hi then continue := false
   done);
  Array.of_list (List.rev !acc)

let histogram t ?(help = "") ?(labels = []) ?buckets name =
  let bounds = match buckets with Some b -> b | None -> log_linear () in
  if Array.length bounds = 0 then invalid_arg "Metrics.histogram: no buckets";
  Array.iteri
    (fun i b -> if i > 0 && b <= bounds.(i - 1) then
        invalid_arg "Metrics.histogram: buckets must increase")
    bounds;
  series (family t ~name ~help ~kind:Histogram ~bounds:(Some bounds)) labels

let add c dv =
  if dv < 0. then invalid_arg "Metrics.add: counters only go up";
  match c.inst with
  | I_value v -> locked c.s_m (fun () -> v.v <- v.v +. dv)
  | I_hist _ -> invalid_arg "Metrics.add: not a counter"

let inc c = add c 1.

let set g v =
  match g.inst with
  | I_value i -> locked g.s_m (fun () -> i.v <- v)
  | I_hist _ -> invalid_arg "Metrics.set: not a gauge"

let observe h v =
  match h.inst with
  | I_value _ -> invalid_arg "Metrics.observe: not a histogram"
  | I_hist hist ->
      locked h.s_m (fun () ->
          let n = Array.length hist.bounds in
          let rec bucket i =
            if i >= n || v <= hist.bounds.(i) then i else bucket (i + 1)
          in
          let i = bucket 0 in
          hist.counts.(i) <- hist.counts.(i) + 1;
          hist.sum <- hist.sum +. v;
          hist.count <- hist.count + 1)

let value s =
  locked s.s_m (fun () ->
      match s.inst with I_value v -> v.v | I_hist h -> h.sum)

let hist_count s =
  locked s.s_m (fun () ->
      match s.inst with I_hist h -> h.count | I_value _ -> 0)

let register_collector t ?(help = "") ~kind name read =
  if not (valid_name name) then
    invalid_arg ("Metrics: invalid metric name: " ^ name);
  (match kind with
  | Counter | Gauge -> ()
  | Histogram -> invalid_arg "Metrics.register_collector: histograms only live");
  locked t.m (fun () ->
      t.collectors <-
        { c_name = name; c_help = help; c_kind = kind; read } :: t.collectors)

(* ------------------------------------------------------------------ *)
(* Snapshots (what the exporters consume)                              *)

type hist_snapshot = {
  h_bounds : float array;
  h_counts : int array;
  h_sum : float;
  h_count : int;
}

type point = { p_labels : labels; p_value : float; p_hist : hist_snapshot option }

type sample_family = {
  sf_name : string;
  sf_help : string;
  sf_kind : kind;
  points : point list;
}

let render_labels labels =
  String.concat "," (List.map (fun (k, v) -> k ^ "=" ^ v) labels)

let sort_points ps =
  List.sort
    (fun a b -> String.compare (render_labels a.p_labels) (render_labels b.p_labels))
    ps

let snapshot t =
  (* Live instrument state is copied under the lock; collector reads run
     outside it (a collector callback may itself create or read metrics). *)
  let live, collectors =
    locked t.m (fun () ->
        ( List.rev_map
            (fun name ->
              let f = Hashtbl.find t.families name in
              let points =
                List.rev_map
                  (fun s ->
                    match s.inst with
                    | I_value v ->
                        { p_labels = s.s_labels; p_value = v.v; p_hist = None }
                    | I_hist h ->
                        {
                          p_labels = s.s_labels;
                          p_value = h.sum;
                          p_hist =
                            Some
                              {
                                h_bounds = h.bounds;
                                h_counts = Array.copy h.counts;
                                h_sum = h.sum;
                                h_count = h.count;
                              };
                        })
                  f.order
              in
              { sf_name = f.name; sf_help = f.help; sf_kind = f.kind; points })
            t.family_order,
          List.rev t.collectors ))
  in
  (* Collector output grouped by name; several collectors may share one
     metric name (e.g. one Stats registration per view). *)
  let collected = Hashtbl.create 8 in
  let collected_order = ref [] in
  List.iter
    (fun c ->
      let points =
        List.map
          (fun (labels, v) ->
            { p_labels = norm_labels labels; p_value = v; p_hist = None })
          (c.read ())
      in
      match Hashtbl.find_opt collected c.c_name with
      | Some sf ->
          Hashtbl.replace collected c.c_name
            { sf with points = sf.points @ points }
      | None ->
          Hashtbl.add collected c.c_name
            { sf_name = c.c_name; sf_help = c.c_help; sf_kind = c.c_kind; points };
          collected_order := c.c_name :: !collected_order)
    collectors;
  let families =
    live @ List.rev_map (fun name -> Hashtbl.find collected name) !collected_order
  in
  List.sort (fun a b -> String.compare a.sf_name b.sf_name) families
  |> List.map (fun sf -> { sf with points = sort_points sf.points })

let find_value t ?(labels = []) name =
  let labels = norm_labels labels in
  let rec in_families = function
    | [] -> None
    | sf :: rest ->
        if String.equal sf.sf_name name then
          match List.find_opt (fun p -> p.p_labels = labels) sf.points with
          | Some p -> Some p.p_value
          | None -> in_families rest
        else in_families rest
  in
  in_families (snapshot t)

let reset t =
  locked t.m (fun () ->
      Hashtbl.iter
        (fun _ f ->
          Hashtbl.iter
            (fun _ s ->
              match s.inst with
              | I_value v -> v.v <- 0.
              | I_hist h ->
                  Array.fill h.counts 0 (Array.length h.counts) 0;
                  h.sum <- 0.;
                  h.count <- 0)
            f.tbl)
        t.families)
