(** Injectable monotonic clock.

    Every wall-time read on the maintenance path goes through one of these
    instead of calling [Unix.gettimeofday] directly, so traces, latency
    histograms and scheduler wall counters are reproducible under test: a
    {!manual} clock makes every duration a deterministic function of the
    work performed, never of machine speed.

    The discrete-event simulator and the fault-injection harness install a
    manual clock; production contexts default to {!real}. *)

type t

val real : unit -> t
(** Reads [Unix.gettimeofday]. *)

val manual : ?start:float -> ?tick:float -> unit -> t
(** A deterministic clock starting at [start] (default 0). Every {!now}
    read returns the current value and then advances it by [tick]
    (default 0, i.e. frozen until {!advance}d). A small positive [tick]
    gives successive reads strictly increasing, reproducible timestamps —
    what the trace tests use to get well-ordered span intervals.
    @raise Invalid_argument on a negative [tick]. *)

val now : t -> float
(** Current time in seconds. Manual clocks advance by their tick per read. *)

val advance : t -> float -> unit
(** Advance a manual clock by [dt] seconds.
    @raise Invalid_argument on a real clock or negative [dt]. *)

val is_manual : t -> bool
