(** Rollscope: one observability handle bundling a {!Clock}, a {!Trace}
    recorder and a {!Metrics} registry.

    This is the single object threaded through the maintenance path
    ([Ctx.obs], [Service.create ?obs], [Capture.set_obs],
    [Database.set_obs]). A {!disabled} handle (the default everywhere)
    carries a no-op trace and an unused registry, so every instrumentation
    point reduces to a branch; {!create} turns everything on. *)

type t

val disabled : unit -> t
(** Real clock, no-op trace, empty registry; {!enabled} is [false].
    Freshly created contexts carry one of these. *)

val create : ?clock:Clock.t -> ?trace_capacity:int -> unit -> t
(** A live handle. [clock] defaults to {!Clock.real}; pass a
    {!Clock.manual} for reproducible traces and histograms. *)

val enabled : t -> bool

val clock : t -> Clock.t

val trace : t -> Trace.t

val metrics : t -> Metrics.t

val now : t -> float
(** [Clock.now (clock t)]. *)

val tracing : t -> bool
(** Whether spans are being recorded — the guard instrumentation points
    check before doing any per-span work. *)

val fork : t -> t
(** A handle for a worker domain: same clock and metrics registry (both
    domain-safe), but a {!Trace.fork}ed private span recorder. *)

val absorb : t -> t -> unit
(** [absorb parent child] splices the forked child's spans back into the
    parent trace ({!Trace.absorb}); call after the worker has joined. *)
