(** Exporters: Chrome trace-event JSON, Prometheus text exposition, JSONL.

    All output is deterministic given a deterministic clock: spans export
    in start order, metric families sorted by name, series sorted by
    rendered labels — so golden tests can compare whole documents. *)

val chrome_trace : ?process:string -> Trace.t -> string
(** The trace as a Chrome trace-event JSON document (one complete ["X"]
    event per span, timestamps in microseconds) — loadable in
    [chrome://tracing] and Perfetto. Span attributes and status land in
    each event's [args]. *)

val spans_jsonl : Trace.t -> string
(** One JSON object per line per finished span — the stable format the
    test suite parses back. *)

val prometheus : Metrics.t -> string
(** Prometheus text exposition format version 0.0.4: [# HELP]/[# TYPE]
    headers, counters/gauges as single series, histograms as cumulative
    [_bucket{le=...}] series plus [_sum] and [_count]. *)

val metrics_json : Metrics.t -> string
(** The same snapshot as a JSON array, for [rollctl status --json] and CI
    assertions. *)

val json_string : string -> string
(** Quote + escape a string as a JSON literal (shared by [rollctl]'s JSON
    builders). *)

val json_float : float -> string
(** JSON number rendering: integral values print bare, others shortest
    round-trip. *)
