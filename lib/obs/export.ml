let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let json_string s = "\"" ^ json_escape s ^ "\""

(* Numbers: integers print bare (42, not 42.000000) so golden outputs are
   stable and readable; everything else gets shortest round-trip form. *)
let json_float f =
  if Float.is_integer f && Float.abs f < 1e15 then
    Printf.sprintf "%.0f" f
  else Printf.sprintf "%.9g" f

let json_attr = function
  | Trace.Int i -> string_of_int i
  | Trace.Float f -> json_float f
  | Trace.Str s -> json_string s
  | Trace.Bool b -> if b then "true" else "false"

let span_args (s : Trace.span) =
  let attrs = List.map (fun (k, v) -> (k, json_attr v)) s.Trace.attrs in
  let status =
    match s.Trace.status with
    | Trace.Ok -> [ ("status", json_string "ok") ]
    | Trace.Error e ->
        [ ("status", json_string "error"); ("error", json_string e) ]
  in
  attrs @ status

let json_object fields =
  "{"
  ^ String.concat ", " (List.map (fun (k, v) -> json_string k ^ ": " ^ v) fields)
  ^ "}"

(* ------------------------------------------------------------------ *)
(* Chrome trace-event JSON                                             *)

let span_category (s : Trace.span) =
  match String.index_opt s.Trace.name '.' with
  | Some i -> String.sub s.Trace.name 0 i
  | None -> s.Trace.name

(* One complete ("ph":"X") event per span; ts/dur in microseconds as the
   trace-event format requires. Spans share pid/tid 1 — the viewer nests
   them by time containment, which well-nestedness guarantees. *)
let chrome_trace_event (s : Trace.span) =
  json_object
    [
      ("name", json_string s.Trace.name);
      ("cat", json_string (span_category s));
      ("ph", json_string "X");
      ("ts", json_float (s.Trace.start *. 1e6));
      ("dur", json_float (Float.max 0. (s.Trace.stop -. s.Trace.start) *. 1e6));
      ("pid", "1");
      ("tid", "1");
      ("args", json_object (span_args s));
    ]

let chrome_trace ?(process = "rolling-ivm") trace =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "{\"traceEvents\": [\n";
  Buffer.add_string buf
    ("  "
    ^ json_object
        [
          ("name", json_string "process_name");
          ("ph", json_string "M");
          ("pid", "1");
          ("args", json_object [ ("name", json_string process) ]);
        ]);
  List.iter
    (fun s -> Buffer.add_string buf (",\n  " ^ chrome_trace_event s))
    (Trace.spans trace);
  Buffer.add_string buf "\n], \"displayTimeUnit\": \"ms\"}\n";
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* JSONL span log                                                      *)

let span_jsonl (s : Trace.span) =
  json_object
    ([
       ("id", string_of_int s.Trace.id);
       ("parent", string_of_int s.Trace.parent);
       ("depth", string_of_int s.Trace.depth);
       ("name", json_string s.Trace.name);
       ("start", json_float s.Trace.start);
       ("stop", json_float s.Trace.stop);
     ]
    @ span_args s)

let spans_jsonl trace =
  String.concat "" (List.map (fun s -> span_jsonl s ^ "\n") (Trace.spans trace))

(* ------------------------------------------------------------------ *)
(* Prometheus text exposition                                          *)

let label_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let prom_labels = function
  | [] -> ""
  | labels ->
      "{"
      ^ String.concat ","
          (List.map
             (fun (k, v) -> Printf.sprintf "%s=\"%s\"" k (label_escape v))
             labels)
      ^ "}"

let prom_number f =
  if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.0f" f
  else Printf.sprintf "%.9g" f

let prom_bound f =
  if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.0f" f
  else Printf.sprintf "%g" f

let prometheus metrics =
  let buf = Buffer.create 4096 in
  List.iter
    (fun (sf : Metrics.sample_family) ->
      if sf.Metrics.points <> [] then begin
        if sf.Metrics.sf_help <> "" then
          Buffer.add_string buf
            (Printf.sprintf "# HELP %s %s\n" sf.Metrics.sf_name sf.Metrics.sf_help);
        Buffer.add_string buf
          (Printf.sprintf "# TYPE %s %s\n" sf.Metrics.sf_name
             (Metrics.kind_name sf.Metrics.sf_kind));
        List.iter
          (fun (p : Metrics.point) ->
            match p.Metrics.p_hist with
            | None ->
                Buffer.add_string buf
                  (Printf.sprintf "%s%s %s\n" sf.Metrics.sf_name
                     (prom_labels p.Metrics.p_labels)
                     (prom_number p.Metrics.p_value))
            | Some h ->
                let cumulative = ref 0 in
                Array.iteri
                  (fun i bound ->
                    cumulative := !cumulative + h.Metrics.h_counts.(i);
                    Buffer.add_string buf
                      (Printf.sprintf "%s_bucket%s %d\n" sf.Metrics.sf_name
                         (prom_labels
                            (p.Metrics.p_labels @ [ ("le", prom_bound bound) ]))
                         !cumulative))
                  h.Metrics.h_bounds;
                Buffer.add_string buf
                  (Printf.sprintf "%s_bucket%s %d\n" sf.Metrics.sf_name
                     (prom_labels (p.Metrics.p_labels @ [ ("le", "+Inf") ]))
                     h.Metrics.h_count);
                Buffer.add_string buf
                  (Printf.sprintf "%s_sum%s %s\n" sf.Metrics.sf_name
                     (prom_labels p.Metrics.p_labels)
                     (prom_number h.Metrics.h_sum));
                Buffer.add_string buf
                  (Printf.sprintf "%s_count%s %d\n" sf.Metrics.sf_name
                     (prom_labels p.Metrics.p_labels)
                     h.Metrics.h_count))
          sf.Metrics.points
      end)
    (Metrics.snapshot metrics);
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Metrics as JSON (for [rollctl status --json] and CI assertions)     *)

let metrics_json metrics =
  let point_json (p : Metrics.point) =
    let labels =
      List.map (fun (k, v) -> (k, json_string v)) p.Metrics.p_labels
    in
    match p.Metrics.p_hist with
    | None ->
        json_object
          [
            ("labels", json_object labels);
            ("value", json_float p.Metrics.p_value);
          ]
    | Some h ->
        json_object
          [
            ("labels", json_object labels);
            ("count", string_of_int h.Metrics.h_count);
            ("sum", json_float h.Metrics.h_sum);
            ( "buckets",
              "["
              ^ String.concat ", "
                  (Array.to_list
                     (Array.mapi
                        (fun i bound ->
                          json_object
                            [
                              ("le", json_float bound);
                              ("n", string_of_int h.Metrics.h_counts.(i));
                            ])
                        h.Metrics.h_bounds))
              ^ "]" );
          ]
  in
  let family_json (sf : Metrics.sample_family) =
    json_object
      [
        ("name", json_string sf.Metrics.sf_name);
        ("kind", json_string (Metrics.kind_name sf.Metrics.sf_kind));
        ( "series",
          "[" ^ String.concat ", " (List.map point_json sf.Metrics.points) ^ "]"
        );
      ]
  in
  "["
  ^ String.concat ",\n " (List.map family_json (Metrics.snapshot metrics))
  ^ "]"
