(** Metric registry: the numbers half of Rollscope.

    A registry holds labeled {e families} of counters, gauges and
    log-linear histograms, created on first use and updated from the same
    instrumentation points that emit {!Trace} spans. Exporters consume a
    deterministic {!snapshot}.

    Legacy counters bridge in through {e collectors}: a collector is a
    read-through callback registered once (see {!register_collector}) whose
    values are sampled live at snapshot time. This is how {!Stats}'
    existing mutable counters surface in the registry without being
    maintained twice — the [Stats.t] record stays the single store, the
    registry reads through it.

    Metric names follow Prometheus conventions ([roll_*_total] counters,
    [_seconds] durations, [snake_case] labels); see DESIGN.md section 14
    for the full naming scheme. *)

type labels = (string * string) list

type kind = Counter | Gauge | Histogram

type t

val create : unit -> t

(** {1 Live instruments}

    Get-or-create: the same (name, labels) pair always returns the same
    instrument. @raise Invalid_argument on a malformed metric name, a kind
    clash with an existing family, or malformed histogram buckets. *)

type counter

val counter : t -> ?help:string -> ?labels:labels -> string -> counter

val inc : counter -> unit

val add : counter -> float -> unit
(** @raise Invalid_argument on a negative increment. *)

type gauge

val gauge : t -> ?help:string -> ?labels:labels -> string -> gauge

val set : gauge -> float -> unit

type histogram

val histogram :
  t -> ?help:string -> ?labels:labels -> ?buckets:float array -> string -> histogram
(** [buckets] are strictly increasing upper bounds (an implicit +inf
    bucket is appended); default {!log_linear} with its default range. *)

val observe : histogram -> float -> unit

val log_linear : ?lo:float -> ?hi:float -> unit -> float array
(** The 1-2-5 log-linear ladder from [lo] (default 1e-6) to [hi] (default
    1e6): logarithmic decades, linearly subdivided — fine resolution at
    every scale with a bounded bucket count.
    @raise Invalid_argument unless [0 < lo < hi]. *)

val value : counter -> float
(** Current value of a counter or gauge (histograms report their sum). *)

val hist_count : histogram -> int

(** {1 Collectors} *)

val register_collector :
  t -> ?help:string -> kind:kind -> string -> (unit -> (labels * float) list) -> unit
(** Register a read-through series source under [name]; sampled at every
    {!snapshot}. Several collectors may share one name (their series are
    merged — e.g. one per-view [Stats] registration each contributing a
    [view=...] series). Counter and gauge kinds only.
    @raise Invalid_argument on a malformed name or histogram kind. *)

(** {1 Snapshots} *)

type hist_snapshot = {
  h_bounds : float array;
  h_counts : int array;  (** per-bucket counts; last entry is the +inf bucket *)
  h_sum : float;
  h_count : int;
}

type point = {
  p_labels : labels;  (** sorted by label key *)
  p_value : float;
  p_hist : hist_snapshot option;
}

type sample_family = {
  sf_name : string;
  sf_help : string;
  sf_kind : kind;
  points : point list;
}

val snapshot : t -> sample_family list
(** Every family (live and collected), sorted by name, points sorted by
    rendered labels — a deterministic order exporters and golden tests can
    rely on. *)

val find_value : t -> ?labels:labels -> string -> float option
(** Look one value up in a fresh snapshot. *)

val reset : t -> unit
(** Zero every live instrument (collectors read through and are
    unaffected). *)

val kind_name : kind -> string
