type t = {
  enabled : bool;
  clock : Clock.t;
  trace : Trace.t;
  metrics : Metrics.t;
}

let disabled () =
  {
    enabled = false;
    clock = Clock.real ();
    trace = Trace.noop ();
    metrics = Metrics.create ();
  }

let create ?clock ?trace_capacity () =
  let clock = match clock with Some c -> c | None -> Clock.real () in
  {
    enabled = true;
    clock;
    trace = Trace.create ?capacity:trace_capacity ~clock ();
    metrics = Metrics.create ();
  }

let enabled t = t.enabled

let clock t = t.clock

let trace t = t.trace

let metrics t = t.metrics

let now t = Clock.now t.clock

let tracing t = Trace.enabled t.trace

(* The metrics registry and clock are domain-safe and stay shared; only
   the trace recorder (single-domain by design) is forked per worker. *)
let fork t = { t with trace = Trace.fork t.trace }

let absorb t child = Trace.absorb t.trace child.trace
