type attr = Int of int | Float of float | Str of string | Bool of bool

type status = Ok | Error of string

type span = {
  id : int;
  parent : int;
  name : string;
  depth : int;
  start : float;
  mutable stop : float;
  mutable status : status;
  mutable attrs : (string * attr) list;
}

type t = {
  enabled : bool;
  clock : Clock.t;
  capacity : int;
  mutable ring : span option array;
  mutable write : int;
  mutable recorded : int;
  mutable open_spans : span list;  (** innermost first *)
  mutable next_id : int;
}

let noop () =
  {
    enabled = false;
    clock = Clock.real ();
    capacity = 0;
    ring = [||];
    write = 0;
    recorded = 0;
    open_spans = [];
    next_id = 1;
  }

let create ?(capacity = 65536) ~clock () =
  if capacity <= 0 then invalid_arg "Trace.create: capacity must be positive";
  {
    enabled = true;
    clock;
    capacity;
    ring = Array.make capacity None;
    write = 0;
    recorded = 0;
    open_spans = [];
    next_id = 1;
  }

let enabled t = t.enabled

let clock t = t.clock

let open_count t = List.length t.open_spans

let recorded t = t.recorded

let dropped t = max 0 (t.recorded - t.capacity)

let push_finished t span =
  t.ring.(t.write) <- Some span;
  t.write <- (t.write + 1) mod t.capacity;
  t.recorded <- t.recorded + 1

let fresh_span t ?(attrs = []) name =
  let id = t.next_id in
  t.next_id <- id + 1;
  let parent =
    match t.open_spans with [] -> 0 | parent :: _ -> parent.id
  in
  {
    id;
    parent;
    name;
    depth = List.length t.open_spans;
    start = Clock.now t.clock;
    stop = nan;
    status = Ok;
    attrs;
  }

(* Closing is strictly LIFO: [with_span] is the only opener, so the span
   being closed is always the innermost open one. *)
let close t span status =
  span.stop <- Clock.now t.clock;
  (match span.status with Error _ -> () | Ok -> span.status <- status);
  (match t.open_spans with
  | s :: rest when s == span -> t.open_spans <- rest
  | _ -> invalid_arg "Trace.close: span is not the innermost open span");
  push_finished t span

(* [abort_open] may fire while a [with_span] frame is still on the stack;
   its span is then already finished, and the frame's own close must not
   touch the (shorter) open stack. *)
let still_open t span = List.memq span t.open_spans

let with_span t ?attrs name f =
  if not t.enabled then f ()
  else begin
    let span = fresh_span t ?attrs name in
    t.open_spans <- span :: t.open_spans;
    match f () with
    | v ->
        if still_open t span then close t span Ok;
        v
    | exception exn ->
        if still_open t span then close t span (Error (Printexc.to_string exn));
        raise exn
  end

let add_attr t key attr =
  if t.enabled then
    match t.open_spans with
    | [] -> ()
    | span :: _ -> span.attrs <- span.attrs @ [ (key, attr) ]

let set_error t msg =
  if t.enabled then
    match t.open_spans with
    | [] -> ()
    | span :: _ -> span.status <- Error msg

let record_complete t ?(attrs = []) ?(status = Ok) ~start ~stop name =
  if t.enabled then begin
    if stop < start then invalid_arg "Trace.record_complete: stop before start";
    let id = t.next_id in
    t.next_id <- id + 1;
    let parent =
      match t.open_spans with [] -> 0 | parent :: _ -> parent.id
    in
    push_finished t
      {
        id;
        parent;
        name;
        depth = List.length t.open_spans;
        start;
        stop;
        status;
        attrs;
      }
  end

let abort_open t ~reason =
  if t.enabled then
    while t.open_spans <> [] do
      match t.open_spans with
      | [] -> ()
      | span :: _ -> close t span (Error reason)
    done

let spans t =
  Array.to_list t.ring
  |> List.filter_map Fun.id
  |> List.sort (fun a b -> compare a.id b.id)

let fork t =
  if not t.enabled then noop ()
  else
    {
      enabled = true;
      clock = t.clock;
      capacity = t.capacity;
      ring = Array.make t.capacity None;
      write = 0;
      recorded = 0;
      open_spans = [];
      next_id = 1;
    }

(* Splice a forked child's finished spans back into [t]. The child's ids
   are remapped past the parent's current next_id, its roots are
   re-parented under the parent's innermost open span, and depths shift by
   the parent's open-stack height — so the merged trace is well-nested
   exactly when both halves were. The id block is consumed even for child
   spans lost to ring overwrite, keeping ids unique across repeated
   absorbs. *)
let absorb t child =
  if t.enabled && child.enabled then begin
    if child.open_spans <> [] then
      invalid_arg "Trace.absorb: child has open spans";
    let base = t.next_id - 1 in
    let depth_shift = List.length t.open_spans in
    let reparent =
      match t.open_spans with [] -> 0 | parent :: _ -> parent.id
    in
    List.iter
      (fun s ->
        push_finished t
          {
            s with
            id = s.id + base;
            parent = (if s.parent = 0 then reparent else s.parent + base);
            depth = s.depth + depth_shift;
          })
      (spans child);
    t.next_id <- t.next_id + child.next_id - 1;
    (* Leave the child empty so a second absorb cannot duplicate spans. *)
    Array.fill child.ring 0 child.capacity None;
    child.write <- 0;
    child.recorded <- 0;
    child.next_id <- 1
  end

let find t ~name = List.filter (fun s -> String.equal s.name name) (spans t)

let clear t =
  Array.fill t.ring 0 t.capacity None;
  t.write <- 0;
  t.recorded <- 0;
  t.open_spans <- [];
  t.next_id <- 1

let pp_attr ppf = function
  | Int i -> Format.pp_print_int ppf i
  | Float f -> Format.fprintf ppf "%g" f
  | Str s -> Format.pp_print_string ppf s
  | Bool b -> Format.pp_print_bool ppf b

let pp_span ppf s =
  Format.fprintf ppf "[%d->%d] %s%s (%.6f..%.6f)" s.parent s.id s.name
    (match s.status with Ok -> "" | Error e -> " ERROR:" ^ e)
    s.start s.stop;
  List.iter (fun (k, v) -> Format.fprintf ppf " %s=%a" k pp_attr v) s.attrs
