(** Hierarchical span recorder: the tracing half of Rollscope.

    A {e span} is one timed unit of maintenance work — a drain, a scheduled
    work item, a propagation step, a [ComputeDelta] node, an executor
    operator — with a name, typed attributes, a status and a parent. Spans
    open and close strictly LIFO through {!with_span}, so every recorded
    trace is well-nested by construction: a child's interval lies inside
    its parent's, and an exception unwinding through the stack (including
    an injected {!Roll_util.Fault.Crash}) closes every span it crosses
    with [Error] status — a crashed step surfaces as an error span, never
    as a dangling open one.

    Finished spans land in a bounded ring buffer (oldest overwritten
    first); the recorder itself never allocates per-row, only per-span.
    All timestamps come from the injected {!Clock}, so a manual clock
    makes whole traces reproducible. *)

type attr = Int of int | Float of float | Str of string | Bool of bool

type status = Ok | Error of string

type span = {
  id : int;  (** unique, increasing in start order; 1-based *)
  parent : int;  (** id of the enclosing span, or 0 for a root *)
  name : string;  (** taxonomy name, e.g. ["propagate.step"] *)
  depth : int;  (** number of enclosing open spans at start *)
  start : float;
  mutable stop : float;
  mutable status : status;
  mutable attrs : (string * attr) list;
}

type t

val noop : unit -> t
(** A disabled recorder: every operation is (nearly) free, nothing is
    recorded. The default on fresh contexts, so untraced maintenance pays
    only a branch per instrumentation point. *)

val create : ?capacity:int -> clock:Clock.t -> unit -> t
(** A live recorder holding up to [capacity] (default 65536) finished
    spans. @raise Invalid_argument on a non-positive capacity. *)

val enabled : t -> bool

val clock : t -> Clock.t

val with_span : t -> ?attrs:(string * attr) list -> string -> (unit -> 'a) -> 'a
(** [with_span t name f] opens a span, runs [f], and closes the span with
    [Ok] status — or with [Error] carrying the exception text if [f]
    raises (the exception is re-raised). On a disabled recorder this is
    exactly [f ()]. *)

val add_attr : t -> string -> attr -> unit
(** Attach an attribute to the innermost open span (no-op when disabled or
    no span is open) — for values only known mid-flight, like rows
    emitted. *)

val set_error : t -> string -> unit
(** Mark the innermost open span as failed without raising; the status
    sticks even though the span later closes normally. *)

val record_complete :
  t ->
  ?attrs:(string * attr) list ->
  ?status:status ->
  start:float ->
  stop:float ->
  string ->
  unit
(** Append an already-timed span (parented under the innermost open span).
    Used to synthesize per-operator executor spans from a pipeline report
    after the fact, without timing every row pull twice.
    @raise Invalid_argument if [stop < start]. *)

val abort_open : t -> reason:string -> unit
(** Close every open span with [Error reason], innermost first. For
    modelling a hard process death where no exception unwinds; after
    normal exception propagation there is nothing left to abort. Safe to
    call from inside {!with_span} — the enclosing frames' own closes
    become no-ops for spans aborted out from under them. *)

val fork : t -> t
(** A fresh recorder sharing this one's clock and capacity, for handing to
    a worker domain: the child records its spans privately (no
    synchronization with the parent), and {!absorb} splices them back once
    the worker has joined. Forking a disabled recorder yields a disabled
    recorder. *)

val absorb : t -> t -> unit
(** [absorb parent child] moves the child's finished spans into [parent]:
    ids are remapped past the parent's current counter, the child's root
    spans are re-parented under the parent's innermost open span, and
    depths shift by the parent's open-stack height — the merged trace is
    well-nested exactly when both halves were. The child is left empty.
    Call only after the worker using [child] has joined.
    @raise Invalid_argument if the child still has open spans. *)

val open_count : t -> int
(** Currently open spans — 0 between units of work on a balanced trace. *)

val spans : t -> span list
(** Finished spans still in the ring, in start (id) order. *)

val find : t -> name:string -> span list

val recorded : t -> int
(** Total finished spans ever recorded, including overwritten ones. *)

val dropped : t -> int
(** Finished spans lost to ring overwrite ([recorded - capacity], floored
    at 0). *)

val clear : t -> unit

val pp_span : Format.formatter -> span -> unit
