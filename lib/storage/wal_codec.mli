(** Durable write-ahead-log encoding.

    A line-oriented text format for persisting and restoring the WAL —
    the database's full logical history. Restoring a saved log into a fresh
    database (with the same table definitions) reproduces table contents,
    commit sequence numbers, transaction ids, and the wall clock, so
    maintenance processes can resume where they left off: capture replays
    the restored log, and propagation's timestamps remain valid.

    Format (version-stamped, one token line each):

    {v ROLLWAL 1
       R <csn> <txn_id> <wall-hex-float>
       M <tag>            (at most one, marker commits)
       C <table> <count> <arity>
       V <value>          (arity lines per C)
       E                  (ends the record) v}

    Strings are OCaml-escaped ([%S]); floats use the lossless hexadecimal
    notation ([%h]). *)

exception Corrupt of string
(** Raised by the loaders with a line number and reason. *)

val magic : string
(** The version-stamped header line, shared with {!Wal_store} segments. *)

val encode_value : Buffer.t -> Roll_relation.Value.t -> string -> unit
(** [encode_value buf v suffix] appends [v]'s one-line encoding plus
    [suffix]; shared with higher-level checkpoint formats. *)

val decode_value : string -> Roll_relation.Value.t
(** Inverse of {!encode_value} (without the suffix). @raise Corrupt *)

val output_record :
  ?fault:Roll_util.Fault.t ->
  ?record_point:string ->
  ?terminator_point:string ->
  out_channel ->
  Wal.record ->
  unit
(** One record in wire form (no header) — shared by {!save} and the
    segmented on-disk WAL ({!Wal_store}), which injects its own fault-point
    names. *)

val save : ?fault:Roll_util.Fault.t -> Wal.t -> out_channel -> unit
(** Fault points ["wal.record"] (before each record) and
    ["wal.terminator"] (before each record's "E" line) let tests produce
    genuinely torn files: a crash mid-save leaves a valid prefix plus a
    partial final record. *)

val save_file : ?fault:Roll_util.Fault.t -> Wal.t -> string -> unit

val load : in_channel -> Wal.record list
(** Strict: any malformed or truncated input raises {!Corrupt}. *)

val load_file : string -> Wal.record list

type recovery = {
  records : Wal.record list;  (** the complete records, in log order *)
  torn : string option;  (** [Some reason] if a partial final record (or a
      truncated header) was detected and dropped *)
}

val recover : in_channel -> recovery
(** Tolerant loader for restart: a torn {e final} record — the signature of
    a crash mid-append, recognized because nothing after the failure point
    carries a record terminator — is truncated away instead of raising.
    Corruption {e followed by} further complete records still raises
    {!Corrupt}: dropping committed records silently would be worse than
    failing loudly. *)

val recover_file : string -> recovery
