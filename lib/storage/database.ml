open Roll_relation
module Time = Roll_delta.Time
module Fault = Roll_util.Fault

(* Disk-backed state: the paged store (tables + indexes on pages behind
   the block cache) and the segmented on-disk WAL. The in-memory WAL
   stays authoritative for capture/history; commits write through to
   segments first, so the durable log is never behind the memory image.

   Durability model: WAL segments are the durable truth; the data file
   is a copy-on-write snapshot at [data_csn] (advanced by {!sync}'s
   flush barrier). Recovery replays segments in order; records at or
   below the snapshot CSN rehydrate only the in-memory log, records
   above it are re-applied to the tables. Segment reclaim is clamped to
   [data_csn] — a reclaimed prefix is exactly the part of history the
   snapshot already embodies. *)
type disk = {
  store : Store.t;
  wal_store : Wal_store.t;
  mutable pending : Wal.record list;
      (** recovered records awaiting {!recover_pending} *)
  mutable torn : string option;
  mutable fault : Fault.t;
}

type backend = Mem | Disk of disk

type t = {
  tables : (string, Table.t) Hashtbl.t;
  wal : Wal.t;
  backend : backend;
  (* Per-table state at the WAL base (csn [Wal.first_pos]); empty until
     a reclaim truncates the log. History replays forward from these
     instead of from the origin. *)
  base_states : (string, Relation.t) Hashtbl.t;
  mutable last_csn : Time.t;
  mutable next_txn_id : int;
  mutable wall : float;
  wall_tick : float;
  mutable commits : int;
  mutable write_triggers : (txn_id:int -> Wal.change -> unit) list;
  mutable commit_triggers : (Wal.record -> unit) list;
  mutable obs : Roll_obs.Obs.t;
  mutable wal_counters : (Roll_obs.Metrics.counter * Roll_obs.Metrics.counter) option;
}

type txn = {
  id : int;
  db : t;
  mutable writes : Wal.change list;  (** reverse order *)
  mutable open_ : bool;
}

let create ?(wall_start = 0.0) ?(wall_tick = 1.0) ?mode ?dir () =
  let mode =
    match mode with Some m -> m | None -> Store.mode_of_env ()
  in
  let backend, wal, last_csn =
    match mode with
    | Store.Mem -> (Mem, Wal.create (), Time.origin)
    | Store.Disk ->
        let dir =
          match (dir, Sys.getenv_opt "ROLL_STORE_DIR") with
          | Some d, _ -> d
          | None, Some d when d <> "" -> d
          | None, _ -> Store.fresh_dir ()
        in
        let store = Store.open_dir dir in
        let recovery =
          Wal_store.open_dir ~segment_records:(Store.segment_records_of_env ())
            dir
        in
        let _, reclaimed_upto = Wal_store.reclaimed recovery.Wal_store.store in
        let wal = Wal.create () in
        Wal.set_base wal reclaimed_upto;
        ( Disk
            {
              store;
              wal_store = recovery.Wal_store.store;
              pending = recovery.Wal_store.records;
              torn = recovery.Wal_store.torn;
              fault = Fault.none;
            },
          wal,
          reclaimed_upto )
  in
  {
    tables = Hashtbl.create 16;
    wal;
    backend;
    base_states = Hashtbl.create 4;
    last_csn;
    next_txn_id = 1;
    wall = wall_start;
    wall_tick;
    commits = 0;
    write_triggers = [];
    commit_triggers = [];
    obs = Roll_obs.Obs.disabled ();
    wal_counters = None;
  }

let mode t = match t.backend with Mem -> Store.Mem | Disk _ -> Store.Disk

let store t = match t.backend with Mem -> None | Disk d -> Some d.store

let store_dir t =
  match t.backend with Mem -> None | Disk d -> Some (Store.dir d.store)

let create_table t ~name schema =
  if Hashtbl.mem t.tables name then
    invalid_arg ("Database.create_table: table exists: " ^ name);
  let table =
    match t.backend with
    | Mem -> Table.create ~name schema
    | Disk d -> Table.create ~name ~store:d.store schema
  in
  Hashtbl.add t.tables name table;
  table

let table t name =
  match Hashtbl.find_opt t.tables name with
  | Some tbl -> tbl
  | None -> raise Not_found

let find_table t name = Hashtbl.find_opt t.tables name

let tables t =
  Hashtbl.fold (fun _ tbl acc -> tbl :: acc) t.tables []
  |> List.sort (fun a b -> String.compare (Table.name a) (Table.name b))

let wal t = t.wal

let obs t = t.obs

(* Storage gauges ride the metrics registry as collectors so Rollscope
   exports see live cache and segment state without per-op overhead. *)
let register_storage_collectors t =
  match t.backend with
  | Mem -> ()
  | Disk d ->
      if Roll_obs.Obs.enabled t.obs then begin
        let m = Roll_obs.Obs.metrics t.obs in
        let gauge name help read =
          try
            Roll_obs.Metrics.register_collector m ~help ~kind:Roll_obs.Metrics.Gauge
              name (fun () -> [ ([], read ()) ])
          with Invalid_argument _ -> ()
        in
        let cache = Store.cache d.store in
        gauge "roll_store_cache_resident_pages" "Pages resident in the block cache"
          (fun () -> float_of_int (Block_cache.resident cache));
        gauge "roll_store_cache_hit_ratio" "Block cache hit ratio" (fun () ->
            Block_cache.hit_ratio cache);
        gauge "roll_store_cache_evictions" "Block cache evictions" (fun () ->
            float_of_int (Block_cache.evictions cache));
        gauge "roll_store_pages" "Pages allocated in the data file" (fun () ->
            float_of_int (Pager.n_pages (Store.pager d.store)));
        gauge "roll_store_free_pages" "Pages on the free list" (fun () ->
            float_of_int (Pager.free_count (Store.pager d.store)));
        gauge "roll_wal_live_segments" "Live WAL segments on disk" (fun () ->
            float_of_int (Wal_store.live_segments d.wal_store));
        gauge "roll_wal_reclaimed_segments" "WAL segments reclaimed by GC"
          (fun () -> float_of_int (fst (Wal_store.reclaimed d.wal_store)))
      end

let set_obs t obs =
  t.obs <- obs;
  t.wal_counters <- None;
  register_storage_collectors t

(* WAL writes are far too frequent for per-record spans; they surface as
   registry counters instead (and in the drain spans that caused them). *)
let note_wal_write t ~changes =
  if Roll_obs.Obs.enabled t.obs then begin
    let records, changed_rows =
      match t.wal_counters with
      | Some pair -> pair
      | None ->
          let m = Roll_obs.Obs.metrics t.obs in
          let pair =
            ( Roll_obs.Metrics.counter m
                ~help:"Records appended to the write-ahead log"
                "roll_wal_records_total",
              Roll_obs.Metrics.counter m
                ~help:"Row changes appended to the write-ahead log"
                "roll_wal_changes_total" )
          in
          t.wal_counters <- Some pair;
          pair
    in
    Roll_obs.Metrics.inc records;
    Roll_obs.Metrics.add changed_rows (float_of_int (List.length changes))
  end

let now t = t.last_csn

let wall_now t = t.wall

let advance_wall t dt =
  if dt < 0.0 then invalid_arg "Database.advance_wall: negative";
  t.wall <- t.wall +. dt

let begin_txn t =
  let id = t.next_txn_id in
  t.next_txn_id <- id + 1;
  { id; db = t; writes = []; open_ = true }

let txn_id txn = txn.id

let check_open txn = if not txn.open_ then invalid_arg "Database: closed txn"

let write txn ~table tuple ~count =
  check_open txn;
  if count <> 0 then begin
    let change = { Wal.table; tuple; count } in
    txn.writes <- change :: txn.writes;
    List.iter (fun f -> f ~txn_id:txn.id change) txn.db.write_triggers
  end

let insert txn ~table tuple = write txn ~table tuple ~count:1

let delete txn ~table tuple = write txn ~table tuple ~count:(-1)

let update txn ~table ~old_tuple ~new_tuple =
  delete txn ~table old_tuple;
  insert txn ~table new_tuple

(* Verify that applying [changes] leaves every multiplicity non-negative,
   accounting for several changes to the same tuple in one transaction. *)
let validate t changes =
  let pending = Hashtbl.create 8 in
  let check (c : Wal.change) =
    let tbl =
      match Hashtbl.find_opt t.tables c.table with
      | Some tbl -> tbl
      | None -> invalid_arg ("Database.commit: unknown table " ^ c.table)
    in
    if not (Tuple.conforms (Table.schema tbl) c.tuple) then
      invalid_arg
        (Format.asprintf "Database.commit: %a does not conform to %s" Tuple.pp
           c.tuple c.table);
    let key = (c.table, c.tuple) in
    let before =
      match Hashtbl.find_opt pending key with
      | Some n -> n
      | None -> Table.count tbl c.tuple
    in
    let after = before + c.count in
    if after < 0 then
      invalid_arg
        (Format.asprintf
           "Database.commit: table %s: multiplicity of %a would become %d"
           c.table Tuple.pp c.tuple after);
    Hashtbl.replace pending key after
  in
  List.iter check changes

(* Durable first, memory second: a crash mid-append leaves at worst a
   torn tail on disk and no trace in memory, so the recovered log is
   always a prefix of what this process believed committed. *)
let append_durable t record =
  (match t.backend with
  | Mem -> ()
  | Disk d -> Wal_store.append ~fault:d.fault d.wal_store record);
  Wal.append t.wal record

let commit_record t ~txn_id ~changes ~marker =
  (match t.backend with
  | Disk d when d.pending <> [] ->
      invalid_arg "Database.commit: recovered records pending; call recover_pending"
  | _ -> ());
  let csn = t.last_csn + 1 in
  t.wall <- t.wall +. t.wall_tick;
  let record = { Wal.csn; txn_id; wall = t.wall; changes; marker } in
  append_durable t record;
  note_wal_write t ~changes;
  List.iter
    (fun (c : Wal.change) ->
      Table.apply_change (Hashtbl.find t.tables c.table) c.tuple c.count)
    changes;
  t.last_csn <- csn;
  t.commits <- t.commits + 1;
  List.iter (fun f -> f record) t.commit_triggers;
  csn

let commit t txn =
  check_open txn;
  txn.open_ <- false;
  let changes = List.rev txn.writes in
  validate t changes;
  commit_record t ~txn_id:txn.id ~changes ~marker:None

let abort txn = txn.open_ <- false

let run t f =
  let txn = begin_txn t in
  (try f txn
   with exn ->
     abort txn;
     raise exn);
  commit t txn

let commit_marker t ~tag =
  let id = t.next_txn_id in
  t.next_txn_id <- id + 1;
  commit_record t ~txn_id:id ~changes:[] ~marker:(Some tag)

let add_write_trigger t f = t.write_triggers <- t.write_triggers @ [ f ]

let add_commit_trigger t f = t.commit_triggers <- t.commit_triggers @ [ f ]

let stats_commits t = t.commits

let restore t records =
  if Wal.length t.wal > Wal.first_pos t.wal then
    invalid_arg "Database.restore: database already has commits";
  (match t.backend with
  | Disk d when d.pending <> [] ->
      invalid_arg "Database.restore: recovered records pending; call recover_pending"
  | _ -> ());
  List.iter
    (fun (record : Wal.record) ->
      validate t record.changes;
      append_durable t record;
      List.iter
        (fun (c : Wal.change) ->
          match Hashtbl.find_opt t.tables c.table with
          | Some tbl -> Table.apply_change tbl c.tuple c.count
          | None -> invalid_arg ("Database.restore: unknown table " ^ c.table))
        record.changes;
      t.last_csn <- record.csn;
      t.next_txn_id <- max t.next_txn_id (record.txn_id + 1);
      t.wall <- max t.wall record.wall;
      t.commits <- t.commits + 1)
    records

(* ------------------------------------------------------------------ *)
(* Disk-mode durability: recovery, flush barrier, segment reclaim      *)

let recovery_torn t = match t.backend with Mem -> None | Disk d -> d.torn

let has_pending_recovery t =
  match t.backend with Mem -> false | Disk d -> d.pending <> []

(* Finish opening an existing disk directory, once the schema (tables,
   indexes) has been recreated: records above the data-file snapshot are
   re-applied to the tables; the rest only rehydrate the in-memory log.
   With a reclaimed prefix, per-table base states are reconstructed at
   the WAL base by subtracting the snapshot's own tail. *)
let recover_pending t =
  match t.backend with
  | Mem -> ()
  | Disk d ->
      let records = d.pending in
      d.pending <- [];
      let data_csn = Store.data_csn d.store in
      let base = Wal.first_pos t.wal in
      if base > 0 then
        Hashtbl.iter
          (fun name tbl ->
            let state = Table.contents tbl in
            (* state is at [data_csn]; walk it back to [base]. *)
            List.iter
              (fun (r : Wal.record) ->
                if r.csn > base && r.csn <= data_csn then
                  List.iter
                    (fun (c : Wal.change) ->
                      if String.equal c.table name then
                        Relation.add state c.tuple (-c.count))
                    r.changes)
              records;
            Hashtbl.replace t.base_states name state)
          t.tables;
      List.iter
        (fun (record : Wal.record) ->
          Wal.append t.wal record;
          if record.csn > data_csn then
            List.iter
              (fun (c : Wal.change) ->
                match Hashtbl.find_opt t.tables c.table with
                | Some tbl -> Table.apply_change tbl c.tuple c.count
                | None ->
                    invalid_arg
                      ("Database.recover_pending: unknown table " ^ c.table))
              record.changes;
          t.last_csn <- record.csn;
          t.next_txn_id <- max t.next_txn_id (record.txn_id + 1);
          t.wall <- max t.wall record.wall;
          t.commits <- t.commits + 1)
        records

(* The durability barrier: fsync the WAL, then write back dirty cached
   pages and flip the data file's meta snapshot to [now]. WAL first —
   the snapshot must never describe commits the log does not hold. *)
let sync t =
  match t.backend with
  | Mem -> ()
  | Disk d ->
      Wal_store.sync ~fault:d.fault d.wal_store;
      Store.barrier ~fault:d.fault d.store ~data_csn:t.last_csn

let data_csn t =
  match t.backend with Mem -> t.last_csn | Disk d -> Store.data_csn d.store

let wal_base t = Wal.first_pos t.wal

let base_state t name = Hashtbl.find_opt t.base_states name

(* Reclaim the WAL prefix at or below [upto]: drop the in-memory records
   (folding them into the per-table base states History replays from)
   and delete every on-disk segment entirely below the cut. Clamped to
   the data-file snapshot — reclaiming past it would leave the store
   unrecoverable. Returns the number of segments deleted. No-op on the
   in-memory backend, whose WAL is the only durable artifact. *)
let reclaim_wal t ~upto =
  match t.backend with
  | Mem -> 0
  | Disk d ->
      let upto = min upto (Store.data_csn d.store) in
      let base = Wal.first_pos t.wal in
      if upto <= base then 0
      else begin
        let base_state name =
          match Hashtbl.find_opt t.base_states name with
          | Some state -> state
          | None ->
              let state =
                match Hashtbl.find_opt t.tables name with
                | Some tbl -> Relation.create (Table.schema tbl)
                | None -> invalid_arg ("Database.reclaim_wal: unknown table " ^ name)
              in
              Hashtbl.replace t.base_states name state;
              state
        in
        for pos = base to upto - 1 do
          let record = Wal.get t.wal pos in
          List.iter
            (fun (c : Wal.change) ->
              Relation.add (base_state c.table) c.tuple c.count)
            record.changes
        done;
        Wal.truncate_prefix t.wal ~upto_csn:upto;
        Wal_store.reclaim ~fault:d.fault d.wal_store ~upto
      end

let set_storage_fault t fault =
  match t.backend with Mem -> () | Disk d -> d.fault <- fault

(* Scheduler hint: how much more a step costs when its reads miss the
   cache. 1.0 in memory; on disk, scales with the observed miss ratio
   once the cache has seen enough traffic to judge. *)
let cold_read_factor t =
  match t.backend with
  | Mem -> 1.0
  | Disk d ->
      let cache = Store.cache d.store in
      let total = Block_cache.hits cache + Block_cache.misses cache in
      if total < 256 then 1.0
      else 2.0 -. Block_cache.hit_ratio cache

let live_segments t =
  match t.backend with Mem -> 0 | Disk d -> Wal_store.live_segments d.wal_store

let resident_pages t =
  match t.backend with Mem -> 0 | Disk d -> Store.resident_pages d.store

let storage_json t =
  match t.backend with
  | Mem -> Printf.sprintf {|{"mode": "mem", "wal_records": %d}|} (Wal.length t.wal)
  | Disk d ->
      let reclaimed_segments, reclaimed_upto = Wal_store.reclaimed d.wal_store in
      Printf.sprintf
        {|{"mode": "disk", "store": %s, "wal": {"live_segments": %d, "reclaimed_segments": %d, "reclaimed_upto": %d, "base": %d, "records": %d}}|}
        (Store.stats_json d.store)
        (Wal_store.live_segments d.wal_store)
        reclaimed_segments reclaimed_upto (Wal.first_pos t.wal)
        (Wal.length t.wal - Wal.first_pos t.wal)
