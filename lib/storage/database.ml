open Roll_relation
module Time = Roll_delta.Time

type t = {
  tables : (string, Table.t) Hashtbl.t;
  wal : Wal.t;
  mutable last_csn : Time.t;
  mutable next_txn_id : int;
  mutable wall : float;
  wall_tick : float;
  mutable commits : int;
  mutable write_triggers : (txn_id:int -> Wal.change -> unit) list;
  mutable commit_triggers : (Wal.record -> unit) list;
  mutable obs : Roll_obs.Obs.t;
  mutable wal_counters : (Roll_obs.Metrics.counter * Roll_obs.Metrics.counter) option;
}

type txn = {
  id : int;
  db : t;
  mutable writes : Wal.change list;  (** reverse order *)
  mutable open_ : bool;
}

let create ?(wall_start = 0.0) ?(wall_tick = 1.0) () =
  {
    tables = Hashtbl.create 16;
    wal = Wal.create ();
    last_csn = Time.origin;
    next_txn_id = 1;
    wall = wall_start;
    wall_tick;
    commits = 0;
    write_triggers = [];
    commit_triggers = [];
    obs = Roll_obs.Obs.disabled ();
    wal_counters = None;
  }

let create_table t ~name schema =
  if Hashtbl.mem t.tables name then
    invalid_arg ("Database.create_table: table exists: " ^ name);
  let table = Table.create ~name schema in
  Hashtbl.add t.tables name table;
  table

let table t name =
  match Hashtbl.find_opt t.tables name with
  | Some tbl -> tbl
  | None -> raise Not_found

let find_table t name = Hashtbl.find_opt t.tables name

let tables t =
  Hashtbl.fold (fun _ tbl acc -> tbl :: acc) t.tables []
  |> List.sort (fun a b -> String.compare (Table.name a) (Table.name b))

let wal t = t.wal

let obs t = t.obs

let set_obs t obs =
  t.obs <- obs;
  t.wal_counters <- None

(* WAL writes are far too frequent for per-record spans; they surface as
   registry counters instead (and in the drain spans that caused them). *)
let note_wal_write t ~changes =
  if Roll_obs.Obs.enabled t.obs then begin
    let records, changed_rows =
      match t.wal_counters with
      | Some pair -> pair
      | None ->
          let m = Roll_obs.Obs.metrics t.obs in
          let pair =
            ( Roll_obs.Metrics.counter m
                ~help:"Records appended to the write-ahead log"
                "roll_wal_records_total",
              Roll_obs.Metrics.counter m
                ~help:"Row changes appended to the write-ahead log"
                "roll_wal_changes_total" )
          in
          t.wal_counters <- Some pair;
          pair
    in
    Roll_obs.Metrics.inc records;
    Roll_obs.Metrics.add changed_rows (float_of_int (List.length changes))
  end

let now t = t.last_csn

let wall_now t = t.wall

let advance_wall t dt =
  if dt < 0.0 then invalid_arg "Database.advance_wall: negative";
  t.wall <- t.wall +. dt

let begin_txn t =
  let id = t.next_txn_id in
  t.next_txn_id <- id + 1;
  { id; db = t; writes = []; open_ = true }

let txn_id txn = txn.id

let check_open txn = if not txn.open_ then invalid_arg "Database: closed txn"

let write txn ~table tuple ~count =
  check_open txn;
  if count <> 0 then begin
    let change = { Wal.table; tuple; count } in
    txn.writes <- change :: txn.writes;
    List.iter (fun f -> f ~txn_id:txn.id change) txn.db.write_triggers
  end

let insert txn ~table tuple = write txn ~table tuple ~count:1

let delete txn ~table tuple = write txn ~table tuple ~count:(-1)

let update txn ~table ~old_tuple ~new_tuple =
  delete txn ~table old_tuple;
  insert txn ~table new_tuple

(* Verify that applying [changes] leaves every multiplicity non-negative,
   accounting for several changes to the same tuple in one transaction. *)
let validate t changes =
  let pending = Hashtbl.create 8 in
  let check (c : Wal.change) =
    let tbl =
      match Hashtbl.find_opt t.tables c.table with
      | Some tbl -> tbl
      | None -> invalid_arg ("Database.commit: unknown table " ^ c.table)
    in
    if not (Tuple.conforms (Table.schema tbl) c.tuple) then
      invalid_arg
        (Format.asprintf "Database.commit: %a does not conform to %s" Tuple.pp
           c.tuple c.table);
    let key = (c.table, c.tuple) in
    let before =
      match Hashtbl.find_opt pending key with
      | Some n -> n
      | None -> Table.count tbl c.tuple
    in
    let after = before + c.count in
    if after < 0 then
      invalid_arg
        (Format.asprintf
           "Database.commit: table %s: multiplicity of %a would become %d"
           c.table Tuple.pp c.tuple after);
    Hashtbl.replace pending key after
  in
  List.iter check changes

let commit_record t ~txn_id ~changes ~marker =
  let csn = t.last_csn + 1 in
  t.wall <- t.wall +. t.wall_tick;
  let record = { Wal.csn; txn_id; wall = t.wall; changes; marker } in
  Wal.append t.wal record;
  note_wal_write t ~changes;
  List.iter
    (fun (c : Wal.change) ->
      Table.apply_change (Hashtbl.find t.tables c.table) c.tuple c.count)
    changes;
  t.last_csn <- csn;
  t.commits <- t.commits + 1;
  List.iter (fun f -> f record) t.commit_triggers;
  csn

let commit t txn =
  check_open txn;
  txn.open_ <- false;
  let changes = List.rev txn.writes in
  validate t changes;
  commit_record t ~txn_id:txn.id ~changes ~marker:None

let abort txn = txn.open_ <- false

let run t f =
  let txn = begin_txn t in
  (try f txn
   with exn ->
     abort txn;
     raise exn);
  commit t txn

let commit_marker t ~tag =
  let id = t.next_txn_id in
  t.next_txn_id <- id + 1;
  commit_record t ~txn_id:id ~changes:[] ~marker:(Some tag)

let add_write_trigger t f = t.write_triggers <- t.write_triggers @ [ f ]

let add_commit_trigger t f = t.commit_triggers <- t.commit_triggers @ [ f ]

let stats_commits t = t.commits

let restore t records =
  if Wal.length t.wal > 0 then
    invalid_arg "Database.restore: database already has commits";
  List.iter
    (fun (record : Wal.record) ->
      validate t record.changes;
      Wal.append t.wal record;
      List.iter
        (fun (c : Wal.change) ->
          match Hashtbl.find_opt t.tables c.table with
          | Some tbl -> Table.apply_change tbl c.tuple c.count
          | None -> invalid_arg ("Database.restore: unknown table " ^ c.table))
        record.changes;
      t.last_csn <- record.csn;
      t.next_txn_id <- max t.next_txn_id (record.txn_id + 1);
      t.wall <- max t.wall record.wall;
      t.commits <- t.commits + 1)
    records
