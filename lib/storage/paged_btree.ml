(* A B+-tree stored node-per-page behind a {!Block_cache}.

   One tree is a sorted map [Tuple.t -> int] (multiset counts). Tables
   store row -> multiplicity; secondary indexes store composite keys
   (projection ++ row) -> multiplicity, so a single structure serves
   both (see {!Store}). [Tuple.compare] orders by arity first, then
   element-wise, so same-shape composite keys sort lexicographically by
   their projection prefix.

   Mutation is copy-on-write in step with the pager's barrier epochs: a
   node whose page predates the current epoch is relocated to a fresh
   page when modified, and the parent is rewritten along the descent
   path; nodes already fresh this epoch are updated in place. The root
   page id therefore moves, and the durable root is whatever the catalog
   recorded at the last barrier — a crash rolls back to that snapshot.

   There is no leaf chaining (sibling pointers would have to be COW'd on
   every neighbour relocation); ordered iteration walks a descent stack
   instead. Splits are by encoded size, not entry count: a node that no
   longer fits its page is halved (recursively) and the separators
   bubble up. Deletion is lazy — entries disappear when their count hits
   zero, but nodes are never merged; an empty leaf stays in the tree
   until its keys return or the tree is cleared.

   Decoded nodes are cached per-context keyed by page id, strictly as a
   subset of the block cache's resident set (the cache's eviction hook
   drops the decoded copy), so cache capacity bounds total memory. *)

module Tuple = Roll_relation.Tuple
module Value = Roll_relation.Value

type node =
  | Leaf of (Tuple.t * int) array
  | Internal of { keys : Tuple.t array; children : int array }
      (* children.(i) holds keys in [keys.(i-1), keys.(i)), with the
         missing bounds unbounded; |children| = |keys| + 1 *)

type ctx = {
  pager : Pager.t;
  cache : Block_cache.t;
  nodes : (int, node) Hashtbl.t;  (** decoded subset of the block cache *)
}

let make_ctx pager cache =
  let nodes = Hashtbl.create 256 in
  Block_cache.set_on_evict cache (Hashtbl.remove nodes);
  { pager; cache; nodes }

type t = { ctx : ctx; mutable root : int }  (* root page id; 0 = empty *)

let create ctx = { ctx; root = 0 }

let open_root ctx root = { ctx; root }

let root t = t.root

let is_empty t = t.root = 0

(* --- node codec (versioned) --- *)

let codec_version = 1

let corrupt fmt = Printf.ksprintf (fun s -> raise (Pager.Corrupt s)) fmt

let encode_tuple buf (tup : Tuple.t) =
  let arity = Array.length tup in
  if arity > 255 then invalid_arg "Paged_btree: tuple arity > 255";
  Buffer.add_uint8 buf arity;
  Array.iter
    (fun (v : Value.t) ->
      match v with
      | Null -> Buffer.add_uint8 buf 0
      | Bool b ->
          Buffer.add_uint8 buf 1;
          Buffer.add_uint8 buf (Bool.to_int b)
      | Int i ->
          Buffer.add_uint8 buf 2;
          Buffer.add_int64_le buf (Int64.of_int i)
      | Float f ->
          Buffer.add_uint8 buf 3;
          Buffer.add_int64_le buf (Int64.bits_of_float f)
      | Str s ->
          if String.length s > 0xFFFF then
            invalid_arg "Paged_btree: string value > 64KiB";
          Buffer.add_uint8 buf 4;
          Buffer.add_uint16_le buf (String.length s);
          Buffer.add_string buf s)
    tup

let u8 b pos =
  let v = Bytes.get_uint8 b !pos in
  incr pos;
  v

let u16 b pos =
  let v = Bytes.get_uint16_le b !pos in
  pos := !pos + 2;
  v

let i64 b pos =
  let v = Bytes.get_int64_le b !pos in
  pos := !pos + 8;
  v

let u32 b pos =
  let v = Bytes.get_int32_le b !pos in
  pos := !pos + 4;
  Int32.to_int v land 0xFFFFFFFF

let decode_tuple b pos =
  let arity = u8 b pos in
  let out = Array.make arity Value.Null in
  for i = 0 to arity - 1 do
    out.(i) <-
      (match u8 b pos with
      | 0 -> Value.Null
      | 1 -> Value.Bool (u8 b pos <> 0)
      | 2 -> Value.Int (Int64.to_int (i64 b pos))
      | 3 -> Value.Float (Int64.float_of_bits (i64 b pos))
      | 4 ->
          let len = u16 b pos in
          let s = Bytes.sub_string b !pos len in
          pos := !pos + len;
          Value.Str s
      | tag -> corrupt "node codec: bad value tag %d" tag)
  done;
  out

let encode_node node =
  let buf = Buffer.create 512 in
  Buffer.add_uint8 buf codec_version;
  (match node with
  | Leaf entries ->
      Buffer.add_uint8 buf 0;
      Buffer.add_uint16_le buf (Array.length entries);
      Array.iter
        (fun (key, count) ->
          encode_tuple buf key;
          Buffer.add_int64_le buf (Int64.of_int count))
        entries
  | Internal { keys; children } ->
      Buffer.add_uint8 buf 1;
      Buffer.add_uint16_le buf (Array.length keys);
      Array.iter (encode_tuple buf) keys;
      Array.iter
        (fun child -> Buffer.add_int32_le buf (Int32.of_int child))
        children);
  Buffer.to_bytes buf

let decode_node payload =
  let pos = ref 0 in
  if Bytes.length payload < 4 then corrupt "node codec: short page";
  let version = u8 payload pos in
  if version <> codec_version then
    corrupt "node codec: unsupported version %d" version;
  match u8 payload pos with
  | 0 ->
      let n = u16 payload pos in
      let entries = Array.make n ([||], 0) in
      for i = 0 to n - 1 do
        let key = decode_tuple payload pos in
        let count = Int64.to_int (i64 payload pos) in
        entries.(i) <- (key, count)
      done;
      Leaf entries
  | 1 ->
      let n = u16 payload pos in
      let keys = Array.make n [||] in
      for i = 0 to n - 1 do
        keys.(i) <- decode_tuple payload pos
      done;
      let children = Array.make (n + 1) 0 in
      for i = 0 to n do
        children.(i) <- u32 payload pos
      done;
      Internal { keys; children }
  | kind -> corrupt "node codec: bad node kind %d" kind

(* --- page <-> node, through the two cache layers --- *)

let load ctx id =
  match Hashtbl.find_opt ctx.nodes id with
  | Some node ->
      Block_cache.note_hit ctx.cache id;
      node
  | None ->
      let node = decode_node (Block_cache.read ctx.cache id) in
      Hashtbl.replace ctx.nodes id node;
      node

let drop_page ctx id =
  Pager.free ctx.pager id;
  Block_cache.forget ctx.cache id;
  Hashtbl.remove ctx.nodes id

(* Halve an over-full node; the separator moves up to the parent. *)
let halve = function
  | Leaf entries ->
      let n = Array.length entries in
      if n < 2 then invalid_arg "Paged_btree: entry too large for one page";
      let mid = n / 2 in
      ( Leaf (Array.sub entries 0 mid),
        fst entries.(mid),
        Leaf (Array.sub entries mid (n - mid)) )
  | Internal { keys; children } ->
      let n = Array.length keys in
      if n < 2 then invalid_arg "Paged_btree: separators too large for one page";
      let m = n / 2 in
      ( Internal { keys = Array.sub keys 0 m; children = Array.sub children 0 (m + 1) },
        keys.(m),
        Internal
          {
            keys = Array.sub keys (m + 1) (n - m - 1);
            children = Array.sub children (m + 1) (n - m);
          } )

let rec split_fit ctx node =
  let enc = encode_node node in
  if Bytes.length enc <= Pager.payload_capacity ctx.pager then ([ (node, enc) ], [])
  else begin
    let left, sep, right = halve node in
    let ln, ls = split_fit ctx left in
    let rn, rs = split_fit ctx right in
    (ln @ rn, ls @ (sep :: rs))
  end

(* Write [node] in place of page [old] (0 = none). Returns the
   replacement page ids plus the separators between them (singleton and
   no separators when the node still fits one page). *)
let store_node ctx ~old node =
  let parts, seps = split_fit ctx node in
  let first_id =
    if old <> 0 && Pager.is_fresh ctx.pager old then old
    else begin
      if old <> 0 then drop_page ctx old;
      Pager.alloc ctx.pager
    end
  in
  let ids =
    List.mapi
      (fun i (n, enc) ->
        let id = if i = 0 then first_id else Pager.alloc ctx.pager in
        Block_cache.write ctx.cache id enc;
        Hashtbl.replace ctx.nodes id n;
        id)
      parts
  in
  (ids, seps)

(* --- searches --- *)

(* First index with entries.(i)'s key >= key. *)
let leaf_lower entries key =
  let lo = ref 0 and hi = ref (Array.length entries) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if Tuple.compare (fst entries.(mid)) key < 0 then lo := mid + 1
    else hi := mid
  done;
  !lo

(* Child that can contain [key]: first j with keys.(j) > key. *)
let child_index keys key =
  let lo = ref 0 and hi = ref (Array.length keys) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if Tuple.compare keys.(mid) key <= 0 then lo := mid + 1 else hi := mid
  done;
  !lo

let rec get_in ctx page key =
  match load ctx page with
  | Leaf entries ->
      let i = leaf_lower entries key in
      if i < Array.length entries && Tuple.equal (fst entries.(i)) key then
        snd entries.(i)
      else 0
  | Internal { keys; children } ->
      get_in ctx children.(child_index keys key) key

let get t key = if t.root = 0 then 0 else get_in t.ctx t.root key

let mem t key = get t key <> 0

(* --- mutation --- *)

let splice_arrays base i replacement =
  Array.concat
    [
      Array.sub base 0 i;
      replacement;
      Array.sub base (i + 1) (Array.length base - i - 1);
    ]

(* Copy-on-write insert/merge of [delta] for [key] under [page]; stores
   the previous count in [prev]. Returns the replacement (ids, seps) for
   this subtree. *)
let rec insert_rec ctx page key delta prev =
  match load ctx page with
  | Leaf entries ->
      let n = Array.length entries in
      let i = leaf_lower entries key in
      let exists = i < n && Tuple.equal (fst entries.(i)) key in
      let old_count = if exists then snd entries.(i) else 0 in
      prev := old_count;
      let count = old_count + delta in
      let entries' =
        if exists then
          if count = 0 then
            Array.append (Array.sub entries 0 i)
              (Array.sub entries (i + 1) (n - i - 1))
          else begin
            let copy = Array.copy entries in
            copy.(i) <- (key, count);
            copy
          end
        else
          Array.concat
            [ Array.sub entries 0 i; [| (key, count) |]; Array.sub entries i (n - i) ]
      in
      store_node ctx ~old:page (Leaf entries')
  | Internal { keys; children } ->
      let i = child_index keys key in
      let ids, seps = insert_rec ctx children.(i) key delta prev in
      (match (ids, seps) with
      | [ id ], [] when id = children.(i) ->
          (* Child updated in place: this node's image is unchanged. *)
          ([ page ], [])
      | _ ->
          let children' = splice_arrays children i (Array.of_list ids) in
          let keys' =
            Array.concat
              [
                Array.sub keys 0 i;
                Array.of_list seps;
                Array.sub keys i (Array.length keys - i);
              ]
          in
          store_node ctx ~old:page (Internal { keys = keys'; children = children' }))

(* Merge [delta] into [key]'s count; returns the previous count. *)
let add t key delta =
  if delta = 0 then get t key
  else if t.root = 0 then begin
    (match store_node t.ctx ~old:0 (Leaf [| (key, delta) |]) with
    | [ id ], [] -> t.root <- id
    | _ -> assert false);
    0
  end
  else begin
    let prev = ref 0 in
    let ids, seps = insert_rec t.ctx t.root key delta prev in
    let rec reroot ids seps =
      match ids with
      | [ id ] -> t.root <- id
      | _ ->
          let node =
            Internal { keys = Array.of_list seps; children = Array.of_list ids }
          in
          let ids', seps' = store_node t.ctx ~old:0 node in
          reroot ids' seps'
    in
    reroot ids seps;
    (* A deletion can empty the root leaf; collapse to the empty tree so
       the page returns to the free list. *)
    (match load t.ctx t.root with
    | Leaf [||] ->
        drop_page t.ctx t.root;
        t.root <- 0
    | _ -> ());
    !prev
  end

(* --- ordered iteration (descent stack; no sibling pointers) --- *)

type frame =
  | F_leaf of (Tuple.t * int) array * int
  | F_node of int array * int  (* children, next child index *)

let frame_of ctx page =
  match load ctx page with
  | Leaf entries -> F_leaf (entries, 0)
  | Internal { children; _ } -> F_node (children, 0)

let rec seq_next ctx stack () =
  match stack with
  | [] -> Seq.Nil
  | F_leaf (entries, i) :: rest ->
      if i < Array.length entries then
        Seq.Cons (entries.(i), seq_next ctx (F_leaf (entries, i + 1) :: rest))
      else seq_next ctx rest ()
  | F_node (children, i) :: rest ->
      if i < Array.length children then
        seq_next ctx
          (frame_of ctx children.(i) :: F_node (children, i + 1) :: rest)
          ()
      else seq_next ctx rest ()

(* All entries, in key order. Lazy: mutating the tree invalidates any
   partially-consumed sequence (same caveat as the in-memory B-tree). *)
let seq t =
  if t.root = 0 then Seq.empty
  else fun () -> seq_next t.ctx [ frame_of t.ctx t.root ] ()

(* Entries with key >= [key], in key order. *)
let seq_from t key =
  if t.root = 0 then Seq.empty
  else fun () ->
    let rec seed stack page =
      match load t.ctx page with
      | Leaf entries -> F_leaf (entries, leaf_lower entries key) :: stack
      | Internal { keys; children } ->
          let i = child_index keys key in
          seed (F_node (children, i + 1) :: stack) children.(i)
    in
    seq_next t.ctx (seed [] t.root) ()

let iter t f = Seq.iter (fun (k, c) -> f k c) (seq t)

(* --- maintenance --- *)

let rec collect_pages ctx page acc =
  match load ctx page with
  | Leaf _ -> page :: acc
  | Internal { children; _ } ->
      Array.fold_left
        (fun acc child -> collect_pages ctx child acc)
        (page :: acc) children

let reachable t = if t.root = 0 then [] else collect_pages t.ctx t.root []

let clear t =
  List.iter (drop_page t.ctx) (reachable t);
  t.root <- 0

let check_invariants t =
  let ctx = t.ctx in
  let fail fmt = Printf.ksprintf failwith fmt in
  let check_bounds key lo hi =
    (match lo with
    | Some l when Tuple.compare key l < 0 -> fail "key below separator bound"
    | _ -> ());
    match hi with
    | Some h when Tuple.compare key h >= 0 -> fail "key above separator bound"
    | _ -> ()
  in
  let rec go page lo hi =
    if Bytes.length (encode_node (load ctx page)) > Pager.payload_capacity ctx.pager
    then fail "page %d: encoded node exceeds page capacity" page;
    match load ctx page with
    | Leaf entries ->
        Array.iteri
          (fun i (key, count) ->
            if count = 0 then fail "zero-count entry";
            if i > 0 && Tuple.compare (fst entries.(i - 1)) key >= 0 then
              fail "unsorted leaf";
            check_bounds key lo hi)
          entries
    | Internal { keys; children } ->
        if Array.length children <> Array.length keys + 1 then
          fail "internal node child arity";
        if Array.length keys = 0 then fail "empty internal node";
        Array.iteri
          (fun i key ->
            if i > 0 && Tuple.compare keys.(i - 1) key >= 0 then
              fail "unsorted separators";
            check_bounds key lo hi)
          keys;
        Array.iteri
          (fun i child ->
            let lo' = if i = 0 then lo else Some keys.(i - 1) in
            let hi' = if i = Array.length keys then hi else Some keys.(i) in
            go child lo' hi')
          children
  in
  if t.root <> 0 then go t.root None None
