(* Fixed-size pages on a single data file.

   Layout: pages 0 and 1 are alternating meta pages (the only pages ever
   overwritten in place); data pages start at 2. Every page carries a
   CRC32 over its payload, so a torn or bit-rotted page is detected on
   read rather than silently decoded.

   Durability follows the copy-on-write discipline: between two
   {!barrier} calls, a logical page is never overwritten at its durable
   location — writers allocate a fresh page, write the new image there,
   and retire the old page id. The meta page committed by the last
   barrier therefore always points (through the catalog roots it embeds)
   at a consistent tree, no matter where a crash lands. [barrier] fsyncs
   the data, then flips to the other meta slot with a higher epoch; a
   torn meta write loses only the flip, never the previous snapshot.

   Free pages are tracked in memory only. Pages retired since the last
   barrier stay on a pending list (the durable snapshot still references
   them) and become reusable once the barrier commits; pages allocated
   *and* retired within one epoch were never durable and recycle
   immediately. On reopen the free list is rebuilt by a reachability
   scan from the catalog roots (see {!set_free_list}), which also
   reclaims pages that belonged to in-memory-only structures such as
   secondary indexes. *)

exception Corrupt of string

let magic = "ROLLPAGE 1"

let meta_pages = 2

(* --- CRC32 (IEEE, table-driven) --- *)

let crc_table =
  lazy
    (Array.init 256 (fun n ->
         let c = ref (Int32.of_int n) in
         for _ = 0 to 7 do
           if Int32.logand !c 1l <> 0l then
             c := Int32.logxor 0xEDB88320l (Int32.shift_right_logical !c 1)
           else c := Int32.shift_right_logical !c 1
         done;
         !c))

let crc32 bytes ~pos ~len =
  let table = Lazy.force crc_table in
  let c = ref 0xFFFFFFFFl in
  for i = pos to pos + len - 1 do
    let idx =
      Int32.to_int (Int32.logand (Int32.logxor !c (Int32.of_int (Char.code (Bytes.get bytes i)))) 0xFFl)
    in
    c := Int32.logxor table.(idx) (Int32.shift_right_logical !c 8)
  done;
  Int32.logxor !c 0xFFFFFFFFl

(* --- pager --- *)

type t = {
  uid : int;
  path : string;
  page_size : int;
  mutable fd : Unix.file_descr option;  (** lazily (re)opened, see fd cap *)
  mutable busy : bool;  (** an I/O op holds the fd; not evictable *)
  mutable last_used : int;  (** fd-cap LRU tick *)
  mutable n_pages : int;  (** allocated page ids are < n_pages *)
  mutable free : int list;  (** reusable now *)
  mutable pending_free : int list;  (** reusable after the next barrier *)
  fresh : (int, unit) Hashtbl.t;  (** allocated since the last barrier *)
  mutable epoch : int;
  mutable data_csn : int;
  mutable catalog : string;
  mutable page_reads : int;
  mutable page_writes : int;
  mutable closed : bool;
}

(* Test suites open hundreds of databases and rarely close them, so the
   process would exhaust its fd limit if every pager pinned one. A small
   global LRU keeps at most [fd_limit] files open; everyone else closes
   and lazily reopens on next use (positions are absolute, nothing is
   lost). Pagers mid-I/O are pinned via [busy] so an eviction triggered
   from another domain can never close an fd out from under a read. *)
let fd_limit = 64

let fd_mutex = Mutex.create ()

let open_pagers : (int, t) Hashtbl.t = Hashtbl.create 64

let fd_tick = ref 0

let next_uid = ref 0

let evict_one_fd () =
  let victim =
    Hashtbl.fold
      (fun _ p best ->
        if p.busy then best
        else
          match best with
          | Some b when b.last_used <= p.last_used -> best
          | _ -> Some p)
      open_pagers None
  in
  match victim with
  | None -> false
  | Some v ->
      (match v.fd with
      | Some fd -> ( try Unix.close fd with Unix.Unix_error _ -> ())
      | None -> ());
      v.fd <- None;
      Hashtbl.remove open_pagers v.uid;
      true

(* Pin the pager's fd for the duration of [f]. *)
let with_fd t f =
  let fd =
    Mutex.protect fd_mutex (fun () ->
        incr fd_tick;
        t.last_used <- !fd_tick;
        t.busy <- true;
        match t.fd with
        | Some fd -> fd
        | None ->
            while Hashtbl.length open_pagers >= fd_limit && evict_one_fd () do
              ()
            done;
            let fd = Unix.openfile t.path [ Unix.O_RDWR; Unix.O_CREAT ] 0o644 in
            t.fd <- Some fd;
            Hashtbl.replace open_pagers t.uid t;
            fd)
  in
  Fun.protect ~finally:(fun () -> t.busy <- false) (fun () -> f fd)

(* Page wire format: [crc32 u32][len u16][payload...], zero padded. *)
let header_bytes = 6

let payload_capacity t = t.page_size - header_bytes

let page_size t = t.page_size

let n_pages t = t.n_pages

let free_count t = List.length t.free + List.length t.pending_free

let data_csn t = t.data_csn

let catalog t = t.catalog

let page_reads t = t.page_reads

let page_writes t = t.page_writes

let pread_exact fd buf ~off =
  ignore (Unix.lseek fd off Unix.SEEK_SET);
  let len = Bytes.length buf in
  let rec go pos =
    if pos < len then begin
      let n = Unix.read fd buf pos (len - pos) in
      if n = 0 then raise (Corrupt "short read (truncated data file)");
      go (pos + n)
    end
  in
  go 0

let pwrite_exact fd buf ~off =
  ignore (Unix.lseek fd off Unix.SEEK_SET);
  let len = Bytes.length buf in
  let rec go pos =
    if pos < len then go (pos + Unix.write fd buf pos (len - pos))
  in
  go 0

let check_open t = if t.closed then invalid_arg "Pager: closed"

(* Raw page I/O. [read] validates the CRC; an all-zero page (never
   written) decodes as an empty payload, which callers treat as corrupt
   at the next layer if it was supposed to hold a node. *)
let read_raw t id =
  let buf = Bytes.create t.page_size in
  with_fd t (fun fd -> pread_exact fd buf ~off:(id * t.page_size));
  let stored = Bytes.get_int32_le buf 0 in
  let len = Bytes.get_uint16_le buf 4 in
  if len > payload_capacity t then
    raise (Corrupt (Printf.sprintf "page %d: bad payload length %d" id len));
  let computed = crc32 buf ~pos:header_bytes ~len in
  if stored <> computed then
    raise (Corrupt (Printf.sprintf "page %d: CRC mismatch" id));
  t.page_reads <- t.page_reads + 1;
  Bytes.sub buf header_bytes len

let write_raw t id payload =
  let len = Bytes.length payload in
  if len > payload_capacity t then
    invalid_arg
      (Printf.sprintf "Pager.write: payload %d exceeds capacity %d" len
         (payload_capacity t));
  let buf = Bytes.make t.page_size '\000' in
  Bytes.blit payload 0 buf header_bytes len;
  Bytes.set_uint16_le buf 4 len;
  Bytes.set_int32_le buf 0 (crc32 buf ~pos:header_bytes ~len);
  with_fd t (fun fd -> pwrite_exact fd buf ~off:(id * t.page_size));
  t.page_writes <- t.page_writes + 1

let read t id =
  check_open t;
  if id < meta_pages || id >= t.n_pages then
    invalid_arg (Printf.sprintf "Pager.read: page %d out of range" id);
  read_raw t id

let write t id payload =
  check_open t;
  if id < meta_pages || id >= t.n_pages then
    invalid_arg (Printf.sprintf "Pager.write: page %d out of range" id);
  write_raw t id payload

(* --- meta pages --- *)

(* Meta payload: magic \n epoch \n page_size \n n_pages \n data_csn \n
   catalog-length \n catalog-bytes. *)
let encode_meta t =
  let buf = Buffer.create 256 in
  Buffer.add_string buf magic;
  Buffer.add_char buf '\n';
  Buffer.add_string buf (Printf.sprintf "%d %d %d %d\n" t.epoch t.page_size t.n_pages t.data_csn);
  Buffer.add_string buf (Printf.sprintf "%d\n" (String.length t.catalog));
  Buffer.add_string buf t.catalog;
  Bytes.of_string (Buffer.contents buf)

let decode_meta payload =
  let s = Bytes.to_string payload in
  let fail msg = raise (Corrupt ("meta page: " ^ msg)) in
  match String.index_opt s '\n' with
  | None -> fail "missing header"
  | Some i ->
      if String.sub s 0 i <> magic then fail "bad magic";
      let rest = String.sub s (i + 1) (String.length s - i - 1) in
      let epoch, psize, npages, csn, rest =
        try
          Scanf.sscanf rest "%d %d %d %d\n%n" (fun a b c d n ->
              (a, b, c, d, String.sub rest n (String.length rest - n)))
        with Scanf.Scan_failure _ | End_of_file -> fail "bad counters"
      in
      let cat_len, rest =
        try
          Scanf.sscanf rest "%d\n%n" (fun l n ->
              (l, String.sub rest n (String.length rest - n)))
        with Scanf.Scan_failure _ | End_of_file -> fail "bad catalog length"
      in
      if String.length rest < cat_len then fail "short catalog";
      (epoch, psize, npages, csn, String.sub rest 0 cat_len)

let write_meta t ~slot =
  let payload = encode_meta t in
  if Bytes.length payload > payload_capacity t then
    invalid_arg "Pager: catalog exceeds meta page capacity";
  write_raw t slot payload

(* --- lifecycle --- *)

let create ?(page_size = 4096) path =
  if page_size < 512 then invalid_arg "Pager.create: page_size < 512";
  let nonempty =
    Sys.file_exists path && (Unix.stat path).Unix.st_size > 0
  in
  let t =
    {
      uid =
        Mutex.protect fd_mutex (fun () ->
            incr next_uid;
            !next_uid);
      path;
      page_size;
      fd = None;
      busy = false;
      last_used = 0;
      n_pages = meta_pages;
      free = [];
      pending_free = [];
      fresh = Hashtbl.create 64;
      epoch = 0;
      data_csn = 0;
      catalog = "";
      page_reads = 0;
      page_writes = 0;
      closed = false;
    }
  in
  if nonempty then begin
    (* Pick the newest valid meta slot; one torn slot is survivable, two
       means the file is not ours or unrecoverable. *)
    let slot s = try Some (decode_meta (read_raw t s)) with Corrupt _ -> None in
    let best =
      match (slot 0, slot 1) with
      | Some ((e0, _, _, _, _) as m0), Some ((e1, _, _, _, _) as m1) ->
          if e0 >= e1 then m0 else m1
      | Some m, None | None, Some m -> m
      | None, None -> raise (Corrupt (path ^ ": no valid meta page"))
    in
    let epoch, psize, npages, csn, cat = best in
    if psize <> page_size then
      raise
        (Corrupt
           (Printf.sprintf "%s: page size %d on disk, %d requested" path psize
              page_size));
    t.epoch <- epoch;
    t.n_pages <- npages;
    t.data_csn <- csn;
    t.catalog <- cat
  end
  else begin
    write_meta t ~slot:0;
    write_meta t ~slot:1
  end;
  t

let existed path = Sys.file_exists path && (Unix.stat path).Unix.st_size > 0

let alloc t =
  check_open t;
  let id =
    match t.free with
    | id :: rest ->
        t.free <- rest;
        id
    | [] ->
        let id = t.n_pages in
        t.n_pages <- t.n_pages + 1;
        id
  in
  Hashtbl.replace t.fresh id ();
  id

let free t id =
  check_open t;
  if id < meta_pages || id >= t.n_pages then
    invalid_arg (Printf.sprintf "Pager.free: page %d out of range" id);
  if Hashtbl.mem t.fresh id then begin
    (* Never part of a durable snapshot: recycle immediately. *)
    Hashtbl.remove t.fresh id;
    t.free <- id :: t.free
  end
  else t.pending_free <- id :: t.pending_free

let is_fresh t id = Hashtbl.mem t.fresh id

(* After a reachability scan on reopen: everything outside [reachable]
   (and outside the meta pages) is free. *)
let set_free_list t ~reachable =
  let live = Hashtbl.create (List.length reachable * 2) in
  List.iter (fun id -> Hashtbl.replace live id ()) reachable;
  let free = ref [] in
  for id = t.n_pages - 1 downto meta_pages do
    if not (Hashtbl.mem live id) then free := id :: !free
  done;
  t.free <- !free;
  t.pending_free <- [];
  Hashtbl.reset t.fresh

let sync t =
  check_open t;
  with_fd t Unix.fsync

(* Commit the current state as the durable snapshot: fsync data pages,
   flip to the other meta slot, fsync again, then release the pages the
   previous snapshot was still holding. *)
let barrier t ~data_csn ~catalog =
  check_open t;
  with_fd t Unix.fsync;
  t.epoch <- t.epoch + 1;
  t.data_csn <- data_csn;
  t.catalog <- catalog;
  write_meta t ~slot:(t.epoch land 1);
  with_fd t Unix.fsync;
  t.free <- List.rev_append t.pending_free t.free;
  t.pending_free <- [];
  Hashtbl.reset t.fresh

let close t =
  if not t.closed then begin
    t.closed <- true;
    Mutex.protect fd_mutex (fun () ->
        (match t.fd with
        | Some fd -> ( try Unix.close fd with Unix.Unix_error _ -> ())
        | None -> ());
        t.fd <- None;
        Hashtbl.remove open_pagers t.uid)
  end

let path t = t.path
