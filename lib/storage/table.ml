open Roll_relation

module TupleBtree = Btree.Make (struct
  type t = Tuple.t

  let compare = Tuple.compare
end)

type index = { columns : int list; data : Tuple.t TupleBtree.t }

type t = {
  name : string;
  schema : Schema.t;
  data : Relation.t;
  mutable indexes : index list;
  (* Bumped on every committed change; cheap content-version for caches
     built over the table's state (the global clock advances on marker
     commits too, so it cannot version table contents). *)
  mutable version : int;
}

let create ~name schema =
  { name; schema; data = Relation.create schema; indexes = []; version = 0 }

let name t = t.name

let version t = t.version

let schema t = t.schema

let contents t = t.data

let cardinality t = Relation.total_count t.data

let mem t tuple = Relation.mem t.data tuple

let count t tuple = Relation.count t.data tuple

let index_add index tuple n =
  let key = Tuple.project tuple index.columns in
  if n > 0 then
    for _ = 1 to n do
      TupleBtree.add index.data key tuple
    done
  else
    for _ = 1 to -n do
      ignore (TupleBtree.remove index.data ~equal:Tuple.equal key tuple)
    done

let apply_change t tuple count =
  let current = Relation.count t.data tuple in
  if current + count < 0 then
    invalid_arg
      (Format.asprintf "Table %s: change %+d would make %a negative" t.name
         count Tuple.pp tuple);
  Relation.add t.data tuple count;
  t.version <- t.version + 1;
  List.iter (fun index -> index_add index tuple count) t.indexes

let create_index t ~columns =
  List.iter
    (fun c ->
      if c < 0 || c >= Schema.arity t.schema then
        invalid_arg (Printf.sprintf "Table.create_index: column %d out of range" c))
    columns;
  if not (List.exists (fun ix -> ix.columns = columns) t.indexes) then begin
    let index = { columns; data = TupleBtree.create () } in
    Relation.iter (fun tuple n -> index_add index tuple n) t.data;
    t.indexes <- index :: t.indexes
  end

let has_index t ~columns = List.exists (fun ix -> ix.columns = columns) t.indexes

let indexed_columns t = List.map (fun ix -> ix.columns) t.indexes

let find_index t ~columns =
  match List.find_opt (fun ix -> ix.columns = columns) t.indexes with
  | Some ix -> ix
  | None -> raise Not_found

let index_probe t ~columns key = TupleBtree.find (find_index t ~columns).data key

let scan_cursor t = Cursor.of_relation t.data

let probe_cursor t ~columns key =
  let ix = find_index t ~columns in
  Cursor.of_seq (fun () ->
      Seq.map
        (fun tuple -> { Cursor.tuple; count = 1; ts = Cursor.no_ts })
        (List.to_seq (TupleBtree.find ix.data key)))

let index_range_cursor t ~columns ~lo ~hi =
  let ix = find_index t ~columns in
  Cursor.of_seq (fun () ->
      Seq.map
        (fun (_key, tuple) -> { Cursor.tuple; count = 1; ts = Cursor.no_ts })
        (TupleBtree.range_seq ix.data ~lo ~hi))
