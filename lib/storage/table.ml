open Roll_relation

module TupleBtree = Btree.Make (struct
  type t = Tuple.t

  let compare = Tuple.compare
end)

type index = { columns : int list; data : Tuple.t TupleBtree.t }

type disk_index = { dcolumns : int list; dtree : Store.tree }

(* Two backends behind one signature: the in-memory multiset + B-tree
   indexes (the original representation, untouched so ROLL_STORE=mem is
   byte-identical), and the paged store, where both the table contents
   and every index are {!Paged_btree}s. A disk index stores composite
   keys — projection ++ row — mapping to the row's multiplicity;
   [Tuple.compare] sorts same-arity composites lexicographically, so an
   equality probe is a range scan over one projection prefix. *)
type mem_store = { data : Relation.t; mutable indexes : index list }

type disk_store = {
  store : Store.t;
  dtable : Store.tree;
  mutable dindexes : disk_index list;
}

type backend = Mem of mem_store | Disk of disk_store

type t = {
  name : string;
  schema : Schema.t;
  backend : backend;
  (* Bumped on every committed change; cheap content-version for caches
     built over the table's state (the global clock advances on marker
     commits too, so it cannot version table contents). *)
  mutable version : int;
}

let data_tree_name name = "tbl:" ^ name

let index_tree_name name columns =
  Printf.sprintf "idx:%s:%s" name
    (String.concat "," (List.map string_of_int columns))

let create ~name ?store schema =
  let backend =
    match store with
    | None -> Mem { data = Relation.create schema; indexes = [] }
    | Some store ->
        (* Adopt the tree from the catalog if the store already holds a
           durable snapshot of this table (reopen after checkpoint). *)
        Disk { store; dtable = Store.tree store (data_tree_name name); dindexes = [] }
  in
  { name; schema; backend; version = 0 }

let name t = t.name

let version t = t.version

let schema t = t.schema

let row_arity t = Schema.arity t.schema

let contents t =
  match t.backend with
  | Mem m -> m.data
  | Disk d ->
      (* Materialized copy: the live contents are on pages. *)
      let state = Relation.create t.schema in
      Seq.iter
        (fun (tuple, count) -> Relation.add state tuple count)
        (Store.seq d.store d.dtable);
      state

let cardinality t =
  match t.backend with
  | Mem m -> Relation.total_count m.data
  | Disk d -> d.dtable.Store.rows

(* Distinct tuples with non-zero multiplicity — the executor's and
   scheduler's cardinality estimate, O(1) on both backends. *)
let distinct_count t =
  match t.backend with
  | Mem m -> Relation.distinct_count m.data
  | Disk d -> d.dtable.Store.distinct

let count t tuple =
  match t.backend with
  | Mem m -> Relation.count m.data tuple
  | Disk d -> Store.get d.store d.dtable tuple

let mem t tuple = count t tuple > 0

let index_add index tuple n =
  let key = Tuple.project tuple index.columns in
  if n > 0 then
    for _ = 1 to n do
      TupleBtree.add index.data key tuple
    done
  else
    for _ = 1 to -n do
      ignore (TupleBtree.remove index.data ~equal:Tuple.equal key tuple)
    done

let disk_index_key ix tuple = Array.append (Tuple.project tuple ix.dcolumns) tuple

let apply_change t tuple count =
  (match t.backend with
  | Mem m ->
      let current = Relation.count m.data tuple in
      if current + count < 0 then
        invalid_arg
          (Format.asprintf "Table %s: change %+d would make %a negative" t.name
             count Tuple.pp tuple);
      Relation.add m.data tuple count;
      List.iter (fun index -> index_add index tuple count) m.indexes
  | Disk d ->
      let current = Store.get d.store d.dtable tuple in
      if current + count < 0 then
        invalid_arg
          (Format.asprintf "Table %s: change %+d would make %a negative" t.name
             count Tuple.pp tuple);
      ignore (Store.add d.store d.dtable tuple count);
      List.iter
        (fun ix -> ignore (Store.add d.store ix.dtree (disk_index_key ix tuple) count))
        d.dindexes);
  t.version <- t.version + 1

let check_index_columns t columns =
  List.iter
    (fun c ->
      if c < 0 || c >= Schema.arity t.schema then
        invalid_arg (Printf.sprintf "Table.create_index: column %d out of range" c))
    columns

let create_index t ~columns =
  check_index_columns t columns;
  match t.backend with
  | Mem m ->
      if not (List.exists (fun ix -> ix.columns = columns) m.indexes) then begin
        let index = { columns; data = TupleBtree.create () } in
        Relation.iter (fun tuple n -> index_add index tuple n) m.data;
        m.indexes <- index :: m.indexes
      end
  | Disk d ->
      if not (List.exists (fun ix -> ix.dcolumns = columns) d.dindexes) then begin
        let tname = index_tree_name t.name columns in
        let adopted = Store.find_tree d.store tname <> None in
        let ix = { dcolumns = columns; dtree = Store.tree d.store tname } in
        (* A tree already in the catalog was rebuilt to the snapshot the
           table itself was adopted at; only fresh trees need a scan. *)
        if not adopted then
          Seq.iter
            (fun (tuple, n) ->
              ignore (Store.add d.store ix.dtree (disk_index_key ix tuple) n))
            (Store.seq d.store d.dtable);
        d.dindexes <- ix :: d.dindexes
      end

let has_index t ~columns =
  match t.backend with
  | Mem m -> List.exists (fun ix -> ix.columns = columns) m.indexes
  | Disk d -> List.exists (fun ix -> ix.dcolumns = columns) d.dindexes

let indexed_columns t =
  match t.backend with
  | Mem m -> List.map (fun ix -> ix.columns) m.indexes
  | Disk d -> List.map (fun ix -> ix.dcolumns) d.dindexes

(* Composite entries of one projection prefix, via a range scan seeded
   at (key ++ Nulls) — Null is the minimum value, so that composite is
   <= every row under [key]. *)
let disk_probe_seq t d ix key =
  let karity = Array.length key in
  let pad = Array.make (row_arity t) Value.Null in
  Store.seq_from d.store ix.dtree (Array.append key pad)
  |> Seq.take_while (fun ((ck : Tuple.t), _) ->
         Tuple.compare (Array.sub ck 0 karity) key = 0)
  |> Seq.map (fun (ck, n) -> (Array.sub ck karity (row_arity t), n))

let find_mem_index m ~columns =
  match List.find_opt (fun ix -> ix.columns = columns) m with
  | Some ix -> ix
  | None -> raise Not_found

let find_disk_index d ~columns =
  match List.find_opt (fun ix -> ix.dcolumns = columns) d with
  | Some ix -> ix
  | None -> raise Not_found

let index_probe t ~columns key =
  match t.backend with
  | Mem m -> TupleBtree.find (find_mem_index m.indexes ~columns).data key
  | Disk d ->
      let ix = find_disk_index d.dindexes ~columns in
      List.concat_map
        (fun (tuple, n) -> List.init n (fun _ -> tuple))
        (List.of_seq (disk_probe_seq t d ix key))

let scan_cursor t =
  match t.backend with
  | Mem m -> Cursor.of_relation m.data
  | Disk d ->
      Cursor.of_seq (fun () ->
          Seq.map
            (fun (tuple, count) -> { Cursor.tuple; count; ts = Cursor.no_ts })
            (Store.seq d.store d.dtable))

let probe_cursor t ~columns key =
  match t.backend with
  | Mem m ->
      let ix = find_mem_index m.indexes ~columns in
      Cursor.of_seq (fun () ->
          Seq.map
            (fun tuple -> { Cursor.tuple; count = 1; ts = Cursor.no_ts })
            (List.to_seq (TupleBtree.find ix.data key)))
  | Disk d ->
      let ix = find_disk_index d.dindexes ~columns in
      Cursor.of_seq (fun () ->
          Seq.map
            (fun (tuple, count) -> { Cursor.tuple; count; ts = Cursor.no_ts })
            (disk_probe_seq t d ix key))

let disk_probe_start t d ix key =
  let pad = Array.make (row_arity t) Value.Null in
  Store.seq_from d.store ix.dtree (Array.append key pad)

let index_range_cursor t ~columns ~lo ~hi =
  match t.backend with
  | Mem m ->
      let ix = find_mem_index m.indexes ~columns in
      Cursor.of_seq (fun () ->
          Seq.map
            (fun (_key, tuple) -> { Cursor.tuple; count = 1; ts = Cursor.no_ts })
            (TupleBtree.range_seq ix.data ~lo ~hi))
  | Disk d ->
      let ix = find_disk_index d.dindexes ~columns in
      let karity = List.length columns in
      let seq =
        match lo with
        | Some l -> disk_probe_start t d ix l
        | None -> Store.seq d.store ix.dtree
      in
      Cursor.of_seq (fun () ->
          seq
          |> Seq.take_while (fun ((ck : Tuple.t), _) ->
                 match hi with
                 | None -> true
                 | Some h -> Tuple.compare (Array.sub ck 0 karity) h <= 0)
          |> Seq.map (fun (ck, count) ->
                 {
                   Cursor.tuple = Array.sub ck karity (row_arity t);
                   count;
                   ts = Cursor.no_ts;
                 }))
