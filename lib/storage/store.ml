(* Per-database paged store: one pager + block cache + catalog of named
   B-trees (table contents and secondary indexes), behind a mutex so
   wave-worker domains can read while the single writer mutates.

   The catalog (tree name -> root page id + row counters) is a small
   text blob embedded in the pager's meta page at every barrier, so a
   reopened store finds its trees at the last durable snapshot. On
   reopen the free list is rebuilt by a reachability walk from the
   catalog roots — pages only referenced by the crashed epoch's
   abandoned copies fall out automatically.

   Store selection is environment-driven so the whole test suite and
   every bench can run unchanged against either backend:

   - ROLL_STORE=mem|disk         backend (default mem)
   - ROLL_CACHE_PAGES=n          block-cache capacity (default 1024)
   - ROLL_STORE_POLICY=lru|clock eviction policy (default lru)
   - ROLL_SEGMENT_RECORDS=n      WAL records per segment (default 256)
   - ROLL_STORE_DIR=path         fixed directory (default: fresh temp
                                 dir per database, removed at exit
                                 unless ROLL_STORE_KEEP=1) *)

type mode = Mem | Disk

let mode_of_env () =
  match Sys.getenv_opt "ROLL_STORE" with
  | Some "disk" -> Disk
  | Some "mem" | Some "" | None -> Mem
  | Some other -> invalid_arg ("ROLL_STORE: unknown backend " ^ other)

let env_int name default =
  match Sys.getenv_opt name with
  | Some s -> ( match int_of_string_opt s with Some n -> n | None -> default)
  | None -> default

let cache_pages_of_env () = env_int "ROLL_CACHE_PAGES" 1024

let segment_records_of_env () = env_int "ROLL_SEGMENT_RECORDS" 256

let policy_of_env () =
  match Sys.getenv_opt "ROLL_STORE_POLICY" with
  | Some s when s <> "" -> Block_cache.policy_of_string s
  | _ -> Block_cache.Lru

(* --- temp directories --- *)

let temp_dirs : string list ref = ref []

let temp_counter = ref 0

let rec remove_tree path =
  if Sys.file_exists path then
    if Sys.is_directory path then begin
      Array.iter
        (fun name -> remove_tree (Filename.concat path name))
        (Sys.readdir path);
      try Unix.rmdir path with Unix.Unix_error _ -> ()
    end
    else try Sys.remove path with Sys_error _ -> ()

let () =
  at_exit (fun () ->
      if Sys.getenv_opt "ROLL_STORE_KEEP" <> Some "1" then
        List.iter remove_tree !temp_dirs)

let fresh_dir () =
  incr temp_counter;
  let dir =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "rolldb-%d-%d" (Unix.getpid ()) !temp_counter)
  in
  temp_dirs := dir :: !temp_dirs;
  dir

(* --- store --- *)

type tree = {
  tname : string;
  btree : Paged_btree.t;
  mutable rows : int;  (** sum of multiplicities *)
  mutable distinct : int;  (** keys with non-zero count *)
}

type t = {
  dir : string;
  pager : Pager.t;
  cache : Block_cache.t;
  ctx : Paged_btree.ctx;
  mutex : Mutex.t;
  trees : (string, tree) Hashtbl.t;
}

let catalog_magic = "ROLLCAT 1"

(* The whole catalog rides inside the pager's meta page, so tree
   creation must refuse once the projected encoding could no longer fit
   — otherwise every later barrier would fail at runtime with the store
   already mutated. The bound is conservative: room for 19-digit root
   and row counters per entry, plus the pager's own meta header. *)
let catalog_entry_bound name =
  String.length (Printf.sprintf "T %S" name) + (3 * 20) + 4

let catalog_overhead_bound = String.length catalog_magic + 1 + 128

let encode_catalog t =
  let buf = Buffer.create 256 in
  Buffer.add_string buf catalog_magic;
  Buffer.add_char buf '\n';
  let names =
    Hashtbl.fold (fun name _ acc -> name :: acc) t.trees []
    |> List.sort String.compare
  in
  List.iter
    (fun name ->
      let tree = Hashtbl.find t.trees name in
      Buffer.add_string buf
        (Printf.sprintf "T %S %d %d %d\n" tree.tname
           (Paged_btree.root tree.btree)
           tree.rows tree.distinct))
    names;
  Buffer.contents buf

let decode_catalog ctx blob =
  let trees = Hashtbl.create 16 in
  (if blob <> "" then
     match String.split_on_char '\n' blob with
     | magic :: lines when magic = catalog_magic ->
         List.iter
           (fun line ->
             if line <> "" then
               try
                 Scanf.sscanf line "T %S %d %d %d" (fun name root rows distinct ->
                     Hashtbl.replace trees name
                       {
                         tname = name;
                         btree = Paged_btree.open_root ctx root;
                         rows;
                         distinct;
                       })
               with Scanf.Scan_failure _ | End_of_file | Failure _ ->
                 raise (Pager.Corrupt ("catalog: bad line: " ^ line)))
           lines
     | _ -> raise (Pager.Corrupt "catalog: bad magic"));
  trees

let open_dir ?page_size ?cache_pages ?policy dir =
  if not (Sys.file_exists dir) then Unix.mkdir dir 0o755;
  let pager = Pager.create ?page_size (Filename.concat dir "data.pages") in
  let capacity =
    match cache_pages with Some n -> n | None -> cache_pages_of_env ()
  in
  let policy = match policy with Some p -> p | None -> policy_of_env () in
  let cache = Block_cache.create ~policy ~capacity pager in
  let ctx = Paged_btree.make_ctx pager cache in
  let trees = decode_catalog ctx (Pager.catalog pager) in
  let t = { dir; pager; cache; ctx; mutex = Mutex.create (); trees } in
  (* Everything not reachable from a catalog root is free — including
     pages the pre-crash epoch allocated but never committed. *)
  let reachable =
    Hashtbl.fold
      (fun _ tree acc -> Paged_btree.reachable tree.btree @ acc)
      trees []
  in
  Pager.set_free_list pager ~reachable;
  t

let dir t = t.dir

let cache t = t.cache

let pager t = t.pager

let locked t f = Mutex.protect t.mutex f

let find_tree t name =
  locked t (fun () -> Hashtbl.find_opt t.trees name)

let tree t name =
  locked t (fun () ->
      match Hashtbl.find_opt t.trees name with
      | Some tree -> tree
      | None ->
          let projected =
            Hashtbl.fold
              (fun n _ acc -> acc + catalog_entry_bound n)
              t.trees
              (catalog_overhead_bound + catalog_entry_bound name)
          in
          if projected > Pager.payload_capacity t.pager then
            invalid_arg
              (Printf.sprintf
                 "Store.tree: catalog with %d trees would exceed the meta \
                  page (page_size %d); open the store with a larger page_size"
                 (Hashtbl.length t.trees + 1)
                 (Pager.page_size t.pager));
          let tree =
            {
              tname = name;
              btree = Paged_btree.create t.ctx;
              rows = 0;
              distinct = 0;
            }
          in
          Hashtbl.replace t.trees name tree;
          tree)

(* Merge [delta] into [key]'s multiplicity; keeps the row counters and
   returns the previous multiplicity. *)
let add t tree key delta =
  locked t (fun () ->
      let prev = Paged_btree.add tree.btree key delta in
      let now = prev + delta in
      tree.rows <- tree.rows + delta;
      if prev = 0 && now <> 0 then tree.distinct <- tree.distinct + 1
      else if prev <> 0 && now = 0 then tree.distinct <- tree.distinct - 1;
      prev)

let get t tree key = locked t (fun () -> Paged_btree.get tree.btree key)

(* Lazy sequences take the store lock per element so concurrent readers
   on other domains cannot corrupt cache bookkeeping mid-step. *)
let locked_seq t seq =
  let rec wrap seq () =
    match locked t (fun () -> seq ()) with
    | Seq.Nil -> Seq.Nil
    | Seq.Cons (x, rest) -> Seq.Cons (x, wrap rest)
  in
  wrap seq

let seq t tree = locked_seq t (Paged_btree.seq tree.btree)

let seq_from t tree key = locked_seq t (Paged_btree.seq_from tree.btree key)

let clear_tree t tree =
  locked t (fun () ->
      Paged_btree.clear tree.btree;
      tree.rows <- 0;
      tree.distinct <- 0)

(* The flush barrier: write back every dirty cached page, then commit
   the pager's durable snapshot with the current catalog. Callers fsync
   the WAL first — the snapshot must never be ahead of the log. *)
let barrier ?fault t ~data_csn =
  locked t (fun () ->
      Block_cache.flush ?fault t.cache;
      Pager.barrier t.pager ~data_csn ~catalog:(encode_catalog t))

let data_csn t = Pager.data_csn t.pager

let hit_ratio t = Block_cache.hit_ratio t.cache

let resident_pages t = Block_cache.resident t.cache

let stats_json t =
  locked t (fun () ->
      Printf.sprintf
        {|{"dir": %S, "pages": %d, "free_pages": %d, "data_csn": %d, "page_reads": %d, "page_writes": %d, "cache": %s}|}
        t.dir (Pager.n_pages t.pager)
        (Pager.free_count t.pager)
        (Pager.data_csn t.pager)
        (Pager.page_reads t.pager)
        (Pager.page_writes t.pager)
        (Block_cache.stats_json t.cache))

let check_invariants t =
  locked t (fun () ->
      Hashtbl.iter (fun _ tree -> Paged_btree.check_invariants tree.btree) t.trees)
