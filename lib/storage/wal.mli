(** Write-ahead log.

    Every committed transaction appends one commit record carrying its
    commit sequence number (= {!Roll_delta.Time.t}), a wall-clock timestamp,
    and its changes. Propagation-query transactions write [Marker] records —
    this reproduces the prototype's "special global table" trick (Section 5)
    by which the propagate driver learns the serialization time of each
    maintenance query. The capture process (see {!Roll_capture.Capture})
    reads the log through a cursor. *)

type change = {
  table : string;
  tuple : Roll_relation.Tuple.t;
  count : int;  (** +n insertion of n copies, -n deletion *)
}

type record = {
  csn : Roll_delta.Time.t;
  txn_id : int;
  wall : float;
  changes : change list;
  marker : string option;
      (** [Some tag] for propagation-query marker commits. *)
}

type t

val create : unit -> t

val append : t -> record -> unit
(** @raise Invalid_argument if [csn] is not strictly increasing. *)

val length : t -> int
(** Logical length: reclaimed records count, so positions are stable. *)

val first_pos : t -> int
(** First retained position. Positions below it were reclaimed by
    {!truncate_prefix}; reading them raises. [0] until a reclaim. *)

val get : t -> int -> record
(** @raise Invalid_argument below {!first_pos}. *)

val iter_from : t -> pos:int -> (record -> unit) -> unit
(** [iter_from t ~pos f] applies [f] to records at positions [pos, ...]
    in order. [pos] below {!first_pos} is clamped up to it. *)

val last_csn : t -> Roll_delta.Time.t
(** [Time.origin] when empty and nothing was reclaimed; the last reclaimed
    CSN when empty after a reclaim. *)

val set_base : t -> Roll_delta.Time.t -> unit
(** Recovery only: account for an already-reclaimed prefix (positions
    [0, csn)) before any record is appended.
    @raise Invalid_argument if the log is not empty. *)

val truncate_prefix : t -> upto_csn:Roll_delta.Time.t -> unit
(** Drop every record with csn [<= upto_csn]. Positions of surviving
    records are unchanged (see {!first_pos}). No-op when [upto_csn] is at
    or below the current base.
    @raise Invalid_argument when reclaiming past the last record. *)
