open Roll_relation

exception Corrupt of string

let magic = "ROLLWAL 1"

(* --- value encoding --- *)

let encode_value_raw buf = function
  | Value.Null -> Buffer.add_string buf "null"
  | Value.Bool true -> Buffer.add_string buf "true"
  | Value.Bool false -> Buffer.add_string buf "false"
  | Value.Int i -> Buffer.add_string buf (Printf.sprintf "int %d" i)
  | Value.Float f -> Buffer.add_string buf (Printf.sprintf "float %h" f)
  | Value.Str s -> Buffer.add_string buf (Printf.sprintf "str %S" s)

let decode_value line =
  match line with
  | "null" -> Value.Null
  | "true" -> Value.Bool true
  | "false" -> Value.Bool false
  | _ ->
      if String.length line > 4 && String.sub line 0 4 = "int " then
        Value.Int (int_of_string (String.sub line 4 (String.length line - 4)))
      else if String.length line > 6 && String.sub line 0 6 = "float " then
        Value.Float (float_of_string (String.sub line 6 (String.length line - 6)))
      else if String.length line > 4 && String.sub line 0 4 = "str " then
        Scanf.sscanf (String.sub line 4 (String.length line - 4)) "%S" (fun s ->
            Value.Str s)
      else raise (Corrupt ("bad value: " ^ line))

(* --- save --- *)

(* One record in wire form, shared by the whole-log snapshot writer
   below and the segmented on-disk WAL ({!Wal_store}). The fault points
   bracket the body and the terminator so torn-tail scenarios (body
   written, no "E") are injectable at both call sites. *)
let output_record ?(fault = Roll_util.Fault.none)
    ?(record_point = "wal.record") ?(terminator_point = "wal.terminator") out
    (record : Wal.record) =
  Roll_util.Fault.hit fault record_point;
  Printf.fprintf out "R %d %d %h\n" record.Wal.csn record.Wal.txn_id
    record.Wal.wall;
  (match record.Wal.marker with
  | Some tag -> Printf.fprintf out "M %S\n" tag
  | None -> ());
  List.iter
    (fun (c : Wal.change) ->
      Printf.fprintf out "C %S %d %d\n" c.table c.count (Tuple.arity c.tuple);
      Array.iter
        (fun v ->
          let buf = Buffer.create 16 in
          Buffer.add_string buf "V ";
          encode_value_raw buf v;
          Buffer.add_char buf '\n';
          output_string out (Buffer.contents buf))
        c.tuple)
    record.Wal.changes;
  Roll_util.Fault.hit fault terminator_point;
  output_string out "E\n"

let save ?(fault = Roll_util.Fault.none) wal out =
  output_string out magic;
  output_char out '\n';
  Wal.iter_from wal ~pos:(Wal.first_pos wal) (fun record ->
      output_record ~fault out record)

let save_file ?fault wal path =
  let out = open_out path in
  Fun.protect ~finally:(fun () -> close_out out) (fun () -> save ?fault wal out)

(* --- load --- *)

(* Both loaders parse an in-memory line array: the strict one turns any
   parse failure into [Corrupt]; the recovering one distinguishes a torn
   tail (a partial final write — the failure point is followed by no "E"
   terminator, because a truncation cuts the byte stream before the
   record's own terminator) from corruption in the middle of the log. *)

exception Fail of int * string
(* (0-based line index of the failure, reason) — internal. *)

let read_lines input =
  let lines = ref [] in
  (try
     while true do
       lines := input_line input :: !lines
     done
   with End_of_file -> ());
  Array.of_list (List.rev !lines)

let fail pos msg = raise (Fail (pos, msg))

(* Parse one record starting at [pos]; returns (record, next position). *)
let parse_record lines pos =
  let n = Array.length lines in
  let csn, txn_id, wall =
    try Scanf.sscanf lines.(pos) "R %d %d %h" (fun a b c -> (a, b, c))
    with Scanf.Scan_failure _ | Failure _ | End_of_file ->
      fail pos ("expected record header, got: " ^ lines.(pos))
  in
  let marker = ref None in
  let changes = ref [] in
  let pos = ref (pos + 1) in
  let rec body () =
    if !pos >= n then fail !pos "unterminated record"
    else
      let line = lines.(!pos) in
      if line = "E" then incr pos
      else if String.length line > 2 && String.sub line 0 2 = "M " then begin
        (marker :=
           try Scanf.sscanf line "M %S" (fun t -> Some t)
           with Scanf.Scan_failure _ | End_of_file -> fail !pos "bad marker");
        incr pos;
        body ()
      end
      else if String.length line > 2 && String.sub line 0 2 = "C " then begin
        let table, count, arity =
          try Scanf.sscanf line "C %S %d %d" (fun t c a -> (t, c, a))
          with Scanf.Scan_failure _ | End_of_file -> fail !pos "bad change header"
        in
        incr pos;
        let values =
          Array.init arity (fun _ ->
              if !pos >= n then fail !pos "unterminated change"
              else
                let line = lines.(!pos) in
                if String.length line > 2 && String.sub line 0 2 = "V " then begin
                  let v =
                    try decode_value (String.sub line 2 (String.length line - 2))
                    with Corrupt msg -> fail !pos msg
                  in
                  incr pos;
                  v
                end
                else fail !pos ("expected value, got: " ^ line))
        in
        changes := { Wal.table; tuple = values; count } :: !changes;
        body ()
      end
      else fail !pos ("unexpected line: " ^ line)
  in
  body ();
  ( { Wal.csn; txn_id; wall; changes = List.rev !changes; marker = !marker },
    !pos )

let corrupt pos msg = raise (Corrupt (Printf.sprintf "line %d: %s" (pos + 1) msg))

let load input =
  let lines = read_lines input in
  if Array.length lines = 0 then corrupt (-1) "empty file";
  if lines.(0) <> magic then corrupt 0 ("bad header: " ^ lines.(0));
  let rec loop acc pos =
    if pos >= Array.length lines then List.rev acc
    else
      match parse_record lines pos with
      | record, next -> loop (record :: acc) next
      | exception Fail (p, msg) -> corrupt p msg
  in
  loop [] 1

let load_file path =
  let input = open_in path in
  Fun.protect ~finally:(fun () -> close_in input) (fun () -> load input)

type recovery = { records : Wal.record list; torn : string option }

let is_prefix_of s full =
  String.length s <= String.length full && String.sub full 0 (String.length s) = s

let recover input =
  let lines = read_lines input in
  let n = Array.length lines in
  if n = 0 then { records = []; torn = Some "empty file" }
  else if lines.(0) <> magic then
    if n = 1 && is_prefix_of lines.(0) magic then
      { records = []; torn = Some "torn header" }
    else corrupt 0 ("bad header: " ^ lines.(0))
  else begin
    let rec loop acc pos =
      if pos >= n then { records = List.rev acc; torn = None }
      else
        match parse_record lines pos with
        | record, next -> loop (record :: acc) next
        | exception Fail (p, msg) ->
            (* A later "E" means complete records follow the failure point:
               that is mid-log corruption, not a torn tail, and silently
               dropping committed records would be far worse than failing. *)
            let complete_tail = ref false in
            for k = p to n - 1 do
              if lines.(k) = "E" then complete_tail := true
            done;
            if !complete_tail then corrupt p msg
            else
              {
                records = List.rev acc;
                torn = Some (Printf.sprintf "line %d: %s" (p + 1) msg);
              }
    in
    loop [] 1
  end

let recover_file path =
  let input = open_in path in
  Fun.protect ~finally:(fun () -> close_in input) (fun () -> recover input)

let encode_value buf v suffix =
  encode_value_raw buf v;
  Buffer.add_string buf suffix
