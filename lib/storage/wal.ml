module Vec = Roll_util.Vec
module Time = Roll_delta.Time

type change = { table : string; tuple : Roll_relation.Tuple.t; count : int }

type record = {
  csn : Time.t;
  txn_id : int;
  wall : float;
  changes : change list;
  marker : string option;
}

(* Positions are logical and stable across prefix reclaim: position [p]
   always names the record with csn [p + 1] (commits are contiguous from
   csn 1). [base] counts reclaimed records — positions below it raise,
   because the records are gone (their effects live on in the applied
   table state and, on disk, in the data-file snapshot). *)
type t = { records : record Vec.t; mutable base : int }

let create () = { records = Vec.create (); base = 0 }

let append t record =
  (match Vec.last t.records with
  | Some prev when prev.csn >= record.csn ->
      invalid_arg "Wal.append: commit sequence numbers must increase"
  | _ -> ());
  Vec.push t.records record

let first_pos t = t.base

(* Recovery only: account for an already-reclaimed prefix before any
   record is appended. *)
let set_base t csn =
  if Vec.length t.records > 0 then invalid_arg "Wal.set_base: wal not empty";
  t.base <- csn

let length t = t.base + Vec.length t.records

let get t i =
  if i < t.base then
    invalid_arg
      (Printf.sprintf "Wal.get: position %d below reclaimed prefix %d" i t.base)
  else Vec.get t.records (i - t.base)

let iter_from t ~pos f =
  Vec.iter_range f t.records ~lo:(max pos t.base - t.base)
    ~hi:(Vec.length t.records)

let last_csn t =
  match Vec.last t.records with
  | None -> Time.origin + t.base
  | Some r -> r.csn

(* Drop every record with csn <= [upto_csn] (= positions below it).
   Only the capture GC calls this, once the horizon of every consumer
   has passed the prefix. *)
let truncate_prefix t ~upto_csn =
  if upto_csn > t.base then begin
    let keep_from = upto_csn - t.base in
    let kept = Vec.length t.records - keep_from in
    if kept < 0 then
      invalid_arg "Wal.truncate_prefix: cannot reclaim past the last record";
    let fresh = Vec.create () in
    Vec.iter_range (Vec.push fresh) t.records ~lo:keep_from
      ~hi:(Vec.length t.records);
    (* Replace contents in place so aliases of [t] observe the shift. *)
    Vec.clear t.records;
    Vec.iter (Vec.push t.records) fresh;
    t.base <- upto_csn
  end
