open Roll_relation
module Time = Roll_delta.Time

type cache = { mutable as_of : Time.t; mutable state : Relation.t }

type t = { db : Database.t; caches : (string, cache) Hashtbl.t }

let create db = { db; caches = Hashtbl.create 8 }

(* The WAL base: records at or below this csn were reclaimed; their net
   effect lives in [Database.base_state]. Queries below it are
   unanswerable by construction (the GC horizon guarantees no caller
   asks). *)
let base_csn t = Wal.first_pos (Database.wal t.db)

let base_relation t ~table =
  let tbl = Database.table t.db table in
  match Database.base_state t.db table with
  | Some state -> Relation.copy state
  | None -> Relation.create (Table.schema tbl)

let replay t ~table ~(state : Relation.t) ~from_excl ~to_incl =
  let wal = Database.wal t.db in
  let n = Wal.length wal in
  (* WAL positions are dense in CSN order (csn = position + 1 would hold if
     every record had consecutive CSNs, which it does by construction), but
     we scan defensively by comparing CSNs. *)
  let rec find_pos lo hi =
    (* first position with csn > from_excl *)
    if lo >= hi then lo
    else
      let mid = (lo + hi) / 2 in
      if (Wal.get wal mid).Wal.csn <= from_excl then find_pos (mid + 1) hi
      else find_pos lo mid
  in
  let pos = find_pos (Wal.first_pos wal) n in
  let k = ref pos in
  while !k < n && (Wal.get wal !k).Wal.csn <= to_incl do
    let record = Wal.get wal !k in
    List.iter
      (fun (c : Wal.change) ->
        if String.equal c.table table then Relation.add state c.tuple c.count)
      record.changes;
    incr k
  done

let state_at t ~table time =
  let base = base_csn t in
  if time < base then
    invalid_arg
      (Printf.sprintf "History.state_at: time %d below reclaimed WAL base %d"
         time base);
  let tbl = Database.table t.db table in
  let cache =
    match Hashtbl.find_opt t.caches table with
    | Some c -> c
    | None ->
        let c = { as_of = Time.origin; state = Relation.create (Table.schema tbl) } in
        Hashtbl.add t.caches table c;
        c
  in
  if time < cache.as_of || cache.as_of < base then begin
    (* Query older than the cache (or the base moved past a stale cache):
       rebuild from the WAL base snapshot. *)
    cache.state <- base_relation t ~table;
    cache.as_of <- base
  end;
  if time > cache.as_of then begin
    replay t ~table ~state:cache.state ~from_excl:cache.as_of ~to_incl:time;
    cache.as_of <- time
  end;
  Relation.copy cache.state

let changes_between t ~table ~lo ~hi =
  let base = base_csn t in
  if lo < base then
    invalid_arg
      (Printf.sprintf
         "History.changes_between: window (%d,%d] below reclaimed WAL base %d"
         lo hi base);
  let wal = Database.wal t.db in
  let acc = ref [] in
  let n = Wal.length wal in
  for k = Wal.first_pos wal to n - 1 do
    let record = Wal.get wal k in
    if record.Wal.csn > lo && record.Wal.csn <= hi then
      List.iter
        (fun (c : Wal.change) ->
          if String.equal c.table table then
            acc := (c.tuple, c.count, record.Wal.csn) :: !acc)
        record.changes
  done;
  List.rev !acc
