(** Temporal reconstruction of base-table states.

    [state_at] answers "what did table R look like at time t" (the paper's
    R_t) by replaying the WAL. The production algorithms never need this —
    asynchrony is the whole point — but it is essential as (a) the oracle
    against which the correctness theorems are property-tested, and (b) the
    snapshot source for the {e synchronous} baselines of Equations 1 and 2,
    which must see base tables at specific past times. *)

type t

val create : Database.t -> t
(** A live view over the database's WAL; queries observe commits made after
    creation too. *)

val state_at : t -> table:string -> Roll_delta.Time.t -> Roll_relation.Relation.t
(** [state_at h ~table t] is R_t: the table's contents including exactly the
    transactions with CSN <= [t]. The result is a fresh relation owned by
    the caller. Sequential queries at non-decreasing times are amortized by
    an internal cursor cache. After a WAL reclaim, replay starts from the
    per-table base state at {!Database.wal_base}.
    @raise Invalid_argument when [t] is below the reclaimed WAL base. *)

val changes_between :
  t ->
  table:string ->
  lo:Roll_delta.Time.t ->
  hi:Roll_delta.Time.t ->
  (Roll_relation.Tuple.t * int * Roll_delta.Time.t) list
(** Changes with CSN in (lo, hi], in commit order — the base-table delta
    R_{lo,hi} read straight from the log.
    @raise Invalid_argument when [lo] is below the reclaimed WAL base. *)
