(** Base tables: named multiset relations holding current committed state. *)

type t

val create : name:string -> ?store:Store.t -> Roll_relation.Schema.t -> t
(** With [store], rows and indexes live in the paged store's B-trees
    (adopting any trees an earlier process left in its catalog) instead of
    in memory. *)

val name : t -> string

val schema : t -> Roll_relation.Schema.t

val contents : t -> Roll_relation.Relation.t
(** The live relation. Callers must treat it as read-only; all mutation goes
    through {!Database} commits. On a paged store this materializes a fresh
    copy — prefer the cursors or {!distinct_count} on hot paths. *)

val cardinality : t -> int
(** Total tuple count (multiset size). *)

val distinct_count : t -> int
(** Number of distinct tuples — the planner's cardinality statistic.
    O(1) on both backends, unlike [contents]. *)

val version : t -> int
(** Monotone content version: bumped on every committed change to this
    table. Two reads at the same version saw identical contents, which is
    what per-drain build caches key on (the database's global clock also
    advances on marker commits and so over-invalidates). *)

val mem : t -> Roll_relation.Tuple.t -> bool

val count : t -> Roll_relation.Tuple.t -> int

val apply_change : t -> Roll_relation.Tuple.t -> int -> unit
(** Used by {!Database.commit} only. @raise Invalid_argument if the change
    would make a tuple's multiplicity negative. *)

(** {1 Secondary indexes}

    B+-tree indexes over a projection of the table's columns, maintained on
    every committed change. The join executor probes them instead of
    building a per-query hash index, which is what makes small propagation
    queries cheap on large base tables. *)

val create_index : t -> columns:int list -> unit
(** Build (and thereafter maintain) an index keyed by the given columns;
    backfills from current contents. Idempotent for an existing column
    list. @raise Invalid_argument on out-of-range columns. *)

val has_index : t -> columns:int list -> bool

val indexed_columns : t -> int list list

val index_probe : t -> columns:int list -> Roll_relation.Tuple.t -> Roll_relation.Tuple.t list
(** All row copies whose projection on [columns] equals the key (one list
    element per multiset copy). @raise Not_found if no such index. *)

(** {1 Cursors}

    Lazy access paths for the execution pipeline: rows are pulled on demand
    (timestamped with {!Roll_relation.Cursor.no_ts}, since base rows carry
    no delta timestamp), so a table probed through an index — or a scan a
    query abandons early — is never materialized into an array. The table
    must not be mutated while a cursor on it is live. *)

val scan_cursor : t -> Roll_relation.Cursor.t
(** Full-table scan: one row per distinct tuple with its multiset count. *)

val probe_cursor :
  t -> columns:int list -> Roll_relation.Tuple.t -> Roll_relation.Cursor.t
(** Index point probe: one count-1 row per stored copy matching the key.
    @raise Not_found if no such index. *)

val index_range_cursor :
  t ->
  columns:int list ->
  lo:Roll_relation.Tuple.t option ->
  hi:Roll_relation.Tuple.t option ->
  Roll_relation.Cursor.t
(** Ordered range scan over a secondary index: copies with
    [lo <= key <= hi] (each bound optional), ascending by key.
    @raise Not_found if no such index. *)
