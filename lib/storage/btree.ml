module Make (Key : sig
  type t

  val compare : t -> t -> int
end) =
struct
  (* Leaves hold (key, copies) slots and are chained; internal nodes hold
     separator keys, where [keys.(i)] is the smallest key reachable in
     [children.(i + 1)]. Insertion splits nodes top-down-recursively;
     deletion is lazy, as in most production B-trees: slots disappear when
     their copy list empties, but pages are never merged — an empty leaf
     simply stays in place as structure (searches and scans skip it). *)

  type 'v leaf = {
    mutable lkeys : Key.t array;
    mutable lvals : 'v list array;
    mutable next : 'v leaf option;
  }

  type 'v node = L of 'v leaf | N of 'v internal

  and 'v internal = {
    mutable ikeys : Key.t array;
    mutable children : 'v node array;
  }

  type 'v t = { order : int; mutable root : 'v node; mutable size : int }

  let create ?(order = 16) () =
    if order < 4 then invalid_arg "Btree.create: order must be at least 4";
    { order; root = L { lkeys = [||]; lvals = [||]; next = None }; size = 0 }

  let length t = t.size

  let is_empty t = t.size = 0

  (* Index of the child to descend into for [key]. *)
  let child_index (node : 'v internal) key =
    let n = Array.length node.ikeys in
    let rec loop i =
      if i >= n then n else if Key.compare key node.ikeys.(i) < 0 then i else loop (i + 1)
    in
    loop 0

  (* Position of [key] in a sorted key array: [Ok i] when found, [Error i]
     with the insertion point otherwise. *)
  let search keys key =
    let lo = ref 0 and hi = ref (Array.length keys) in
    while !lo < !hi do
      let mid = (!lo + !hi) / 2 in
      if Key.compare keys.(mid) key < 0 then lo := mid + 1 else hi := mid
    done;
    if !lo < Array.length keys && Key.compare keys.(!lo) key = 0 then Ok !lo
    else Error !lo

  let array_insert arr i x =
    let n = Array.length arr in
    Array.init (n + 1) (fun j -> if j < i then arr.(j) else if j = i then x else arr.(j - 1))

  let array_remove arr i =
    let n = Array.length arr in
    Array.init (n - 1) (fun j -> if j < i then arr.(j) else arr.(j + 1))

  (* Insert into a subtree; when the node splits, return the separator and
     the new right sibling. *)
  let rec insert t node key value =
    match node with
    | L leaf -> (
        (match search leaf.lkeys key with
        | Ok i -> leaf.lvals.(i) <- value :: leaf.lvals.(i)
        | Error i ->
            leaf.lkeys <- array_insert leaf.lkeys i key;
            leaf.lvals <- array_insert leaf.lvals i [ value ]);
        if Array.length leaf.lkeys <= t.order then None
        else begin
          let mid = Array.length leaf.lkeys / 2 in
          let right =
            {
              lkeys = Array.sub leaf.lkeys mid (Array.length leaf.lkeys - mid);
              lvals = Array.sub leaf.lvals mid (Array.length leaf.lvals - mid);
              next = leaf.next;
            }
          in
          leaf.lkeys <- Array.sub leaf.lkeys 0 mid;
          leaf.lvals <- Array.sub leaf.lvals 0 mid;
          leaf.next <- Some right;
          Some (right.lkeys.(0), L right)
        end)
    | N inner -> (
        let i = child_index inner key in
        match insert t inner.children.(i) key value with
        | None -> None
        | Some (sep, new_child) ->
            inner.ikeys <- array_insert inner.ikeys i sep;
            inner.children <- array_insert inner.children (i + 1) new_child;
            if Array.length inner.children <= t.order then None
            else begin
              (* Split: middle separator moves up. *)
              let mid = Array.length inner.ikeys / 2 in
              let up = inner.ikeys.(mid) in
              let right =
                {
                  ikeys =
                    Array.sub inner.ikeys (mid + 1)
                      (Array.length inner.ikeys - mid - 1);
                  children =
                    Array.sub inner.children (mid + 1)
                      (Array.length inner.children - mid - 1);
                }
              in
              inner.ikeys <- Array.sub inner.ikeys 0 mid;
              inner.children <- Array.sub inner.children 0 (mid + 1);
              Some (up, N right)
            end)

  let add t key value =
    (match insert t t.root key value with
    | None -> ()
    | Some (sep, right) ->
        t.root <- N { ikeys = [| sep |]; children = [| t.root; right |] });
    t.size <- t.size + 1

  let rec leaf_for node key =
    match node with
    | L leaf -> leaf
    | N inner -> leaf_for inner.children.(child_index inner key) key

  let find t key =
    let leaf = leaf_for t.root key in
    match search leaf.lkeys key with Ok i -> leaf.lvals.(i) | Error _ -> []

  let mem t key = find t key <> []

  let remove t ~equal key value =
    let leaf = leaf_for t.root key in
    match search leaf.lkeys key with
    | Error _ -> false
    | Ok i -> (
        let rec take acc = function
          | [] -> None
          | v :: rest ->
              if equal v value then Some (List.rev_append acc rest)
              else take (v :: acc) rest
        in
        match take [] leaf.lvals.(i) with
        | None -> false
        | Some [] ->
            leaf.lkeys <- array_remove leaf.lkeys i;
            leaf.lvals <- array_remove leaf.lvals i;
            t.size <- t.size - 1;
            true
        | Some rest ->
            leaf.lvals.(i) <- rest;
            t.size <- t.size - 1;
            true)

  let rec leftmost = function L leaf -> leaf | N inner -> leftmost inner.children.(0)

  let iter f t =
    let rec walk = function
      | None -> ()
      | Some leaf ->
          Array.iteri
            (fun i key -> List.iter (fun v -> f key v) leaf.lvals.(i))
            leaf.lkeys;
          walk leaf.next
    in
    walk (Some (leftmost t.root))

  let range t ~lo ~hi f =
    let start =
      match lo with None -> leftmost t.root | Some key -> leaf_for t.root key
    in
    let below_hi key =
      match hi with None -> true | Some h -> Key.compare key h <= 0
    in
    let at_or_above_lo key =
      match lo with None -> true | Some l -> Key.compare key l >= 0
    in
    let exception Done in
    let rec walk = function
      | None -> ()
      | Some leaf ->
          Array.iteri
            (fun i key ->
              if at_or_above_lo key then
                if below_hi key then
                  List.iter (fun v -> f key v) leaf.lvals.(i)
                else raise Done)
            leaf.lkeys;
          walk leaf.next
    in
    (try walk (Some start) with Done -> ())

  let range_seq t ~lo ~hi =
    let below_hi key =
      match hi with None -> true | Some h -> Key.compare key h <= 0
    in
    let at_or_above_lo key =
      match lo with None -> true | Some l -> Key.compare key l >= 0
    in
    (* Walk the leaf chain lazily: each forcing advances one entry, so a
       consumer that stops early never touches the rest of the tree. *)
    let rec entry leaf i vs () =
      match vs with
      | v :: rest -> Seq.Cons ((leaf.lkeys.(i), v), entry leaf i rest)
      | [] -> slot leaf (i + 1) ()
    and slot leaf i () =
      if i >= Array.length leaf.lkeys then
        match leaf.next with None -> Seq.Nil | Some right -> slot right 0 ()
      else
        let key = leaf.lkeys.(i) in
        if not (at_or_above_lo key) then slot leaf (i + 1) ()
        else if not (below_hi key) then Seq.Nil
        else entry leaf i leaf.lvals.(i) ()
    in
    let start =
      match lo with None -> leftmost t.root | Some key -> leaf_for t.root key
    in
    fun () -> slot start 0 ()

  let to_seq t = range_seq t ~lo:None ~hi:None

  let min_key t =
    let rec first = function
      | None -> None
      | Some leaf ->
          if Array.length leaf.lkeys > 0 then Some leaf.lkeys.(0) else first leaf.next
    in
    first (Some (leftmost t.root))

  let max_key t =
    (* Rightmost non-empty leaf; descend right, but empty leaves force a
       scan from the left in the worst case — acceptable for diagnostics. *)
    let best = ref None in
    iter (fun key _ -> best := Some key) t;
    !best

  let check_invariants t =
    let exception Bad of string in
    let fail fmt = Printf.ksprintf (fun msg -> raise (Bad msg)) fmt in
    let rec depth = function L _ -> 0 | N inner -> 1 + depth inner.children.(0) in
    let expected_depth = depth t.root in
    let count = ref 0 in
    let rec walk node level ~lo ~hi =
      (* Every key in [node] must lie in [lo, hi). *)
      let in_bounds key =
        (match lo with None -> true | Some l -> Key.compare key l >= 0)
        && match hi with None -> true | Some h -> Key.compare key h < 0
      in
      match node with
      | L leaf ->
          if level <> expected_depth then fail "leaves at different depths";
          Array.iteri
            (fun i key ->
              if not (in_bounds key) then fail "leaf key out of separator bounds";
              if i > 0 && Key.compare leaf.lkeys.(i - 1) key >= 0 then
                fail "leaf keys not strictly sorted";
              if leaf.lvals.(i) = [] then fail "empty copy list retained";
              count := !count + List.length leaf.lvals.(i))
            leaf.lkeys
      | N inner ->
          if Array.length inner.children <> Array.length inner.ikeys + 1 then
            fail "internal arity mismatch";
          if Array.length inner.ikeys = 0 then fail "empty internal node";
          Array.iteri
            (fun i key ->
              if not (in_bounds key) then fail "separator out of bounds";
              if i > 0 && Key.compare inner.ikeys.(i - 1) key >= 0 then
                fail "separators not sorted")
            inner.ikeys;
          Array.iteri
            (fun i child ->
              let lo' = if i = 0 then lo else Some inner.ikeys.(i - 1) in
              let hi' =
                if i = Array.length inner.ikeys then hi else Some inner.ikeys.(i)
              in
              walk child (level + 1) ~lo:lo' ~hi:hi')
            inner.children
    in
    match walk t.root 0 ~lo:None ~hi:None with
    | () ->
        if !count <> t.size then Error "size counter out of sync"
        else begin
          (* The leaf chain must visit keys in ascending order. *)
          let prev = ref None in
          match
            iter
              (fun key _ ->
                (match !prev with
                | Some p when Key.compare p key > 0 ->
                    raise (Bad "leaf chain out of order")
                | _ -> ());
                prev := Some key)
              t
          with
          | () -> Ok ()
          | exception Bad msg -> Error msg
        end
    | exception Bad msg -> Error msg
end
