(** The database engine.

    A single-process engine with serializable transactions: transactions
    commit one at a time, each receiving the next commit sequence number, so
    the commit order {e is} the serialization order — the assumption the
    paper makes of the underlying system (Section 2). Queries read current
    committed state.

    A simulated wall clock advances on every commit; the unit-of-work table
    built by the capture process maps CSNs to wall times, enabling the
    "refresh the view to its 5:00 pm state" scenarios of the paper. *)

type t

val create :
  ?wall_start:float ->
  ?wall_tick:float ->
  ?mode:Store.mode ->
  ?dir:string ->
  unit ->
  t
(** [wall_tick] (default 1.0) is how far the simulated wall clock advances
    at each commit.

    [mode] selects the backend (default: {!Store.mode_of_env}, i.e. the
    [ROLL_STORE] environment variable, in-memory when unset). In [Disk]
    mode the store lives under [dir] (default: [ROLL_STORE_DIR], else a
    fresh temporary directory removed at exit). Opening an existing
    directory recovers the WAL segments; create the tables, then call
    {!recover_pending} before committing. *)

val create_table : t -> name:string -> Roll_relation.Schema.t -> Table.t
(** @raise Invalid_argument if the name is taken. *)

val table : t -> string -> Table.t
(** @raise Not_found *)

val find_table : t -> string -> Table.t option

val tables : t -> Table.t list

val wal : t -> Wal.t

val obs : t -> Roll_obs.Obs.t

val set_obs : t -> Roll_obs.Obs.t -> unit
(** Attach an observability handle. When enabled, WAL appends bump the
    [roll_wal_records_total] / [roll_wal_changes_total] counters in its
    registry. *)

val now : t -> Roll_delta.Time.t
(** The CSN of the latest committed transaction ([Time.origin] initially).
    All committed state is visible at this time. *)

val wall_now : t -> float

val advance_wall : t -> float -> unit
(** Push the simulated wall clock forward by the given amount (e.g. to model
    an idle period between update bursts). *)

(** {1 Transactions} *)

type txn

val begin_txn : t -> txn

val txn_id : txn -> int

val write : txn -> table:string -> Roll_relation.Tuple.t -> count:int -> unit
(** Buffer a change: [count] copies inserted (or deleted when negative). *)

val insert : txn -> table:string -> Roll_relation.Tuple.t -> unit

val delete : txn -> table:string -> Roll_relation.Tuple.t -> unit

val update :
  txn ->
  table:string ->
  old_tuple:Roll_relation.Tuple.t ->
  new_tuple:Roll_relation.Tuple.t ->
  unit
(** Modeled as a deletion plus an insertion, per Section 2. *)

val commit : t -> txn -> Roll_delta.Time.t
(** Atomically applies the buffered changes, appends the WAL record, and
    returns the transaction's commit sequence number.
    @raise Invalid_argument if a change would drive a multiplicity negative
    or reference an unknown table; no changes are applied in that case. *)

val abort : txn -> unit

val run : t -> (txn -> unit) -> Roll_delta.Time.t
(** [run t f] begins a transaction, runs [f], and commits. *)

val commit_marker : t -> tag:string -> Roll_delta.Time.t
(** Commit an empty transaction carrying a marker record — the mechanism by
    which a propagation query learns its serialization time (Section 5). *)

val stats_commits : t -> int
(** Number of committed transactions (including markers). *)

(** {1 Triggers}

    Hooks for trigger-based change capture, the alternative Section 5
    weighs against log capture. Write triggers fire while the transaction
    is still running — before its serialization order is known, which is
    exactly the timestamping problem the paper describes; commit triggers
    fire at commit, when the order is known. *)

val add_write_trigger : t -> (txn_id:int -> Wal.change -> unit) -> unit
(** Called on every buffered write (insert/delete) of a data transaction,
    at write time. *)

val add_commit_trigger : t -> (Wal.record -> unit) -> unit
(** Called after every commit (data transactions and markers alike) with
    the full commit record. *)

val restore : t -> Wal.record list -> unit
(** Replay previously saved WAL records (see {!Wal_codec}) into a database
    whose tables have been created but which has no commits yet. Restores
    table contents, commit/transaction counters and the wall clock. In disk
    mode the records are also written through to fresh WAL segments.
    @raise Invalid_argument if the database already has commits, a record
    references an unknown table, or CSNs are not increasing. *)

(** {1 Paged store (disk mode)}

    All of the following are no-ops / neutral values on the in-memory
    backend, so engine code calls them unconditionally. *)

val mode : t -> Store.mode

val store : t -> Store.t option

val store_dir : t -> string option

val sync : t -> unit
(** The durability barrier: fsync the WAL segments, then write back dirty
    cached pages and flip the data file's meta snapshot to [now]. *)

val data_csn : t -> Roll_delta.Time.t
(** CSN of the on-disk data snapshot ({!now} in memory mode). *)

val recovery_torn : t -> string option
(** Why the recovered WAL's tail was torn, if it was. *)

val has_pending_recovery : t -> bool

val recover_pending : t -> unit
(** Finish opening an existing disk directory once the schema has been
    recreated: re-applies recovered records above the data snapshot to the
    tables and rehydrates the in-memory log. *)

val wal_base : t -> Roll_delta.Time.t
(** First retained WAL position (= last reclaimed CSN). *)

val base_state : t -> string -> Roll_relation.Relation.t option
(** The table's state at {!wal_base}, when a reclaim has occurred. *)

val reclaim_wal : t -> upto:Roll_delta.Time.t -> int
(** Reclaim the WAL prefix at or below [upto] (clamped to {!data_csn}):
    folds the dropped records into per-table base states and deletes every
    on-disk segment entirely below the cut. Returns the number of segments
    deleted; [0] in memory mode. The caller must ensure every consumer's
    horizon (view gc horizons, capture cursor) has passed [upto]. *)

val set_storage_fault : t -> Roll_util.Fault.t -> unit
(** Inject faults into the disk write path (points ["walseg.record"],
    ["walseg.terminator"], ["walseg.rotate"], ["walseg.manifest"],
    ["walseg.reclaim"], ["walseg.sync"], ["cache.writeback"]). *)

val cold_read_factor : t -> float
(** Scheduler cost hint: 1.0 in memory; on disk, [2.0 - hit_ratio] once the
    block cache has seen enough traffic to judge. *)

val live_segments : t -> int

val resident_pages : t -> int

val storage_json : t -> string
(** Storage status as a JSON object (mode, cache counters, segments). *)
