(* A block cache in front of {!Pager}: bounded set of resident pages
   with write-back of dirty pages and a pluggable eviction policy.

   Two policies ship, both running on the same intrusive doubly-linked
   list so every bookkeeping step is O(1):
   - [LRU]: strict recency order, head = most recently used. Default.
   - [Clock]: second-chance FIFO — the list is the clock face (head =
     hand position, tail = newest); a hit only sets a reference bit,
     and the sweep rotates referenced entries to the back with the bit
     cleared. Approximates LRU at lower per-hit bookkeeping cost.

   Dirty pages are written back on eviction and at {!flush} — the flush
   barrier the WAL commit path calls before fsync, so the pager's
   durable snapshot never misses a cached mutation. Eviction never
   blocks on I/O ordering: correctness comes from the pager's
   copy-on-write discipline (an evicted dirty page is always a fresh
   page, invisible to the durable meta until the next barrier). *)

type policy = Lru | Clock

let policy_of_string = function
  | "lru" | "LRU" -> Lru
  | "clock" | "CLOCK" -> Clock
  | s -> invalid_arg ("Block_cache: unknown policy " ^ s)

let policy_name = function Lru -> "lru" | Clock -> "clock"

type entry = {
  id : int;
  mutable payload : Bytes.t;
  mutable dirty : bool;
  mutable referenced : bool;  (* Clock's second-chance bit *)
  (* LRU intrusive list; [prev]/[next] are entry ids, -1 = none. *)
  mutable prev : int;
  mutable next : int;
}

type t = {
  pager : Pager.t;
  capacity : int;
  policy : policy;
  entries : (int, entry) Hashtbl.t;
  (* Intrusive list: LRU keeps MRU at [head]; Clock keeps its hand at
     [head] and the newest entry at [tail]. -1 if empty. *)
  mutable head : int;
  mutable tail : int;
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
  mutable writebacks : int;
  mutable on_evict : int -> unit;
}

let create ?(policy = Lru) ~capacity pager =
  if capacity < 2 then invalid_arg "Block_cache.create: capacity < 2";
  {
    pager;
    capacity;
    policy;
    entries = Hashtbl.create (capacity * 2);
    head = -1;
    tail = -1;
    hits = 0;
    misses = 0;
    evictions = 0;
    writebacks = 0;
    on_evict = ignore;
  }

let capacity t = t.capacity

let policy t = t.policy

let resident t = Hashtbl.length t.entries

let hits t = t.hits

let misses t = t.misses

let evictions t = t.evictions

let writebacks t = t.writebacks

let hit_ratio t =
  let total = t.hits + t.misses in
  if total = 0 then 1.0 else float_of_int t.hits /. float_of_int total

(* Callers hang invalidation of derived state (decoded B-tree nodes)
   off eviction. Fires for evictions only, not for explicit [forget]. *)
let set_on_evict t f = t.on_evict <- f

(* --- LRU list maintenance --- *)

let lru_unlink t e =
  (if e.prev >= 0 then (Hashtbl.find t.entries e.prev).next <- e.next
   else t.head <- e.next);
  (if e.next >= 0 then (Hashtbl.find t.entries e.next).prev <- e.prev
   else t.tail <- e.prev);
  e.prev <- -1;
  e.next <- -1

let lru_push_front t e =
  e.prev <- -1;
  e.next <- t.head;
  if t.head >= 0 then (Hashtbl.find t.entries t.head).prev <- e.id;
  t.head <- e.id;
  if t.tail < 0 then t.tail <- e.id

let lru_push_back t e =
  e.next <- -1;
  e.prev <- t.tail;
  if t.tail >= 0 then (Hashtbl.find t.entries t.tail).next <- e.id;
  t.tail <- e.id;
  if t.head < 0 then t.head <- e.id

let touch_entry t e =
  match t.policy with
  | Lru ->
      if t.head <> e.id then begin
        lru_unlink t e;
        lru_push_front t e
      end
  | Clock -> e.referenced <- true

let writeback t e =
  if e.dirty then begin
    Pager.write t.pager e.id e.payload;
    e.dirty <- false;
    t.writebacks <- t.writebacks + 1
  end

let evict_entry t e =
  writeback t e;
  lru_unlink t e;
  Hashtbl.remove t.entries e.id;
  t.evictions <- t.evictions + 1;
  t.on_evict e.id

let pick_victim t =
  match t.policy with
  | Lru -> Hashtbl.find t.entries t.tail
  | Clock ->
      (* Sweep from the hand (head): a referenced entry gets its bit
         cleared and a second chance at the back; the first unreferenced
         entry is the victim. Terminates because every rotation clears a
         bit, so at worst the sweep comes back around to the first entry
         it cleared. *)
      let rec sweep () =
        let e = Hashtbl.find t.entries t.head in
        if e.referenced then begin
          e.referenced <- false;
          lru_unlink t e;
          lru_push_back t e;
          sweep ()
        end
        else e
      in
      sweep ()

let make_room t =
  while Hashtbl.length t.entries >= t.capacity do
    evict_entry t (pick_victim t)
  done

let insert t id payload ~dirty =
  make_room t;
  let e = { id; payload; dirty; referenced = true; prev = -1; next = -1 } in
  Hashtbl.replace t.entries id e;
  (match t.policy with
  | Lru -> lru_push_front t e
  | Clock -> lru_push_back t e);
  e

(* --- public I/O --- *)

let read t id =
  match Hashtbl.find_opt t.entries id with
  | Some e ->
      t.hits <- t.hits + 1;
      touch_entry t e;
      e.payload
  | None ->
      t.misses <- t.misses + 1;
      let payload = Pager.read t.pager id in
      let e = insert t id payload ~dirty:false in
      e.payload

(* Record a page image without writing through; it reaches the pager at
   eviction or {!flush}. *)
let write t id payload =
  match Hashtbl.find_opt t.entries id with
  | Some e ->
      e.payload <- payload;
      e.dirty <- true;
      touch_entry t e
  | None -> ignore (insert t id payload ~dirty:true)

(* Mark a cache hit that bypassed [read] (e.g. a decoded-node cache hit
   in the B-tree layer), keeping the hit/miss counters honest. *)
let note_hit t id =
  t.hits <- t.hits + 1;
  match Hashtbl.find_opt t.entries id with
  | Some e -> touch_entry t e
  | None -> ()

(* Drop a page without write-back (the page was freed). *)
let forget t id =
  match Hashtbl.find_opt t.entries id with
  | Some e ->
      lru_unlink t e;
      Hashtbl.remove t.entries id
  | None -> ()

let dirty_count t =
  Hashtbl.fold (fun _ e n -> if e.dirty then n + 1 else n) t.entries 0

(* The flush barrier: push every dirty page down to the pager. Called by
   the commit path before the pager's durability barrier. *)
let flush ?fault t =
  Hashtbl.iter
    (fun _ e ->
      if e.dirty then begin
        (match fault with
        | Some f -> Roll_util.Fault.hit f "cache.writeback"
        | None -> ());
        writeback t e
      end)
    t.entries

(* Drop the entire resident set (dirty pages written back first unless
   [discard]). Used on reopen/recover. *)
let clear ?(discard = false) t =
  if not discard then flush t;
  Hashtbl.reset t.entries;
  t.head <- -1;
  t.tail <- -1

let stats_json t =
  Printf.sprintf
    {|{"policy": "%s", "capacity": %d, "resident": %d, "hits": %d, "misses": %d, "hit_ratio": %.4f, "evictions": %d, "writebacks": %d}|}
    (policy_name t.policy) t.capacity (resident t) t.hits t.misses
    (hit_ratio t) t.evictions t.writebacks
