(** B+-tree multimaps.

    An ordered multimap: entries are (key, value) pairs, duplicates allowed
    (the same pair may be stored several times — one entry per multiset
    copy). Keys live only in the leaves, which are chained for ordered and
    range iteration; internal nodes hold separators. This is the index
    structure behind secondary indexes on base tables (see {!Table}), where
    it turns propagation-query probes from per-query hash builds into
    direct lookups.

    The functor takes the key ordering; values are compared with the
    equality given per call to [remove]. *)

module Make (Key : sig
  type t

  val compare : t -> t -> int
end) : sig
  type 'v t

  val create : ?order:int -> unit -> 'v t
  (** [order] is the maximum number of keys per node (default 16, minimum
      4). *)

  val length : 'v t -> int
  (** Number of entries (counting duplicates). *)

  val is_empty : 'v t -> bool

  val add : 'v t -> Key.t -> 'v -> unit

  val remove : 'v t -> equal:('v -> 'v -> bool) -> Key.t -> 'v -> bool
  (** Remove one entry with this key whose value satisfies [equal]; [false]
      if none was found. *)

  val find : 'v t -> Key.t -> 'v list
  (** All values stored under the key (one per copy), unspecified order. *)

  val mem : 'v t -> Key.t -> bool

  val iter : (Key.t -> 'v -> unit) -> 'v t -> unit
  (** Ascending key order. *)

  val range : 'v t -> lo:Key.t option -> hi:Key.t option -> (Key.t -> 'v -> unit) -> unit
  (** Entries with lo <= key <= hi (each bound optional), ascending. *)

  val range_seq : 'v t -> lo:Key.t option -> hi:Key.t option -> (Key.t * 'v) Seq.t
  (** Lazy version of {!range}: entries are produced on demand as the
      sequence is forced, so early termination never walks the rest of the
      tree. The tree must not be mutated while the sequence is consumed. *)

  val to_seq : 'v t -> (Key.t * 'v) Seq.t
  (** [range_seq] over the whole tree. *)

  val min_key : 'v t -> Key.t option

  val max_key : 'v t -> Key.t option

  val check_invariants : 'v t -> (unit, string) result
  (** Structural validation (sortedness, occupancy, leaf chaining, depth
      uniformity) — used by the property tests. *)
end
