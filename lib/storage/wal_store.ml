(* Segmented on-disk WAL: the durable truth for a disk-backed database.

   A WAL directory holds bounded segments `wal.000001`, `wal.000002`, …
   (each in the {!Wal_codec} wire format, own magic header) plus a
   MANIFEST listing live segments and the reclaim ledger:

   {v
   ROLLMANIFEST 1
   G <reclaimed-segments> <reclaimed-upto-csn>
   S wal.000001 1 256
   S wal.000002 257 -1
   v}

   `S name first last` — last = -1 marks the active (still-appending)
   segment. The manifest is rewritten atomically (tmp + rename) at
   rotation and reclaim, never per append; recovery treats it as
   advisory for segment *contents* (actual records are re-parsed from
   the files) but authoritative for the reclaim ledger. Segments present
   in the directory but missing from the manifest — a crash between
   creating `wal.N+1` and committing the manifest — are adopted by a
   directory scan.

   Torn-tail semantics hold at every boundary: only the final segment
   may end mid-record (dropped, like the single-file codec); an earlier
   segment that fails strict parsing is corruption — segments are
   fsynced when sealed at rotation, so a non-final segment is always
   fully on stable storage. Recovered records must be CSN-contiguous,
   starting at `reclaimed-upto + 1`; stale segments wholly at or below
   the ledger (a crash between reclaim's manifest commit and its
   unlinks) are skipped and deleted.

   Appends open the segment file per record (O_APPEND) rather than
   holding a channel, so hundreds of live databases cannot exhaust the
   process fd budget. *)

module Fault = Roll_util.Fault

exception Corrupt of string

let manifest_magic = "ROLLMANIFEST 1"

let segment_name n = Printf.sprintf "wal.%06d" n

let segment_number name =
  (* "wal.%06d" names only *)
  if String.length name = 10 && String.sub name 0 4 = "wal." then
    int_of_string_opt (String.sub name 4 6)
  else None

(* Durability plumbing: a sealed segment is fsynced at rotation (so
   {!sync} only ever has to fsync the active one), the manifest tmp file
   is fsynced before its rename, and the directory fd is fsynced after
   renames / segment creation so the entries themselves survive power
   loss. *)
let fsync_file path =
  let fd = Unix.openfile path [ Unix.O_RDONLY ] 0 in
  Fun.protect ~finally:(fun () -> Unix.close fd) (fun () -> Unix.fsync fd)

(* Best-effort: some filesystems refuse to fsync a directory fd. *)
let fsync_dir dir =
  match Unix.openfile dir [ Unix.O_RDONLY ] 0 with
  | exception Unix.Unix_error _ -> ()
  | fd ->
      Fun.protect
        ~finally:(fun () -> Unix.close fd)
        (fun () -> try Unix.fsync fd with Unix.Unix_error _ -> ())

type sealed = { seg : string; first_csn : int; last_csn : int }

type t = {
  dir : string;
  segment_records : int;  (** rotate after this many records *)
  mutable active : string;
  mutable active_no : int;
  mutable active_records : int;
  mutable active_first : int;  (** csn, -1 while empty *)
  mutable active_last : int;
  mutable sealed : sealed list;  (** oldest first *)
  mutable reclaimed_segments : int;
  mutable reclaimed_upto : int;  (** highest reclaimed csn *)
}

let path t name = Filename.concat t.dir name

let live_segments t = List.length t.sealed + 1

let reclaimed t = (t.reclaimed_segments, t.reclaimed_upto)

let segments t =
  List.map (fun s -> (s.seg, s.first_csn, s.last_csn)) t.sealed
  @ [ (t.active, t.active_first, -1) ]

(* --- manifest --- *)

let write_manifest ?(fault = Fault.none) t =
  let buf = Buffer.create 256 in
  Buffer.add_string buf manifest_magic;
  Buffer.add_char buf '\n';
  Buffer.add_string buf
    (Printf.sprintf "G %d %d\n" t.reclaimed_segments t.reclaimed_upto);
  List.iter
    (fun s -> Buffer.add_string buf (Printf.sprintf "S %s %d %d\n" s.seg s.first_csn s.last_csn))
    t.sealed;
  Buffer.add_string buf (Printf.sprintf "S %s %d -1\n" t.active t.active_first);
  let tmp = path t "MANIFEST.tmp" in
  let out = open_out tmp in
  output_string out (Buffer.contents buf);
  flush out;
  Unix.fsync (Unix.descr_of_out_channel out);
  close_out out;
  (* Crash here leaves the old manifest plus possibly an orphan segment
     file; recovery adopts orphans from the directory scan. *)
  Fault.hit fault "walseg.manifest";
  Sys.rename tmp (path t "MANIFEST");
  fsync_dir t.dir

type manifest = {
  m_reclaimed : int;
  m_upto : int;
  m_segments : (string * int * int) list;
}

let read_manifest file =
  let input = open_in file in
  Fun.protect
    ~finally:(fun () -> close_in input)
    (fun () ->
      let line () = try Some (input_line input) with End_of_file -> None in
      (match line () with
      | Some l when l = manifest_magic -> ()
      | Some l -> raise (Corrupt ("MANIFEST: bad magic: " ^ l))
      | None -> raise (Corrupt "MANIFEST: empty"));
      let reclaimed = ref 0 and upto = ref 0 and segs = ref [] in
      let rec loop () =
        match line () with
        | None -> ()
        | Some l ->
            (try
               Scanf.sscanf l "G %d %d" (fun r u ->
                   reclaimed := r;
                   upto := u)
             with Scanf.Scan_failure _ | End_of_file | Failure _ -> (
               try
                 Scanf.sscanf l "S %s %d %d" (fun s f la ->
                     segs := (s, f, la) :: !segs)
               with Scanf.Scan_failure _ | End_of_file | Failure _ ->
                 raise (Corrupt ("MANIFEST: bad line: " ^ l))));
            loop ()
      in
      loop ();
      { m_reclaimed = !reclaimed; m_upto = !upto; m_segments = List.rev !segs })

(* --- segment files --- *)

let create_segment ?(fault = Fault.none) t n =
  Fault.hit fault "walseg.rotate";
  let name = segment_name n in
  let out = open_out (path t name) in
  output_string out Wal_codec.magic;
  output_char out '\n';
  flush out;
  Unix.fsync (Unix.descr_of_out_channel out);
  close_out out;
  fsync_dir t.dir;
  t.active <- name;
  t.active_no <- n;
  t.active_records <- 0;
  t.active_first <- -1;
  t.active_last <- -1;
  write_manifest ~fault t

let seal_active t =
  t.sealed <-
    t.sealed
    @ [ { seg = t.active; first_csn = t.active_first; last_csn = t.active_last } ]

let append ?(fault = Fault.none) t (record : Wal.record) =
  if t.active_records >= t.segment_records then begin
    (* Seal durability: the outgoing segment is fsynced here, so every
       record in a sealed segment is on stable storage and [sync] never
       needs to revisit it. Without this, a later [sync] of the new
       active segment could advance the data snapshot past records that
       still live only in the page cache of a sealed file. *)
    fsync_file (path t t.active);
    seal_active t;
    create_segment ~fault t (t.active_no + 1)
  end;
  let out =
    open_out_gen [ Open_append; Open_wronly ] 0o644 (path t t.active)
  in
  Fun.protect
    ~finally:(fun () -> close_out out)
    (fun () ->
      Wal_codec.output_record ~fault ~record_point:"walseg.record"
        ~terminator_point:"walseg.terminator" out record);
  t.active_records <- t.active_records + 1;
  if t.active_first < 0 then t.active_first <- record.Wal.csn;
  t.active_last <- record.Wal.csn

(* Sealed segments were fsynced at rotation, so only the active segment
   can hold records not yet on stable storage. *)
let sync ?(fault = Fault.none) t =
  Fault.hit fault "walseg.sync";
  fsync_file (path t t.active)

(* Delete sealed segments whose records all have csn <= [upto]. The
   caller guarantees every consumer's horizon has passed them. *)
let reclaim ?(fault = Fault.none) t ~upto =
  let reclaimable, keep =
    List.partition (fun s -> s.last_csn >= 0 && s.last_csn <= upto) t.sealed
  in
  if reclaimable = [] then 0
  else begin
    t.sealed <- keep;
    t.reclaimed_segments <- t.reclaimed_segments + List.length reclaimable;
    List.iter
      (fun s -> t.reclaimed_upto <- max t.reclaimed_upto s.last_csn)
      reclaimable;
    (* Ledger first, unlinks second: a crash in between leaves stale
       segment files wholly at or below [reclaimed_upto], which recovery
       skips and deletes. The reverse order would leave a CSN gap that
       recovery could not tell from corruption. *)
    write_manifest ~fault t;
    Fault.hit fault "walseg.reclaim";
    List.iter
      (fun s -> try Sys.remove (path t s.seg) with Sys_error _ -> ())
      reclaimable;
    List.length reclaimable
  end

(* --- open / recover --- *)

let list_segment_files dir =
  Sys.readdir dir |> Array.to_list
  |> List.filter_map (fun name ->
         match segment_number name with Some n -> Some (n, name) | None -> None)
  |> List.sort compare

type recovery = {
  store : t;
  records : Wal.record list;  (** csn order, first = reclaimed_upto + 1 *)
  torn : string option;  (** tail of the final segment, if torn *)
}

(* Open a WAL directory: fresh directories get segment 1 and a manifest;
   existing ones are recovered — every segment strictly parsed except
   the last, which may have a torn tail. *)
let open_dir ?(segment_records = 256) ?fault dir =
  if not (Sys.file_exists dir) then Unix.mkdir dir 0o755;
  if not (Sys.is_directory dir) then
    invalid_arg ("Wal_store.open_dir: not a directory: " ^ dir);
  let t =
    {
      dir;
      segment_records;
      active = segment_name 1;
      active_no = 1;
      active_records = 0;
      active_first = -1;
      active_last = -1;
      sealed = [];
      reclaimed_segments = 0;
      reclaimed_upto = 0;
    }
  in
  let manifest_file = path t "MANIFEST" in
  let files = list_segment_files dir in
  if files = [] && not (Sys.file_exists manifest_file) then begin
    create_segment ?fault t 1;
    { store = t; records = []; torn = None }
  end
  else begin
    (if Sys.file_exists manifest_file then begin
       let m = read_manifest manifest_file in
       t.reclaimed_segments <- m.m_reclaimed;
       t.reclaimed_upto <- m.m_upto
     end);
    if files = [] then raise (Corrupt (dir ^ ": manifest but no segments"));
    (* The directory scan is authoritative for which segments exist: it
       sees both manifest-listed segments and orphans from a crash
       mid-rotation. *)
    let rec load_all acc = function
      | [] -> (List.rev acc, None)
      | [ (_, name) ] -> (
          (* Final segment: torn tail allowed. *)
          match Wal_codec.recover_file (Filename.concat dir name) with
          | { records; torn } -> (List.rev ((name, records) :: acc), torn)
          | exception Wal_codec.Corrupt msg ->
              raise (Corrupt (name ^ ": " ^ msg)))
      | (_, name) :: rest -> (
          match Wal_codec.load_file (Filename.concat dir name) with
          | records -> load_all ((name, records) :: acc) rest
          | exception Wal_codec.Corrupt msg ->
              raise (Corrupt (name ^ ": non-final segment corrupt: " ^ msg)))
    in
    let loaded, torn = load_all [] files in
    (* Drop records the reclaim ledger already covers. A crash between
       reclaim's manifest commit and its unlinks leaves whole stale
       segments at or below [reclaimed_upto]: skip their records and
       delete the files. The final segment is the active one — never
       reclaimed, never deleted here. *)
    let last = List.length loaded - 1 in
    let loaded =
      List.filteri
        (fun i (name, records) ->
          let stale =
            records <> []
            && List.for_all
                 (fun (r : Wal.record) -> r.Wal.csn <= t.reclaimed_upto)
                 records
          in
          if stale && i < last then begin
            (try Sys.remove (Filename.concat dir name) with Sys_error _ -> ());
            false
          end
          else true)
        loaded
      |> List.map (fun (name, records) ->
             ( name,
               List.filter
                 (fun (r : Wal.record) -> r.Wal.csn > t.reclaimed_upto)
                 records ))
    in
    (* Repair a torn active segment in place: rewrite it with only the
       records that parsed, so later appends continue a clean log rather
       than landing after the torn bytes (which would read as mid-log
       corruption on the next open). *)
    (match torn with
    | None -> ()
    | Some _ ->
        let name, records = List.nth loaded (List.length loaded - 1) in
        let tmp = Filename.concat dir (name ^ ".tmp") in
        let out = open_out tmp in
        output_string out Wal_codec.magic;
        output_char out '\n';
        List.iter (fun r -> Wal_codec.output_record out r) records;
        flush out;
        Unix.fsync (Unix.descr_of_out_channel out);
        close_out out;
        Sys.rename tmp (Filename.concat dir name);
        fsync_dir dir);
    (* CSN continuity across the whole recovered suffix. *)
    let expected = ref (t.reclaimed_upto + 1) in
    List.iter
      (fun (name, records) ->
        List.iter
          (fun (r : Wal.record) ->
            if r.Wal.csn <> !expected then
              raise
                (Corrupt
                   (Printf.sprintf "%s: csn %d, expected %d (gap in WAL)" name
                      r.Wal.csn !expected));
            incr expected)
          records)
      loaded;
    (* Rebuild in-memory segment state; the last file is the active one. *)
    let rec rebuild = function
      | [] -> assert false
      | [ (name, records) ] ->
          t.active <- name;
          t.active_no <-
            (match segment_number name with Some n -> n | None -> assert false);
          t.active_records <- List.length records;
          (match records with
          | [] ->
              t.active_first <- -1;
              t.active_last <- -1
          | first :: _ ->
              t.active_first <- first.Wal.csn;
              t.active_last <-
                (List.nth records (List.length records - 1)).Wal.csn)
      | (name, records) :: rest ->
          (match records with
          | [] -> ()  (* empty sealed segment: drop from the live list *)
          | first :: _ ->
              t.sealed <-
                t.sealed
                @ [
                    {
                      seg = name;
                      first_csn = first.Wal.csn;
                      last_csn =
                        (List.nth records (List.length records - 1)).Wal.csn;
                    };
                  ]);
          rebuild rest
    in
    rebuild loaded;
    write_manifest ?fault t;
    { store = t; records = List.concat_map snd loaded; torn }
  end
