(** Timestamped delta tables.

    A delta table records insertions (positive counts) and deletions
    (negative counts) of tuples, each stamped with the commit time of the
    transaction that made (or, for view deltas, caused) the change. The
    window operation σ_{a,b} of the paper selects rows with timestamps in
    the half-open interval (a, b].

    Base-table deltas are appended in commit order, but view deltas are not:
    a compensation query executed late adds rows with old timestamps. The
    table therefore keeps rows in arrival order and maintains a lazily
    rebuilt timestamp-sorted index for window queries. *)

type row = { tuple : Roll_relation.Tuple.t; count : int; ts : Time.t }

type t

val create : Roll_relation.Schema.t -> t

val schema : t -> Roll_relation.Schema.t

val append : t -> Roll_relation.Tuple.t -> count:int -> ts:Time.t -> unit
(** Zero-count appends are dropped. *)

val append_row : t -> row -> unit

val length : t -> int
(** Number of stored rows (not net tuples). *)

val truncate : t -> int -> unit
(** [truncate d n] drops every row after the first [n] (arrival order),
    undoing the appends made since [length d] was [n]. This is the abort
    path of a propagation transaction: a step that fails mid-way may have
    emitted part of its brick, and the retry logic rolls the view delta
    back to the pre-step mark before re-running the step. No-op when
    [length d <= n]. *)

val iter : (row -> unit) -> t -> unit
(** Arrival order. *)

val to_list : t -> row list

val sub : t -> pos:int -> len:int -> row array
(** [sub d ~pos ~len] is rows [pos .. pos+len-1] in arrival order — the
    slice a memo captures after filling the tail of a delta.
    @raise Invalid_argument if the slice exceeds the current length. *)

val min_ts : t -> Time.t option

val max_ts : t -> Time.t option

val window : t -> lo:Time.t -> hi:Time.t -> row list
(** [window d ~lo ~hi] is σ_{lo,hi}(d): rows with [lo < ts <= hi], in
    timestamp order (ties in arrival order). *)

val window_iter : t -> lo:Time.t -> hi:Time.t -> (row -> unit) -> unit

val window_cursor : t -> lo:Time.t -> hi:Time.t -> Roll_relation.Cursor.t
(** σ_{lo,hi}(d) as a lazy pull cursor, in timestamp order — the delta-side
    source of the execution pipeline. Rows are produced on demand; rewinding
    restarts the window (and picks up a rebuilt index if rows were appended
    in between). *)

val window_count : t -> lo:Time.t -> hi:Time.t -> int

val freshen : t -> unit
(** Rebuild the lazy timestamp index now if it is stale. Window reads
    normally rebuild it on demand — a read-side mutation that is unsafe
    under concurrent readers. A parallel drain calls [freshen] on every
    delta a wave will read {e before} dispatching, after which concurrent
    window reads are pure (no appends happen mid-wave). *)

val net_effect : t -> lo:Time.t -> hi:Time.t -> Roll_relation.Relation.t
(** φ(σ_{lo,hi}(d)): the window collapsed to net counts. *)

val apply_window :
  t -> lo:Time.t -> hi:Time.t -> Roll_relation.Relation.t -> unit
(** [apply_window d ~lo ~hi r] adds the window's rows into [r] ("rolls" [r]
    forward when [d] is a delta for [r]'s relation). *)

val prune : t -> upto:Time.t -> int
(** [prune d ~upto] removes rows with [ts <= upto] (already applied and no
    longer needed) and returns how many were removed. *)

val compact : t -> int
(** Merge rows with identical tuple and timestamp by summing their counts
    (a forward query and a compensation often contribute exactly cancelling
    rows). Every window σ_{a,b} is unchanged; returns the number of rows
    eliminated. *)

val copy : t -> t

val pp : Format.formatter -> t -> unit
